// Undirected graph in adjacency (CSR-like) form, as used by the
// partitioner and the independent-set algorithms.
#pragma once

#include <span>
#include <vector>

#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// Adjacency-structure graph. Vertices carry integer weights (coarsening
/// accumulates them); edges carry integer weights (number of collapsed
/// original edges). Self-loops are never stored.
struct Graph {
  idx n = 0;
  std::vector<nnz_t> xadj;   // size n + 1
  IdxVec adjncy;             // size 2 * |E|
  IdxVec vwgt;               // vertex weights, size n
  IdxVec ewgt;               // edge weights, size adjncy.size()

  nnz_t num_edges_directed() const { return static_cast<nnz_t>(adjncy.size()); }
  idx degree(idx v) const { return static_cast<idx>(xadj[v + 1] - xadj[v]); }
  std::span<const idx> neighbors(idx v) const {
    return {adjncy.data() + xadj[v], static_cast<std::size_t>(degree(v))};
  }

  /// Total vertex weight.
  long long total_vwgt() const;

  /// Validate symmetry, no self-loops, in-range indices.
  void validate() const;
};

/// Build the adjacency graph of a square matrix pattern: an edge {i, j}
/// exists iff a_ij != 0 or a_ji != 0 (pattern symmetrized), diagonal
/// ignored. Unit vertex and edge weights.
Graph graph_from_pattern(const Csr& a);

/// Build a graph from explicit edge list (u, v) pairs; duplicates merged
/// with weights summed.
Graph graph_from_edges(idx n, const std::vector<std::pair<idx, idx>>& edges);

/// Number of connected components (used by workload sanity tests).
idx count_components(const Graph& g);

}  // namespace ptilu
