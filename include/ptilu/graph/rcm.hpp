// Reverse Cuthill–McKee bandwidth-reducing ordering. A classic companion
// to incomplete factorizations: reordering the matrix before ILUT
// concentrates fill near the diagonal and often improves preconditioner
// quality for a fixed memory budget.
#pragma once

#include "ptilu/graph/graph.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// Compute the RCM ordering of the graph: returns new_of, where
/// new_of[old] is the vertex's position in the reordered numbering.
/// Each connected component is ordered from a pseudo-peripheral vertex;
/// neighbors are visited in increasing-degree order.
IdxVec rcm_ordering(const Graph& g);

/// Bandwidth of a square matrix: max |i - j| over stored entries.
idx bandwidth(const Csr& a);

}  // namespace ptilu
