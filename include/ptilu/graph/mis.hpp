// Serial maximal-independent-set algorithms (Luby's randomized algorithm
// and a greedy reference), plus verification helpers. The distributed
// version used by the parallel factorization lives in ptilu/dist/mis_dist.hpp
// and must agree with these on the same input (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "ptilu/graph/graph.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

struct MisOptions {
  std::uint64_t seed = 1;
  /// Number of Luby augmentation rounds; the paper uses 5 ("the majority of
  /// the independent vertices are discovered during the first few
  /// iterations"). Use a large value (e.g. 64) for a maximal set.
  int rounds = 5;
};

/// Luby's algorithm restricted to the vertices marked active (active empty
/// means all vertices). A vertex joins the set in a round when its random
/// key is strictly smaller than every active non-dominated neighbor's key;
/// it and its neighbors then leave candidacy. Returns the chosen vertices
/// in ascending order.
IdxVec luby_mis(const Graph& g, const MisOptions& opts = {},
                const std::vector<bool>* active = nullptr);

/// Greedy sequential MIS (ascending vertex order) — deterministic baseline.
IdxVec greedy_mis(const Graph& g, const std::vector<bool>* active = nullptr);

/// True if no two vertices of the set are adjacent in g.
bool is_independent(const Graph& g, const IdxVec& set);

/// True if the set is independent AND maximal (no active vertex outside the
/// set could be added).
bool is_maximal_independent(const Graph& g, const IdxVec& set,
                            const std::vector<bool>* active = nullptr);

}  // namespace ptilu
