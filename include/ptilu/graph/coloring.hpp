// Greedy graph coloring. Used for the ILU(0)-style static concurrency
// extraction the paper contrasts against (Figure 1) and as a reference in
// tests: color classes of a symmetric pattern are independent sets.
#pragma once

#include "ptilu/graph/graph.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

struct Coloring {
  IdxVec color;   // color of each vertex, in [0, num_colors)
  idx num_colors = 0;

  /// Vertices of a given color, ascending.
  IdxVec color_class(idx c) const;
};

/// First-fit greedy coloring in the given vertex order (natural order if
/// order is empty). Bounded by max degree + 1 colors.
Coloring greedy_coloring(const Graph& g, const IdxVec& order = {});

/// Validate that adjacent vertices never share a color.
bool is_valid_coloring(const Graph& g, const Coloring& coloring);

}  // namespace ptilu
