// Preconditioner interface and the simple instances (identity, Jacobi,
// serial ILU). The PILUT preconditioner lives in ptilu/pilut.
#pragma once

#include <memory>
#include <span>

#include "ptilu/ilu/factors.hpp"
#include "ptilu/ilu/trisolve.hpp"
#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// Applies x = M^{-1} b for some preconditioner M.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const real> b, std::span<real> x) const = 0;
};

/// M = I.
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const real> b, std::span<real> x) const override;
};

/// M = diag(A) — the "Diagonal" baseline row of the paper's Table 3.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const Csr& a);
  void apply(std::span<const real> b, std::span<real> x) const override;

 private:
  RealVec inv_diag_;
};

/// M = L·U from an incomplete factorization, optionally computed on the
/// symmetrically permuted matrix P A P^T (new_of = the permutation), as the
/// parallel ILUT factorization produces.
class IluPreconditioner final : public Preconditioner {
 public:
  explicit IluPreconditioner(IluFactors factors, IdxVec new_of = {});
  void apply(std::span<const real> b, std::span<real> x) const override;

  const IluFactors& factors() const { return factors_; }
  /// The permutation the factors were computed under (empty = natural
  /// order). The serving layer batches applies only for natural-order
  /// factors, so it needs to see this.
  const IdxVec& permutation() const { return new_of_; }

 private:
  IluFactors factors_;
  IdxVec new_of_;
};

/// M = L·U from the supernodal/blocked factorization (ilut_blocked);
/// application runs the register-blocked panel trisolves.
class BlockedIluPreconditioner final : public Preconditioner {
 public:
  explicit BlockedIluPreconditioner(BlockedFactors factors);
  void apply(std::span<const real> b, std::span<real> x) const override;

  const BlockedFactors& factors() const { return factors_; }

 private:
  BlockedFactors factors_;
};

}  // namespace ptilu
