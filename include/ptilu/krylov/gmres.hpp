// Restarted GMRES(m) with left preconditioning [Saad & Schultz 86] — the
// iterative solver the paper uses to evaluate preconditioner quality
// (Table 3). Modified-Gram-Schmidt Arnoldi with Givens rotations.
#pragma once

#include <span>

#include "ptilu/krylov/preconditioner.hpp"
#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

struct GmresOptions {
  int restart = 20;          ///< Krylov subspace dimension per cycle
  int max_matvecs = 20000;   ///< total matrix-vector product budget
  real rtol = 1e-5;          ///< stop when ||M^{-1}r|| drops by this factor
};

struct GmresResult {
  bool converged = false;
  int matvecs = 0;             ///< NMV in the paper's Table 3
  int restarts = 0;
  real initial_residual = 0;   ///< preconditioned residual norms
  real final_residual = 0;
  RealVec residual_history;    ///< one entry per inner iteration
};

/// Solve A x = b with left-preconditioned restarted GMRES. x holds the
/// initial guess on entry and the solution on exit.
GmresResult gmres(const Csr& a, const Preconditioner& m, std::span<const real> b,
                  std::span<real> x, const GmresOptions& opts = {});

}  // namespace ptilu
