// Fully distributed restarted GMRES: the solver the paper actually ran on
// the T3D. Every operation executes on the simulated machine — parallel
// SpMV with halo exchange, the parallel triangular solves of the PILUT
// preconditioner, rank-local axpy/scale work, and inner products that cost
// an allreduce each. The arithmetic is identical to the serial
// ptilu::gmres (tested), so iteration counts match; the machine clock
// additionally yields an executed (not analytically modeled) parallel
// solve time for Table 3.
//
// When a sim::Trace is attached to the machine, the solve is tagged with
// nested phases under "gmres": "residual" (SpMV + preconditioner for the
// restart residual), "precond" (M^{-1} A v_j, including the distributed
// triangular solves, which self-tag "trisolve/forward" and
// "trisolve/backward"), "orthog" (modified Gram-Schmidt dots/axpys), and
// "update" (the x correction). SpMVs self-tag "spmv". See docs/TRACING.md.
#pragma once

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sim/machine.hpp"

namespace ptilu {

/// Solve A x = b with left-preconditioned GMRES on the simulated machine,
/// using the parallel factorization's schedule for preconditioning.
/// b and x are in ORIGINAL row numbering (the permutation is handled
/// internally, as ilu_apply_permuted does serially). The machine is reset
/// at entry; on return machine.modeled_time() is the solve's modeled
/// parallel run time.
GmresResult gmres_dist(sim::Machine& machine, const DistCsr& dist, const Halo& halo,
                       const PilutResult& factorization, std::span<const real> b,
                       std::span<real> x, const GmresOptions& opts = {});

/// Shared-solver overload for serving workloads: apply GMRES through a
/// DistTriangularSolver built ONCE from a factorization and reused across
/// many solves (the solver's consumer/level setup is host-side work that a
/// per-request solve should not repay — see docs/SERVING.md). The overload
/// above delegates here after building a solver, so a sequence of calls
/// with a shared solver is bit-identical to the same sequence of
/// from-factorization calls. The solver must have been built against a
/// factorization of this dist matrix's permuted form.
GmresResult gmres_dist(sim::Machine& machine, const DistCsr& dist, const Halo& halo,
                       const DistTriangularSolver& solver, std::span<const real> b,
                       std::span<real> x, const GmresOptions& opts = {});

}  // namespace ptilu
