// Multilevel k-way graph partitioning, the domain-decomposition substrate
// of the parallel ILUT algorithm (the paper uses the authors' own parallel
// multilevel k-way scheme [Karypis & Kumar 96]; we implement the same
// family: heavy-edge-matching coarsening, greedy-growing initial
// partitions, and boundary Fiduccia–Mattheyses refinement, driven by
// recursive bisection).
#pragma once

#include <cstdint>

#include "ptilu/graph/graph.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

struct PartitionOptions {
  std::uint64_t seed = 1;
  /// Stop coarsening a bisection problem once at most this many vertices
  /// remain (or coarsening stalls).
  idx coarsen_to = 120;
  /// FM passes per uncoarsening level.
  int refine_passes = 6;
  /// Allowed imbalance: heaviest part may carry at most tol × ideal weight.
  double imbalance_tol = 1.05;
};

struct Partition {
  idx nparts = 0;
  IdxVec part;  // part id of each vertex, in [0, nparts)

  void validate(idx n) const;
};

/// Partition g into nparts balanced pieces minimizing edge-cut.
Partition partition_kway(const Graph& g, idx nparts, const PartitionOptions& opts = {});

/// Trivial partitioners used as ablation baselines.
Partition partition_block(const Graph& g, idx nparts);                       // contiguous ranges
Partition partition_random(const Graph& g, idx nparts, std::uint64_t seed);  // shuffled round-robin

/// Sum of edge weights crossing between parts (each undirected edge once).
long long edge_cut(const Graph& g, const Partition& p);

/// Heaviest part weight divided by ideal (total/nparts); 1.0 is perfect.
double imbalance(const Graph& g, const Partition& p);

/// Number of interface vertices: vertices with at least one neighbor in a
/// different part. This is the quantity that drives the parallel ILUT
/// algorithm's distributed phase.
idx count_interface(const Graph& g, const Partition& p);

}  // namespace ptilu
