// Parallel forward/backward substitution (§5 of the paper).
//
// The solves exploit the structure the parallel factorization imposed:
// phase 1 handles each rank's interior block with purely local work;
// phase 2 walks the q independent-set levels — each level's unknowns are
// computed concurrently and the freshly computed boundary values are
// shipped to the ranks whose later rows reference them. The backward
// substitution runs the levels in reverse and finishes with the local
// interior blocks. Each level is one superstep, which is exactly the "q
// implicit synchronization points" the paper discusses.
#pragma once

#include "ptilu/ilu/factors.hpp"
#include "ptilu/ilu/rhs_block.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/sim/machine.hpp"

namespace ptilu {

/// Precomputed communication lists for the level-by-level solves. Built
/// once per factorization (the setup cost is not part of the per-solve
/// modeled time, matching how such solvers amortize setup in practice).
class DistTriangularSolver {
 public:
  DistTriangularSolver(const IluFactors& factors, const PilutSchedule& schedule);

  /// Solve L y = b (all vectors in the NEW ordering).
  void forward(sim::Machine& machine, const RealVec& b, RealVec& y) const;

  /// Solve U x = y (new ordering).
  void backward(sim::Machine& machine, const RealVec& y, RealVec& x) const;

  /// x = U^{-1} L^{-1} b — one full preconditioner application.
  void apply(sim::Machine& machine, const RealVec& b, RealVec& x) const;

  /// Batched multi-RHS solves: one level sweep carries all k columns, and
  /// each freshly computed interface row ships its k values in the SAME
  /// per-peer message a single-RHS solve would have used — per level and
  /// peer the batched solve pays one message latency where k single-RHS
  /// solves pay k, which is the serving-throughput amortization
  /// (docs/SERVING.md). Column c of the result is bit-identical to the
  /// single-RHS solve of column c (held by tests/test_serve.cpp); the
  /// single-RHS paths above are untouched.
  void forward(sim::Machine& machine, const DenseRhsBlock& b, DenseRhsBlock& y) const;
  void backward(sim::Machine& machine, const DenseRhsBlock& y, DenseRhsBlock& x) const;
  void apply(sim::Machine& machine, const DenseRhsBlock& b, DenseRhsBlock& x) const;

  int levels() const { return schedule_->levels(); }

  /// The factorization schedule this solver was built against (callers
  /// such as gmres_dist need its permutation to scatter vectors into the
  /// factored ordering when sharing one solver across many solves).
  const PilutSchedule& schedule() const { return *schedule_; }

 private:
  const IluFactors* factors_;
  const PilutSchedule* schedule_;
  /// consumers_fwd_[j] (j an interface row, new id): ranks whose later rows
  /// have L entries in column j. consumers_bwd_[j]: ranks whose earlier
  /// rows have U entries in column j.
  std::vector<std::vector<int>> consumers_fwd_;
  std::vector<std::vector<int>> consumers_bwd_;
  /// Rows owned by each rank within each level: rows_of_level_[level][rank].
  std::vector<std::vector<IdxVec>> rows_of_level_;
};

}  // namespace ptilu
