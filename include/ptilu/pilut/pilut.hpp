// Parallel ILUT / ILUT* factorization (§4 of the paper) — the primary
// contribution of this reproduction.
//
// Phase 1: every rank factors its *interior* rows (those whose couplings
// are all local) with ILUT — no communication at all.
// Phase 2: the interface rows form a reduced matrix A_I that is factored
// iteratively: a distributed maximal independent set I_l of the current
// reduced matrix is computed (§4.1), its rows are factored concurrently
// (independence means they only emit U rows), the needed U rows are
// exchanged, and every remaining row eliminates its I_l columns to form
// the next-level reduced matrix (Algorithm 4.2). ILUT keeps every
// above-threshold entry in the reduced rows; ILUT*(m, t, k) caps each
// reduced row at k·m entries (§4.2), trading a little preconditioner
// quality for far sparser reduced systems, fewer levels, and better
// parallel scalability.
//
// The factorization also emits the ordering and level structure needed by
// the parallel triangular solves (ptilu/pilut/trisolve_dist.hpp).
#pragma once

#include <cstdint>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/ilu/factors.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

struct PilutOptions {
  idx m = 10;       ///< max kept entries per row of L and of U
  real tau = 1e-4;  ///< relative drop tolerance
  /// Reduced-row cap factor: 0 reproduces plain ILUT (keep everything in
  /// the reduced matrices); k >= 1 gives ILUT*(m, t, k), capping every
  /// reduced-matrix row at k·m entries. The paper recommends k = 2.
  idx cap_k = 0;
  int mis_rounds = 5;       ///< Luby augmentation rounds (paper: 5)
  std::uint64_t seed = 1;   ///< randomness for the independent sets
  real pivot_rel = 0.0;     ///< pivot guard, as in IlutOptions
};

/// Ordering and level structure produced by the parallel factorization,
/// consumed by the parallel triangular solves.
struct PilutSchedule {
  int nranks = 1;
  IdxVec newnum;    ///< original index -> position in the factored ordering
  IdxVec orig_of;   ///< inverse of newnum
  IdxVec owner_new; ///< owning rank by NEW index
  idx n_interior = 0;
  /// interior_range[r] = [begin, end) of rank r's interior rows (new ids).
  std::vector<std::pair<idx, idx>> interior_range;
  /// Level boundaries in new ids: level l spans
  /// [level_start[l], level_start[l+1]); level_start.front() == n_interior
  /// and level_start.back() == n. The number of independent sets is
  /// levels() — the paper's q.
  std::vector<idx> level_start;

  int levels() const { return static_cast<int>(level_start.size()) - 1; }
  void validate() const;
};

struct PilutStats {
  int levels = 0;                    ///< number of independent sets (q)
  idx interface_nodes = 0;
  double time_interior = 0;          ///< modeled seconds, phase 1
  double time_interface = 0;         ///< modeled seconds, phase 2
  double time_total = 0;
  std::uint64_t flops = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages = 0;
  std::uint64_t supersteps = 0;
  nnz_t max_reduced_row = 0;         ///< densest reduced-matrix row observed
  std::uint64_t pivots_guarded = 0;
};

struct PilutResult {
  /// The incomplete factors of P A P^T, where P is schedule.newnum.
  IluFactors factors;
  PilutSchedule schedule;
  PilutStats stats;
};

/// Run the parallel factorization on the simulated machine. The machine's
/// rank count must equal the partition's part count. The machine clock is
/// reset at entry; on return machine.modeled_time() is the factorization's
/// modeled parallel run time (also recorded in stats.time_total).
PilutResult pilut_factor(sim::Machine& machine, const DistCsr& dist,
                         const PilutOptions& opts = {});

}  // namespace ptilu
