// Nested (partition-based) parallel ILUT — the alternative formulation the
// paper sketches in its conclusions (§7):
//
//   "an alternative parallel formulation can be developed that utilizes
//    graph partitioning to extract concurrency instead of independent sets
//    of rows. Such a scheme will compute a p-way partitioning of the graph
//    corresponding to the interface rows (A_I). Then, the rows that are
//    internal to each domain will be factored concurrently and the second
//    level reduced matrix corresponding to the new interface nodes can be
//    formed. These reduced matrices can now be factored in a similar
//    fashion."
//
// Phase 1 (interior) is identical to pilut_factor. The interface stage
// then recursively re-partitions the current reduced matrix: each
// sub-domain's rows migrate to a host rank (the migration traffic is
// charged to the cost model), hosts factor their sub-interior blocks
// concurrently — sequential ILUT inside a block, zero communication across
// blocks — and the rows on sub-domain boundaries form the next reduced
// matrix. When the reduced system becomes too small to partition profitably
// (or the depth cap is reached) the remainder is gathered and factored
// sequentially on rank 0, the classic top-of-the-tree fallback.
//
// Compared to the independent-set formulation this trades the many small
// synchronization levels (one per MIS) for a few bulk stages — attractive
// for dense reduced matrices on high-latency networks — at the price of
// data migration and a sequential tail.
#pragma once

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/sim/machine.hpp"

namespace ptilu {

struct NestedOptions {
  int max_depth = 8;          ///< recursion cap on interface re-partitioning
  idx sequential_cutoff = 64; ///< gather-and-solve once this few rows remain
};

/// Run the nested parallel factorization. The result has the same shape as
/// pilut_factor; stats.levels counts the nesting stages (including the
/// final sequential stage). schedule levels may contain rows with same-rank
/// sequential dependencies — DistTriangularSolver handles those.
PilutResult pilut_factor_nested(sim::Machine& machine, const DistCsr& dist,
                                const PilutOptions& opts = {},
                                const NestedOptions& nested = {});

}  // namespace ptilu
