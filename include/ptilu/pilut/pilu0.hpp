// Parallel ILU(0) — the static-sparsity-pattern baseline the paper
// contrasts with (§3, Figure 1a; see also Ma & Saad's distributed ILU(0)).
//
// Because ILU(0) allows no fill, the sparsity structure of every reduced
// interface matrix is known a priori: a single greedy coloring of the
// interface adjacency graph yields all the concurrent sets at once, and
// each color class plays the role of one independent-set level. The
// factorization reuses the PILUT schedule format, so the same parallel
// triangular solver (DistTriangularSolver) applies the preconditioner.
#pragma once

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/sim/machine.hpp"

namespace ptilu {

struct Pilu0Options {
  real pivot_rel = 0.0;  ///< pivot guard, as in IlutOptions
};

/// Run the parallel zero-fill factorization. Returns factors of P A P^T in
/// the same PilutResult shape as pilut_factor; stats.levels is the number
/// of colors used for the interface nodes.
PilutResult pilu0_factor(sim::Machine& machine, const DistCsr& dist,
                         const Pilu0Options& opts = {});

}  // namespace ptilu
