// Serving telemetry: the third observability pillar beside sim::Trace and
// sim::Metrics (docs/SERVING.md §6, docs/OBSERVABILITY.md, DESIGN.md §15).
//
// Three instruments, all on the modeled-seconds axis so every number is
// bit-identical across backends, runs, and hosts:
//
//  * LatencyHistogram — a streaming, MERGEABLE log-bucketed histogram.
//    Bucket boundaries are fixed at construction of the *type*, not of the
//    data: kSubBuckets linear sub-buckets per power-of-two octave, with
//    boundaries (1 + i/kSubBuckets)·2^e. kSubBuckets is a power of two, so
//    every boundary is exactly representable and recomputable (ldexp of a
//    dyadic rational) — a validator in any language reproduces them
//    bit-for-bit. Merging histograms is element-wise count addition and
//    therefore order-independent; quantile reads return the upper edge of
//    the bucket holding the nearest-rank sample, which bounds the true
//    quantile from above within a documented relative resolution of
//    1/kSubBuckets. Σ bucket counts == values recorded, always.
//
//  * EventLog — the request-lifecycle journal. Every request carries its
//    deterministic id (index in the arrival schedule) through
//    enqueue → cache resolve (hit/miss + matrix fingerprint) → batch
//    admission → solve start → completion, each event stamped with a
//    modeled timestamp and, optionally, a wall timestamp taken via the
//    sanctioned support/timer.hpp access point (the library itself never
//    reads a clock — callers pass wall readings in). The log exports
//    Chrome trace_event spans, so serving timelines open in the same
//    viewer as the factorization traces (docs/TRACING.md).
//
//  * Batch/stream attribution — the serving counterpart of sim::Metrics'
//    superstep straggler attribution. attribute_batches() decomposes each
//    planned batch's service time into cache-resolve + shared
//    factor-stream + per-column solve contributions (an exact fold: the
//    parts re-sum to the planned service time bit-for-bit), elects the
//    straggler column per batch by FIRST-argmax (ties break to the lowest
//    index, mirroring Metrics::on_sync), and rolls the column lanes up
//    into per-lane busy/idle/imbalance (idle = elapsed − busy is exact by
//    the same monotone-fold argument the machine metrics use).
//    attribute_streams() does the same for concurrent GMRES streams,
//    where per-solve matvec counts give the rounds real variance.
//
// ServeTelemetry tallies what the instruments did (requests attributed,
// batches, straggler elections, histogram merges) and mirrors the tallies
// into the sim::Metrics named-counter registry ("serve/telemetry/*"),
// exactly as FactorCache mirrors "serve/cache/*".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ptilu/serve/solve_service.hpp"
#include "ptilu/serve/traffic.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu::sim {
class Metrics;
}  // namespace ptilu::sim

namespace ptilu::serve {

/// Monotone totals over a telemetry session's lifetime.
struct TelemetryStats {
  std::uint64_t requests = 0;            ///< requests attributed through batches
  std::uint64_t batches = 0;             ///< batches decomposed
  std::uint64_t straggler_elections = 0; ///< first-argmax elections (batches + rounds)
  std::uint64_t histogram_merges = 0;    ///< LatencyHistogram::merge calls
};

/// Counter hub for the serving instruments. Attribution helpers and
/// histogram merges bump it; attach_metrics() mirrors every bump into the
/// sim::Metrics named-counter registry at rank 0 ("serve/telemetry/requests",
/// ".../batches", ".../straggler_elections", ".../histogram_merges"),
/// replaying counts recorded before attachment so both views always agree
/// (the FactorCache serve/cache/* idiom).
class ServeTelemetry {
 public:
  /// Mirror counters into `metrics` (nullptr detaches). Pre-attachment
  /// history is topped up so registry == stats() from the first read.
  void attach_metrics(sim::Metrics* metrics);

  const TelemetryStats& stats() const { return stats_; }

  void count_requests(std::uint64_t n);
  void count_batches(std::uint64_t n);
  void count_elections(std::uint64_t n);
  void count_histogram_merge();

 private:
  void bump(std::uint64_t TelemetryStats::* slot, std::uint32_t counter, std::uint64_t n);

  TelemetryStats stats_;
  sim::Metrics* metrics_ = nullptr;
  std::uint32_t requests_id_ = 0, batches_id_ = 0, elections_id_ = 0,
                merges_id_ = 0;  ///< interned counter ids (valid when attached)
};

/// Streaming mergeable latency histogram with fixed log-spaced buckets.
///
/// Value v lands in the bucket [lower, upper) with
/// lower = (1 + i/kSubBuckets)·2^e — kSubBuckets linear sub-buckets per
/// octave across octaves [kMinExp, kMaxExp). Values below 2^kMinExp
/// (including 0 and negatives) count as underflow; values ≥ 2^kMaxExp as
/// overflow. Bucketing uses frexp (exact exponent/mantissa extraction) and
/// the boundaries are dyadic rationals, so indices and edges are
/// bit-deterministic across compilers and reproducible in the Python
/// validator via math.ldexp.
///
/// quantile(q) returns the UPPER edge of the bucket containing the
/// nearest-rank sample (rank ceil(q·N), 1-based): for a value in a regular
/// bucket, exact < returned ≤ exact·(1 + 1/kSubBuckets) — the documented
/// resolution bound, asserted by scripts/check_serve_report.py. An
/// underflow-bucket quantile returns 2^kMinExp (an upper edge but no
/// relative bound); an overflow-bucket quantile returns 2^kMaxExp (a lower
/// bound — the overflow bucket has no finite upper edge).
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 32;  ///< power of two → exact boundaries
  static constexpr int kMinExp = -30;     ///< first octave [2^-30, 2^-29): ~0.93 ns
  static constexpr int kMaxExp = 12;      ///< overflow at 2^12 s (~68 min)
  static constexpr int kBucketCount = (kMaxExp - kMinExp) * kSubBuckets;

  LatencyHistogram() : counts_(static_cast<std::size_t>(kBucketCount), 0) {}

  /// Count one value (NaN is rejected; ±0 and negatives underflow).
  void record(double v);

  /// Element-wise count addition: merge order never matters, and a merged
  /// histogram is bit-identical to one that recorded the union directly.
  /// Passing `telemetry` tallies the merge in its histogram_merges counter.
  void merge(const LatencyHistogram& other, ServeTelemetry* telemetry = nullptr);

  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Nearest-rank quantile read (see class comment for the edge rules and
  /// the 1/kSubBuckets resolution bound). Throws on an empty histogram or
  /// q outside [0, 1].
  double quantile(double q) const;

  /// Bucket index for a value: -1 underflow, kBucketCount overflow,
  /// otherwise [0, kBucketCount). Deterministic (frexp + exact arithmetic).
  static int bucket_index(double v);

  /// Inclusive lower edge of bucket `index` (index kBucketCount gives the
  /// overall upper limit 2^kMaxExp). Exactly representable.
  static double bucket_lower(int index);

  /// Exclusive upper edge of bucket `index` (== bucket_lower(index + 1)).
  static double bucket_upper(int index);

  /// quantile() ≤ exact·(1 + bound) for regular buckets.
  static constexpr double relative_error_bound() {
    return 1.0 / static_cast<double>(kSubBuckets);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Lifecycle stages a request moves through, in order.
enum class ServeStage : std::uint8_t {
  kEnqueue = 0,       ///< request entered the arrival queue
  kCacheResolve = 1,  ///< batch's factor resolved (hit/miss + fingerprint)
  kAdmit = 2,         ///< request admitted into a batch
  kSolveStart = 3,    ///< batched trisolve begins (after the resolve)
  kComplete = 4,      ///< solution returned; latency stops here
};

/// Short stage name ("enqueue", "cache_resolve", ...).
const char* serve_stage_name(ServeStage stage);

/// One lifecycle event. `request` is the deterministic request id (index
/// in the arrival schedule); batch-scoped events (cache resolve, solve
/// start) carry request == -1 and the batch id. Wall timestamps are
/// optional (< 0 = absent) and must come from a support/timer.hpp
/// WallTimer owned by the caller — library code never reads a clock.
struct ServeEvent {
  int request = -1;
  int batch = -1;
  ServeStage stage = ServeStage::kEnqueue;
  double t_model_s = 0.0;
  double t_wall_s = -1.0;
  std::uint64_t fingerprint = 0;  ///< matrix fingerprint (kCacheResolve only)
  bool cache_hit = false;         ///< kCacheResolve only
};

/// Append-only request-lifecycle journal with Chrome trace_event export.
/// Events are kept in record order (a vector — no unordered iteration
/// anywhere on this path), and groups partition the log into independent
/// timelines (one per batch-cap sweep in bench_serve) that export as
/// separate process groups in the trace viewer.
class EventLog {
 public:
  /// Start a new group; subsequent events belong to it. Returns its id.
  int begin_group(const std::string& label);

  void record(const ServeEvent& event);

  const std::vector<ServeEvent>& events() const { return events_; }
  const std::vector<std::string>& groups() const { return group_labels_; }
  std::size_t size() const { return events_.size(); }

  /// Chrome trace_event JSON ("X" complete events, timestamps in µs of
  /// modeled time): per request a "wait" span (enqueue → admission) and a
  /// "solve" span (admission → completion) on pid 2g ("<group> requests",
  /// tid = request id), and per batch a "resolve" + "solve batch" pair on
  /// pid 2g+1 ("<group> batches", tid = batch id). Opens in the same
  /// viewer as sim::Trace's factorization traces.
  void write_chrome_trace(std::ostream& os) const;
  void write_chrome_trace_file(const std::string& path) const;

 private:
  std::vector<ServeEvent> events_;
  std::vector<int> event_group_;  ///< group id per event (parallel to events_)
  std::vector<std::string> group_labels_;
};

/// Modeled decomposition of one planned batch. The identity
///   service_s == cache_resolve_s + (stream_shared_s + Σ column_solve_s)
/// holds bit-exactly with the inner sum folded in column order — the same
/// fold BatchCostModel::total_s used when the plan was formed — and is
/// re-verified by check_serve_report.py from the serialized parts.
struct BatchAttribution {
  int first = 0;
  int count = 0;
  double start_s = 0.0;
  bool arrival_gated = false;  ///< start set by the last arrival (server was idle)
  std::vector<double> arrival_s;     ///< member arrivals (ascending)
  std::vector<double> queue_wait_s;  ///< start_s − arrival_s[c], exact
  std::vector<double> column_solve_s;  ///< per-column solve contribution
  double service_s = 0.0;
  int straggler_column = 0;  ///< first-argmax of column_solve_s
};

/// Per-lane rollup over a batch plan: lane c is the c-th column slot of
/// every batch. elapsed_s folds each batch's slowest column; busy_s[c]
/// folds lane c's own contributions (0 when the batch was narrower than
/// c), so busy ≤ elapsed and idle = elapsed − busy hold bit-exactly —
/// partial batches show up as lane idle time, the serving analogue of
/// rank imbalance.
struct LaneRollup {
  double elapsed_s = 0.0;
  std::vector<double> busy_s;
  std::vector<double> idle_s;
  std::vector<std::uint64_t> elections;  ///< straggler wins per lane
  double imbalance = 1.0;                ///< max busy / mean busy
};

struct ApplyAttribution {
  std::vector<BatchAttribution> batches;
  LaneRollup lanes;
};

/// Decompose every batch of `plan` (formed from `schedule` with service
/// times from `costs` — re-derived and checked here) and roll up `lanes`
/// column lanes. Tallies requests/batches/elections into `telemetry` when
/// given. Throws if the plan is inconsistent with schedule or costs.
ApplyAttribution attribute_batches(const std::vector<Request>& schedule,
                                   const std::vector<Batch>& plan,
                                   const BatchCostModel& costs, int lanes,
                                   ServeTelemetry* telemetry = nullptr);

/// One round of a concurrent-stream sweep: stream s's solve is
/// round·streams + s (the fixed bench partition). cost_s is 0 for streams
/// with no solve in the tail round.
struct StreamRound {
  std::vector<double> cost_s;
  std::vector<long long> matvecs;
  double elapsed_s = 0.0;  ///< max over streams (the straggler's cost)
  int straggler = 0;       ///< first-argmax of cost_s
};

/// Stream-level rollup: same identities as LaneRollup (busy ≤ elapsed,
/// idle derived exactly), with real variance — per-solve GMRES matvec
/// counts differ, so elections are spread across streams.
struct StreamAttribution {
  int streams = 0;
  int solves = 0;
  double step_s = 0.0;  ///< modeled seconds per preconditioned GMRES iteration
  std::vector<StreamRound> rounds;
  double elapsed_s = 0.0;
  std::vector<double> busy_s;
  std::vector<double> idle_s;
  std::vector<std::uint64_t> elections;
  double imbalance = 1.0;
};

/// Attribute a stream sweep from its per-solve matvec counts: solve q
/// costs matvecs[q]·step_s modeled seconds; rounds barrier at the slowest
/// stream (first-argmax election, like Metrics::on_sync supersteps).
/// Tallies elections into `telemetry` when given.
StreamAttribution attribute_streams(int streams,
                                    const std::vector<long long>& matvecs_per_solve,
                                    double step_s, ServeTelemetry* telemetry = nullptr);

/// Modeled cost of one preconditioned GMRES iteration against (n, nnz)
/// with factor nonzero counts (nnz_l, nnz_u): one SpMV + one ILU apply in
/// flops, matrix + factor + vector traffic in bytes, at the simulator's
/// flop/mem rates. The unit cost behind attribute_streams.
double modeled_stream_step_s(idx n, std::uint64_t nnz, std::uint64_t nnz_l,
                             std::uint64_t nnz_u, double flop_t, double mem_t);

/// Append the full lifecycle of one served plan to `log` (one group is
/// NOT begun here — call log.begin_group first): kEnqueue per request at
/// its arrival, then per batch kCacheResolve (hit flag + fingerprint) at
/// batch start, kAdmit per member at batch start, kSolveStart at
/// start + costs.cache_resolve_s (the decomposition's resolve boundary),
/// and kComplete per member at start + service. `wall_complete_s`
/// optionally stamps each batch's completion with a wall reading (empty =
/// no wall data; else one entry per batch).
void append_lifecycle_events(EventLog& log, const std::vector<Request>& schedule,
                             const ApplyAttribution& attribution,
                             const BatchCostModel& costs, std::uint64_t fingerprint,
                             const std::vector<bool>& cache_hit_per_batch,
                             const std::vector<double>& wall_complete_s = {});

}  // namespace ptilu::serve
