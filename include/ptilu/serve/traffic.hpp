// Seeded synthetic request traffic for the serving bench and tests.
//
// A serving benchmark needs an arrival process, but library code may not
// read the wall clock or an OS entropy source (the determinism-banned-calls
// lint rule): arrival times here are MODELED seconds on the same axis as
// the simulator's modeled clock, drawn from a seeded xoshiro256** stream.
// The same (options, seed) always yields the same schedule, byte-for-byte,
// on every backend — which is what makes the bench's payload checksum
// reproducible and lets CI diff two runs' JSON outputs directly.
#pragma once

#include <cstdint>
#include <vector>

#include "ptilu/support/types.hpp"

namespace ptilu::serve {

/// One solve request: when it arrives (modeled seconds from schedule
/// start) and the seed its right-hand side is generated from.
struct Request {
  double arrival_s = 0.0;
  std::uint64_t rhs_seed = 0;
};

struct TrafficOptions {
  int requests = 64;               ///< number of requests to generate
  double mean_interarrival_s = 1e-3;  ///< Poisson-process mean gap
  std::uint64_t seed = 1;          ///< RNG seed for gaps and rhs seeds
};

/// Generate the arrival schedule: exponential(mean) inter-arrival gaps
/// accumulated from t=0 (a Poisson process), each request carrying a
/// distinct sub-seed for its right-hand side. Arrival times are strictly
/// increasing. Deterministic in opts.
std::vector<Request> make_schedule(const TrafficOptions& opts);

/// The dense right-hand side for a request: n uniform values in [-1, 1)
/// from the request's sub-seed. Deterministic in (n, seed).
RealVec make_rhs(idx n, std::uint64_t seed);

}  // namespace ptilu::serve
