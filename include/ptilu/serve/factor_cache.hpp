// Factor cache for the solve-service layer (docs/SERVING.md).
//
// The paper's economics — factor once, amortize the setup over many
// triangular solves — is a serving workload: requests name an operator and
// a right-hand side, and the expensive ILUT factorization should run only
// when the (matrix, parameters, kernel variant) triple has not been seen
// recently. FactorCache keys completed factorizations by a 64-bit FNV-1a
// fingerprint of the matrix (structure AND values — a coefficient update
// is a different operator) combined with the exact factorization
// parameters, and evicts least-recently-used entries beyond a fixed
// capacity (default from PTILU_SERVE_CACHE_CAP).
//
// Entries hold immutable `shared_ptr<const Preconditioner>`s: once handed
// out, a factor stays valid even if evicted mid-flight, and concurrent
// GMRES streams on host threads can apply one shared factor without
// synchronization (Preconditioner::apply is const and allocation-local;
// the tsan CI preset sweats exactly this sharing). The cache itself is NOT
// thread-safe by design: serving front-ends resolve factors on the
// dispatch thread, so hit/miss/eviction sequences stay deterministic —
// a locked cache racing two misses on one key would factor twice or not,
// depending on timing, and every counter downstream would wobble.
//
// Storage is a plain list scanned linearly (capacities are small — this is
// a cache of factorizations, each megabytes of CSR), keeping iteration
// order deterministic; the determinism-unordered-iter lint rule forbids
// hash-map iteration in src/ for exactly this class of structure.
//
// Observability: hit/miss/eviction totals are always available via
// stats(), and attach_metrics() additionally mirrors them into a
// sim::Metrics named-counter registry ("serve/cache/hits" etc. at rank 0),
// where they survive Machine::reset() — named counters are not banked by
// reset, so a serving session spanning many solve epochs keeps one running
// tally. tests/test_serve.cpp reconciles both views.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>

#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/ilut_blocked.hpp"
#include "ptilu/krylov/preconditioner.hpp"
#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu::sim {
class Metrics;
}  // namespace ptilu::sim

namespace ptilu::serve {

/// FNV-1a 64 fingerprint of a CSR matrix: dimensions, row pointers, column
/// indices, and value bit patterns. Any structural or numerical change —
/// including a sign flip or a value edit that keeps the pattern — yields a
/// different fingerprint (up to hash collision, 2^-64 per pair).
std::uint64_t matrix_fingerprint(const Csr& a);

/// Which factorization kernel family a cached entry was built with.
/// Scalar and blocked factors drop differently (entry-wise vs block
/// Frobenius), so the same (matrix, m, tau) under different variants are
/// distinct operators from the cache's point of view.
enum class FactorVariant : std::uint8_t {
  kScalar = 0,   ///< ilut() + CSR trisolves
  kBlocked = 1,  ///< ilut_blocked() + register-blocked panel trisolves
};

/// Short lowercase name ("scalar", "blocked").
const char* factor_variant_name(FactorVariant variant);

/// Full cache key. Equality is exact: every field that changes the factors
/// participates.
struct FactorKey {
  std::uint64_t matrix = 0;  ///< matrix_fingerprint of the operator
  FactorVariant variant = FactorVariant::kScalar;
  idx m = 0;
  real tau = 0.0;
  real pivot_rel = 0.0;
  int max_panel = 0;  ///< blocked only; 0 for scalar
  real slack = 0.0;   ///< blocked only; 0 for scalar

  bool operator==(const FactorKey&) const = default;
};

/// Monotone totals over the cache's lifetime.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class FactorCache {
 public:
  /// Capacity = max resident factorizations; least-recently-used entries
  /// beyond it are evicted on insert. Default from PTILU_SERVE_CACHE_CAP.
  explicit FactorCache(std::size_t capacity = capacity_from_env());

  /// Mirror hit/miss/eviction counts into a metrics registry (rank 0 of
  /// the "serve/cache/hits" / "serve/cache/misses" / "serve/cache/evictions"
  /// named counters). Pass nullptr to detach. Counts recorded before
  /// attachment are replayed into the registry so both views always agree.
  void attach_metrics(sim::Metrics* metrics);

  /// The cached scalar-ILUT preconditioner for (a, opts), factoring on
  /// miss. The returned factor is immutable and remains valid after
  /// eviction; apply() from concurrent threads is safe.
  std::shared_ptr<const Preconditioner> get(const Csr& a, const IlutOptions& opts);

  /// Blocked-variant counterpart (supernodal factors, panel trisolves).
  std::shared_ptr<const Preconditioner> get_blocked(const Csr& a,
                                                    const BlockedIlutOptions& opts);

  /// True when (a, opts, variant) is resident — no factoring, no counter
  /// movement, no LRU reordering (introspection for tests and reporting).
  bool contains(const FactorKey& key) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }

  /// PTILU_SERVE_CACHE_CAP, or 8 when unset/empty. Throws ptilu::Error on
  /// an unparseable or non-positive value.
  static std::size_t capacity_from_env();

 private:
  struct Entry {
    FactorKey key;
    std::shared_ptr<const Preconditioner> factor;
  };

  std::shared_ptr<const Preconditioner> lookup_or_insert(
      const FactorKey& key,
      const std::function<std::shared_ptr<const Preconditioner>()>& build);
  void bump(std::uint64_t CacheStats::* slot, std::uint32_t counter);

  std::size_t capacity_;
  std::list<Entry> entries_;  ///< front = most recently used
  CacheStats stats_;
  sim::Metrics* metrics_ = nullptr;
  std::uint32_t hit_id_ = 0, miss_id_ = 0, evict_id_ = 0;  ///< counter ids
};

}  // namespace ptilu::serve
