// ptilu-serve-report-v1: the serving counterpart of bench's ptilu-report-v2
// run reports (docs/SERVING.md §6, docs/OBSERVABILITY.md).
//
// The report is a self-checking artifact: everything it states it also
// states the inputs for, so scripts/check_serve_report.py re-derives the
// whole document from first principles — it re-runs the queueing
// recursion from the serialized arrivals, re-sums every batch
// decomposition in the documented fold order, re-elects every straggler,
// rebuilds the latency histogram bucket-for-bucket from the batch
// details, and recomputes both histogram and exact quantiles — and every
// value must match bit-for-bit (doubles travel as %.17g, which
// round-trips IEEE-754 binary64 exactly).
//
// The report deliberately carries NO backend or thread-count fields: the
// serving plan, decomposition, and histogram live entirely on the modeled
// axis, so the same command on kSequential and kThreads must produce
// byte-identical files — CI diffs them with cmp(1).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ptilu/serve/solve_service.hpp"
#include "ptilu/serve/telemetry.hpp"

namespace ptilu::serve {

/// One batch-cap point of the apply sweep: the operator identity, the
/// cost model the plan used, the full attribution, and the two latency
/// views (streaming histogram vs exact sorted sample).
struct ApplySection {
  int cap = 1;                       ///< batch_max for this sweep point
  idx n = 0;                         ///< operator rows
  std::uint64_t nnz = 0;             ///< operator nonzeros
  std::uint64_t nnz_l = 0, nnz_u = 0;  ///< factor nonzeros
  std::uint64_t fingerprint = 0;     ///< matrix_fingerprint of the operator
  BatchCostModel costs;              ///< the decomposition's unit costs
  ApplyAttribution attribution;      ///< batches + lane rollup
  std::vector<bool> cache_hit;       ///< per-batch factor-cache outcome
  LatencyHistogram hist;             ///< modeled latencies, sharded+merged
  double hist_p50 = 0.0, hist_p99 = 0.0;    ///< histogram quantile reads
  double exact_p50 = 0.0, exact_p99 = 0.0;  ///< SortedSample ground truth
};

/// The whole report. `run` carries free-form run parameters as
/// (key, raw JSON value) pairs in insertion order — callers must NOT put
/// backend/thread identity here (see file comment).
struct ServeReportV1 {
  std::vector<std::pair<std::string, std::string>> run;
  int histogram_shards = 1;  ///< shards each cap's latencies were split into
  std::vector<ApplySection> apply;
  bool has_stream = false;
  StreamAttribution stream;
  TelemetryStats telemetry;  ///< final counter totals (checker re-tallies)
};

/// Serialize to the ptilu-serve-report-v1 JSON document (deterministic:
/// fixed key order, %.17g doubles, no map iteration anywhere).
std::string write_serve_report_json(const ServeReportV1& report);

/// write_serve_report_json to a file; throws on I/O failure.
void write_serve_report_file(const ServeReportV1& report, const std::string& path);

}  // namespace ptilu::serve
