// Batched FIFO solve service: queueing plan, latency accounting, and the
// batched preconditioner-application front-end (docs/SERVING.md).
//
// The serving pipeline has two halves, split so the *decisions* stay
// deterministic while the *measurements* can still be wall-clock:
//
//  1. plan_serve() forms batches from an arrival schedule using MODELED
//     per-batch service times — a single-server FIFO queue that, whenever
//     the server frees up, takes everything waiting (up to batch_max) as
//     one batch, or idles until the next arrival. Identical inputs give
//     identical batches on every backend and every run.
//  2. replay_latencies() re-runs the same queueing recursion over the
//     frozen batch plan with measured wall service times substituted,
//     yielding wall latencies without letting timing jitter change WHICH
//     requests were batched together.
//
// Batching matters because the batched trisolves (ilu/trisolve.hpp,
// DenseRhsBlock overloads) stream the factors once per batch instead of
// once per request and carry k register-resident accumulators per row —
// so a batch of k costs far less than k single solves, and throughput
// under load rises with queue depth. The latency numbers expose the other
// side of that trade (requests wait for the server to free up).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ptilu/ilu/rhs_block.hpp"
#include "ptilu/krylov/preconditioner.hpp"
#include "ptilu/serve/traffic.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu::serve {

/// One planned batch: requests [first, first + count) of the arrival
/// schedule, served together starting at start_s.
struct Batch {
  int first = 0;
  int count = 0;
  double start_s = 0.0;    ///< max(server free, arrival of last member)
  double service_s = 0.0;  ///< modeled service time used by the plan
};

/// Per-request and aggregate latency view of one served schedule.
struct ServeReport {
  std::vector<double> latency_s;  ///< completion - arrival, per request
  double total_s = 0.0;           ///< completion time of the last batch
};

/// Decomposed modeled cost of serving one batch, in the three pieces the
/// telemetry layer attributes (docs/SERVING.md §6): a per-batch cache
/// resolve (fingerprint probe over the operator bytes), a per-batch
/// shared factor stream (L and U read once — the term batching
/// amortizes), and a per-column solve contribution (substitution flops +
/// RHS/solution traffic). total_s(k) is THE definition of a batch's
/// modeled service time: a fixed-order fold (resolve + (shared + k
/// column terms)), so the decomposition re-sums to the total bit-exactly
/// — the identity check_serve_report.py re-verifies.
struct BatchCostModel {
  double cache_resolve_s = 0.0;
  double stream_shared_s = 0.0;
  double column_solve_s = 0.0;

  double total_s(int k) const;
};

/// Cost model for a factorization with (nnz_l, nnz_u) nonzeros of an
/// n-row operator with nnz entries, at the simulator's flop/mem rates —
/// the numbers live on the same axis as machine.modeled_time().
BatchCostModel modeled_batch_costs(idx n, std::uint64_t nnz, std::uint64_t nnz_l,
                                   std::uint64_t nnz_u, double flop_t, double mem_t);

/// Legacy single-number service model: BatchCostModel::total_s without
/// the cache-resolve term (callers that never touch the cache).
double modeled_batch_service_s(int k, idx n, std::uint64_t nnz_l, std::uint64_t nnz_u,
                               double flop_t, double mem_t);

/// Form batches from an arrival schedule (arrival times strictly
/// increasing) with a single-server FIFO greedy policy: when the server is
/// free and requests are queued, serve min(queued, batch_max) of them
/// immediately; otherwise idle until the next arrival. service_s(k) maps
/// batch size to modeled service time. Deterministic in its inputs.
std::vector<Batch> plan_serve(const std::vector<Request>& schedule, int batch_max,
                              const std::function<double(int)>& service_s);

/// Latency accounting for a frozen batch plan: re-run the queueing
/// recursion using `service_per_batch[b]` as batch b's service time (pass
/// the planned times to get modeled latencies, or measured wall times to
/// get wall latencies for the SAME batching decisions).
ServeReport replay_latencies(const std::vector<Batch>& batches,
                             const std::vector<Request>& schedule,
                             const std::vector<double>& service_per_batch);

/// A sample sorted once, read many times: the old free quantile() took
/// its vector by value and re-sorted per call, so reading p50 and p99
/// sorted the same latencies twice. Construct from the raw sample (moved
/// in, sorted in place), then every quantile() read is O(1).
/// Construction throws on an empty sample — an empty latency set has no
/// quantiles, and returning 0 silently (the old behavior) hid it.
class SortedSample {
 public:
  explicit SortedSample(std::vector<double> sample);

  /// Nearest-rank quantile: the ceil(q·N)-th smallest value (1-based),
  /// clamped to the ends; q must be in [0, 1]. quantile(0) is the
  /// minimum, quantile(1) the maximum, and with ties the tied value is
  /// returned for every rank it occupies.
  double quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& values() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Apply one preconditioner to a batch of right-hand sides: columns of
/// `b` are solved into columns of `x` via the batched DenseRhsBlock
/// overloads when the factor supports them, column-by-column otherwise.
/// Column c equals the single-RHS apply of column c bit-for-bit for
/// scalar factors (the batched-kernel contract), within tolerance for
/// blocked factors.
void apply_batch(const Preconditioner& factor, const DenseRhsBlock& b, DenseRhsBlock& x);

}  // namespace ptilu::serve
