// Batched FIFO solve service: queueing plan, latency accounting, and the
// batched preconditioner-application front-end (docs/SERVING.md).
//
// The serving pipeline has two halves, split so the *decisions* stay
// deterministic while the *measurements* can still be wall-clock:
//
//  1. plan_serve() forms batches from an arrival schedule using MODELED
//     per-batch service times — a single-server FIFO queue that, whenever
//     the server frees up, takes everything waiting (up to batch_max) as
//     one batch, or idles until the next arrival. Identical inputs give
//     identical batches on every backend and every run.
//  2. replay_latencies() re-runs the same queueing recursion over the
//     frozen batch plan with measured wall service times substituted,
//     yielding wall latencies without letting timing jitter change WHICH
//     requests were batched together.
//
// Batching matters because the batched trisolves (ilu/trisolve.hpp,
// DenseRhsBlock overloads) stream the factors once per batch instead of
// once per request and carry k register-resident accumulators per row —
// so a batch of k costs far less than k single solves, and throughput
// under load rises with queue depth. The latency numbers expose the other
// side of that trade (requests wait for the server to free up).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ptilu/ilu/rhs_block.hpp"
#include "ptilu/krylov/preconditioner.hpp"
#include "ptilu/serve/traffic.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu::serve {

/// One planned batch: requests [first, first + count) of the arrival
/// schedule, served together starting at start_s.
struct Batch {
  int first = 0;
  int count = 0;
  double start_s = 0.0;    ///< max(server free, arrival of last member)
  double service_s = 0.0;  ///< modeled service time used by the plan
};

/// Per-request and aggregate latency view of one served schedule.
struct ServeReport {
  std::vector<double> latency_s;  ///< completion - arrival, per request
  double total_s = 0.0;           ///< completion time of the last batch
};

/// Modeled service time for a batch of k solves against a factorization
/// with the given nonzero counts: k times the substitution flops plus ONE
/// stream of the factor bytes (the batched kernels read L and U once per
/// batch). Uses the simulator's flop/mem rates so the numbers live on the
/// same axis as machine.modeled_time().
double modeled_batch_service_s(int k, idx n, std::uint64_t nnz_l, std::uint64_t nnz_u,
                               double flop_t, double mem_t);

/// Form batches from an arrival schedule (arrival times strictly
/// increasing) with a single-server FIFO greedy policy: when the server is
/// free and requests are queued, serve min(queued, batch_max) of them
/// immediately; otherwise idle until the next arrival. service_s(k) maps
/// batch size to modeled service time. Deterministic in its inputs.
std::vector<Batch> plan_serve(const std::vector<Request>& schedule, int batch_max,
                              const std::function<double(int)>& service_s);

/// Latency accounting for a frozen batch plan: re-run the queueing
/// recursion using `service_per_batch[b]` as batch b's service time (pass
/// the planned times to get modeled latencies, or measured wall times to
/// get wall latencies for the SAME batching decisions).
ServeReport replay_latencies(const std::vector<Batch>& batches,
                             const std::vector<Request>& schedule,
                             const std::vector<double>& service_per_batch);

/// Nearest-rank quantile (q in [0, 1]) of an unsorted sample; sorts a
/// copy. Empty input returns 0.
double quantile(std::vector<double> sample, double q);

/// Apply one preconditioner to a batch of right-hand sides: columns of
/// `b` are solved into columns of `x` via the batched DenseRhsBlock
/// overloads when the factor supports them, column-by-column otherwise.
/// Column c equals the single-RHS apply of column c bit-for-bit for
/// scalar factors (the batched-kernel contract), within tolerance for
/// blocked factors.
void apply_batch(const Preconditioner& factor, const DenseRhsBlock& b, DenseRhsBlock& x);

}  // namespace ptilu::serve
