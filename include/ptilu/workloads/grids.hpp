// Structured-grid PDE matrix generators.
//
// G0 in the paper is "a PDE discretized with centered differences on a
// grid" with ~57k equations; convection_diffusion_2d(240, 240, ...) is our
// stand-in (57,600 unknowns, 5-point stencil, nonsymmetric when convection
// is present so threshold dropping has real work to do).
#pragma once

#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu::workloads {

/// 2-D convection–diffusion  -Δu + (cx, cy)·∇u = f  on the unit square,
/// Dirichlet boundary, centered differences on an nx × ny interior grid.
/// cx = cy = 0 gives the 5-point Laplacian. Row ordering is natural
/// (lexicographic). The convection terms make the matrix nonsymmetric.
Csr convection_diffusion_2d(idx nx, idx ny, real cx = 0.0, real cy = 0.0);

/// 3-D Poisson equation, 7-point stencil on an nx × ny × nz interior grid.
Csr poisson_3d(idx nx, idx ny, idx nz);

/// 2-D anisotropic diffusion  -eps·u_xx - u_yy : small eps produces strong
/// directional coupling, a classic hard case for ILU(0) that ILUT handles.
Csr anisotropic_2d(idx nx, idx ny, real eps);

/// 5-point 2-D Laplacian with per-cell random jumps in the diffusion
/// coefficient spanning `contrast` orders of magnitude (harmonic averaging
/// at faces). Exercises threshold dropping on wildly varying magnitudes.
Csr jump_coefficient_2d(idx nx, idx ny, real contrast, std::uint64_t seed);

}  // namespace ptilu::workloads
