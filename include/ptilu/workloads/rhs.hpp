// Right-hand-side builders and matrix statistics for the experiments.
#pragma once

#include <cstdint>
#include <string>

#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu::workloads {

/// b = A·e where e is the all-ones vector (the paper's choice, §6), so the
/// exact solution of Ax = b is known to be e.
RealVec rhs_all_ones_solution(const Csr& a);

/// Deterministic pseudo-random vector with entries in [-1, 1].
RealVec random_vector(idx n, std::uint64_t seed);

struct MatrixStats {
  idx n = 0;
  nnz_t nnz = 0;
  real avg_row_nnz = 0;
  idx max_row_nnz = 0;
  real symmetry_gap = 0;  // max |a_ij - a_ji|
  bool has_full_diagonal = false;
};

MatrixStats matrix_stats(const Csr& a);
std::string describe(const MatrixStats& stats);

}  // namespace ptilu::workloads
