// Streaming (rank-local) workload generators.
//
// ROADMAP item 2 scales the simulated machine to thousands of ranks and
// 10M+ unknowns; at that size neither a rank nor the bench harness can
// afford to materialize the global matrix. These generators produce an
// arbitrary contiguous row range (a "slab") of a structured-grid operator
// directly: a caller builds exactly the rows it owns, with global column
// indices, and the slabs concatenate to the very matrix the dense
// generators produce — byte-identical CSR arrays, held by
// tests/test_workloads.cpp. The bench_scale sweep (docs/SCALING.md) streams
// one slab at a time per modeled rank, so peak memory is the largest slab
// rather than O(n), which is what lets a p=4096 / n=10M configuration run
// in host RAM.
//
// Two operators are covered:
//  * convection_diffusion_2d_rows — slabs of grids.hpp's G0 stand-in
//    (5-point stencil, natural row ordering; no assembly-order ambiguity,
//    so slabs reproduce the CooBuilder-built dense matrix exactly);
//  * torso_fv_3d / torso_fv_3d_rows — a torso-like 3-D operator designed
//    for streaming. The paper's TORSO stand-in (torso.hpp) assembles
//    trilinear FEM elements whose duplicate-entry summation order cannot
//    be reproduced row-locally; this variant keeps the torso properties
//    the experiments exercise (ellipsoidal domain, strong conductivity
//    jumps between tissues, grounded Neumann problem) but discretizes with
//    a 7-point finite-volume stencil whose rows are pure functions of the
//    voxel position, so the dense and streamed forms agree to the byte.
#pragma once

#include <cstdint>

#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"
#include "ptilu/workloads/torso.hpp"

namespace ptilu::workloads {

/// Rows [row_begin, row_end) of convection_diffusion_2d(nx, ny, cx, cy) as
/// a CSR slab: row_end - row_begin local rows, nx*ny global columns.
/// Concatenating the slabs of a partition of [0, nx*ny) reproduces the
/// dense generator's row_ptr deltas, col_idx, and values byte-for-byte.
Csr convection_diffusion_2d_rows(idx nx, idx ny, real cx, real cy,
                                 idx row_begin, idx row_end);

/// Torso-like 3-D finite-volume operator over the full nx*ny*nz voxel
/// grid: -div(sigma grad u) with harmonic face averaging, tissue
/// conductivities (muscle/lung/blood/bone) assigned per voxel from
/// deterministic ellipsoidal regions plus a stateless hash perturbation,
/// Neumann walls, and a ground_rel * sigma_muscle diagonal shift. Voxels
/// outside the ellipsoidal torso are kept as identity rows (no
/// elimination — node numbering must be position-derivable for streaming).
/// Symmetric positive definite; reuses TorsoOptions (torso.hpp).
Csr torso_fv_3d(const TorsoOptions& opts = {});

/// Rows [row_begin, row_end) of torso_fv_3d(opts), byte-identical to the
/// dense generator's row range (global columns, local row_ptr).
Csr torso_fv_3d_rows(const TorsoOptions& opts, idx row_begin, idx row_end);

}  // namespace ptilu::workloads
