// Synthetic stand-in for the paper's TORSO matrix (Klepfer et al. '95):
// a 3-D finite-element discretization of Laplace's equation modelling the
// electrocardiographic fields of the human thorax. The original mesh is
// proprietary; this generator keeps the properties the paper's experiments
// exercise — 3-D FEM connectivity (trilinear hexahedral elements, up to
// 27 nonzeros per row), strong conductivity jumps between tissues, and an
// irregular (ellipsoidal) domain boundary.
#pragma once

#include <cstdint>

#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu::workloads {

struct TorsoOptions {
  idx nx = 40, ny = 40, nz = 56;  // voxel grid enclosing the thorax
  std::uint64_t seed = 12345;     // small random perturbation of conductivities
  /// Tissue conductivities (S/m, values from the ECG literature).
  real sigma_muscle = 0.20;
  real sigma_lung = 0.04;
  real sigma_blood = 0.60;  // heart chambers
  real sigma_bone = 0.006;  // spine
  /// Relative grounding shift (× sigma_muscle) added to the diagonal to fix
  /// the floating potential of the pure-Neumann problem. Smaller values
  /// give a harder (more ill-conditioned) system, like the paper's TORSO.
  real ground_rel = 1e-5;
};

struct TorsoMatrix {
  Csr a;            // the assembled stiffness matrix (SPD after grounding)
  idx n_nodes = 0;  // number of retained (inside-domain) nodes
};

/// Assemble the stiffness matrix for -div(sigma grad u) with trilinear
/// hexahedral elements over the voxels inside an ellipsoidal "torso";
/// nodes outside the domain are eliminated (Dirichlet). A small multiple
/// of the identity grounds the potential so the matrix is nonsingular.
TorsoMatrix fem_torso_3d(const TorsoOptions& opts = {});

/// The 8x8 element stiffness matrix of a unit-cube trilinear element with
/// unit conductivity (2-point Gauss quadrature). Exposed for testing: rows
/// sum to zero and the matrix is symmetric positive semidefinite.
void unit_hex_stiffness(real k[8][8]);

}  // namespace ptilu::workloads
