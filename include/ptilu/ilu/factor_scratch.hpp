// Pooled scratch buffers for the factorization hot paths.
//
// Every factorization routine (serial ILUT/ILU(k) and the simulated-parallel
// PILUT/PILU0 drivers) processes thousands of rows, and each row needs a
// small elimination heap, a survivor buffer for the dropping rules, and
// staging space while the working row is split into L/U parts. Allocating
// those per row is exactly the overhead Saad-style ILUT implementations
// eliminate; a FactorScratch owns all of them once per factorization and is
// threaded through the row loops, so the steady state performs no heap
// allocation at all. Pooling is invisible to results: every buffer is
// (logically) cleared before reuse, so the arithmetic, the dropping
// decisions, and therefore the factors, stats, and modeled times are
// bit-identical to the allocate-per-row code. See DESIGN.md §8.
#pragma once

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "ptilu/ilu/factors.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// Binary min/max heap of column indices over caller-owned pooled storage
/// (std::priority_queue hides its container, so it cannot reuse one).
/// Construction clears the storage; push/pop are std::push_heap/pop_heap,
/// and since a working row never enqueues the same column twice the keys
/// are unique and the extraction order is exactly the comparator order —
/// identical to std::priority_queue regardless of internal heap layout.
template <typename Compare>
class PooledHeap {
 public:
  PooledHeap(IdxVec& storage, Compare cmp) : v_(&storage), cmp_(cmp) { v_->clear(); }

  bool empty() const { return v_->empty(); }

  void push(idx c) {
    v_->push_back(c);
    std::push_heap(v_->begin(), v_->end(), cmp_);
  }

  /// Remove and return the top (comparator-extreme) column.
  idx pop() {
    std::pop_heap(v_->begin(), v_->end(), cmp_);
    const idx c = v_->back();
    v_->pop_back();
    return c;
  }

 private:
  IdxVec* v_;
  Compare cmp_;
};

/// Min-heap on raw column ids — the ascending elimination order of the
/// serial and interior-phase factorizations.
using ColumnHeap = PooledHeap<std::greater<idx>>;

inline ColumnHeap make_column_heap(IdxVec& storage) {
  return ColumnHeap(storage, std::greater<idx>{});
}

/// One factorization's worth of reusable buffers. Default-constructed empty;
/// each buffer grows to the high-water mark of the run and stays there.
struct FactorScratch {
  IdxVec heap;                             ///< elimination-heap backing storage
  std::vector<std::pair<idx, real>> kept;  ///< select_largest survivor buffer
  SparseRow lstage;                        ///< staging for the L part of a split row
  SparseRow ustage;                        ///< staging for the U part of a split row
};

/// The blocked factorization's counterpart of FactorScratch: the panel loop
/// reuses one elimination heap, one per-pivot multiplier tile, and one
/// block-dropping selection buffer across all panels, so the steady state
/// is allocation-free just like the scalar path (DESIGN.md §8, §13).
struct PanelScratch {
  IdxVec heap;                             ///< elimination-heap backing storage
  RealVec mult;                            ///< current pivot's nb multipliers
  std::vector<std::pair<real, idx>> tiles; ///< (Frobenius², column) dropping buffer
};

}  // namespace ptilu
