// The safeguarded pivot substitution shared by every factorization driver
// (serial ILUT/ILU(k)/blocked, simulated-parallel PILUT/PILU0/nested).
//
// A threshold factorization can drive a diagonal entry arbitrarily close to
// zero (dropping removes exactly the mass that kept it away), and the next
// row then divides by it: an exactly-zero pivot used to throw, but a
// *near*-zero one silently produced an overflowing multiplier that poisoned
// the factors with inf/nan. The guard replaces both cases with the paper's
// safeguarded substitution — a sign-preserving floor at a relative epsilon
// (floor_abs = pivot_rel * ||a_i||) — and every substitution is counted, so
// the per-rank fill/drop registry can report where the matrix fought back.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "ptilu/support/check.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// Return the pivot to divide by for row `row` whose computed diagonal is
/// `diag`, with the guard floor `floor_abs` (0 = guard disabled).
///
///  * Guard enabled (floor_abs > 0): a pivot with |diag| < floor_abs is
///    replaced by the floor, keeping its sign (+floor for an exact zero),
///    and `guarded` is incremented.
///  * Guard disabled (floor_abs == 0): an exactly-zero pivot throws, as
///    before — and so does a *subnormal* one, whose reciprocal overflows to
///    inf and used to corrupt the factors without any diagnostic. Normal
///    pivots pass through untouched, so disabling the guard still yields
///    bit-identical factors on every well-pivoted matrix.
inline real safeguard_pivot(idx row, real diag, real floor_abs, std::uint64_t& guarded) {
  if (floor_abs > 0.0) {
    if (std::abs(diag) >= floor_abs) return diag;
    ++guarded;
    return diag == 0.0 ? floor_abs : std::copysign(floor_abs, diag);
  }
  PTILU_CHECK(std::abs(diag) >= std::numeric_limits<real>::min(),
              "zero or subnormal pivot " << diag << " at row " << row
                                         << " (enable pivot_rel to guard)");
  return diag;
}

}  // namespace ptilu
