// Register-blocked dense tile micro-kernels for the supernodal ILUT path.
//
// A panel of nb consecutive rows stores each factor column as a contiguous
// nb-wide tile, so the two inner loops that dominate factorization and
// triangular solves — "subtract multiplier times a U entry from the working
// row" and "subtract a factor column times a solution entry from the
// accumulator" — become the same operation: w[j] -= m[j] * s for j < nb.
// The kernel is instantiated at the fixed widths the panel detector emits
// (1, 2, 4, 8), each a straight-line loop with a compile-time trip count
// over contiguous doubles, which the compiler auto-vectorizes; the runtime
// dispatch below selects the instantiation once per call site. The generic
// runtime-width fallback keeps arbitrary widths correct (it is never hit by
// panels from detect_panels, which only produces power-of-two widths).
// Throughput of each width is pinned by micro_kernels.cpp. See DESIGN.md §13.
#pragma once

#include "ptilu/support/types.hpp"

namespace ptilu {

/// w[j] -= m[j] * s for j in [0, NB) — the fused update both the blocked
/// working-row elimination and the blocked trisolves reduce to.
template <int NB>
inline void tile_axpy(real* PTILU_RESTRICT w, const real* PTILU_RESTRICT m, real s) {
  for (int j = 0; j < NB; ++j) w[j] -= m[j] * s;
}

/// Runtime-width dispatch to the fixed-width instantiations.
inline void tile_axpy_any(int nb, real* PTILU_RESTRICT w, const real* PTILU_RESTRICT m,
                          real s) {
  switch (nb) {
    case 8: tile_axpy<8>(w, m, s); return;
    case 4: tile_axpy<4>(w, m, s); return;
    case 2: tile_axpy<2>(w, m, s); return;
    case 1: tile_axpy<1>(w, m, s); return;
    default:
      for (int j = 0; j < nb; ++j) w[j] -= m[j] * s;
  }
}

/// Forward-substitute one nb-wide column tile against the unit-lower part
/// of a panel's dense diagonal block: t[j] -= D[j][jp] * t[jp] for jp < j.
/// `diag` is the row-major nb x nb diagonal block (strict lower = the
/// intra-panel multipliers). Triangular, so the trip count shrinks with jp;
/// still contiguous in j for each jp.
template <int NB>
inline void tile_trsv_lower(real* PTILU_RESTRICT t, const real* PTILU_RESTRICT diag) {
  for (int jp = 0; jp < NB - 1; ++jp) {
    const real s = t[jp];
    if (s == 0.0) continue;
    for (int j = jp + 1; j < NB; ++j) t[j] -= diag[j * NB + jp] * s;
  }
}

inline void tile_trsv_lower_any(int nb, real* PTILU_RESTRICT t,
                                const real* PTILU_RESTRICT diag) {
  switch (nb) {
    case 8: tile_trsv_lower<8>(t, diag); return;
    case 4: tile_trsv_lower<4>(t, diag); return;
    case 2: tile_trsv_lower<2>(t, diag); return;
    case 1: return;  // width-1 diagonal block has no strict lower part
    default:
      for (int jp = 0; jp < nb - 1; ++jp) {
        const real s = t[jp];
        if (s == 0.0) continue;
        for (int j = jp + 1; j < nb; ++j) t[j] -= diag[j * nb + jp] * s;
      }
  }
}

/// Squared Frobenius norm of an nb-wide tile — the block dropping criterion.
inline real tile_frob2(int nb, const real* t) {
  real acc = 0.0;
  for (int j = 0; j < nb; ++j) acc += t[j] * t[j];
  return acc;
}

}  // namespace ptilu
