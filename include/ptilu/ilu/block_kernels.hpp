// Register-blocked dense tile micro-kernels for the supernodal ILUT path.
//
// A panel of nb consecutive rows stores each factor column as a contiguous
// nb-wide tile, so the two inner loops that dominate factorization and
// triangular solves — "subtract multiplier times a U entry from the working
// row" and "subtract a factor column times a solution entry from the
// accumulator" — become the same operation: w[j] -= m[j] * s for j < nb.
// The kernel is instantiated at the fixed widths the panel detector emits
// (1, 2, 4, 8), each a straight-line loop with a compile-time trip count
// over contiguous doubles, which the compiler auto-vectorizes; the runtime
// dispatch below selects the instantiation once per call site. The generic
// runtime-width fallback keeps arbitrary widths correct (it is never hit by
// panels from detect_panels, which only produces power-of-two widths).
// Throughput of each width is pinned by micro_kernels.cpp. See DESIGN.md §13.
#pragma once

#include "ptilu/support/types.hpp"

namespace ptilu {

/// w[j] -= m[j] * s for j in [0, NB) — the fused update both the blocked
/// working-row elimination and the blocked trisolves reduce to.
template <int NB>
inline void tile_axpy(real* PTILU_RESTRICT w, const real* PTILU_RESTRICT m, real s) {
  for (int j = 0; j < NB; ++j) w[j] -= m[j] * s;
}

/// Runtime-width dispatch to the fixed-width instantiations.
inline void tile_axpy_any(int nb, real* PTILU_RESTRICT w, const real* PTILU_RESTRICT m,
                          real s) {
  switch (nb) {
    case 8: tile_axpy<8>(w, m, s); return;
    case 4: tile_axpy<4>(w, m, s); return;
    case 2: tile_axpy<2>(w, m, s); return;
    case 1: tile_axpy<1>(w, m, s); return;
    default:
      for (int j = 0; j < nb; ++j) w[j] -= m[j] * s;
  }
}

/// Forward-substitute one nb-wide column tile against the unit-lower part
/// of a panel's dense diagonal block: t[j] -= D[j][jp] * t[jp] for jp < j.
/// `diag` is the row-major nb x nb diagonal block (strict lower = the
/// intra-panel multipliers). Triangular, so the trip count shrinks with jp;
/// still contiguous in j for each jp.
template <int NB>
inline void tile_trsv_lower(real* PTILU_RESTRICT t, const real* PTILU_RESTRICT diag) {
  for (int jp = 0; jp < NB - 1; ++jp) {
    const real s = t[jp];
    if (s == 0.0) continue;
    for (int j = jp + 1; j < NB; ++j) t[j] -= diag[j * NB + jp] * s;
  }
}

inline void tile_trsv_lower_any(int nb, real* PTILU_RESTRICT t,
                                const real* PTILU_RESTRICT diag) {
  switch (nb) {
    case 8: tile_trsv_lower<8>(t, diag); return;
    case 4: tile_trsv_lower<4>(t, diag); return;
    case 2: tile_trsv_lower<2>(t, diag); return;
    case 1: return;  // width-1 diagonal block has no strict lower part
    default:
      for (int jp = 0; jp < nb - 1; ++jp) {
        const real s = t[jp];
        if (s == 0.0) continue;
        for (int j = jp + 1; j < nb; ++j) t[j] -= diag[j * nb + jp] * s;
      }
  }
}

/// Squared Frobenius norm of an nb-wide tile — the block dropping criterion.
inline real tile_frob2(int nb, const real* t) {
  real acc = 0.0;
  for (int j = 0; j < nb; ++j) acc += t[j] * t[j];
  return acc;
}

// ---- Multi-RHS (nb x k) variants --------------------------------------
//
// The batched triangular solves (trisolve.hpp, DenseRhsBlock) carry k
// independent right-hand sides through one sweep over the factor. Per
// nonzero the single-RHS kernels above do one fused multiply-subtract; the
// multi-RHS kernels do k of them against k solution columns, which breaks
// the FMA latency chain (the k accumulators are independent) and reuses
// the just-loaded factor entry k times. Column c's arithmetic is exactly
// the single-RHS order — batching only interleaves independent columns —
// so batched results are bit-identical column-for-column (scalar path;
// held by tests/test_serve.cpp).
//
// `s` points at row entries of a column-major n x k block: the value for
// column c is s[c * s_stride] (s_stride = the block's row count n).

/// acc[c] -= a * s[c * s_stride] for c in [0, K) — the scalar-factor
/// batched inner kernel (one CSR entry against K solution columns).
template <int K>
inline void rhs_axpy(real* PTILU_RESTRICT acc, real a, const real* PTILU_RESTRICT s,
                     std::size_t s_stride) {
  for (int c = 0; c < K; ++c) acc[c] -= a * s[c * s_stride];
}

/// Runtime-width dispatch to the fixed-K instantiations.
inline void rhs_axpy_any(int k, real* PTILU_RESTRICT acc, real a,
                         const real* PTILU_RESTRICT s, std::size_t s_stride) {
  switch (k) {
    case 8: rhs_axpy<8>(acc, a, s, s_stride); return;
    case 4: rhs_axpy<4>(acc, a, s, s_stride); return;
    case 2: rhs_axpy<2>(acc, a, s, s_stride); return;
    case 1: rhs_axpy<1>(acc, a, s, s_stride); return;
    default:
      for (int c = 0; c < k; ++c) acc[c] -= a * s[c * s_stride];
  }
}

/// The nb x k tile kernel: subtract an nb-wide factor-column tile times K
/// solution entries from K panel accumulators. `acc` holds K column-major
/// nb-tiles (column c's tile at acc[c*NB .. c*NB+NB)); `m` is the tile.
template <int NB, int K>
inline void tile_axpy_rhs(real* PTILU_RESTRICT acc, const real* PTILU_RESTRICT m,
                          const real* PTILU_RESTRICT s, std::size_t s_stride) {
  for (int c = 0; c < K; ++c) {
    const real sc = s[c * s_stride];
    for (int j = 0; j < NB; ++j) acc[c * NB + j] -= m[j] * sc;
  }
}

namespace detail {
template <int NB>
inline void tile_axpy_rhs_k(int k, real* PTILU_RESTRICT acc,
                            const real* PTILU_RESTRICT m,
                            const real* PTILU_RESTRICT s, std::size_t s_stride) {
  switch (k) {
    case 8: tile_axpy_rhs<NB, 8>(acc, m, s, s_stride); return;
    case 4: tile_axpy_rhs<NB, 4>(acc, m, s, s_stride); return;
    case 2: tile_axpy_rhs<NB, 2>(acc, m, s, s_stride); return;
    case 1: tile_axpy_rhs<NB, 1>(acc, m, s, s_stride); return;
    default:
      for (int c = 0; c < k; ++c) {
        const real sc = s[c * s_stride];
        for (int j = 0; j < NB; ++j) acc[c * NB + j] -= m[j] * sc;
      }
  }
}
}  // namespace detail

/// Runtime (nb, k) dispatch to the fixed-size nb x k instantiations. Both
/// dimensions come from {1, 2, 4, 8} on the hot paths (panel widths from
/// detect_panels, batch groups from the batched solves); the generic
/// fallback keeps arbitrary sizes correct.
inline void tile_axpy_rhs_any(int nb, int k, real* PTILU_RESTRICT acc,
                              const real* PTILU_RESTRICT m,
                              const real* PTILU_RESTRICT s, std::size_t s_stride) {
  switch (nb) {
    case 8: detail::tile_axpy_rhs_k<8>(k, acc, m, s, s_stride); return;
    case 4: detail::tile_axpy_rhs_k<4>(k, acc, m, s, s_stride); return;
    case 2: detail::tile_axpy_rhs_k<2>(k, acc, m, s, s_stride); return;
    case 1: detail::tile_axpy_rhs_k<1>(k, acc, m, s, s_stride); return;
    default:
      for (int c = 0; c < k; ++c) {
        const real sc = s[c * s_stride];
        for (int j = 0; j < nb; ++j) acc[c * nb + j] -= m[j] * sc;
      }
  }
}

}  // namespace ptilu
