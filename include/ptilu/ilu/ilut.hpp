// Sequential ILUT(m, t) — Saad's dual-threshold incomplete LU
// factorization, Algorithm 2.1 of the paper.
//
// For every row i, a working row w accumulates the Gaussian elimination of
// row i against already-factored rows:
//   * 1st dropping rule: a multiplier w_k = w_k / u_kk is discarded when
//     |w_k| < tau_i, where tau_i = t * ||a_i||_2 is the relative tolerance
//     from the ORIGINAL row's 2-norm;
//   * 2nd dropping rule: after elimination, entries below tau_i are
//     discarded and only the m largest-magnitude entries are kept in the
//     L part and the m largest in the U part. The diagonal is always kept.
#pragma once

#include <cstdint>

#include "ptilu/ilu/factors.hpp"
#include "ptilu/sparse/csr.hpp"

namespace ptilu {

struct IlutOptions {
  /// Maximum nonzeros kept per row of L and (separately) of U, excluding
  /// the always-kept diagonal of U.
  idx m = 10;
  /// Relative drop tolerance t; tau_i = t * ||a_i||_2.
  real tau = 1e-4;
  /// Pivot guard: if |u_ii| < pivot_rel * ||a_i||_2 after factoring row i,
  /// the pivot is replaced by that floor (keeping its sign; a +floor for an
  /// exact zero), and the substitution is counted in
  /// IlutStats::pivots_guarded (per rank under the parallel drivers, as
  /// the "factor/pivots_guarded" metrics counter).
  /// 0 disables the guard, in which case a zero or subnormal pivot throws
  /// ptilu::Error — the paper's algorithm has no recovery either, and a
  /// subnormal would overflow the reciprocal just as fatally.
  real pivot_rel = 0.0;
};

struct IlutStats {
  std::uint64_t flops = 0;        // multiply-adds and divides performed
  std::uint64_t dropped_rule1 = 0;
  std::uint64_t dropped_rule2 = 0;
  std::uint64_t pivots_guarded = 0;
};

/// Factor A (square, natural order). Throws on structural problems or an
/// unguarded zero pivot.
IluFactors ilut(const Csr& a, const IlutOptions& opts, IlutStats* stats = nullptr);

/// ILU(0): zero-fill incomplete factorization on the sparsity pattern of A
/// (the static baseline the paper contrasts with, Figure 1a).
IluFactors ilu0(const Csr& a, IlutStats* stats = nullptr);

/// ILU(k): level-of-fill incomplete factorization. Fill entries are allowed
/// when their fill level does not exceed `level`. ILU(0) == iluk(a, 0).
IluFactors iluk(const Csr& a, idx level, IlutStats* stats = nullptr);

}  // namespace ptilu
