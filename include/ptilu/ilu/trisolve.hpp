// Sequential triangular solves with ILU factors, and preconditioner
// application (optionally under the symmetric permutation produced by the
// parallel factorization).
#pragma once

#include <span>

#include "ptilu/ilu/factors.hpp"
#include "ptilu/ilu/rhs_block.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// Solve L y = b where L is unit lower triangular (diagonal implicit).
void forward_solve(const Csr& l, std::span<const real> b, std::span<real> y);

/// Solve U x = y where each U row stores its diagonal first.
void backward_solve(const Csr& u, std::span<const real> y, std::span<real> x);

/// x = U^{-1} L^{-1} b — apply M^{-1} for M = LU.
void ilu_apply(const IluFactors& factors, std::span<const real> b, std::span<real> x);

/// Apply factors that were computed on the permuted matrix P A P^T:
/// x = P^{-1} U^{-1} L^{-1} P b, where new_of[old] is the permutation.
/// This is how the PILUT preconditioner is used inside GMRES.
void ilu_apply_permuted(const IluFactors& factors, const IdxVec& new_of,
                        std::span<const real> b, std::span<real> x);

/// Blocked trisolves over supernodal factors: per panel, the external
/// column tiles are gathered with the same register-blocked kernel the
/// factorization uses, then the small dense diagonal block is solved in
/// registers. Equivalent accumulation order to the CSR solves up to
/// floating-point reassociation within a panel.
void forward_solve(const BlockedFactors& f, std::span<const real> b, std::span<real> y);
void backward_solve(const BlockedFactors& f, std::span<const real> y, std::span<real> x);

/// x = U^{-1} L^{-1} b with blocked factors — the blocked preconditioner
/// application.
void ilu_apply(const BlockedFactors& f, std::span<const real> b, std::span<real> x);

// ---- Batched multi-RHS solves (the serving hot path) -------------------
//
// One sweep over the factor carries all k columns of a DenseRhsBlock: per
// CSR entry (or panel tile) the k independent accumulators update together
// (block_kernels.hpp rhs kernels), which breaks the single-RHS FMA latency
// chain and reuses each loaded factor entry k times. Column c of the
// result is bit-identical to the single-RHS solve of column c for the
// scalar CSR overloads (per column the accumulation order is exactly the
// single-RHS order); the blocked overloads match their single-RHS blocked
// counterparts the same way. Held by tests/test_serve.cpp for
// k in {1, 2, 4, 8, 13}.

/// Solve L Y = B column-wise, one sweep over L.
void forward_solve(const Csr& l, const DenseRhsBlock& b, DenseRhsBlock& y);

/// Solve U X = Y column-wise, one sweep over U (diag-first rows).
void backward_solve(const Csr& u, const DenseRhsBlock& y, DenseRhsBlock& x);

/// X = U^{-1} L^{-1} B — batched preconditioner application.
void ilu_apply(const IluFactors& factors, const DenseRhsBlock& b, DenseRhsBlock& x);

/// Blocked-factor batched solves: nb x k register tiles per panel.
void forward_solve(const BlockedFactors& f, const DenseRhsBlock& b, DenseRhsBlock& y);
void backward_solve(const BlockedFactors& f, const DenseRhsBlock& y, DenseRhsBlock& x);
void ilu_apply(const BlockedFactors& f, const DenseRhsBlock& b, DenseRhsBlock& x);

}  // namespace ptilu
