// Container for incomplete LU factors and shared dropping-rule kernels.
#pragma once

#include <utility>
#include <vector>

#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// Result of an incomplete factorization A ≈ L·U.
/// L is strictly lower triangular with an implicit unit diagonal;
/// U is upper triangular and always stores the diagonal.
struct IluFactors {
  Csr l;
  Csr u;

  idx n() const { return l.n_rows; }

  /// Structural sanity: L strictly lower, U upper with full nonzero diagonal.
  void validate() const;

  /// nnz(L) + nnz(U) relative to nnz(A) — the usual fill-factor metric.
  double fill_factor(nnz_t nnz_a) const;
};

/// One sparse row under construction: parallel column/value arrays.
struct SparseRow {
  IdxVec cols;
  RealVec vals;

  void clear() {
    cols.clear();
    vals.clear();
  }
  std::size_t size() const { return cols.size(); }
  void push(idx c, real v) {
    cols.push_back(c);
    vals.push_back(v);
  }
};

/// The ILUT dropping-rule selection kernel: keep the entries with magnitude
/// >= tau, and of those at most keep_count of the largest. The comparator
/// is the strict total order (|value| descending, column ascending), so
/// selection is deterministic under ties — both the serial and the
/// simulated-parallel factorizations rely on agreeing here. always_keep
/// (if >= 0) names a column retained unconditionally (the diagonal).
/// The surviving entries are returned sorted by column.
///
/// The 5-argument form stages survivors in the caller-provided `kept`
/// buffer (cleared on entry), making the call allocation-free once the
/// buffer is warm — hot loops pass FactorScratch::kept. The 4-argument
/// convenience form uses a local buffer.
void select_largest(SparseRow& row, idx keep_count, real tau, idx always_keep,
                    std::vector<std::pair<idx, real>>& kept);
void select_largest(SparseRow& row, idx keep_count, real tau, idx always_keep = -1);

/// Concatenate per-row cols/vals into a CSR matrix in one pass over the
/// rows, writing into exactly-sized storage (no growth reallocation).
Csr rows_to_csr(idx n, const std::vector<SparseRow>& rows);

}  // namespace ptilu
