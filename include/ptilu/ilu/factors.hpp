// Container for incomplete LU factors and shared dropping-rule kernels.
#pragma once

#include <utility>
#include <vector>

#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// Result of an incomplete factorization A ≈ L·U.
/// L is strictly lower triangular with an implicit unit diagonal;
/// U is upper triangular and always stores the diagonal.
struct IluFactors {
  Csr l;
  Csr u;

  idx n() const { return l.n_rows; }

  /// Structural sanity: L strictly lower, U upper with full nonzero diagonal.
  void validate() const;

  /// nnz(L) + nnz(U) relative to nnz(A) — the usual fill-factor metric.
  double fill_factor(nnz_t nnz_a) const;
};

/// One sparse row under construction: parallel column/value arrays.
struct SparseRow {
  IdxVec cols;
  RealVec vals;

  void clear() {
    cols.clear();
    vals.clear();
  }
  std::size_t size() const { return cols.size(); }
  void push(idx c, real v) {
    cols.push_back(c);
    vals.push_back(v);
  }
};

/// The ILUT dropping-rule selection kernel: keep the entries with magnitude
/// >= tau, and of those at most keep_count of the largest. The comparator
/// is the strict total order (|value| descending, column ascending), so
/// selection is deterministic under ties — both the serial and the
/// simulated-parallel factorizations rely on agreeing here. always_keep
/// (if >= 0) names a column retained unconditionally (the diagonal).
/// The surviving entries are returned sorted by column.
///
/// The 5-argument form stages survivors in the caller-provided `kept`
/// buffer (cleared on entry), making the call allocation-free once the
/// buffer is warm — hot loops pass FactorScratch::kept. The 4-argument
/// convenience form uses a local buffer.
void select_largest(SparseRow& row, idx keep_count, real tau, idx always_keep,
                    std::vector<std::pair<idx, real>>& kept);
void select_largest(SparseRow& row, idx keep_count, real tau, idx always_keep = -1);

/// Concatenate per-row cols/vals into a CSR matrix in one pass over the
/// rows, writing into exactly-sized storage (no growth reallocation).
Csr rows_to_csr(idx n, const std::vector<SparseRow>& rows);

/// Supernodal/blocked incomplete factors: rows are grouped into contiguous
/// panels (see supernodes.hpp) and every factor column a panel keeps is one
/// dense nb-wide tile, nb = the panel width. Per panel p covering rows
/// [r0, r0+nb):
///
///  * `lcols[p]` — sorted external L columns (all < r0); `lvals[p]` holds
///    one tile per column, tile entry j = the multiplier of row r0+j
///    (explicit zeros pad rows whose scalar pattern lacked the column).
///  * `diag[p]` — the dense nb x nb diagonal block, row-major: the strict
///    lower part stores the intra-panel multipliers (unit diagonal
///    implicit), the upper part including the diagonal stores U.
///  * `ucols[p]` / `uvals[p]` — sorted external U columns (all >= r0+nb),
///    tiled the same way; entry j = U(r0+j, c).
///
/// The layout is what the register-blocked kernels consume directly: a
/// column's tile is contiguous, so the working-row update and both
/// trisolves run fixed-width dense loops (block_kernels.hpp).
struct BlockedFactors {
  idx n = 0;
  IdxVec panel_start;            ///< np+1 boundaries, power-of-two widths
  std::vector<IdxVec> lcols;
  std::vector<RealVec> lvals;
  std::vector<RealVec> diag;
  std::vector<IdxVec> ucols;
  std::vector<RealVec> uvals;

  idx n_panels() const { return static_cast<idx>(panel_start.size()) - 1; }
  int width(idx p) const {
    return static_cast<int>(panel_start[p + 1] - panel_start[p]);
  }

  /// Stored values (tiles are dense, so padding zeros count): the memory
  /// footprint the blocked format actually pays for.
  nnz_t stored_entries() const;

  /// Structural nonzeros (padding excluded) — comparable to scalar nnz.
  nnz_t nnz() const;

  /// Structural sanity: boundaries cover [0, n) with power-of-two widths,
  /// external column lists sorted and on the correct side of the panel,
  /// tile sizes consistent, U diagonal entries nonzero.
  void validate() const;

  /// nnz(L) + nnz(U) relative to nnz(A), padding excluded — directly
  /// comparable to IluFactors::fill_factor.
  double fill_factor(nnz_t nnz_a) const;

  /// Expand into scalar CSR factors (padding zeros skipped, U diag-first).
  /// For validation and differential tests, not the hot path.
  IluFactors to_csr() const;
};

}  // namespace ptilu
