// Relaxed supernode amalgamation for the blocked ILUT path.
//
// The blocked factorization processes a panel of consecutive rows jointly,
// storing every factor column the panel touches as one dense nb-wide tile.
// That only pays off when the rows' sparsity patterns (near-)coincide:
// every column in the panel's pattern union is stored for every row, so
// pattern mismatch becomes explicit zero padding. The detector below walks
// the rows of A greedily and merges a row into the current panel while the
// padding stays within a slack budget — the classic relaxed-supernode
// scheme (Ashcraft/Grimes; Bollhöfer et al. use the same idea for block
// ILU), with the slack knob trading kernel width against wasted arithmetic.
#pragma once

#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

struct PanelOptions {
  /// Maximum panel width. Panels are always emitted at power-of-two widths
  /// (1, 2, 4, 8, ...) so every panel runs a fixed-width tile kernel.
  int max_panel = 4;
  /// Padding slack: rows r0..r0+w-1 form a panel only while
  ///   w * |union of their patterns| <= (1 + slack) * (sum of their lengths),
  /// i.e. the dense tiles may carry at most `slack` times the useful entries
  /// as padding. 0 demands identical patterns; larger values widen panels.
  real slack = 1.5;
};

/// Partition [0, n) into contiguous panels. Returns the panel boundary
/// array: panel p covers rows [out[p], out[p+1]), out.front() == 0,
/// out.back() == a.n_rows, and every width out[p+1]-out[p] is a power of
/// two <= max_panel. Patterns are taken from A with the diagonal added
/// (the factorization keeps the diagonal structurally, so it is never
/// padding).
IdxVec detect_panels(const Csr& a, const PanelOptions& opts);

}  // namespace ptilu
