// The dense working row with a companion nonzero list — the data structure
// the ILUT paper (and Saad's SPARSKIT implementation) uses to accumulate
// linear combinations of sparse rows during elimination. Shared by the
// serial ILUT/ILU(k) factorizations and the simulated-parallel PILUT.
//
// Presence is tracked by an epoch-stamped byte array instead of a
// std::vector<bool> bitmap: present(c) is a single byte compare against the
// current epoch, and clear() is a counter bump (plus dropping the nonzero
// list) rather than an O(touched) sweep. The stamp wraps every 255 clears,
// at which point the whole array is memset once — amortized O(n/255) per
// clear, invisible next to the elimination work between clears.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ptilu/support/check.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

class WorkingRow {
 public:
  explicit WorkingRow(idx n) : value_(n, 0.0), stamp_(n, 0) {}

  idx capacity() const { return static_cast<idx>(value_.size()); }

  bool present(idx c) const { return stamp_[c] == epoch_; }
  real value(idx c) const { return value_[c]; }

  /// Introduce a column (must not be present yet).
  void insert(idx c, real v) {
    PTILU_ASSERT(!present(c), "column " << c << " already present");
    stamp_[c] = epoch_;
    value_[c] = v;
    nonzeros_.push_back(c);
  }

  /// Add into an existing column (must be present).
  void accumulate(idx c, real v) {
    PTILU_ASSERT(present(c), "column " << c << " not present");
    value_[c] += v;
  }

  void set(idx c, real v) {
    PTILU_ASSERT(present(c), "column " << c << " not present");
    value_[c] = v;
  }

  /// Columns touched since the last clear(), in insertion order.
  const IdxVec& touched() const { return nonzeros_; }

  /// O(1) reset: advance the epoch so every stamp goes stale at once.
  void clear() {
    nonzeros_.clear();
    if (++epoch_ == 0) {  // stamp wrapped: invalidate stale stamps in bulk
      std::fill(stamp_.begin(), stamp_.end(), std::uint8_t{0});
      epoch_ = 1;
    }
  }

 private:
  RealVec value_;
  std::vector<std::uint8_t> stamp_;  // presence = (stamp_[c] == epoch_)
  IdxVec nonzeros_;
  std::uint8_t epoch_ = 1;  // 0 is reserved as "never stamped"
};

/// The panelized working row of the blocked ILUT path: the same
/// epoch-stamped presence scheme as WorkingRow, but every column owns a
/// contiguous `stride`-wide tile of values — entry j of column c's tile is
/// the working value of panel row j at column c. insert() zeroes the whole
/// tile (the padding rows start at zero), and tile() hands the kernels a
/// raw pointer so the nb-wide updates are single contiguous loops.
class PanelWorkingRow {
 public:
  PanelWorkingRow(idx n, int stride)
      : stride_(stride),
        value_(static_cast<std::size_t>(n) * static_cast<std::size_t>(stride), 0.0),
        stamp_(n, 0) {
    PTILU_CHECK(stride >= 1, "panel stride must be positive");
  }

  idx capacity() const { return static_cast<idx>(stamp_.size()); }
  int stride() const { return stride_; }

  bool present(idx c) const { return stamp_[c] == epoch_; }

  real* tile(idx c) {
    PTILU_ASSERT(present(c), "column " << c << " not present");
    return value_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(stride_);
  }
  const real* tile(idx c) const {
    PTILU_ASSERT(present(c), "column " << c << " not present");
    return value_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(stride_);
  }

  /// Introduce a column (must not be present yet): stamps it, zeroes its
  /// tile, and returns the tile pointer.
  real* insert(idx c) {
    PTILU_ASSERT(!present(c), "column " << c << " already present");
    stamp_[c] = epoch_;
    nonzeros_.push_back(c);
    real* t = value_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(stride_);
    std::fill(t, t + stride_, 0.0);
    return t;
  }

  /// Columns touched since the last clear(), in insertion order.
  const IdxVec& touched() const { return nonzeros_; }

  /// O(1) reset: advance the epoch so every stamp goes stale at once.
  /// Stale tiles keep their values — insert() re-zeroes on next use — so
  /// only the stamp array needs the wrap-time bulk invalidation.
  void clear() {
    nonzeros_.clear();
    if (++epoch_ == 0) {  // stamp wrapped: invalidate stale stamps in bulk
      std::fill(stamp_.begin(), stamp_.end(), std::uint8_t{0});
      epoch_ = 1;
    }
  }

 private:
  int stride_;
  RealVec value_;
  std::vector<std::uint8_t> stamp_;  // presence = (stamp_[c] == epoch_)
  IdxVec nonzeros_;
  std::uint8_t epoch_ = 1;  // 0 is reserved as "never stamped"
};

}  // namespace ptilu
