// The dense working row with a companion nonzero list — the data structure
// the ILUT paper (and Saad's SPARSKIT implementation) uses to accumulate
// linear combinations of sparse rows during elimination. Shared by the
// serial ILUT/ILU(k) factorizations and the simulated-parallel PILUT.
#pragma once

#include <vector>

#include "ptilu/support/check.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

class WorkingRow {
 public:
  explicit WorkingRow(idx n) : value_(n, 0.0), present_(n, false) {}

  idx capacity() const { return static_cast<idx>(value_.size()); }

  bool present(idx c) const { return present_[c]; }
  real value(idx c) const { return value_[c]; }

  /// Introduce a column (must not be present yet).
  void insert(idx c, real v) {
    PTILU_ASSERT(!present_[c], "column " << c << " already present");
    present_[c] = true;
    value_[c] = v;
    nonzeros_.push_back(c);
  }

  /// Add into an existing column (must be present).
  void accumulate(idx c, real v) {
    PTILU_ASSERT(present_[c], "column " << c << " not present");
    value_[c] += v;
  }

  void set(idx c, real v) {
    PTILU_ASSERT(present_[c], "column " << c << " not present");
    value_[c] = v;
  }

  /// Columns touched since the last clear(), in insertion order.
  const IdxVec& touched() const { return nonzeros_; }

  /// Sparse O(touched) reset.
  void clear() {
    for (const idx c : nonzeros_) {
      value_[c] = 0.0;
      present_[c] = false;
    }
    nonzeros_.clear();
  }

 private:
  RealVec value_;
  std::vector<bool> present_;
  IdxVec nonzeros_;
};

}  // namespace ptilu
