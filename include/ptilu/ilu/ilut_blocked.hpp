// Supernodal/blocked ILUT(m, t) — the register-blocked execution path.
//
// Rows are grouped into contiguous panels of (near-)identical sparsity
// (supernodes.hpp) and factored jointly: every factor column a panel
// touches is one dense nb-wide tile, the working-row update runs the
// fixed-width tile kernels of block_kernels.hpp, and dropping is
// block-wise — a tile survives when its Frobenius norm clears the panel's
// relative threshold, and at most m tiles are kept per side per panel
// (plus the always-kept dense diagonal block), mirroring the scalar
// per-row ceiling of m entries per side. This is the scheme of "High
// Performance Block Incomplete LU Factorization" (Bollhöfer et al.)
// adapted to the repo's row-wise ILUT.
//
// The blocked path is numerically close to, but not bit-identical with,
// the scalar ilut(): inside a panel no dropping is applied (the diagonal
// block is dense, the standard supernodal relaxation), and block-wise
// dropping keeps/discards whole tiles where the scalar rules act per
// entry. The scalar path remains the pinned reference; this path is
// validated by tolerance-based differential tests (fill within the same
// ceiling, residual norms, preconditioned-GMRES iteration parity).
// See DESIGN.md §13.
#pragma once

#include "ptilu/ilu/factors.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/supernodes.hpp"
#include "ptilu/sparse/csr.hpp"

namespace ptilu {

struct BlockedIlutOptions {
  IlutOptions base;     ///< m / tau / pivot_rel, as for the scalar path
  PanelOptions panels;  ///< amalgamation width cap and fill slack
};

/// Factor A (square, natural order) with the blocked path. Throws on
/// structural problems or an unguarded zero pivot, like ilut(). Stats use
/// the same fields as the scalar path; rule-2 drops count the nonzero
/// entries inside dropped tiles.
BlockedFactors ilut_blocked(const Csr& a, const BlockedIlutOptions& opts,
                            IlutStats* stats = nullptr);

}  // namespace ptilu
