// Column-major dense block of k right-hand sides / solution vectors.
//
// The serving workload (docs/SERVING.md) batches k independent solve
// requests against one cached factorization, so the triangular-solve hot
// loops want the k values of a single row adjacent in the iteration order
// while each column remains a contiguous vector a caller can hand out as a
// span. Column-major storage gives both: column c is data[c*n .. c*n+n),
// and the batched kernels walk row i across columns with stride n.
//
// The batched solves in trisolve.hpp / trisolve_dist.hpp guarantee that
// column c of the batched result is BIT-IDENTICAL to a single-RHS solve of
// column c (scalar CSR path) — per column the accumulation order is exactly
// the single-RHS order, batching only interleaves independent columns.
// tests/test_serve.cpp holds that contract.
#pragma once

#include <span>

#include "ptilu/support/check.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// n-by-k column-major dense block; entry (i, c) lives at data[c*n + i].
struct DenseRhsBlock {
  idx n = 0;   ///< rows (the vector length)
  int k = 0;   ///< columns (the batch width)
  RealVec data;

  DenseRhsBlock() = default;
  DenseRhsBlock(idx rows, int cols)
      : n(rows), k(cols),
        data(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {
    PTILU_CHECK(rows >= 0 && cols >= 1, "DenseRhsBlock needs n >= 0 and k >= 1");
  }

  real& at(idx i, int c) {
    return data[static_cast<std::size_t>(c) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(i)];
  }
  real at(idx i, int c) const {
    return data[static_cast<std::size_t>(c) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(i)];
  }

  /// Column c as a contiguous vector view.
  std::span<real> col(int c) {
    return {data.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(n),
            static_cast<std::size_t>(n)};
  }
  std::span<const real> col(int c) const {
    return {data.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(n),
            static_cast<std::size_t>(n)};
  }

  /// Copy a single vector into column c.
  void set_col(int c, std::span<const real> v) {
    PTILU_CHECK(v.size() == static_cast<std::size_t>(n),
                "set_col size mismatch");
    std::span<real> dst = col(c);
    for (std::size_t i = 0; i < v.size(); ++i) dst[i] = v[i];
  }
};

}  // namespace ptilu
