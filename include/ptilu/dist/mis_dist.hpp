// Distributed maximal-independent-set computation (§4.1 of the paper).
//
// Luby's algorithm with a fixed number of augmentation rounds (the paper
// uses 5: "the majority of the independent vertices are discovered during
// the first few iterations"). Per-vertex random keys are stateless hashes
// of (seed, vertex, round), so every rank evaluates the same key for any
// vertex without communication; what *is* communicated — exactly as on a
// real machine — is candidacy status: when a boundary vertex enters the
// set or becomes dominated, its owner notifies the ranks owning its
// neighbors. Selection ("my key is a strict local minimum among candidate
// neighbors, ties by id") is evaluated from the same information on every
// rank, which yields the same conflict-freedom the paper obtains with its
// two-step insert-then-retract modification for unsymmetric structures;
// the adjacency handed in must already be symmetrized (the PILUT driver
// performs that exchange — the paper's "communication setup phase").
#pragma once

#include <cstdint>
#include <vector>

#include "ptilu/sim/machine.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// A distributed graph over a subset of a global id space.
struct DistGraph {
  idx n_global = 0;                       ///< size of the global id space
  const IdxVec* owner = nullptr;          ///< global id -> owning rank
  std::vector<IdxVec> verts_of;           ///< rank -> owned active vertices (ascending)
  std::vector<std::vector<IdxVec>> adj;   ///< [rank][i] -> neighbors of verts_of[rank][i]
                                          ///< (global ids, symmetrized, active only)

  idx total_vertices() const;
  idx total_edges_directed() const;
};

struct DistMisOptions {
  std::uint64_t seed = 1;
  int rounds = 5;
};

/// Reusable dense per-rank status arrays. The PILUT driver calls mis_dist
/// once per reduced-matrix level — hundreds to thousands of times — so the
/// scratch is allocated once and reset via touched-lists between calls.
/// Besides the status arrays it pools every per-call buffer whose repeated
/// construction showed up in wall-clock profiles: the per-neighbor outgoing
/// update batches, a per-vertex CSR of remote peer ranks (so a status-change
/// notification walks the handful of peers instead of the full adjacency
/// list), and a per-round memo of the Luby vertex keys (so a key is hashed
/// once per round instead of once per incident edge). None of this changes
/// the modeled machine costs — the same messages and charges are produced.
///
/// Sparse neighbor routing: each rank's outgoing batches are indexed by a
/// *slot* into its sorted neighbor list `nbrs[rank]` (the ranks owning at
/// least one neighbor of its vertices), not by peer rank. Total batch
/// storage is O(sum of neighbor degrees) instead of the former O(p²)
/// [rank][peer] arrays, and flushing walks each rank's few slots instead of
/// all p peers per round — the allocations that blocked scaling the
/// simulated machine to thousands of ranks (ROADMAP item 2). Slots are
/// sorted by peer rank, so flushing in slot order reproduces the dense
/// peer scan's ascending send order byte-for-byte.
///
/// Buffers indexed [lane] are per-execution-lane working storage: one lane
/// under the sequential backend (shared by the ranks running one after
/// another — the seed behavior), one per rank under the threaded backend so
/// concurrent rank bodies never share mutable scratch. The key memo is a
/// pure cache of vertex_key(seed, v, round), so per-lane memoization yields
/// identical keys — just computed once per lane instead of once globally.
struct DistMisScratch {
  std::vector<std::vector<std::uint8_t>> status;  // [rank][global id]
  std::vector<IdxVec> touched;                    // entries to reset per rank

  // Pooled per-call working buffers (capacity persists across calls).
  std::vector<std::vector<int>> nbrs;          // [rank] sorted dedup'd peer ranks
  std::vector<std::vector<IdxVec>> in_batch;   // [rank][slot] queued kIn notices
  std::vector<std::vector<IdxVec>> out_batch;  // [rank][slot] queued kOut notices
  std::vector<IdxVec> peer_start;  // [rank] CSR offsets: local vertex -> peer slice
  std::vector<std::vector<int>> peer_list;  // [rank] slots into nbrs[rank], dedup'd
  std::vector<std::vector<std::uint8_t>> peer_stamp;  // [lane] dedup stamp over ranks
  std::vector<IdxVec> recv_buf;                       // [lane] message decode scratch
  std::vector<IdxVec> selected;   // [lane] per-round winners
  std::vector<long long> cand_lane;  // [lane] candidates-left partial sums

  // Lazy per-round vertex-key memo (keys are identical on every rank).
  std::vector<std::vector<std::uint64_t>> key;  // [lane][global id] memoized vertex_key
  std::vector<std::vector<std::uint32_t>> key_stamp;  // [lane][global id] round epoch
  std::uint32_t round_epoch = 0;

  void ensure(int nranks, int lanes, idx n_global);
};

/// Compute an independent set of the distributed graph; returns the chosen
/// global ids, ascending. With enough rounds the set is maximal. Never
/// returns an empty set for a non-empty graph (the globally smallest key
/// always wins its neighborhood in round 0).
IdxVec mis_dist(sim::Machine& machine, const DistGraph& graph,
                const DistMisOptions& opts = {}, DistMisScratch* scratch = nullptr);

}  // namespace ptilu
