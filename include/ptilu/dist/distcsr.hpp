// Distributed view of a sparse matrix: rows are distributed by a graph
// partition; nodes are classified interior/interface exactly as in §3 of
// the paper (an interior node is connected — in the symmetrized pattern —
// only to nodes of its own processor).
//
// The simulation runs in one address space, so the matrix itself is stored
// once; the SPMD algorithms only ever *read* rows they own and obtain
// everything else through explicit sim::Machine messages, which is what
// keeps the communication accounting faithful.
#pragma once

#include <vector>

#include "ptilu/part/partition.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

struct DistCsr {
  Csr a;                            ///< the global matrix (original indices)
  int nranks = 1;
  IdxVec owner;                     ///< owning rank of each row
  std::vector<IdxVec> owned_rows;   ///< per rank: owned rows, ascending
  std::vector<bool> interface;      ///< node touches another rank (symmetrized pattern)

  idx n() const { return a.n_rows; }
  idx interior_count(int rank) const;
  idx interface_count_total() const;

  static DistCsr create(Csr a, const Partition& p);
};

/// Static communication lists for halo exchanges of vector values, built
/// once from the matrix pattern (the paper's "communication setup phase").
struct Halo {
  /// send_lists[r] = { (peer, indices r owns and must ship to peer) },
  /// sorted by peer; indices ascending.
  std::vector<std::vector<std::pair<int, IdxVec>>> send_lists;
  /// recv_lists[r] = { (peer, indices r needs from peer) }, mirror image.
  std::vector<std::vector<std::pair<int, IdxVec>>> recv_lists;

  static Halo build(const DistCsr& dist);

  /// Total values exchanged per full exchange (sum over ranks).
  std::size_t total_exchanged() const;
};

/// Parallel sparse matrix-vector product y = A x on the simulated machine:
/// one superstep ships boundary x values per the halo lists, the next
/// computes owned rows. x and y are global arrays; rank r only reads x at
/// owned indices (remote values come from its received ghosts) and writes
/// y at owned indices.
void dist_spmv(sim::Machine& machine, const DistCsr& dist, const Halo& halo,
               const RealVec& x, RealVec& y);

}  // namespace ptilu
