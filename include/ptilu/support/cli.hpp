// Tiny command-line flag parser for benchmark harnesses and examples.
//
// Flags look like --name=value (or --name value). Unknown flags are an
// error so typos don't silently fall back to defaults mid-experiment.
// --help (both spellings: bare or --help=true) prints the flag names the
// harness actually consulted and exits 0, instead of tripping the
// unknown-flag check.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ptilu/support/types.hpp"

namespace ptilu {

class Cli {
 public:
  /// Parse argv. Throws ptilu::Error on malformed input.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --procs=16,32,64,128.
  std::vector<int> get_int_list(const std::string& name, std::vector<int> fallback) const;

  /// Comma-separated double list, e.g. --tau=1e-2,1e-4,1e-6.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> fallback) const;

  /// String flag constrained to a fixed set of spellings, e.g.
  /// --backend=threads. Returns `fallback` when the flag is absent; throws
  /// ptilu::Error (listing the valid spellings) when a provided value is
  /// outside `choices`, so a typo fails loud instead of silently falling
  /// back mid-experiment.
  std::string get_choice(const std::string& name, const std::string& fallback,
                         const std::vector<std::string>& choices) const;

  /// Generic help: lists every flag name queried so far (one per line).
  /// Meaningful only after the harness has issued all its gets, which is
  /// why check_all_consumed — not the constructor — handles --help.
  std::string help_text() const;

  /// Call after all gets. If --help was passed, prints help_text() and
  /// exits 0 (by then every get has registered its flag name). Otherwise
  /// throws if any provided flag was never consumed (catches typos in
  /// flag names); bare flags are reported as the user typed them, without
  /// the implied "=true".
  void check_all_consumed() const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> bare_;  // flags passed without a value
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace ptilu
