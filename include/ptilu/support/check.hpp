// Error handling: PTILU_CHECK for recoverable precondition violations
// (always on, throws ptilu::Error), PTILU_ASSERT for internal invariants
// (compiled out in release builds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ptilu {

/// Exception type thrown by all PTILU_CHECK failures and by library code
/// that detects invalid input (bad matrix structure, singular pivot, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace ptilu

/// Always-on check; throws ptilu::Error with location info on failure.
/// Usage: PTILU_CHECK(n > 0, "matrix dimension must be positive, got " << n);
#define PTILU_CHECK(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream ptilu_oss_;                                        \
      ptilu_oss_ << msg; /* NOLINT */                                       \
      ::ptilu::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                           ptilu_oss_.str());               \
    }                                                                       \
  } while (0)

/// Debug-only internal invariant check.
#ifdef NDEBUG
#define PTILU_ASSERT(expr, msg) ((void)0)
#else
#define PTILU_ASSERT(expr, msg) PTILU_CHECK(expr, msg)
#endif
