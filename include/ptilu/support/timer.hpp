// Wall-clock timer for benchmark harnesses.
#pragma once

#include <chrono>

namespace ptilu {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ptilu
