// Wall-clock timer for benchmark harnesses.
#pragma once

#include <chrono>

namespace ptilu {

class WallTimer {
 public:
  // This class IS the sanctioned wall-clock access point: benchmarks time
  // real execution with it, and nothing modeled may depend on its readings.
  // ptilu-lint: allow(determinism-banned-calls)
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }  // ptilu-lint: allow(determinism-banned-calls)

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    // ptilu-lint: allow(determinism-banned-calls)
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ptilu
