// Deterministic random number generation.
//
// Two facilities:
//  * Rng — a xoshiro256** stream for sequential use (workload generators,
//    randomized tests).
//  * mix64 / vertex_key — stateless SplitMix64-style hashing used by the
//    distributed Luby MIS: every rank computes the *same* key for a given
//    (seed, vertex, round) triple without communication, which keeps the
//    simulated-parallel algorithm deterministic and reproducible.
#pragma once

#include <cstdint>

#include "ptilu/support/types.hpp"

namespace ptilu {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless per-vertex random key for Luby's algorithm. Combining the
/// round index means retries in later augmentation rounds see fresh keys.
constexpr std::uint64_t vertex_key(std::uint64_t seed, idx vertex, int round) {
  return mix64(mix64(seed ^ (0xA24BAED4963EE407ULL + static_cast<std::uint64_t>(vertex))) +
               static_cast<std::uint64_t>(round) * 0x9FB21C651E98DF25ULL);
}

/// xoshiro256** PRNG (Blackman & Vigna). Deterministic given a seed,
/// much faster than std::mt19937_64, and trivially copyable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    // Seed the four words via SplitMix64 as recommended by the authors.
    for (auto& word : state_) {
      seed = mix64(seed);
      word = seed;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). n must be positive.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation (bias negligible here).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  idx next_index(idx n) { return static_cast<idx>(next_below(static_cast<std::uint64_t>(n))); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace ptilu
