// Column-aligned ASCII table printer used by the benchmark harnesses to
// emit the paper's tables in a readable, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ptilu {

class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format cells from heterogeneous values.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(&table) {}
    RowBuilder& cell(const std::string& s);
    RowBuilder& cell(double v, int precision = 3);
    RowBuilder& cell(long long v);
    RowBuilder& cell(int v) { return cell(static_cast<long long>(v)); }
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table* table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  /// Render with aligned columns to the stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (benchmark-table style).
std::string format_fixed(double v, int precision);

/// Format like "1.23e-04".
std::string format_sci(double v, int precision = 2);

}  // namespace ptilu
