// Fundamental scalar and index types used across the library.
#pragma once

#include <cstdint>
#include <vector>

namespace ptilu {

/// Row/column index type. 32-bit indices cover every problem in the paper
/// (largest system is ~2e5 unknowns) while halving index-array bandwidth,
/// which matters for sparse kernels.
using idx = std::int32_t;

/// Nonzero-count / offset type: row_ptr arrays may exceed 2^31 entries'
/// worth of nonzeros on very large problems, so offsets are 64-bit.
using nnz_t = std::int64_t;

/// Scalar type for all numerical values.
using real = double;

/// Convenience alias used throughout for index arrays.
using IdxVec = std::vector<idx>;
using RealVec = std::vector<real>;

}  // namespace ptilu

/// No-alias qualifier for the hot tile kernels: the tile and multiplier
/// pointers passed to them never overlap (they address distinct columns of
/// a panel working row), and telling the compiler so is what lets it emit
/// straight vector code instead of overlap-checked loops.
#if defined(__GNUC__) || defined(__clang__)
#define PTILU_RESTRICT __restrict__
#else
#define PTILU_RESTRICT
#endif
