// SPMD conformance checking for the simulated machine.
//
// The parallel algorithms in this library are SPMD programs over explicit
// per-rank message queues, and the bug class that actually bites them is
// protocol divergence: a rank that drains its inbox twice in one superstep
// (losing messages), a send whose receiver never picks it up, a collective
// whose per-rank fingerprints disagree, a driver that returns while a peer
// still holds undelivered traffic. These are invisible to the cost model —
// modeled time stays plausible while the computation silently diverges.
//
// A Conformance checker attached to a sim::Machine (Machine::Options::check,
// or the PTILU_CHECK environment variable) observes every protocol action
// and verifies, at each superstep barrier and at explicit quiescence points:
//
//   * collective conformance — every collective is fingerprinted per rank
//     (op kind, superstep index, payload byte count, call site) and all
//     ranks must declare identical fingerprint sequences between barriers;
//     the first divergent rank and both call sites are reported;
//   * message lifecycles — sends to out-of-range ranks, inboxes drained
//     twice in one superstep (the moved-from/double-drain bug), messages
//     delivered but never received before the next delivery overwrites
//     them (silent loss), and messages still queued at a quiescence check
//     (orphaned sends / a rank finalizing while peers hold traffic);
//   * on any violation, a per-rank protocol transcript (the last N events
//     of every rank: sends, drains, collectives, transfers) is dumped into
//     the thrown ptilu::Error so the divergence can be read off directly.
//
// The checker is pure observation: it charges no modeled time and posts no
// messages, so a checked run's modeled output is bit-identical to an
// unchecked one. With checking off every hook is a single null-pointer
// test. See docs/STATIC_ANALYSIS.md for semantics and a worked failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ptilu/sim/machine.hpp"

namespace ptilu::sim {

/// Kinds of per-rank protocol events kept in the conformance transcript.
enum class EventKind : std::uint8_t {
  kSend = 0,        ///< message posted to a peer's next-superstep inbox
  kDrain = 1,       ///< recv_all emptied the rank's inbox
  kCollective = 2,  ///< collective participation declared (see CollectiveOp)
  kTransferOut = 3, ///< charge_transfer, sending side
  kTransferIn = 4,  ///< charge_transfer, receiving side
  kQuiescence = 5,  ///< explicit quiescence check passed through this rank
  kReset = 6,       ///< Machine::reset dropped all in-flight state
};

/// Short lowercase name ("send", "drain", ...).
const char* event_kind_name(EventKind kind);

/// One entry of a rank's protocol transcript.
struct ProtocolEvent {
  std::uint64_t superstep = 0;
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;   ///< messages posted/drained (1 for sends)
  std::uint32_t site = 0;    ///< interned call-site tag
  int peer = -1;             ///< destination/source rank, -1 when n/a
  int tag = 0;               ///< message tag (sends only)
  EventKind kind = EventKind::kSend;
  CollectiveOp op = CollectiveOp::kBarrier;  ///< for kCollective events
};

class Conformance {
 public:
  Conformance(int nranks, std::size_t transcript_tail);

  // ---- Hooks (called by Machine / RankContext; not for direct use) ----
  /// A superstep (or collective superstep) begins: events recorded until the
  /// next barrier are attributed to `site`.
  void on_step_begin(std::uint64_t superstep, std::string_view site);
  /// Rank `from` posted a message. Throws on an out-of-range destination.
  void on_send(int from, int to, int tag, std::uint64_t bytes);
  /// Rank `rank` drained its inbox. Throws on a second drain in the same
  /// superstep (the moved-from-inbox bug class).
  void on_recv_all(int rank);
  /// Rank `rank` declares participation in a collective. All ranks must
  /// declare identical (op, bytes, site) sequences between barriers.
  void declare_collective(int rank, CollectiveOp op, std::uint64_t bytes,
                          std::string_view site);
  /// A barrier ends the superstep: verify collective conformance, flag
  /// undrained inboxes about to be overwritten, then deliver posted
  /// message metadata for the next superstep.
  void on_barrier(std::uint64_t superstep);
  /// Point-to-point transfer accounting (no queue lifecycle). Throws on
  /// out-of-range ranks.
  void on_transfer(int from, int to, std::uint64_t bytes, std::string_view site);
  /// Explicit end-of-run / end-of-phase quiescence check: every queue must
  /// be empty, otherwise the orphaned traffic is reported rank by rank.
  void on_quiescent(std::string_view site);
  /// Machine::reset dropped all in-flight state; mirror it.
  void on_reset();

  // ---- Deferred mode (Backend::kThreads; driven by Machine) ----
  /// Marker thrown by a violating hook while rank bodies run concurrently:
  /// the full report cannot be built mid-step because other ranks are still
  /// writing their transcripts. Machine catches it after the join and calls
  /// throw_violation with the lowest failing rank's summary. Deliberately
  /// not derived from ptilu::Error so user `catch (const Error&)` handlers
  /// never observe the half-built state.
  struct DeferredViolation {
    std::string summary;
  };
  /// Enter deferred mode: events buffer per rank instead of landing in the
  /// transcript rings, and fail() throws DeferredViolation.
  void begin_deferred();
  /// Leave deferred mode and commit the buffered events of ranks
  /// [0, commit_ranks) to the transcript rings in rank order — exactly the
  /// events a sequential run would have recorded when rank `commit_ranks-1`
  /// was the last to execute. Buffers and per-step state of higher ranks
  /// are discarded (sequentially they would never have run).
  void end_deferred(int commit_ranks);
  /// Count and throw the standard violation Error (summary + transcript).
  [[noreturn]] void throw_violation(const std::string& summary);

  // ---- Introspection (used by tests and failure reporting) ----
  int nranks() const { return nranks_; }
  /// Total number of violations detected (each one also throws, so this is
  /// only observable >0 when the Error was caught and the machine reused).
  std::uint64_t violations() const { return violations_; }
  /// The full per-rank transcript dump used in failure reports.
  std::string transcript() const;

 private:
  /// Collective fingerprint: what one rank claims the next collective is.
  struct Fingerprint {
    CollectiveOp op = CollectiveOp::kBarrier;
    std::uint64_t bytes = 0;
    std::uint32_t site = 0;
    bool operator==(const Fingerprint&) const = default;
  };
  /// Metadata mirror of one queued Message.
  struct MessageMeta {
    std::uint64_t superstep = 0;  ///< superstep the send was posted in
    std::uint64_t bytes = 0;
    std::uint32_t site = 0;
    int from = 0;
    int tag = 0;
  };
  /// A message mirror staged in its sender's slot until the barrier merges
  /// the stages in sender-rank order (mirrors Machine's delivery; keeps
  /// on_send free of cross-rank writes under the threaded backend).
  struct StagedMeta {
    MessageMeta meta;
    int to = 0;
  };

  /// Transparent hash so interning a string_view site tag never allocates
  /// on the (common) already-seen path.
  struct SiteHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::uint32_t intern(std::string_view site);
  /// By value: the site table can grow concurrently (a worker declaring a
  /// collective interns its tag), so references into it are unstable while
  /// a deferred step runs. Cold path — only failure reports and
  /// transcripts call this.
  std::string site_name(std::uint32_t id) const;
  void record(int rank, ProtocolEvent event);
  [[noreturn]] void fail(const std::string& summary);
  std::string describe(const Fingerprint& fp) const;
  std::string describe(const MessageMeta& meta, int to) const;

  int nranks_;
  std::size_t tail_;
  std::vector<std::string> sites_;  // id -> tag ("" = untagged)
  std::unordered_map<std::string, std::uint32_t, SiteHash, std::equal_to<>>
      site_ids_;  // interning only, never iterated
  mutable std::mutex site_mutex_;   // guards sites_/site_ids_ during deferred steps
  std::uint32_t step_site_ = 0;     // site of the superstep in progress
  std::uint64_t superstep_ = 0;     // index of the superstep in progress
  std::vector<std::vector<Fingerprint>> pending_;    // per rank, this superstep
  std::vector<std::vector<StagedMeta>> staged_;      // per sender rank
  std::vector<std::vector<MessageMeta>> inbox_;      // delivered, undrained
  std::vector<std::uint8_t> drained_;                // per rank, this superstep
  std::vector<std::vector<ProtocolEvent>> events_;   // per-rank transcript ring
  std::vector<std::size_t> events_next_;             // ring cursor per rank
  std::vector<std::vector<ProtocolEvent>> step_events_;  // deferred-mode buffers
  bool deferred_ = false;           // buffering events instead of ring-writing
  std::uint64_t violations_ = 0;
};

}  // namespace ptilu::sim
