// Critical-path analyzer and per-rank metrics registry for the simulated
// machine.
//
// A Trace (trace.hpp) answers "which span kinds did each phase spend busy
// time in?". Metrics answers the load-imbalance questions the paper's
// speedup tables hinge on: which rank set the makespan at each superstep
// barrier, how long the other ranks idled waiting for it, and who talked to
// whom. Per superstep the barrier already computes the max over rank
// clocks; Metrics records which rank won (the *straggler*), attributes the
// step's elapsed time to that rank under the active algorithm phase, and
// accumulates each rank's busy share of the step. Idle time is *derived* at
// serialization as `elapsed - busy`, so per phase and rank the identity
//
//     busy + idle == elapsed            (hence sum_r busy+idle == ranks*elapsed)
//
// holds bit-exactly, with no float drift: busy is accumulated from the same
// `clock - previous_horizon` differences whose maximum defines `elapsed`,
// and floating-point subtraction/addition are monotone, so `busy <= elapsed`
// exactly and the derived idle is exactly representable. check_report.py
// and tests/test_metrics.cpp enforce both properties on every driver.
//
// Alongside the time accounting Metrics maintains a per-phase rank-by-rank
// communication matrix (messages and bytes, fed from the staged-outbox send
// path and charge_transfer) plus a registry of named per-rank counters the
// drivers thread their ILUT fill/drop tallies through. Integer totals
// reconcile exactly with Machine's RankCounters: every messages_sent
// increment has a matching comm-matrix or collective-tree increment.
//
// Enabled via Machine::Options::metrics (default from the PTILU_METRICS
// environment variable, off otherwise). All hooks are null-pointer checks
// when disabled, and the collector never feeds back into the cost model, so
// modeled output is bit-identical either way. Collection is deterministic
// across the sequential and threaded backends — every mutation is either
// rank-local during a step or runs on the main thread at a barrier — so
// report.json is byte-identical between backends (held by tests). See
// docs/OBSERVABILITY.md for the report schema and a straggler-table reading
// guide, and DESIGN.md §11 for the attribution model.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ptilu/sim/machine.hpp"

namespace ptilu::sim {

class Metrics {
 public:
  explicit Metrics(int nranks);

  /// One cell of a phase's rank-by-rank communication matrix.
  struct CommCell {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  /// Accumulated accounting for one algorithm phase. All per-rank vectors
  /// have nranks entries; `comm[from]` maps destination rank to the traffic
  /// `from` sent while the phase was active.
  struct PhaseMetrics {
    double elapsed = 0.0;           ///< phase's share of the synchronized clock
    std::uint64_t supersteps = 0;   ///< barriers attributed to this phase
    std::vector<double> busy;       ///< per rank; busy[r] <= elapsed, exactly
    std::vector<double> critical_s;          ///< elapsed won as the straggler
    std::vector<std::uint64_t> critical_steps;  ///< barriers won as straggler
    /// Collective-tree accounting. Machine::collective charges every rank
    /// the identical hop/payload amounts (the log2(p) combining tree), so
    /// the per-rank arrays the v1 report carried were rank-uniform by
    /// construction; v2 stores the single per-rank value — O(1) instead of
    /// O(p) per phase, which matters at p=4096.
    std::uint64_t collective_messages = 0;  ///< log2(p)-tree hops, per rank
    std::uint64_t collective_bytes = 0;     ///< collective payload bytes, per rank
    std::vector<std::map<int, CommCell>> comm;       ///< [from] -> to -> cell

    bool active() const {
      if (elapsed != 0.0 || supersteps != 0) return true;
      // A phase can carry traffic without owning a barrier (a trailing
      // charge_transfer); keep it so comm totals still reconcile.
      for (const auto& row : comm) {
        if (!row.empty()) return true;
      }
      return false;
    }
    /// Load imbalance: max over ranks of busy divided by the mean busy
    /// (1 = perfectly balanced; 0 when the phase did no rank-local work).
    double imbalance() const;
    /// First rank with the largest critical_s share, or -1 when none.
    int critical_rank() const;
  };

  // ---- Phase tagging (main thread, between supersteps; Machine forwards
  // ---- its push_phase/pop_phase here — prefer sim::ScopedPhase(machine, n))
  void push_phase(std::string_view name);
  void pop_phase();
  const std::string& current_phase() const { return phase_names_[phase_stack_.back()]; }

  // ---- Recording hooks (called by Machine; not for direct use) ----
  /// A barrier synchronized all clocks to `horizon`: attribute the advance
  /// to the current phase, credit the straggler (first rank at the max),
  /// and accumulate each rank's `clock - previous_horizon` busy share.
  void on_sync(const std::vector<double>& clocks, double horizon);
  /// A message was posted (Machine::post). Rank-local: only `from`'s comm
  /// row is touched, so the threaded backend needs no merge step here.
  void on_send(int from, int to, std::uint64_t bytes);
  /// A bulk transfer was charged without a payload (Machine::charge_transfer).
  void on_transfer(int from, int to, std::uint64_t bytes);
  /// A collective exchange charged `hop_messages` tree hops and
  /// `payload_bytes` to every rank's counters (Machine::collective).
  void on_collective(std::uint64_t hop_messages, std::uint64_t payload_bytes);
  /// Machine::reset: flush the residual clock advance into the last active
  /// phase, bank the about-to-be-zeroed RankCounters so the report still
  /// reconciles across epochs, and restart machine-relative time at zero.
  void on_reset(const std::vector<double>& clocks,
                const std::vector<RankCounters>& counters);

  // ---- Named per-rank counters (ILUT fill/drop tallies and friends) ----
  /// Intern a counter name (idempotent; main thread, between supersteps).
  /// Drivers register their counters up front and pass the id into rank
  /// bodies, which accumulate locally and commit once per step.
  std::uint32_t counter_id(std::string_view name);
  /// Add to one rank's slot of a registered counter. Rank-local, safe from
  /// concurrently-running rank bodies as long as each sticks to its rank.
  void add_counter(std::uint32_t id, int rank, std::uint64_t n);
  /// A registered counter's value for one rank (0 for unknown names).
  std::uint64_t counter_value(std::string_view name, int rank) const;

  // ---- Results ----
  int nranks() const { return nranks_; }

  /// Attribute clock advance since the last barrier (e.g. a trailing
  /// charge_transfer) to the last active phase, mirroring Trace's rollup
  /// residual. Idempotent; the serializers below call it themselves.
  void flush(const Machine& machine);

  struct PhaseRow {
    std::string name;
    const PhaseMetrics* stats = nullptr;
  };
  /// Active phases in first-use order ("(untagged)" for the root).
  std::vector<PhaseRow> phase_rows() const;
  /// Sum of per-phase elapsed attributions in phase order — the report's
  /// "modeled_s", recomputable bit-exactly from the serialized phases.
  double total_elapsed() const;

  /// Versioned machine-readable run report ("ptilu-report-v2"; see
  /// docs/OBSERVABILITY.md for the v1 -> v2 delta). `run_info`
  /// is a list of (key, raw JSON value) pairs embedded verbatim under
  /// "run" — that is where backend/params/config belong, so the
  /// machine-derived payload stays backend-invariant. Deterministic:
  /// byte-identical across backends and repeated runs.
  void write_report(std::ostream& os, const Machine& machine,
                    const std::vector<std::pair<std::string, std::string>>& run_info = {});
  /// write_report to a file (throws ptilu::Error on I/O failure).
  void write_report_file(const std::string& path, const Machine& machine,
                         const std::vector<std::pair<std::string, std::string>>& run_info = {});
  /// FNV-1a 64 checksum of the report's machine-derived payload (phases +
  /// counters + rank_counters, excluding "run"): identical across backends,
  /// and any shift in phase-level time distribution changes it. Carried in
  /// bench JSON (schema v3) so perf comparisons can flag such shifts.
  std::uint64_t payload_checksum(const Machine& machine);

  /// Human-readable critical-path/straggler table (see docs/OBSERVABILITY.md
  /// for a reading guide).
  void write_straggler_table(std::ostream& os, const Machine& machine);

  /// Drop all recorded data (phases, comm, counters) but keep registered-ness
  /// of nothing — a clean slate. Call right after Machine::reset so the
  /// machine-relative clock base is zero.
  void clear();

 private:
  std::uint32_t intern(std::string path);
  PhaseMetrics& ensure_storage(std::uint32_t id);
  void flush_clocks(const std::vector<double>& clocks);
  std::string payload_json(const Machine& machine);

  int nranks_;
  std::vector<std::string> phase_names_;  // id -> full path ("" is the root)
  std::unordered_map<std::string, std::uint32_t> phase_ids_;  // interning only, never iterated
  std::vector<std::uint32_t> phase_stack_;
  std::vector<PhaseMetrics> phases_;  // indexed by phase id
  std::uint32_t last_active_ = 0;     // phase to credit trailing residual to
  double last_horizon_ = 0.0;         // machine-relative horizon at last sync

  std::vector<std::string> counter_names_;
  std::unordered_map<std::string, std::uint32_t> counter_ids_;  // interning only, never iterated
  std::vector<std::vector<std::uint64_t>> counter_values_;  // [id][rank]

  std::vector<RankCounters> banked_counters_;  // epochs closed by reset()
};

}  // namespace ptilu::sim
