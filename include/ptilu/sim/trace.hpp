// Per-rank phase tracing for the simulated machine.
//
// A Trace attached to a sim::Machine (Machine::attach_trace) records every
// modeled-time advance as a span on the owning rank's timeline — compute
// (flops and local memory traffic), send, recv, barrier, allreduce — tagged
// with the algorithm phase that was active when the cost was charged.
// Phases are nestable path tags pushed with ScopedPhase, e.g.
//
//   sim::ScopedPhase phase(machine.trace(), "factor/interior");
//
// (a null trace pointer makes ScopedPhase a no-op, so instrumented call
// sites cost a pointer compare when tracing is off). Two consumers:
//
//   * per-phase rollups (phase_rollup / write_phase_table): busy seconds per
//     span kind summed over ranks, flop/byte/message counts, and the advance
//     of the synchronized clock attributed to each phase. The attributed
//     advances sum to Machine::modeled_time(), so the table is an exact
//     decomposition of the aggregate modeled run time.
//   * a Chrome trace_event JSON export (write_chrome_trace) with one process
//     track per rank, loadable in Perfetto or chrome://tracing.
//
// Everything is deterministic: identical runs produce byte-identical
// exports. See docs/TRACING.md for the span/phase model, the JSON schema,
// and a worked example.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ptilu::sim {

class Machine;

/// What a span's modeled time was spent on.
enum class SpanKind : std::uint8_t {
  kCompute = 0,    ///< charge_flops / charge_mem local work
  kSend = 1,       ///< message injection (latency + per-byte cost)
  kRecv = 2,       ///< draining inbound payloads at superstep delivery
  kBarrier = 3,    ///< waiting at a superstep barrier (idle + sync tree)
  kAllreduce = 4,  ///< collective exchanges (Machine::collective / allreduce_*)
};
inline constexpr int kSpanKindCount = 5;

/// Short lowercase name ("compute", "send", ...).
const char* span_kind_name(SpanKind kind);

/// One contiguous stretch of one rank's modeled timeline. Times are absolute
/// modeled seconds (monotone across Machine::reset epochs — see Trace).
/// `bytes` holds local-memory bytes for compute spans and network bytes for
/// send/recv/allreduce spans; `messages` counts posted messages for send
/// spans and drained messages for recv spans.
struct Span {
  double start = 0.0;
  double end = 0.0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  int rank = 0;
  std::uint32_t phase = 0;  ///< index into Trace::phase_name
  SpanKind kind = SpanKind::kCompute;
};

/// Per-phase rollup. `busy` is summed over ranks, so it can exceed
/// `elapsed` (p ranks computing concurrently accrue p seconds of busy time
/// per elapsed second); `elapsed` is the phase's share of the synchronized
/// clock, and elapsed summed over phases equals the machine's modeled time.
struct PhaseStats {
  double busy[kSpanKindCount] = {0, 0, 0, 0, 0};
  double elapsed = 0.0;
  std::uint64_t flops = 0;
  std::uint64_t mem_bytes = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t messages = 0;
  std::uint64_t spans = 0;

  double busy_total() const {
    double total = 0.0;
    for (const double b : busy) total += b;
    return total;
  }
};

/// Options for a Trace. Rollups are always maintained; span storage (needed
/// only for the Chrome export) can be turned off to bound memory on long
/// runs while keeping the per-phase table.
struct TraceOptions {
  bool record_spans = true;
};

class Trace {
 public:
  explicit Trace(TraceOptions options = {});

  // ---- Phase tagging (prefer ScopedPhase over calling these directly) ----
  /// Enter a nested phase. `name` is appended to the current phase path
  /// with a '/' separator and may itself contain '/' segments.
  void push_phase(std::string_view name);
  void pop_phase();
  /// Full path of the currently active phase ("" at the root).
  const std::string& current_phase() const { return phase_names_[phase_stack_.back()]; }
  const std::string& phase_name(std::uint32_t id) const { return phase_names_[id]; }

  // ---- Recording hooks (called by Machine; not for direct use) ----
  void set_nranks(int nranks);
  /// Record a span on `rank` covering machine-relative [start, end).
  /// Adjacent spans of the same rank/kind/phase are coalesced.
  void record(int rank, SpanKind kind, double start, double end, std::uint64_t flops,
              std::uint64_t bytes, std::uint64_t messages);
  /// A barrier/collective synchronized all clocks to `horizon`
  /// (machine-relative): attribute the advance to the current phase.
  void sync(double horizon);
  /// Machine::reset was called: subsequent machine-relative times restart at
  /// zero. The trace keeps recording; new spans land after everything
  /// already recorded (absolute time is the concatenation of epochs).
  void on_machine_reset();

  // ---- Results ----
  int nranks() const { return nranks_; }
  const std::vector<Span>& spans() const { return spans_; }

  struct PhaseRow {
    std::string name;
    PhaseStats stats;
  };
  /// Rollup rows in first-execution order, only phases with activity.
  /// Residual clock advance after the last barrier (e.g. a trailing
  /// charge_transfer) is attributed to the phase of the last recorded span.
  std::vector<PhaseRow> phase_rollup() const;
  /// Sum of per-phase elapsed attributions — equals the machine's modeled
  /// time (summed across reset epochs) up to floating-point rounding.
  double attributed_time() const;

  /// Chrome trace_event JSON (one pid per rank); schema in docs/TRACING.md.
  void write_chrome_trace(std::ostream& os) const;
  /// Convenience: write_chrome_trace to a file (throws ptilu::Error on I/O
  /// failure).
  void write_chrome_trace_file(const std::string& path) const;
  /// Plain-text per-phase table (ptilu::Table formatting).
  void write_phase_table(std::ostream& os) const;

  /// Drop all recorded data (phases, spans, rollups) but keep options.
  void clear();

 private:
  std::uint32_t intern(std::string path);

  TraceOptions options_;
  int nranks_ = 0;
  std::vector<std::string> phase_names_;  // id -> full path ("" is the root)
  std::unordered_map<std::string, std::uint32_t> phase_ids_;  // interning only, never iterated
  std::vector<std::uint32_t> phase_stack_;
  std::vector<PhaseStats> stats_;  // indexed by phase id
  std::vector<Span> spans_;
  std::vector<std::size_t> open_span_;  // per rank: candidate for coalescing
  double epoch_offset_ = 0.0;  // absolute start time of the current epoch
  double last_horizon_ = 0.0;  // machine-relative horizon at the last sync
  double max_end_ = 0.0;       // absolute latest recorded span end / horizon
  std::uint32_t last_phase_ = 0;
};

/// RAII phase tag. The Machine form tags every observer the machine has
/// attached — the trace *and* the metrics collector (metrics.hpp) — and is
/// what instrumented algorithm code should use:
///
///   sim::ScopedPhase phase(machine, "factor/interior");
///
/// It is near-zero-cost when neither observer is on (two pointer compares
/// inside Machine::push_phase). The Trace* form remains for code that feeds
/// a trace directly and is a no-op on nullptr.
class ScopedPhase {
 public:
  ScopedPhase(Trace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) trace_->push_phase(name);
  }
  ScopedPhase(Machine& machine, std::string_view name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Trace* trace_ = nullptr;
  Machine* machine_ = nullptr;
};

}  // namespace ptilu::sim
