// Simulated distributed-memory machine.
//
// The paper's experiments ran on a 128-processor Cray T3D. This host has a
// single core and no MPI, so the parallel algorithms in this library run on
// a deterministic BSP-style simulator instead: every rank executes the same
// SPMD code against explicit per-rank message queues, and a cost model
// (per-flop time, per-byte memory-copy time, message latency alpha and
// per-byte cost beta) accumulates *modeled* time per rank. A superstep
// barrier synchronizes the per-rank clocks to the maximum. The algorithms
// therefore execute exactly the computation and communication pattern they
// would on a real machine — who computes what, what crosses the network,
// how many synchronization points occur — and the modeled clock stands in
// for wall-clock. See DESIGN.md §1 and §4 for the substitution rationale;
// the T3D calibration itself is documented on MachineParams below, which is
// its single authoritative home.
//
// Observability: attach a sim::Trace (attach_trace) to record every modeled
// clock advance as a per-rank span (compute/send/recv/barrier/allreduce)
// tagged with the active algorithm phase, roll the spans up into a
// per-phase time/flop/byte ledger, and export a Chrome trace_event JSON
// viewable in Perfetto. The hooks are a null-pointer check when no trace is
// attached, so untraced runs are bit-identical to a build without the
// tracing layer. See DESIGN.md §7 ("Simulator observability") and
// docs/TRACING.md.
//
// Execution backends: the superstep bodies can run on the calling thread
// one rank after another (Backend::kSequential, the default) or
// concurrently on a persistent worker pool (Backend::kThreads, opt-in via
// Options::backend or the PTILU_BACKEND environment variable). Both
// backends produce bit-identical modeled time, counters, factors, traces,
// and conformance transcripts: every shared mutable path is rank-local
// during the step and merged deterministically in rank order at the
// barrier. See DESIGN.md §10 for the determinism argument and the list of
// merge points.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ptilu/support/check.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu::sim {

class Trace;
class Conformance;
class Metrics;
enum class SpanKind : std::uint8_t;

/// Operation kind of a fingerprinted collective (SPMD conformance checking;
/// see conformance.hpp). All ranks must declare the same op/bytes/site
/// sequence between any two barriers.
enum class CollectiveOp : std::uint8_t {
  kBarrier = 0,    ///< plain superstep barrier (implicit, never declared)
  kSum = 1,        ///< allreduce_sum
  kMax = 2,        ///< allreduce_max
  kSumLL = 3,      ///< allreduce_sum_ll
  kExchange = 4,   ///< Machine::collective data exchange
  kUser = 5,       ///< SPMD code's own RankContext::declare_collective
};

/// Short lowercase name ("sum", "exchange", ...).
const char* collective_op_name(CollectiveOp op);

/// True when the PTILU_CHECK environment variable requests conformance
/// checking ("1", "on", "true", "yes", case-insensitive). This is the
/// default for Machine::Options::check, so existing benchmarks and tests
/// can be re-run checked without rebuilding.
bool conformance_enabled_by_env() noexcept;

/// True when the PTILU_METRICS environment variable requests metrics
/// collection ("1", "on", "true", "yes", case-insensitive). This is the
/// default for Machine::Options::metrics, so existing benchmarks and tests
/// can be re-run with the critical-path analyzer attached without
/// rebuilding. See metrics.hpp.
bool metrics_enabled_by_env() noexcept;

/// How superstep bodies execute. Both backends are observationally
/// identical (bit-identical modeled time, counters, traces, conformance
/// transcripts); kThreads additionally uses the host's cores for wall-clock
/// speed when ranks do real work per superstep.
enum class Backend : std::uint8_t {
  kSequential = 0,  ///< ranks run one after another on the calling thread
  kThreads = 1,     ///< ranks run concurrently on a persistent worker pool
};

/// Short lowercase name ("sequential", "threads").
const char* backend_name(Backend backend);

/// Parse a backend name: "seq"/"sequential"/"serial" or
/// "threads"/"thread"/"threaded", case-insensitive. Throws ptilu::Error on
/// anything else — a typo silently falling back to sequential would defeat
/// the point of e.g. a tsan CI job exporting PTILU_BACKEND=threads.
Backend parse_backend(std::string_view name);

/// Backend requested by the PTILU_BACKEND environment variable (unset or
/// empty means Backend::kSequential; anything unparseable throws). This is
/// the default for Machine::Options::backend, so the whole test suite can
/// be re-run threaded without rebuilding.
Backend backend_from_env();

/// Worker-pool size requested by PTILU_THREADS (0 = pick from hardware
/// concurrency). Default for Machine::Options::threads.
int backend_threads_from_env();

/// Cost-model parameters, all in seconds. The defaults approximate one node
/// of the paper's 128-processor Cray T3D (150 MHz DEC Alpha EV4, 3-D torus
/// interconnect with shmem-style puts); DESIGN.md §4 points here. Per-field
/// meaning and calibration:
///
/// - `flop`: modeled time for one floating-point operation inside the
///   sparse kernels. The EV4 peaked at 150 Mflop/s, but sparse
///   indirect-addressed kernels of the era sustained ~25 Mflop/s,
///   hence 40 ns.
/// - `mem`: modeled time per byte of local memory traffic that is charged
///   explicitly (reduced-matrix row rebuilds, permutation scatters). The
///   T3D's sustained local copy bandwidth on such access patterns was
///   ~200 MB/s, hence 5 ns/byte. Ordinary operand access inside compute
///   kernels is folded into `flop` and is not charged separately.
/// - `alpha`: per-message latency. T3D shmem put end-to-end latency was
///   ~1–3 µs; we use 2 µs. Also the per-hop cost of the log2(p) barrier
///   and collective trees.
/// - `beta`: per-byte network cost. T3D links moved ~150 MB/s sustained
///   per direction, hence 6.7 ns/byte. Senders pay alpha + bytes*beta at
///   injection; receivers pay bytes*beta when draining delivery queues.
struct MachineParams {
  double flop = 40e-9;   ///< s per floating-point operation (~25 Mflop/s sustained)
  double mem = 5e-9;     ///< s per byte of charged local memory traffic (~200 MB/s)
  double alpha = 2e-6;   ///< per-message latency (s)
  double beta = 6.7e-9;  ///< per-byte network cost (~150 MB/s links)

  /// Calibration approximating one Cray T3D node (see field docs above).
  static MachineParams cray_t3d() { return MachineParams{}; }

  /// A "workstation cluster" profile the paper's conclusions mention:
  /// similar compute, far slower network (Ethernet-class latency/bandwidth).
  static MachineParams workstation_cluster() {
    return MachineParams{40e-9, 5e-9, 500e-6, 100e-9};
  }
};

/// One message in flight: raw bytes plus a tag for sanity checking.
struct Message {
  int from = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Aggregate per-rank activity counters (monotone over a run).
struct RankCounters {
  std::uint64_t flops = 0;
  std::uint64_t mem_bytes = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

class Machine;

/// Handle a rank's step function uses to do modeled work and communicate.
/// Sends post to the *next* superstep; receives drain messages delivered
/// into the current one.
class RankContext {
 public:
  int rank() const { return rank_; }
  int nranks() const;

  /// Scratch-lane index for rank-body-local working storage: 0 under the
  /// sequential backend (ranks run one after another and may share one
  /// lane), rank() under the threaded backend (each rank needs its own).
  /// Allocate Machine::scratch_lanes() lanes and index them with this; the
  /// results are identical either way because lane scratch is reset between
  /// uses by construction.
  int lane() const;

  /// Account n floating-point operations of local work.
  void charge_flops(std::uint64_t n);
  /// Account n bytes of local memory traffic (e.g. reduced-matrix copies).
  void charge_mem(std::uint64_t n);

  /// Post a message for delivery at the start of the next superstep.
  void send_bytes(int to, int tag, std::vector<std::byte> payload);
  void send_indices(int to, int tag, const IdxVec& data);
  void send_reals(int to, int tag, const RealVec& data);

  /// All messages delivered to this rank this superstep. The inbox is moved
  /// out and replaced by a fresh empty vector, so a second call in the same
  /// superstep sees a well-defined empty inbox rather than a moved-from one.
  /// Under conformance checking a second drain is reported as a protocol
  /// violation — PR 2's recv_all double-drain bug lost messages exactly
  /// this way, and code that compiles against the well-defined-empty
  /// fallback is almost always wrong.
  std::vector<Message> recv_all();

  /// Declare participation in a logical collective from SPMD step code.
  /// Purely an annotation for the conformance checker (no modeled cost, a
  /// no-op when checking is off): all ranks must declare identical
  /// (op, bytes, site) sequences within a superstep, so rank-dependent
  /// control flow that skips or reshapes a collective is caught at the
  /// next barrier with both call sites named.
  void declare_collective(CollectiveOp op, std::uint64_t bytes,
                          std::string_view site = {});

 private:
  friend class Machine;
  RankContext(Machine& machine, int rank) : machine_(&machine), rank_(rank) {}
  Machine* machine_;
  int rank_;
};

/// Decode helpers for Message payloads.
IdxVec decode_indices(const Message& m);
RealVec decode_reals(const Message& m);

/// Append-decoding variants: decode the payload directly onto the end of
/// `out` with no intermediate vector. Hot receive loops reuse one buffer
/// across messages instead of allocating a fresh vector per decode.
void decode_indices_append(const Message& m, IdxVec& out);
void decode_reals_append(const Message& m, RealVec& out);

class Machine {
 public:
  /// Construction options. `params` is the cost model; `check` enables the
  /// SPMD conformance checker (conformance.hpp) — default off so modeled
  /// output stays bit-identical, overridable per process with the
  /// PTILU_CHECK environment variable; `transcript_tail` bounds the
  /// per-rank protocol transcript dumped when a violation is reported;
  /// `backend` selects the superstep execution backend (default from
  /// PTILU_BACKEND, sequential when unset); `threads` sizes the worker pool
  /// for Backend::kThreads (0 = hardware concurrency, clamped to nranks;
  /// default from PTILU_THREADS); `metrics` attaches the critical-path /
  /// load-imbalance collector (metrics.hpp) — default off via PTILU_METRICS,
  /// and modeled output is bit-identical either way.
  struct Options {
    MachineParams params = MachineParams::cray_t3d();
    bool check = conformance_enabled_by_env();
    std::size_t transcript_tail = 16;
    Backend backend = backend_from_env();
    int threads = backend_threads_from_env();
    bool metrics = metrics_enabled_by_env();
  };

  Machine(int nranks, MachineParams params = MachineParams::cray_t3d());
  Machine(int nranks, const Options& options);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int nranks() const { return nranks_; }
  const MachineParams& params() const { return params_; }

  /// The execution backend this machine runs superstep bodies on.
  Backend backend() const { return backend_; }
  /// Number of independent scratch lanes rank bodies should allocate for
  /// their working storage: 1 under the sequential backend, nranks under
  /// the threaded one. Index lanes with RankContext::lane().
  int scratch_lanes() const { return backend_ == Backend::kThreads ? nranks_ : 1; }

  /// Execute one superstep: the body runs once per rank — sequentially in
  /// rank order, or concurrently on the worker pool under
  /// Backend::kThreads — then all posted messages are delivered in
  /// (sender rank, program order) and a barrier synchronizes the modeled
  /// clocks (max over ranks plus a log2(p) latency-tree cost). The two
  /// backends are observationally identical. `site` tags the superstep for
  /// conformance transcripts and violation reports; it costs nothing when
  /// checking is off and should name the protocol action
  /// ("pilut/exchange/request").
  void step(const std::function<void(RankContext&)>& body,
            std::string_view site = {});

  /// Convenience collectives (each is one superstep of modeled time):
  /// every rank contributes a value, all receive the combined result.
  /// Under conformance checking each is fingerprinted per rank.
  double allreduce_sum(const std::function<double(int)>& value_of_rank,
                       std::string_view site = {});
  double allreduce_max(const std::function<double(int)>& value_of_rank,
                       std::string_view site = {});
  long long allreduce_sum_ll(const std::function<long long(int)>& value_of_rank,
                             std::string_view site = {});

  /// Account a point-to-point transfer without materializing a payload
  /// (used for bulk data migration where the bytes stay in shared storage):
  /// the sender pays latency plus per-byte cost, the receiver the per-byte
  /// drain cost.
  void charge_transfer(int from, int to, std::uint64_t bytes,
                       std::string_view site = {});

  /// Charge a collective data exchange (allgather/alltoall-style): all
  /// clocks advance to the max plus a log2(p) tree of (alpha + bytes*beta),
  /// and every rank's counters charge one message per tree hop plus the
  /// payload bytes — consistent with the time model and with the trace
  /// spans, so counter/trace reconciliation covers collectives too.
  /// Counts as one superstep.
  void collective(std::uint64_t payload_bytes, std::string_view site = {});

  /// Assert protocol quiescence: no queued message anywhere (posted but
  /// undelivered, or delivered but undrained). Drivers call this when an
  /// algorithm finishes so a rank cannot return while peers still hold its
  /// traffic — the stall/orphan class of SPMD bugs. A no-op when
  /// conformance checking is off; under checking a violation throws
  /// ptilu::Error with the orphaned messages and per-rank transcripts.
  void check_quiescent(std::string_view site = {});

  /// True when the SPMD conformance checker is attached.
  bool checking() const { return checker_ != nullptr; }
  /// The attached checker, or nullptr (introspection for tests/tools).
  const Conformance* checker() const { return checker_.get(); }

  /// Modeled elapsed time so far (seconds) — max over rank clocks.
  double modeled_time() const;
  /// Modeled time of one rank.
  double rank_time(int rank) const { return clock_[rank]; }

  /// Counters for one rank / aggregated.
  const RankCounters& counters(int rank) const { return counters_[rank]; }
  RankCounters total_counters() const;

  /// Number of supersteps executed (each one is a synchronization point).
  std::uint64_t supersteps() const { return supersteps_; }

  /// Attach a span/phase trace (nullptr detaches). The machine does not own
  /// the trace; it must outlive the attachment. While attached, every clock
  /// advance is recorded as a span tagged with trace->current_phase().
  void attach_trace(Trace* trace);
  /// The attached trace, or nullptr. Instrumented algorithm code passes
  /// this to sim::ScopedPhase, which is a no-op on nullptr.
  Trace* trace() const { return trace_; }

  /// The metrics collector, or nullptr when Options::metrics is off
  /// (introspection plus report/straggler-table export — see metrics.hpp).
  Metrics* metrics() const { return metrics_.get(); }

  /// Enter/leave an algorithm phase on everything that observes phases —
  /// the attached trace and the metrics collector (no-op when neither is
  /// on). Main thread only, between supersteps. Instrumented code should
  /// use sim::ScopedPhase(machine, "factor/interior") rather than call
  /// these directly.
  void push_phase(std::string_view name);
  void pop_phase();

  /// Reset clocks/counters (keeps nranks and params) so one Machine can
  /// time several phases independently. An attached trace keeps its data:
  /// spans recorded after the reset land in a new epoch appended after
  /// everything already recorded.
  void reset();

 private:
  friend class RankContext;
  void charge_flops(int rank, std::uint64_t n);
  void charge_mem(int rank, std::uint64_t n);
  void post(int from, int to, int tag, std::vector<std::byte> payload);

  /// One posted message staged in its *sender's* slot. Staging per sender
  /// keeps post() free of cross-rank writes; the barrier merges the stages
  /// destination-wise in sender-rank order, which reproduces exactly the
  /// (sender rank, program order) delivery the sequential interpreter got
  /// from pushing straight into per-destination outboxes.
  struct Posted {
    int to = 0;
    Message msg;
  };

  /// A trace record charged by a rank body under the threaded backend,
  /// buffered rank-locally and replayed through Trace::record in rank
  /// order at the barrier (phases never change mid-step, so deferred
  /// replay sees the same phase tag the sequential backend recorded).
  struct PendingSpan {
    double start = 0.0;
    double end = 0.0;
    std::uint64_t flops = 0;
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
    SpanKind kind{};
  };

  void run_bodies(const std::function<void(RankContext&)>& body);
  void run_bodies_threaded(const std::function<void(RankContext&)>& body);
  void flush_pending_trace(int upto_rank);
  int resolved_pool_size() const;

  class WorkerPool;

  int nranks_;
  MachineParams params_;
  Backend backend_;
  int threads_option_;
  std::vector<double> clock_;
  std::vector<RankCounters> counters_;
  /// Messages delivered this superstep, keyed by destination rank. Sparse
  /// by construction: only ranks with inbound traffic own an entry, so a
  /// p=4096 machine whose ranks talk to a handful of grid neighbors stores
  /// O(active destinations) vectors, not O(p). A sorted map (not a hash
  /// map) so the receiver drain loop in step() visits destinations in
  /// ascending rank order — the exact order the dense per-rank array was
  /// walked in, keeping modeled clocks and traces bit-identical. Structure
  /// is only mutated on the main thread at the barrier; rank bodies move
  /// out their own mapped vector (recv_all), which never rebalances the
  /// tree, so the threaded backend needs no locking here.
  std::map<int, std::vector<Message>> inbox_;
  std::vector<std::vector<Posted>> staged_;   // posted this superstep, per sender
  std::uint64_t supersteps_ = 0;
  Trace* trace_ = nullptr;
  bool in_allreduce_ = false;  // tags the enclosing step's barrier spans
  bool trace_deferred_ = false;  // buffer charges instead of recording live
  std::vector<std::vector<PendingSpan>> pending_trace_;  // per rank
  std::vector<double> reduce_real_;   // per-rank allreduce slots
  std::vector<long long> reduce_ll_;  // per-rank allreduce slots
  std::unique_ptr<WorkerPool> pool_;  // lazily created for Backend::kThreads
  std::unique_ptr<Conformance> checker_;  // SPMD conformance; null = off
  std::unique_ptr<Metrics> metrics_;  // critical-path analyzer; null = off
};

}  // namespace ptilu::sim
