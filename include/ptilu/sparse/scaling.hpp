// Diagonal equilibration: scale rows and/or columns so every row (column)
// has unit norm. A standard conditioning aid before incomplete
// factorization — ILUT's relative thresholds interact badly with wildly
// different row magnitudes (see the jump-coefficient workload), and
// equilibration restores comparability.
#pragma once

#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

struct Equilibration {
  Csr scaled;      ///< D_r A D_c
  RealVec row;     ///< diagonal of D_r
  RealVec col;     ///< diagonal of D_c

  /// Map a solution of the scaled system back: x = D_c x_scaled.
  RealVec unscale_solution(const RealVec& x_scaled) const;
  /// Map an original right-hand side in: b_scaled = D_r b.
  RealVec scale_rhs(const RealVec& b) const;
};

/// One-sided row equilibration: every row of D_r A has unit inf-norm.
Equilibration equilibrate_rows(const Csr& a);

/// Two-sided equilibration (one pass of row then column scaling with
/// square-root damping — the classic Ruiz iteration step, `sweeps` times).
Equilibration equilibrate(const Csr& a, int sweeps = 3);

}  // namespace ptilu
