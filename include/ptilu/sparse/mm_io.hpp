// Matrix Market (.mtx) I/O so users can run the library on their own
// matrices (the paper's G0/TORSO inputs are distributed in this format).
#pragma once

#include <iosfwd>
#include <string>

#include "ptilu/sparse/csr.hpp"

namespace ptilu {

/// Read a Matrix Market coordinate file. Supports real/integer/pattern
/// fields and general/symmetric/skew-symmetric symmetry (symmetric entries
/// are mirrored; pattern values become 1.0). Throws ptilu::Error on
/// malformed input.
Csr read_matrix_market(std::istream& in);
Csr read_matrix_market_file(const std::string& path);

/// Write a general real coordinate Matrix Market file.
void write_matrix_market(std::ostream& out, const Csr& a);
void write_matrix_market_file(const std::string& path, const Csr& a);

}  // namespace ptilu
