// Sequential sparse matrix-vector product kernels.
#pragma once

#include <span>

#include "ptilu/sparse/csr.hpp"

namespace ptilu {

/// y = A x
void spmv(const Csr& a, std::span<const real> x, std::span<real> y);

/// y = alpha * A x + beta * y
void spmv(real alpha, const Csr& a, std::span<const real> x, real beta, std::span<real> y);

/// r = b - A x
void residual(const Csr& a, std::span<const real> x, std::span<const real> b,
              std::span<real> r);

}  // namespace ptilu
