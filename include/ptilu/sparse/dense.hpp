// Small dense-matrix reference implementations used to cross-check the
// sparse factorizations in tests. Not used on any performance path.
#pragma once

#include <vector>

#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {

/// Row-major dense matrix.
class Dense {
 public:
  Dense(idx rows, idx cols) : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, 0.0) {}

  static Dense from_csr(const Csr& a);

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  real& operator()(idx i, idx j) { return data_[static_cast<std::size_t>(i) * cols_ + j]; }
  real operator()(idx i, idx j) const { return data_[static_cast<std::size_t>(i) * cols_ + j]; }

 private:
  idx rows_, cols_;
  RealVec data_;
};

/// In-place dense LU factorization WITHOUT pivoting (matching what an
/// incomplete factorization computes when no fill is dropped). On return,
/// the strictly lower part holds L (unit diagonal implicit) and the upper
/// part holds U. Throws ptilu::Error on a zero pivot.
void dense_lu_nopivot(Dense& a);

/// Solve L U x = b where lu is the output of dense_lu_nopivot.
RealVec dense_lu_solve(const Dense& lu, const RealVec& b);

/// Dense matvec: y = A x.
RealVec dense_matvec(const Dense& a, const RealVec& x);

}  // namespace ptilu
