// Compressed-sparse-row matrix container plus the structural operations the
// factorization stack needs: transpose, symmetric permutation, pattern
// symmetrization, row norms, diagonal extraction.
#pragma once

#include <string>
#include <vector>

#include "ptilu/support/types.hpp"

namespace ptilu {

/// CSR sparse matrix. Column indices within each row are kept sorted
/// ascending (all constructors/loaders enforce this; algorithms rely on it).
struct Csr {
  idx n_rows = 0;
  idx n_cols = 0;
  std::vector<nnz_t> row_ptr;  // size n_rows + 1
  IdxVec col_idx;              // size nnz
  RealVec values;              // size nnz

  Csr() = default;
  Csr(idx rows, idx cols) : n_rows(rows), n_cols(cols), row_ptr(rows + 1, 0) {}

  nnz_t nnz() const { return static_cast<nnz_t>(col_idx.size()); }
  idx row_nnz(idx i) const { return static_cast<idx>(row_ptr[i + 1] - row_ptr[i]); }

  /// Value at (i, j), or 0 if the position is not stored. O(log row_nnz).
  real at(idx i, idx j) const;

  /// Validate structural invariants (sorted columns, in-range indices,
  /// monotone row_ptr). Throws ptilu::Error on violation.
  void validate() const;

  /// True if every row's column list is strictly ascending.
  bool has_sorted_rows() const;
};

/// Coordinate-format builder: accumulate (i, j, v) triplets in any order,
/// then convert to CSR. Duplicate entries are summed.
class CooBuilder {
 public:
  CooBuilder(idx rows, idx cols) : rows_(rows), cols_(cols) {}

  void add(idx i, idx j, real v);
  void reserve(std::size_t n);
  std::size_t size() const { return entries_.size(); }

  /// Sort, merge duplicates, and produce the CSR matrix.
  Csr to_csr() const;

 private:
  struct Entry {
    idx i, j;
    real v;
  };
  idx rows_, cols_;
  std::vector<Entry> entries_;
};

/// B = A^T (values transposed too). O(nnz).
Csr transpose(const Csr& a);

/// Symmetric permutation B = P A P^T where new_of[old] gives each row/column's
/// new position. perm must be a bijection on [0, n).
Csr permute_symmetric(const Csr& a, const IdxVec& new_of);

/// Structure-only union with the transpose: returns a matrix with the pattern
/// of A + A^T and values of A (zeros where only A^T has an entry). Used to
/// hand a symmetric adjacency structure to graph algorithms.
Csr symmetrize_pattern(const Csr& a);

/// Extract the diagonal; missing diagonal entries are 0.
RealVec diagonal(const Csr& a);

/// Per-row norms of the matrix. p is 1, 2 or 0 for infinity-norm.
RealVec row_norms(const Csr& a, int p);

/// Exact structural and numerical equality.
bool equal(const Csr& a, const Csr& b);

/// Max |a_ij - b_ij| over the union pattern (requires same shape).
real max_abs_diff(const Csr& a, const Csr& b);

/// Render small matrices for test failure messages.
std::string to_string_dense(const Csr& a, int precision = 3);

/// Check that new_of is a permutation of [0, n).
bool is_permutation(const IdxVec& new_of, idx n);

/// Invert a permutation: returns old_of where old_of[new_of[i]] == i.
IdxVec invert_permutation(const IdxVec& new_of);

}  // namespace ptilu
