// Dense vector kernels shared by the Krylov solver and tests.
#pragma once

#include <span>

#include "ptilu/support/types.hpp"

namespace ptilu {

/// y += alpha * x
void axpy(real alpha, std::span<const real> x, std::span<real> y);

/// x *= alpha
void scal(real alpha, std::span<real> x);

/// <x, y>
real dot(std::span<const real> x, std::span<const real> y);

/// ||x||_2
real norm2(std::span<const real> x);

/// ||x||_inf
real norm_inf(std::span<const real> x);

/// max_i |x_i - y_i|
real max_abs_diff(std::span<const real> x, std::span<const real> y);

}  // namespace ptilu
