#include "ptilu/serve/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <utility>

#include "ptilu/sim/metrics.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu::serve {

namespace {

void append_num(std::string& out, double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
}

void append_hex16(std::string& out, std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(v));
  out += buffer;
}

}  // namespace

// --- ServeTelemetry ---------------------------------------------------------

void ServeTelemetry::attach_metrics(sim::Metrics* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  requests_id_ = metrics_->counter_id("serve/telemetry/requests");
  batches_id_ = metrics_->counter_id("serve/telemetry/batches");
  elections_id_ = metrics_->counter_id("serve/telemetry/straggler_elections");
  merges_id_ = metrics_->counter_id("serve/telemetry/histogram_merges");
  // Replay pre-attachment history so registry == stats() from the first
  // read (same top-up idiom as FactorCache::attach_metrics).
  const auto top_up = [this](std::uint32_t id, const char* name, std::uint64_t want) {
    const std::uint64_t have = metrics_->counter_value(name, 0);
    if (want > have) metrics_->add_counter(id, 0, want - have);
  };
  top_up(requests_id_, "serve/telemetry/requests", stats_.requests);
  top_up(batches_id_, "serve/telemetry/batches", stats_.batches);
  top_up(elections_id_, "serve/telemetry/straggler_elections", stats_.straggler_elections);
  top_up(merges_id_, "serve/telemetry/histogram_merges", stats_.histogram_merges);
}

void ServeTelemetry::bump(std::uint64_t TelemetryStats::* slot, std::uint32_t counter,
                          std::uint64_t n) {
  stats_.*slot += n;
  if (metrics_ != nullptr && n > 0) metrics_->add_counter(counter, 0, n);
}

void ServeTelemetry::count_requests(std::uint64_t n) {
  bump(&TelemetryStats::requests, requests_id_, n);
}

void ServeTelemetry::count_batches(std::uint64_t n) {
  bump(&TelemetryStats::batches, batches_id_, n);
}

void ServeTelemetry::count_elections(std::uint64_t n) {
  bump(&TelemetryStats::straggler_elections, elections_id_, n);
}

void ServeTelemetry::count_histogram_merge() {
  bump(&TelemetryStats::histogram_merges, merges_id_, 1);
}

// --- LatencyHistogram -------------------------------------------------------

int LatencyHistogram::bucket_index(double v) {
  PTILU_CHECK(v == v, "LatencyHistogram: NaN value");
  if (v < bucket_lower(0)) return -1;  // zero/negative/subnormal-small → underflow
  if (v >= bucket_lower(kBucketCount)) return kBucketCount;  // incl. +inf
  int exp2 = 0;
  const double frac = std::frexp(v, &exp2);  // v = frac·2^exp2, frac ∈ [0.5, 1)
  const int octave = exp2 - 1;               // v ∈ [2^octave, 2^(octave+1))
  // (frac·2 − 1)·kSubBuckets is exact: frac·2 ∈ [1, 2) doubles, the
  // subtraction is exact by Sterbenz, and the scale is a power of two —
  // so the floor, and therefore the bucket, is platform-independent.
  const double within = (frac * 2.0 - 1.0) * static_cast<double>(kSubBuckets);
  const int sub = static_cast<int>(within);
  return (octave - kMinExp) * kSubBuckets + sub;
}

double LatencyHistogram::bucket_lower(int index) {
  PTILU_ASSERT(index >= 0 && index <= kBucketCount,
               "LatencyHistogram: bucket index out of range");
  const int octave = kMinExp + index / kSubBuckets;
  const double sub =
      static_cast<double>(index % kSubBuckets) / static_cast<double>(kSubBuckets);
  // 1 + i/32 is a dyadic rational: ldexp of it is exactly representable
  // and exactly recomputable (math.ldexp in the Python validator).
  return std::ldexp(1.0 + sub, octave);
}

double LatencyHistogram::bucket_upper(int index) { return bucket_lower(index + 1); }

void LatencyHistogram::record(double v) {
  const int index = bucket_index(v);
  if (index < 0) {
    ++underflow_;
  } else if (index >= kBucketCount) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>(index)];
  }
  ++total_;
}

void LatencyHistogram::merge(const LatencyHistogram& other, ServeTelemetry* telemetry) {
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  if (telemetry != nullptr) telemetry->count_histogram_merge();
}

double LatencyHistogram::quantile(double q) const {
  PTILU_CHECK(total_ > 0, "LatencyHistogram: empty histogram has no quantiles");
  PTILU_CHECK(q >= 0.0 && q <= 1.0, "quantile order out of [0, 1]");
  // Same nearest-rank convention as SortedSample::quantile, so the two
  // reads target the SAME sample and the bucket-resolution bound applies.
  const auto rank_raw =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
  const std::uint64_t rank = std::max<std::uint64_t>(1, std::min(rank_raw, total_));
  std::uint64_t cumulative = underflow_;
  if (rank <= cumulative) return bucket_lower(0);  // underflow upper edge
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[static_cast<std::size_t>(i)];
    if (rank <= cumulative) return bucket_upper(i);
  }
  return bucket_lower(kBucketCount);  // overflow: its (unbounded) lower edge
}

// --- EventLog ---------------------------------------------------------------

const char* serve_stage_name(ServeStage stage) {
  switch (stage) {
    case ServeStage::kEnqueue: return "enqueue";
    case ServeStage::kCacheResolve: return "cache_resolve";
    case ServeStage::kAdmit: return "admit";
    case ServeStage::kSolveStart: return "solve_start";
    case ServeStage::kComplete: return "complete";
  }
  return "unknown";
}

int EventLog::begin_group(const std::string& label) {
  group_labels_.push_back(label);
  return static_cast<int>(group_labels_.size()) - 1;
}

void EventLog::record(const ServeEvent& event) {
  PTILU_CHECK(!group_labels_.empty(), "EventLog: begin_group before recording");
  events_.push_back(event);
  event_group_.push_back(static_cast<int>(group_labels_.size()) - 1);
}

void EventLog::write_chrome_trace(std::ostream& os) const {
  // Rebuild spans from the journal. Keyed std::maps (ordered) keep the
  // reconstruction deterministic — no unordered iteration on this path.
  struct RequestSpans {
    double enqueue = -1.0, admit = -1.0, complete = -1.0, wall = -1.0;
  };
  struct BatchSpans {
    double resolve = -1.0, solve_start = -1.0, complete = -1.0, wall = -1.0;
    bool hit = false;
    std::uint64_t fingerprint = 0;
  };
  std::map<std::pair<int, int>, RequestSpans> requests;  // (group, request)
  std::map<std::pair<int, int>, BatchSpans> batches;     // (group, batch)
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const ServeEvent& event = events_[i];
    const int group = event_group_[i];
    switch (event.stage) {
      case ServeStage::kEnqueue:
        requests[{group, event.request}].enqueue = event.t_model_s;
        break;
      case ServeStage::kAdmit:
        requests[{group, event.request}].admit = event.t_model_s;
        break;
      case ServeStage::kComplete: {
        RequestSpans& spans = requests[{group, event.request}];
        spans.complete = event.t_model_s;
        spans.wall = event.t_wall_s;
        BatchSpans& batch = batches[{group, event.batch}];
        batch.complete = event.t_model_s;
        if (event.t_wall_s >= 0.0) batch.wall = event.t_wall_s;
        break;
      }
      case ServeStage::kCacheResolve: {
        BatchSpans& batch = batches[{group, event.batch}];
        batch.resolve = event.t_model_s;
        batch.hit = event.cache_hit;
        batch.fingerprint = event.fingerprint;
        break;
      }
      case ServeStage::kSolveStart:
        batches[{group, event.batch}].solve_start = event.t_model_s;
        break;
    }
  }

  std::string out;
  out.reserve(256 + events_.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ',';
    first = false;
    out += '\n';
  };
  // Two Perfetto processes per group: requests (tid = request id) and
  // batches (tid = batch id) — same layout idea as sim::Trace's one
  // process per rank.
  for (std::size_t g = 0; g < group_labels_.size(); ++g) {
    for (int half = 0; half < 2; ++half) {
      const int pid = static_cast<int>(g) * 2 + half;
      sep();
      out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":0,\"args\":{\"name\":\"";
      out += group_labels_[g];
      out += half == 0 ? " requests" : " batches";
      out += "\"}}";
      sep();
      out += "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":0,\"args\":{\"sort_index\":";
      out += std::to_string(pid);
      out += "}}";
    }
  }
  const auto span = [&](const char* name, int pid, int tid, double start_s,
                        double end_s, const std::string& args_json) {
    if (start_s < 0.0 || end_s < start_s) return;  // incomplete lifecycle
    sep();
    out += "{\"name\":\"";
    out += name;
    out += "\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":";
    append_num(out, start_s * 1e6);  // trace_event timestamps are in µs
    out += ",\"dur\":";
    append_num(out, (end_s - start_s) * 1e6);
    out += ",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{";
    out += args_json;
    out += "}}";
  };
  for (const auto& [key, spans] : requests) {
    const int pid = key.first * 2;
    std::string args = "\"request\":" + std::to_string(key.second);
    span("wait", pid, key.second, spans.enqueue, spans.admit, args);
    if (spans.wall >= 0.0) {
      args += ",\"wall_complete_s\":";
      append_num(args, spans.wall);
    }
    span("solve", pid, key.second, spans.admit, spans.complete, args);
  }
  for (const auto& [key, spans] : batches) {
    const int pid = key.first * 2 + 1;
    std::string args = "\"batch\":" + std::to_string(key.second);
    args += ",\"cache_hit\":";
    args += spans.hit ? "true" : "false";
    args += ",\"fingerprint\":\"";
    append_hex16(args, spans.fingerprint);
    args += "\"";
    span("resolve", pid, key.second, spans.resolve, spans.solve_start, args);
    if (spans.wall >= 0.0) {
      args += ",\"wall_complete_s\":";
      append_num(args, spans.wall);
    }
    span("solve batch", pid, key.second, spans.solve_start, spans.complete, args);
  }
  out += "\n]}\n";
  os << out;
}

void EventLog::write_chrome_trace_file(const std::string& path) const {
  std::ofstream file(path);
  PTILU_CHECK(file.good(), "cannot open serve trace file " << path);
  write_chrome_trace(file);
  file.flush();
  PTILU_CHECK(file.good(), "failed writing serve trace file " << path);
}

// --- Batch attribution ------------------------------------------------------

ApplyAttribution attribute_batches(const std::vector<Request>& schedule,
                                   const std::vector<Batch>& plan,
                                   const BatchCostModel& costs, int lanes,
                                   ServeTelemetry* telemetry) {
  PTILU_CHECK(!plan.empty(), "attribute_batches: empty plan");
  PTILU_CHECK(lanes >= 1, "attribute_batches: lane count must be >= 1");
  ApplyAttribution out;
  out.batches.reserve(plan.size());
  out.lanes.busy_s.assign(static_cast<std::size_t>(lanes), 0.0);
  out.lanes.elections.assign(static_cast<std::size_t>(lanes), 0);

  double server_free = 0.0;
  int expected_first = 0;
  std::uint64_t total_requests = 0;
  for (const Batch& batch : plan) {
    PTILU_CHECK(batch.first == expected_first && batch.count >= 1,
                "attribute_batches: plan is not a FIFO partition of the schedule");
    PTILU_CHECK(batch.count <= lanes,
                "attribute_batches: batch wider than the lane count");
    PTILU_CHECK(batch.first + batch.count <= static_cast<int>(schedule.size()),
                "attribute_batches: plan overruns the schedule");

    BatchAttribution attr;
    attr.first = batch.first;
    attr.count = batch.count;
    // Re-run the queueing recursion and demand agreement with the plan:
    // the decomposition must describe the batches that actually formed.
    const double last_arrival =
        schedule[static_cast<std::size_t>(batch.first + batch.count - 1)].arrival_s;
    attr.start_s = std::max(server_free, last_arrival);
    PTILU_CHECK(attr.start_s == batch.start_s,
                "attribute_batches: plan start_s diverges from the queue recursion");
    attr.arrival_gated = last_arrival > server_free;  // the server sat idle
    attr.arrival_s.reserve(static_cast<std::size_t>(batch.count));
    attr.queue_wait_s.reserve(static_cast<std::size_t>(batch.count));
    attr.column_solve_s.assign(static_cast<std::size_t>(batch.count),
                               costs.column_solve_s);
    for (int c = 0; c < batch.count; ++c) {
      const double arrival =
          schedule[static_cast<std::size_t>(batch.first + c)].arrival_s;
      attr.arrival_s.push_back(arrival);
      attr.queue_wait_s.push_back(attr.start_s - arrival);
    }
    attr.service_s = costs.total_s(batch.count);
    PTILU_CHECK(attr.service_s == batch.service_s,
                "attribute_batches: plan service times were not formed from this "
                "cost model — decomposition would not re-sum");

    // First-argmax straggler election, mirroring Metrics::on_sync: the
    // lowest column index at the maximum wins.
    int winner = 0;
    double widest = attr.column_solve_s[0];
    for (int c = 1; c < batch.count; ++c) {
      if (attr.column_solve_s[static_cast<std::size_t>(c)] > widest) {
        widest = attr.column_solve_s[static_cast<std::size_t>(c)];
        winner = c;
      }
    }
    attr.straggler_column = winner;

    out.lanes.elapsed_s += widest;
    for (int c = 0; c < batch.count; ++c) {
      out.lanes.busy_s[static_cast<std::size_t>(c)] +=
          attr.column_solve_s[static_cast<std::size_t>(c)];
    }
    ++out.lanes.elections[static_cast<std::size_t>(winner)];

    server_free = attr.start_s + attr.service_s;
    expected_first += batch.count;
    total_requests += static_cast<std::uint64_t>(batch.count);
    out.batches.push_back(std::move(attr));
  }
  PTILU_CHECK(expected_first == static_cast<int>(schedule.size()),
              "attribute_batches: plan does not cover the schedule");

  out.lanes.idle_s.resize(static_cast<std::size_t>(lanes));
  double busy_sum = 0.0;
  double busy_max = 0.0;
  for (int lane = 0; lane < lanes; ++lane) {
    const double busy = out.lanes.busy_s[static_cast<std::size_t>(lane)];
    // busy ≤ elapsed bit-exactly (each batch adds ≤ its widest column, and
    // IEEE addition is monotone), so derived idle is never negative.
    out.lanes.idle_s[static_cast<std::size_t>(lane)] = out.lanes.elapsed_s - busy;
    busy_sum += busy;
    busy_max = std::max(busy_max, busy);
  }
  const double busy_mean = busy_sum / static_cast<double>(lanes);
  out.lanes.imbalance = busy_mean > 0.0 ? busy_max / busy_mean : 1.0;

  if (telemetry != nullptr) {
    telemetry->count_requests(total_requests);
    telemetry->count_batches(plan.size());
    telemetry->count_elections(plan.size());
  }
  return out;
}

// --- Stream attribution -----------------------------------------------------

double modeled_stream_step_s(idx n, std::uint64_t nnz, std::uint64_t nnz_l,
                             std::uint64_t nnz_u, double flop_t, double mem_t) {
  // One preconditioned GMRES iteration: an SpMV (2 flops per nonzero) plus
  // an ILU apply (forward + backward substitution), streaming the matrix
  // and both factors (index + value per entry) and four n-vectors.
  const double flops = 2.0 * static_cast<double>(nnz) +
                       2.0 * static_cast<double>(nnz_l + nnz_u) +
                       static_cast<double>(n);
  const double bytes =
      static_cast<double>(nnz + nnz_l + nnz_u) * (sizeof(real) + sizeof(idx)) +
      4.0 * static_cast<double>(n) * sizeof(real);
  return flops * flop_t + bytes * mem_t;
}

StreamAttribution attribute_streams(int streams,
                                    const std::vector<long long>& matvecs_per_solve,
                                    double step_s, ServeTelemetry* telemetry) {
  PTILU_CHECK(streams >= 1, "attribute_streams: stream count must be >= 1");
  PTILU_CHECK(!matvecs_per_solve.empty(), "attribute_streams: no solves");
  PTILU_CHECK(step_s > 0.0, "attribute_streams: step cost must be positive");
  StreamAttribution out;
  out.streams = streams;
  out.solves = static_cast<int>(matvecs_per_solve.size());
  out.step_s = step_s;
  out.busy_s.assign(static_cast<std::size_t>(streams), 0.0);
  out.elections.assign(static_cast<std::size_t>(streams), 0);
  const int rounds = (out.solves + streams - 1) / streams;
  out.rounds.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    StreamRound round;
    round.cost_s.assign(static_cast<std::size_t>(streams), 0.0);
    round.matvecs.assign(static_cast<std::size_t>(streams), 0);
    for (int s = 0; s < streams; ++s) {
      const int q = r * streams + s;
      if (q >= out.solves) continue;  // tail round: stream idles
      const long long matvecs = matvecs_per_solve[static_cast<std::size_t>(q)];
      PTILU_CHECK(matvecs >= 0, "attribute_streams: negative matvec count");
      round.matvecs[static_cast<std::size_t>(s)] = matvecs;
      round.cost_s[static_cast<std::size_t>(s)] =
          static_cast<double>(matvecs) * step_s;
    }
    int winner = 0;
    for (int s = 1; s < streams; ++s) {
      if (round.cost_s[static_cast<std::size_t>(s)] >
          round.cost_s[static_cast<std::size_t>(winner)]) {
        winner = s;
      }
    }
    round.straggler = winner;
    round.elapsed_s = round.cost_s[static_cast<std::size_t>(winner)];
    out.elapsed_s += round.elapsed_s;
    for (int s = 0; s < streams; ++s) {
      out.busy_s[static_cast<std::size_t>(s)] +=
          round.cost_s[static_cast<std::size_t>(s)];
    }
    ++out.elections[static_cast<std::size_t>(winner)];
    out.rounds.push_back(std::move(round));
  }
  out.idle_s.resize(static_cast<std::size_t>(streams));
  double busy_sum = 0.0;
  double busy_max = 0.0;
  for (int s = 0; s < streams; ++s) {
    const double busy = out.busy_s[static_cast<std::size_t>(s)];
    out.idle_s[static_cast<std::size_t>(s)] = out.elapsed_s - busy;
    busy_sum += busy;
    busy_max = std::max(busy_max, busy);
  }
  const double busy_mean = busy_sum / static_cast<double>(streams);
  out.imbalance = busy_mean > 0.0 ? busy_max / busy_mean : 1.0;
  if (telemetry != nullptr) telemetry->count_elections(static_cast<std::uint64_t>(rounds));
  return out;
}

// --- Lifecycle journaling ---------------------------------------------------

void append_lifecycle_events(EventLog& log, const std::vector<Request>& schedule,
                             const ApplyAttribution& attribution,
                             const BatchCostModel& costs, std::uint64_t fingerprint,
                             const std::vector<bool>& cache_hit_per_batch,
                             const std::vector<double>& wall_complete_s) {
  PTILU_CHECK(cache_hit_per_batch.size() == attribution.batches.size(),
              "append_lifecycle_events: one cache-hit flag per batch required");
  PTILU_CHECK(wall_complete_s.empty() ||
                  wall_complete_s.size() == attribution.batches.size(),
              "append_lifecycle_events: one wall completion per batch or none");
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    ServeEvent event;
    event.request = static_cast<int>(r);
    event.stage = ServeStage::kEnqueue;
    event.t_model_s = schedule[r].arrival_s;
    log.record(event);
  }
  for (std::size_t b = 0; b < attribution.batches.size(); ++b) {
    const BatchAttribution& attr = attribution.batches[b];
    ServeEvent resolve;
    resolve.batch = static_cast<int>(b);
    resolve.stage = ServeStage::kCacheResolve;
    resolve.t_model_s = attr.start_s;
    resolve.fingerprint = fingerprint;
    resolve.cache_hit = cache_hit_per_batch[b];
    log.record(resolve);
    for (int c = 0; c < attr.count; ++c) {
      ServeEvent admit;
      admit.request = attr.first + c;
      admit.batch = static_cast<int>(b);
      admit.stage = ServeStage::kAdmit;
      admit.t_model_s = attr.start_s;
      log.record(admit);
    }
    ServeEvent solve;
    solve.batch = static_cast<int>(b);
    solve.stage = ServeStage::kSolveStart;
    solve.t_model_s = attr.start_s + costs.cache_resolve_s;
    log.record(solve);
    for (int c = 0; c < attr.count; ++c) {
      ServeEvent complete;
      complete.request = attr.first + c;
      complete.batch = static_cast<int>(b);
      complete.stage = ServeStage::kComplete;
      complete.t_model_s = attr.start_s + attr.service_s;
      if (!wall_complete_s.empty()) complete.t_wall_s = wall_complete_s[b];
      log.record(complete);
    }
  }
}

}  // namespace ptilu::serve
