#include "ptilu/serve/factor_cache.hpp"

#include <cstdlib>
#include <cstring>

#include "ptilu/sim/metrics.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

template <typename T>
void fnv_pod(std::uint64_t& hash, const T& value) {
  fnv_bytes(hash, &value, sizeof(T));
}

}  // namespace

std::uint64_t matrix_fingerprint(const Csr& a) {
  std::uint64_t hash = kFnvOffset;
  fnv_pod(hash, a.n_rows);
  fnv_pod(hash, a.n_cols);
  fnv_bytes(hash, a.row_ptr.data(), a.row_ptr.size() * sizeof(nnz_t));
  fnv_bytes(hash, a.col_idx.data(), a.col_idx.size() * sizeof(idx));
  // Values hash by bit pattern: 0.0 vs -0.0 are distinct operators to the
  // fingerprint, which errs toward refactoring — never toward reusing a
  // factor for a numerically different matrix.
  fnv_bytes(hash, a.values.data(), a.values.size() * sizeof(real));
  return hash;
}

const char* factor_variant_name(FactorVariant variant) {
  switch (variant) {
    case FactorVariant::kScalar: return "scalar";
    case FactorVariant::kBlocked: return "blocked";
  }
  return "?";
}

std::size_t FactorCache::capacity_from_env() {
  const char* value = std::getenv("PTILU_SERVE_CACHE_CAP");
  if (value == nullptr || *value == '\0') return 8;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  PTILU_CHECK(end != value && *end == '\0' && parsed > 0,
              "PTILU_SERVE_CACHE_CAP must be a positive integer, got '" << value << "'");
  return static_cast<std::size_t>(parsed);
}

FactorCache::FactorCache(std::size_t capacity) : capacity_(capacity) {
  PTILU_CHECK(capacity_ >= 1, "FactorCache capacity must be >= 1");
}

void FactorCache::attach_metrics(sim::Metrics* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  hit_id_ = metrics_->counter_id("serve/cache/hits");
  miss_id_ = metrics_->counter_id("serve/cache/misses");
  evict_id_ = metrics_->counter_id("serve/cache/evictions");
  // Replay pre-attachment history so stats() and the registry agree from
  // the first moment both are observable. Top up only — the registry may
  // already carry counts (e.g. this cache re-attaching after a detach).
  const auto top_up = [this](std::uint32_t id, const char* name, std::uint64_t want) {
    const std::uint64_t have = metrics_->counter_value(name, 0);
    if (want > have) metrics_->add_counter(id, 0, want - have);
  };
  top_up(hit_id_, "serve/cache/hits", stats_.hits);
  top_up(miss_id_, "serve/cache/misses", stats_.misses);
  top_up(evict_id_, "serve/cache/evictions", stats_.evictions);
}

void FactorCache::bump(std::uint64_t CacheStats::* slot, std::uint32_t counter) {
  ++(stats_.*slot);
  if (metrics_ != nullptr) metrics_->add_counter(counter, 0, 1);
}

std::shared_ptr<const Preconditioner> FactorCache::lookup_or_insert(
    const FactorKey& key,
    const std::function<std::shared_ptr<const Preconditioner>()>& build) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {
      bump(&CacheStats::hits, hit_id_);
      entries_.splice(entries_.begin(), entries_, it);  // refresh to MRU
      return entries_.front().factor;
    }
  }
  bump(&CacheStats::misses, miss_id_);
  std::shared_ptr<const Preconditioner> factor = build();
  entries_.push_front(Entry{key, factor});
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    bump(&CacheStats::evictions, evict_id_);
  }
  return factor;
}

std::shared_ptr<const Preconditioner> FactorCache::get(const Csr& a,
                                                       const IlutOptions& opts) {
  FactorKey key;
  key.matrix = matrix_fingerprint(a);
  key.variant = FactorVariant::kScalar;
  key.m = opts.m;
  key.tau = opts.tau;
  key.pivot_rel = opts.pivot_rel;
  return lookup_or_insert(key, [&]() -> std::shared_ptr<const Preconditioner> {
    return std::make_shared<IluPreconditioner>(ilut(a, opts));
  });
}

std::shared_ptr<const Preconditioner> FactorCache::get_blocked(
    const Csr& a, const BlockedIlutOptions& opts) {
  FactorKey key;
  key.matrix = matrix_fingerprint(a);
  key.variant = FactorVariant::kBlocked;
  key.m = opts.base.m;
  key.tau = opts.base.tau;
  key.pivot_rel = opts.base.pivot_rel;
  key.max_panel = opts.panels.max_panel;
  key.slack = opts.panels.slack;
  return lookup_or_insert(key, [&]() -> std::shared_ptr<const Preconditioner> {
    return std::make_shared<BlockedIluPreconditioner>(ilut_blocked(a, opts));
  });
}

bool FactorCache::contains(const FactorKey& key) const {
  for (const Entry& entry : entries_) {
    if (entry.key == key) return true;
  }
  return false;
}

}  // namespace ptilu::serve
