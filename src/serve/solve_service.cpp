#include "ptilu/serve/solve_service.hpp"

#include <algorithm>
#include <cmath>

#include "ptilu/ilu/trisolve.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu::serve {

double BatchCostModel::total_s(int k) const {
  PTILU_CHECK(k >= 1, "batch size must be >= 1");
  // Fixed fold order — resolve + (shared + column + column + ...) — so the
  // decomposition the telemetry layer serializes re-sums to this total
  // bit-exactly in any IEEE-754 reimplementation (check_serve_report.py).
  double acc = stream_shared_s;
  for (int c = 0; c < k; ++c) acc += column_solve_s;
  return cache_resolve_s + acc;
}

BatchCostModel modeled_batch_costs(idx n, std::uint64_t nnz, std::uint64_t nnz_l,
                                   std::uint64_t nnz_u, double flop_t, double mem_t) {
  BatchCostModel costs;
  // Cache resolve: the fingerprint probe reads the full operator once —
  // row pointers, column indices, and value bit patterns (see
  // matrix_fingerprint) — pure memory traffic, paid once per batch.
  const double probe_bytes =
      static_cast<double>(n + 1) * sizeof(idx) +
      static_cast<double>(nnz) * (sizeof(real) + sizeof(idx));
  costs.cache_resolve_s = probe_bytes * mem_t;
  // Factor traffic: the batched kernels stream L and U (index + value per
  // entry) ONCE for the whole batch — this is the term batching amortizes.
  const double factor_bytes =
      static_cast<double>(nnz_l + nnz_u) * (sizeof(real) + sizeof(idx));
  costs.stream_shared_s = factor_bytes * mem_t;
  // Per column: one multiply-add per off-diagonal L and U entry plus one
  // divide per row, and RHS/solution/scratch vector traffic — neither is
  // amortizable across the batch.
  const double column_flops =
      2.0 * static_cast<double>(nnz_l + nnz_u) + static_cast<double>(n);
  const double column_bytes = 3.0 * static_cast<double>(n) * sizeof(real);
  costs.column_solve_s = column_flops * flop_t + column_bytes * mem_t;
  return costs;
}

double modeled_batch_service_s(int k, idx n, std::uint64_t nnz_l, std::uint64_t nnz_u,
                               double flop_t, double mem_t) {
  BatchCostModel costs = modeled_batch_costs(n, 0, nnz_l, nnz_u, flop_t, mem_t);
  costs.cache_resolve_s = 0.0;  // no cache on this path
  return costs.total_s(k);
}

std::vector<Batch> plan_serve(const std::vector<Request>& schedule, int batch_max,
                              const std::function<double(int)>& service_s) {
  PTILU_CHECK(!schedule.empty(), "plan_serve: empty schedule");
  PTILU_CHECK(batch_max >= 1, "plan_serve: batch_max must be >= 1");
  const int n = static_cast<int>(schedule.size());
  std::vector<Batch> batches;
  double server_free = 0.0;
  int next = 0;  // first unserved request
  while (next < n) {
    // Everything that has arrived by the time the server frees up is
    // queued; if nothing has, the server idles until the next arrival.
    const double ready = std::max(server_free, schedule[static_cast<std::size_t>(next)].arrival_s);
    int queued = 0;
    while (next + queued < n &&
           schedule[static_cast<std::size_t>(next + queued)].arrival_s <= ready &&
           queued < batch_max) {
      ++queued;
    }
    Batch batch;
    batch.first = next;
    batch.count = queued;
    batch.start_s = ready;
    batch.service_s = service_s(queued);
    PTILU_CHECK(batch.service_s > 0.0, "plan_serve: service time must be positive");
    batches.push_back(batch);
    server_free = ready + batch.service_s;
    next += queued;
  }
  return batches;
}

ServeReport replay_latencies(const std::vector<Batch>& batches,
                             const std::vector<Request>& schedule,
                             const std::vector<double>& service_per_batch) {
  PTILU_CHECK(service_per_batch.size() == batches.size(),
              "replay_latencies: one service time per batch required");
  ServeReport report;
  report.latency_s.assign(schedule.size(), 0.0);
  double server_free = 0.0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const Batch& batch = batches[b];
    // Same recursion as plan_serve: the batch starts when the server is
    // free and its last member has arrived. Membership is frozen — only
    // the service times differ between the modeled and wall replays.
    const idx last = batch.first + batch.count - 1;
    const double start =
        std::max(server_free, schedule[static_cast<std::size_t>(last)].arrival_s);
    const double done = start + service_per_batch[b];
    for (int r = batch.first; r < batch.first + batch.count; ++r) {
      report.latency_s[static_cast<std::size_t>(r)] =
          done - schedule[static_cast<std::size_t>(r)].arrival_s;
    }
    server_free = done;
    report.total_s = done;
  }
  return report;
}

SortedSample::SortedSample(std::vector<double> sample) : sorted_(std::move(sample)) {
  PTILU_CHECK(!sorted_.empty(), "SortedSample: empty sample has no quantiles");
  std::sort(sorted_.begin(), sorted_.end());
}

double SortedSample::quantile(double q) const {
  PTILU_CHECK(q >= 0.0 && q <= 1.0, "quantile order out of [0, 1]");
  // Nearest-rank: ceil(q * N)-th smallest (1-based), clamped to the ends.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(index, sorted_.size() - 1)];
}

void apply_batch(const Preconditioner& factor, const DenseRhsBlock& b, DenseRhsBlock& x) {
  PTILU_CHECK(b.n == x.n && b.k == x.k, "apply_batch: block shape mismatch");
  if (const auto* scalar = dynamic_cast<const IluPreconditioner*>(&factor);
      scalar != nullptr && scalar->permutation().empty()) {
    ilu_apply(scalar->factors(), b, x);
    return;
  }
  if (const auto* blocked = dynamic_cast<const BlockedIluPreconditioner*>(&factor)) {
    ilu_apply(blocked->factors(), b, x);
    return;
  }
  // Generic fallback (permuted/Jacobi/identity factors): column-at-a-time
  // through the virtual single-RHS interface.
  for (int c = 0; c < b.k; ++c) factor.apply(b.col(c), x.col(c));
}

}  // namespace ptilu::serve
