#include "ptilu/serve/serve_report.hpp"

#include <cstdio>
#include <fstream>

#include "ptilu/support/check.hpp"

namespace ptilu::serve {

namespace {

void append_g(std::string& out, double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
}

void append_hex16(std::string& out, std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(v));
  out += buffer;
}

void append_real_array(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    append_g(out, values[i]);
  }
  out += ']';
}

template <typename Int>
void append_int_array(std::string& out, const std::vector<Int>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

void append_histogram(std::string& out, const LatencyHistogram& hist) {
  out += "{\"total\":";
  out += std::to_string(hist.total());
  out += ",\"underflow\":";
  out += std::to_string(hist.underflow());
  out += ",\"overflow\":";
  out += std::to_string(hist.overflow());
  // Sparse [index, count] pairs in index order — the dense vector is
  // mostly zeros (kBucketCount buckets, dozens of samples).
  out += ",\"buckets\":[";
  bool first = true;
  for (int i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    const std::uint64_t count = hist.counts()[static_cast<std::size_t>(i)];
    if (count == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[';
    out += std::to_string(i);
    out += ',';
    out += std::to_string(count);
    out += ']';
  }
  out += "]}";
}

void append_rollup(std::string& out, double elapsed_s, const std::vector<double>& busy_s,
                   const std::vector<double>& idle_s,
                   const std::vector<std::uint64_t>& elections, double imbalance) {
  out += "{\"elapsed_s\":";
  append_g(out, elapsed_s);
  out += ",\"busy_s\":";
  append_real_array(out, busy_s);
  out += ",\"idle_s\":";
  append_real_array(out, idle_s);
  out += ",\"elections\":";
  append_int_array(out, elections);
  out += ",\"imbalance\":";
  append_g(out, imbalance);
  out += '}';
}

void append_apply_section(std::string& out, const ApplySection& section) {
  out += "{\"cap\":";
  out += std::to_string(section.cap);
  out += ",\"n\":";
  out += std::to_string(section.n);
  out += ",\"nnz\":";
  out += std::to_string(section.nnz);
  out += ",\"nnz_l\":";
  out += std::to_string(section.nnz_l);
  out += ",\"nnz_u\":";
  out += std::to_string(section.nnz_u);
  out += ",\"fingerprint\":\"";
  append_hex16(out, section.fingerprint);
  out += "\",\"costs\":{\"cache_resolve_s\":";
  append_g(out, section.costs.cache_resolve_s);
  out += ",\"stream_shared_s\":";
  append_g(out, section.costs.stream_shared_s);
  out += ",\"column_solve_s\":";
  append_g(out, section.costs.column_solve_s);
  out += "},\"batches\":[";
  PTILU_CHECK(section.cache_hit.size() == section.attribution.batches.size(),
              "serve report: one cache-hit flag per batch required");
  for (std::size_t b = 0; b < section.attribution.batches.size(); ++b) {
    const BatchAttribution& batch = section.attribution.batches[b];
    if (b != 0) out += ',';
    out += "{\"first\":";
    out += std::to_string(batch.first);
    out += ",\"count\":";
    out += std::to_string(batch.count);
    out += ",\"start_s\":";
    append_g(out, batch.start_s);
    out += ",\"arrival_gated\":";
    out += batch.arrival_gated ? "true" : "false";
    out += ",\"cache_hit\":";
    out += section.cache_hit[b] ? "true" : "false";
    out += ",\"arrival_s\":";
    append_real_array(out, batch.arrival_s);
    out += ",\"queue_wait_s\":";
    append_real_array(out, batch.queue_wait_s);
    out += ",\"column_solve_s\":";
    append_real_array(out, batch.column_solve_s);
    out += ",\"service_s\":";
    append_g(out, batch.service_s);
    out += ",\"straggler_column\":";
    out += std::to_string(batch.straggler_column);
    out += '}';
  }
  out += "],\"lanes\":";
  append_rollup(out, section.attribution.lanes.elapsed_s, section.attribution.lanes.busy_s,
                section.attribution.lanes.idle_s, section.attribution.lanes.elections,
                section.attribution.lanes.imbalance);
  out += ",\"latency\":{\"hist\":";
  append_histogram(out, section.hist);
  out += ",\"hist_p50\":";
  append_g(out, section.hist_p50);
  out += ",\"hist_p99\":";
  append_g(out, section.hist_p99);
  out += ",\"exact_p50\":";
  append_g(out, section.exact_p50);
  out += ",\"exact_p99\":";
  append_g(out, section.exact_p99);
  out += "}}";
}

void append_stream_section(std::string& out, const StreamAttribution& stream) {
  out += "{\"streams\":";
  out += std::to_string(stream.streams);
  out += ",\"solves\":";
  out += std::to_string(stream.solves);
  out += ",\"step_s\":";
  append_g(out, stream.step_s);
  out += ",\"rounds\":[";
  for (std::size_t r = 0; r < stream.rounds.size(); ++r) {
    const StreamRound& round = stream.rounds[r];
    if (r != 0) out += ',';
    out += "{\"matvecs\":";
    append_int_array(out, round.matvecs);
    out += ",\"cost_s\":";
    append_real_array(out, round.cost_s);
    out += ",\"elapsed_s\":";
    append_g(out, round.elapsed_s);
    out += ",\"straggler\":";
    out += std::to_string(round.straggler);
    out += '}';
  }
  out += "],\"rollup\":";
  append_rollup(out, stream.elapsed_s, stream.busy_s, stream.idle_s, stream.elections,
                stream.imbalance);
  out += '}';
}

}  // namespace

std::string write_serve_report_json(const ServeReportV1& report) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"ptilu-serve-report-v1\",\"run\":{";
  for (std::size_t i = 0; i < report.run.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += report.run[i].first;
    out += "\":";
    out += report.run[i].second;  // raw JSON value, caller-encoded
  }
  out += "},\"histogram_spec\":{\"sub_buckets\":";
  out += std::to_string(LatencyHistogram::kSubBuckets);
  out += ",\"min_exp\":";
  out += std::to_string(LatencyHistogram::kMinExp);
  out += ",\"max_exp\":";
  out += std::to_string(LatencyHistogram::kMaxExp);
  out += ",\"bucket_count\":";
  out += std::to_string(LatencyHistogram::kBucketCount);
  out += ",\"relative_error_bound\":";
  append_g(out, LatencyHistogram::relative_error_bound());
  out += ",\"shards\":";
  out += std::to_string(report.histogram_shards);
  out += "},\"apply\":[";
  for (std::size_t i = 0; i < report.apply.size(); ++i) {
    if (i != 0) out += ',';
    append_apply_section(out, report.apply[i]);
  }
  out += ']';
  if (report.has_stream) {
    out += ",\"stream\":";
    append_stream_section(out, report.stream);
  }
  out += ",\"telemetry\":{\"requests\":";
  out += std::to_string(report.telemetry.requests);
  out += ",\"batches\":";
  out += std::to_string(report.telemetry.batches);
  out += ",\"straggler_elections\":";
  out += std::to_string(report.telemetry.straggler_elections);
  out += ",\"histogram_merges\":";
  out += std::to_string(report.telemetry.histogram_merges);
  out += "}}\n";
  return out;
}

void write_serve_report_file(const ServeReportV1& report, const std::string& path) {
  std::ofstream file(path);
  PTILU_CHECK(file.good(), "cannot open serve report file " << path);
  file << write_serve_report_json(report);
  file.flush();
  PTILU_CHECK(file.good(), "failed writing serve report file " << path);
}

}  // namespace ptilu::serve
