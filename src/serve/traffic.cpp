#include "ptilu/serve/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu::serve {

std::vector<Request> make_schedule(const TrafficOptions& opts) {
  PTILU_CHECK(opts.requests >= 1, "traffic needs at least one request");
  PTILU_CHECK(opts.mean_interarrival_s > 0.0, "mean inter-arrival must be positive");
  Rng rng(opts.seed);
  std::vector<Request> schedule;
  schedule.reserve(static_cast<std::size_t>(opts.requests));
  double clock = 0.0;
  for (int r = 0; r < opts.requests; ++r) {
    // Exponential gap via inversion; 1 - u keeps the argument in (0, 1]
    // so the log is finite, and a tiny floor keeps arrivals strictly
    // increasing (distinct times simplify the queueing recursion).
    const double u = rng.next_double();
    const double gap = -opts.mean_interarrival_s * std::log(1.0 - u);
    clock += std::max(gap, 1e-12);
    schedule.push_back(Request{clock, mix64(opts.seed ^ (0x5EEDF00DULL + static_cast<std::uint64_t>(r)))});
  }
  return schedule;
}

RealVec make_rhs(idx n, std::uint64_t seed) {
  PTILU_CHECK(n >= 0, "make_rhs: negative size");
  Rng rng(seed);
  RealVec b(static_cast<std::size_t>(n));
  for (real& v : b) v = rng.uniform(-1.0, 1.0);
  return b;
}

}  // namespace ptilu::serve
