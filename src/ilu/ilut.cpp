#include "ptilu/ilu/ilut.hpp"

#include <algorithm>
#include <cmath>

#include "ptilu/ilu/factor_scratch.hpp"
#include "ptilu/ilu/pivot.hpp"
#include "ptilu/ilu/working_row.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

/// Materialize a final U row from its selected strictly-upper part: the
/// diagonal slot is reserved up front and written first, so the row never
/// pays the O(row) insert-at-front the diagonal prepend used to cost.
void emit_urow(SparseRow& urow, idx i, real diag, const SparseRow& upper) {
  urow.cols.reserve(upper.size() + 1);
  urow.vals.reserve(upper.size() + 1);
  urow.push(i, diag);
  urow.cols.insert(urow.cols.end(), upper.cols.begin(), upper.cols.end());
  urow.vals.insert(urow.vals.end(), upper.vals.begin(), upper.vals.end());
}

}  // namespace

IluFactors ilut(const Csr& a, const IlutOptions& opts, IlutStats* stats) {
  PTILU_CHECK(a.n_rows == a.n_cols, "ILUT needs a square matrix");
  PTILU_CHECK(opts.m >= 0 && opts.tau >= 0.0, "invalid ILUT options");
  const idx n = a.n_rows;
  const RealVec norms = row_norms(a, 2);

  std::vector<SparseRow> lrows(n), urows(n);
  RealVec udiag(n, 0.0);
  WorkingRow w(n);
  FactorScratch scratch;
  IlutStats local_stats;
  IlutStats* st = stats != nullptr ? stats : &local_stats;

  for (idx i = 0; i < n; ++i) {
    PTILU_CHECK(norms[i] > 0.0, "row " << i << " of A is entirely zero");
    const real tau_i = opts.tau * norms[i];

    ColumnHeap heap = make_column_heap(scratch.heap);
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const idx c = a.col_idx[k];
      w.insert(c, a.values[k]);
      if (c < i) heap.push(c);
    }

    // Eliminate lower-part columns in ascending order; fill may enqueue
    // further lower columns (always larger than the one being processed).
    while (!heap.empty()) {
      const idx k = heap.pop();
      const real multiplier = w.value(k) / udiag[k];
      ++st->flops;
      if (std::abs(multiplier) < tau_i) {  // 1st dropping rule
        w.set(k, 0.0);
        ++st->dropped_rule1;
        continue;
      }
      w.set(k, multiplier);
      const SparseRow& urow = urows[k];
      // One multiply-add per strictly-upper entry of u_k; the stored
      // diagonal (slot 0) is consumed by the divide counted above, so it
      // must not be double-charged here.
      st->flops += 2 * static_cast<std::uint64_t>(urow.size() - 1);
      // p starts at 1: u rows store the diagonal first, and the update
      // w -= w_k * u_k uses only the strictly upper part of u_k.
      for (std::size_t p = 1; p < urow.size(); ++p) {
        const idx c = urow.cols[p];
        const real update = -multiplier * urow.vals[p];
        if (w.present(c)) {
          w.accumulate(c, update);
        } else {
          w.insert(c, update);
          if (c < i) heap.push(c);
        }
      }
    }

    // Split the working row into the pooled staging rows and apply the 2nd
    // dropping rule to each part.
    SparseRow& lstage = scratch.lstage;
    SparseRow& ustage = scratch.ustage;
    lstage.clear();
    ustage.clear();
    real diag = 0.0;
    for (const idx c : w.touched()) {
      const real v = w.value(c);
      if (c < i) {
        if (v != 0.0) lstage.push(c, v);
      } else if (c == i) {
        diag = v;
      } else {
        ustage.push(c, v);
      }
    }
    const std::size_t before = lstage.size() + ustage.size();
    select_largest(lstage, opts.m, tau_i, -1, scratch.kept);
    select_largest(ustage, opts.m, tau_i, -1, scratch.kept);
    st->dropped_rule2 += before - (lstage.size() + ustage.size());

    diag = safeguard_pivot(i, diag, opts.pivot_rel > 0.0 ? opts.pivot_rel * norms[i] : 0.0,
                           st->pivots_guarded);
    udiag[i] = diag;
    lrows[i].cols = lstage.cols;  // exact-sized copies of the survivors
    lrows[i].vals = lstage.vals;
    emit_urow(urows[i], i, diag, ustage);

    w.clear();
  }

  IluFactors factors;
  factors.l = rows_to_csr(n, lrows);
  factors.u = rows_to_csr(n, urows);
  return factors;
}

IluFactors ilu0(const Csr& a, IlutStats* stats) {
  return iluk(a, 0, stats);
}

IluFactors iluk(const Csr& a, idx level, IlutStats* stats) {
  PTILU_CHECK(a.n_rows == a.n_cols, "ILU(k) needs a square matrix");
  PTILU_CHECK(level >= 0, "fill level must be non-negative");
  const idx n = a.n_rows;
  FactorScratch scratch;

  // --- Symbolic phase: compute the level-of-fill pattern row by row.
  // lev(i,j) = 0 for original entries; a fill entry created by eliminating
  // column k gets level lev(i,k) + lev(k,j) + 1; entries with level > k_max
  // are excluded from the pattern.
  std::vector<IdxVec> pattern_cols(n);   // columns of each factored row (sorted)
  std::vector<IdxVec> pattern_levels(n); // matching fill levels
  {
    std::vector<idx> level_of(n, -1);  // -1 = absent from working row
    IdxVec touched;
    for (idx i = 0; i < n; ++i) {
      touched.clear();
      ColumnHeap heap = make_column_heap(scratch.heap);
      bool diag_present = false;
      for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        const idx c = a.col_idx[k];
        level_of[c] = 0;
        touched.push_back(c);
        if (c < i) heap.push(c);
        if (c == i) diag_present = true;
      }
      if (!diag_present) {  // ensure the diagonal is structurally present
        level_of[i] = 0;
        touched.push_back(i);
      }
      while (!heap.empty()) {
        const idx k = heap.pop();
        const idx base = level_of[k];
        if (base < 0 || base > level) continue;  // dropped from pattern
        const IdxVec& cols = pattern_cols[k];
        const IdxVec& levels = pattern_levels[k];
        for (std::size_t p = 0; p < cols.size(); ++p) {
          const idx c = cols[p];
          if (c <= k) continue;  // only the strict upper part spreads fill
          const idx fill = base + levels[p] + 1;
          if (fill > level) continue;
          if (level_of[c] < 0) {
            level_of[c] = fill;
            touched.push_back(c);
            if (c < i) heap.push(c);
          } else if (fill < level_of[c]) {
            level_of[c] = fill;
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      for (const idx c : touched) {
        if (level_of[c] <= level) {
          pattern_cols[i].push_back(c);
          pattern_levels[i].push_back(level_of[c]);
        }
        level_of[c] = -1;
      }
    }
  }

  // --- Numeric phase: standard IKJ elimination restricted to the pattern.
  IlutStats local_stats;
  IlutStats* st = stats != nullptr ? stats : &local_stats;
  std::vector<SparseRow> lrows(n), urows(n);
  RealVec udiag(n, 0.0);
  WorkingRow w(n);
  for (idx i = 0; i < n; ++i) {
    // Load pattern columns (value 0) then add A's row.
    for (const idx c : pattern_cols[i]) w.insert(c, 0.0);
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      w.accumulate(a.col_idx[k], a.values[k]);
    }
    for (const idx k : pattern_cols[i]) {
      if (k >= i) break;
      const real multiplier = w.value(k) / udiag[k];
      ++st->flops;
      w.set(k, multiplier);
      if (multiplier == 0.0) continue;
      const SparseRow& urow = urows[k];
      for (std::size_t p = 1; p < urow.size(); ++p) {  // skip stored diagonal
        const idx c = urow.cols[p];
        if (w.present(c)) {
          w.accumulate(c, -multiplier * urow.vals[p]);
          st->flops += 2;
        }
        // Updates landing outside the pattern are discarded (zero fill).
      }
    }
    // The pattern is sorted and structurally contains the diagonal, so the
    // split point gives both parts' exact sizes and the U row can be
    // written diagonal-first without a prepend.
    const IdxVec& cols = pattern_cols[i];
    const auto diag_it = std::lower_bound(cols.begin(), cols.end(), i);
    PTILU_ASSERT(diag_it != cols.end() && *diag_it == i,
                 "diagonal missing from ILU(k) pattern at row " << i);
    const std::size_t nlower = static_cast<std::size_t>(diag_it - cols.begin());
    const real diag = safeguard_pivot(i, w.value(i), 0.0, st->pivots_guarded);
    udiag[i] = diag;
    SparseRow& lrow = lrows[i];
    SparseRow& urow = urows[i];
    lrow.cols.reserve(nlower);
    lrow.vals.reserve(nlower);
    urow.cols.reserve(cols.size() - nlower);
    urow.vals.reserve(cols.size() - nlower);
    urow.push(i, diag);
    for (const idx c : cols) {
      if (c < i) {
        lrow.push(c, w.value(c));
      } else if (c > i) {
        urow.push(c, w.value(c));
      }
    }
    w.clear();
  }

  IluFactors factors;
  factors.l = rows_to_csr(n, lrows);
  factors.u = rows_to_csr(n, urows);
  return factors;
}

}  // namespace ptilu
