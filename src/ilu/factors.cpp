#include "ptilu/ilu/factors.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>

#include "ptilu/support/check.hpp"

namespace ptilu {

void IluFactors::validate() const {
  PTILU_CHECK(l.n_rows == l.n_cols && u.n_rows == u.n_cols && l.n_rows == u.n_rows,
              "factor shape mismatch");
  l.validate();
  u.validate();
  for (idx i = 0; i < l.n_rows; ++i) {
    for (nnz_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
      PTILU_CHECK(l.col_idx[k] < i, "L has an entry on/above the diagonal at row " << i);
    }
    PTILU_CHECK(u.row_nnz(i) >= 1 && u.col_idx[u.row_ptr[i]] == i,
                "U row " << i << " does not start with the diagonal");
    PTILU_CHECK(u.values[u.row_ptr[i]] != 0.0, "zero diagonal in U at row " << i);
  }
}

double IluFactors::fill_factor(nnz_t nnz_a) const {
  PTILU_CHECK(nnz_a > 0, "empty matrix");
  return static_cast<double>(l.nnz() + u.nnz()) / static_cast<double>(nnz_a);
}

void select_largest(SparseRow& row, idx keep_count, real tau, idx always_keep,
                    std::vector<std::pair<idx, real>>& kept) {
  PTILU_CHECK(keep_count >= 0, "negative keep count");
  // Gather survivors of the threshold test (plus the protected column).
  kept.clear();
  kept.reserve(row.size());
  std::pair<idx, real> protected_entry{-1, 0.0};
  bool have_protected = false;
  for (std::size_t k = 0; k < row.size(); ++k) {
    if (row.cols[k] == always_keep) {
      protected_entry = {row.cols[k], row.vals[k]};
      have_protected = true;
      continue;
    }
    if (std::abs(row.vals[k]) >= tau) kept.emplace_back(row.cols[k], row.vals[k]);
  }
  // Deterministic strict total order: |value| descending, column ascending.
  const auto by_magnitude = [](const std::pair<idx, real>& a, const std::pair<idx, real>& b) {
    const real ma = std::abs(a.second), mb = std::abs(b.second);
    if (ma != mb) return ma > mb;
    return a.first < b.first;
  };
  if (static_cast<idx>(kept.size()) > keep_count) {
    std::nth_element(kept.begin(), kept.begin() + keep_count, kept.end(), by_magnitude);
    kept.resize(keep_count);
  }
  if (have_protected) kept.push_back(protected_entry);
  std::sort(kept.begin(), kept.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  row.clear();
  for (const auto& [c, v] : kept) row.push(c, v);
}

void select_largest(SparseRow& row, idx keep_count, real tau, idx always_keep) {
  std::vector<std::pair<idx, real>> kept;
  select_largest(row, keep_count, tau, always_keep, kept);
}

Csr rows_to_csr(idx n, const std::vector<SparseRow>& rows) {
  Csr m(n, n);
  nnz_t total = 0;
  for (const auto& row : rows) total += static_cast<nnz_t>(row.size());
  m.col_idx.resize(total);
  m.values.resize(total);
  nnz_t at = 0;
  for (idx i = 0; i < n; ++i) {
    const SparseRow& row = rows[i];
    std::copy(row.cols.begin(), row.cols.end(),
              m.col_idx.begin() + static_cast<std::ptrdiff_t>(at));
    std::copy(row.vals.begin(), row.vals.end(),
              m.values.begin() + static_cast<std::ptrdiff_t>(at));
    at += static_cast<nnz_t>(row.size());
    m.row_ptr[i + 1] = at;
  }
  return m;
}

}  // namespace ptilu
