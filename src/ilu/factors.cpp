#include "ptilu/ilu/factors.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>

#include "ptilu/support/check.hpp"

namespace ptilu {

void IluFactors::validate() const {
  PTILU_CHECK(l.n_rows == l.n_cols && u.n_rows == u.n_cols && l.n_rows == u.n_rows,
              "factor shape mismatch");
  l.validate();
  u.validate();
  for (idx i = 0; i < l.n_rows; ++i) {
    for (nnz_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
      PTILU_CHECK(l.col_idx[k] < i, "L has an entry on/above the diagonal at row " << i);
    }
    PTILU_CHECK(u.row_nnz(i) >= 1 && u.col_idx[u.row_ptr[i]] == i,
                "U row " << i << " does not start with the diagonal");
    PTILU_CHECK(u.values[u.row_ptr[i]] != 0.0, "zero diagonal in U at row " << i);
  }
}

double IluFactors::fill_factor(nnz_t nnz_a) const {
  PTILU_CHECK(nnz_a > 0, "empty matrix");
  return static_cast<double>(l.nnz() + u.nnz()) / static_cast<double>(nnz_a);
}

void select_largest(SparseRow& row, idx keep_count, real tau, idx always_keep,
                    std::vector<std::pair<idx, real>>& kept) {
  PTILU_CHECK(keep_count >= 0, "negative keep count");
  // Gather survivors of the threshold test (plus the protected column).
  kept.clear();
  kept.reserve(row.size());
  std::pair<idx, real> protected_entry{-1, 0.0};
  bool have_protected = false;
  for (std::size_t k = 0; k < row.size(); ++k) {
    if (row.cols[k] == always_keep) {
      protected_entry = {row.cols[k], row.vals[k]};
      have_protected = true;
      continue;
    }
    if (std::abs(row.vals[k]) >= tau) kept.emplace_back(row.cols[k], row.vals[k]);
  }
  // Deterministic strict total order: |value| descending, column ascending.
  const auto by_magnitude = [](const std::pair<idx, real>& a, const std::pair<idx, real>& b) {
    const real ma = std::abs(a.second), mb = std::abs(b.second);
    if (ma != mb) return ma > mb;
    return a.first < b.first;
  };
  if (static_cast<idx>(kept.size()) > keep_count) {
    std::nth_element(kept.begin(), kept.begin() + keep_count, kept.end(), by_magnitude);
    kept.resize(keep_count);
  }
  if (have_protected) kept.push_back(protected_entry);
  std::sort(kept.begin(), kept.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  row.clear();
  for (const auto& [c, v] : kept) row.push(c, v);
}

void select_largest(SparseRow& row, idx keep_count, real tau, idx always_keep) {
  std::vector<std::pair<idx, real>> kept;
  select_largest(row, keep_count, tau, always_keep, kept);
}

nnz_t BlockedFactors::stored_entries() const {
  nnz_t total = 0;
  for (idx p = 0; p < n_panels(); ++p) {
    const nnz_t nb = width(p);
    total += nb * nb +
             nb * static_cast<nnz_t>(lcols[p].size() + ucols[p].size());
  }
  return total;
}

nnz_t BlockedFactors::nnz() const {
  nnz_t total = 0;
  for (idx p = 0; p < n_panels(); ++p) {
    const int nb = width(p);
    for (const real v : lvals[p]) total += v != 0.0;
    for (const real v : uvals[p]) total += v != 0.0;
    for (int j = 0; j < nb; ++j) {
      ++total;  // the always-stored U diagonal
      for (int jj = 0; jj < nb; ++jj) {
        if (jj != j) total += diag[p][static_cast<std::size_t>(j) * nb + jj] != 0.0;
      }
    }
  }
  return total;
}

void BlockedFactors::validate() const {
  const idx np = n_panels();
  PTILU_CHECK(np >= 0 && !panel_start.empty() && panel_start.front() == 0 &&
                  panel_start.back() == n,
              "panel boundaries must cover [0, n)");
  PTILU_CHECK(static_cast<idx>(lcols.size()) == np && static_cast<idx>(lvals.size()) == np &&
                  static_cast<idx>(diag.size()) == np &&
                  static_cast<idx>(ucols.size()) == np && static_cast<idx>(uvals.size()) == np,
              "per-panel array count mismatch");
  for (idx p = 0; p < np; ++p) {
    const idx r0 = panel_start[p];
    const int nb = width(p);
    PTILU_CHECK(nb >= 1 && (nb & (nb - 1)) == 0, "panel " << p << " width not a power of two");
    PTILU_CHECK(diag[p].size() == static_cast<std::size_t>(nb) * nb,
                "diagonal block size mismatch at panel " << p);
    for (int j = 0; j < nb; ++j) {
      PTILU_CHECK(diag[p][static_cast<std::size_t>(j) * nb + j] != 0.0,
                  "zero U diagonal in panel " << p << " row " << r0 + j);
    }
    PTILU_CHECK(lvals[p].size() == lcols[p].size() * static_cast<std::size_t>(nb) &&
                    uvals[p].size() == ucols[p].size() * static_cast<std::size_t>(nb),
                "tile storage size mismatch at panel " << p);
    for (std::size_t k = 0; k < lcols[p].size(); ++k) {
      PTILU_CHECK(lcols[p][k] < r0, "L column inside/after panel " << p);
      PTILU_CHECK(k == 0 || lcols[p][k - 1] < lcols[p][k], "L columns unsorted at panel " << p);
    }
    for (std::size_t k = 0; k < ucols[p].size(); ++k) {
      PTILU_CHECK(ucols[p][k] >= r0 + nb, "U column inside/before panel " << p);
      PTILU_CHECK(k == 0 || ucols[p][k - 1] < ucols[p][k], "U columns unsorted at panel " << p);
    }
  }
}

double BlockedFactors::fill_factor(nnz_t nnz_a) const {
  PTILU_CHECK(nnz_a > 0, "empty matrix");
  return static_cast<double>(nnz()) / static_cast<double>(nnz_a);
}

IluFactors BlockedFactors::to_csr() const {
  std::vector<SparseRow> lrows(n), urows(n);
  for (idx p = 0; p < n_panels(); ++p) {
    const idx r0 = panel_start[p];
    const int nb = width(p);
    for (int j = 0; j < nb; ++j) {
      const idx i = r0 + j;
      SparseRow& lrow = lrows[i];
      SparseRow& urow = urows[i];
      for (std::size_t k = 0; k < lcols[p].size(); ++k) {
        const real v = lvals[p][k * static_cast<std::size_t>(nb) + j];
        if (v != 0.0) lrow.push(lcols[p][k], v);
      }
      const real* drow = diag[p].data() + static_cast<std::size_t>(j) * nb;
      for (int jj = 0; jj < j; ++jj) {
        if (drow[jj] != 0.0) lrow.push(r0 + jj, drow[jj]);
      }
      urow.push(i, drow[j]);  // diagonal first
      for (int jj = j + 1; jj < nb; ++jj) {
        if (drow[jj] != 0.0) urow.push(r0 + jj, drow[jj]);
      }
      for (std::size_t k = 0; k < ucols[p].size(); ++k) {
        const real v = uvals[p][k * static_cast<std::size_t>(nb) + j];
        if (v != 0.0) urow.push(ucols[p][k], v);
      }
    }
  }
  IluFactors out;
  out.l = rows_to_csr(n, lrows);
  out.u = rows_to_csr(n, urows);
  return out;
}

Csr rows_to_csr(idx n, const std::vector<SparseRow>& rows) {
  Csr m(n, n);
  nnz_t total = 0;
  for (const auto& row : rows) total += static_cast<nnz_t>(row.size());
  m.col_idx.resize(total);
  m.values.resize(total);
  nnz_t at = 0;
  for (idx i = 0; i < n; ++i) {
    const SparseRow& row = rows[i];
    std::copy(row.cols.begin(), row.cols.end(),
              m.col_idx.begin() + static_cast<std::ptrdiff_t>(at));
    std::copy(row.vals.begin(), row.vals.end(),
              m.values.begin() + static_cast<std::ptrdiff_t>(at));
    at += static_cast<nnz_t>(row.size());
    m.row_ptr[i + 1] = at;
  }
  return m;
}

}  // namespace ptilu
