#include "ptilu/ilu/trisolve.hpp"

#include "ptilu/support/check.hpp"

namespace ptilu {

void forward_solve(const Csr& l, std::span<const real> b, std::span<real> y) {
  const idx n = l.n_rows;
  PTILU_CHECK(b.size() == static_cast<std::size_t>(n) && y.size() == b.size(),
              "forward_solve size mismatch");
  for (idx i = 0; i < n; ++i) {
    real acc = b[i];
    for (nnz_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
      acc -= l.values[k] * y[l.col_idx[k]];
    }
    y[i] = acc;
  }
}

void backward_solve(const Csr& u, std::span<const real> y, std::span<real> x) {
  const idx n = u.n_rows;
  PTILU_CHECK(y.size() == static_cast<std::size_t>(n) && x.size() == y.size(),
              "backward_solve size mismatch");
  for (idx i = n - 1; i >= 0; --i) {
    const nnz_t start = u.row_ptr[i];
    PTILU_ASSERT(u.col_idx[start] == i, "U row must start with the diagonal");
    real acc = y[i];
    for (nnz_t k = start + 1; k < u.row_ptr[i + 1]; ++k) {
      acc -= u.values[k] * x[u.col_idx[k]];
    }
    x[i] = acc / u.values[start];
  }
}

void ilu_apply(const IluFactors& factors, std::span<const real> b, std::span<real> x) {
  RealVec y(factors.n());
  forward_solve(factors.l, b, y);
  backward_solve(factors.u, y, x);
}

void ilu_apply_permuted(const IluFactors& factors, const IdxVec& new_of,
                        std::span<const real> b, std::span<real> x) {
  const idx n = factors.n();
  PTILU_CHECK(new_of.size() == static_cast<std::size_t>(n), "permutation size mismatch");
  RealVec pb(n), px(n);
  for (idx i = 0; i < n; ++i) pb[new_of[i]] = b[i];
  ilu_apply(factors, pb, px);
  for (idx i = 0; i < n; ++i) x[i] = px[new_of[i]];
}

}  // namespace ptilu
