#include "ptilu/ilu/trisolve.hpp"

#include "ptilu/ilu/block_kernels.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

void forward_solve(const Csr& l, std::span<const real> b, std::span<real> y) {
  const idx n = l.n_rows;
  PTILU_CHECK(b.size() == static_cast<std::size_t>(n) && y.size() == b.size(),
              "forward_solve size mismatch");
  for (idx i = 0; i < n; ++i) {
    real acc = b[i];
    for (nnz_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
      acc -= l.values[k] * y[l.col_idx[k]];
    }
    y[i] = acc;
  }
}

void backward_solve(const Csr& u, std::span<const real> y, std::span<real> x) {
  const idx n = u.n_rows;
  PTILU_CHECK(y.size() == static_cast<std::size_t>(n) && x.size() == y.size(),
              "backward_solve size mismatch");
  for (idx i = n - 1; i >= 0; --i) {
    const nnz_t start = u.row_ptr[i];
    PTILU_ASSERT(u.col_idx[start] == i, "U row must start with the diagonal");
    real acc = y[i];
    for (nnz_t k = start + 1; k < u.row_ptr[i + 1]; ++k) {
      acc -= u.values[k] * x[u.col_idx[k]];
    }
    x[i] = acc / u.values[start];
  }
}

void ilu_apply(const IluFactors& factors, std::span<const real> b, std::span<real> x) {
  RealVec y(factors.n());
  forward_solve(factors.l, b, y);
  backward_solve(factors.u, y, x);
}

void ilu_apply_permuted(const IluFactors& factors, const IdxVec& new_of,
                        std::span<const real> b, std::span<real> x) {
  const idx n = factors.n();
  PTILU_CHECK(new_of.size() == static_cast<std::size_t>(n), "permutation size mismatch");
  RealVec pb(n), px(n);
  for (idx i = 0; i < n; ++i) pb[new_of[i]] = b[i];
  ilu_apply(factors, pb, px);
  for (idx i = 0; i < n; ++i) x[i] = px[new_of[i]];
}

void forward_solve(const BlockedFactors& f, std::span<const real> b, std::span<real> y) {
  PTILU_CHECK(b.size() == static_cast<std::size_t>(f.n) && y.size() == b.size(),
              "forward_solve size mismatch");
  real acc[64];  // panel accumulator; widths are capped far below this
  for (idx p = 0; p < f.n_panels(); ++p) {
    const idx r0 = f.panel_start[p];
    const int nb = f.width(p);
    PTILU_ASSERT(nb <= 64, "panel width exceeds the solve accumulator");
    for (int j = 0; j < nb; ++j) acc[j] = b[r0 + j];
    // External gather: acc -= tile(c) * y[c], the tile_axpy kernel again.
    const IdxVec& cols = f.lcols[p];
    const RealVec& vals = f.lvals[p];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      tile_axpy_any(nb, acc, vals.data() + k * static_cast<std::size_t>(nb), y[cols[k]]);
    }
    // Intra-panel unit-lower substitution against the diagonal block.
    const real* diag = f.diag[p].data();
    for (int j = 0; j < nb; ++j) {
      real v = acc[j];
      for (int jp = 0; jp < j; ++jp) v -= diag[j * nb + jp] * acc[jp];
      acc[j] = v;
      y[r0 + j] = v;
    }
  }
}

void backward_solve(const BlockedFactors& f, std::span<const real> y, std::span<real> x) {
  PTILU_CHECK(y.size() == static_cast<std::size_t>(f.n) && x.size() == y.size(),
              "backward_solve size mismatch");
  real acc[64];
  for (idx p = f.n_panels() - 1; p >= 0; --p) {
    const idx r0 = f.panel_start[p];
    const int nb = f.width(p);
    PTILU_ASSERT(nb <= 64, "panel width exceeds the solve accumulator");
    for (int j = 0; j < nb; ++j) acc[j] = y[r0 + j];
    const IdxVec& cols = f.ucols[p];
    const RealVec& vals = f.uvals[p];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      tile_axpy_any(nb, acc, vals.data() + k * static_cast<std::size_t>(nb), x[cols[k]]);
    }
    // Intra-panel back-substitution with the stored U diagonal block.
    const real* diag = f.diag[p].data();
    for (int j = nb - 1; j >= 0; --j) {
      real v = acc[j];
      for (int jj = j + 1; jj < nb; ++jj) v -= diag[j * nb + jj] * x[r0 + jj];
      x[r0 + j] = v / diag[j * nb + j];
    }
  }
}

void ilu_apply(const BlockedFactors& f, std::span<const real> b, std::span<real> x) {
  RealVec y(f.n);
  forward_solve(f, b, y);
  backward_solve(f, y, x);
}

namespace {

/// Batched solves process columns in register-resident groups of up to 8.
constexpr int kMaxRhsGroup = 8;

/// Largest power-of-two group width <= remaining columns (8, 4, 2, 1) — the
/// widths the rhs kernels instantiate. Grouping cannot affect results:
/// columns are arithmetically independent, so any grouping yields the same
/// per-column accumulation order.
int rhs_group(int remaining) {
  if (remaining >= 8) return 8;
  if (remaining >= 4) return 4;
  if (remaining >= 2) return 2;
  return 1;
}

void check_block_shapes(idx n, const DenseRhsBlock& in, const DenseRhsBlock& out,
                        const char* what) {
  PTILU_CHECK(in.n == n && out.n == n && in.k == out.k && in.k >= 1,
              what << " block shape mismatch (n=" << n << ", in " << in.n << "x"
                   << in.k << ", out " << out.n << "x" << out.k << ")");
}

}  // namespace

void forward_solve(const Csr& l, const DenseRhsBlock& b, DenseRhsBlock& y) {
  const idx n = l.n_rows;
  check_block_shapes(n, b, y, "forward_solve");
  const std::size_t stride = static_cast<std::size_t>(n);
  real acc[kMaxRhsGroup];
  for (int c0 = 0; c0 < b.k;) {
    const int kc = rhs_group(b.k - c0);
    const real* bcol = b.data.data() + static_cast<std::size_t>(c0) * stride;
    real* ycol = y.data.data() + static_cast<std::size_t>(c0) * stride;
    for (idx i = 0; i < n; ++i) {
      for (int c = 0; c < kc; ++c) acc[c] = bcol[c * stride + static_cast<std::size_t>(i)];
      for (nnz_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
        rhs_axpy_any(kc, acc, l.values[k], ycol + l.col_idx[k], stride);
      }
      for (int c = 0; c < kc; ++c) ycol[c * stride + static_cast<std::size_t>(i)] = acc[c];
    }
    c0 += kc;
  }
}

void backward_solve(const Csr& u, const DenseRhsBlock& y, DenseRhsBlock& x) {
  const idx n = u.n_rows;
  check_block_shapes(n, y, x, "backward_solve");
  const std::size_t stride = static_cast<std::size_t>(n);
  real acc[kMaxRhsGroup];
  for (int c0 = 0; c0 < y.k;) {
    const int kc = rhs_group(y.k - c0);
    const real* ycol = y.data.data() + static_cast<std::size_t>(c0) * stride;
    real* xcol = x.data.data() + static_cast<std::size_t>(c0) * stride;
    for (idx i = n - 1; i >= 0; --i) {
      const nnz_t start = u.row_ptr[i];
      PTILU_ASSERT(u.col_idx[start] == i, "U row must start with the diagonal");
      for (int c = 0; c < kc; ++c) acc[c] = ycol[c * stride + static_cast<std::size_t>(i)];
      for (nnz_t k = start + 1; k < u.row_ptr[i + 1]; ++k) {
        rhs_axpy_any(kc, acc, u.values[k], xcol + u.col_idx[k], stride);
      }
      const real pivot = u.values[start];
      for (int c = 0; c < kc; ++c) {
        xcol[c * stride + static_cast<std::size_t>(i)] = acc[c] / pivot;
      }
    }
    c0 += kc;
  }
}

void ilu_apply(const IluFactors& factors, const DenseRhsBlock& b, DenseRhsBlock& x) {
  DenseRhsBlock y(factors.n(), b.k);
  forward_solve(factors.l, b, y);
  backward_solve(factors.u, y, x);
}

void forward_solve(const BlockedFactors& f, const DenseRhsBlock& b, DenseRhsBlock& y) {
  check_block_shapes(f.n, b, y, "forward_solve");
  const std::size_t stride = static_cast<std::size_t>(f.n);
  real acc[64 * kMaxRhsGroup];  // kc column-major nb-tiles; nb capped at 64
  for (int c0 = 0; c0 < b.k;) {
    const int kc = rhs_group(b.k - c0);
    const real* bcol = b.data.data() + static_cast<std::size_t>(c0) * stride;
    real* ycol = y.data.data() + static_cast<std::size_t>(c0) * stride;
    for (idx p = 0; p < f.n_panels(); ++p) {
      const idx r0 = f.panel_start[p];
      const int nb = f.width(p);
      PTILU_ASSERT(nb <= 64, "panel width exceeds the solve accumulator");
      for (int c = 0; c < kc; ++c) {
        for (int j = 0; j < nb; ++j) {
          acc[c * nb + j] = bcol[c * stride + static_cast<std::size_t>(r0 + j)];
        }
      }
      const IdxVec& cols = f.lcols[p];
      const RealVec& vals = f.lvals[p];
      for (std::size_t k = 0; k < cols.size(); ++k) {
        tile_axpy_rhs_any(nb, kc, acc, vals.data() + k * static_cast<std::size_t>(nb),
                          ycol + cols[k], stride);
      }
      const real* diag = f.diag[p].data();
      for (int c = 0; c < kc; ++c) {
        real* a = acc + c * nb;
        for (int j = 0; j < nb; ++j) {
          real v = a[j];
          for (int jp = 0; jp < j; ++jp) v -= diag[j * nb + jp] * a[jp];
          a[j] = v;
          ycol[c * stride + static_cast<std::size_t>(r0 + j)] = v;
        }
      }
    }
    c0 += kc;
  }
}

void backward_solve(const BlockedFactors& f, const DenseRhsBlock& y, DenseRhsBlock& x) {
  check_block_shapes(f.n, y, x, "backward_solve");
  const std::size_t stride = static_cast<std::size_t>(f.n);
  real acc[64 * kMaxRhsGroup];
  for (int c0 = 0; c0 < y.k;) {
    const int kc = rhs_group(y.k - c0);
    const real* ycol = y.data.data() + static_cast<std::size_t>(c0) * stride;
    real* xcol = x.data.data() + static_cast<std::size_t>(c0) * stride;
    for (idx p = f.n_panels() - 1; p >= 0; --p) {
      const idx r0 = f.panel_start[p];
      const int nb = f.width(p);
      PTILU_ASSERT(nb <= 64, "panel width exceeds the solve accumulator");
      for (int c = 0; c < kc; ++c) {
        for (int j = 0; j < nb; ++j) {
          acc[c * nb + j] = ycol[c * stride + static_cast<std::size_t>(r0 + j)];
        }
      }
      const IdxVec& cols = f.ucols[p];
      const RealVec& vals = f.uvals[p];
      for (std::size_t k = 0; k < cols.size(); ++k) {
        tile_axpy_rhs_any(nb, kc, acc, vals.data() + k * static_cast<std::size_t>(nb),
                          xcol + cols[k], stride);
      }
      const real* diag = f.diag[p].data();
      for (int c = 0; c < kc; ++c) {
        real* a = acc + c * nb;
        real* xc = xcol + c * stride;
        for (int j = nb - 1; j >= 0; --j) {
          real v = a[j];
          for (int jj = j + 1; jj < nb; ++jj) {
            v -= diag[j * nb + jj] * xc[static_cast<std::size_t>(r0 + jj)];
          }
          xc[static_cast<std::size_t>(r0 + j)] = v / diag[j * nb + j];
        }
      }
    }
    c0 += kc;
  }
}

void ilu_apply(const BlockedFactors& f, const DenseRhsBlock& b, DenseRhsBlock& x) {
  DenseRhsBlock y(f.n, b.k);
  forward_solve(f, b, y);
  backward_solve(f, y, x);
}

}  // namespace ptilu
