#include "ptilu/ilu/trisolve.hpp"

#include "ptilu/ilu/block_kernels.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

void forward_solve(const Csr& l, std::span<const real> b, std::span<real> y) {
  const idx n = l.n_rows;
  PTILU_CHECK(b.size() == static_cast<std::size_t>(n) && y.size() == b.size(),
              "forward_solve size mismatch");
  for (idx i = 0; i < n; ++i) {
    real acc = b[i];
    for (nnz_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
      acc -= l.values[k] * y[l.col_idx[k]];
    }
    y[i] = acc;
  }
}

void backward_solve(const Csr& u, std::span<const real> y, std::span<real> x) {
  const idx n = u.n_rows;
  PTILU_CHECK(y.size() == static_cast<std::size_t>(n) && x.size() == y.size(),
              "backward_solve size mismatch");
  for (idx i = n - 1; i >= 0; --i) {
    const nnz_t start = u.row_ptr[i];
    PTILU_ASSERT(u.col_idx[start] == i, "U row must start with the diagonal");
    real acc = y[i];
    for (nnz_t k = start + 1; k < u.row_ptr[i + 1]; ++k) {
      acc -= u.values[k] * x[u.col_idx[k]];
    }
    x[i] = acc / u.values[start];
  }
}

void ilu_apply(const IluFactors& factors, std::span<const real> b, std::span<real> x) {
  RealVec y(factors.n());
  forward_solve(factors.l, b, y);
  backward_solve(factors.u, y, x);
}

void ilu_apply_permuted(const IluFactors& factors, const IdxVec& new_of,
                        std::span<const real> b, std::span<real> x) {
  const idx n = factors.n();
  PTILU_CHECK(new_of.size() == static_cast<std::size_t>(n), "permutation size mismatch");
  RealVec pb(n), px(n);
  for (idx i = 0; i < n; ++i) pb[new_of[i]] = b[i];
  ilu_apply(factors, pb, px);
  for (idx i = 0; i < n; ++i) x[i] = px[new_of[i]];
}

void forward_solve(const BlockedFactors& f, std::span<const real> b, std::span<real> y) {
  PTILU_CHECK(b.size() == static_cast<std::size_t>(f.n) && y.size() == b.size(),
              "forward_solve size mismatch");
  real acc[64];  // panel accumulator; widths are capped far below this
  for (idx p = 0; p < f.n_panels(); ++p) {
    const idx r0 = f.panel_start[p];
    const int nb = f.width(p);
    PTILU_ASSERT(nb <= 64, "panel width exceeds the solve accumulator");
    for (int j = 0; j < nb; ++j) acc[j] = b[r0 + j];
    // External gather: acc -= tile(c) * y[c], the tile_axpy kernel again.
    const IdxVec& cols = f.lcols[p];
    const RealVec& vals = f.lvals[p];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      tile_axpy_any(nb, acc, vals.data() + k * static_cast<std::size_t>(nb), y[cols[k]]);
    }
    // Intra-panel unit-lower substitution against the diagonal block.
    const real* diag = f.diag[p].data();
    for (int j = 0; j < nb; ++j) {
      real v = acc[j];
      for (int jp = 0; jp < j; ++jp) v -= diag[j * nb + jp] * acc[jp];
      acc[j] = v;
      y[r0 + j] = v;
    }
  }
}

void backward_solve(const BlockedFactors& f, std::span<const real> y, std::span<real> x) {
  PTILU_CHECK(y.size() == static_cast<std::size_t>(f.n) && x.size() == y.size(),
              "backward_solve size mismatch");
  real acc[64];
  for (idx p = f.n_panels() - 1; p >= 0; --p) {
    const idx r0 = f.panel_start[p];
    const int nb = f.width(p);
    PTILU_ASSERT(nb <= 64, "panel width exceeds the solve accumulator");
    for (int j = 0; j < nb; ++j) acc[j] = y[r0 + j];
    const IdxVec& cols = f.ucols[p];
    const RealVec& vals = f.uvals[p];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      tile_axpy_any(nb, acc, vals.data() + k * static_cast<std::size_t>(nb), x[cols[k]]);
    }
    // Intra-panel back-substitution with the stored U diagonal block.
    const real* diag = f.diag[p].data();
    for (int j = nb - 1; j >= 0; --j) {
      real v = acc[j];
      for (int jj = j + 1; jj < nb; ++jj) v -= diag[j * nb + jj] * x[r0 + jj];
      x[r0 + j] = v / diag[j * nb + j];
    }
  }
}

void ilu_apply(const BlockedFactors& f, std::span<const real> b, std::span<real> x) {
  RealVec y(f.n);
  forward_solve(f, b, y);
  backward_solve(f, y, x);
}

}  // namespace ptilu
