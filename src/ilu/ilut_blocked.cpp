#include "ptilu/ilu/ilut_blocked.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ptilu/ilu/block_kernels.hpp"
#include "ptilu/ilu/factor_scratch.hpp"
#include "ptilu/ilu/pivot.hpp"
#include "ptilu/ilu/working_row.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

/// Block-wise 2nd dropping rule: from the staged (frob², col) tiles, keep
/// those whose root-mean-square entry clears tau_min, and of those at most
/// keep_count of the largest by Frobenius norm (ties: column ascending).
/// Survivors are returned sorted by column. Mirrors select_largest at tile
/// granularity with the same deterministic strict total order.
void select_largest_tiles(std::vector<std::pair<real, idx>>& tiles, idx keep_count,
                          real tau_min, int nb) {
  const real floor2 = tau_min * tau_min * static_cast<real>(nb);
  tiles.erase(std::remove_if(tiles.begin(), tiles.end(),
                             [&](const auto& t) { return t.first < floor2 || t.first == 0.0; }),
              tiles.end());
  const auto by_magnitude = [](const std::pair<real, idx>& a, const std::pair<real, idx>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  if (static_cast<idx>(tiles.size()) > keep_count) {
    std::nth_element(tiles.begin(), tiles.begin() + keep_count, tiles.end(), by_magnitude);
    tiles.resize(static_cast<std::size_t>(keep_count));
  }
  std::sort(tiles.begin(), tiles.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
}

/// Nonzero entries of a tile — what a dropped tile costs in scalar terms.
std::uint64_t tile_nonzeros(int nb, const real* t) {
  std::uint64_t count = 0;
  for (int j = 0; j < nb; ++j) count += t[j] != 0.0;
  return count;
}

}  // namespace

BlockedFactors ilut_blocked(const Csr& a, const BlockedIlutOptions& opts,
                            IlutStats* stats) {
  PTILU_CHECK(a.n_rows == a.n_cols, "blocked ILUT needs a square matrix");
  PTILU_CHECK(opts.base.m >= 0 && opts.base.tau >= 0.0, "invalid ILUT options");
  const idx n = a.n_rows;
  const RealVec norms = row_norms(a, 2);

  BlockedFactors f;
  f.n = n;
  f.panel_start = detect_panels(a, opts.panels);
  const idx np = f.n_panels();
  f.lcols.resize(np);
  f.lvals.resize(np);
  f.diag.resize(np);
  f.ucols.resize(np);
  f.uvals.resize(np);

  // Row -> owning panel, for fetching the U row of an external pivot.
  IdxVec panel_of(n);
  for (idx p = 0; p < np; ++p) {
    for (idx i = f.panel_start[p]; i < f.panel_start[p + 1]; ++i) panel_of[i] = p;
  }

  RealVec udiag(n, 0.0);  // dense mirror of the U diagonal for O(1) pivots
  PanelWorkingRow w(n, opts.panels.max_panel);
  PanelScratch scratch;
  scratch.mult.resize(static_cast<std::size_t>(opts.panels.max_panel));
  IlutStats local_stats;
  IlutStats* st = stats != nullptr ? stats : &local_stats;

  for (idx p = 0; p < np; ++p) {
    const idx r0 = f.panel_start[p];
    const int nb = f.width(p);

    real tau_min = std::numeric_limits<real>::infinity();
    for (int j = 0; j < nb; ++j) {
      PTILU_CHECK(norms[r0 + j] > 0.0, "row " << r0 + j << " of A is entirely zero");
      tau_min = std::min(tau_min, opts.base.tau * norms[r0 + j]);
    }

    // --- Load the panel's rows of A into tiles; keep the diagonal block
    // structurally present so intra-panel elimination is always dense.
    ColumnHeap heap = make_column_heap(scratch.heap);
    for (int j = 0; j < nb; ++j) w.insert(r0 + j);
    for (int j = 0; j < nb; ++j) {
      const idx i = r0 + j;
      for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        const idx c = a.col_idx[k];
        if (!w.present(c)) {
          w.insert(c);
          if (c < r0) heap.push(c);
        }
        w.tile(c)[j] = a.values[k];
      }
    }

    // --- External elimination: pivot columns k < r0 live in earlier,
    // fully factored panels. All nb rows eliminate k jointly — one heap
    // pop, one U-row walk, and nb-wide tile updates, where the scalar path
    // pays each of those per row.
    real* const mult = scratch.mult.data();
    while (!heap.empty()) {
      const idx k = heap.pop();
      const real u_kk = udiag[k];
      real* wk = w.tile(k);
      bool any = false;
      for (int j = 0; j < nb; ++j) {
        real m = wk[j] / u_kk;
        ++st->flops;
        if (m != 0.0 && std::abs(m) < opts.base.tau * norms[r0 + j]) {
          m = 0.0;  // 1st dropping rule, per row
          ++st->dropped_rule1;
        }
        mult[j] = m;
        wk[j] = m;
        any |= m != 0.0;
      }
      if (!any) continue;

      const idx q = panel_of[k];
      const idx q0 = f.panel_start[q];
      const int nbq = f.width(q);
      const int jk = static_cast<int>(k - q0);
      const auto apply = [&](idx c, real uval) {
        if (uval == 0.0) return;  // padding inside the source tile
        if (!w.present(c)) {
          w.insert(c);
          if (c < r0) heap.push(c);
        }
        tile_axpy_any(nb, w.tile(c), mult, uval);
        st->flops += 2 * static_cast<std::uint64_t>(nb);
      };
      // Strictly-upper part of U row k: first the tail of its diagonal
      // block, then its external U tiles (entry jk of each).
      const real* drow = f.diag[q].data() + static_cast<std::size_t>(jk) * nbq;
      for (int jj = jk + 1; jj < nbq; ++jj) apply(q0 + jj, drow[jj]);
      const IdxVec& qcols = f.ucols[q];
      const RealVec& qvals = f.uvals[q];
      for (std::size_t pos = 0; pos < qcols.size(); ++pos) {
        apply(qcols[pos], qvals[pos * static_cast<std::size_t>(nbq) + jk]);
      }
    }

    // --- Intra-panel elimination: dense LU of the diagonal block (no
    // dropping inside a supernode), then forward-substitute every external
    // U tile against its unit-lower multipliers.
    for (int jp = 0; jp < nb; ++jp) {
      real* pt = w.tile(r0 + jp);  // diag-block column jp
      const real floor_abs =
          opts.base.pivot_rel > 0.0 ? opts.base.pivot_rel * norms[r0 + jp] : 0.0;
      const real pivot = safeguard_pivot(r0 + jp, pt[jp], floor_abs, st->pivots_guarded);
      pt[jp] = pivot;
      for (int j = jp + 1; j < nb; ++j) {
        pt[j] /= pivot;
        ++st->flops;
      }
      for (int jj = jp + 1; jj < nb; ++jj) {
        real* t = w.tile(r0 + jj);
        const real uval = t[jp];
        if (uval == 0.0) continue;
        for (int j = jp + 1; j < nb; ++j) t[j] -= pt[j] * uval;
        st->flops += 2 * static_cast<std::uint64_t>(nb - jp - 1);
      }
    }
    // The finished diagonal block, row-major: strict lower = intra-panel
    // multipliers, upper incl. diagonal = U. Stored before the external
    // substitution because the tile kernel reads the multipliers from it.
    RealVec& dblock = f.diag[p];
    dblock.resize(static_cast<std::size_t>(nb) * nb);
    for (int jj = 0; jj < nb; ++jj) {
      const real* t = w.tile(r0 + jj);
      for (int j = 0; j < nb; ++j) dblock[static_cast<std::size_t>(j) * nb + jj] = t[j];
    }
    for (int j = 0; j < nb; ++j) udiag[r0 + j] = dblock[static_cast<std::size_t>(j) * nb + j];
    for (const idx c : w.touched()) {
      if (c < r0 + nb) continue;
      tile_trsv_lower_any(nb, w.tile(c), dblock.data());
      st->flops += static_cast<std::uint64_t>(nb) * (nb - 1);
    }

    // --- Block-wise dropping and copy-out.
    std::vector<std::pair<real, idx>>& tiles = scratch.tiles;
    for (const int side : {0, 1}) {
      tiles.clear();
      for (const idx c : w.touched()) {
        const bool is_l = c < r0;
        if ((side == 0) != is_l) continue;
        if (!is_l && c < r0 + nb) continue;  // diagonal block, always kept
        tiles.emplace_back(tile_frob2(nb, w.tile(c)), c);
      }
      std::uint64_t staged_nnz = 0;
      for (const auto& [frob2, c] : tiles) staged_nnz += tile_nonzeros(nb, w.tile(c));
      select_largest_tiles(tiles, opts.base.m, tau_min, nb);
      IdxVec& cols = side == 0 ? f.lcols[p] : f.ucols[p];
      RealVec& vals = side == 0 ? f.lvals[p] : f.uvals[p];
      cols.reserve(tiles.size());
      vals.reserve(tiles.size() * static_cast<std::size_t>(nb));
      std::uint64_t kept_nnz = 0;
      for (const auto& [frob2, c] : tiles) {
        cols.push_back(c);
        const real* t = w.tile(c);
        vals.insert(vals.end(), t, t + nb);
        kept_nnz += tile_nonzeros(nb, t);
      }
      st->dropped_rule2 += staged_nnz - kept_nnz;
    }

    w.clear();
  }
  return f;
}

}  // namespace ptilu
