#include "ptilu/ilu/supernodes.hpp"

#include <cstdint>

#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

/// Number of distinct columns in rows [r0, r0+w) of A, diagonals included.
/// `stamp`/`epoch` implement the usual epoch-stamped membership test so the
/// scan is O(entries scanned) with no clearing sweep.
idx union_size(const Csr& a, idx r0, idx w, std::vector<std::uint32_t>& stamp,
               std::uint32_t epoch) {
  idx count = 0;
  for (idx i = r0; i < r0 + w; ++i) {
    if (stamp[i] != epoch) {  // structural diagonal
      stamp[i] = epoch;
      ++count;
    }
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const idx c = a.col_idx[k];
      if (stamp[c] != epoch) {
        stamp[c] = epoch;
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

IdxVec detect_panels(const Csr& a, const PanelOptions& opts) {
  PTILU_CHECK(a.n_rows == a.n_cols, "panel detection needs a square matrix");
  PTILU_CHECK(opts.max_panel >= 1 && opts.slack >= 0.0, "invalid panel options");
  const idx n = a.n_rows;

  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t epoch = 0;

  IdxVec starts;
  starts.reserve(static_cast<std::size_t>(n) / 2 + 2);
  starts.push_back(0);
  idx r0 = 0;
  while (r0 < n) {
    // Try the widths largest-first: the widest panel whose padding fits the
    // slack budget wins, so a run of identical-pattern rows always blocks at
    // max_panel and an isolated irregular row falls through to width 1.
    idx width = 1;
    for (idx w = static_cast<idx>(opts.max_panel); w > 1; w /= 2) {
      if (r0 + w > n) continue;
      real entries = 0.0;
      for (idx i = r0; i < r0 + w; ++i) {
        // Count each row's pattern with its structural diagonal, mirroring
        // what the factorization loads.
        real len = static_cast<real>(a.row_ptr[i + 1] - a.row_ptr[i]);
        bool has_diag = false;
        for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1] && !has_diag; ++k) {
          has_diag = a.col_idx[k] == i;
        }
        entries += has_diag ? len : len + 1.0;
      }
      const idx u = union_size(a, r0, w, stamp, ++epoch);
      if (static_cast<real>(w) * static_cast<real>(u) <=
          (1.0 + opts.slack) * entries) {
        width = w;
        break;
      }
    }
    r0 += width;
    starts.push_back(r0);
  }
  return starts;
}

}  // namespace ptilu
