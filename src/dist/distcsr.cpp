#include "ptilu/dist/distcsr.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "ptilu/sim/trace.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

idx DistCsr::interior_count(int rank) const {
  idx count = 0;
  for (const idx row : owned_rows[rank]) count += interface[row] ? 0 : 1;
  return count;
}

idx DistCsr::interface_count_total() const {
  idx count = 0;
  for (idx v = 0; v < n(); ++v) count += interface[v] ? 1 : 0;
  return count;
}

DistCsr DistCsr::create(Csr a, const Partition& p) {
  PTILU_CHECK(a.n_rows == a.n_cols, "DistCsr needs a square matrix");
  p.validate(a.n_rows);

  DistCsr dist;
  dist.nranks = p.nparts;
  dist.owner = p.part;
  dist.owned_rows.resize(p.nparts);
  for (idx v = 0; v < a.n_rows; ++v) dist.owned_rows[p.part[v]].push_back(v);

  // Interface classification uses the symmetrized pattern: a directed
  // coupling in either direction makes both endpoints interface nodes.
  const Csr sym = symmetrize_pattern(a);
  dist.interface.assign(a.n_rows, false);
  for (idx v = 0; v < a.n_rows; ++v) {
    for (nnz_t k = sym.row_ptr[v]; k < sym.row_ptr[v + 1]; ++k) {
      const idx u = sym.col_idx[k];
      if (u != v && p.part[u] != p.part[v]) {
        dist.interface[v] = true;
        break;
      }
    }
  }
  dist.a = std::move(a);
  return dist;
}

Halo Halo::build(const DistCsr& dist) {
  Halo halo;
  halo.send_lists.resize(dist.nranks);
  halo.recv_lists.resize(dist.nranks);

  // For each rank, the set of remote indices its owned rows reference.
  for (int r = 0; r < dist.nranks; ++r) {
    std::map<int, IdxVec> needs;  // peer -> indices (collected, then dedup)
    for (const idx row : dist.owned_rows[r]) {
      for (nnz_t k = dist.a.row_ptr[row]; k < dist.a.row_ptr[row + 1]; ++k) {
        const idx col = dist.a.col_idx[k];
        const int peer = dist.owner[col];
        if (peer != r) needs[peer].push_back(col);
      }
    }
    for (auto& [peer, indices] : needs) {
      std::sort(indices.begin(), indices.end());
      indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
      halo.recv_lists[r].emplace_back(peer, indices);
      halo.send_lists[peer].emplace_back(r, std::move(indices));
    }
  }
  for (auto& lists : halo.send_lists) {
    std::sort(lists.begin(), lists.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  return halo;
}

std::size_t Halo::total_exchanged() const {
  std::size_t total = 0;
  for (const auto& lists : send_lists) {
    for (const auto& [peer, indices] : lists) total += indices.size();
  }
  return total;
}

void dist_spmv(sim::Machine& machine, const DistCsr& dist, const Halo& halo,
               const RealVec& x, RealVec& y) {
  PTILU_CHECK(machine.nranks() == dist.nranks, "machine/partition rank mismatch");
  PTILU_CHECK(x.size() == static_cast<std::size_t>(dist.n()) && y.size() == x.size(),
              "dist_spmv size mismatch");
  sim::ScopedPhase phase(machine, "spmv");

  // Superstep 1: ship boundary values.
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    RealVec values;
    for (const auto& [peer, indices] : halo.send_lists[r]) {
      values.resize(indices.size());
      for (std::size_t i = 0; i < indices.size(); ++i) values[i] = x[indices[i]];
      ctx.charge_mem(values.size() * sizeof(real));
      ctx.send_reals(peer, /*tag=*/0, values);
    }
  }, "spmv/halo_send");

  // Superstep 2: receive ghosts, compute owned rows.
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    // Keyed lookups only — never iterated, so hash order cannot leak into
    // modeled output (determinism-unordered-iter would flag traversal).
    std::unordered_map<idx, real> ghost;
    RealVec values;
    for (const sim::Message& msg : ctx.recv_all()) {
      values.clear();
      sim::decode_reals_append(msg, values);
      // Find the matching recv list for this peer.
      const auto it = std::find_if(halo.recv_lists[r].begin(), halo.recv_lists[r].end(),
                                   [&](const auto& entry) { return entry.first == msg.from; });
      PTILU_CHECK(it != halo.recv_lists[r].end(), "unexpected halo message");
      PTILU_CHECK(it->second.size() == values.size(), "halo message length mismatch");
      for (std::size_t i = 0; i < values.size(); ++i) ghost.emplace(it->second[i], values[i]);
    }
    std::uint64_t flops = 0;
    for (const idx row : dist.owned_rows[r]) {
      real acc = 0.0;
      for (nnz_t k = dist.a.row_ptr[row]; k < dist.a.row_ptr[row + 1]; ++k) {
        const idx col = dist.a.col_idx[k];
        const real xv = dist.owner[col] == r ? x[col] : ghost.at(col);
        acc += dist.a.values[k] * xv;
      }
      flops += 2 * static_cast<std::uint64_t>(dist.a.row_nnz(row));
      y[row] = acc;
    }
    ctx.charge_flops(flops);
  }, "spmv/compute");
  machine.check_quiescent("spmv/end");
}

}  // namespace ptilu
