#include "ptilu/dist/mis_dist.hpp"

#include <algorithm>

#include "ptilu/sim/trace.hpp"
#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu {

namespace {

enum Status : std::uint8_t { kCandidate = 0, kIn = 1, kOut = 2 };

constexpr int kTagIn = 1;
constexpr int kTagOut = 2;

}  // namespace

idx DistGraph::total_vertices() const {
  idx total = 0;
  for (const auto& verts : verts_of) total += static_cast<idx>(verts.size());
  return total;
}

idx DistGraph::total_edges_directed() const {
  idx total = 0;
  for (const auto& rank_adj : adj) {
    for (const auto& neighbors : rank_adj) total += static_cast<idx>(neighbors.size());
  }
  return total;
}

void DistMisScratch::ensure(int nranks, idx n_global) {
  if (static_cast<int>(status.size()) < nranks) status.resize(nranks);
  for (auto& s : status) {
    if (static_cast<idx>(s.size()) < n_global) s.assign(n_global, kCandidate);
  }
  if (static_cast<int>(touched.size()) < nranks) touched.resize(nranks);
}

IdxVec mis_dist(sim::Machine& machine, const DistGraph& graph, const DistMisOptions& opts,
                DistMisScratch* scratch) {
  const int nranks = machine.nranks();
  PTILU_CHECK(graph.owner != nullptr, "DistGraph missing owner array");
  PTILU_CHECK(static_cast<int>(graph.verts_of.size()) == nranks &&
                  static_cast<int>(graph.adj.size()) == nranks,
              "DistGraph rank count mismatch");

  DistMisScratch local_scratch;
  DistMisScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  sc.ensure(nranks, graph.n_global);

  // Self-tagging: callers need not (and should not) wrap mis_dist in a
  // phase of their own; the tag nests under whatever phase is active.
  sim::Trace* const tr = machine.trace();
  sim::ScopedPhase mis_phase(tr, "mis");

  // Setup phase (the paper's "communication setup"): initialize owned and
  // mirror statuses. Peer ranks are discovered lazily when a vertex's
  // status changes — each vertex changes status at most once per call, so
  // the total notification work stays O(edges) without per-vertex peer
  // lists.
  {
  sim::ScopedPhase span(tr, "setup");
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    auto& status = sc.status[r];
    auto& touched = sc.touched[r];
    const IdxVec& verts = graph.verts_of[r];
    std::uint64_t scanned = 0;
    for (std::size_t i = 0; i < verts.size(); ++i) {
      status[verts[i]] = kCandidate;
      touched.push_back(verts[i]);
      for (const idx u : graph.adj[r][i]) {
        ++scanned;
        if ((*graph.owner)[u] != r) {
          status[u] = kCandidate;  // mirror entry
          touched.push_back(u);
        }
      }
    }
    ctx.charge_mem(scanned * sizeof(idx));
  });
  }

  // Per-rank outgoing update batches, dense by peer (reused each step).
  std::vector<std::vector<IdxVec>> in_batch(nranks, std::vector<IdxVec>(nranks));
  std::vector<std::vector<IdxVec>> out_batch(nranks, std::vector<IdxVec>(nranks));
  std::vector<std::uint8_t> peer_stamp(nranks, 0);
  // Queue a status-change notice for every peer rank owning a neighbor of
  // verts_of[r][i]; dedupes peers with a dense stamp.
  std::vector<int> seen_peers;
  const auto notify = [&](int r, std::size_t i, idx v,
                          std::vector<IdxVec>& batch) {
    auto& seen = seen_peers;
    seen.clear();
    for (const idx u : graph.adj[r][i]) {
      const int peer = (*graph.owner)[u];
      if (peer == r || peer_stamp[peer]) continue;
      peer_stamp[peer] = 1;
      seen.push_back(peer);
      batch[peer].push_back(v);
    }
    for (const int peer : seen) peer_stamp[peer] = 0;
  };
  const auto flush_batches = [&](sim::RankContext& ctx, int r) {
    for (int peer = 0; peer < nranks; ++peer) {
      if (!in_batch[r][peer].empty()) {
        ctx.send_indices(peer, kTagIn, in_batch[r][peer]);
        in_batch[r][peer].clear();
      }
      if (!out_batch[r][peer].empty()) {
        ctx.send_indices(peer, kTagOut, out_batch[r][peer]);
        out_batch[r][peer].clear();
      }
    }
  };

  long long candidates_left = 1;
  {
  sim::ScopedPhase rounds_span(tr, "rounds");
  for (int round = 0; round < opts.rounds && candidates_left > 0; ++round) {
    candidates_left = 0;
    // One superstep per round: apply deferred mirror updates, dominate owned
    // candidates that gained an In neighbor, then select strict local key
    // minima among the remaining candidates. Selection uses only
    // round-start information, so adjacent boundary vertices on different
    // ranks can never both win — this provides the conflict-freedom the
    // paper obtains with its two-step insert-then-retract modification.
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      auto& status = sc.status[r];
      for (const sim::Message& msg : ctx.recv_all()) {
        const std::uint8_t value = msg.tag == kTagIn ? kIn : kOut;
        for (const idx v : sim::decode_indices(msg)) status[v] = value;
      }

      const IdxVec& verts = graph.verts_of[r];
      std::uint64_t comparisons = 0;
      // Domination sweep: candidates adjacent to an In vertex leave.
      for (std::size_t i = 0; i < verts.size(); ++i) {
        const idx v = verts[i];
        if (status[v] != kCandidate) continue;
        for (const idx u : graph.adj[r][i]) {
          ++comparisons;
          if (status[u] == kIn) {
            status[v] = kOut;
            notify(r, i, v, out_batch[r]);
            break;
          }
        }
      }
      // Selection sweep (round-start statuses; domination above only uses
      // information already final at round start, i.e. In vertices).
      IdxVec selected;
      for (std::size_t i = 0; i < verts.size(); ++i) {
        const idx v = verts[i];
        if (status[v] != kCandidate) continue;
        const std::uint64_t key_v = vertex_key(opts.seed, v, round);
        bool is_min = true;
        for (const idx u : graph.adj[r][i]) {
          ++comparisons;
          if (status[u] != kCandidate) continue;
          const std::uint64_t key_u = vertex_key(opts.seed, u, round);
          if (key_u < key_v || (key_u == key_v && u < v)) {
            is_min = false;
            break;
          }
        }
        if (is_min) selected.push_back(static_cast<idx>(i));
      }
      ctx.charge_flops(comparisons);
      // Commit: winners enter the set, their owned neighbors leave.
      for (const idx i : selected) {
        const idx v = verts[i];
        status[v] = kIn;
        notify(r, i, v, in_batch[r]);
        for (const idx u : graph.adj[r][i]) {
          if ((*graph.owner)[u] != r || status[u] != kCandidate) continue;
          status[u] = kOut;
          const auto pos = static_cast<std::size_t>(
              std::lower_bound(verts.begin(), verts.end(), u) - verts.begin());
          notify(r, pos, u, out_batch[r]);
        }
      }
      for (const idx v : verts) candidates_left += status[v] == kCandidate;
      flush_batches(ctx, r);
    });
  }
  }

  // Drain pending updates so the machine's queues are clean for the caller.
  {
    sim::ScopedPhase span(tr, "drain");
    machine.step([&](sim::RankContext& ctx) { (void)ctx.recv_all(); });
  }

  IdxVec result;
  for (int r = 0; r < nranks; ++r) {
    for (const idx v : graph.verts_of[r]) {
      if (sc.status[r][v] == kIn) result.push_back(v);
    }
  }
  // Reset scratch for the next call.
  for (int r = 0; r < nranks; ++r) {
    for (const idx v : sc.touched[r]) sc.status[r][v] = kCandidate;
    sc.touched[r].clear();
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace ptilu
