#include "ptilu/dist/mis_dist.hpp"

#include <algorithm>

#include "ptilu/sim/trace.hpp"
#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu {

namespace {

enum Status : std::uint8_t { kCandidate = 0, kIn = 1, kOut = 2 };

constexpr int kTagIn = 1;
constexpr int kTagOut = 2;

}  // namespace

idx DistGraph::total_vertices() const {
  idx total = 0;
  for (const auto& verts : verts_of) total += static_cast<idx>(verts.size());
  return total;
}

idx DistGraph::total_edges_directed() const {
  idx total = 0;
  for (const auto& rank_adj : adj) {
    for (const auto& neighbors : rank_adj) total += static_cast<idx>(neighbors.size());
  }
  return total;
}

void DistMisScratch::ensure(int nranks, int lanes, idx n_global) {
  if (static_cast<int>(status.size()) < nranks) status.resize(nranks);
  for (auto& s : status) {
    if (static_cast<idx>(s.size()) < n_global) s.assign(n_global, kCandidate);
  }
  if (static_cast<int>(touched.size()) < nranks) touched.resize(nranks);
  // Outer vectors only: the per-rank batch vectors are sized by each rank's
  // neighbor degree during setup, so total batch storage stays proportional
  // to the communication graph — never the former O(nranks²).
  if (static_cast<int>(in_batch.size()) < nranks) {
    nbrs.resize(nranks);
    in_batch.resize(nranks);
    out_batch.resize(nranks);
  }
  if (static_cast<int>(peer_start.size()) < nranks) {
    peer_start.resize(nranks);
    peer_list.resize(nranks);
  }
  if (static_cast<int>(peer_stamp.size()) < lanes) peer_stamp.resize(lanes);
  for (auto& stamp : peer_stamp) {
    if (static_cast<int>(stamp.size()) < nranks) stamp.assign(nranks, 0);
  }
  if (static_cast<int>(recv_buf.size()) < lanes) recv_buf.resize(lanes);
  if (static_cast<int>(selected.size()) < lanes) selected.resize(lanes);
  if (static_cast<int>(cand_lane.size()) < lanes) cand_lane.resize(lanes, 0);
  if (static_cast<int>(key.size()) < lanes) {
    key.resize(lanes);
    key_stamp.resize(lanes);
  }
  for (int l = 0; l < lanes; ++l) {
    if (static_cast<idx>(key[l].size()) < n_global) {
      key[l].resize(n_global);
      key_stamp[l].assign(n_global, 0);
    }
  }
}

IdxVec mis_dist(sim::Machine& machine, const DistGraph& graph, const DistMisOptions& opts,
                DistMisScratch* scratch) {
  const int nranks = machine.nranks();
  PTILU_CHECK(graph.owner != nullptr, "DistGraph missing owner array");
  PTILU_CHECK(static_cast<int>(graph.verts_of.size()) == nranks &&
                  static_cast<int>(graph.adj.size()) == nranks,
              "DistGraph rank count mismatch");

  DistMisScratch local_scratch;
  DistMisScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  sc.ensure(nranks, machine.scratch_lanes(), graph.n_global);

  // Self-tagging: callers need not (and should not) wrap mis_dist in a
  // phase of their own; the tag nests under whatever phase is active.
  sim::ScopedPhase mis_phase(machine, "mis");

  // Setup phase (the paper's "communication setup"): initialize owned and
  // mirror statuses. While the same pass is over the adjacency anyway, it
  // also records for each owned vertex the dedup'd list of remote peer
  // ranks (CSR layout in the scratch): a status-change notification then
  // walks that short list instead of rescanning the vertex's adjacency.
  // Peer order matches first occurrence in the adjacency list, so the
  // queued batches — and hence the messages — are byte-identical to the
  // lazy-discovery scheme this replaces.
  {
  sim::ScopedPhase span(machine, "setup");
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    auto& status = sc.status[r];
    auto& touched = sc.touched[r];
    auto& pstart = sc.peer_start[r];
    auto& plist = sc.peer_list[r];
    auto& nbrs = sc.nbrs[r];
    auto& peer_stamp = sc.peer_stamp[static_cast<std::size_t>(ctx.lane())];
    const IdxVec& verts = graph.verts_of[r];
    pstart.clear();
    pstart.reserve(verts.size() + 1);
    pstart.push_back(0);
    plist.clear();
    nbrs.clear();
    std::uint64_t scanned = 0;
    // peer_stamp doubles as two dedup marks per peer: bit 0 scopes the
    // per-vertex peer list, bit 1 the rank-wide neighbor list.
    for (std::size_t i = 0; i < verts.size(); ++i) {
      status[verts[i]] = kCandidate;
      touched.push_back(verts[i]);
      const std::size_t first_peer = plist.size();
      for (const idx u : graph.adj[r][i]) {
        ++scanned;
        const int peer = (*graph.owner)[u];
        if (peer != r) {
          status[u] = kCandidate;  // mirror entry
          touched.push_back(u);
          if (!(peer_stamp[peer] & 1)) {
            peer_stamp[peer] |= 1;
            plist.push_back(peer);
          }
          if (!(peer_stamp[peer] & 2)) {
            peer_stamp[peer] |= 2;
            nbrs.push_back(peer);
          }
        }
      }
      for (std::size_t p = first_peer; p < plist.size(); ++p) {
        peer_stamp[plist[p]] &= static_cast<std::uint8_t>(~1);
      }
      pstart.push_back(static_cast<idx>(plist.size()));
    }
    // Sparse neighbor routing: sort the rank's few peers, then remap the
    // per-vertex peer CSR from rank ids to slots into that sorted list, and
    // size the slot-indexed outgoing batches by the neighbor degree.
    // Flushing slots in order then visits peers in ascending rank order —
    // the exact send order the dense 0..p-1 peer scan produced.
    std::sort(nbrs.begin(), nbrs.end());
    for (const int peer : nbrs) peer_stamp[peer] = 0;
    for (int& entry : plist) {
      entry = static_cast<int>(std::lower_bound(nbrs.begin(), nbrs.end(), entry) -
                               nbrs.begin());
    }
    if (sc.in_batch[r].size() < nbrs.size()) sc.in_batch[r].resize(nbrs.size());
    if (sc.out_batch[r].size() < nbrs.size()) sc.out_batch[r].resize(nbrs.size());
    ctx.charge_mem(scanned * sizeof(idx));
  }, "mis/setup");
  }

  // Per-rank outgoing update batches, slot-indexed by sorted neighbor
  // (pooled in the scratch, cleared after each flush so capacity persists
  // across rounds and calls).
  auto& in_batch = sc.in_batch;
  auto& out_batch = sc.out_batch;
  // Queue a status-change notice for every peer rank owning a neighbor of
  // verts_of[r][i], via the precomputed peer CSR (entries are slots).
  const auto notify = [&](int r, std::size_t i, idx v,
                          std::vector<IdxVec>& batch) {
    const auto& pstart = sc.peer_start[r];
    const auto& plist = sc.peer_list[r];
    const idx end = pstart[i + 1];
    for (idx p = pstart[i]; p < end; ++p) batch[plist[p]].push_back(v);
  };
  const auto flush_batches = [&](sim::RankContext& ctx, int r) {
    const auto& nbrs = sc.nbrs[r];
    for (std::size_t s = 0; s < nbrs.size(); ++s) {
      if (!in_batch[r][s].empty()) {
        ctx.send_indices(nbrs[s], kTagIn, in_batch[r][s]);
        in_batch[r][s].clear();
      }
      if (!out_batch[r][s].empty()) {
        ctx.send_indices(nbrs[s], kTagOut, out_batch[r][s]);
        out_batch[r][s].clear();
      }
    }
  };

  long long candidates_left = 1;
  {
  sim::ScopedPhase rounds_span(machine, "rounds");
  for (int round = 0; round < opts.rounds && candidates_left > 0; ++round) {
    // New memo epoch for this round's vertex keys. A key depends only on
    // (seed, vertex, round), so the per-lane memos all compute the same
    // values; on the (never reached in practice) epoch wrap, invalidate
    // every lane's stamps.
    if (++sc.round_epoch == 0) {
      for (auto& stamps : sc.key_stamp) std::fill(stamps.begin(), stamps.end(), 0u);
      sc.round_epoch = 1;
    }
    std::fill(sc.cand_lane.begin(), sc.cand_lane.end(), 0);
    // One superstep per round: apply deferred mirror updates, dominate owned
    // candidates that gained an In neighbor, then select strict local key
    // minima among the remaining candidates. Selection uses only
    // round-start information, so adjacent boundary vertices on different
    // ranks can never both win — this provides the conflict-freedom the
    // paper obtains with its two-step insert-then-retract modification.
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      const auto lane = static_cast<std::size_t>(ctx.lane());
      auto& status = sc.status[r];
      IdxVec& recv_buf = sc.recv_buf[lane];
      auto& key = sc.key[lane];
      auto& key_stamp = sc.key_stamp[lane];
      const auto key_of = [&](idx v) {
        if (key_stamp[v] != sc.round_epoch) {
          key_stamp[v] = sc.round_epoch;
          key[v] = vertex_key(opts.seed, v, round);
        }
        return key[v];
      };
      for (const sim::Message& msg : ctx.recv_all()) {
        const std::uint8_t value = msg.tag == kTagIn ? kIn : kOut;
        recv_buf.clear();
        sim::decode_indices_append(msg, recv_buf);
        for (const idx v : recv_buf) status[v] = value;
      }

      const IdxVec& verts = graph.verts_of[r];
      std::uint64_t comparisons = 0;
      // Domination sweep: candidates adjacent to an In vertex leave.
      for (std::size_t i = 0; i < verts.size(); ++i) {
        const idx v = verts[i];
        if (status[v] != kCandidate) continue;
        for (const idx u : graph.adj[r][i]) {
          ++comparisons;
          if (status[u] == kIn) {
            status[v] = kOut;
            notify(r, i, v, out_batch[r]);
            break;
          }
        }
      }
      // Selection sweep (round-start statuses; domination above only uses
      // information already final at round start, i.e. In vertices).
      IdxVec& selected = sc.selected[lane];
      selected.clear();
      for (std::size_t i = 0; i < verts.size(); ++i) {
        const idx v = verts[i];
        if (status[v] != kCandidate) continue;
        const std::uint64_t key_v = key_of(v);
        bool is_min = true;
        for (const idx u : graph.adj[r][i]) {
          ++comparisons;
          if (status[u] != kCandidate) continue;
          const std::uint64_t key_u = key_of(u);
          if (key_u < key_v || (key_u == key_v && u < v)) {
            is_min = false;
            break;
          }
        }
        if (is_min) selected.push_back(static_cast<idx>(i));
      }
      ctx.charge_flops(comparisons);
      // Commit: winners enter the set, their owned neighbors leave.
      for (const idx i : selected) {
        const idx v = verts[i];
        status[v] = kIn;
        notify(r, i, v, in_batch[r]);
        for (const idx u : graph.adj[r][i]) {
          if ((*graph.owner)[u] != r || status[u] != kCandidate) continue;
          status[u] = kOut;
          const auto pos = static_cast<std::size_t>(
              std::lower_bound(verts.begin(), verts.end(), u) - verts.begin());
          notify(r, pos, u, out_batch[r]);
        }
      }
      for (const idx v : verts) sc.cand_lane[lane] += status[v] == kCandidate;
      flush_batches(ctx, r);
    }, "mis/round");
    // Integer sum of the per-lane partials: order-independent, so one
    // shared sequential lane and p threaded lanes agree exactly.
    candidates_left = 0;
    for (const long long c : sc.cand_lane) candidates_left += c;
  }
  }

  // Drain pending updates so the machine's queues are clean for the caller.
  {
    sim::ScopedPhase span(machine, "drain");
    machine.step([&](sim::RankContext& ctx) { (void)ctx.recv_all(); }, "mis/drain");
  }
  machine.check_quiescent("mis/end");

  IdxVec result;
  for (int r = 0; r < nranks; ++r) {
    for (const idx v : graph.verts_of[r]) {
      if (sc.status[r][v] == kIn) result.push_back(v);
    }
  }
  // Reset scratch for the next call.
  for (int r = 0; r < nranks; ++r) {
    for (const idx v : sc.touched[r]) sc.status[r][v] = kCandidate;
    sc.touched[r].clear();
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace ptilu
