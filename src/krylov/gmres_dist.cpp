#include "ptilu/krylov/gmres_dist.hpp"

#include <cmath>

#include "ptilu/sim/trace.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

/// Rank-local helpers over the owned-row decomposition. Each runs inside a
/// machine.step, charging the owning rank's share of the flops; dots end
/// with a (host-side) reduction whose synchronization cost is the step's
/// barrier — exactly an allreduce.
class DistBlas {
 public:
  DistBlas(sim::Machine& machine, const DistCsr& dist)
      : machine_(&machine), dist_(&dist) {}

  real dot(const RealVec& x, const RealVec& y) const {
    // Each rank writes its own slot; the host-side combine below runs in
    // rank order, so the floating-point sum is bit-identical no matter in
    // which order (or how concurrently) the rank bodies executed.
    partials_.assign(static_cast<std::size_t>(machine_->nranks()), 0.0);
    machine_->step([&](sim::RankContext& ctx) {
      real partial = 0.0;
      for (const idx i : dist_->owned_rows[ctx.rank()]) partial += x[i] * y[i];
      ctx.charge_flops(2 * dist_->owned_rows[ctx.rank()].size());
      ctx.declare_collective(sim::CollectiveOp::kSum, sizeof(real), "gmres/dot");
      partials_[static_cast<std::size_t>(ctx.rank())] = partial;
    }, "gmres/dot");
    real total = 0.0;
    for (const real p : partials_) total += p;
    return total;
  }

  /// y += alpha x (no synchronization needed beyond the step barrier).
  void axpy(real alpha, const RealVec& x, RealVec& y) const {
    machine_->step([&](sim::RankContext& ctx) {
      for (const idx i : dist_->owned_rows[ctx.rank()]) y[i] += alpha * x[i];
      ctx.charge_flops(2 * dist_->owned_rows[ctx.rank()].size());
    }, "gmres/axpy");
  }

  void scale_into(real alpha, const RealVec& x, RealVec& out) const {
    machine_->step([&](sim::RankContext& ctx) {
      for (const idx i : dist_->owned_rows[ctx.rank()]) out[i] = alpha * x[i];
      ctx.charge_flops(dist_->owned_rows[ctx.rank()].size());
    }, "gmres/scale");
  }

  real norm2(const RealVec& x) const { return std::sqrt(dot(x, x)); }

 private:
  sim::Machine* machine_;
  const DistCsr* dist_;
  mutable RealVec partials_;  // per-rank dot partials, combined in rank order
};

}  // namespace

GmresResult gmres_dist(sim::Machine& machine, const DistCsr& dist, const Halo& halo,
                       const PilutResult& factorization, std::span<const real> b,
                       std::span<real> x, const GmresOptions& opts) {
  // The solver build is host-side setup with no machine interaction, so
  // delegating through the shared-solver overload is bit-identical to the
  // historical inline construction.
  const DistTriangularSolver solver(factorization.factors, factorization.schedule);
  return gmres_dist(machine, dist, halo, solver, b, x, opts);
}

GmresResult gmres_dist(sim::Machine& machine, const DistCsr& dist, const Halo& halo,
                       const DistTriangularSolver& solver, std::span<const real> b,
                       std::span<real> x, const GmresOptions& opts) {
  const idx n = dist.n();
  PTILU_CHECK(machine.nranks() == dist.nranks, "machine/partition rank mismatch");
  PTILU_CHECK(b.size() == static_cast<std::size_t>(n) && x.size() == b.size(),
              "gmres_dist vector size mismatch");
  PTILU_CHECK(opts.restart >= 1 && opts.rtol > 0.0, "invalid GMRES options");
  PTILU_CHECK(solver.schedule().newnum.size() == static_cast<std::size_t>(n),
              "solver/matrix size mismatch");
  machine.reset();

  const IdxVec& newnum = solver.schedule().newnum;
  const DistBlas blas(machine, dist);
  const int krylov = opts.restart;
  sim::ScopedPhase solve_phase(machine, "gmres");

  GmresResult result;
  RealVec ax(n), residual_vec(n), r(n);
  RealVec permuted(n), solved(n);

  // r = M^{-1}(b - A x): parallel SpMV, rank-local subtraction, then the
  // parallel triangular solves through the factorization's ordering (the
  // scatter into/out of the new numbering is rank-local copy work).
  const auto compute_residual = [&]() {
    sim::ScopedPhase span(machine, "residual");
    dist_spmv(machine, dist, halo, RealVec(x.begin(), x.end()), ax);
    machine.step([&](sim::RankContext& ctx) {
      const int rank = ctx.rank();
      for (const idx i : dist.owned_rows[rank]) {
        residual_vec[i] = b[i] - ax[i];
        permuted[newnum[i]] = residual_vec[i];
      }
      ctx.charge_flops(dist.owned_rows[rank].size());
      ctx.charge_mem(dist.owned_rows[rank].size() * sizeof(real));
    }, "gmres/residual/scatter");
    solver.apply(machine, permuted, solved);
    machine.step([&](sim::RankContext& ctx) {
      for (const idx i : dist.owned_rows[ctx.rank()]) r[i] = solved[newnum[i]];
      ctx.charge_mem(dist.owned_rows[ctx.rank()].size() * sizeof(real));
    }, "gmres/residual/gather");
  };

  compute_residual();
  real beta = blas.norm2(r);
  result.initial_residual = beta;
  result.final_residual = beta;
  if (beta == 0.0) {
    result.converged = true;
    return result;
  }
  const real target = opts.rtol * beta;

  std::vector<RealVec> v(krylov + 1, RealVec(n, 0.0));
  std::vector<RealVec> h(krylov + 1, RealVec(krylov, 0.0));
  RealVec cs(krylov, 0.0), sn(krylov, 0.0), g(krylov + 1, 0.0);

  while (result.matvecs < opts.max_matvecs) {
    compute_residual();
    beta = blas.norm2(r);
    result.final_residual = beta;
    if (beta <= target) {
      result.converged = true;
      break;
    }
    blas.scale_into(1.0 / beta, r, v[0]);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int steps = 0;
    for (int j = 0; j < krylov && result.matvecs < opts.max_matvecs; ++j) {
      // w = M^{-1} A v_j, all on the machine.
      dist_spmv(machine, dist, halo, v[j], ax);
      ++result.matvecs;
      RealVec& w = v[j + 1];
      {
        sim::ScopedPhase span(machine, "precond");
        machine.step([&](sim::RankContext& ctx) {
          for (const idx i : dist.owned_rows[ctx.rank()]) permuted[newnum[i]] = ax[i];
          ctx.charge_mem(dist.owned_rows[ctx.rank()].size() * sizeof(real));
        }, "gmres/precond/scatter");
        solver.apply(machine, permuted, solved);
        machine.step([&](sim::RankContext& ctx) {
          for (const idx i : dist.owned_rows[ctx.rank()]) w[i] = solved[newnum[i]];
          ctx.charge_mem(dist.owned_rows[ctx.rank()].size() * sizeof(real));
        }, "gmres/precond/gather");
      }

      // Modified Gram-Schmidt: each projection is one allreduce (the dot)
      // plus rank-local update work.
      real hnext = 0.0;
      {
        sim::ScopedPhase span(machine, "orthog");
        for (int i = 0; i <= j; ++i) {
          const real hij = blas.dot(w, v[i]);
          h[i][j] = hij;
          blas.axpy(-hij, v[i], w);
        }
        hnext = blas.norm2(w);
        h[j + 1][j] = hnext;
        if (hnext > 0.0) blas.scale_into(1.0 / hnext, w, w);
      }

      // Givens rotations are O(restart) scalar work, replicated on every
      // rank in a real implementation — negligible, uncharged.
      for (int i = 0; i < j; ++i) {
        const real temp = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
        h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
        h[i][j] = temp;
      }
      const real denom = std::hypot(h[j][j], h[j + 1][j]);
      if (denom == 0.0) {
        cs[j] = 1.0;
        sn[j] = 0.0;
      } else {
        cs[j] = h[j][j] / denom;
        sn[j] = h[j + 1][j] / denom;
      }
      h[j][j] = cs[j] * h[j][j] + sn[j] * h[j + 1][j];
      h[j + 1][j] = 0.0;
      g[j + 1] = -sn[j] * g[j];
      g[j] = cs[j] * g[j];

      steps = j + 1;
      const real rho = std::abs(g[j + 1]);
      result.residual_history.push_back(rho);
      result.final_residual = rho;
      if (rho <= target || hnext == 0.0) break;
    }

    RealVec y(steps, 0.0);
    for (int i = steps - 1; i >= 0; --i) {
      real acc = g[i];
      for (int k = i + 1; k < steps; ++k) acc -= h[i][k] * y[k];
      PTILU_CHECK(h[i][i] != 0.0, "GMRES Hessenberg breakdown at step " << i);
      y[i] = acc / h[i][i];
    }
    // x update: one batched rank-local pass over the basis.
    {
      sim::ScopedPhase span(machine, "update");
      machine.step([&](sim::RankContext& ctx) {
        const int rank = ctx.rank();
        for (const idx i : dist.owned_rows[rank]) {
          real acc = x[i];
          for (int k = 0; k < steps; ++k) acc += y[k] * v[k][i];
          x[i] = acc;
        }
        ctx.charge_flops(2 * dist.owned_rows[rank].size() * static_cast<std::uint64_t>(steps));
      }, "gmres/update");
    }
    ++result.restarts;

    if (result.final_residual <= target) {
      compute_residual();
      result.final_residual = blas.norm2(r);
      if (result.final_residual <= target) {
        result.converged = true;
        break;
      }
    }
  }
  machine.check_quiescent("gmres/end");
  return result;
}

}  // namespace ptilu
