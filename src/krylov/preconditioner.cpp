#include "ptilu/krylov/preconditioner.hpp"

#include <algorithm>

#include "ptilu/support/check.hpp"

namespace ptilu {

void IdentityPreconditioner::apply(std::span<const real> b, std::span<real> x) const {
  PTILU_CHECK(b.size() == x.size(), "size mismatch");
  std::copy(b.begin(), b.end(), x.begin());
}

JacobiPreconditioner::JacobiPreconditioner(const Csr& a) : inv_diag_(diagonal(a)) {
  for (std::size_t i = 0; i < inv_diag_.size(); ++i) {
    PTILU_CHECK(inv_diag_[i] != 0.0, "Jacobi preconditioner: zero diagonal at row " << i);
    inv_diag_[i] = 1.0 / inv_diag_[i];
  }
}

void JacobiPreconditioner::apply(std::span<const real> b, std::span<real> x) const {
  PTILU_CHECK(b.size() == inv_diag_.size() && x.size() == b.size(), "size mismatch");
  for (std::size_t i = 0; i < b.size(); ++i) x[i] = b[i] * inv_diag_[i];
}

IluPreconditioner::IluPreconditioner(IluFactors factors, IdxVec new_of)
    : factors_(std::move(factors)), new_of_(std::move(new_of)) {
  if (!new_of_.empty()) {
    PTILU_CHECK(is_permutation(new_of_, factors_.n()),
                "IluPreconditioner: new_of is not a permutation");
  }
}

void IluPreconditioner::apply(std::span<const real> b, std::span<real> x) const {
  if (new_of_.empty()) {
    ilu_apply(factors_, b, x);
  } else {
    ilu_apply_permuted(factors_, new_of_, b, x);
  }
}

BlockedIluPreconditioner::BlockedIluPreconditioner(BlockedFactors factors)
    : factors_(std::move(factors)) {
  factors_.validate();
}

void BlockedIluPreconditioner::apply(std::span<const real> b, std::span<real> x) const {
  ilu_apply(factors_, b, x);
}

}  // namespace ptilu
