#include "ptilu/krylov/gmres.hpp"

#include <cmath>

#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

GmresResult gmres(const Csr& a, const Preconditioner& m, std::span<const real> b,
                  std::span<real> x, const GmresOptions& opts) {
  PTILU_CHECK(a.n_rows == a.n_cols, "GMRES needs a square matrix");
  PTILU_CHECK(b.size() == static_cast<std::size_t>(a.n_rows) && x.size() == b.size(),
              "GMRES vector size mismatch");
  PTILU_CHECK(opts.restart >= 1 && opts.rtol > 0.0, "invalid GMRES options");
  const idx n = a.n_rows;
  const int krylov = opts.restart;

  GmresResult result;
  RealVec scratch(n), r(n);

  // Preconditioned initial residual r = M^{-1}(b - A x).
  auto compute_residual = [&]() {
    residual(a, x, b, scratch);
    m.apply(scratch, r);
  };
  compute_residual();
  real beta = norm2(r);
  result.initial_residual = beta;
  result.final_residual = beta;
  if (beta == 0.0) {
    result.converged = true;
    return result;
  }
  const real target = opts.rtol * beta;

  // Arnoldi basis (krylov+1 vectors) and Hessenberg in Givens-rotated form.
  std::vector<RealVec> v(krylov + 1, RealVec(n, 0.0));
  std::vector<RealVec> h(krylov + 1, RealVec(krylov, 0.0));
  RealVec cs(krylov, 0.0), sn(krylov, 0.0), g(krylov + 1, 0.0);

  while (result.matvecs < opts.max_matvecs) {
    // Start a cycle from the current residual.
    compute_residual();
    beta = norm2(r);
    result.final_residual = beta;
    if (beta <= target) {
      result.converged = true;
      break;
    }
    for (idx i = 0; i < n; ++i) v[0][i] = r[i] / beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int steps = 0;
    for (int j = 0; j < krylov && result.matvecs < opts.max_matvecs; ++j) {
      // w = M^{-1} A v_j
      spmv(a, v[j], scratch);
      ++result.matvecs;
      RealVec& w = v[j + 1];
      m.apply(scratch, w);

      // Modified Gram-Schmidt.
      for (int i = 0; i <= j; ++i) {
        const real hij = dot(w, v[i]);
        h[i][j] = hij;
        axpy(-hij, v[i], w);
      }
      const real hnext = norm2(w);
      h[j + 1][j] = hnext;
      if (hnext > 0.0) {
        scal(1.0 / hnext, w);
      }

      // Apply previous Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const real temp = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
        h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
        h[i][j] = temp;
      }
      // New rotation to annihilate h[j+1][j].
      const real denom = std::hypot(h[j][j], h[j + 1][j]);
      if (denom == 0.0) {
        cs[j] = 1.0;
        sn[j] = 0.0;
      } else {
        cs[j] = h[j][j] / denom;
        sn[j] = h[j + 1][j] / denom;
      }
      h[j][j] = cs[j] * h[j][j] + sn[j] * h[j + 1][j];
      h[j + 1][j] = 0.0;
      g[j + 1] = -sn[j] * g[j];
      g[j] = cs[j] * g[j];

      steps = j + 1;
      const real rho = std::abs(g[j + 1]);
      result.residual_history.push_back(rho);
      result.final_residual = rho;
      if (rho <= target || hnext == 0.0) {  // converged or lucky breakdown
        break;
      }
    }

    // Solve the triangular least-squares system and update x.
    RealVec y(steps, 0.0);
    for (int i = steps - 1; i >= 0; --i) {
      real acc = g[i];
      for (int k = i + 1; k < steps; ++k) acc -= h[i][k] * y[k];
      PTILU_CHECK(h[i][i] != 0.0, "GMRES Hessenberg breakdown at step " << i);
      y[i] = acc / h[i][i];
    }
    for (int i = 0; i < steps; ++i) axpy(y[i], v[i], x);
    ++result.restarts;

    if (result.final_residual <= target) {
      // Verify with a fresh residual (restart loop re-checks on entry).
      compute_residual();
      result.final_residual = norm2(r);
      if (result.final_residual <= target) {
        result.converged = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace ptilu
