#include "ptilu/graph/mis.hpp"

#include <algorithm>

#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu {

namespace {

enum class State : std::uint8_t { kCandidate, kIn, kOut, kInactive };

}  // namespace

IdxVec luby_mis(const Graph& g, const MisOptions& opts, const std::vector<bool>* active) {
  std::vector<State> state(g.n, State::kCandidate);
  idx candidates = g.n;
  if (active != nullptr) {
    PTILU_CHECK(active->size() == static_cast<std::size_t>(g.n), "active mask size mismatch");
    for (idx v = 0; v < g.n; ++v) {
      if (!(*active)[v]) {
        state[v] = State::kInactive;
        --candidates;
      }
    }
  }

  std::vector<std::uint64_t> key(g.n);
  IdxVec result;
  for (int round = 0; round < opts.rounds && candidates > 0; ++round) {
    for (idx v = 0; v < g.n; ++v) {
      if (state[v] == State::kCandidate) key[v] = vertex_key(opts.seed, v, round);
    }
    // Select local minima among candidates. Ties broken by vertex id so the
    // outcome is well defined even for equal keys (astronomically unlikely).
    IdxVec selected;
    for (idx v = 0; v < g.n; ++v) {
      if (state[v] != State::kCandidate) continue;
      bool is_min = true;
      for (const idx u : g.neighbors(v)) {
        if (state[u] != State::kCandidate) continue;
        if (key[u] < key[v] || (key[u] == key[v] && u < v)) {
          is_min = false;
          break;
        }
      }
      if (is_min) selected.push_back(v);
    }
    // Commit: selected vertices enter the set; their neighbors are dominated.
    for (const idx v : selected) {
      state[v] = State::kIn;
      --candidates;
      result.push_back(v);
    }
    for (const idx v : selected) {
      for (const idx u : g.neighbors(v)) {
        if (state[u] == State::kCandidate) {
          state[u] = State::kOut;
          --candidates;
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

IdxVec greedy_mis(const Graph& g, const std::vector<bool>* active) {
  std::vector<bool> blocked(g.n, false);
  IdxVec result;
  for (idx v = 0; v < g.n; ++v) {
    if (blocked[v]) continue;
    if (active != nullptr && !(*active)[v]) continue;
    result.push_back(v);
    for (const idx u : g.neighbors(v)) blocked[u] = true;
  }
  return result;
}

bool is_independent(const Graph& g, const IdxVec& set) {
  std::vector<bool> in(g.n, false);
  for (const idx v : set) {
    PTILU_CHECK(v >= 0 && v < g.n, "set vertex out of range");
    in[v] = true;
  }
  for (const idx v : set) {
    for (const idx u : g.neighbors(v)) {
      if (in[u]) return false;
    }
  }
  return true;
}

bool is_maximal_independent(const Graph& g, const IdxVec& set,
                            const std::vector<bool>* active) {
  if (!is_independent(g, set)) return false;
  std::vector<bool> dominated(g.n, false);
  for (const idx v : set) {
    dominated[v] = true;
    for (const idx u : g.neighbors(v)) dominated[u] = true;
  }
  for (idx v = 0; v < g.n; ++v) {
    if (active != nullptr && !(*active)[v]) continue;
    if (!dominated[v]) return false;
  }
  return true;
}

}  // namespace ptilu
