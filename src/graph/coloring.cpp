#include "ptilu/graph/coloring.hpp"

#include <algorithm>
#include <numeric>

#include "ptilu/support/check.hpp"

namespace ptilu {

IdxVec Coloring::color_class(idx c) const {
  IdxVec out;
  for (std::size_t v = 0; v < color.size(); ++v) {
    if (color[v] == c) out.push_back(static_cast<idx>(v));
  }
  return out;
}

Coloring greedy_coloring(const Graph& g, const IdxVec& order) {
  IdxVec visit = order;
  if (visit.empty()) {
    visit.resize(g.n);
    std::iota(visit.begin(), visit.end(), 0);
  }
  PTILU_CHECK(is_permutation(visit, g.n), "coloring order must be a permutation");

  Coloring result;
  result.color.assign(g.n, -1);
  std::vector<idx> forbidden_by(g.n, -1);  // forbidden_by[c] == v: color c used near v
  for (const idx v : visit) {
    for (const idx u : g.neighbors(v)) {
      if (result.color[u] >= 0) forbidden_by[result.color[u]] = v;
    }
    idx c = 0;
    while (forbidden_by[c] == v) ++c;
    result.color[v] = c;
    result.num_colors = std::max(result.num_colors, c + 1);
  }
  return result;
}

bool is_valid_coloring(const Graph& g, const Coloring& coloring) {
  if (coloring.color.size() != static_cast<std::size_t>(g.n)) return false;
  for (idx v = 0; v < g.n; ++v) {
    if (coloring.color[v] < 0 || coloring.color[v] >= coloring.num_colors) return false;
    for (const idx u : g.neighbors(v)) {
      if (coloring.color[u] == coloring.color[v]) return false;
    }
  }
  return true;
}

}  // namespace ptilu
