#include "ptilu/graph/rcm.hpp"

#include <algorithm>
#include <queue>

#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

/// BFS from start returning the last-discovered vertex among those of
/// minimal degree in the final level — a pseudo-peripheral vertex.
idx pseudo_peripheral(const Graph& g, idx start, std::vector<bool>& scratch) {
  idx current = start;
  idx previous_ecc = -1;
  for (int iter = 0; iter < 8; ++iter) {  // converges in a few sweeps
    std::fill(scratch.begin(), scratch.end(), false);
    std::queue<idx> queue;
    queue.push(current);
    scratch[current] = true;
    idx ecc = 0;
    IdxVec level = {current}, next;
    while (true) {
      next.clear();
      for (const idx v : level) {
        for (const idx u : g.neighbors(v)) {
          if (!scratch[u]) {
            scratch[u] = true;
            next.push_back(u);
          }
        }
      }
      if (next.empty()) break;
      ++ecc;
      level = next;
    }
    idx best = level.front();
    for (const idx v : level) {
      if (g.degree(v) < g.degree(best)) best = v;
    }
    if (ecc <= previous_ecc) return best;
    previous_ecc = ecc;
    current = best;
  }
  return current;
}

}  // namespace

IdxVec rcm_ordering(const Graph& g) {
  IdxVec order;  // Cuthill-McKee visit order (old ids)
  order.reserve(g.n);
  std::vector<bool> visited(g.n, false);
  std::vector<bool> scratch(g.n, false);

  IdxVec neighbors_sorted;
  for (idx seed = 0; seed < g.n; ++seed) {
    if (visited[seed]) continue;
    const idx start = pseudo_peripheral(g, seed, scratch);
    std::queue<idx> queue;
    queue.push(start);
    visited[start] = true;
    while (!queue.empty()) {
      const idx v = queue.front();
      queue.pop();
      order.push_back(v);
      neighbors_sorted.assign(g.neighbors(v).begin(), g.neighbors(v).end());
      std::sort(neighbors_sorted.begin(), neighbors_sorted.end(),
                [&](idx x, idx y) {
                  const idx dx = g.degree(x), dy = g.degree(y);
                  return dx != dy ? dx < dy : x < y;
                });
      for (const idx u : neighbors_sorted) {
        if (!visited[u]) {
          visited[u] = true;
          queue.push(u);
        }
      }
    }
  }
  PTILU_CHECK(static_cast<idx>(order.size()) == g.n, "RCM missed vertices");

  // Reverse (the R in RCM) and convert to new_of form.
  IdxVec new_of(g.n);
  for (idx pos = 0; pos < g.n; ++pos) {
    new_of[order[pos]] = g.n - 1 - pos;
  }
  return new_of;
}

idx bandwidth(const Csr& a) {
  PTILU_CHECK(a.n_rows == a.n_cols, "bandwidth needs a square matrix");
  idx band = 0;
  for (idx i = 0; i < a.n_rows; ++i) {
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      band = std::max(band, std::abs(i - a.col_idx[k]));
    }
  }
  return band;
}

}  // namespace ptilu
