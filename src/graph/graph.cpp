#include "ptilu/graph/graph.hpp"

#include <algorithm>
#include <numeric>

#include "ptilu/support/check.hpp"

namespace ptilu {

long long Graph::total_vwgt() const {
  return std::accumulate(vwgt.begin(), vwgt.end(), 0LL);
}

void Graph::validate() const {
  PTILU_CHECK(xadj.size() == static_cast<std::size_t>(n) + 1, "xadj size mismatch");
  PTILU_CHECK(xadj.front() == 0 && xadj.back() == num_edges_directed(), "xadj bounds");
  PTILU_CHECK(vwgt.size() == static_cast<std::size_t>(n), "vwgt size mismatch");
  PTILU_CHECK(ewgt.size() == adjncy.size(), "ewgt size mismatch");
  // Symmetry: count directed edges both ways.
  for (idx v = 0; v < n; ++v) {
    for (nnz_t k = xadj[v]; k < xadj[v + 1]; ++k) {
      const idx u = adjncy[k];
      PTILU_CHECK(u >= 0 && u < n, "neighbor out of range");
      PTILU_CHECK(u != v, "self-loop at vertex " << v);
      // Find reverse edge.
      bool found = false;
      for (nnz_t r = xadj[u]; r < xadj[u + 1]; ++r) {
        if (adjncy[r] == v) {
          PTILU_CHECK(ewgt[r] == ewgt[k], "asymmetric edge weight {" << v << "," << u << "}");
          found = true;
          break;
        }
      }
      PTILU_CHECK(found, "missing reverse edge {" << u << "," << v << "}");
    }
  }
}

Graph graph_from_pattern(const Csr& a) {
  PTILU_CHECK(a.n_rows == a.n_cols, "graph_from_pattern needs a square matrix");
  const Csr s = symmetrize_pattern(a);
  Graph g;
  g.n = s.n_rows;
  g.xadj.assign(g.n + 1, 0);
  // First pass: degrees without diagonal.
  for (idx i = 0; i < s.n_rows; ++i) {
    for (nnz_t k = s.row_ptr[i]; k < s.row_ptr[i + 1]; ++k) {
      if (s.col_idx[k] != i) ++g.xadj[i + 1];
    }
  }
  for (idx i = 0; i < g.n; ++i) g.xadj[i + 1] += g.xadj[i];
  g.adjncy.resize(g.xadj.back());
  std::vector<nnz_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
  for (idx i = 0; i < s.n_rows; ++i) {
    for (nnz_t k = s.row_ptr[i]; k < s.row_ptr[i + 1]; ++k) {
      if (s.col_idx[k] != i) g.adjncy[cursor[i]++] = s.col_idx[k];
    }
  }
  g.vwgt.assign(g.n, 1);
  g.ewgt.assign(g.adjncy.size(), 1);
  return g;
}

Graph graph_from_edges(idx n, const std::vector<std::pair<idx, idx>>& edges) {
  // Deduplicate through a COO-style sort of both directions.
  std::vector<std::pair<idx, idx>> directed;
  directed.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    PTILU_CHECK(u >= 0 && u < n && v >= 0 && v < n, "edge endpoint out of range");
    if (u == v) continue;
    directed.emplace_back(u, v);
    directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());

  Graph g;
  g.n = n;
  g.xadj.assign(n + 1, 0);
  g.vwgt.assign(n, 1);
  for (std::size_t k = 0; k < directed.size();) {
    const auto edge = directed[k];
    idx weight = 0;
    while (k < directed.size() && directed[k] == edge) {
      ++weight;
      ++k;
    }
    g.adjncy.push_back(edge.second);
    // Parallel input edges collapse into one edge of that multiplicity.
    g.ewgt.push_back(weight);
    ++g.xadj[edge.first + 1];
  }
  for (idx i = 0; i < n; ++i) g.xadj[i + 1] += g.xadj[i];
  return g;
}

idx count_components(const Graph& g) {
  std::vector<bool> visited(g.n, false);
  IdxVec stack;
  idx components = 0;
  for (idx start = 0; start < g.n; ++start) {
    if (visited[start]) continue;
    ++components;
    stack.push_back(start);
    visited[start] = true;
    while (!stack.empty()) {
      const idx v = stack.back();
      stack.pop_back();
      for (const idx u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = true;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

}  // namespace ptilu
