#include "ptilu/support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "ptilu/support/check.hpp"

namespace ptilu {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PTILU_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PTILU_CHECK(cells.size() == headers_.size(),
              "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  cells_.push_back(format_fixed(v, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder::~RowBuilder() {
  if (!cells_.empty()) table_->add_row(std::move(cells_));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << (c == 0 ? std::left : std::right);
      os << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_fixed(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string format_sci(double v, int precision) {
  std::ostringstream oss;
  oss << std::scientific << std::setprecision(precision) << v;
  return oss.str();
}

}  // namespace ptilu
