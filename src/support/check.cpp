#include "ptilu/support/check.hpp"

namespace ptilu::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream oss;
  oss << "PTILU_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw Error(oss.str());
}

}  // namespace ptilu::detail
