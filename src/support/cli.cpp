#include "ptilu/support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream iss(s);
  while (std::getline(iss, item, ',')) out.push_back(std::move(item));
  return out;
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    PTILU_CHECK(arg.rfind("--", 0) == 0, "expected --name=value flag, got '" << arg << "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
      bare_.insert(arg);
    }
  }
}

bool Cli::has(const std::string& name) const {
  consumed_[name] = true;
  return values_.contains(name);
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long long Cli::get_int(const std::string& name, long long fallback) const {
  const std::string s = get_string(name, "");
  if (s.empty()) return fallback;
  std::size_t pos = 0;
  const long long v = std::stoll(s, &pos);
  PTILU_CHECK(pos == s.size(), "flag --" << name << " is not an integer: '" << s << "'");
  return v;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const std::string s = get_string(name, "");
  if (s.empty()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  PTILU_CHECK(pos == s.size(), "flag --" << name << " is not a number: '" << s << "'");
  return v;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const std::string s = get_string(name, "");
  if (s.empty()) return fallback;
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  PTILU_CHECK(false, "flag --" << name << " is not a boolean: '" << s << "'");
  return fallback;
}

std::vector<int> Cli::get_int_list(const std::string& name, std::vector<int> fallback) const {
  const std::string s = get_string(name, "");
  if (s.empty()) return fallback;
  std::vector<int> out;
  for (const auto& item : split_commas(s)) {
    out.push_back(static_cast<int>(std::stoll(item)));
  }
  PTILU_CHECK(!out.empty(), "flag --" << name << " is an empty list");
  return out;
}

std::vector<double> Cli::get_double_list(const std::string& name,
                                         std::vector<double> fallback) const {
  const std::string s = get_string(name, "");
  if (s.empty()) return fallback;
  std::vector<double> out;
  for (const auto& item : split_commas(s)) out.push_back(std::stod(item));
  PTILU_CHECK(!out.empty(), "flag --" << name << " is an empty list");
  return out;
}

std::string Cli::get_choice(const std::string& name, const std::string& fallback,
                            const std::vector<std::string>& choices) const {
  const std::string s = get_string(name, "");
  if (s.empty()) return fallback;
  for (const std::string& choice : choices) {
    if (s == choice) return s;
  }
  std::ostringstream valid;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    valid << (i == 0 ? "" : ", ") << choices[i];
  }
  PTILU_CHECK(false, "flag --" << name << "='" << s << "' is not one of: " << valid.str());
  return fallback;
}

std::string Cli::help_text() const {
  std::ostringstream out;
  out << "flags (--name=value or --name value; see docs/REFERENCE.md):\n";
  for (const auto& [name, queried] : consumed_) {
    if (queried && name != "help") out << "  --" << name << "\n";
  }
  return out.str();
}

void Cli::check_all_consumed() const {
  if (values_.contains("help")) {
    std::fputs(help_text().c_str(), stdout);
    std::exit(EXIT_SUCCESS);
  }
  for (const auto& [name, value] : values_) {
    if (bare_.contains(name)) {
      PTILU_CHECK(consumed_.contains(name), "unknown flag --" << name);
    } else {
      PTILU_CHECK(consumed_.contains(name), "unknown flag --" << name << "=" << value);
    }
  }
}

}  // namespace ptilu
