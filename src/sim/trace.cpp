#include "ptilu/sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "ptilu/sim/machine.hpp"
#include "ptilu/support/check.hpp"
#include "ptilu/support/table.hpp"

namespace ptilu::sim {

ScopedPhase::ScopedPhase(Machine& machine, std::string_view name)
    : machine_(&machine) {
  machine_->push_phase(name);
}

ScopedPhase::~ScopedPhase() {
  if (machine_ != nullptr) {
    machine_->pop_phase();
  } else if (trace_ != nullptr) {
    trace_->pop_phase();
  }
}

namespace {

constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

/// Deterministic decimal form (no locale, no pointers). Values are
/// microseconds; "%.12g" keeps sub-ns resolution even for hour-long modeled
/// runs, so adjacent spans stay non-overlapping after round-tripping.
void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
        break;
    }
  }
}

}  // namespace

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCompute: return "compute";
    case SpanKind::kSend: return "send";
    case SpanKind::kRecv: return "recv";
    case SpanKind::kBarrier: return "barrier";
    case SpanKind::kAllreduce: return "allreduce";
  }
  return "?";
}

Trace::Trace(TraceOptions options) : options_(options) {
  phase_names_.emplace_back();  // id 0: the root ("" -> "(untagged)")
  phase_ids_.emplace("", 0);
  stats_.emplace_back();
  phase_stack_.push_back(0);
}

std::uint32_t Trace::intern(std::string path) {
  const auto it = phase_ids_.find(path);
  if (it != phase_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(phase_names_.size());
  phase_ids_.emplace(path, id);
  phase_names_.push_back(std::move(path));
  stats_.emplace_back();
  return id;
}

void Trace::push_phase(std::string_view name) {
  const std::string& parent = phase_names_[phase_stack_.back()];
  std::string path;
  path.reserve(parent.size() + 1 + name.size());
  if (!parent.empty()) {
    path = parent;
    path += '/';
  }
  path += name;
  phase_stack_.push_back(intern(std::move(path)));
}

void Trace::pop_phase() {
  PTILU_CHECK(phase_stack_.size() > 1, "pop_phase without matching push_phase");
  phase_stack_.pop_back();
}

void Trace::set_nranks(int nranks) {
  nranks_ = std::max(nranks_, nranks);
  open_span_.resize(static_cast<std::size_t>(nranks_), kNoSpan);
}

void Trace::record(int rank, SpanKind kind, double start, double end,
                   std::uint64_t flops, std::uint64_t bytes, std::uint64_t messages) {
  if (end == start && flops == 0 && bytes == 0 && messages == 0) return;
  const std::uint32_t phase = phase_stack_.back();
  last_phase_ = phase;

  PhaseStats& ps = stats_[phase];
  ps.busy[static_cast<int>(kind)] += end - start;
  ps.flops += flops;
  ++ps.spans;
  switch (kind) {
    case SpanKind::kCompute: ps.mem_bytes += bytes; break;
    case SpanKind::kSend:
    case SpanKind::kAllreduce:
      ps.bytes_sent += bytes;
      ps.messages += messages;
      break;
    case SpanKind::kRecv: ps.bytes_recv += bytes; break;
    case SpanKind::kBarrier: break;
  }

  const double abs_start = epoch_offset_ + start;
  const double abs_end = epoch_offset_ + end;
  max_end_ = std::max(max_end_, abs_end);
  if (!options_.record_spans) return;

  if (static_cast<std::size_t>(rank) >= open_span_.size()) {
    open_span_.resize(static_cast<std::size_t>(rank) + 1, kNoSpan);
  }
  const std::size_t prev = open_span_[static_cast<std::size_t>(rank)];
  if (prev != kNoSpan) {
    Span& p = spans_[prev];
    if (p.kind == kind && p.phase == phase && p.end == abs_start) {
      p.end = abs_end;
      p.flops += flops;
      p.bytes += bytes;
      p.messages += messages;
      return;
    }
  }
  spans_.push_back(Span{abs_start, abs_end, flops, bytes, messages, rank, phase, kind});
  open_span_[static_cast<std::size_t>(rank)] = spans_.size() - 1;
}

void Trace::sync(double horizon) {
  const double delta = horizon - last_horizon_;
  if (delta > 0.0) stats_[phase_stack_.back()].elapsed += delta;
  last_horizon_ = horizon;
  max_end_ = std::max(max_end_, epoch_offset_ + horizon);
}

void Trace::on_machine_reset() {
  epoch_offset_ = max_end_;
  last_horizon_ = 0.0;
  std::fill(open_span_.begin(), open_span_.end(), kNoSpan);
}

std::vector<Trace::PhaseRow> Trace::phase_rollup() const {
  // Clock advance since the last barrier (e.g. a trailing charge_transfer
  // with no closing superstep) has not been attributed by sync(); credit it
  // to the phase of the most recent span so the rows still sum to the
  // machine's modeled time.
  const double residual = (max_end_ - epoch_offset_) - last_horizon_;
  std::vector<PhaseRow> rows;
  for (std::uint32_t id = 0; id < stats_.size(); ++id) {
    PhaseStats s = stats_[id];
    if (id == last_phase_ && residual > 0.0) s.elapsed += residual;
    const bool active = s.elapsed != 0.0 || s.spans != 0;
    if (!active) continue;
    rows.push_back({phase_names_[id].empty() ? "(untagged)" : phase_names_[id], s});
  }
  return rows;
}

double Trace::attributed_time() const {
  double total = 0.0;
  for (const auto& row : phase_rollup()) total += row.stats.elapsed;
  return total;
}

void Trace::write_phase_table(std::ostream& os) const {
  const auto rows = phase_rollup();
  if (rows.empty()) {
    os << "(no traced activity)\n";
    return;
  }
  double total = 0.0;
  for (const auto& row : rows) total += row.stats.elapsed;

  Table table({"phase", "modeled s", "%", "compute s", "send s", "recv s", "barrier s",
               "allreduce s", "Mflop", "msgs", "MB sent"});
  const auto emit = [&](const std::string& name, const PhaseStats& s, double elapsed) {
    table.row()
        .cell(name)
        .cell(elapsed, 6)
        .cell(total > 0.0 ? 100.0 * elapsed / total : 0.0, 1)
        .cell(s.busy[static_cast<int>(SpanKind::kCompute)], 6)
        .cell(s.busy[static_cast<int>(SpanKind::kSend)], 6)
        .cell(s.busy[static_cast<int>(SpanKind::kRecv)], 6)
        .cell(s.busy[static_cast<int>(SpanKind::kBarrier)], 6)
        .cell(s.busy[static_cast<int>(SpanKind::kAllreduce)], 6)
        .cell(static_cast<double>(s.flops) / 1e6, 3)
        .cell(static_cast<long long>(s.messages))
        .cell(static_cast<double>(s.bytes_sent) / 1e6, 3);
  };
  for (const auto& row : rows) emit(row.name, row.stats, row.stats.elapsed);
  PhaseStats sum;
  for (const auto& row : rows) {
    for (int k = 0; k < kSpanKindCount; ++k) sum.busy[k] += row.stats.busy[k];
    sum.flops += row.stats.flops;
    sum.messages += row.stats.messages;
    sum.bytes_sent += row.stats.bytes_sent;
  }
  emit("TOTAL", sum, total);
  table.print(os);
}

void Trace::write_chrome_trace(std::ostream& os) const {
  std::string out;
  out.reserve(256 + spans_.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ',';
    first = false;
    out += '\n';
  };
  // One Perfetto process per rank, ordered by rank id.
  const int tracks = std::max(nranks_, 1);
  for (int r = 0; r < tracks; ++r) {
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(r);
    out += ",\"tid\":0,\"args\":{\"name\":\"rank ";
    out += std::to_string(r);
    out += "\"}}";
    sep();
    out += "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(r);
    out += ",\"tid\":0,\"args\":{\"sort_index\":";
    out += std::to_string(r);
    out += "}}";
  }
  for (const Span& span : spans_) {
    sep();
    out += "{\"name\":\"";
    const std::string& phase = phase_names_[span.phase];
    append_escaped(out, phase.empty() ? span_kind_name(span.kind) : phase);
    out += "\",\"cat\":\"";
    out += span_kind_name(span.kind);
    out += "\",\"ph\":\"X\",\"ts\":";
    append_number(out, span.start * 1e6);  // trace_event timestamps are in µs
    out += ",\"dur\":";
    append_number(out, (span.end - span.start) * 1e6);
    out += ",\"pid\":";
    out += std::to_string(span.rank);
    out += ",\"tid\":0,\"args\":{\"kind\":\"";
    out += span_kind_name(span.kind);
    out += '"';
    if (span.flops != 0) {
      out += ",\"flops\":";
      out += std::to_string(span.flops);
    }
    if (span.bytes != 0) {
      out += ",\"bytes\":";
      out += std::to_string(span.bytes);
    }
    if (span.messages != 0) {
      out += ",\"messages\":";
      out += std::to_string(span.messages);
    }
    out += "}}";
  }
  out += "\n]}\n";
  os << out;
}

void Trace::write_chrome_trace_file(const std::string& path) const {
  std::ofstream file(path);
  PTILU_CHECK(file.good(), "cannot open trace file " << path);
  write_chrome_trace(file);
  file.flush();
  PTILU_CHECK(file.good(), "failed writing trace file " << path);
}

void Trace::clear() {
  phase_names_.clear();
  phase_ids_.clear();
  stats_.clear();
  phase_stack_.clear();
  spans_.clear();
  phase_names_.emplace_back();
  phase_ids_.emplace("", 0);
  stats_.emplace_back();
  phase_stack_.push_back(0);
  std::fill(open_span_.begin(), open_span_.end(), kNoSpan);
  epoch_offset_ = 0.0;
  last_horizon_ = 0.0;
  max_end_ = 0.0;
  last_phase_ = 0;
}

}  // namespace ptilu::sim
