#include "ptilu/sim/machine.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "ptilu/sim/conformance.hpp"
#include "ptilu/sim/metrics.hpp"
#include "ptilu/sim/trace.hpp"

namespace ptilu::sim {

namespace {

template <typename T>
std::vector<std::byte> encode(const std::vector<T>& data) {
  std::vector<std::byte> out(data.size() * sizeof(T));
  if (!data.empty()) std::memcpy(out.data(), data.data(), out.size());
  return out;
}

template <typename T>
void decode_append(const Message& m, std::vector<T>& out) {
  PTILU_CHECK(m.payload.size() % sizeof(T) == 0,
              "payload size " << m.payload.size() << " not a multiple of element size");
  const std::size_t count = m.payload.size() / sizeof(T);
  if (count == 0) return;
  const std::size_t old_size = out.size();
  out.resize(old_size + count);
  std::memcpy(out.data() + old_size, m.payload.data(), m.payload.size());
}

template <typename T>
std::vector<T> decode(const Message& m) {
  std::vector<T> out;
  decode_append(m, out);
  return out;
}

/// Rank whose body is executing on this thread, -1 outside a step. Backs
/// the cross-rank-write asserts in the charge paths: a rank body must only
/// ever touch its own machine slots, on either backend.
thread_local int tl_current_rank = -1;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

struct RankGuard {
  explicit RankGuard(int rank) { tl_current_rank = rank; }
  ~RankGuard() { tl_current_rank = -1; }
  RankGuard(const RankGuard&) = delete;
  RankGuard& operator=(const RankGuard&) = delete;
};

std::string lowercase(std::string_view s) {
  std::string lower;
  lower.reserve(s.size());
  for (const char c : s) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower;
}

}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kSequential: return "sequential";
    case Backend::kThreads: return "threads";
  }
  return "?";
}

Backend parse_backend(std::string_view name) {
  const std::string lower = lowercase(name);
  if (lower.empty() || lower == "seq" || lower == "sequential" || lower == "serial") {
    return Backend::kSequential;
  }
  if (lower == "threads" || lower == "thread" || lower == "threaded") {
    return Backend::kThreads;
  }
  PTILU_CHECK(false, "unknown execution backend '" << name
                     << "' (expected sequential|threads)");
}

Backend backend_from_env() {
  const char* value = std::getenv("PTILU_BACKEND");
  return value == nullptr ? Backend::kSequential : parse_backend(value);
}

int backend_threads_from_env() {
  const char* value = std::getenv("PTILU_THREADS");
  if (value == nullptr || *value == '\0') return 0;
  const int n = std::atoi(value);  // NOLINT(cert-err34-c) 0/garbage falls back to auto
  return n > 0 ? n : 0;
}

/// Persistent worker pool for Backend::kThreads. Ranks are claimed from a
/// shared atomic counter, so any number of ranks runs on any number of
/// workers; run() blocks until every task of the current generation has
/// finished. Task functions must not throw (the machine wraps rank bodies
/// and captures exceptions per rank).
class Machine::WorkerPool {
 public:
  explicit WorkerPool(int nthreads) {
    threads_.reserve(static_cast<std::size_t>(nthreads));
    for (int i = 0; i < nthreads; ++i) {
      threads_.emplace_back([this] { worker_main(); });
    }
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  void run(int ntasks, const std::function<void(int)>& fn) {
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &fn;
    ntasks_ = ntasks;
    next_.store(0, std::memory_order_relaxed);
    idle_ = 0;
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [&] { return idle_ == static_cast<int>(threads_.size()); });
    job_ = nullptr;
  }

 private:
  void worker_main() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      const std::function<void(int)>* job = job_;
      const int ntasks = ntasks_;
      lock.unlock();
      while (true) {
        const int task = next_.fetch_add(1, std::memory_order_relaxed);
        if (task >= ntasks) break;
        (*job)(task);
      }
      lock.lock();
      ++idle_;
      if (idle_ == static_cast<int>(threads_.size())) done_cv_.notify_one();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  int ntasks_ = 0;
  int idle_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::atomic<int> next_{0};
};

int RankContext::nranks() const { return machine_->nranks(); }

int RankContext::lane() const {
  return machine_->backend() == Backend::kThreads ? rank_ : 0;
}

void RankContext::charge_flops(std::uint64_t n) { machine_->charge_flops(rank_, n); }
void RankContext::charge_mem(std::uint64_t n) { machine_->charge_mem(rank_, n); }

void RankContext::send_bytes(int to, int tag, std::vector<std::byte> payload) {
  machine_->post(rank_, to, tag, std::move(payload));
}

void RankContext::send_indices(int to, int tag, const IdxVec& data) {
  send_bytes(to, tag, encode(data));
}

void RankContext::send_reals(int to, int tag, const RealVec& data) {
  send_bytes(to, tag, encode(data));
}

std::vector<Message> RankContext::recv_all() {
  PTILU_ASSERT(tl_current_rank == -1 || tl_current_rank == rank_,
               "rank " << tl_current_rank << " drained rank " << rank_ << "'s inbox");
  if (machine_->checker_ != nullptr) machine_->checker_->on_recv_all(rank_);
  // Sparse inbox: ranks with no inbound traffic have no map entry at all.
  // find() only reads the tree and the exchange below only touches this
  // rank's mapped vector, so concurrent drains from the worker pool are
  // safe — the map's structure is mutated exclusively at the barrier.
  const auto it = machine_->inbox_.find(rank_);
  if (it == machine_->inbox_.end()) return {};
  // std::exchange (not a bare move) so a second drain in the same superstep
  // reads a well-defined empty inbox instead of a moved-from vector.
  return std::exchange(it->second, std::vector<Message>{});
}

void RankContext::declare_collective(CollectiveOp op, std::uint64_t bytes,
                                     std::string_view site) {
  if (machine_->checker_ != nullptr) {
    machine_->checker_->declare_collective(rank_, op, bytes, site);
  }
}

IdxVec decode_indices(const Message& m) { return decode<idx>(m); }
RealVec decode_reals(const Message& m) { return decode<real>(m); }
void decode_indices_append(const Message& m, IdxVec& out) { decode_append(m, out); }
void decode_reals_append(const Message& m, RealVec& out) { decode_append(m, out); }

Machine::Machine(int nranks, MachineParams params)
    : Machine(nranks, Options{.params = params}) {}

Machine::Machine(int nranks, const Options& options)
    : nranks_(nranks),
      params_(options.params),
      backend_(options.backend),
      threads_option_(options.threads),
      clock_(nranks, 0.0),
      counters_(nranks),
      staged_(nranks) {
  PTILU_CHECK(nranks >= 1, "machine needs at least one rank");
  if (options.check) {
    checker_ = std::make_unique<Conformance>(nranks, options.transcript_tail);
  }
  if (options.metrics) {
    metrics_ = std::make_unique<Metrics>(nranks);
  }
}

Machine::~Machine() = default;

int Machine::resolved_pool_size() const {
  int n = threads_option_;
  if (n <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::clamp(n, 1, nranks_);
}

void Machine::attach_trace(Trace* trace) {
  trace_ = trace;
  if (trace_ != nullptr) trace_->set_nranks(nranks_);
}

void Machine::charge_flops(int rank, std::uint64_t n) {
  PTILU_ASSERT(tl_current_rank == -1 || tl_current_rank == rank,
               "rank " << tl_current_rank << " charged flops to rank " << rank);
  counters_[rank].flops += n;
  const double cost = static_cast<double>(n) * params_.flop;
  if (trace_ != nullptr) {
    if (trace_deferred_) {
      pending_trace_[rank].push_back(
          PendingSpan{clock_[rank], clock_[rank] + cost, n, 0, 0, SpanKind::kCompute});
    } else {
      trace_->record(rank, SpanKind::kCompute, clock_[rank], clock_[rank] + cost, n, 0, 0);
    }
  }
  clock_[rank] += cost;
}

void Machine::charge_mem(int rank, std::uint64_t n) {
  PTILU_ASSERT(tl_current_rank == -1 || tl_current_rank == rank,
               "rank " << tl_current_rank << " charged memory to rank " << rank);
  counters_[rank].mem_bytes += n;
  const double cost = static_cast<double>(n) * params_.mem;
  if (trace_ != nullptr) {
    if (trace_deferred_) {
      pending_trace_[rank].push_back(
          PendingSpan{clock_[rank], clock_[rank] + cost, 0, n, 0, SpanKind::kCompute});
    } else {
      trace_->record(rank, SpanKind::kCompute, clock_[rank], clock_[rank] + cost, 0, n, 0);
    }
  }
  clock_[rank] += cost;
}

void Machine::post(int from, int to, int tag, std::vector<std::byte> payload) {
  PTILU_ASSERT(tl_current_rank == -1 || tl_current_rank == from,
               "rank " << tl_current_rank << " posted a message as rank " << from);
  // The checker validates the destination first: its report names the call
  // site and dumps the protocol transcript, where the bare check below can
  // only name the rank.
  if (checker_ != nullptr) checker_->on_send(from, to, tag, payload.size());
  PTILU_CHECK(to >= 0 && to < nranks_, "send to invalid rank " << to);
  const std::uint64_t bytes = payload.size();
  counters_[from].messages_sent += 1;
  counters_[from].bytes_sent += bytes;
  // Sender pays latency plus per-byte injection cost.
  const double cost = params_.alpha + static_cast<double>(bytes) * params_.beta;
  if (trace_ != nullptr) {
    if (trace_deferred_) {
      pending_trace_[from].push_back(
          PendingSpan{clock_[from], clock_[from] + cost, 0, bytes, 1, SpanKind::kSend});
    } else {
      trace_->record(from, SpanKind::kSend, clock_[from], clock_[from] + cost, 0, bytes, 1);
    }
  }
  clock_[from] += cost;
  // Rank-local like the staged outbox below: only `from`'s comm-matrix row
  // is touched, so the threaded backend needs no merge machinery here.
  if (metrics_ != nullptr) metrics_->on_send(from, to, bytes);
  // Staged in the *sender's* slot (no cross-rank write); the barrier merges
  // the stages destination-wise in sender-rank order, reproducing exactly
  // the delivery order of a per-destination push.
  staged_[from].push_back(Posted{to, Message{from, tag, std::move(payload)}});
}

void Machine::run_bodies(const std::function<void(RankContext&)>& body) {
  for (int r = 0; r < nranks_; ++r) {
    const RankGuard guard(r);
    RankContext ctx(*this, r);
    body(ctx);
  }
}

void Machine::flush_pending_trace(int upto_rank) {
  for (int r = 0; r < upto_rank; ++r) {
    for (const PendingSpan& s : pending_trace_[r]) {
      trace_->record(r, s.kind, s.start, s.end, s.flops, s.bytes, s.messages);
    }
  }
  for (auto& spans : pending_trace_) spans.clear();
}

void Machine::run_bodies_threaded(const std::function<void(RankContext&)>& body) {
  const bool tracing = trace_ != nullptr;
  if (tracing) {
    pending_trace_.resize(static_cast<std::size_t>(nranks_));
    for (auto& spans : pending_trace_) spans.clear();
    trace_deferred_ = true;
  }
  if (checker_ != nullptr) checker_->begin_deferred();
  if (pool_ == nullptr) pool_ = std::make_unique<WorkerPool>(resolved_pool_size());
  // Snapshot per-rank accounting: if a body throws, the ranks the
  // sequential interpreter would never have run are rolled back so the
  // machine state after the throw matches the sequential backend's.
  const std::vector<double> clock_before = clock_;
  const std::vector<RankCounters> counters_before = counters_;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks_));
  pool_->run(nranks_, [&](int r) {
    const RankGuard guard(r);
    try {
      RankContext ctx(*this, r);
      body(ctx);
    } catch (...) {
      errors[static_cast<std::size_t>(r)] = std::current_exception();
    }
  });
  trace_deferred_ = false;
  int bad = -1;
  for (int r = 0; r < nranks_; ++r) {
    if (errors[static_cast<std::size_t>(r)] != nullptr) {
      bad = r;
      break;
    }
  }
  if (bad < 0) {
    if (tracing) flush_pending_trace(nranks_);
    if (checker_ != nullptr) checker_->end_deferred(nranks_);
    return;
  }
  // A body threw. The sequential interpreter runs ranks in ascending order,
  // so the lowest failing rank is the one whose exception would have
  // surfaced there, and higher ranks would never have started: restore
  // their accounting and discard their staged traffic and buffered
  // observations before propagating.
  for (int r = bad + 1; r < nranks_; ++r) {
    clock_[r] = clock_before[r];
    counters_[r] = counters_before[r];
    staged_[r].clear();
  }
  if (tracing) flush_pending_trace(bad + 1);
  if (checker_ != nullptr) checker_->end_deferred(bad + 1);
  try {
    std::rethrow_exception(errors[static_cast<std::size_t>(bad)]);
  } catch (const Conformance::DeferredViolation& v) {
    // Rebuild the sequential report now that the committed transcript is
    // identical to what the sequential interpreter would hold.
    checker_->throw_violation(v.summary);
  }
}

void Machine::step(const std::function<void(RankContext&)>& body,
                   std::string_view site) {
  if (checker_ != nullptr) checker_->on_step_begin(supersteps_, site);
  if (backend_ == Backend::kThreads && nranks_ > 1) {
    run_bodies_threaded(body);
  } else {
    run_bodies(body);
  }
  // Conformance barrier before physical delivery: collective fingerprints
  // must agree, and an undrained inbox is flagged before the delivery below
  // silently drops its messages.
  if (checker_ != nullptr) checker_->on_barrier(supersteps_);
  // Deliver staged messages for the next superstep, destination-wise in
  // (sender rank, program order). This merge is the only point where
  // messages cross ranks, and it runs on the main thread. The inbox map
  // only grows entries for destinations that actually receive something,
  // so delivery work is proportional to traffic, not to nranks.
  inbox_.clear();
  for (int s = 0; s < nranks_; ++s) {
    if (staged_[s].empty()) continue;
    for (Posted& p : staged_[s]) inbox_[p.to].push_back(std::move(p.msg));
    staged_[s].clear();
  }
  // Receivers pay the per-byte cost of draining their inbound traffic.
  // Only ranks with an inbox entry are visited (ascending rank order, the
  // same order the old dense scan used); ranks without inbound traffic
  // previously added a cost of exactly 0.0 and recorded no trace span, so
  // skipping them is bit-identical.
  for (auto& [r, box] : inbox_) {
    std::uint64_t inbound = 0;
    for (const Message& m : box) inbound += m.payload.size();
    const double cost = static_cast<double>(inbound) * params_.beta;
    if (trace_ != nullptr && inbound > 0) {
      trace_->record(r, SpanKind::kRecv, clock_[r], clock_[r] + cost, 0, inbound,
                     box.size());
    }
    clock_[r] += cost;
  }
  // Barrier: all clocks advance to the max plus a latency tree.
  const double sync =
      params_.alpha * std::max(1.0, std::ceil(std::log2(static_cast<double>(nranks_))));
  const double horizon = *std::max_element(clock_.begin(), clock_.end()) + sync;
  if (trace_ != nullptr) {
    const SpanKind kind = in_allreduce_ ? SpanKind::kAllreduce : SpanKind::kBarrier;
    for (int r = 0; r < nranks_; ++r) {
      trace_->record(r, kind, clock_[r], horizon, 0, 0, 0);
    }
    trace_->sync(horizon);
  }
  // Pre-fill clocks carry the straggler/busy information; main thread only.
  if (metrics_ != nullptr) metrics_->on_sync(clock_, horizon);
  std::fill(clock_.begin(), clock_.end(), horizon);
  ++supersteps_;
}

double Machine::allreduce_sum(const std::function<double(int)>& value_of_rank,
                              std::string_view site) {
  reduce_real_.assign(static_cast<std::size_t>(nranks_), 0.0);
  in_allreduce_ = true;
  step([&](RankContext& ctx) {
    ctx.declare_collective(CollectiveOp::kSum, sizeof(double), site);
    reduce_real_[static_cast<std::size_t>(ctx.rank())] = value_of_rank(ctx.rank());
  }, site);
  in_allreduce_ = false;
  // Combine in rank order — the exact floating-point summation order the
  // sequential interpreter accumulated in, so both backends return the
  // same bits.
  double total = 0.0;
  for (int r = 0; r < nranks_; ++r) total += reduce_real_[static_cast<std::size_t>(r)];
  return total;
}

double Machine::allreduce_max(const std::function<double(int)>& value_of_rank,
                              std::string_view site) {
  reduce_real_.assign(static_cast<std::size_t>(nranks_),
                      -std::numeric_limits<double>::infinity());
  in_allreduce_ = true;
  step([&](RankContext& ctx) {
    ctx.declare_collective(CollectiveOp::kMax, sizeof(double), site);
    reduce_real_[static_cast<std::size_t>(ctx.rank())] = value_of_rank(ctx.rank());
  }, site);
  in_allreduce_ = false;
  double best = -std::numeric_limits<double>::infinity();
  for (int r = 0; r < nranks_; ++r) {
    best = std::max(best, reduce_real_[static_cast<std::size_t>(r)]);
  }
  return best;
}

long long Machine::allreduce_sum_ll(const std::function<long long(int)>& value_of_rank,
                                    std::string_view site) {
  reduce_ll_.assign(static_cast<std::size_t>(nranks_), 0);
  in_allreduce_ = true;
  step([&](RankContext& ctx) {
    ctx.declare_collective(CollectiveOp::kSumLL, sizeof(long long), site);
    reduce_ll_[static_cast<std::size_t>(ctx.rank())] = value_of_rank(ctx.rank());
  }, site);
  in_allreduce_ = false;
  long long total = 0;
  for (int r = 0; r < nranks_; ++r) total += reduce_ll_[static_cast<std::size_t>(r)];
  return total;
}

void Machine::charge_transfer(int from, int to, std::uint64_t bytes,
                              std::string_view site) {
  if (checker_ != nullptr) checker_->on_transfer(from, to, bytes, site);
  PTILU_CHECK(from >= 0 && from < nranks_ && to >= 0 && to < nranks_,
              "charge_transfer: invalid rank");
  counters_[from].messages_sent += 1;
  counters_[from].bytes_sent += bytes;
  const double send_cost = params_.alpha + static_cast<double>(bytes) * params_.beta;
  const double recv_cost = static_cast<double>(bytes) * params_.beta;
  if (trace_ != nullptr) {
    trace_->record(from, SpanKind::kSend, clock_[from], clock_[from] + send_cost, 0,
                   bytes, 1);
    trace_->record(to, SpanKind::kRecv, clock_[to], clock_[to] + recv_cost, 0, bytes, 1);
  }
  clock_[from] += send_cost;
  clock_[to] += recv_cost;
  if (metrics_ != nullptr) metrics_->on_transfer(from, to, bytes);
}

void Machine::collective(std::uint64_t payload_bytes, std::string_view site) {
  if (checker_ != nullptr) {
    // A machine-driven exchange involves every rank by construction; the
    // fingerprints still flow through the checker so transcripts show the
    // collective and seeded divergence tests exercise the same path.
    checker_->on_step_begin(supersteps_, site);
    for (int r = 0; r < nranks_; ++r) {
      checker_->declare_collective(r, CollectiveOp::kExchange, payload_bytes, site);
    }
    checker_->on_barrier(supersteps_);
  }
  const double hops = std::max(1.0, std::ceil(std::log2(static_cast<double>(nranks_))));
  const double cost =
      hops * (params_.alpha + static_cast<double>(payload_bytes) * params_.beta);
  const double horizon = *std::max_element(clock_.begin(), clock_.end()) + cost;
  // Each rank participates in every stage of the log2(p) combining tree, so
  // it is charged one message per hop — the same tree the time model prices
  // above, and the same count the trace spans carry so counter-vs-trace
  // reconciliation holds for collectives exactly as it does for sends.
  const auto hop_msgs = static_cast<std::uint64_t>(hops);
  if (trace_ != nullptr) {
    for (int r = 0; r < nranks_; ++r) {
      trace_->record(r, SpanKind::kAllreduce, clock_[r], horizon, 0, payload_bytes,
                     hop_msgs);
    }
    trace_->sync(horizon);
  }
  if (metrics_ != nullptr) {
    // Tree hops/payloads are tracked separately from the point-to-point
    // comm matrix so both reconcile exactly with the counter bumps below.
    metrics_->on_collective(hop_msgs, payload_bytes);
    metrics_->on_sync(clock_, horizon);
  }
  std::fill(clock_.begin(), clock_.end(), horizon);
  for (auto& c : counters_) {
    c.messages_sent += hop_msgs;
    c.bytes_sent += payload_bytes;
  }
  ++supersteps_;
}

double Machine::modeled_time() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

RankCounters Machine::total_counters() const {
  RankCounters total;
  for (const auto& c : counters_) {
    total.flops += c.flops;
    total.mem_bytes += c.mem_bytes;
    total.messages_sent += c.messages_sent;
    total.bytes_sent += c.bytes_sent;
  }
  return total;
}

void Machine::check_quiescent(std::string_view site) {
  if (checker_ != nullptr) checker_->on_quiescent(site);
}

void Machine::push_phase(std::string_view name) {
  PTILU_ASSERT(tl_current_rank == -1, "phase pushed inside a superstep body");
  if (trace_ != nullptr) trace_->push_phase(name);
  if (metrics_ != nullptr) metrics_->push_phase(name);
}

void Machine::pop_phase() {
  PTILU_ASSERT(tl_current_rank == -1, "phase popped inside a superstep body");
  if (trace_ != nullptr) trace_->pop_phase();
  if (metrics_ != nullptr) metrics_->pop_phase();
}

void Machine::reset() {
  // Metrics first: it flushes the trailing clock advance and banks the
  // counters this reset is about to zero.
  if (metrics_ != nullptr) metrics_->on_reset(clock_, counters_);
  std::fill(clock_.begin(), clock_.end(), 0.0);
  counters_.assign(nranks_, RankCounters{});
  inbox_.clear();
  for (auto& box : staged_) box.clear();
  for (auto& spans : pending_trace_) spans.clear();
  supersteps_ = 0;
  if (trace_ != nullptr) trace_->on_machine_reset();
  if (checker_ != nullptr) checker_->on_reset();
}

}  // namespace ptilu::sim
