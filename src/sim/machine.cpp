#include "ptilu/sim/machine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "ptilu/sim/conformance.hpp"
#include "ptilu/sim/trace.hpp"

namespace ptilu::sim {

namespace {

template <typename T>
std::vector<std::byte> encode(const std::vector<T>& data) {
  std::vector<std::byte> out(data.size() * sizeof(T));
  if (!data.empty()) std::memcpy(out.data(), data.data(), out.size());
  return out;
}

template <typename T>
void decode_append(const Message& m, std::vector<T>& out) {
  PTILU_CHECK(m.payload.size() % sizeof(T) == 0,
              "payload size " << m.payload.size() << " not a multiple of element size");
  const std::size_t count = m.payload.size() / sizeof(T);
  if (count == 0) return;
  const std::size_t old_size = out.size();
  out.resize(old_size + count);
  std::memcpy(out.data() + old_size, m.payload.data(), m.payload.size());
}

template <typename T>
std::vector<T> decode(const Message& m) {
  std::vector<T> out;
  decode_append(m, out);
  return out;
}

}  // namespace

int RankContext::nranks() const { return machine_->nranks(); }

void RankContext::charge_flops(std::uint64_t n) { machine_->charge_flops(rank_, n); }
void RankContext::charge_mem(std::uint64_t n) { machine_->charge_mem(rank_, n); }

void RankContext::send_bytes(int to, int tag, std::vector<std::byte> payload) {
  machine_->post(rank_, to, tag, std::move(payload));
}

void RankContext::send_indices(int to, int tag, const IdxVec& data) {
  send_bytes(to, tag, encode(data));
}

void RankContext::send_reals(int to, int tag, const RealVec& data) {
  send_bytes(to, tag, encode(data));
}

std::vector<Message> RankContext::recv_all() {
  if (machine_->checker_ != nullptr) machine_->checker_->on_recv_all(rank_);
  // std::exchange (not a bare move) so a second drain in the same superstep
  // reads a well-defined empty inbox instead of a moved-from vector.
  return std::exchange(machine_->inbox_[rank_], std::vector<Message>{});
}

void RankContext::declare_collective(CollectiveOp op, std::uint64_t bytes,
                                     std::string_view site) {
  if (machine_->checker_ != nullptr) {
    machine_->checker_->declare_collective(rank_, op, bytes, site);
  }
}

IdxVec decode_indices(const Message& m) { return decode<idx>(m); }
RealVec decode_reals(const Message& m) { return decode<real>(m); }
void decode_indices_append(const Message& m, IdxVec& out) { decode_append(m, out); }
void decode_reals_append(const Message& m, RealVec& out) { decode_append(m, out); }

Machine::Machine(int nranks, MachineParams params)
    : Machine(nranks, Options{.params = params}) {}

Machine::Machine(int nranks, const Options& options)
    : nranks_(nranks),
      params_(options.params),
      clock_(nranks, 0.0),
      counters_(nranks),
      inbox_(nranks),
      outbox_(nranks) {
  PTILU_CHECK(nranks >= 1, "machine needs at least one rank");
  if (options.check) {
    checker_ = std::make_unique<Conformance>(nranks, options.transcript_tail);
  }
}

Machine::~Machine() = default;

void Machine::attach_trace(Trace* trace) {
  trace_ = trace;
  if (trace_ != nullptr) trace_->set_nranks(nranks_);
}

void Machine::charge_flops(int rank, std::uint64_t n) {
  counters_[rank].flops += n;
  const double cost = static_cast<double>(n) * params_.flop;
  if (trace_ != nullptr) {
    trace_->record(rank, SpanKind::kCompute, clock_[rank], clock_[rank] + cost, n, 0, 0);
  }
  clock_[rank] += cost;
}

void Machine::charge_mem(int rank, std::uint64_t n) {
  counters_[rank].mem_bytes += n;
  const double cost = static_cast<double>(n) * params_.mem;
  if (trace_ != nullptr) {
    trace_->record(rank, SpanKind::kCompute, clock_[rank], clock_[rank] + cost, 0, n, 0);
  }
  clock_[rank] += cost;
}

void Machine::post(int from, int to, int tag, std::vector<std::byte> payload) {
  // The checker validates the destination first: its report names the call
  // site and dumps the protocol transcript, where the bare check below can
  // only name the rank.
  if (checker_ != nullptr) checker_->on_send(from, to, tag, payload.size());
  PTILU_CHECK(to >= 0 && to < nranks_, "send to invalid rank " << to);
  const std::uint64_t bytes = payload.size();
  counters_[from].messages_sent += 1;
  counters_[from].bytes_sent += bytes;
  // Sender pays latency plus per-byte injection cost.
  const double cost = params_.alpha + static_cast<double>(bytes) * params_.beta;
  if (trace_ != nullptr) {
    trace_->record(from, SpanKind::kSend, clock_[from], clock_[from] + cost, 0, bytes, 1);
  }
  clock_[from] += cost;
  outbox_[to].push_back(Message{from, tag, std::move(payload)});
}

void Machine::step(const std::function<void(RankContext&)>& body,
                   std::string_view site) {
  if (checker_ != nullptr) checker_->on_step_begin(supersteps_, site);
  for (int r = 0; r < nranks_; ++r) {
    RankContext ctx(*this, r);
    body(ctx);
  }
  // Conformance barrier before physical delivery: collective fingerprints
  // must agree, and an undrained inbox is flagged before the swap below
  // silently drops its messages.
  if (checker_ != nullptr) checker_->on_barrier(supersteps_);
  // Deliver posted messages for the next superstep. Receivers pay the
  // per-byte cost of draining their inbound traffic.
  for (int r = 0; r < nranks_; ++r) {
    // Swap rather than move-assign so the outbox inherits the drained
    // inbox's capacity instead of reallocating from empty every superstep.
    std::swap(inbox_[r], outbox_[r]);
    outbox_[r].clear();
    std::uint64_t inbound = 0;
    for (const Message& m : inbox_[r]) inbound += m.payload.size();
    const double cost = static_cast<double>(inbound) * params_.beta;
    if (trace_ != nullptr && inbound > 0) {
      trace_->record(r, SpanKind::kRecv, clock_[r], clock_[r] + cost, 0, inbound,
                     inbox_[r].size());
    }
    clock_[r] += cost;
  }
  // Barrier: all clocks advance to the max plus a latency tree.
  const double sync =
      params_.alpha * std::max(1.0, std::ceil(std::log2(static_cast<double>(nranks_))));
  const double horizon = *std::max_element(clock_.begin(), clock_.end()) + sync;
  if (trace_ != nullptr) {
    const SpanKind kind = in_allreduce_ ? SpanKind::kAllreduce : SpanKind::kBarrier;
    for (int r = 0; r < nranks_; ++r) {
      trace_->record(r, kind, clock_[r], horizon, 0, 0, 0);
    }
    trace_->sync(horizon);
  }
  std::fill(clock_.begin(), clock_.end(), horizon);
  ++supersteps_;
}

double Machine::allreduce_sum(const std::function<double(int)>& value_of_rank,
                              std::string_view site) {
  double total = 0.0;
  in_allreduce_ = true;
  step([&](RankContext& ctx) {
    ctx.declare_collective(CollectiveOp::kSum, sizeof(double), site);
    total += value_of_rank(ctx.rank());
  }, site);
  in_allreduce_ = false;
  return total;
}

double Machine::allreduce_max(const std::function<double(int)>& value_of_rank,
                              std::string_view site) {
  double best = -std::numeric_limits<double>::infinity();
  in_allreduce_ = true;
  step([&](RankContext& ctx) {
    ctx.declare_collective(CollectiveOp::kMax, sizeof(double), site);
    best = std::max(best, value_of_rank(ctx.rank()));
  }, site);
  in_allreduce_ = false;
  return best;
}

long long Machine::allreduce_sum_ll(const std::function<long long(int)>& value_of_rank,
                                    std::string_view site) {
  long long total = 0;
  in_allreduce_ = true;
  step([&](RankContext& ctx) {
    ctx.declare_collective(CollectiveOp::kSumLL, sizeof(long long), site);
    total += value_of_rank(ctx.rank());
  }, site);
  in_allreduce_ = false;
  return total;
}

void Machine::charge_transfer(int from, int to, std::uint64_t bytes,
                              std::string_view site) {
  if (checker_ != nullptr) checker_->on_transfer(from, to, bytes, site);
  PTILU_CHECK(from >= 0 && from < nranks_ && to >= 0 && to < nranks_,
              "charge_transfer: invalid rank");
  counters_[from].messages_sent += 1;
  counters_[from].bytes_sent += bytes;
  const double send_cost = params_.alpha + static_cast<double>(bytes) * params_.beta;
  const double recv_cost = static_cast<double>(bytes) * params_.beta;
  if (trace_ != nullptr) {
    trace_->record(from, SpanKind::kSend, clock_[from], clock_[from] + send_cost, 0,
                   bytes, 1);
    trace_->record(to, SpanKind::kRecv, clock_[to], clock_[to] + recv_cost, 0, bytes, 1);
  }
  clock_[from] += send_cost;
  clock_[to] += recv_cost;
}

void Machine::collective(std::uint64_t payload_bytes, std::string_view site) {
  if (checker_ != nullptr) {
    // A machine-driven exchange involves every rank by construction; the
    // fingerprints still flow through the checker so transcripts show the
    // collective and seeded divergence tests exercise the same path.
    checker_->on_step_begin(supersteps_, site);
    for (int r = 0; r < nranks_; ++r) {
      checker_->declare_collective(r, CollectiveOp::kExchange, payload_bytes, site);
    }
    checker_->on_barrier(supersteps_);
  }
  const double hops = std::max(1.0, std::ceil(std::log2(static_cast<double>(nranks_))));
  const double cost =
      hops * (params_.alpha + static_cast<double>(payload_bytes) * params_.beta);
  const double horizon = *std::max_element(clock_.begin(), clock_.end()) + cost;
  // Each rank participates in every stage of the log2(p) combining tree, so
  // it is charged one message per hop — the same tree the time model prices
  // above, and the same count the trace spans carry so counter-vs-trace
  // reconciliation holds for collectives exactly as it does for sends.
  const auto hop_msgs = static_cast<std::uint64_t>(hops);
  if (trace_ != nullptr) {
    for (int r = 0; r < nranks_; ++r) {
      trace_->record(r, SpanKind::kAllreduce, clock_[r], horizon, 0, payload_bytes,
                     hop_msgs);
    }
    trace_->sync(horizon);
  }
  std::fill(clock_.begin(), clock_.end(), horizon);
  for (auto& c : counters_) {
    c.messages_sent += hop_msgs;
    c.bytes_sent += payload_bytes;
  }
  ++supersteps_;
}

double Machine::modeled_time() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

RankCounters Machine::total_counters() const {
  RankCounters total;
  for (const auto& c : counters_) {
    total.flops += c.flops;
    total.mem_bytes += c.mem_bytes;
    total.messages_sent += c.messages_sent;
    total.bytes_sent += c.bytes_sent;
  }
  return total;
}

void Machine::check_quiescent(std::string_view site) {
  if (checker_ != nullptr) checker_->on_quiescent(site);
}

void Machine::reset() {
  std::fill(clock_.begin(), clock_.end(), 0.0);
  counters_.assign(nranks_, RankCounters{});
  for (auto& box : inbox_) box.clear();
  for (auto& box : outbox_) box.clear();
  supersteps_ = 0;
  if (trace_ != nullptr) trace_->on_machine_reset();
  if (checker_ != nullptr) checker_->on_reset();
}

}  // namespace ptilu::sim
