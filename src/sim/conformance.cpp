#include "ptilu/sim/conformance.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace ptilu::sim {

const char* collective_op_name(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kBarrier: return "barrier";
    case CollectiveOp::kSum: return "allreduce_sum";
    case CollectiveOp::kMax: return "allreduce_max";
    case CollectiveOp::kSumLL: return "allreduce_sum_ll";
    case CollectiveOp::kExchange: return "exchange";
    case CollectiveOp::kUser: return "user";
  }
  return "?";
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSend: return "send";
    case EventKind::kDrain: return "drain";
    case EventKind::kCollective: return "collective";
    case EventKind::kTransferOut: return "transfer-out";
    case EventKind::kTransferIn: return "transfer-in";
    case EventKind::kQuiescence: return "quiescent";
    case EventKind::kReset: return "reset";
  }
  return "?";
}

bool conformance_enabled_by_env() noexcept {
  const char* value = std::getenv("PTILU_CHECK");
  if (value == nullptr) return false;
  std::string lower;
  for (const char* p = value; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  return lower == "1" || lower == "on" || lower == "true" || lower == "yes";
}

Conformance::Conformance(int nranks, std::size_t transcript_tail)
    : nranks_(nranks),
      tail_(transcript_tail > 0 ? transcript_tail : 1),
      pending_(static_cast<std::size_t>(nranks)),
      staged_(static_cast<std::size_t>(nranks)),
      inbox_(static_cast<std::size_t>(nranks)),
      drained_(static_cast<std::size_t>(nranks), 0),
      events_(static_cast<std::size_t>(nranks)),
      events_next_(static_cast<std::size_t>(nranks), 0),
      step_events_(static_cast<std::size_t>(nranks)) {
  sites_.emplace_back();  // id 0: the untagged site
  site_ids_.emplace("", 0);
}

std::uint32_t Conformance::intern(std::string_view site) {
  // Interning is shared across ranks; under the threaded backend workers
  // intern collective tags concurrently. Same string always maps to the
  // same id regardless of arrival order, and ids never appear in reports
  // (names do), so the lock is all the determinism needed.
  const std::lock_guard<std::mutex> lock(site_mutex_);
  const auto it = site_ids_.find(site);
  if (it != site_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(sites_.size());
  sites_.emplace_back(site);
  site_ids_.emplace(sites_.back(), id);
  return id;
}

std::string Conformance::site_name(std::uint32_t id) const {
  const std::lock_guard<std::mutex> lock(site_mutex_);
  return sites_[id];
}

void Conformance::record(int rank, ProtocolEvent event) {
  if (deferred_) {
    // Threaded backend: buffer rank-locally; end_deferred commits the
    // buffers to the rings in rank order at the barrier.
    step_events_[rank].push_back(event);
    return;
  }
  auto& ring = events_[rank];
  if (ring.size() < tail_) {
    ring.push_back(event);
    return;
  }
  ring[events_next_[rank]] = event;
  events_next_[rank] = (events_next_[rank] + 1) % tail_;
}

std::string Conformance::describe(const Fingerprint& fp) const {
  std::ostringstream oss;
  oss << collective_op_name(fp.op) << " " << fp.bytes << " B";
  if (fp.site != 0) oss << " @" << site_name(fp.site);
  return oss.str();
}

std::string Conformance::describe(const MessageMeta& meta, int to) const {
  std::ostringstream oss;
  oss << "rank " << meta.from << " -> rank " << to << " tag=" << meta.tag << " "
      << meta.bytes << " B, posted in superstep " << meta.superstep;
  if (meta.site != 0) oss << " at " << site_name(meta.site);
  return oss.str();
}

std::string Conformance::transcript() const {
  std::ostringstream oss;
  oss << "per-rank protocol transcript (up to " << tail_ << " most recent events):\n";
  for (int r = 0; r < nranks_; ++r) {
    oss << "  rank " << r << ":";
    const auto& ring = events_[r];
    if (ring.empty()) {
      oss << " (no events)\n";
      continue;
    }
    oss << "\n";
    // The ring holds tail_ events at most; cursor marks the oldest slot.
    const std::size_t start = ring.size() < tail_ ? 0 : events_next_[r];
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const ProtocolEvent& e = ring[(start + i) % ring.size()];
      oss << "    s" << e.superstep << " " << event_kind_name(e.kind);
      if (e.kind == EventKind::kCollective) oss << " " << collective_op_name(e.op);
      if (e.peer >= 0) {
        oss << (e.kind == EventKind::kTransferIn ? " <-rank " : " ->rank ") << e.peer;
      }
      if (e.kind == EventKind::kSend) oss << " tag=" << e.tag;
      if (e.kind == EventKind::kDrain) oss << " " << e.count << " msg(s)";
      oss << " " << e.bytes << " B";
      if (e.site != 0) oss << " @" << site_name(e.site);
      oss << "\n";
    }
  }
  return oss.str();
}

void Conformance::fail(const std::string& summary) {
  if (deferred_) {
    // Mid-step under the threaded backend: other ranks are still writing
    // their transcript buffers, so only the summary (built from rank-local
    // and step-constant data) travels; Machine selects the lowest failing
    // rank after the join and calls throw_violation.
    throw DeferredViolation{summary};
  }
  throw_violation(summary);
}

void Conformance::throw_violation(const std::string& summary) {
  ++violations_;
  throw Error("SPMD conformance violation: " + summary + "\n" + transcript());
}

void Conformance::begin_deferred() {
  deferred_ = true;
  for (auto& buffer : step_events_) buffer.clear();
}

void Conformance::end_deferred(int commit_ranks) {
  deferred_ = false;
  // Commit in rank order: the rings end up exactly as if the bodies had
  // run sequentially with rank `commit_ranks - 1` the last to execute.
  for (int r = 0; r < commit_ranks && r < nranks_; ++r) {
    for (const ProtocolEvent& e : step_events_[r]) record(r, e);
  }
  for (auto& buffer : step_events_) buffer.clear();
  // Ranks the sequential interpreter would never have run: drop their
  // per-step observations.
  for (int r = commit_ranks; r < nranks_; ++r) {
    pending_[static_cast<std::size_t>(r)].clear();
    staged_[static_cast<std::size_t>(r)].clear();
    drained_[static_cast<std::size_t>(r)] = 0;
  }
}

void Conformance::on_step_begin(std::uint64_t superstep, std::string_view site) {
  superstep_ = superstep;
  step_site_ = intern(site);
}

void Conformance::on_send(int from, int to, int tag, std::uint64_t bytes) {
  if (to < 0 || to >= nranks_) {
    std::ostringstream oss;
    oss << "rank " << from << " sent to out-of-range rank " << to << " (tag=" << tag
        << ", " << bytes << " B) in superstep " << superstep_;
    if (step_site_ != 0) oss << " at " << site_name(step_site_);
    fail(oss.str());
  }
  record(from, ProtocolEvent{superstep_, bytes, 1, step_site_, to, tag,
                             EventKind::kSend, CollectiveOp::kBarrier});
  staged_[from].push_back(
      StagedMeta{MessageMeta{superstep_, bytes, step_site_, from, tag}, to});
}

void Conformance::on_recv_all(int rank) {
  if (drained_[rank] != 0) {
    std::ostringstream oss;
    oss << "rank " << rank << " drained its inbox twice in superstep " << superstep_;
    if (step_site_ != 0) oss << " at " << site_name(step_site_);
    oss << "; the second drain reads an already-emptied inbox, so any message "
           "arriving between the calls would be lost silently";
    fail(oss.str());
  }
  drained_[rank] = 1;
  std::uint64_t bytes = 0;
  for (const MessageMeta& m : inbox_[rank]) bytes += m.bytes;
  record(rank, ProtocolEvent{superstep_, bytes, inbox_[rank].size(), step_site_, -1, 0,
                             EventKind::kDrain, CollectiveOp::kBarrier});
  inbox_[rank].clear();
}

void Conformance::declare_collective(int rank, CollectiveOp op, std::uint64_t bytes,
                                     std::string_view site) {
  const std::uint32_t site_id = site.empty() ? step_site_ : intern(site);
  pending_[rank].push_back(Fingerprint{op, bytes, site_id});
  record(rank, ProtocolEvent{superstep_, bytes, 0, site_id, -1, 0,
                             EventKind::kCollective, op});
}

void Conformance::on_barrier(std::uint64_t superstep) {
  // (a) Collective conformance: every rank must have declared the same
  // fingerprint sequence since the previous barrier.
  const auto& reference = pending_[0];
  for (int r = 1; r < nranks_; ++r) {
    const auto& mine = pending_[r];
    const std::size_t common = std::min(reference.size(), mine.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (mine[i] == reference[i]) continue;
      std::ostringstream oss;
      oss << "collective fingerprint divergence in superstep " << superstep
          << ": rank " << r << " declared collective #" << i << " as ["
          << describe(mine[i]) << "] but rank 0 declared [" << describe(reference[i])
          << "]";
      fail(oss.str());
    }
    if (mine.size() != reference.size()) {
      std::ostringstream oss;
      oss << "collective count divergence in superstep " << superstep << ": rank " << r
          << " declared " << mine.size() << " collective(s) but rank 0 declared "
          << reference.size();
      if (step_site_ != 0) oss << " at " << site_name(step_site_);
      fail(oss.str());
    }
  }
  for (auto& p : pending_) p.clear();

  // (b) Message loss: a non-empty inbox at delivery time is about to be
  // overwritten — its messages were delivered a superstep ago and the
  // owning rank never received them.
  for (int r = 0; r < nranks_; ++r) {
    if (inbox_[r].empty()) continue;
    std::ostringstream oss;
    oss << "rank " << r << " never received " << inbox_[r].size()
        << " message(s) before the superstep " << superstep
        << " barrier; the next delivery overwrites the inbox, losing them:";
    for (const MessageMeta& m : inbox_[r]) oss << "\n  lost: " << describe(m, r);
    fail(oss.str());
  }

  // (c) Deliver the posted metadata mirror for the next superstep,
  // destination-wise in sender-rank order — the same merge Machine applies
  // to the payload queues. Check (b) guarantees every inbox is empty here.
  for (int r = 0; r < nranks_; ++r) drained_[r] = 0;
  for (int s = 0; s < nranks_; ++s) {
    for (const StagedMeta& m : staged_[s]) inbox_[m.to].push_back(m.meta);
    staged_[s].clear();
  }
}

void Conformance::on_transfer(int from, int to, std::uint64_t bytes,
                              std::string_view site) {
  const std::uint32_t site_id = site.empty() ? step_site_ : intern(site);
  if (from < 0 || from >= nranks_ || to < 0 || to >= nranks_) {
    std::ostringstream oss;
    oss << "charge_transfer between out-of-range ranks " << from << " -> " << to
        << " (" << bytes << " B)";
    if (site_id != 0) oss << " at " << site_name(site_id);
    fail(oss.str());
  }
  record(from, ProtocolEvent{superstep_, bytes, 1, site_id, to, 0,
                             EventKind::kTransferOut, CollectiveOp::kBarrier});
  record(to, ProtocolEvent{superstep_, bytes, 1, site_id, from, 0,
                           EventKind::kTransferIn, CollectiveOp::kBarrier});
}

void Conformance::on_quiescent(std::string_view site) {
  const std::uint32_t site_id = intern(site);
  // View the per-sender stages destination-wise (sender-rank order, the
  // order they would deliver in) so undelivered traffic is reported against
  // the rank that would have received it.
  std::vector<std::vector<MessageMeta>> queued(static_cast<std::size_t>(nranks_));
  for (int s = 0; s < nranks_; ++s) {
    for (const StagedMeta& m : staged_[s]) queued[m.to].push_back(m.meta);
  }
  for (int r = 0; r < nranks_; ++r) {
    const bool orphaned = !inbox_[r].empty();
    const bool undelivered = !queued[r].empty();
    if (!orphaned && !undelivered) continue;
    std::ostringstream oss;
    oss << "quiescence check";
    if (site_id != 0) oss << " at " << site_name(site_id);
    oss << " failed: rank " << r << " still holds ";
    if (orphaned) {
      oss << inbox_[r].size() << " delivered-but-never-received message(s)";
    }
    if (undelivered) {
      if (orphaned) oss << " and ";
      oss << queued[r].size() << " posted-but-undelivered message(s)";
    }
    oss << " — a peer finalized while this traffic was still in flight:";
    for (const MessageMeta& m : inbox_[r]) oss << "\n  orphaned: " << describe(m, r);
    for (const MessageMeta& m : queued[r]) oss << "\n  queued: " << describe(m, r);
    fail(oss.str());
  }
  for (int r = 0; r < nranks_; ++r) {
    record(r, ProtocolEvent{superstep_, 0, 0, site_id, -1, 0, EventKind::kQuiescence,
                            CollectiveOp::kBarrier});
  }
}

void Conformance::on_reset() {
  for (auto& p : pending_) p.clear();
  for (auto& box : inbox_) box.clear();
  for (auto& box : staged_) box.clear();
  for (auto& buffer : step_events_) buffer.clear();
  std::fill(drained_.begin(), drained_.end(), 0);
  superstep_ = 0;
  step_site_ = 0;
  for (int r = 0; r < nranks_; ++r) {
    record(r, ProtocolEvent{0, 0, 0, 0, -1, 0, EventKind::kReset,
                            CollectiveOp::kBarrier});
  }
}

}  // namespace ptilu::sim
