#include "ptilu/sim/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "ptilu/support/check.hpp"
#include "ptilu/support/table.hpp"

namespace ptilu::sim {

namespace {

/// Deterministic shortest-round-trip decimal form: %.17g reproduces the
/// exact double on parse, so check_report.py can re-verify the busy+idle
/// identity and the modeled_s sum bit-for-bit from the serialized values.
void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
        break;
    }
  }
}

template <typename T>
void append_int_array(std::string& out, const std::vector<T>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += ']';
}

void append_real_array(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    append_number(out, values[i]);
  }
  out += ']';
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t hash = kFnvOffset;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

bool metrics_enabled_by_env() noexcept {
  const char* value = std::getenv("PTILU_METRICS");
  if (value == nullptr) return false;
  std::string lower;
  for (const char* p = value; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  return lower == "1" || lower == "on" || lower == "true" || lower == "yes";
}

double Metrics::PhaseMetrics::imbalance() const {
  double max_busy = 0.0;
  double sum_busy = 0.0;
  for (const double b : busy) {
    max_busy = std::max(max_busy, b);
    sum_busy += b;
  }
  if (sum_busy <= 0.0) return 0.0;
  const double mean = sum_busy / static_cast<double>(busy.size());
  return max_busy / mean;
}

int Metrics::PhaseMetrics::critical_rank() const {
  int best = -1;
  double best_s = 0.0;
  for (std::size_t r = 0; r < critical_s.size(); ++r) {
    if (critical_s[r] > best_s) {
      best_s = critical_s[r];
      best = static_cast<int>(r);
    }
  }
  return best;
}

Metrics::Metrics(int nranks) : nranks_(nranks) {
  PTILU_CHECK(nranks >= 1, "metrics need at least one rank");
  phase_names_.emplace_back();  // id 0: the root ("" -> "(untagged)")
  phase_ids_.emplace("", 0);
  phases_.emplace_back();
  phase_stack_.push_back(0);
  ensure_storage(0);  // sends may arrive before any phase is pushed
}

std::uint32_t Metrics::intern(std::string path) {
  const auto it = phase_ids_.find(path);
  if (it != phase_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(phase_names_.size());
  phase_ids_.emplace(path, id);
  phase_names_.push_back(std::move(path));
  phases_.emplace_back();
  return id;
}

void Metrics::push_phase(std::string_view name) {
  const std::string& parent = phase_names_[phase_stack_.back()];
  std::string path;
  path.reserve(parent.size() + 1 + name.size());
  if (!parent.empty()) {
    path = parent;
    path += '/';
  }
  path += name;
  const std::uint32_t id = intern(std::move(path));
  // Preallocate the per-rank storage here, on the main thread: phases only
  // change between supersteps, so rank bodies never race a reallocation.
  ensure_storage(id);
  phase_stack_.push_back(id);
}

void Metrics::pop_phase() {
  PTILU_CHECK(phase_stack_.size() > 1, "pop_phase without matching push_phase");
  phase_stack_.pop_back();
}

Metrics::PhaseMetrics& Metrics::ensure_storage(std::uint32_t id) {
  PhaseMetrics& pm = phases_[id];
  if (pm.busy.empty()) {
    const auto n = static_cast<std::size_t>(nranks_);
    pm.busy.assign(n, 0.0);
    pm.critical_s.assign(n, 0.0);
    pm.critical_steps.assign(n, 0);
    pm.comm.resize(n);
  }
  return pm;
}

void Metrics::on_sync(const std::vector<double>& clocks, double horizon) {
  const std::uint32_t pid = phase_stack_.back();
  PhaseMetrics& pm = ensure_storage(pid);
  const double delta = horizon - last_horizon_;
  pm.elapsed += delta;
  pm.supersteps += 1;
  // The straggler is the first rank at the pre-barrier maximum — the same
  // first-max rule the barrier's max_element used to place the horizon.
  int straggler = 0;
  for (int r = 1; r < nranks_; ++r) {
    if (clocks[static_cast<std::size_t>(r)] >
        clocks[static_cast<std::size_t>(straggler)]) {
      straggler = r;
    }
  }
  pm.critical_s[static_cast<std::size_t>(straggler)] += delta;
  pm.critical_steps[static_cast<std::size_t>(straggler)] += 1;
  // Busy shares: each term is fl(clock_r - last_horizon) <= the elapsed
  // term fl(horizon - last_horizon) because clock_r <= horizon and rounded
  // subtraction/addition are monotone. Accumulated busy therefore never
  // exceeds accumulated elapsed — exactly, not just up to drift — which is
  // what makes the serialized idle = elapsed - busy identity airtight.
  for (int r = 0; r < nranks_; ++r) {
    pm.busy[static_cast<std::size_t>(r)] +=
        clocks[static_cast<std::size_t>(r)] - last_horizon_;
  }
  last_horizon_ = horizon;
  last_active_ = pid;
}

void Metrics::on_send(int from, int to, std::uint64_t bytes) {
  PhaseMetrics& pm = phases_[phase_stack_.back()];
  CommCell& cell = pm.comm[static_cast<std::size_t>(from)][to];
  cell.messages += 1;
  cell.bytes += bytes;
}

void Metrics::on_transfer(int from, int to, std::uint64_t bytes) {
  const std::uint32_t pid = phase_stack_.back();
  PhaseMetrics& pm = phases_[pid];
  CommCell& cell = pm.comm[static_cast<std::size_t>(from)][to];
  cell.messages += 1;
  cell.bytes += bytes;
  last_active_ = pid;
}

void Metrics::on_collective(std::uint64_t hop_messages, std::uint64_t payload_bytes) {
  // Every rank is charged identically by Machine::collective, so one scalar
  // per phase carries the full per-rank accounting — no O(p) work or
  // storage per collective.
  PhaseMetrics& pm = phases_[phase_stack_.back()];
  pm.collective_messages += hop_messages;
  pm.collective_bytes += payload_bytes;
}

void Metrics::flush_clocks(const std::vector<double>& clocks) {
  const double max_clock = *std::max_element(clocks.begin(), clocks.end());
  if (max_clock <= last_horizon_) return;
  // Clock advance since the last barrier (e.g. a trailing charge_transfer
  // with no closing superstep): credit it to the last active phase, like
  // Trace::phase_rollup's residual, keeping sum(elapsed) == modeled time.
  PhaseMetrics& pm = ensure_storage(last_active_);
  const double delta = max_clock - last_horizon_;
  pm.elapsed += delta;
  int straggler = 0;
  for (int r = 1; r < nranks_; ++r) {
    if (clocks[static_cast<std::size_t>(r)] >
        clocks[static_cast<std::size_t>(straggler)]) {
      straggler = r;
    }
  }
  pm.critical_s[static_cast<std::size_t>(straggler)] += delta;
  for (int r = 0; r < nranks_; ++r) {
    const double busy = clocks[static_cast<std::size_t>(r)] - last_horizon_;
    if (busy > 0.0) pm.busy[static_cast<std::size_t>(r)] += busy;
  }
  last_horizon_ = max_clock;
}

void Metrics::on_reset(const std::vector<double>& clocks,
                       const std::vector<RankCounters>& counters) {
  flush_clocks(clocks);
  last_horizon_ = 0.0;
  // The machine is about to zero its RankCounters; bank them so the report
  // still reconciles comm-matrix totals against full-run counters when one
  // machine times several epochs.
  if (banked_counters_.empty()) banked_counters_.resize(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    RankCounters& bank = banked_counters_[static_cast<std::size_t>(r)];
    const RankCounters& c = counters[static_cast<std::size_t>(r)];
    bank.flops += c.flops;
    bank.mem_bytes += c.mem_bytes;
    bank.messages_sent += c.messages_sent;
    bank.bytes_sent += c.bytes_sent;
  }
}

std::uint32_t Metrics::counter_id(std::string_view name) {
  std::string key(name);
  const auto it = counter_ids_.find(key);
  if (it != counter_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(counter_names_.size());
  counter_ids_.emplace(key, id);
  counter_names_.push_back(std::move(key));
  counter_values_.emplace_back(static_cast<std::size_t>(nranks_), 0);
  return id;
}

void Metrics::add_counter(std::uint32_t id, int rank, std::uint64_t n) {
  counter_values_[id][static_cast<std::size_t>(rank)] += n;
}

std::uint64_t Metrics::counter_value(std::string_view name, int rank) const {
  const auto it = counter_ids_.find(std::string(name));
  if (it == counter_ids_.end()) return 0;
  return counter_values_[it->second][static_cast<std::size_t>(rank)];
}

void Metrics::flush(const Machine& machine) {
  std::vector<double> clocks(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    clocks[static_cast<std::size_t>(r)] = machine.rank_time(r);
  }
  flush_clocks(clocks);
}

std::vector<Metrics::PhaseRow> Metrics::phase_rows() const {
  std::vector<PhaseRow> rows;
  for (std::uint32_t id = 0; id < phases_.size(); ++id) {
    if (!phases_[id].active()) continue;
    rows.push_back({phase_names_[id].empty() ? "(untagged)" : phase_names_[id],
                    &phases_[id]});
  }
  return rows;
}

double Metrics::total_elapsed() const {
  double total = 0.0;
  for (std::uint32_t id = 0; id < phases_.size(); ++id) {
    if (phases_[id].active()) total += phases_[id].elapsed;
  }
  return total;
}

std::string Metrics::payload_json(const Machine& machine) {
  flush(machine);
  const auto rows = phase_rows();
  std::string out;
  out.reserve(1024 + rows.size() * 512);

  std::uint64_t total_supersteps = 0;
  for (const PhaseRow& row : rows) total_supersteps += row.stats->supersteps;
  out += "  \"supersteps\": ";
  out += std::to_string(total_supersteps);
  out += ",\n  \"modeled_s\": ";
  // Sum in phase-id order — the same order the phases are serialized in, so
  // the validator recomputes this value bit-exactly by folding them back up.
  append_number(out, total_elapsed());
  out += ",\n  \"phases\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PhaseMetrics& pm = *rows[i].stats;
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, rows[i].name);
    out += "\",\n     \"elapsed_s\": ";
    append_number(out, pm.elapsed);
    out += ", \"supersteps\": ";
    out += std::to_string(pm.supersteps);
    out += ", \"imbalance\": ";
    append_number(out, pm.imbalance());
    out += ", \"critical_rank\": ";
    out += std::to_string(pm.critical_rank());
    out += ",\n     \"busy_s\": ";
    append_real_array(out, pm.busy);
    out += ",\n     \"idle_s\": [";
    for (std::size_t r = 0; r < pm.busy.size(); ++r) {
      if (r != 0) out += ", ";
      // Derived, not accumulated: the busy+idle identity is exact by
      // construction because this very difference is what gets serialized.
      append_number(out, pm.elapsed - pm.busy[r]);
    }
    out += "],\n     \"critical_s\": ";
    append_real_array(out, pm.critical_s);
    out += ",\n     \"critical_steps\": ";
    append_int_array(out, pm.critical_steps);
    // v2: collectives charge every rank identically, so these are scalars
    // (the uniform per-rank value), not nranks-long arrays.
    out += ",\n     \"collective_messages\": ";
    out += std::to_string(pm.collective_messages);
    out += ", \"collective_bytes\": ";
    out += std::to_string(pm.collective_bytes);
    // Sparse comm summary: how many (from, to) pairs carried traffic, the
    // phase-total messages/bytes over those pairs, and the widest per-rank
    // fanout — readable at p=4096 where eyeballing the cell list is not.
    std::uint64_t comm_pairs = 0;
    std::uint64_t comm_messages = 0;
    std::uint64_t comm_bytes = 0;
    std::size_t comm_max_fanout = 0;
    for (const auto& row : pm.comm) {
      comm_pairs += row.size();
      comm_max_fanout = std::max(comm_max_fanout, row.size());
      for (const auto& [to, cell] : row) {
        comm_messages += cell.messages;
        comm_bytes += cell.bytes;
      }
    }
    out += ",\n     \"comm_pairs\": ";
    out += std::to_string(comm_pairs);
    out += ", \"comm_messages\": ";
    out += std::to_string(comm_messages);
    out += ", \"comm_bytes\": ";
    out += std::to_string(comm_bytes);
    out += ", \"comm_max_fanout\": ";
    out += std::to_string(comm_max_fanout);
    out += ",\n     \"comm\": [";
    bool first_cell = true;
    for (std::size_t from = 0; from < pm.comm.size(); ++from) {
      for (const auto& [to, cell] : pm.comm[from]) {
        if (!first_cell) out += ", ";
        first_cell = false;
        out += "{\"from\": ";
        out += std::to_string(from);
        out += ", \"to\": ";
        out += std::to_string(to);
        out += ", \"messages\": ";
        out += std::to_string(cell.messages);
        out += ", \"bytes\": ";
        out += std::to_string(cell.bytes);
        out += '}';
      }
    }
    out += "]}";
  }
  out += "\n  ],\n  \"counters\": [";
  for (std::size_t id = 0; id < counter_names_.size(); ++id) {
    out += id == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, counter_names_[id]);
    out += "\", \"per_rank\": ";
    append_int_array(out, counter_values_[id]);
    out += ", \"total\": ";
    std::uint64_t total = 0;
    for (const std::uint64_t v : counter_values_[id]) total += v;
    out += std::to_string(total);
    out += '}';
  }
  out += counter_names_.empty() ? "],\n" : "\n  ],\n";

  std::vector<std::uint64_t> flops;
  std::vector<std::uint64_t> mem_bytes;
  std::vector<std::uint64_t> messages_sent;
  std::vector<std::uint64_t> bytes_sent;
  for (int r = 0; r < nranks_; ++r) {
    RankCounters c = machine.counters(r);
    if (!banked_counters_.empty()) {
      const RankCounters& bank = banked_counters_[static_cast<std::size_t>(r)];
      c.flops += bank.flops;
      c.mem_bytes += bank.mem_bytes;
      c.messages_sent += bank.messages_sent;
      c.bytes_sent += bank.bytes_sent;
    }
    flops.push_back(c.flops);
    mem_bytes.push_back(c.mem_bytes);
    messages_sent.push_back(c.messages_sent);
    bytes_sent.push_back(c.bytes_sent);
  }
  out += "  \"rank_counters\": {\n    \"flops\": ";
  append_int_array(out, flops);
  out += ",\n    \"mem_bytes\": ";
  append_int_array(out, mem_bytes);
  out += ",\n    \"messages_sent\": ";
  append_int_array(out, messages_sent);
  out += ",\n    \"bytes_sent\": ";
  append_int_array(out, bytes_sent);
  out += "\n  }\n";
  return out;
}

void Metrics::write_report(
    std::ostream& os, const Machine& machine,
    const std::vector<std::pair<std::string, std::string>>& run_info) {
  std::string out;
  out += "{\n  \"schema\": \"ptilu-report-v2\",\n  \"ranks\": ";
  out += std::to_string(nranks_);
  out += ",\n  \"run\": {";
  for (std::size_t i = 0; i < run_info.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_escaped(out, run_info[i].first);
    out += "\": ";
    out += run_info[i].second;  // raw JSON value, caller-formatted
  }
  out += run_info.empty() ? "},\n" : "\n  },\n";
  out += payload_json(machine);
  out += "}\n";
  os << out;
}

void Metrics::write_report_file(
    const std::string& path, const Machine& machine,
    const std::vector<std::pair<std::string, std::string>>& run_info) {
  std::ofstream file(path);
  PTILU_CHECK(file.good(), "cannot open report file " << path);
  write_report(file, machine, run_info);
  file.flush();
  PTILU_CHECK(file.good(), "failed writing report file " << path);
}

std::uint64_t Metrics::payload_checksum(const Machine& machine) {
  return fnv1a(payload_json(machine));
}

void Metrics::write_straggler_table(std::ostream& os, const Machine& machine) {
  flush(machine);
  const auto rows = phase_rows();
  if (rows.empty()) {
    os << "(no recorded activity)\n";
    return;
  }
  const double total = total_elapsed();
  Table table({"phase", "modeled s", "%", "steps", "critical rank", "crit %",
               "imbalance", "idle %"});
  for (const PhaseRow& row : rows) {
    const PhaseMetrics& pm = *row.stats;
    const int crit = pm.critical_rank();
    double crit_share = 0.0;
    if (crit >= 0 && pm.elapsed > 0.0) {
      crit_share = 100.0 * pm.critical_s[static_cast<std::size_t>(crit)] / pm.elapsed;
    }
    double busy_sum = 0.0;
    for (const double b : pm.busy) busy_sum += b;
    const double capacity = static_cast<double>(nranks_) * pm.elapsed;
    const double idle_pct =
        capacity > 0.0 ? 100.0 * (capacity - busy_sum) / capacity : 0.0;
    table.row()
        .cell(row.name)
        .cell(pm.elapsed, 6)
        .cell(total > 0.0 ? 100.0 * pm.elapsed / total : 0.0, 1)
        .cell(static_cast<long long>(pm.supersteps))
        .cell(crit >= 0 ? std::to_string(crit) : std::string("-"))
        .cell(crit_share, 1)
        .cell(pm.imbalance(), 2)
        .cell(idle_pct, 1);
  }
  table.print(os);
}

void Metrics::clear() {
  phase_names_.clear();
  phase_ids_.clear();
  phases_.clear();
  phase_stack_.clear();
  phase_names_.emplace_back();
  phase_ids_.emplace("", 0);
  phases_.emplace_back();
  phase_stack_.push_back(0);
  ensure_storage(0);
  last_active_ = 0;
  last_horizon_ = 0.0;
  counter_names_.clear();
  counter_ids_.clear();
  counter_values_.clear();
  banked_counters_.clear();
}

}  // namespace ptilu::sim
