// Coarsening phase: heavy-edge matching and graph contraction.
#include <algorithm>
#include <numeric>

#include "internal.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu::part_detail {

IdxVec heavy_edge_matching(const Graph& g, Rng& rng) {
  IdxVec order(g.n);
  std::iota(order.begin(), order.end(), 0);
  for (idx i = g.n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.next_index(i + 1)]);
  }

  IdxVec match(g.n);
  std::iota(match.begin(), match.end(), 0);
  std::vector<bool> matched(g.n, false);
  for (const idx v : order) {
    if (matched[v]) continue;
    idx best = -1;
    idx best_weight = -1;
    for (nnz_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
      const idx u = g.adjncy[k];
      if (matched[u]) continue;
      if (g.ewgt[k] > best_weight) {
        best_weight = g.ewgt[k];
        best = u;
      }
    }
    matched[v] = true;
    if (best >= 0) {
      matched[best] = true;
      match[v] = best;
      match[best] = v;
    }
  }
  return match;
}

CoarseResult contract(const Graph& g, const IdxVec& match) {
  CoarseResult result;
  result.cmap.assign(g.n, -1);
  idx coarse_n = 0;
  for (idx v = 0; v < g.n; ++v) {
    if (result.cmap[v] >= 0) continue;
    const idx u = match[v];
    result.cmap[v] = coarse_n;
    result.cmap[u] = coarse_n;  // u == v when unmatched
    ++coarse_n;
  }

  Graph& c = result.graph;
  c.n = coarse_n;
  c.xadj.assign(coarse_n + 1, 0);
  c.vwgt.assign(coarse_n, 0);
  for (idx v = 0; v < g.n; ++v) c.vwgt[result.cmap[v]] += g.vwgt[v];

  // Accumulate coarse edges with a per-coarse-vertex dense scratch keyed by
  // neighbor coarse id (reset lazily via a stamp array).
  IdxVec stamp(coarse_n, -1);
  IdxVec weight_at(coarse_n, 0);
  std::vector<IdxVec> fine_of(coarse_n);
  for (idx v = 0; v < g.n; ++v) fine_of[result.cmap[v]].push_back(v);

  std::vector<std::pair<idx, idx>> row;  // (neighbor, weight)
  for (idx cv = 0; cv < coarse_n; ++cv) {
    row.clear();
    for (const idx v : fine_of[cv]) {
      for (nnz_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
        const idx cu = result.cmap[g.adjncy[k]];
        if (cu == cv) continue;  // internal edge collapses away
        if (stamp[cu] != cv) {
          stamp[cu] = cv;
          weight_at[cu] = 0;
          row.emplace_back(cu, 0);
        }
        weight_at[cu] += g.ewgt[k];
      }
    }
    std::sort(row.begin(), row.end());
    for (auto& [cu, w] : row) {
      w = weight_at[cu];
      c.adjncy.push_back(cu);
      c.ewgt.push_back(w);
    }
    c.xadj[cv + 1] = static_cast<nnz_t>(c.adjncy.size());
  }
  return result;
}

}  // namespace ptilu::part_detail
