// k-way driver: recursive multilevel bisection on induced subgraphs,
// plus the trivial baseline partitioners and quality metrics.
#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "internal.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

using part_detail::multilevel_bisect;

namespace {

/// Induced subgraph over the given vertices (ascending). Returns the graph
/// plus the vertex list mapping local ids back to g's ids.
Graph induced_subgraph(const Graph& g, const IdxVec& vertices, IdxVec& local_of) {
  Graph sub;
  sub.n = static_cast<idx>(vertices.size());
  sub.xadj.assign(sub.n + 1, 0);
  sub.vwgt.resize(sub.n);
  for (idx lv = 0; lv < sub.n; ++lv) {
    local_of[vertices[lv]] = lv;
    sub.vwgt[lv] = g.vwgt[vertices[lv]];
  }
  for (idx lv = 0; lv < sub.n; ++lv) {
    const idx v = vertices[lv];
    for (nnz_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
      const idx lu = local_of[g.adjncy[k]];
      if (lu >= 0) {
        sub.adjncy.push_back(lu);
        sub.ewgt.push_back(g.ewgt[k]);
      }
    }
    sub.xadj[lv + 1] = static_cast<nnz_t>(sub.adjncy.size());
  }
  return sub;
}

void recursive_partition(const Graph& g, const IdxVec& vertices, idx first_part,
                         idx nparts, const PartitionOptions& opts, Rng& rng,
                         IdxVec& local_of, IdxVec& part) {
  if (nparts == 1) {
    for (const idx v : vertices) part[v] = first_part;
    return;
  }
  const idx left_parts = nparts / 2;
  const double fraction = static_cast<double>(left_parts) / static_cast<double>(nparts);

  Graph sub = induced_subgraph(g, vertices, local_of);
  const auto side = multilevel_bisect(sub, fraction, opts, rng);
  // Reset scratch entries before recursing.
  for (const idx v : vertices) local_of[v] = -1;

  IdxVec left, right;
  for (idx lv = 0; lv < sub.n; ++lv) {
    (side[lv] == 0 ? left : right).push_back(vertices[lv]);
  }
  // Degenerate splits can occur on tiny graphs; patch by stealing a vertex.
  if (left.empty() && !right.empty()) {
    left.push_back(right.back());
    right.pop_back();
  }
  if (right.empty() && !left.empty()) {
    right.push_back(left.back());
    left.pop_back();
  }
  recursive_partition(g, left, first_part, left_parts, opts, rng, local_of, part);
  recursive_partition(g, right, first_part + left_parts, nparts - left_parts, opts, rng,
                      local_of, part);
}

/// Greedy k-way boundary refinement: repeatedly move boundary vertices to
/// the neighboring part that most reduces the cut, subject to a hard
/// per-part weight ceiling; vertices in overweight parts may move at a
/// cut loss to restore balance. A few passes repair the imbalance that
/// recursive bisection accumulates and shave the cut further.
void kway_refine(const Graph& g, Partition& p, double tol, int passes) {
  const idx nparts = p.nparts;
  std::vector<long long> weight(nparts, 0);
  for (idx v = 0; v < g.n; ++v) weight[p.part[v]] += g.vwgt[v];
  const double ideal = static_cast<double>(g.total_vwgt()) / static_cast<double>(nparts);
  const long long max_weight =
      std::max(static_cast<long long>(tol * ideal), static_cast<long long>(ideal) + 1);

  std::vector<long long> conn(nparts, 0);
  IdxVec touched;
  for (int pass = 0; pass < passes; ++pass) {
    bool moved_any = false;
    for (idx v = 0; v < g.n; ++v) {
      const idx from = p.part[v];
      touched.clear();
      for (nnz_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
        const idx q = p.part[g.adjncy[k]];
        if (conn[q] == 0) touched.push_back(q);
        conn[q] += g.ewgt[k];
      }
      const bool overweight = weight[from] > max_weight;
      idx best = -1;
      long long best_gain = overweight ? std::numeric_limits<long long>::min() : 0;
      for (const idx q : touched) {
        if (q == from) continue;
        if (weight[q] + g.vwgt[v] > max_weight) continue;
        const long long gain = conn[q] - conn[from];
        // Positive gain always wins; zero gain wins when it improves balance;
        // overweight sources accept the least-bad negative gain.
        const bool improves =
            gain > best_gain ||
            (gain == best_gain && best >= 0 && weight[q] < weight[best]) ||
            (gain == 0 && best < 0 && !overweight && weight[from] > weight[q] + g.vwgt[v]);
        if (improves && (gain > 0 || overweight ||
                         (gain == 0 && weight[from] > weight[q] + g.vwgt[v]))) {
          best = q;
          best_gain = gain;
        }
      }
      for (const idx q : touched) conn[q] = 0;
      if (best >= 0) {
        weight[from] -= g.vwgt[v];
        weight[best] += g.vwgt[v];
        p.part[v] = best;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
}

}  // namespace

void Partition::validate(idx n) const {
  PTILU_CHECK(part.size() == static_cast<std::size_t>(n), "partition size mismatch");
  for (const idx p : part) {
    PTILU_CHECK(p >= 0 && p < nparts, "part id " << p << " out of range");
  }
}

Partition partition_kway(const Graph& g, idx nparts, const PartitionOptions& opts) {
  PTILU_CHECK(nparts >= 1, "nparts must be positive");
  PTILU_CHECK(g.n >= nparts, "cannot split " << g.n << " vertices into " << nparts << " parts");
  Partition result;
  result.nparts = nparts;
  result.part.assign(g.n, -1);

  Rng rng(opts.seed);
  IdxVec all(g.n);
  std::iota(all.begin(), all.end(), 0);
  IdxVec local_of(g.n, -1);
  // Per-bisection imbalance compounds down the recursion tree, so each
  // split gets the depth-adjusted tolerance tol^(1/levels); the final
  // k-way refinement then polishes at the full tolerance.
  PartitionOptions split_opts = opts;
  const double levels = std::max(1.0, std::ceil(std::log2(static_cast<double>(nparts))));
  split_opts.imbalance_tol = std::pow(opts.imbalance_tol, 1.0 / levels);
  recursive_partition(g, all, 0, nparts, split_opts, rng, local_of, result.part);
  kway_refine(g, result, opts.imbalance_tol, 2 * opts.refine_passes);
  result.validate(g.n);
  return result;
}

Partition partition_block(const Graph& g, idx nparts) {
  PTILU_CHECK(nparts >= 1 && g.n >= nparts, "bad nparts");
  Partition result;
  result.nparts = nparts;
  result.part.resize(g.n);
  for (idx v = 0; v < g.n; ++v) {
    result.part[v] = static_cast<idx>((static_cast<long long>(v) * nparts) / g.n);
  }
  return result;
}

Partition partition_random(const Graph& g, idx nparts, std::uint64_t seed) {
  PTILU_CHECK(nparts >= 1 && g.n >= nparts, "bad nparts");
  Partition result;
  result.nparts = nparts;
  result.part.resize(g.n);
  for (idx v = 0; v < g.n; ++v) result.part[v] = static_cast<idx>(v % nparts);
  Rng rng(seed);
  for (idx v = g.n - 1; v > 0; --v) {
    std::swap(result.part[v], result.part[rng.next_index(v + 1)]);
  }
  return result;
}

long long edge_cut(const Graph& g, const Partition& p) {
  long long cut = 0;
  for (idx v = 0; v < g.n; ++v) {
    for (nnz_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
      if (p.part[g.adjncy[k]] != p.part[v]) cut += g.ewgt[k];
    }
  }
  return cut / 2;
}

double imbalance(const Graph& g, const Partition& p) {
  std::vector<long long> weight(p.nparts, 0);
  for (idx v = 0; v < g.n; ++v) weight[p.part[v]] += g.vwgt[v];
  const long long heaviest = *std::max_element(weight.begin(), weight.end());
  const double ideal = static_cast<double>(g.total_vwgt()) / static_cast<double>(p.nparts);
  return static_cast<double>(heaviest) / ideal;
}

idx count_interface(const Graph& g, const Partition& p) {
  idx count = 0;
  for (idx v = 0; v < g.n; ++v) {
    for (const idx u : g.neighbors(v)) {
      if (p.part[u] != p.part[v]) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace ptilu
