// Internal pieces of the multilevel partitioner, exposed for unit testing.
#pragma once

#include "ptilu/graph/graph.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu::part_detail {

/// Heavy-edge matching: returns match[v] = partner (or v itself when
/// unmatched). Visits vertices in a random order; each unmatched vertex
/// grabs its heaviest-edge unmatched neighbor.
IdxVec heavy_edge_matching(const Graph& g, Rng& rng);

/// Contract a matching: cmap[v] = coarse vertex id; returns the coarse
/// graph with summed vertex and edge weights (internal edges dropped).
struct CoarseResult {
  Graph graph;
  IdxVec cmap;  // fine vertex -> coarse vertex
};
CoarseResult contract(const Graph& g, const IdxVec& match);

/// Greedy region-growing bisection of a (small) graph: grows side 0 from a
/// pseudo-peripheral seed until it holds ~target_fraction of total weight.
/// Returns side[v] in {0, 1}.
std::vector<std::uint8_t> grow_bisection(const Graph& g, double target_fraction, Rng& rng);

/// Boundary FM refinement of a bisection. side is updated in place.
/// target0 is the desired weight of side 0; max imbalance per side is
/// tol × its target.
void fm_refine(const Graph& g, std::vector<std::uint8_t>& side, long long target0,
               double tol, int passes);

/// Edge cut of a bisection.
long long bisection_cut(const Graph& g, const std::vector<std::uint8_t>& side);

/// Multilevel bisection driver: coarsen, grow, refine back up.
std::vector<std::uint8_t> multilevel_bisect(const Graph& g, double target_fraction,
                                            const PartitionOptions& opts, Rng& rng);

}  // namespace ptilu::part_detail
