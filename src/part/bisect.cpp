// Initial bisection (greedy region growing) and FM boundary refinement.
#include <algorithm>
#include <limits>
#include <queue>

#include "internal.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu::part_detail {

namespace {

/// BFS from v; returns the last vertex reached (approximately peripheral).
idx bfs_far_vertex(const Graph& g, idx start) {
  std::vector<bool> visited(g.n, false);
  std::queue<idx> queue;
  queue.push(start);
  visited[start] = true;
  idx last = start;
  while (!queue.empty()) {
    const idx v = queue.front();
    queue.pop();
    last = v;
    for (const idx u : g.neighbors(v)) {
      if (!visited[u]) {
        visited[u] = true;
        queue.push(u);
      }
    }
  }
  return last;
}

}  // namespace

std::vector<std::uint8_t> grow_bisection(const Graph& g, double target_fraction, Rng& rng) {
  PTILU_CHECK(g.n > 0, "cannot bisect an empty graph");
  const long long total = g.total_vwgt();
  const long long target0 = static_cast<long long>(target_fraction * static_cast<double>(total));

  // Pseudo-peripheral start: two BFS hops from a random vertex.
  const idx seed_vertex = bfs_far_vertex(g, bfs_far_vertex(g, rng.next_index(g.n)));

  std::vector<std::uint8_t> side(g.n, 1);
  std::vector<bool> queued(g.n, false);
  std::queue<idx> frontier;
  long long weight0 = 0;

  auto absorb = [&](idx v) {
    side[v] = 0;
    weight0 += g.vwgt[v];
    for (const idx u : g.neighbors(v)) {
      if (!queued[u] && side[u] == 1) {
        queued[u] = true;
        frontier.push(u);
      }
    }
  };

  queued[seed_vertex] = true;
  absorb(seed_vertex);
  idx scan = 0;  // fallback cursor for disconnected graphs
  while (weight0 < target0) {
    idx next = -1;
    while (!frontier.empty()) {
      const idx v = frontier.front();
      frontier.pop();
      if (side[v] == 1) {
        next = v;
        break;
      }
    }
    if (next < 0) {
      // Disconnected: restart growth from the next untouched vertex.
      while (scan < g.n && side[scan] == 0) ++scan;
      if (scan == g.n) break;
      next = scan;
    }
    absorb(next);
  }
  return side;
}

long long bisection_cut(const Graph& g, const std::vector<std::uint8_t>& side) {
  long long cut = 0;
  for (idx v = 0; v < g.n; ++v) {
    for (nnz_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
      if (side[g.adjncy[k]] != side[v]) cut += g.ewgt[k];
    }
  }
  return cut / 2;
}

void fm_refine(const Graph& g, std::vector<std::uint8_t>& side, long long target0,
               double tol, int passes) {
  const long long total = g.total_vwgt();
  const long long target1 = total - target0;
  // Allowed maxima; make sure at least one unit of slack exists so single
  // vertices can move on tiny/coarse graphs.
  long long max0 = std::max<long long>(static_cast<long long>(tol * static_cast<double>(target0)),
                                       target0 + 1);
  long long max1 = std::max<long long>(static_cast<long long>(tol * static_cast<double>(target1)),
                                       target1 + 1);

  std::vector<long long> gain(g.n);
  auto compute_gain = [&](idx v) {
    long long external = 0, internal = 0;
    for (nnz_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
      if (side[g.adjncy[k]] != side[v]) external += g.ewgt[k];
      else internal += g.ewgt[k];
    }
    return external - internal;
  };

  long long weight0 = 0;
  for (idx v = 0; v < g.n; ++v) {
    if (side[v] == 0) weight0 += g.vwgt[v];
  }

  for (int pass = 0; pass < passes; ++pass) {
    for (idx v = 0; v < g.n; ++v) gain[v] = compute_gain(v);

    // Lazy max-heap of (gain, vertex); stale entries skipped on pop.
    std::priority_queue<std::pair<long long, idx>> heap;
    for (idx v = 0; v < g.n; ++v) {
      for (const idx u : g.neighbors(v)) {
        if (side[u] != side[v]) {  // boundary vertex
          heap.emplace(gain[v], v);
          break;
        }
      }
    }

    std::vector<bool> moved(g.n, false);
    struct Move {
      idx v;
      long long cut_after;
    };
    std::vector<Move> history;
    long long cut = bisection_cut(g, side);
    long long best_cut = cut;
    std::size_t best_prefix = 0;

    while (!heap.empty()) {
      const auto [top_gain, v] = heap.top();
      heap.pop();
      if (moved[v] || top_gain != gain[v]) continue;  // stale heap entry
      // Balance check for moving v to the other side.
      const long long w = g.vwgt[v];
      const long long new_w0 = side[v] == 0 ? weight0 - w : weight0 + w;
      if (new_w0 > max0 || (total - new_w0) > max1) continue;

      moved[v] = true;
      side[v] = static_cast<std::uint8_t>(1 - side[v]);
      weight0 = new_w0;
      cut -= gain[v];
      history.push_back({v, cut});
      if (cut < best_cut) {
        best_cut = cut;
        best_prefix = history.size();
      }
      for (nnz_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
        const idx u = g.adjncy[k];
        if (moved[u]) continue;
        // v flipped sides: edges to u change internal/external status.
        gain[u] += (side[u] == side[v]) ? -2LL * g.ewgt[k] : 2LL * g.ewgt[k];
        heap.emplace(gain[u], u);
      }
      // Stop a pass after a long streak without improvement.
      if (history.size() - best_prefix > 64) break;
    }

    // Roll back moves past the best prefix.
    for (std::size_t i = history.size(); i > best_prefix; --i) {
      const idx v = history[i - 1].v;
      weight0 += side[v] == 0 ? g.vwgt[v] : -g.vwgt[v];
      side[v] = static_cast<std::uint8_t>(1 - side[v]);
    }
    if (best_prefix == 0) break;  // pass made no progress
  }
}

std::vector<std::uint8_t> multilevel_bisect(const Graph& g, double target_fraction,
                                            const PartitionOptions& opts, Rng& rng) {
  const long long target0 =
      static_cast<long long>(target_fraction * static_cast<double>(g.total_vwgt()));
  if (g.n <= opts.coarsen_to) {
    auto side = grow_bisection(g, target_fraction, rng);
    fm_refine(g, side, target0, opts.imbalance_tol, opts.refine_passes);
    return side;
  }

  const IdxVec match = heavy_edge_matching(g, rng);
  CoarseResult coarse = contract(g, match);
  if (coarse.graph.n >= g.n * 95 / 100) {
    // Coarsening stalled (e.g. star graphs): solve at this size directly.
    auto side = grow_bisection(g, target_fraction, rng);
    fm_refine(g, side, target0, opts.imbalance_tol, opts.refine_passes);
    return side;
  }

  const auto coarse_side = multilevel_bisect(coarse.graph, target_fraction, opts, rng);

  std::vector<std::uint8_t> side(g.n);
  for (idx v = 0; v < g.n; ++v) side[v] = coarse_side[coarse.cmap[v]];
  fm_refine(g, side, target0, opts.imbalance_tol, opts.refine_passes);
  return side;
}

}  // namespace ptilu::part_detail
