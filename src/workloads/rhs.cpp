#include "ptilu/workloads/rhs.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ptilu/sparse/spmv.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu::workloads {

RealVec rhs_all_ones_solution(const Csr& a) {
  RealVec ones(a.n_cols, 1.0);
  RealVec b(a.n_rows, 0.0);
  spmv(a, ones, b);
  return b;
}

RealVec random_vector(idx n, std::uint64_t seed) {
  Rng rng(seed);
  RealVec v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

MatrixStats matrix_stats(const Csr& a) {
  MatrixStats stats;
  stats.n = a.n_rows;
  stats.nnz = a.nnz();
  stats.avg_row_nnz = a.n_rows > 0
                          ? static_cast<real>(a.nnz()) / static_cast<real>(a.n_rows)
                          : 0.0;
  for (idx i = 0; i < a.n_rows; ++i) {
    stats.max_row_nnz = std::max(stats.max_row_nnz, a.row_nnz(i));
  }
  const Csr t = transpose(a);
  stats.symmetry_gap = max_abs_diff(a, t);
  stats.has_full_diagonal = true;
  for (idx i = 0; i < std::min(a.n_rows, a.n_cols); ++i) {
    if (a.at(i, i) == 0.0) {
      stats.has_full_diagonal = false;
      break;
    }
  }
  return stats;
}

std::string describe(const MatrixStats& stats) {
  std::ostringstream oss;
  oss << "n=" << stats.n << " nnz=" << stats.nnz << " avg_row=" << stats.avg_row_nnz
      << " max_row=" << stats.max_row_nnz << " sym_gap=" << stats.symmetry_gap
      << " full_diag=" << (stats.has_full_diagonal ? "yes" : "no");
  return oss.str();
}

}  // namespace ptilu::workloads
