#include "ptilu/workloads/grids.hpp"

#include <cmath>

#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu::workloads {

Csr convection_diffusion_2d(idx nx, idx ny, real cx, real cy) {
  PTILU_CHECK(nx >= 1 && ny >= 1, "grid must be at least 1x1");
  const real h = 1.0 / static_cast<real>(nx + 1);
  auto id = [nx](idx x, idx y) { return y * nx + x; };

  CooBuilder b(nx * ny, nx * ny);
  b.reserve(static_cast<std::size_t>(nx) * ny * 5);
  // Centered differences: -Δu contributes (4, -1, -1, -1, -1)/h²; the
  // convection term c·∇u contributes ±c/(2h) on the east/west (north/south)
  // neighbors. We scale the whole row by h² so the diagonal is O(1).
  const real west = -1.0 - cx * h / 2.0;
  const real east = -1.0 + cx * h / 2.0;
  const real south = -1.0 - cy * h / 2.0;
  const real north = -1.0 + cy * h / 2.0;
  for (idx y = 0; y < ny; ++y) {
    for (idx x = 0; x < nx; ++x) {
      const idx row = id(x, y);
      b.add(row, row, 4.0);
      if (x > 0) b.add(row, id(x - 1, y), west);
      if (x + 1 < nx) b.add(row, id(x + 1, y), east);
      if (y > 0) b.add(row, id(x, y - 1), south);
      if (y + 1 < ny) b.add(row, id(x, y + 1), north);
    }
  }
  return b.to_csr();
}

Csr poisson_3d(idx nx, idx ny, idx nz) {
  PTILU_CHECK(nx >= 1 && ny >= 1 && nz >= 1, "grid must be at least 1x1x1");
  auto id = [nx, ny](idx x, idx y, idx z) { return (z * ny + y) * nx + x; };
  CooBuilder b(nx * ny * nz, nx * ny * nz);
  b.reserve(static_cast<std::size_t>(nx) * ny * nz * 7);
  for (idx z = 0; z < nz; ++z) {
    for (idx y = 0; y < ny; ++y) {
      for (idx x = 0; x < nx; ++x) {
        const idx row = id(x, y, z);
        b.add(row, row, 6.0);
        if (x > 0) b.add(row, id(x - 1, y, z), -1.0);
        if (x + 1 < nx) b.add(row, id(x + 1, y, z), -1.0);
        if (y > 0) b.add(row, id(x, y - 1, z), -1.0);
        if (y + 1 < ny) b.add(row, id(x, y + 1, z), -1.0);
        if (z > 0) b.add(row, id(x, y, z - 1), -1.0);
        if (z + 1 < nz) b.add(row, id(x, y, z + 1), -1.0);
      }
    }
  }
  return b.to_csr();
}

Csr anisotropic_2d(idx nx, idx ny, real eps) {
  PTILU_CHECK(nx >= 1 && ny >= 1, "grid must be at least 1x1");
  PTILU_CHECK(eps > 0, "eps must be positive");
  auto id = [nx](idx x, idx y) { return y * nx + x; };
  CooBuilder b(nx * ny, nx * ny);
  for (idx y = 0; y < ny; ++y) {
    for (idx x = 0; x < nx; ++x) {
      const idx row = id(x, y);
      b.add(row, row, 2.0 * eps + 2.0);
      if (x > 0) b.add(row, id(x - 1, y), -eps);
      if (x + 1 < nx) b.add(row, id(x + 1, y), -eps);
      if (y > 0) b.add(row, id(x, y - 1), -1.0);
      if (y + 1 < ny) b.add(row, id(x, y + 1), -1.0);
    }
  }
  return b.to_csr();
}

Csr jump_coefficient_2d(idx nx, idx ny, real contrast, std::uint64_t seed) {
  PTILU_CHECK(nx >= 1 && ny >= 1, "grid must be at least 1x1");
  PTILU_CHECK(contrast >= 0, "contrast must be non-negative");
  Rng rng(seed);
  // Cell-centered log-uniform coefficients on an (nx+1) x (ny+1) cell grid.
  const idx cx_count = nx + 1;
  const idx cy_count = ny + 1;
  RealVec sigma(static_cast<std::size_t>(cx_count) * cy_count);
  for (auto& s : sigma) s = std::pow(10.0, rng.uniform(0.0, contrast));
  auto cell = [&](idx x, idx y) { return sigma[static_cast<std::size_t>(y) * cx_count + x]; };
  // Face coefficient between nodes = harmonic mean of the two adjacent cells
  // above/below the face (simple vertical averaging keeps this compact).
  auto face_x = [&](idx x, idx y) {  // face between (x,y) and (x+1,y)
    const real a = cell(x + 1, y);
    const real b2 = cell(x + 1, y + 1);
    return 2.0 * a * b2 / (a + b2);
  };
  auto face_y = [&](idx x, idx y) {  // face between (x,y) and (x,y+1)
    const real a = cell(x, y + 1);
    const real b2 = cell(x + 1, y + 1);
    return 2.0 * a * b2 / (a + b2);
  };

  auto id = [nx](idx x, idx y) { return y * nx + x; };
  CooBuilder b(nx * ny, nx * ny);
  for (idx y = 0; y < ny; ++y) {
    for (idx x = 0; x < nx; ++x) {
      const idx row = id(x, y);
      real diag = 0.0;
      if (x > 0) {
        const real w = face_x(x - 1, y);
        b.add(row, id(x - 1, y), -w);
        diag += w;
      } else {
        diag += face_x(x, y);  // Dirichlet boundary face
      }
      if (x + 1 < nx) {
        const real w = face_x(x, y);
        b.add(row, id(x + 1, y), -w);
        diag += w;
      } else {
        diag += face_x(x - 1 >= 0 ? x - 1 : 0, y);
      }
      if (y > 0) {
        const real w = face_y(x, y - 1);
        b.add(row, id(x, y - 1), -w);
        diag += w;
      } else {
        diag += face_y(x, y);
      }
      if (y + 1 < ny) {
        const real w = face_y(x, y);
        b.add(row, id(x, y + 1), -w);
        diag += w;
      } else {
        diag += face_y(x, y - 1 >= 0 ? y - 1 : 0);
      }
      b.add(row, row, diag);
    }
  }
  return b.to_csr();
}

}  // namespace ptilu::workloads
