#include "ptilu/workloads/torso.hpp"

#include <array>
#include <cmath>

#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu::workloads {

void unit_hex_stiffness(real k[8][8]) {
  // Trilinear shape functions on [0,1]^3; vertex v has coordinates
  // ((v&1), (v>>1)&1, (v>>2)&1). K_ij = ∫ ∇φ_i · ∇φ_j, evaluated with
  // 2-point Gauss quadrature per axis (exact for this integrand).
  const real gp[2] = {0.5 - 0.5 / std::sqrt(3.0), 0.5 + 0.5 / std::sqrt(3.0)};
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) k[i][j] = 0.0;
  }
  auto shape_grad = [](int v, real x, real y, real z, real grad[3]) {
    const real vx = static_cast<real>(v & 1);
    const real vy = static_cast<real>((v >> 1) & 1);
    const real vz = static_cast<real>((v >> 2) & 1);
    // φ_v = sx(x)·sy(y)·sz(z) with s(t) = t or (1-t) per vertex coordinate.
    const real sx = vx > 0 ? x : 1.0 - x;
    const real sy = vy > 0 ? y : 1.0 - y;
    const real sz = vz > 0 ? z : 1.0 - z;
    const real dx = vx > 0 ? 1.0 : -1.0;
    const real dy = vy > 0 ? 1.0 : -1.0;
    const real dz = vz > 0 ? 1.0 : -1.0;
    grad[0] = dx * sy * sz;
    grad[1] = sx * dy * sz;
    grad[2] = sx * sy * dz;
  };
  for (const real x : gp) {
    for (const real y : gp) {
      for (const real z : gp) {
        real grads[8][3];
        for (int v = 0; v < 8; ++v) shape_grad(v, x, y, z, grads[v]);
        const real weight = 1.0 / 8.0;  // 8 quadrature points, unit volume
        for (int i = 0; i < 8; ++i) {
          for (int j = 0; j < 8; ++j) {
            k[i][j] += weight * (grads[i][0] * grads[j][0] + grads[i][1] * grads[j][1] +
                                 grads[i][2] * grads[j][2]);
          }
        }
      }
    }
  }
}

namespace {

/// Tissue classification of a voxel center in normalized coordinates
/// u, v, w ∈ [-1, 1]. Simple ellipsoids approximating a thorax cross
/// section: the torso is an ellipsoid, the two lungs and the heart are
/// embedded ellipsoids, the spine a posterior cylinder.
enum class Tissue { kOutside, kMuscle, kLung, kBlood, kBone };

Tissue classify(real u, real v, real w) {
  // Torso: fat ellipsoid (slightly elliptical cross-section, full height).
  if (u * u / 0.9 + v * v / 0.7 + w * w / 1.05 > 1.0) return Tissue::kOutside;
  // Lungs: two ellipsoids left/right of the midline, mid-height.
  auto in_lung = [&](real cu) {
    const real du = (u - cu) / 0.32, dv = (v + 0.05) / 0.30, dw = (w - 0.05) / 0.55;
    return du * du + dv * dv + dw * dw < 1.0;
  };
  if (in_lung(-0.45) || in_lung(0.45)) return Tissue::kLung;
  // Heart: blood-filled ellipsoid slightly left of center.
  {
    const real du = (u + 0.12) / 0.22, dv = (v - 0.12) / 0.22, dw = (w - 0.08) / 0.26;
    if (du * du + dv * dv + dw * dw < 1.0) return Tissue::kBlood;
  }
  // Spine: posterior cylinder along the body axis.
  {
    const real du = u / 0.10, dv = (v + 0.52) / 0.10;
    if (du * du + dv * dv < 1.0) return Tissue::kBone;
  }
  return Tissue::kMuscle;
}

}  // namespace

TorsoMatrix fem_torso_3d(const TorsoOptions& opts) {
  PTILU_CHECK(opts.nx >= 2 && opts.ny >= 2 && opts.nz >= 2, "grid too small");
  const idx nx = opts.nx, ny = opts.ny, nz = opts.nz;
  Rng rng(opts.seed);

  // Classify voxels (cells). Cell (i,j,k) spans nodes (i..i+1, j..j+1, k..k+1)
  // of the (nx+1)(ny+1)(nz+1) node grid.
  const auto cell_count = static_cast<std::size_t>(nx) * ny * nz;
  std::vector<real> sigma(cell_count, 0.0);
  auto cell_id = [nx, ny](idx i, idx j, idx k) {
    return (static_cast<std::size_t>(k) * ny + j) * nx + i;
  };
  for (idx k = 0; k < nz; ++k) {
    for (idx j = 0; j < ny; ++j) {
      for (idx i = 0; i < nx; ++i) {
        const real u = 2.0 * (static_cast<real>(i) + 0.5) / static_cast<real>(nx) - 1.0;
        const real v = 2.0 * (static_cast<real>(j) + 0.5) / static_cast<real>(ny) - 1.0;
        const real w = 2.0 * (static_cast<real>(k) + 0.5) / static_cast<real>(nz) - 1.0;
        real s = 0.0;
        switch (classify(u, v, w)) {
          case Tissue::kOutside: s = 0.0; break;
          case Tissue::kMuscle: s = opts.sigma_muscle; break;
          case Tissue::kLung: s = opts.sigma_lung; break;
          case Tissue::kBlood: s = opts.sigma_blood; break;
          case Tissue::kBone: s = opts.sigma_bone; break;
        }
        if (s > 0.0) s *= rng.uniform(0.95, 1.05);  // mild tissue heterogeneity
        sigma[cell_id(i, j, k)] = s;
      }
    }
  }

  // Number the nodes that touch at least one inside cell.
  const idx nnx = nx + 1, nny = ny + 1, nnz_axis = nz + 1;
  auto node_id = [nnx, nny](idx i, idx j, idx k) {
    return (static_cast<std::size_t>(k) * nny + j) * nnx + i;
  };
  std::vector<idx> renumber(static_cast<std::size_t>(nnx) * nny * nnz_axis, -1);
  idx n_nodes = 0;
  for (idx k = 0; k < nz; ++k) {
    for (idx j = 0; j < ny; ++j) {
      for (idx i = 0; i < nx; ++i) {
        if (sigma[cell_id(i, j, k)] <= 0.0) continue;
        for (int c = 0; c < 8; ++c) {
          const idx ni = i + (c & 1), nj = j + ((c >> 1) & 1), nk = k + ((c >> 2) & 1);
          idx& slot = renumber[node_id(ni, nj, nk)];
          if (slot < 0) slot = n_nodes++;
        }
      }
    }
  }
  PTILU_CHECK(n_nodes > 0, "torso domain is empty — grid too coarse");

  real k_unit[8][8];
  unit_hex_stiffness(k_unit);

  CooBuilder builder(n_nodes, n_nodes);
  builder.reserve(static_cast<std::size_t>(n_nodes) * 27);
  for (idx k = 0; k < nz; ++k) {
    for (idx j = 0; j < ny; ++j) {
      for (idx i = 0; i < nx; ++i) {
        const real s = sigma[cell_id(i, j, k)];
        if (s <= 0.0) continue;
        std::array<idx, 8> nodes;
        for (int c = 0; c < 8; ++c) {
          nodes[c] = renumber[node_id(i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1))];
        }
        for (int a = 0; a < 8; ++a) {
          for (int b2 = 0; b2 < 8; ++b2) {
            builder.add(nodes[a], nodes[b2], s * k_unit[a][b2]);
          }
        }
      }
    }
  }
  // Ground the potential: the pure Neumann stiffness matrix is singular
  // (constants in the nullspace); a small mass-like shift makes it SPD,
  // mimicking the reference-electrode condition of the ECG problem.
  PTILU_CHECK(opts.ground_rel > 0.0, "grounding shift must be positive");
  const real ground = opts.ground_rel * opts.sigma_muscle;
  for (idx v = 0; v < n_nodes; ++v) builder.add(v, v, ground);

  TorsoMatrix result;
  result.a = builder.to_csr();
  result.n_nodes = n_nodes;
  return result;
}

}  // namespace ptilu::workloads
