#include "ptilu/workloads/stream.hpp"

#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu::workloads {

namespace {

/// Append one entry to a slab under construction.
void push_entry(Csr& slab, idx col, real value) {
  slab.col_idx.push_back(col);
  slab.values.push_back(value);
}

/// Per-voxel conductivity field of the torso-like operator: a pure
/// function of the voxel position (plus a stateless hash perturbation), so
/// any rank can evaluate any voxel without global state — the property
/// that makes the operator streamable.
struct TissueField {
  idx nx, ny, nz;
  std::uint64_t seed;
  real sigma_muscle, sigma_lung, sigma_blood, sigma_bone;

  explicit TissueField(const TorsoOptions& opts)
      : nx(opts.nx), ny(opts.ny), nz(opts.nz), seed(opts.seed),
        sigma_muscle(opts.sigma_muscle), sigma_lung(opts.sigma_lung),
        sigma_blood(opts.sigma_blood), sigma_bone(opts.sigma_bone) {}

  /// Conductivity at voxel (x, y, z); 0 means air (outside the torso).
  real sigma_at(idx x, idx y, idx z) const {
    // Voxel-center coordinates normalized to [-1, 1] per axis.
    const real gx = 2.0 * (static_cast<real>(x) + 0.5) / static_cast<real>(nx) - 1.0;
    const real gy = 2.0 * (static_cast<real>(y) + 0.5) / static_cast<real>(ny) - 1.0;
    const real gz = 2.0 * (static_cast<real>(z) + 0.5) / static_cast<real>(nz) - 1.0;
    const auto inside = [&](real cx, real cy, real cz, real ax, real ay, real az) {
      const real ex = (gx - cx) / ax;
      const real ey = (gy - cy) / ay;
      const real ez = (gz - cz) / az;
      return ex * ex + ey * ey + ez * ez <= 1.0;
    };
    if (!inside(0.0, 0.0, 0.0, 0.95, 0.80, 0.95)) return 0.0;  // air
    real sigma;
    if (inside(0.0, -0.58, 0.0, 0.10, 0.10, 1.0)) {
      sigma = sigma_bone;  // spine: a cylinder along z (az spans the torso)
    } else if (inside(0.08, 0.15, 0.05, 0.22, 0.25, 0.28)) {
      sigma = sigma_blood;  // heart chambers
    } else if (inside(-0.45, 0.10, 0.15, 0.28, 0.35, 0.50) ||
               inside(0.45, 0.10, 0.15, 0.28, 0.35, 0.50)) {
      sigma = sigma_lung;
    } else {
      sigma = sigma_muscle;
    }
    // Small deterministic per-voxel perturbation (+-5%), stateless so it is
    // identical regardless of which slab evaluates it.
    const std::uint64_t id =
        (static_cast<std::uint64_t>(z) * static_cast<std::uint64_t>(ny) +
         static_cast<std::uint64_t>(y)) * static_cast<std::uint64_t>(nx) +
        static_cast<std::uint64_t>(x);
    const real u = static_cast<real>(mix64(seed ^ (id + 1)) >> 11) * 0x1.0p-53;
    return sigma * (1.0 + 0.1 * (u - 0.5));
  }
};

/// The 6 face couplings of voxel (x, y, z) in ascending-column order
/// (z-1, y-1, x-1, x+1, y+1, z+1); 0 where there is no coupling (grid
/// wall or air neighbor — homogeneous Neumann either way). Shared by the
/// dense and streaming paths so both accumulate the diagonal from the
/// identical doubles in the identical order.
void face_weights(const TissueField& field, idx x, idx y, idx z, real w[6]) {
  const real sc = field.sigma_at(x, y, z);
  const auto harmonic = [&](real sn) {
    return sn > 0.0 ? 2.0 * sc * sn / (sc + sn) : 0.0;
  };
  w[0] = z > 0 ? harmonic(field.sigma_at(x, y, z - 1)) : 0.0;
  w[1] = y > 0 ? harmonic(field.sigma_at(x, y - 1, z)) : 0.0;
  w[2] = x > 0 ? harmonic(field.sigma_at(x - 1, y, z)) : 0.0;
  w[3] = x + 1 < field.nx ? harmonic(field.sigma_at(x + 1, y, z)) : 0.0;
  w[4] = y + 1 < field.ny ? harmonic(field.sigma_at(x, y + 1, z)) : 0.0;
  w[5] = z + 1 < field.nz ? harmonic(field.sigma_at(x, y, z + 1)) : 0.0;
}

}  // namespace

Csr convection_diffusion_2d_rows(idx nx, idx ny, real cx, real cy,
                                 idx row_begin, idx row_end) {
  PTILU_CHECK(nx >= 1 && ny >= 1, "grid must be at least 1x1");
  PTILU_CHECK(row_begin >= 0 && row_begin <= row_end && row_end <= nx * ny,
              "row range [" << row_begin << ", " << row_end
                            << ") out of bounds for n = " << nx * ny);
  // Identical constant expressions to convection_diffusion_2d, so slab
  // values reproduce the dense generator's doubles bit-for-bit.
  const real h = 1.0 / static_cast<real>(nx + 1);
  const real west = -1.0 - cx * h / 2.0;
  const real east = -1.0 + cx * h / 2.0;
  const real south = -1.0 - cy * h / 2.0;
  const real north = -1.0 + cy * h / 2.0;

  Csr slab(row_end - row_begin, nx * ny);
  slab.col_idx.reserve(static_cast<std::size_t>(row_end - row_begin) * 5);
  slab.values.reserve(static_cast<std::size_t>(row_end - row_begin) * 5);
  for (idx row = row_begin; row < row_end; ++row) {
    const idx x = row % nx;
    const idx y = row / nx;
    // Emit in ascending column order — exactly the order the dense
    // generator's CooBuilder sort leaves each (duplicate-free) row in.
    if (y > 0) push_entry(slab, row - nx, south);
    if (x > 0) push_entry(slab, row - 1, west);
    push_entry(slab, row, 4.0);
    if (x + 1 < nx) push_entry(slab, row + 1, east);
    if (y + 1 < ny) push_entry(slab, row + nx, north);
    slab.row_ptr[row - row_begin + 1] = static_cast<nnz_t>(slab.col_idx.size());
  }
  return slab;
}

Csr torso_fv_3d(const TorsoOptions& opts) {
  PTILU_CHECK(opts.nx >= 1 && opts.ny >= 1 && opts.nz >= 1,
              "grid must be at least 1x1x1");
  const TissueField field(opts);
  const idx n = opts.nx * opts.ny * opts.nz;
  const real ground = opts.ground_rel * opts.sigma_muscle;
  // Assembled independently of the streaming path (CooBuilder with
  // per-neighbor adds, like the other dense generators) so the slab
  // byte-compare test exercises the streamed emission, not a tautology.
  CooBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(n) * 7);
  real w[6];
  for (idx z = 0; z < opts.nz; ++z) {
    for (idx y = 0; y < opts.ny; ++y) {
      for (idx x = 0; x < opts.nx; ++x) {
        const idx row = (z * opts.ny + y) * opts.nx + x;
        if (field.sigma_at(x, y, z) <= 0.0) {
          b.add(row, row, 1.0);  // air voxel: identity row
          continue;
        }
        face_weights(field, x, y, z, w);
        const idx col[6] = {row - opts.nx * opts.ny, row - opts.nx, row - 1,
                            row + 1, row + opts.nx, row + opts.nx * opts.ny};
        real diag = ground;
        for (int k = 0; k < 6; ++k) {
          diag += w[k];
          if (w[k] > 0.0) b.add(row, col[k], -w[k]);
        }
        b.add(row, row, diag);
      }
    }
  }
  return b.to_csr();
}

Csr torso_fv_3d_rows(const TorsoOptions& opts, idx row_begin, idx row_end) {
  PTILU_CHECK(opts.nx >= 1 && opts.ny >= 1 && opts.nz >= 1,
              "grid must be at least 1x1x1");
  const idx n = opts.nx * opts.ny * opts.nz;
  PTILU_CHECK(row_begin >= 0 && row_begin <= row_end && row_end <= n,
              "row range [" << row_begin << ", " << row_end
                            << ") out of bounds for n = " << n);
  const TissueField field(opts);
  const real ground = opts.ground_rel * opts.sigma_muscle;
  Csr slab(row_end - row_begin, n);
  slab.col_idx.reserve(static_cast<std::size_t>(row_end - row_begin) * 7);
  slab.values.reserve(static_cast<std::size_t>(row_end - row_begin) * 7);
  real w[6];
  for (idx row = row_begin; row < row_end; ++row) {
    const idx x = row % opts.nx;
    const idx y = (row / opts.nx) % opts.ny;
    const idx z = row / (opts.nx * opts.ny);
    if (field.sigma_at(x, y, z) <= 0.0) {
      push_entry(slab, row, 1.0);
      slab.row_ptr[row - row_begin + 1] = static_cast<nnz_t>(slab.col_idx.size());
      continue;
    }
    face_weights(field, x, y, z, w);
    const idx col[6] = {row - opts.nx * opts.ny, row - opts.nx, row - 1,
                        row + 1, row + opts.nx, row + opts.nx * opts.ny};
    // Same accumulation order as the dense assembly, so the diagonal is
    // the identical double; columns interleave in ascending order around
    // the diagonal (w[0..2] below it, w[3..5] above).
    real diag = ground;
    for (int k = 0; k < 6; ++k) diag += w[k];
    for (int k = 0; k < 3; ++k) {
      if (w[k] > 0.0) push_entry(slab, col[k], -w[k]);
    }
    push_entry(slab, row, diag);
    for (int k = 3; k < 6; ++k) {
      if (w[k] > 0.0) push_entry(slab, col[k], -w[k]);
    }
    slab.row_ptr[row - row_begin + 1] = static_cast<nnz_t>(slab.col_idx.size());
  }
  return slab;
}

}  // namespace ptilu::workloads
