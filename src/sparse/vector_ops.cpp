#include "ptilu/sparse/vector_ops.hpp"

#include <cmath>

#include "ptilu/support/check.hpp"

namespace ptilu {

void axpy(real alpha, std::span<const real> x, std::span<real> y) {
  PTILU_ASSERT(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(real alpha, std::span<real> x) {
  for (real& v : x) v *= alpha;
}

real dot(std::span<const real> x, std::span<const real> y) {
  PTILU_ASSERT(x.size() == y.size(), "dot size mismatch");
  real acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

real norm2(std::span<const real> x) { return std::sqrt(dot(x, x)); }

real norm_inf(std::span<const real> x) {
  real acc = 0.0;
  for (const real v : x) acc = std::max(acc, std::abs(v));
  return acc;
}

real max_abs_diff(std::span<const real> x, std::span<const real> y) {
  PTILU_ASSERT(x.size() == y.size(), "max_abs_diff size mismatch");
  real acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc = std::max(acc, std::abs(x[i] - y[i]));
  return acc;
}

}  // namespace ptilu
