#include "ptilu/sparse/scaling.hpp"

#include <cmath>

#include "ptilu/support/check.hpp"

namespace ptilu {

RealVec Equilibration::unscale_solution(const RealVec& x_scaled) const {
  PTILU_CHECK(x_scaled.size() == col.size(), "solution size mismatch");
  RealVec x(x_scaled.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = col[i] * x_scaled[i];
  return x;
}

RealVec Equilibration::scale_rhs(const RealVec& b) const {
  PTILU_CHECK(b.size() == row.size(), "rhs size mismatch");
  RealVec out(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = row[i] * b[i];
  return out;
}

Equilibration equilibrate_rows(const Csr& a) {
  PTILU_CHECK(a.n_rows == a.n_cols, "equilibration needs a square matrix");
  Equilibration eq;
  eq.row.assign(a.n_rows, 1.0);
  eq.col.assign(a.n_cols, 1.0);
  eq.scaled = a;
  const RealVec norms = row_norms(a, 0);
  for (idx i = 0; i < a.n_rows; ++i) {
    PTILU_CHECK(norms[i] > 0.0, "row " << i << " is entirely zero");
    eq.row[i] = 1.0 / norms[i];
    for (nnz_t k = eq.scaled.row_ptr[i]; k < eq.scaled.row_ptr[i + 1]; ++k) {
      eq.scaled.values[k] *= eq.row[i];
    }
  }
  return eq;
}

Equilibration equilibrate(const Csr& a, int sweeps) {
  PTILU_CHECK(a.n_rows == a.n_cols, "equilibration needs a square matrix");
  PTILU_CHECK(sweeps >= 1, "need at least one sweep");
  Equilibration eq;
  eq.row.assign(a.n_rows, 1.0);
  eq.col.assign(a.n_cols, 1.0);
  eq.scaled = a;

  RealVec row_max(a.n_rows), col_max(a.n_cols);
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    std::fill(row_max.begin(), row_max.end(), 0.0);
    std::fill(col_max.begin(), col_max.end(), 0.0);
    for (idx i = 0; i < a.n_rows; ++i) {
      for (nnz_t k = eq.scaled.row_ptr[i]; k < eq.scaled.row_ptr[i + 1]; ++k) {
        const real v = std::abs(eq.scaled.values[k]);
        row_max[i] = std::max(row_max[i], v);
        col_max[eq.scaled.col_idx[k]] = std::max(col_max[eq.scaled.col_idx[k]], v);
      }
    }
    for (idx i = 0; i < a.n_rows; ++i) {
      PTILU_CHECK(row_max[i] > 0.0, "row " << i << " is entirely zero");
      PTILU_CHECK(col_max[i] > 0.0, "column " << i << " is entirely zero");
      // Ruiz damping: divide by the square roots so row and column scalings
      // converge jointly instead of fighting each other.
      row_max[i] = 1.0 / std::sqrt(row_max[i]);
      col_max[i] = 1.0 / std::sqrt(col_max[i]);
      eq.row[i] *= row_max[i];
      eq.col[i] *= col_max[i];
    }
    for (idx i = 0; i < a.n_rows; ++i) {
      for (nnz_t k = eq.scaled.row_ptr[i]; k < eq.scaled.row_ptr[i + 1]; ++k) {
        eq.scaled.values[k] *= row_max[i] * col_max[eq.scaled.col_idx[k]];
      }
    }
  }
  return eq;
}

}  // namespace ptilu
