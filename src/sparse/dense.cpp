#include "ptilu/sparse/dense.hpp"

#include <cmath>

#include "ptilu/support/check.hpp"

namespace ptilu {

Dense Dense::from_csr(const Csr& a) {
  Dense d(a.n_rows, a.n_cols);
  for (idx i = 0; i < a.n_rows; ++i) {
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      d(i, a.col_idx[k]) = a.values[k];
    }
  }
  return d;
}

void dense_lu_nopivot(Dense& a) {
  PTILU_CHECK(a.rows() == a.cols(), "dense LU needs a square matrix");
  const idx n = a.rows();
  for (idx k = 0; k < n; ++k) {
    const real pivot = a(k, k);
    PTILU_CHECK(pivot != 0.0, "zero pivot at step " << k << " in unpivoted dense LU");
    for (idx i = k + 1; i < n; ++i) {
      const real mult = a(i, k) / pivot;
      a(i, k) = mult;
      if (mult == 0.0) continue;
      for (idx j = k + 1; j < n; ++j) {
        a(i, j) -= mult * a(k, j);
      }
    }
  }
}

RealVec dense_lu_solve(const Dense& lu, const RealVec& b) {
  const idx n = lu.rows();
  PTILU_CHECK(b.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  RealVec x = b;
  // Forward substitution with unit lower-triangular L.
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < i; ++j) x[i] -= lu(i, j) * x[j];
  }
  // Backward substitution with U.
  for (idx i = n - 1; i >= 0; --i) {
    for (idx j = i + 1; j < n; ++j) x[i] -= lu(i, j) * x[j];
    PTILU_CHECK(lu(i, i) != 0.0, "zero diagonal in U at row " << i);
    x[i] /= lu(i, i);
  }
  return x;
}

RealVec dense_matvec(const Dense& a, const RealVec& x) {
  PTILU_CHECK(x.size() == static_cast<std::size_t>(a.cols()), "matvec size mismatch");
  RealVec y(a.rows(), 0.0);
  for (idx i = 0; i < a.rows(); ++i) {
    real acc = 0.0;
    for (idx j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

}  // namespace ptilu
