#include "ptilu/sparse/spmv.hpp"

#include "ptilu/support/check.hpp"

namespace ptilu {

void spmv(const Csr& a, std::span<const real> x, std::span<real> y) {
  PTILU_CHECK(x.size() == static_cast<std::size_t>(a.n_cols), "spmv: x size mismatch");
  PTILU_CHECK(y.size() == static_cast<std::size_t>(a.n_rows), "spmv: y size mismatch");
  for (idx i = 0; i < a.n_rows; ++i) {
    real acc = 0.0;
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      acc += a.values[k] * x[a.col_idx[k]];
    }
    y[i] = acc;
  }
}

void spmv(real alpha, const Csr& a, std::span<const real> x, real beta, std::span<real> y) {
  PTILU_CHECK(x.size() == static_cast<std::size_t>(a.n_cols), "spmv: x size mismatch");
  PTILU_CHECK(y.size() == static_cast<std::size_t>(a.n_rows), "spmv: y size mismatch");
  for (idx i = 0; i < a.n_rows; ++i) {
    real acc = 0.0;
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      acc += a.values[k] * x[a.col_idx[k]];
    }
    y[i] = alpha * acc + beta * y[i];
  }
}

void residual(const Csr& a, std::span<const real> x, std::span<const real> b,
              std::span<real> r) {
  PTILU_CHECK(b.size() == static_cast<std::size_t>(a.n_rows), "residual: b size mismatch");
  spmv(a, x, r);
  for (idx i = 0; i < a.n_rows; ++i) r[i] = b[i] - r[i];
}

}  // namespace ptilu
