#include "ptilu/sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "ptilu/support/check.hpp"

namespace ptilu {

real Csr::at(idx i, idx j) const {
  PTILU_ASSERT(i >= 0 && i < n_rows && j >= 0 && j < n_cols, "index out of range");
  const auto begin = col_idx.begin() + row_ptr[i];
  const auto end = col_idx.begin() + row_ptr[i + 1];
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values[static_cast<std::size_t>(it - col_idx.begin())];
}

void Csr::validate() const {
  PTILU_CHECK(n_rows >= 0 && n_cols >= 0, "negative dimensions");
  PTILU_CHECK(row_ptr.size() == static_cast<std::size_t>(n_rows) + 1,
              "row_ptr size " << row_ptr.size() << " != n_rows+1 " << n_rows + 1);
  PTILU_CHECK(row_ptr.front() == 0, "row_ptr[0] must be 0");
  PTILU_CHECK(row_ptr.back() == nnz(), "row_ptr back mismatch with nnz");
  PTILU_CHECK(col_idx.size() == values.size(), "col_idx/values size mismatch");
  for (idx i = 0; i < n_rows; ++i) {
    PTILU_CHECK(row_ptr[i] <= row_ptr[i + 1], "row_ptr not monotone at row " << i);
    for (nnz_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      PTILU_CHECK(col_idx[k] >= 0 && col_idx[k] < n_cols,
                  "column " << col_idx[k] << " out of range in row " << i);
      if (k > row_ptr[i]) {
        PTILU_CHECK(col_idx[k - 1] < col_idx[k],
                    "columns not strictly ascending in row " << i);
      }
    }
  }
}

bool Csr::has_sorted_rows() const {
  for (idx i = 0; i < n_rows; ++i) {
    for (nnz_t k = row_ptr[i] + 1; k < row_ptr[i + 1]; ++k) {
      if (col_idx[k - 1] >= col_idx[k]) return false;
    }
  }
  return true;
}

void CooBuilder::add(idx i, idx j, real v) {
  PTILU_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "COO entry (" << i << "," << j << ") out of range");
  entries_.push_back({i, j, v});
}

void CooBuilder::reserve(std::size_t n) { entries_.reserve(n); }

Csr CooBuilder::to_csr() const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    return a.i != b.i ? a.i < b.i : a.j < b.j;
  });

  Csr m(rows_, cols_);
  m.col_idx.reserve(sorted.size());
  m.values.reserve(sorted.size());
  for (std::size_t k = 0; k < sorted.size();) {
    const idx i = sorted[k].i;
    const idx j = sorted[k].j;
    real sum = 0.0;
    while (k < sorted.size() && sorted[k].i == i && sorted[k].j == j) {
      sum += sorted[k].v;
      ++k;
    }
    m.col_idx.push_back(j);
    m.values.push_back(sum);
    m.row_ptr[i + 1] = static_cast<nnz_t>(m.col_idx.size());
  }
  // Fill gaps for empty rows: row_ptr[i+1] currently 0 for rows with no entry.
  for (idx i = 0; i < rows_; ++i) {
    m.row_ptr[i + 1] = std::max(m.row_ptr[i + 1], m.row_ptr[i]);
  }
  return m;
}

Csr transpose(const Csr& a) {
  Csr t(a.n_cols, a.n_rows);
  t.col_idx.resize(a.col_idx.size());
  t.values.resize(a.values.size());
  // Count entries per column.
  std::vector<nnz_t> count(a.n_cols + 1, 0);
  for (const idx j : a.col_idx) ++count[j + 1];
  for (idx j = 0; j < a.n_cols; ++j) count[j + 1] += count[j];
  t.row_ptr = count;
  // Scatter; rows of A are scanned in order, so each transposed row's column
  // list (original row indices) comes out sorted.
  for (idx i = 0; i < a.n_rows; ++i) {
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const nnz_t pos = count[a.col_idx[k]]++;
      t.col_idx[pos] = i;
      t.values[pos] = a.values[k];
    }
  }
  return t;
}

Csr permute_symmetric(const Csr& a, const IdxVec& new_of) {
  PTILU_CHECK(a.n_rows == a.n_cols, "symmetric permutation needs a square matrix");
  PTILU_CHECK(is_permutation(new_of, a.n_rows), "new_of is not a permutation");
  const IdxVec old_of = invert_permutation(new_of);

  Csr b(a.n_rows, a.n_cols);
  b.col_idx.resize(a.col_idx.size());
  b.values.resize(a.values.size());
  for (idx bi = 0; bi < b.n_rows; ++bi) {
    b.row_ptr[bi + 1] = b.row_ptr[bi] + (a.row_ptr[old_of[bi] + 1] - a.row_ptr[old_of[bi]]);
  }
  std::vector<std::pair<idx, real>> row;
  for (idx bi = 0; bi < b.n_rows; ++bi) {
    const idx ai = old_of[bi];
    row.clear();
    for (nnz_t k = a.row_ptr[ai]; k < a.row_ptr[ai + 1]; ++k) {
      row.emplace_back(new_of[a.col_idx[k]], a.values[k]);
    }
    std::sort(row.begin(), row.end());
    nnz_t pos = b.row_ptr[bi];
    for (const auto& [j, v] : row) {
      b.col_idx[pos] = j;
      b.values[pos] = v;
      ++pos;
    }
  }
  return b;
}

Csr symmetrize_pattern(const Csr& a) {
  PTILU_CHECK(a.n_rows == a.n_cols, "symmetrize_pattern needs a square matrix");
  const Csr t = transpose(a);
  Csr s(a.n_rows, a.n_cols);
  s.col_idx.reserve(a.col_idx.size());
  s.values.reserve(a.values.size());
  for (idx i = 0; i < a.n_rows; ++i) {
    nnz_t ka = a.row_ptr[i], kt = t.row_ptr[i];
    const nnz_t ea = a.row_ptr[i + 1], et = t.row_ptr[i + 1];
    while (ka < ea || kt < et) {
      idx ja = ka < ea ? a.col_idx[ka] : a.n_cols;
      idx jt = kt < et ? t.col_idx[kt] : a.n_cols;
      if (ja <= jt) {
        s.col_idx.push_back(ja);
        s.values.push_back(a.values[ka]);
        ++ka;
        if (jt == ja) ++kt;
      } else {
        s.col_idx.push_back(jt);
        s.values.push_back(0.0);  // structural-only entry from A^T
        ++kt;
      }
    }
    s.row_ptr[i + 1] = static_cast<nnz_t>(s.col_idx.size());
  }
  return s;
}

RealVec diagonal(const Csr& a) {
  const idx n = std::min(a.n_rows, a.n_cols);
  RealVec d(n, 0.0);
  for (idx i = 0; i < n; ++i) d[i] = a.at(i, i);
  return d;
}

RealVec row_norms(const Csr& a, int p) {
  PTILU_CHECK(p == 0 || p == 1 || p == 2, "row_norms: p must be 0 (inf), 1 or 2");
  RealVec norms(a.n_rows, 0.0);
  for (idx i = 0; i < a.n_rows; ++i) {
    real acc = 0.0;
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const real v = std::abs(a.values[k]);
      if (p == 1) acc += v;
      else if (p == 2) acc += v * v;
      else acc = std::max(acc, v);
    }
    norms[i] = (p == 2) ? std::sqrt(acc) : acc;
  }
  return norms;
}

bool equal(const Csr& a, const Csr& b) {
  return a.n_rows == b.n_rows && a.n_cols == b.n_cols && a.row_ptr == b.row_ptr &&
         a.col_idx == b.col_idx && a.values == b.values;
}

real max_abs_diff(const Csr& a, const Csr& b) {
  PTILU_CHECK(a.n_rows == b.n_rows && a.n_cols == b.n_cols, "shape mismatch");
  real worst = 0.0;
  for (idx i = 0; i < a.n_rows; ++i) {
    nnz_t ka = a.row_ptr[i], kb = b.row_ptr[i];
    const nnz_t ea = a.row_ptr[i + 1], eb = b.row_ptr[i + 1];
    while (ka < ea || kb < eb) {
      const idx ja = ka < ea ? a.col_idx[ka] : a.n_cols;
      const idx jb = kb < eb ? b.col_idx[kb] : b.n_cols;
      if (ja == jb) {
        worst = std::max(worst, std::abs(a.values[ka] - b.values[kb]));
        ++ka;
        ++kb;
      } else if (ja < jb) {
        worst = std::max(worst, std::abs(a.values[ka]));
        ++ka;
      } else {
        worst = std::max(worst, std::abs(b.values[kb]));
        ++kb;
      }
    }
  }
  return worst;
}

std::string to_string_dense(const Csr& a, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision);
  for (idx i = 0; i < a.n_rows; ++i) {
    for (idx j = 0; j < a.n_cols; ++j) {
      oss << std::setw(precision + 8) << a.at(i, j);
    }
    oss << '\n';
  }
  return oss.str();
}

bool is_permutation(const IdxVec& new_of, idx n) {
  if (new_of.size() != static_cast<std::size_t>(n)) return false;
  std::vector<bool> seen(n, false);
  for (const idx p : new_of) {
    if (p < 0 || p >= n || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

IdxVec invert_permutation(const IdxVec& new_of) {
  IdxVec old_of(new_of.size());
  for (std::size_t i = 0; i < new_of.size(); ++i) {
    old_of[new_of[i]] = static_cast<idx>(i);
  }
  return old_of;
}

}  // namespace ptilu
