#include "ptilu/sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Csr read_matrix_market(std::istream& in) {
  std::string line;
  PTILU_CHECK(std::getline(in, line), "empty Matrix Market stream");

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  PTILU_CHECK(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  PTILU_CHECK(object == "matrix", "unsupported object '" << object << "'");
  PTILU_CHECK(format == "coordinate", "only coordinate format is supported");
  PTILU_CHECK(field == "real" || field == "integer" || field == "pattern",
              "unsupported field '" << field << "'");
  PTILU_CHECK(symmetry == "general" || symmetry == "symmetric" || symmetry == "skew-symmetric",
              "unsupported symmetry '" << symmetry << "'");

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  long long rows = 0, cols = 0, entries = 0;
  {
    std::istringstream sizes(line);
    PTILU_CHECK(static_cast<bool>(sizes >> rows >> cols >> entries), "malformed size line");
    PTILU_CHECK(rows > 0 && cols > 0 && entries >= 0, "invalid matrix dimensions");
  }

  CooBuilder builder(static_cast<idx>(rows), static_cast<idx>(cols));
  builder.reserve(static_cast<std::size_t>(entries) * (symmetry == "general" ? 1 : 2));
  for (long long e = 0; e < entries; ++e) {
    long long i = 0, j = 0;
    real v = 1.0;
    PTILU_CHECK(static_cast<bool>(in >> i >> j), "truncated entry " << e);
    if (field != "pattern") PTILU_CHECK(static_cast<bool>(in >> v), "truncated value " << e);
    PTILU_CHECK(i >= 1 && i <= rows && j >= 1 && j <= cols,
                "entry (" << i << "," << j << ") out of range");
    const idx zi = static_cast<idx>(i - 1);
    const idx zj = static_cast<idx>(j - 1);
    builder.add(zi, zj, v);
    if (zi != zj) {
      if (symmetry == "symmetric") builder.add(zj, zi, v);
      if (symmetry == "skew-symmetric") builder.add(zj, zi, -v);
    }
  }
  return builder.to_csr();
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  PTILU_CHECK(in.is_open(), "cannot open '" << path << "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.n_rows << ' ' << a.n_cols << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (idx i = 0; i < a.n_rows; ++i) {
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      out << (i + 1) << ' ' << (a.col_idx[k] + 1) << ' ' << a.values[k] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const Csr& a) {
  std::ofstream out(path);
  PTILU_CHECK(out.is_open(), "cannot open '" << path << "' for writing");
  write_matrix_market(out, a);
  PTILU_CHECK(static_cast<bool>(out), "write to '" << path << "' failed");
}

}  // namespace ptilu
