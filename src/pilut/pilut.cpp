#include "ptilu/pilut/pilut.hpp"

#include <algorithm>
#include <cmath>

#include "detail.hpp"
#include "ptilu/dist/mis_dist.hpp"
#include "ptilu/ilu/working_row.hpp"
#include "ptilu/sim/trace.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

constexpr int kTagUReq = 10;
constexpr int kTagUCols = 11;
constexpr int kTagUVals = 12;

using pilut_detail::FactorState;
using pilut_detail::Lane;

/// Per-lane per-level working structures (see pilut_detail::Lane for the
/// lane model). Hoisted out of the level loop so their nested buffers keep
/// their capacity across the hundreds of reduced-matrix levels. Sequential
/// backend: a single lane shared by the ranks running one after another,
/// exactly the seed behavior; threaded backend: one lane per rank, so
/// concurrent bodies never share mutable scratch.
struct LevelLane {
  std::vector<IdxVec> reverse_out;  // setup: peer -> (target, source) pairs
  std::vector<IdxVec> requests;     // exchange: peer -> requested U rows
  // Received remote U rows, pooled: a dense row -> slot map plus a slab of
  // reusable SparseRows (assign() keeps their capacity level over level).
  IdxVec remote_slot;
  std::vector<SparseRow> remote_pool;
  IdxVec remote_rows;  // rows whose remote_slot is currently set
  IdxVec ucols_buf;    // reduce: concatenated U-row column payloads
  RealVec uvals_buf;   // reduce: concatenated U-row value payloads
  IdxVec elim_cols;    // reduce: this row's I_l columns
  long long edges = 0;  // setup: this lane's share of the edge count

  LevelLane(int nranks, idx n)
      : reverse_out(nranks), requests(nranks), remote_slot(n, -1) {}
};

}  // namespace

void PilutSchedule::validate() const {
  const idx n = static_cast<idx>(newnum.size());
  PTILU_CHECK(is_permutation(newnum, n), "schedule.newnum is not a permutation");
  PTILU_CHECK(orig_of.size() == newnum.size(), "orig_of size mismatch");
  for (idx i = 0; i < n; ++i) PTILU_CHECK(orig_of[newnum[i]] == i, "orig_of inconsistent");
  PTILU_CHECK(!level_start.empty() && level_start.front() == n_interior &&
                  level_start.back() == n,
              "level_start must span [n_interior, n]");
  for (std::size_t l = 1; l < level_start.size(); ++l) {
    PTILU_CHECK(level_start[l - 1] <= level_start[l], "level_start not monotone");
  }
  PTILU_CHECK(static_cast<int>(interior_range.size()) == nranks, "interior_range size");
}

PilutResult pilut_factor(sim::Machine& machine, const DistCsr& dist,
                         const PilutOptions& opts) {
  PTILU_CHECK(machine.nranks() == dist.nranks, "machine/partition rank mismatch");
  PTILU_CHECK(opts.m >= 0 && opts.tau >= 0.0, "invalid PILUT options");
  machine.reset();

  const Csr& a = dist.a;
  const idx n = a.n_rows;
  const int nranks = dist.nranks;
  const RealVec norms = row_norms(a, 2);
  const idx tail_cap = opts.cap_k > 0 ? opts.cap_k * opts.m : 0;  // 0 = uncapped

  PilutResult result;
  PilutStats& stats = result.stats;
  PilutSchedule& sched = result.schedule;
  sched.nranks = nranks;
  sched.newnum.assign(n, -1);

  FactorState state(n);
  // Per-lane scratch: one lane sequentially (reused across ranks, cleared
  // between rows — the seed behavior), one per rank when threaded.
  std::vector<Lane> lanes = pilut_detail::make_lanes(machine, n);
  pilut_detail::run_interior_phase(machine, dist, opts, norms, state, lanes,
                                  sched, stats);
  pilut_detail::run_initial_reduction(machine, dist, opts, norms, tail_cap, state,
                                      lanes);
  idx next_num = sched.n_interior;
  // Dense per-level scratch arrays (active vertex sets are disjoint across
  // ranks, so sharing them is safe and avoids hash-map churn in the hot
  // per-level loops).
  IdxVec pos_dense(n, -1);              // active vertex -> position in owner's list
  std::vector<std::uint8_t> in_set(n, 0);  // membership stamp for the current I_l
  DistMisScratch mis_scratch;              // dense status arrays reused per level

  DistGraph graph;  // adjacency + vertex lists of the reduced matrix
  graph.n_global = n;
  graph.owner = &dist.owner;
  graph.verts_of.resize(nranks);
  graph.adj.resize(nranks);
  std::vector<LevelLane> level_lanes;
  level_lanes.reserve(static_cast<std::size_t>(machine.scratch_lanes()));
  for (int i = 0; i < machine.scratch_lanes(); ++i) level_lanes.emplace_back(nranks, n);

  // ================= Phase 2: iterative interface factorization ===========
  std::vector<IdxVec> active(nranks);  // per rank: unfactored interface rows
  long long remaining = 0;
  for (int r = 0; r < nranks; ++r) {
    for (const idx v : dist.owned_rows[r]) {
      if (dist.interface[v]) active[r].push_back(v);
    }
    remaining += static_cast<long long>(active[r].size());
  }

  sched.level_start.push_back(sched.n_interior);
  // Phase tags cover the paper's breakdown of interface work: communication
  // setup, independent-set discovery (tagged inside mis_dist), numbering,
  // factoring the set, U-row exchange, and reduced-matrix formation.
  const pilut_detail::FactorCounters counters = pilut_detail::factor_counters(machine);
  sim::ScopedPhase interface_phase(machine, "factor/interface");
  while (remaining > 0) {
    // --- Build the symmetrized distributed graph of the reduced matrix.
    // Tail columns are exactly the unfactored interface vertices, so the
    // directed adjacency of vertex v is its tail pattern; reverse edges to
    // remote owners travel in one superstep (the "communication setup").
    std::vector<std::vector<IdxVec>>& adj = graph.adj;
    {
    sim::ScopedPhase span(machine, "setup");
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      std::vector<IdxVec>& reverse_out =
          level_lanes[static_cast<std::size_t>(ctx.lane())].reverse_out;
      for (auto& neighbors : adj[r]) neighbors.clear();  // keep inner capacity
      adj[r].resize(active[r].size());
      for (std::size_t i = 0; i < active[r].size(); ++i) {
        pos_dense[active[r][i]] = static_cast<idx>(i);
      }
      std::uint64_t touched = 0;
      for (std::size_t i = 0; i < active[r].size(); ++i) {
        const idx v = active[r][i];
        for (const idx c : state.tails[v].cols) {
          if (c == v) continue;
          ++touched;
          adj[r][i].push_back(c);  // out-edge v -> c
          const int peer = dist.owner[c];
          if (peer == r) {
            adj[r][pos_dense[c]].push_back(v);  // local reverse edge
          } else {
            reverse_out[peer].push_back(c);
            reverse_out[peer].push_back(v);
          }
        }
      }
      ctx.charge_mem(touched * sizeof(idx));
      for (int peer = 0; peer < nranks; ++peer) {
        if (!reverse_out[peer].empty()) {
          ctx.send_indices(peer, 0, reverse_out[peer]);
          reverse_out[peer].clear();
        }
      }
    }, "pilut/setup/reverse_edges");
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      LevelLane& lane = level_lanes[static_cast<std::size_t>(ctx.lane())];
      IdxVec pairs;
      for (const sim::Message& msg : ctx.recv_all()) {
        pairs.clear();
        sim::decode_indices_append(msg, pairs);
        for (std::size_t p = 0; p < pairs.size(); p += 2) {
          adj[r][pos_dense[pairs[p]]].push_back(pairs[p + 1]);
        }
      }
      // Duplicate adjacency entries (an edge present in both tails) are
      // harmless for the MIS — skipping dedup keeps this phase O(edges).
      long long local_edges = 0;
      for (const auto& neighbors : adj[r]) {
        local_edges += static_cast<long long>(neighbors.size());
      }
      lane.edges += local_edges;  // per-lane partial; summed after the step
    }, "pilut/setup/apply_reverse");
    }
    // Fold the per-lane edge partials (integer sum: order-independent, so
    // one shared sequential lane and p threaded lanes agree bit-for-bit).
    long long edges = 0;
    for (LevelLane& lane : level_lanes) {
      edges += lane.edges;
      lane.edges = 0;
    }

    // --- Choose the independent set I_l.
    IdxVec iset;
    if (edges == 0) {
      // All remaining rows are mutually independent — the termination case.
      for (int r = 0; r < nranks; ++r) {
        iset.insert(iset.end(), active[r].begin(), active[r].end());
      }
      std::sort(iset.begin(), iset.end());
    } else {
      for (int r = 0; r < nranks; ++r) {
        graph.verts_of[r].assign(active[r].begin(), active[r].end());
      }
      iset = mis_dist(machine, graph,
                      {.seed = opts.seed + static_cast<std::uint64_t>(stats.levels),
                       .rounds = opts.mis_rounds},
                      &mis_scratch);
      PTILU_CHECK(!iset.empty(), "independent set came back empty");
    }

    // --- Number the set rank-major. The id exchange (per-rank counts plus
    // the member lists for boundary vertices) is a small collective.
    for (const idx v : iset) in_set[v] = 1;
    for (int r = 0; r < nranks; ++r) {
      for (const idx v : active[r]) {
        if (in_set[v]) sched.newnum[v] = next_num++;
      }
    }
    {
      sim::ScopedPhase span(machine, "number");
      machine.collective(static_cast<std::uint64_t>(iset.size()) * sizeof(idx) / nranks +
                         sizeof(idx), "pilut/number");
    }

    // --- Factor the rows of I_l (only U rows are created; the paper's
    // observation that independence makes this communication-free).
    {
    sim::ScopedPhase span(machine, "factor");
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      Lane& lane = lanes[static_cast<std::size_t>(ctx.lane())];
      FactorScratch& scratch = lane.scratch;
      std::uint64_t flops = 0;
      pilut_detail::FillDropTally tally;
      for (const idx v : active[r]) {
        if (!in_set[v]) continue;
        const real tau_v = opts.tau * norms[v];
        SparseRow& tail = state.tails[v];
        SparseRow& ustage = scratch.ustage;
        ustage.clear();
        real diag = 0.0;
        for (std::size_t p = 0; p < tail.size(); ++p) {
          if (tail.cols[p] == v) {
            diag = tail.vals[p];
          } else {
            ustage.push(tail.cols[p], tail.vals[p]);
          }
        }
        flops += tail.size();
        const std::size_t u_before = ustage.size();
        select_largest(ustage, opts.m, tau_v, -1, scratch.kept);  // 2nd dropping rule
        tally.dropped += u_before - ustage.size();
        diag = safeguard_pivot(v, diag,
                               opts.pivot_rel > 0.0 ? opts.pivot_rel * norms[v] : 0.0,
                               tally.guarded);
        state.udiag[v] = diag;
        pilut_detail::emit_urow(state.urows[v], v, diag, ustage);
        state.factored[v] = true;
        tail.clear();
      }
      ctx.charge_flops(flops);
      lane.pivots_guarded += tally.guarded;
      counters.commit(r, tally);
    }, "pilut/factor_set");
    }

    // --- Exchange the U rows that remote eliminations will need. Each rank
    // scans its remaining rows' tails for set members owned elsewhere,
    // requests those rows, and owners reply within the same superstep pair.
    {
    sim::ScopedPhase span(machine, "exchange");
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      std::vector<IdxVec>& requests =
          level_lanes[static_cast<std::size_t>(ctx.lane())].requests;
      for (const idx i : active[r]) {
        if (in_set[i]) continue;
        for (const idx c : state.tails[i].cols) {
          if (in_set[c] && dist.owner[c] != r) requests[dist.owner[c]].push_back(c);
        }
      }
      for (int peer = 0; peer < nranks; ++peer) {
        IdxVec& rows = requests[peer];
        if (rows.empty()) continue;
        std::sort(rows.begin(), rows.end());
        rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
        ctx.send_indices(peer, kTagUReq, rows);
        rows.clear();
      }
    }, "pilut/exchange/request");
    machine.step([&](sim::RankContext& ctx) {
      LevelLane& ll = level_lanes[static_cast<std::size_t>(ctx.lane())];
      IdxVec& requested = ll.elim_cols;  // idle here; reused as decode scratch
      IdxVec& cols_payload = ll.ucols_buf;
      RealVec& vals_payload = ll.uvals_buf;
      for (const sim::Message& msg : ctx.recv_all()) {
        PTILU_CHECK(msg.tag == kTagUReq, "unexpected message during U exchange");
        requested.clear();
        sim::decode_indices_append(msg, requested);
        cols_payload.clear();
        vals_payload.clear();
        for (const idx row : requested) {
          const SparseRow& urow = state.urows[row];
          cols_payload.push_back(row);
          cols_payload.push_back(static_cast<idx>(urow.size()));
          cols_payload.insert(cols_payload.end(), urow.cols.begin(), urow.cols.end());
          vals_payload.insert(vals_payload.end(), urow.vals.begin(), urow.vals.end());
        }
        ctx.send_indices(msg.from, kTagUCols, cols_payload);
        ctx.send_reals(msg.from, kTagUVals, vals_payload);
      }
    }, "pilut/exchange/reply");
    }

    // --- Receive U rows and eliminate I_l columns from the remaining rows
    // (Algorithm 4.2), forming the next reduced matrix.
    {
    sim::ScopedPhase span(machine, "reduce");
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      Lane& lane = lanes[static_cast<std::size_t>(ctx.lane())];
      LevelLane& ll = level_lanes[static_cast<std::size_t>(ctx.lane())];
      WorkingRow& w = lane.w;
      FactorScratch& scratch = lane.scratch;
      IdxVec& remote_slot = ll.remote_slot;
      std::vector<SparseRow>& remote_pool = ll.remote_pool;
      IdxVec& remote_rows = ll.remote_rows;
      IdxVec& elim_cols = ll.elim_cols;
      // Release this lane's previous remote-row bindings, then reassemble
      // this rank's received rows into pooled slots.
      for (const idx row : remote_rows) remote_slot[row] = -1;
      remote_rows.clear();
      IdxVec& cols_payload = ll.ucols_buf;
      RealVec& vals_payload = ll.uvals_buf;
      cols_payload.clear();
      vals_payload.clear();
      for (const sim::Message& msg : ctx.recv_all()) {
        if (msg.tag == kTagUCols) {
          sim::decode_indices_append(msg, cols_payload);
        } else {
          PTILU_CHECK(msg.tag == kTagUVals, "unexpected tag in U exchange");
          sim::decode_reals_append(msg, vals_payload);
        }
      }
      std::size_t vpos = 0;
      for (std::size_t p = 0; p < cols_payload.size();) {
        const idx row = cols_payload[p++];
        const idx len = cols_payload[p++];
        const idx slot = static_cast<idx>(remote_rows.size());
        if (static_cast<std::size_t>(slot) == remote_pool.size()) remote_pool.emplace_back();
        SparseRow& urow = remote_pool[slot];
        urow.cols.assign(cols_payload.begin() + p, cols_payload.begin() + p + len);
        urow.vals.assign(vals_payload.begin() + vpos, vals_payload.begin() + vpos + len);
        remote_slot[row] = slot;
        remote_rows.push_back(row);
        p += len;
        vpos += len;
      }

      const auto urow_of = [&](idx k) -> const SparseRow& {
        if (dist.owner[k] == r) return state.urows[k];
        PTILU_CHECK(remote_slot[k] >= 0, "missing remote U row " << k);
        return remote_pool[remote_slot[k]];
      };

      std::uint64_t flops = 0, copied = 0;
      pilut_detail::FillDropTally tally;
      for (const idx i : active[r]) {
        if (in_set[i]) continue;
        SparseRow& tail = state.tails[i];
        // Pre-scan: rows with no I_l columns are untouched by this level.
        elim_cols.clear();
        for (const idx c : tail.cols) {
          if (in_set[c]) elim_cols.push_back(c);
        }
        if (elim_cols.empty()) continue;
        const real tau_i = opts.tau * norms[i];
        for (std::size_t p = 0; p < tail.size(); ++p) {
          w.insert(tail.cols[p], tail.vals[p]);
        }
        // Ascending new number keeps the arithmetic order identical to the
        // serial elimination on the permuted matrix.
        std::sort(elim_cols.begin(), elim_cols.end(),
                  [&](idx x, idx y) { return sched.newnum[x] < sched.newnum[y]; });
        SparseRow& lrow = state.lrows[i];
        for (const idx k : elim_cols) {
          const SparseRow& urow = urow_of(k);
          const real multiplier = w.value(k) / urow.vals[0];  // diag stored first
          ++flops;
          if (std::abs(multiplier) < tau_i) {  // 1st dropping rule
            w.set(k, 0.0);
            ++tally.dropped;
            continue;
          }
          w.set(k, multiplier);
          // Strictly-upper entries only — the loop starts at p = 1.
          flops += 2 * static_cast<std::uint64_t>(urow.size() - 1);
          for (std::size_t p = 1; p < urow.size(); ++p) {
            const idx c = urow.cols[p];
            const real update = -multiplier * urow.vals[p];
            if (w.present(c)) {
              w.accumulate(c, update);
            } else {
              w.insert(c, update);  // fill lands on unfactored columns only
              ++tally.fill;
            }
          }
        }
        // Merge surviving multipliers into L and re-apply the 3rd rule.
        for (const idx k : elim_cols) {
          const real v = w.value(k);
          if (v != 0.0) lrow.push(k, v);
        }
        const std::size_t l_before = lrow.size();
        select_largest(lrow, opts.m, tau_i, -1, scratch.kept);
        tally.dropped += l_before - lrow.size();
        // Rebuild the tail from the unfactored columns.
        tail.clear();
        for (const idx c : w.touched()) {
          if (in_set[c]) continue;
          tail.push(c, w.value(c));
        }
        if (tail_cap > 0) {
          const std::size_t t_before = tail.size();
          select_largest(tail, tail_cap, 0.0, i, scratch.kept);
          tally.dropped += t_before - tail.size();
        }
        lane.max_reduced_row =
            std::max(lane.max_reduced_row, static_cast<nnz_t>(tail.size()));
        copied += tail.size() * (sizeof(idx) + sizeof(real));
        w.clear();
      }
      ctx.charge_flops(flops);
      ctx.charge_mem(copied);
      counters.commit(r, tally);
    }, "pilut/reduce");
    }

    // --- Retire the factored rows and reset the dense scratch stamps.
    for (int r = 0; r < nranks; ++r) {
      IdxVec still;
      for (const idx v : active[r]) {
        pos_dense[v] = -1;
        if (!in_set[v]) still.push_back(v);
      }
      remaining -= static_cast<long long>(active[r].size() - still.size());
      active[r] = std::move(still);
    }
    for (const idx v : iset) in_set[v] = 0;
    sched.level_start.push_back(next_num);
    ++stats.levels;
  }
  if (sched.level_start.back() != n) sched.level_start.push_back(n);
  PTILU_CHECK(next_num == n, "numbering did not cover all rows");
  machine.check_quiescent("pilut/end");

  pilut_detail::merge_lane_stats(lanes, stats);
  pilut_detail::finish_stats(machine, stats);

  // ===================== Assembly into the new ordering ====================
  sched.orig_of = invert_permutation(sched.newnum);
  sched.owner_new.resize(n);
  for (idx i = 0; i < n; ++i) sched.owner_new[sched.newnum[i]] = dist.owner[i];

  pilut_detail::assemble_factors(state.lrows, state.urows, sched.newnum,
                                 result.factors);
  result.factors.validate();
  sched.validate();
  return result;
}

}  // namespace ptilu
