// Helpers shared by the parallel factorizations (PILUT, PILUT-nested, PILU0).
#pragma once

#include <cmath>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/ilu/factor_scratch.hpp"
#include "ptilu/ilu/factors.hpp"
#include "ptilu/ilu/pivot.hpp"
#include "ptilu/ilu/working_row.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/sim/metrics.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu::pilut_detail {

/// Fill/drop tally a rank body accumulates while factoring its rows:
/// `fill` counts entries created beyond a row's original pattern by the
/// elimination updates; `dropped` counts entries discarded by the dropping
/// rules (1st rule in eliminate_cascading, 2nd/3rd rules and tail caps via
/// select_largest at the call sites). Body-local so the threaded backend
/// never shares a tally; committed per rank through FactorCounters.
struct FillDropTally {
  std::uint64_t fill = 0;
  std::uint64_t dropped = 0;
  std::uint64_t guarded = 0;  ///< safeguarded pivot substitutions (pivot.hpp)
};

/// The per-rank fill/drop counter registration for a factorization driver
/// (a no-op carrier when the machine has no metrics collector). Register
/// once on the main thread before the steps, commit per rank inside them.
struct FactorCounters {
  sim::Metrics* metrics = nullptr;
  std::uint32_t fill = 0;
  std::uint32_t dropped = 0;
  std::uint32_t guarded = 0;

  void commit(int rank, const FillDropTally& tally) const {
    if (metrics == nullptr) return;
    metrics->add_counter(fill, rank, tally.fill);
    metrics->add_counter(dropped, rank, tally.dropped);
    metrics->add_counter(guarded, rank, tally.guarded);
  }
};

/// Register "factor/fill" / "factor/dropped" on the machine's metrics
/// collector (idempotent; null-metrics carrier when collection is off).
FactorCounters factor_counters(sim::Machine& machine);

/// Shared state of a parallel factorization, indexed by ORIGINAL row ids.
/// Rank bodies write only slots they own, so concurrent ranks never touch
/// the same element — which is also why `factored` is a byte vector, not
/// std::vector<bool>: adjacent bits of a packed bitmap share a word, and
/// rank-disjoint writes would still race under the threaded backend.
struct FactorState {
  std::vector<SparseRow> lrows;  // final L rows (factored columns, orig ids)
  std::vector<SparseRow> urows;  // final U rows (diag first, orig ids)
  RealVec udiag;
  std::vector<SparseRow> tails;  // reduced-matrix rows of unfactored interface rows
  std::vector<std::uint8_t> factored;

  explicit FactorState(idx n)
      : lrows(n), urows(n), udiag(n, 0.0), tails(n), factored(n, 0) {}
};

/// Per-lane working storage for rank bodies. Sequential backend: one lane,
/// shared by the ranks as they run one after another (exactly the seed
/// behavior). Threaded backend: one lane per rank, so bodies never share
/// mutable scratch. Results are identical either way — every field is
/// cleared between rows, and the stat fields are integer partials whose
/// merge (sum / max) is order-independent.
struct Lane {
  WorkingRow w;
  FactorScratch scratch;
  std::uint64_t pivots_guarded = 0;
  nnz_t max_reduced_row = 0;

  explicit Lane(idx n) : w(n) {}
};

/// machine.scratch_lanes() lanes, each with an n-column working row.
std::vector<Lane> make_lanes(const sim::Machine& machine, idx n);

/// Fold the per-lane stat partials into `stats` (in lane order) and zero
/// them. Call once per factorization, after the last lane-using step.
void merge_lane_stats(std::vector<Lane>& lanes, PilutStats& stats);

/// Cascading elimination of the working row against factored rows chosen by
/// the `eliminatable` predicate; the heap orders columns by the comparator
/// key (original id for interior phases, assigned new number for nested
/// interface blocks — the caller pre-seeds the heap accordingly). Applies
/// the 1st dropping rule, tallying fill-in and rule-1 drops. Returns the
/// flop count.
template <typename Eliminatable, typename Compare>
std::uint64_t eliminate_cascading(WorkingRow& w, FactorState& state, real tau_i,
                                  PooledHeap<Compare>& heap,
                                  Eliminatable&& eliminatable,
                                  FillDropTally& tally) {
  std::uint64_t flops = 0;
  while (!heap.empty()) {
    const idx k = heap.pop();
    const real multiplier = w.value(k) / state.udiag[k];
    ++flops;
    if (std::abs(multiplier) < tau_i) {  // 1st dropping rule
      w.set(k, 0.0);
      ++tally.dropped;
      continue;
    }
    w.set(k, multiplier);
    const SparseRow& urow = state.urows[k];
    // The update loop below skips the stored diagonal, so charge only the
    // strictly-upper entries (2 flops each) — keeps the simulated Mflop
    // rate in agreement with the serial ilut() accounting.
    flops += 2 * static_cast<std::uint64_t>(urow.size() - 1);
    for (std::size_t p = 1; p < urow.size(); ++p) {  // skip stored diagonal
      const idx c = urow.cols[p];
      const real update = -multiplier * urow.vals[p];
      if (w.present(c)) {
        w.accumulate(c, update);
      } else {
        w.insert(c, update);
        ++tally.fill;
        if (eliminatable(c)) heap.push(c);
      }
    }
  }
  return flops;
}

/// Materialize a final U row diagonal-first from its selected off-diagonal
/// part, reserving the exact size up front (no insert-at-front shuffle).
inline void emit_urow(SparseRow& urow, idx i, real diag, const SparseRow& upper) {
  urow.cols.reserve(upper.size() + 1);
  urow.vals.reserve(upper.size() + 1);
  urow.push(i, diag);
  urow.cols.insert(urow.cols.end(), upper.cols.begin(), upper.cols.end());
  urow.vals.insert(urow.vals.end(), upper.vals.begin(), upper.vals.end());
}

/// Phase 1 of every parallel factorization: each rank ILUT-factors its
/// interior rows (communication-free). Also assigns interior new numbers
/// rank-major into sched (caller must have sized sched.newnum).
void run_interior_phase(sim::Machine& machine, const DistCsr& dist,
                        const PilutOptions& opts, const RealVec& norms,
                        FactorState& state, std::vector<Lane>& lanes,
                        PilutSchedule& sched, PilutStats& stats);

/// Phase 1b: interface rows eliminate their local interior columns, forming
/// the initial reduced rows (tails). tail_cap 0 keeps everything (ILUT).
void run_initial_reduction(sim::Machine& machine, const DistCsr& dist,
                           const PilutOptions& opts, const RealVec& norms,
                           idx tail_cap, FactorState& state,
                           std::vector<Lane>& lanes);

/// Finalize stats fields from the machine counters.
void finish_stats(const sim::Machine& machine, PilutStats& stats);

/// Renumber per-original-row factor rows into the new ordering and build
/// the final CSR factors (L strictly lower sorted, U diag-first sorted).
void assemble_factors(const std::vector<SparseRow>& lrows,
                      const std::vector<SparseRow>& urows, const IdxVec& newnum,
                      IluFactors& out);

}  // namespace ptilu::pilut_detail
