#include "ptilu/pilut/pilut_nested.hpp"

#include <algorithm>

#include "detail.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/sim/trace.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

using pilut_detail::FactorState;
using pilut_detail::Lane;

/// Bytes moved when a reduced row migrates to a new host.
std::uint64_t row_bytes(const SparseRow& tail, const SparseRow& lpart) {
  return (tail.size() + lpart.size()) * (sizeof(idx) + sizeof(real)) + 16;
}

}  // namespace

PilutResult pilut_factor_nested(sim::Machine& machine, const DistCsr& dist,
                                const PilutOptions& opts, const NestedOptions& nested) {
  PTILU_CHECK(machine.nranks() == dist.nranks, "machine/partition rank mismatch");
  PTILU_CHECK(opts.m >= 0 && opts.tau >= 0.0, "invalid PILUT options");
  PTILU_CHECK(nested.max_depth >= 0 && nested.sequential_cutoff >= 1,
              "invalid nested options");
  machine.reset();

  const Csr& a = dist.a;
  const idx n = a.n_rows;
  const int nranks = dist.nranks;
  const RealVec norms = row_norms(a, 2);
  const idx tail_cap = opts.cap_k > 0 ? opts.cap_k * opts.m : 0;

  PilutResult result;
  PilutStats& stats = result.stats;
  PilutSchedule& sched = result.schedule;
  sched.nranks = nranks;
  sched.newnum.assign(n, -1);

  FactorState state(n);
  // Per-lane scratch: one lane sequentially, one per rank when threaded
  // (see pilut_detail::Lane).
  std::vector<Lane> lanes = pilut_detail::make_lanes(machine, n);
  pilut_detail::run_interior_phase(machine, dist, opts, norms, state, lanes,
                                  sched, stats);
  pilut_detail::run_initial_reduction(machine, dist, opts, norms, tail_cap, state,
                                      lanes);
  idx next_num = sched.n_interior;
  sched.level_start.push_back(sched.n_interior);

  // Current host of each unfactored interface row (migrations update this;
  // the triangular-solve schedule uses the host at factoring time).
  IdxVec host = dist.owner;
  std::vector<IdxVec> active(nranks);
  long long total_active = 0;
  for (int r = 0; r < nranks; ++r) {
    for (const idx v : dist.owned_rows[r]) {
      if (dist.interface[v]) active[r].push_back(v);
    }
    total_active += static_cast<long long>(active[r].size());
  }

  std::vector<std::uint8_t> stage_interior(n, 0);
  IdxVec compact_of(n, -1);

  // Factor the rows marked stage_interior on each host (sequential within a
  // host, concurrent across hosts), then reduce the remaining rows against
  // them. Used by both the partitioned stages and the sequential tail.
  const pilut_detail::FactorCounters counters = pilut_detail::factor_counters(machine);
  const auto run_stage = [&]() {
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      Lane& lane = lanes[static_cast<std::size_t>(ctx.lane())];
      WorkingRow& w = lane.w;
      FactorScratch& scratch = lane.scratch;
      std::uint64_t flops = 0, copied = 0;
      pilut_detail::FillDropTally tally;
      const auto by_newnum = [&](idx x, idx y) {
        return sched.newnum[x] > sched.newnum[y];  // min-heap on new number
      };
      using NewnumHeap = PooledHeap<decltype(by_newnum)>;

      // Pass 1: factor this host's stage-interior rows in ascending new
      // number (they may eliminate each other — a sequential local block).
      for (const idx i : active[r]) {
        if (!stage_interior[i]) continue;
        const real tau_i = opts.tau * norms[i];
        SparseRow& tail = state.tails[i];
        const idx my_num = sched.newnum[i];
        const auto eliminatable = [&](idx c) {
          return stage_interior[c] && sched.newnum[c] < my_num;
        };
        NewnumHeap heap(scratch.heap, by_newnum);
        for (std::size_t p = 0; p < tail.size(); ++p) {
          w.insert(tail.cols[p], tail.vals[p]);
          if (eliminatable(tail.cols[p])) heap.push(tail.cols[p]);
        }
        flops += pilut_detail::eliminate_cascading(w, state, tau_i, heap, eliminatable,
                                                   tally);

        SparseRow& lstage = scratch.lstage;
        SparseRow& ustage = scratch.ustage;
        lstage.clear();
        ustage.clear();
        real diag = 0.0;
        for (const idx c : w.touched()) {
          const real v = w.value(c);
          if (c == i) {
            diag = v;
          } else if (eliminatable(c)) {
            if (v != 0.0) lstage.push(c, v);  // multiplier -> L
          } else {
            ustage.push(c, v);  // factored later (larger new number)
          }
        }
        const std::size_t staged = lstage.size() + ustage.size();
        select_largest(lstage, opts.m, tau_i, -1, scratch.kept);
        select_largest(ustage, opts.m, tau_i, -1, scratch.kept);
        tally.dropped += staged - lstage.size() - ustage.size();
        diag = safeguard_pivot(i, diag,
                               opts.pivot_rel > 0.0 ? opts.pivot_rel * norms[i] : 0.0,
                               tally.guarded);
        state.udiag[i] = diag;
        state.lrows[i].cols = lstage.cols;
        state.lrows[i].vals = lstage.vals;
        pilut_detail::emit_urow(state.urows[i], i, diag, ustage);
        state.factored[i] = true;
        tail.clear();
        w.clear();
      }

      // Pass 2: reduce the host's remaining rows against the freshly
      // factored block (all needed U rows are local to this host).
      for (const idx i : active[r]) {
        if (stage_interior[i]) continue;
        SparseRow& tail = state.tails[i];
        bool touches_stage = false;
        for (const idx c : tail.cols) {
          if (stage_interior[c]) {
            touches_stage = true;
            break;
          }
        }
        if (!touches_stage) continue;
        const real tau_i = opts.tau * norms[i];
        const auto eliminatable = [&](idx c) { return stage_interior[c] != 0; };
        NewnumHeap heap(scratch.heap, by_newnum);
        for (std::size_t p = 0; p < tail.size(); ++p) {
          w.insert(tail.cols[p], tail.vals[p]);
          if (eliminatable(tail.cols[p])) heap.push(tail.cols[p]);
        }
        flops += pilut_detail::eliminate_cascading(w, state, tau_i, heap, eliminatable,
                                                   tally);

        SparseRow& lrow = state.lrows[i];
        for (const idx c : w.touched()) {
          if (eliminatable(c) && w.value(c) != 0.0) lrow.push(c, w.value(c));
        }
        const std::size_t l_before = lrow.size();
        select_largest(lrow, opts.m, tau_i, -1, scratch.kept);  // 3rd dropping rule
        tally.dropped += l_before - lrow.size();
        tail.clear();
        for (const idx c : w.touched()) {
          if (!eliminatable(c)) tail.push(c, w.value(c));
        }
        if (tail_cap > 0) {
          const std::size_t t_before = tail.size();
          select_largest(tail, tail_cap, 0.0, i, scratch.kept);
          tally.dropped += t_before - tail.size();
        }
        lane.max_reduced_row =
            std::max(lane.max_reduced_row, static_cast<nnz_t>(tail.size()));
        copied += tail.size() * (sizeof(idx) + sizeof(real));
        w.clear();
      }
      ctx.charge_flops(flops);
      ctx.charge_mem(copied);
      lane.pivots_guarded += tally.guarded;
      counters.commit(r, tally);
    }, "nested/stage");
  };

  int depth = 0;
  sim::ScopedPhase nested_phase(machine, "factor/nested");
  while (total_active > 0) {
    const bool sequential_tail = total_active <= nested.sequential_cutoff ||
                                 depth >= nested.max_depth || nranks == 1;

    if (sequential_tail) {
      sim::ScopedPhase span(machine, "sequential");
      // Gather everything onto rank 0 and factor the block sequentially.
      for (int r = 1; r < nranks; ++r) {
        for (const idx v : active[r]) {
          machine.charge_transfer(r, 0, row_bytes(state.tails[v], state.lrows[v]),
                                  "nested/gather_sequential");
          host[v] = 0;
          active[0].push_back(v);
        }
        active[r].clear();
      }
      std::sort(active[0].begin(), active[0].end());
      for (const idx v : active[0]) {
        stage_interior[v] = 1;
        sched.newnum[v] = next_num++;
      }
      run_stage();
      for (const idx v : active[0]) stage_interior[v] = 0;
      active[0].clear();
      total_active = 0;
      sched.level_start.push_back(next_num);
      ++stats.levels;
      break;
    }

    // --- Assemble the reduced graph over the active rows (the adjacency
    // exchange mirrors pilut's; the partitioning itself is charged as a
    // parallel-partitioner collective).
    IdxVec verts;  // compact order: host-major, ascending orig id
    for (int r = 0; r < nranks; ++r) {
      verts.insert(verts.end(), active[r].begin(), active[r].end());
    }
    for (std::size_t c = 0; c < verts.size(); ++c) compact_of[verts[c]] = static_cast<idx>(c);
    // Per-lane edge lists, concatenated lane 0..p-1 after the step: the
    // concatenation order equals the sequential append order (ranks run
    // 0..p-1 into one shared lane), and that order feeds partition_kway.
    std::vector<std::vector<std::pair<idx, idx>>> edge_lanes(
        static_cast<std::size_t>(machine.scratch_lanes()));
    {
      sim::ScopedPhase span(machine, "graph");
      machine.step([&](sim::RankContext& ctx) {
        const int r = ctx.rank();
        auto& lane_edges = edge_lanes[static_cast<std::size_t>(ctx.lane())];
        std::uint64_t scanned = 0;
        for (const idx v : active[r]) {
          for (const idx c : state.tails[v].cols) {
            if (c == v) continue;
            ++scanned;
            lane_edges.emplace_back(compact_of[v], compact_of[c]);
          }
        }
        ctx.charge_mem(scanned * sizeof(idx));
      }, "nested/graph");
      machine.collective(static_cast<std::uint64_t>(verts.size()) * sizeof(idx) / nranks +
                         sizeof(idx), "nested/graph_gather");
    }
    std::vector<std::pair<idx, idx>> edges;
    for (auto& lane_edges : edge_lanes) {
      edges.insert(edges.end(), lane_edges.begin(), lane_edges.end());
    }
    const Graph reduced_graph = graph_from_edges(static_cast<idx>(verts.size()), edges);
    const Partition part = partition_kway(reduced_graph, nranks,
                                          {.seed = opts.seed + depth + 1});

    // Sub-interior = all reduced-graph neighbors in the same sub-domain.
    idx stage_count = 0;
    for (idx c = 0; c < reduced_graph.n; ++c) {
      bool internal = true;
      for (const idx u : reduced_graph.neighbors(c)) {
        if (part.part[u] != part.part[c]) {
          internal = false;
          break;
        }
      }
      if (internal) {
        stage_interior[verts[c]] = 1;
        ++stage_count;
      }
    }
    if (stage_count * 8 < static_cast<idx>(verts.size())) {
      // The reduced matrix is too dense for partitioning to expose interior
      // work; fall back to the sequential tail on the next iteration.
      for (const idx v : verts) stage_interior[v] = 0;
      depth = nested.max_depth;
      continue;
    }

    // --- Migrate every active row to its sub-domain's host rank.
    std::vector<IdxVec> new_active(nranks);
    {
      sim::ScopedPhase span(machine, "migrate");
      for (idx c = 0; c < reduced_graph.n; ++c) {
        const idx v = verts[c];
        const int new_host = part.part[c];
        if (host[v] != new_host) {
          machine.charge_transfer(host[v], new_host,
                                  row_bytes(state.tails[v], state.lrows[v]),
                                  "nested/migrate");
          host[v] = static_cast<idx>(new_host);
        }
        new_active[new_host].push_back(v);
      }
    }
    for (int r = 0; r < nranks; ++r) {
      std::sort(new_active[r].begin(), new_active[r].end());
    }
    active = std::move(new_active);

    // --- Number the stage's sub-interior rows host-major and factor.
    for (int r = 0; r < nranks; ++r) {
      for (const idx v : active[r]) {
        if (stage_interior[v]) sched.newnum[v] = next_num++;
      }
    }
    {
      sim::ScopedPhase span(machine, "number");
      machine.collective(static_cast<std::uint64_t>(stage_count) * sizeof(idx) / nranks +
                         sizeof(idx), "nested/number");
    }
    {
      sim::ScopedPhase span(machine, "stage");
      run_stage();
    }

    // --- Retire the factored rows.
    for (int r = 0; r < nranks; ++r) {
      IdxVec still;
      for (const idx v : active[r]) {
        if (stage_interior[v]) {
          stage_interior[v] = 0;
        } else {
          still.push_back(v);
        }
      }
      total_active -= static_cast<long long>(active[r].size() - still.size());
      active[r] = std::move(still);
    }
    for (const idx v : verts) compact_of[v] = -1;
    sched.level_start.push_back(next_num);
    ++stats.levels;
    ++depth;
  }
  if (sched.level_start.back() != n) sched.level_start.push_back(n);
  PTILU_CHECK(next_num == n, "nested numbering did not cover all rows");
  machine.check_quiescent("nested/end");

  pilut_detail::merge_lane_stats(lanes, stats);
  pilut_detail::finish_stats(machine, stats);
  sched.orig_of = invert_permutation(sched.newnum);
  sched.owner_new.resize(n);
  for (idx i = 0; i < n; ++i) sched.owner_new[sched.newnum[i]] = host[i];
  pilut_detail::assemble_factors(state.lrows, state.urows, sched.newnum, result.factors);
  result.factors.validate();
  sched.validate();
  return result;
}

}  // namespace ptilu
