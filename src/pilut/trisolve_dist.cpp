#include "ptilu/pilut/trisolve_dist.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "ptilu/ilu/block_kernels.hpp"
#include "ptilu/sim/trace.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

constexpr int kTagIdx = 20;
constexpr int kTagVal = 21;

void add_consumer(std::vector<std::vector<int>>& consumers, idx col, int rank) {
  auto& list = consumers[col];
  if (std::find(list.begin(), list.end(), rank) == list.end()) list.push_back(rank);
}

/// Ship the freshly computed values of `computed` (new ids owned by rank r)
/// to their consumer ranks, batched per peer.
void ship_values(sim::RankContext& ctx, const IdxVec& computed, const RealVec& x,
                 const std::vector<std::vector<int>>& consumers) {
  std::map<int, std::pair<IdxVec, RealVec>> batches;
  for (const idx i : computed) {
    for (const int peer : consumers[i]) {
      batches[peer].first.push_back(i);
      batches[peer].second.push_back(x[i]);
    }
  }
  for (auto& [peer, batch] : batches) {
    // Both call sites of this helper sit inside the solver's per-level
    // ScopedPhase; the phase is inherited lexically by the caller, not here.
    // ptilu-lint: allow(spmd-phase-coverage)
    ctx.send_indices(peer, kTagIdx, batch.first);
    ctx.send_reals(peer, kTagVal, batch.second);  // ptilu-lint: allow(spmd-phase-coverage)
  }
}

/// Drain the level's inbound messages into the rank's ghost-value map.
void drain_ghosts(sim::RankContext& ctx, std::unordered_map<idx, real>& ghost) {
  IdxVec pending_idx;
  RealVec pending_val;
  // Called only from the solver's per-level ScopedPhase (phase inherited
  // from the caller). ptilu-lint: allow(spmd-phase-coverage)
  for (const sim::Message& msg : ctx.recv_all()) {
    if (msg.tag == kTagIdx) {
      sim::decode_indices_append(msg, pending_idx);
    } else {
      PTILU_CHECK(msg.tag == kTagVal, "unexpected message in triangular solve");
      sim::decode_reals_append(msg, pending_val);
    }
  }
  PTILU_CHECK(pending_idx.size() == pending_val.size(), "ghost batch mismatch");
  for (std::size_t k = 0; k < pending_idx.size(); ++k) {
    ghost[pending_idx[k]] = pending_val[k];
  }
}

/// Ghost store for the batched solves: keyed offsets into k-strided value
/// storage. Like the scalar ghost maps, `pos` is keyed-lookup-only — never
/// iterated — so hash order cannot leak into modeled output.
struct BlockGhost {
  std::unordered_map<idx, std::size_t> pos;
  RealVec vals;
};

/// Batched counterpart of ship_values: the per-peer message carries the k
/// values of every computed index contiguously, so a level costs one
/// (idx, val) message pair per peer regardless of the batch width — the
/// alpha amortization the batched solve exists for.
void ship_values_block(sim::RankContext& ctx, const IdxVec& computed,
                       const DenseRhsBlock& x,
                       const std::vector<std::vector<int>>& consumers) {
  std::map<int, std::pair<IdxVec, RealVec>> batches;
  for (const idx i : computed) {
    for (const int peer : consumers[i]) {
      auto& batch = batches[peer];
      batch.first.push_back(i);
      for (int c = 0; c < x.k; ++c) batch.second.push_back(x.at(i, c));
    }
  }
  for (auto& [peer, batch] : batches) {
    // Both call sites of this helper sit inside the solver's per-level
    // ScopedPhase; the phase is inherited lexically by the caller, not here.
    // ptilu-lint: allow(spmd-phase-coverage)
    ctx.send_indices(peer, kTagIdx, batch.first);
    ctx.send_reals(peer, kTagVal, batch.second);  // ptilu-lint: allow(spmd-phase-coverage)
  }
}

/// Drain the level's inbound batched messages into the rank's ghost store.
void drain_ghosts_block(sim::RankContext& ctx, BlockGhost& ghost, int k) {
  IdxVec pending_idx;
  RealVec pending_val;
  // Called only from the solver's per-level ScopedPhase (phase inherited
  // from the caller). ptilu-lint: allow(spmd-phase-coverage)
  for (const sim::Message& msg : ctx.recv_all()) {
    if (msg.tag == kTagIdx) {
      sim::decode_indices_append(msg, pending_idx);
    } else {
      PTILU_CHECK(msg.tag == kTagVal, "unexpected message in triangular solve");
      sim::decode_reals_append(msg, pending_val);
    }
  }
  PTILU_CHECK(pending_val.size() == pending_idx.size() * static_cast<std::size_t>(k),
              "ghost batch mismatch");
  for (std::size_t t = 0; t < pending_idx.size(); ++t) {
    const std::size_t off = ghost.vals.size();
    for (int c = 0; c < k; ++c) ghost.vals.push_back(pending_val[t * k + c]);
    ghost.pos.insert_or_assign(pending_idx[t], off);
  }
}

}  // namespace

DistTriangularSolver::DistTriangularSolver(const IluFactors& factors,
                                           const PilutSchedule& schedule)
    : factors_(&factors), schedule_(&schedule) {
  const idx n = factors.n();
  PTILU_CHECK(static_cast<std::size_t>(n) == schedule.newnum.size(),
              "factors/schedule size mismatch");
  consumers_fwd_.resize(n);
  consumers_bwd_.resize(n);

  // Forward: a row may reference any earlier column on another rank (with
  // the plain PILUT schedule only interface columns cross ranks, but the
  // nested variant migrates interface rows, so interior columns can have
  // remote consumers too).
  const Csr& l = factors.l;
  for (idx i = 0; i < n; ++i) {
    const int owner_i = schedule.owner_new[i];
    for (nnz_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
      const idx j = l.col_idx[k];
      if (schedule.owner_new[j] != owner_i) add_consumer(consumers_fwd_, j, owner_i);
    }
  }
  // Backward: symmetric situation for later columns.
  const Csr& u = factors.u;
  for (idx i = 0; i < n; ++i) {
    const int owner_i = schedule.owner_new[i];
    for (nnz_t k = u.row_ptr[i] + 1; k < u.row_ptr[i + 1]; ++k) {
      const idx j = u.col_idx[k];
      if (schedule.owner_new[j] != owner_i) add_consumer(consumers_bwd_, j, owner_i);
    }
  }

  const int q = schedule.levels();
  rows_of_level_.assign(q, std::vector<IdxVec>(schedule.nranks));
  for (int level = 0; level < q; ++level) {
    for (idx i = schedule.level_start[level]; i < schedule.level_start[level + 1]; ++i) {
      rows_of_level_[level][schedule.owner_new[i]].push_back(i);
    }
  }
}

void DistTriangularSolver::forward(sim::Machine& machine, const RealVec& b,
                                   RealVec& y) const {
  const PilutSchedule& sched = *schedule_;
  const Csr& l = factors_->l;
  PTILU_CHECK(b.size() == static_cast<std::size_t>(l.n_rows) && y.size() == b.size(),
              "forward size mismatch");
  // Ghost maps are keyed lookups only — never iterated, so hash order
  // cannot leak into modeled output.
  std::vector<std::unordered_map<idx, real>> ghost(sched.nranks);
  sim::ScopedPhase solve_phase(machine, "trisolve/forward");

  // Phase 1: interior blocks — local work (interior rows only reference
  // their own rank's interior columns), then ship any interior values that
  // migrated interface rows on other ranks will need.
  {
  sim::ScopedPhase span(machine, "interior");
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    const auto [begin, end] = sched.interior_range[r];
    std::uint64_t flops = 0;
    IdxVec computed;
    for (idx i = begin; i < end; ++i) {
      real acc = b[i];
      for (nnz_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
        acc -= l.values[k] * y[l.col_idx[k]];
      }
      flops += 2 * static_cast<std::uint64_t>(l.row_nnz(i));
      y[i] = acc;
      if (!consumers_fwd_[i].empty()) computed.push_back(i);
    }
    ctx.charge_flops(flops);
    ship_values(ctx, computed, y, consumers_fwd_);
  }, "trisolve/fwd/interior");
  }

  // Phase 2: one superstep per independent-set level.
  sim::ScopedPhase levels_span(machine, "levels");
  for (int level = 0; level < levels(); ++level) {
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      drain_ghosts(ctx, ghost[r]);
      std::uint64_t flops = 0;
      const IdxVec& rows = rows_of_level_[level][r];
      for (const idx i : rows) {
        real acc = b[i];
        for (nnz_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
          const idx j = l.col_idx[k];
          const real value = sched.owner_new[j] == r ? y[j] : ghost[r].at(j);
          acc -= l.values[k] * value;
        }
        flops += 2 * static_cast<std::uint64_t>(l.row_nnz(i));
        y[i] = acc;
      }
      ctx.charge_flops(flops);
      ship_values(ctx, rows, y, consumers_fwd_);
    }, "trisolve/fwd/level");
  }
  // Drain any values shipped by the last level (no one consumes them in the
  // forward direction, but the queues must be left clean).
  machine.step([&](sim::RankContext& ctx) { (void)ctx.recv_all(); },
               "trisolve/fwd/drain");
  machine.check_quiescent("trisolve/fwd/end");
}

void DistTriangularSolver::backward(sim::Machine& machine, const RealVec& yin,
                                    RealVec& x) const {
  const PilutSchedule& sched = *schedule_;
  const Csr& u = factors_->u;
  PTILU_CHECK(yin.size() == static_cast<std::size_t>(u.n_rows) && x.size() == yin.size(),
              "backward size mismatch");
  // Keyed lookups only — never iterated (see forward_solve).
  std::vector<std::unordered_map<idx, real>> ghost(sched.nranks);
  sim::ScopedPhase solve_phase(machine, "trisolve/backward");

  // Phase 1: interface levels in reverse order.
  {
  sim::ScopedPhase span(machine, "levels");
  for (int level = levels() - 1; level >= 0; --level) {
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      drain_ghosts(ctx, ghost[r]);
      std::uint64_t flops = 0;
      const IdxVec& rows = rows_of_level_[level][r];
      // Descending order within the level: plain PILUT levels are
      // independent sets (order irrelevant), but the nested variant's
      // stages carry same-host sequential dependencies.
      for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
        const idx i = *it;
        const nnz_t start = u.row_ptr[i];
        real acc = yin[i];
        for (nnz_t k = start + 1; k < u.row_ptr[i + 1]; ++k) {
          const idx j = u.col_idx[k];
          const real value = sched.owner_new[j] == r ? x[j] : ghost[r].at(j);
          acc -= u.values[k] * value;
        }
        flops += 2 * static_cast<std::uint64_t>(u.row_nnz(i)) + 1;
        x[i] = acc / u.values[start];
      }
      ctx.charge_flops(flops);
      ship_values(ctx, rows, x, consumers_bwd_);
    }, "trisolve/bwd/level");
  }
  }

  // Phase 2: interior blocks in reverse. Interior U rows reference their
  // own interior block plus interface columns — the latter may live on
  // another rank when rows migrated (nested variant), so read via ghosts.
  {
  sim::ScopedPhase span(machine, "interior");
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    drain_ghosts(ctx, ghost[r]);
    const auto [begin, end] = sched.interior_range[r];
    std::uint64_t flops = 0;
    for (idx i = end - 1; i >= begin; --i) {
      const nnz_t start = u.row_ptr[i];
      real acc = yin[i];
      for (nnz_t k = start + 1; k < u.row_ptr[i + 1]; ++k) {
        const idx j = u.col_idx[k];
        const real value = sched.owner_new[j] == r ? x[j] : ghost[r].at(j);
        acc -= u.values[k] * value;
      }
      flops += 2 * static_cast<std::uint64_t>(u.row_nnz(i)) + 1;
      x[i] = acc / u.values[start];
    }
    ctx.charge_flops(flops);
  }, "trisolve/bwd/interior");
  }
  machine.check_quiescent("trisolve/bwd/end");
}

void DistTriangularSolver::apply(sim::Machine& machine, const RealVec& b,
                                 RealVec& x) const {
  RealVec y(b.size());
  forward(machine, b, y);
  backward(machine, y, x);
}

// ---- Batched multi-RHS solves ------------------------------------------
//
// Structurally the same interior + level supersteps as the scalar solves
// above (same phases, same superstep count), but every row carries its k
// columns through one sweep and every per-peer level message ships k
// values per index instead of one. Per column the accumulation order is
// exactly the scalar solve's, so column c of the result is bit-identical
// to a single-RHS solve of column c. The scalar paths stay untouched —
// they are pinned bit-exact by the existing differential suites.

void DistTriangularSolver::forward(sim::Machine& machine, const DenseRhsBlock& b,
                                   DenseRhsBlock& y) const {
  const PilutSchedule& sched = *schedule_;
  const Csr& l = factors_->l;
  PTILU_CHECK(b.n == l.n_rows && y.n == b.n && b.k == y.k && b.k >= 1,
              "batched forward block shape mismatch");
  const int k = b.k;
  const std::size_t stride = static_cast<std::size_t>(b.n);
  std::vector<BlockGhost> ghost(sched.nranks);
  sim::ScopedPhase solve_phase(machine, "trisolve/forward");

  {
  sim::ScopedPhase span(machine, "interior");
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    const auto [begin, end] = sched.interior_range[r];
    std::uint64_t flops = 0;
    IdxVec computed;
    RealVec acc(static_cast<std::size_t>(k));
    for (idx i = begin; i < end; ++i) {
      for (int c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] = b.at(i, c);
      for (nnz_t kk = l.row_ptr[i]; kk < l.row_ptr[i + 1]; ++kk) {
        rhs_axpy_any(k, acc.data(), l.values[kk], y.data.data() + l.col_idx[kk],
                     stride);
      }
      flops += 2 * static_cast<std::uint64_t>(l.row_nnz(i)) *
               static_cast<std::uint64_t>(k);
      for (int c = 0; c < k; ++c) y.at(i, c) = acc[static_cast<std::size_t>(c)];
      if (!consumers_fwd_[i].empty()) computed.push_back(i);
    }
    ctx.charge_flops(flops);
    ship_values_block(ctx, computed, y, consumers_fwd_);
  }, "trisolve/fwd/interior");
  }

  sim::ScopedPhase levels_span(machine, "levels");
  for (int level = 0; level < levels(); ++level) {
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      drain_ghosts_block(ctx, ghost[r], k);
      std::uint64_t flops = 0;
      RealVec acc(static_cast<std::size_t>(k));
      const IdxVec& rows = rows_of_level_[level][r];
      for (const idx i : rows) {
        for (int c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] = b.at(i, c);
        for (nnz_t kk = l.row_ptr[i]; kk < l.row_ptr[i + 1]; ++kk) {
          const idx j = l.col_idx[kk];
          if (sched.owner_new[j] == r) {
            rhs_axpy_any(k, acc.data(), l.values[kk], y.data.data() + j, stride);
          } else {
            rhs_axpy_any(k, acc.data(), l.values[kk],
                         ghost[r].vals.data() + ghost[r].pos.at(j), 1);
          }
        }
        flops += 2 * static_cast<std::uint64_t>(l.row_nnz(i)) *
                 static_cast<std::uint64_t>(k);
        for (int c = 0; c < k; ++c) y.at(i, c) = acc[static_cast<std::size_t>(c)];
      }
      ctx.charge_flops(flops);
      ship_values_block(ctx, rows, y, consumers_fwd_);
    }, "trisolve/fwd/level");
  }
  machine.step([&](sim::RankContext& ctx) { (void)ctx.recv_all(); },
               "trisolve/fwd/drain");
  machine.check_quiescent("trisolve/fwd/end");
}

void DistTriangularSolver::backward(sim::Machine& machine, const DenseRhsBlock& yin,
                                    DenseRhsBlock& x) const {
  const PilutSchedule& sched = *schedule_;
  const Csr& u = factors_->u;
  PTILU_CHECK(yin.n == u.n_rows && x.n == yin.n && yin.k == x.k && yin.k >= 1,
              "batched backward block shape mismatch");
  const int k = yin.k;
  const std::size_t stride = static_cast<std::size_t>(yin.n);
  std::vector<BlockGhost> ghost(sched.nranks);
  sim::ScopedPhase solve_phase(machine, "trisolve/backward");

  {
  sim::ScopedPhase span(machine, "levels");
  for (int level = levels() - 1; level >= 0; --level) {
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      drain_ghosts_block(ctx, ghost[r], k);
      std::uint64_t flops = 0;
      RealVec acc(static_cast<std::size_t>(k));
      const IdxVec& rows = rows_of_level_[level][r];
      // Descending order within the level, as in the scalar solve.
      for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
        const idx i = *it;
        const nnz_t start = u.row_ptr[i];
        for (int c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] = yin.at(i, c);
        for (nnz_t kk = start + 1; kk < u.row_ptr[i + 1]; ++kk) {
          const idx j = u.col_idx[kk];
          if (sched.owner_new[j] == r) {
            rhs_axpy_any(k, acc.data(), u.values[kk], x.data.data() + j, stride);
          } else {
            rhs_axpy_any(k, acc.data(), u.values[kk],
                         ghost[r].vals.data() + ghost[r].pos.at(j), 1);
          }
        }
        flops += (2 * static_cast<std::uint64_t>(u.row_nnz(i)) + 1) *
                 static_cast<std::uint64_t>(k);
        const real pivot = u.values[start];
        for (int c = 0; c < k; ++c) {
          x.at(i, c) = acc[static_cast<std::size_t>(c)] / pivot;
        }
      }
      ctx.charge_flops(flops);
      ship_values_block(ctx, rows, x, consumers_bwd_);
    }, "trisolve/bwd/level");
  }
  }

  {
  sim::ScopedPhase span(machine, "interior");
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    drain_ghosts_block(ctx, ghost[r], k);
    const auto [begin, end] = sched.interior_range[r];
    std::uint64_t flops = 0;
    RealVec acc(static_cast<std::size_t>(k));
    for (idx i = end - 1; i >= begin; --i) {
      const nnz_t start = u.row_ptr[i];
      for (int c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] = yin.at(i, c);
      for (nnz_t kk = start + 1; kk < u.row_ptr[i + 1]; ++kk) {
        const idx j = u.col_idx[kk];
        if (sched.owner_new[j] == r) {
          rhs_axpy_any(k, acc.data(), u.values[kk], x.data.data() + j, stride);
        } else {
          rhs_axpy_any(k, acc.data(), u.values[kk],
                       ghost[r].vals.data() + ghost[r].pos.at(j), 1);
        }
      }
      flops += (2 * static_cast<std::uint64_t>(u.row_nnz(i)) + 1) *
               static_cast<std::uint64_t>(k);
      const real pivot = u.values[start];
      for (int c = 0; c < k; ++c) {
        x.at(i, c) = acc[static_cast<std::size_t>(c)] / pivot;
      }
    }
    ctx.charge_flops(flops);
  }, "trisolve/bwd/interior");
  }
  machine.check_quiescent("trisolve/bwd/end");
}

void DistTriangularSolver::apply(sim::Machine& machine, const DenseRhsBlock& b,
                                 DenseRhsBlock& x) const {
  DenseRhsBlock y(b.n, b.k);
  forward(machine, b, y);
  backward(machine, y, x);
}

}  // namespace ptilu
