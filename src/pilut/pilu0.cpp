#include "ptilu/pilut/pilu0.hpp"

#include <algorithm>
#include <unordered_map>

#include "detail.hpp"
#include "ptilu/dist/mis_dist.hpp"
#include "ptilu/ilu/working_row.hpp"
#include "ptilu/sim/trace.hpp"
#include "ptilu/support/check.hpp"

namespace ptilu {

namespace {

constexpr int kTagUReq = 10;
constexpr int kTagUCols = 11;
constexpr int kTagUVals = 12;

using pilut_detail::Lane;

}  // namespace

PilutResult pilu0_factor(sim::Machine& machine, const DistCsr& dist,
                         const Pilu0Options& opts) {
  PTILU_CHECK(machine.nranks() == dist.nranks, "machine/partition rank mismatch");
  machine.reset();

  const Csr& a = dist.a;
  const idx n = a.n_rows;
  const int nranks = dist.nranks;
  const RealVec norms = row_norms(a, 2);

  PilutResult result;
  PilutStats& stats = result.stats;
  PilutSchedule& sched = result.schedule;
  sched.nranks = nranks;
  sched.newnum.assign(n, -1);

  // Interior numbering, exactly as in pilut_factor.
  sched.interior_range.resize(nranks);
  idx next_num = 0;
  for (int r = 0; r < nranks; ++r) {
    const idx begin = next_num;
    for (const idx v : dist.owned_rows[r]) {
      if (!dist.interface[v]) sched.newnum[v] = next_num++;
    }
    sched.interior_range[r] = {begin, next_num};
  }
  sched.n_interior = next_num;
  stats.interface_nodes = n - next_num;

  std::vector<SparseRow> lrows(n), urows(n);
  RealVec udiag(n, 0.0);
  // Per-lane scratch: one lane sequentially, one per rank when threaded
  // (see pilut_detail::Lane).
  std::vector<Lane> lanes = pilut_detail::make_lanes(machine, n);

  // The zero-fill numeric kernel: load the pattern row, eliminate the given
  // factored columns in ascending new-number order, updates restricted to
  // existing pattern positions. Discarded out-of-pattern updates are the
  // PILU0 analogue of dropping (fill is structurally zero).
  const auto factor_row = [&](Lane& lane, idx i, const IdxVec& factored_cols,
                              const auto& urow_of,
                              pilut_detail::FillDropTally& tally) -> std::uint64_t {
    WorkingRow& w = lane.w;
    std::uint64_t flops = 0;
    bool diag_present = false;
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      w.insert(a.col_idx[k], a.values[k]);
      diag_present |= a.col_idx[k] == i;
    }
    if (!diag_present) w.insert(i, 0.0);
    for (const idx k : factored_cols) {
      const SparseRow& urow = urow_of(k);
      const real multiplier = w.value(k) / urow.vals[0];
      ++flops;
      w.set(k, multiplier);
      if (multiplier == 0.0) continue;
      for (std::size_t p = 1; p < urow.size(); ++p) {
        const idx c = urow.cols[p];
        if (w.present(c)) {  // zero-fill: discard updates outside the pattern
          w.accumulate(c, -multiplier * urow.vals[p]);
          flops += 2;
        } else {
          ++tally.dropped;
        }
      }
    }
    return flops;
  };

  const auto split_row = [&](Lane& lane, idx i, const auto& is_factored,
                             pilut_detail::FillDropTally& tally) {
    WorkingRow& w = lane.w;
    SparseRow& lrow = lrows[i];
    SparseRow& upper = lane.scratch.ustage;  // pooled staging for the U part
    upper.clear();
    real diag = 0.0;
    for (const idx c : w.touched()) {
      if (c == i) {
        diag = w.value(c);
      } else if (is_factored(c)) {
        if (w.value(c) != 0.0) lrow.push(c, w.value(c));
      } else {
        upper.push(c, w.value(c));
      }
    }
    diag = safeguard_pivot(i, diag,
                           opts.pivot_rel > 0.0 ? opts.pivot_rel * norms[i] : 0.0,
                           tally.guarded);
    udiag[i] = diag;
    pilut_detail::emit_urow(urows[i], i, diag, upper);
    w.clear();
  };

  const pilut_detail::FactorCounters counters = pilut_detail::factor_counters(machine);

  // ===================== Phase 1: interior factorization ==================
  {
  sim::ScopedPhase span(machine, "factor/interior");
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    Lane& lane = lanes[static_cast<std::size_t>(ctx.lane())];
    std::uint64_t flops = 0;
    pilut_detail::FillDropTally tally;
    IdxVec factored_cols;
    for (const idx i : dist.owned_rows[r]) {
      if (dist.interface[i]) continue;
      factored_cols.clear();
      for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        const idx c = a.col_idx[k];
        if (c < i && !dist.interface[c]) factored_cols.push_back(c);
      }
      flops += factor_row(lane, i, factored_cols,
                          [&](idx k) -> const SparseRow& { return urows[k]; }, tally);
      split_row(lane, i, [&](idx c) { return c < i && !dist.interface[c]; }, tally);
    }
    ctx.charge_flops(flops);
    lane.pivots_guarded += tally.guarded;
    counters.commit(r, tally);
  }, "pilu0/interior");
  }
  stats.time_interior = machine.modeled_time();

  // ======== Color the interface graph with successive distributed MIS =====
  // The pattern is static, so all concurrent sets are computable up front —
  // this is exactly the structural advantage over ILUT that Figure 1 of the
  // paper illustrates. Coloring by repeated MIS on the uncolored residual
  // graph is the classic Jones–Plassmann scheme.
  std::vector<IdxVec> active(nranks);
  long long remaining = 0;
  for (int r = 0; r < nranks; ++r) {
    for (const idx v : dist.owned_rows[r]) {
      if (dist.interface[v]) active[r].push_back(v);
    }
    remaining += static_cast<long long>(active[r].size());
  }

  // Symmetrized interface adjacency (interface-to-interface couplings only),
  // built once: local edges directly, reverse edges via one exchange.
  const Csr sym = symmetrize_pattern(a);
  std::vector<std::vector<IdxVec>> adj(nranks);
  IdxVec pos_dense(n, -1);
  {
  sim::ScopedPhase span(machine, "factor/color/setup");
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    adj[r].resize(active[r].size());
    for (std::size_t i = 0; i < active[r].size(); ++i) pos_dense[active[r][i]] = static_cast<idx>(i);
    std::uint64_t scanned = 0;
    for (std::size_t i = 0; i < active[r].size(); ++i) {
      const idx v = active[r][i];
      for (nnz_t k = sym.row_ptr[v]; k < sym.row_ptr[v + 1]; ++k) {
        const idx c = sym.col_idx[k];
        ++scanned;
        if (c != v && dist.interface[c]) adj[r][i].push_back(c);
      }
    }
    ctx.charge_mem(scanned * sizeof(idx));
  }, "pilu0/color/setup");
  }

  std::vector<IdxVec> classes;  // color classes (global ids)
  {
    sim::ScopedPhase color_span(machine, "factor/color");
    DistMisScratch mis_scratch;
    // The residual graph lives directly in the DistGraph: each class strips
    // its vertices in place instead of deep-copying the adjacency per color.
    DistGraph graph;
    graph.n_global = n;
    graph.owner = &dist.owner;
    graph.verts_of = active;  // active is still needed for the factor phases
    graph.adj = std::move(adj);
    std::vector<std::uint8_t> colored(n, 0);
    while (remaining > 0) {
      const IdxVec cls = mis_dist(machine, graph,
                                  {.seed = 97 + classes.size(), .rounds = 64}, &mis_scratch);
      PTILU_CHECK(!cls.empty(), "coloring stalled");
      for (const idx v : cls) colored[v] = 1;
      remaining -= static_cast<long long>(cls.size());
      classes.push_back(cls);
      // Strip colored vertices from the residual graph.
      for (int r = 0; r < nranks; ++r) {
        IdxVec verts;
        std::vector<IdxVec> vadj;
        for (std::size_t i = 0; i < graph.verts_of[r].size(); ++i) {
          const idx v = graph.verts_of[r][i];
          if (colored[v]) continue;
          IdxVec neighbors;
          for (const idx u : graph.adj[r][i]) {
            if (!colored[u]) neighbors.push_back(u);
          }
          verts.push_back(v);
          vadj.push_back(std::move(neighbors));
        }
        graph.verts_of[r] = std::move(verts);
        graph.adj[r] = std::move(vadj);
      }
    }
  }

  // Number the classes rank-major and record the level boundaries.
  sched.level_start.push_back(sched.n_interior);
  std::vector<std::uint8_t> class_of(n, 0);
  {
  sim::ScopedPhase span(machine, "factor/number");
  for (const auto& cls : classes) {
    std::vector<IdxVec> by_rank(nranks);
    for (const idx v : cls) by_rank[dist.owner[v]].push_back(v);
    for (int r = 0; r < nranks; ++r) {
      for (const idx v : by_rank[r]) sched.newnum[v] = next_num++;
    }
    sched.level_start.push_back(next_num);
    machine.collective(static_cast<std::uint64_t>(cls.size()) * sizeof(idx) / nranks +
                       sizeof(idx), "pilu0/number");
  }
  }
  PTILU_CHECK(next_num == n, "coloring did not cover all interface rows");
  stats.levels = static_cast<int>(classes.size());

  // ================== Factor the interface rows class by class ============
  std::vector<std::uint8_t> factored_interface(n, 0);
  sim::ScopedPhase interface_phase(machine, "factor/interface");
  for (const auto& cls : classes) {
    std::vector<std::uint8_t> in_class(n, 0);
    for (const idx v : cls) in_class[v] = 1;

    // Exchange the remote U rows this class's eliminations need: row i in
    // the class references factored interface columns (pattern-static, so
    // requests are known a priori).
    // Keyed lookups only — never iterated, so hash order cannot leak into
    // modeled output.
    std::vector<std::unordered_map<idx, SparseRow>> remote_urows(nranks);
    {
    sim::ScopedPhase span(machine, "exchange");
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      std::vector<IdxVec> requests(nranks);
      for (const idx i : active[r]) {
        if (!in_class[i]) continue;
        for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
          const idx c = a.col_idx[k];
          if (dist.interface[c] && factored_interface[c] && dist.owner[c] != r) {
            requests[dist.owner[c]].push_back(c);
          }
        }
      }
      for (int peer = 0; peer < nranks; ++peer) {
        IdxVec& rows = requests[peer];
        if (rows.empty()) continue;
        std::sort(rows.begin(), rows.end());
        rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
        ctx.send_indices(peer, kTagUReq, rows);
      }
    }, "pilu0/exchange/request");
    machine.step([&](sim::RankContext& ctx) {
      IdxVec requested, cols_payload;
      RealVec vals_payload;
      for (const sim::Message& msg : ctx.recv_all()) {
        PTILU_CHECK(msg.tag == kTagUReq, "unexpected message in PILU0 exchange");
        requested.clear();
        sim::decode_indices_append(msg, requested);
        cols_payload.clear();
        vals_payload.clear();
        for (const idx row : requested) {
          const SparseRow& urow = urows[row];
          cols_payload.push_back(row);
          cols_payload.push_back(static_cast<idx>(urow.size()));
          cols_payload.insert(cols_payload.end(), urow.cols.begin(), urow.cols.end());
          vals_payload.insert(vals_payload.end(), urow.vals.begin(), urow.vals.end());
        }
        ctx.send_indices(msg.from, kTagUCols, cols_payload);
        ctx.send_reals(msg.from, kTagUVals, vals_payload);
      }
    }, "pilu0/exchange/reply");
    }
    {
    sim::ScopedPhase span(machine, "factor");
    machine.step([&](sim::RankContext& ctx) {
      const int r = ctx.rank();
      IdxVec cols_payload;
      RealVec vals_payload;
      for (const sim::Message& msg : ctx.recv_all()) {
        if (msg.tag == kTagUCols) {
          sim::decode_indices_append(msg, cols_payload);
        } else {
          sim::decode_reals_append(msg, vals_payload);
        }
      }
      std::size_t vpos = 0;
      for (std::size_t p = 0; p < cols_payload.size();) {
        const idx row = cols_payload[p++];
        const idx len = cols_payload[p++];
        SparseRow& urow = remote_urows[r][row];
        urow.cols.assign(cols_payload.begin() + p, cols_payload.begin() + p + len);
        urow.vals.assign(vals_payload.begin() + vpos, vals_payload.begin() + vpos + len);
        p += len;
        vpos += len;
      }
      const auto urow_of = [&](idx k) -> const SparseRow& {
        if (dist.owner[k] == r) return urows[k];
        const auto it = remote_urows[r].find(k);
        PTILU_CHECK(it != remote_urows[r].end(), "missing remote U row " << k);
        return it->second;
      };

      Lane& lane = lanes[static_cast<std::size_t>(ctx.lane())];
      std::uint64_t flops = 0;
      pilut_detail::FillDropTally tally;
      IdxVec factored_cols;
      for (const idx i : active[r]) {
        if (!in_class[i]) continue;
        factored_cols.clear();
        for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
          const idx c = a.col_idx[k];
          if (c == i) continue;
          if (!dist.interface[c] || factored_interface[c]) factored_cols.push_back(c);
        }
        // Ascending new number: local interiors first (ascending orig id),
        // then earlier-class interface columns by their assigned number.
        std::sort(factored_cols.begin(), factored_cols.end(), [&](idx x, idx y) {
          return sched.newnum[x] < sched.newnum[y];
        });
        flops += factor_row(lane, i, factored_cols, urow_of, tally);
        split_row(lane, i, [&](idx c) {
          return !dist.interface[c] || factored_interface[c];
        }, tally);
      }
      ctx.charge_flops(flops);
      lane.pivots_guarded += tally.guarded;
      counters.commit(r, tally);
    }, "pilu0/factor_class");
    }
    for (const idx v : cls) factored_interface[v] = 1;
  }
  machine.check_quiescent("pilu0/end");

  pilut_detail::merge_lane_stats(lanes, stats);
  stats.time_interface = machine.modeled_time() - stats.time_interior;
  stats.time_total = machine.modeled_time();
  const auto totals = machine.total_counters();
  stats.flops = totals.flops;
  stats.bytes_sent = totals.bytes_sent;
  stats.messages = totals.messages_sent;
  stats.supersteps = machine.supersteps();

  sched.orig_of = invert_permutation(sched.newnum);
  sched.owner_new.resize(n);
  for (idx i = 0; i < n; ++i) sched.owner_new[sched.newnum[i]] = dist.owner[i];
  pilut_detail::assemble_factors(lrows, urows, sched.newnum, result.factors);
  result.factors.validate();
  sched.validate();
  return result;
}

}  // namespace ptilu
