#include "detail.hpp"

#include <algorithm>

#include "ptilu/sim/trace.hpp"

namespace ptilu::pilut_detail {

FactorCounters factor_counters(sim::Machine& machine) {
  FactorCounters counters;
  counters.metrics = machine.metrics();
  if (counters.metrics != nullptr) {
    counters.fill = counters.metrics->counter_id("factor/fill");
    counters.dropped = counters.metrics->counter_id("factor/dropped");
    counters.guarded = counters.metrics->counter_id("factor/pivots_guarded");
  }
  return counters;
}

std::vector<Lane> make_lanes(const sim::Machine& machine, idx n) {
  std::vector<Lane> lanes;
  const int count = machine.scratch_lanes();
  lanes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) lanes.emplace_back(n);
  return lanes;
}

void merge_lane_stats(std::vector<Lane>& lanes, PilutStats& stats) {
  for (Lane& lane : lanes) {
    stats.pivots_guarded += lane.pivots_guarded;
    stats.max_reduced_row = std::max(stats.max_reduced_row, lane.max_reduced_row);
    lane.pivots_guarded = 0;
    lane.max_reduced_row = 0;
  }
}

void assemble_factors(const std::vector<SparseRow>& lrows,
                      const std::vector<SparseRow>& urows, const IdxVec& newnum,
                      IluFactors& out) {
  const idx n = static_cast<idx>(newnum.size());
  std::vector<SparseRow> lnew(n), unew(n);
  std::vector<std::pair<idx, real>> entries;
  for (idx orig = 0; orig < n; ++orig) {
    const idx row = newnum[orig];
    entries.clear();
    for (std::size_t p = 0; p < lrows[orig].size(); ++p) {
      entries.emplace_back(newnum[lrows[orig].cols[p]], lrows[orig].vals[p]);
    }
    std::sort(entries.begin(), entries.end());
    lnew[row].cols.reserve(entries.size());
    lnew[row].vals.reserve(entries.size());
    for (const auto& [c, v] : entries) {
      PTILU_ASSERT(c < row, "L entry not below the diagonal after renumbering");
      lnew[row].push(c, v);
    }
    entries.clear();
    for (std::size_t p = 0; p < urows[orig].size(); ++p) {
      entries.emplace_back(newnum[urows[orig].cols[p]], urows[orig].vals[p]);
    }
    std::sort(entries.begin(), entries.end());
    unew[row].cols.reserve(entries.size());
    unew[row].vals.reserve(entries.size());
    for (const auto& [c, v] : entries) unew[row].push(c, v);
  }
  out.l = rows_to_csr(n, lnew);
  out.u = rows_to_csr(n, unew);
}

void run_interior_phase(sim::Machine& machine, const DistCsr& dist,
                        const PilutOptions& opts, const RealVec& norms,
                        FactorState& state, std::vector<Lane>& lanes,
                        PilutSchedule& sched, PilutStats& stats) {
  const Csr& a = dist.a;
  const int nranks = dist.nranks;

  sched.interior_range.resize(nranks);
  idx next_num = 0;
  for (int r = 0; r < nranks; ++r) {
    const idx begin = next_num;
    for (const idx v : dist.owned_rows[r]) {
      if (!dist.interface[v]) sched.newnum[v] = next_num++;
    }
    sched.interior_range[r] = {begin, next_num};
  }
  sched.n_interior = next_num;
  stats.interface_nodes = a.n_rows - next_num;

  const FactorCounters counters = factor_counters(machine);
  sim::ScopedPhase phase(machine, "factor/interior");
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    Lane& lane = lanes[static_cast<std::size_t>(ctx.lane())];
    WorkingRow& w = lane.w;
    FactorScratch& scratch = lane.scratch;
    std::uint64_t flops = 0;
    FillDropTally tally;
    for (const idx i : dist.owned_rows[r]) {
      if (dist.interface[i]) continue;
      const real tau_i = opts.tau * norms[i];
      const auto eliminatable = [&](idx c) { return c < i && !dist.interface[c]; };
      ColumnHeap heap = make_column_heap(scratch.heap);
      for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        const idx c = a.col_idx[k];
        w.insert(c, a.values[k]);
        if (eliminatable(c)) heap.push(c);  // columns are local by definition
      }
      flops += eliminate_cascading(w, state, tau_i, heap, eliminatable, tally);

      SparseRow& lstage = scratch.lstage;
      SparseRow& ustage = scratch.ustage;
      lstage.clear();
      ustage.clear();
      real diag = 0.0;
      for (const idx c : w.touched()) {
        const real v = w.value(c);
        if (c == i) {
          diag = v;
        } else if (c < i && !dist.interface[c]) {
          if (v != 0.0) lstage.push(c, v);
        } else {
          // Interface columns and larger interior columns are all U-side:
          // every interface column is numbered after every interior one.
          ustage.push(c, v);
        }
      }
      const std::size_t staged = lstage.size() + ustage.size();
      select_largest(lstage, opts.m, tau_i, -1, scratch.kept);
      select_largest(ustage, opts.m, tau_i, -1, scratch.kept);
      tally.dropped += staged - lstage.size() - ustage.size();
      diag = safeguard_pivot(i, diag,
                             opts.pivot_rel > 0.0 ? opts.pivot_rel * norms[i] : 0.0,
                             tally.guarded);
      state.udiag[i] = diag;
      state.lrows[i].cols = lstage.cols;  // exact-sized survivor copies
      state.lrows[i].vals = lstage.vals;
      emit_urow(state.urows[i], i, diag, ustage);
      state.factored[i] = true;
      w.clear();
    }
    ctx.charge_flops(flops);
    lane.pivots_guarded += tally.guarded;
    counters.commit(r, tally);
  }, "pilut/interior");
  stats.time_interior = machine.modeled_time();
}

void run_initial_reduction(sim::Machine& machine, const DistCsr& dist,
                           const PilutOptions& opts, const RealVec& norms,
                           idx tail_cap, FactorState& state,
                           std::vector<Lane>& lanes) {
  const Csr& a = dist.a;
  const FactorCounters counters = factor_counters(machine);
  sim::ScopedPhase phase(machine, "factor/interface/form_reduced");
  machine.step([&](sim::RankContext& ctx) {
    const int r = ctx.rank();
    Lane& lane = lanes[static_cast<std::size_t>(ctx.lane())];
    WorkingRow& w = lane.w;
    FactorScratch& scratch = lane.scratch;
    std::uint64_t flops = 0, copied = 0;
    FillDropTally tally;
    for (const idx i : dist.owned_rows[r]) {
      if (!dist.interface[i]) continue;
      const real tau_i = opts.tau * norms[i];
      const auto eliminatable = [&](idx c) { return !dist.interface[c]; };
      ColumnHeap heap = make_column_heap(scratch.heap);
      for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        const idx c = a.col_idx[k];
        w.insert(c, a.values[k]);
        if (eliminatable(c)) heap.push(c);  // interior => local => factored
      }
      if (!w.present(i)) w.insert(i, 0.0);  // keep the diagonal structurally
      flops += eliminate_cascading(w, state, tau_i, heap, eliminatable, tally);

      SparseRow& lstage = scratch.lstage;
      lstage.clear();
      SparseRow& tail = state.tails[i];
      for (const idx c : w.touched()) {
        const real v = w.value(c);
        if (!dist.interface[c]) {
          if (v != 0.0) lstage.push(c, v);  // factored (interior) columns -> L
        } else {
          tail.push(c, v);  // unfactored interface columns (incl. diagonal)
        }
      }
      const std::size_t l_before = lstage.size();
      select_largest(lstage, opts.m, tau_i, -1, scratch.kept);  // 3rd dropping rule (L side)
      tally.dropped += l_before - lstage.size();
      state.lrows[i].cols = lstage.cols;
      state.lrows[i].vals = lstage.vals;
      if (tail_cap > 0) {
        const std::size_t t_before = tail.size();
        select_largest(tail, tail_cap, 0.0, /*always_keep=*/i, scratch.kept);  // ILUT* cap
        tally.dropped += t_before - tail.size();
      }
      lane.max_reduced_row =
          std::max(lane.max_reduced_row, static_cast<nnz_t>(tail.size()));
      copied += tail.size() * (sizeof(idx) + sizeof(real));
      w.clear();
    }
    ctx.charge_flops(flops);
    ctx.charge_mem(copied);
    counters.commit(r, tally);
  }, "pilut/form_reduced");
}

void finish_stats(const sim::Machine& machine, PilutStats& stats) {
  stats.time_interface = machine.modeled_time() - stats.time_interior;
  stats.time_total = machine.modeled_time();
  const auto totals = machine.total_counters();
  stats.flops = totals.flops;
  stats.bytes_sent = totals.bytes_sent;
  stats.messages = totals.messages_sent;
  stats.supersteps = machine.supersteps();
}

}  // namespace ptilu::pilut_detail
