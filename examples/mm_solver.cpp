// General-purpose command-line solver: read any Matrix Market system, pick
// a preconditioner and ordering, solve with GMRES, and report. This is the
// "bring your own matrix" entry point for downstream users.
//
//   ./build/examples/mm_solver --matrix=system.mtx
//       [--precond=pilut|pilut-star|pilu0|ilut|ilu0|iluk|jacobi|none]
//       [--procs=16] [--m=10] [--tau=1e-4] [--k=2] [--level=1]
//       [--restart=30] [--rtol=1e-6] [--rcm] [--equilibrate]
#include <iostream>
#include <memory>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/graph/rcm.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/pilut/pilu0.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/sparse/mm_io.hpp"
#include "ptilu/sparse/scaling.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/cli.hpp"
#include "ptilu/support/table.hpp"
#include "ptilu/support/timer.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

int main(int argc, char** argv) {
  using namespace ptilu;
  try {
    const Cli cli(argc, argv);
    const std::string matrix_path = cli.get_string("matrix", "");
    const std::string precond_name = cli.get_string("precond", "pilut-star");
    const int nranks = static_cast<int>(cli.get_int("procs", 16));
    const idx m = static_cast<idx>(cli.get_int("m", 10));
    const real tau = cli.get_double("tau", 1e-4);
    const idx cap_k = static_cast<idx>(cli.get_int("k", 2));
    const idx level = static_cast<idx>(cli.get_int("level", 1));
    const int restart = static_cast<int>(cli.get_int("restart", 30));
    const real rtol = cli.get_double("rtol", 1e-6);
    const bool use_rcm = cli.get_bool("rcm", false);
    const bool use_equilibration = cli.get_bool("equilibrate", false);
    cli.check_all_consumed();

    WallTimer wall;
    Csr a = matrix_path.empty() ? workloads::convection_diffusion_2d(64, 64, 8.0, 4.0)
                                : read_matrix_market_file(matrix_path);
    if (matrix_path.empty()) {
      std::cout << "(no --matrix given; using a built-in 64x64 convection-diffusion "
                   "problem)\n";
    }
    std::cout << "matrix: " << workloads::describe(workloads::matrix_stats(a)) << "\n";

    // Optional preprocessing.
    Equilibration eq;
    if (use_equilibration) {
      eq = equilibrate(a);
      a = eq.scaled;
      std::cout << "applied Ruiz equilibration\n";
    }
    IdxVec rcm;
    if (use_rcm) {
      const idx before = bandwidth(a);
      rcm = rcm_ordering(graph_from_pattern(a));
      a = permute_symmetric(a, rcm);
      std::cout << "applied RCM: bandwidth " << before << " -> " << bandwidth(a) << "\n";
    }

    // Right-hand side: b = A e so the exact solution is known.
    const RealVec b = workloads::rhs_all_ones_solution(a);

    // Build the preconditioner.
    std::unique_ptr<Preconditioner> precond;
    double factor_seconds = 0.0;
    WallTimer factor_timer;
    if (precond_name == "pilut" || precond_name == "pilut-star" ||
        precond_name == "pilu0") {
      const Graph g = graph_from_pattern(a);
      const Partition p = partition_kway(g, nranks);
      const DistCsr dist = DistCsr::create(a, p);
      sim::Machine machine(nranks);
      PilutResult result =
          precond_name == "pilu0"
              ? pilu0_factor(machine, dist, {.pivot_rel = 1e-12})
              : pilut_factor(machine, dist,
                             {.m = m,
                              .tau = tau,
                              .cap_k = precond_name == "pilut-star" ? cap_k : 0,
                              .pivot_rel = 1e-12});
      std::cout << precond_name << ": " << result.stats.levels
                << " levels, modeled parallel factor time "
                << format_sci(result.stats.time_total, 3) << "s\n";
      precond = std::make_unique<IluPreconditioner>(std::move(result.factors),
                                                    std::move(result.schedule.newnum));
    } else if (precond_name == "ilut") {
      precond = std::make_unique<IluPreconditioner>(
          ilut(a, {.m = m, .tau = tau, .pivot_rel = 1e-12}));
    } else if (precond_name == "ilu0") {
      precond = std::make_unique<IluPreconditioner>(ilu0(a));
    } else if (precond_name == "iluk") {
      precond = std::make_unique<IluPreconditioner>(iluk(a, level));
    } else if (precond_name == "jacobi") {
      precond = std::make_unique<JacobiPreconditioner>(a);
    } else if (precond_name == "none") {
      precond = std::make_unique<IdentityPreconditioner>();
    } else {
      std::cerr << "unknown --precond '" << precond_name << "'\n";
      return 2;
    }
    factor_seconds = factor_timer.seconds();

    RealVec x(a.n_rows, 0.0);
    WallTimer solve_timer;
    const GmresResult result =
        gmres(a, *precond, b, x, {.restart = restart, .max_matvecs = 50000, .rtol = rtol});
    const double solve_seconds = solve_timer.seconds();

    RealVec residual_vec(a.n_rows);
    residual(a, x, b, residual_vec);
    RealVec ones(a.n_rows, 1.0);
    std::cout << "GMRES(" << restart << "): "
              << (result.converged ? "converged" : "DID NOT CONVERGE") << " in "
              << result.matvecs << " matvecs (" << result.restarts << " restarts)\n"
              << "true relative residual: "
              << format_sci(norm2(residual_vec) / norm2(b), 2) << ", max error vs exact "
              << format_sci(max_abs_diff(x, ones), 2) << "\n"
              << "wall: factor " << format_fixed(factor_seconds, 3) << "s, solve "
              << format_fixed(solve_seconds, 3) << "s, total "
              << format_fixed(wall.seconds(), 3) << "s\n";
    return result.converged ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
