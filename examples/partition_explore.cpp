// Explore the multilevel k-way partitioner on its own: sweep processor
// counts and compare against the baseline partitioners, reporting the
// quantities that drive the parallel factorization (edge cut, balance,
// interface fraction). Accepts any Matrix Market file via --matrix.
//
//   ./build/examples/partition_explore --n=128 --parts=2,4,8,16,32,64
//   ./build/examples/partition_explore --matrix=my_matrix.mtx
#include <iostream>

#include "ptilu/graph/graph.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/sparse/mm_io.hpp"
#include "ptilu/support/cli.hpp"
#include "ptilu/support/table.hpp"
#include "ptilu/support/timer.hpp"
#include "ptilu/workloads/grids.hpp"

int main(int argc, char** argv) {
  using namespace ptilu;
  const Cli cli(argc, argv);
  const idx n_side = static_cast<idx>(cli.get_int("n", 128));
  const auto parts = cli.get_int_list("parts", {2, 4, 8, 16, 32, 64});
  const std::string matrix_path = cli.get_string("matrix", "");
  cli.check_all_consumed();

  const Csr a = matrix_path.empty()
                    ? workloads::convection_diffusion_2d(n_side, n_side)
                    : read_matrix_market_file(matrix_path);
  const Graph g = graph_from_pattern(a);
  std::cout << "graph: " << g.n << " vertices, " << g.num_edges_directed() / 2
            << " edges, " << count_components(g) << " component(s)\n\n";

  Table table({"k", "partitioner", "edge cut", "imbalance", "interface %", "time (s)"});
  for (const int k : parts) {
    if (k > g.n) break;
    struct Entry {
      const char* name;
      Partition partition;
      double seconds;
    };
    std::vector<Entry> entries;
    {
      WallTimer t;
      Partition p = partition_kway(g, k);
      entries.push_back({"multilevel", std::move(p), t.seconds()});
    }
    {
      WallTimer t;
      Partition p = partition_block(g, k);
      entries.push_back({"block", std::move(p), t.seconds()});
    }
    {
      WallTimer t;
      Partition p = partition_random(g, k, 1);
      entries.push_back({"random", std::move(p), t.seconds()});
    }
    for (const auto& e : entries) {
      table.row()
          .cell(static_cast<long long>(k))
          .cell(e.name)
          .cell(edge_cut(g, e.partition))
          .cell(imbalance(g, e.partition), 3)
          .cell(100.0 * count_interface(g, e.partition) / g.n, 1)
          .cell(e.seconds, 3);
    }
  }
  table.print(std::cout);
  return 0;
}
