// The paper's motivating application: solving the electrocardiographic
// forward problem — Laplace's equation over the inhomogeneous tissue of a
// human thorax (Klepfer et al. '95). This example assembles the synthetic
// torso FEM system (see DESIGN.md on the substitution for the proprietary
// mesh), then compares three preconditioners at increasing strength:
// diagonal scaling, parallel ILUT*, and parallel ILUT.
//
//   ./build/examples/torso_ecg --nx=28 --nz=40 --procs=32
#include <iostream>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/cli.hpp"
#include "ptilu/support/table.hpp"
#include "ptilu/support/timer.hpp"
#include "ptilu/workloads/rhs.hpp"
#include "ptilu/workloads/torso.hpp"

int main(int argc, char** argv) {
  using namespace ptilu;
  const Cli cli(argc, argv);
  workloads::TorsoOptions topts;
  topts.nx = topts.ny = static_cast<idx>(cli.get_int("nx", 28));
  topts.nz = static_cast<idx>(cli.get_int("nz", 40));
  const int nranks = static_cast<int>(cli.get_int("procs", 32));
  const idx m = static_cast<idx>(cli.get_int("m", 10));
  const real tau = cli.get_double("tau", 1e-4);
  const int restart = static_cast<int>(cli.get_int("restart", 50));
  cli.check_all_consumed();

  WallTimer wall;
  const workloads::TorsoMatrix torso = workloads::fem_torso_3d(topts);
  const Csr& a = torso.a;
  std::cout << "ECG torso model: " << torso.n_nodes << " nodes, " << a.nnz()
            << " nonzeros (tissues: muscle/lung/blood/bone conductivities "
            << topts.sigma_muscle << "/" << topts.sigma_lung << "/" << topts.sigma_blood
            << "/" << topts.sigma_bone << " S/m)\n";

  // A dipole-like source inside the heart region: b = A e keeps the exact
  // solution known while exercising the same solve.
  const RealVec b = workloads::rhs_all_ones_solution(a);

  const Graph graph = graph_from_pattern(a);
  const Partition partition = partition_kway(graph, nranks);
  const DistCsr dist = DistCsr::create(a, partition);
  std::cout << "partitioned over " << nranks << " processors, interface fraction "
            << format_fixed(100.0 * dist.interface_count_total() / a.n_rows, 1)
            << "%\n\n";

  Table table({"Preconditioner", "factor time (modeled)", "levels q", "GMRES NMV",
               "converged"});

  const auto report = [&](const std::string& name, const Preconditioner& precond,
                          double factor_time, int levels) {
    RealVec x(a.n_rows, 0.0);
    const GmresResult result =
        gmres(a, precond, b, x, {.restart = restart, .max_matvecs = 20000});
    table.row()
        .cell(name)
        .cell(factor_time, 4)
        .cell(static_cast<long long>(levels))
        .cell(static_cast<long long>(result.matvecs))
        .cell(result.converged ? "yes" : "NO");
  };

  report("Diagonal", JacobiPreconditioner(a), 0.0, 0);

  sim::Machine machine(nranks);
  const PilutResult star = pilut_factor(
      machine, dist, {.m = m, .tau = tau, .cap_k = 2, .pivot_rel = 1e-12});
  report("ILUT*(" + std::to_string(m) + "," + format_sci(tau, 0) + ",2)",
         IluPreconditioner(star.factors, star.schedule.newnum), star.stats.time_total,
         star.stats.levels);

  const PilutResult plain =
      pilut_factor(machine, dist, {.m = m, .tau = tau, .pivot_rel = 1e-12});
  report("ILUT(" + std::to_string(m) + "," + format_sci(tau, 0) + ")",
         IluPreconditioner(plain.factors, plain.schedule.newnum), plain.stats.time_total,
         plain.stats.levels);

  table.print(std::cout);
  std::cout << "\n[wall time " << format_fixed(wall.seconds(), 2) << "s]\n";
  return 0;
}
