// End-to-end convection-diffusion solve (the paper's G0 scenario) with a
// full breakdown: partitioning quality, factorization phases, triangular
// solve cost, and GMRES convergence — all configurable from the command
// line.
//
//   ./build/examples/poisson2d_solve --n=240 --procs=32 --m=10 --tau=1e-4
//       [--k=2] [--restart=20] [--conv=10]
#include <iostream>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/cli.hpp"
#include "ptilu/support/table.hpp"
#include "ptilu/support/timer.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

int main(int argc, char** argv) {
  using namespace ptilu;
  const Cli cli(argc, argv);
  const idx n_side = static_cast<idx>(cli.get_int("n", 240));
  const int nranks = static_cast<int>(cli.get_int("procs", 32));
  const idx m = static_cast<idx>(cli.get_int("m", 10));
  const real tau = cli.get_double("tau", 1e-4);
  const idx cap_k = static_cast<idx>(cli.get_int("k", 2));
  const int restart = static_cast<int>(cli.get_int("restart", 20));
  const real conv = cli.get_double("conv", 10.0);
  cli.check_all_consumed();

  WallTimer wall;
  const Csr a = workloads::convection_diffusion_2d(n_side, n_side, conv, conv / 2);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  std::cout << "problem: " << n_side << "x" << n_side << " convection-diffusion, n="
            << a.n_rows << ", nnz=" << a.nnz() << "\n";

  const Graph graph = graph_from_pattern(a);
  const Partition partition = partition_kway(graph, nranks);
  const DistCsr dist = DistCsr::create(a, partition);
  std::cout << "partition: " << nranks << " domains, edge cut "
            << edge_cut(graph, partition) << ", imbalance "
            << format_fixed(imbalance(graph, partition), 3) << ", interface nodes "
            << dist.interface_count_total() << " ("
            << format_fixed(100.0 * dist.interface_count_total() / a.n_rows, 1)
            << "%)\n";

  sim::Machine machine(nranks);
  const PilutResult fact = pilut_factor(
      machine, dist, {.m = m, .tau = tau, .cap_k = cap_k, .pivot_rel = 1e-12});
  std::cout << "factorization " << (cap_k > 0 ? "ILUT*" : "ILUT") << "(m=" << m
            << ", t=" << format_sci(tau, 0);
  if (cap_k > 0) std::cout << ", k=" << cap_k;
  std::cout << "):\n"
            << "  interior phase (modeled): " << format_fixed(fact.stats.time_interior, 4)
            << "s\n"
            << "  interface phase (modeled): "
            << format_fixed(fact.stats.time_interface, 4) << "s, "
            << fact.stats.levels << " independent sets\n"
            << "  fill factor: " << format_fixed(fact.factors.fill_factor(a.nnz()), 2)
            << ", messages: " << fact.stats.messages << ", bytes: "
            << fact.stats.bytes_sent << "\n";

  const DistTriangularSolver solver(fact.factors, fact.schedule);
  machine.reset();
  RealVec scratch(a.n_rows);
  solver.apply(machine, b, scratch);
  std::cout << "  one preconditioner application (modeled): "
            << format_sci(machine.modeled_time(), 3) << "s\n";

  RealVec x(a.n_rows, 0.0);
  const IluPreconditioner precond(fact.factors, fact.schedule.newnum);
  const GmresResult result = gmres(a, precond, b, x, {.restart = restart});
  RealVec ones(a.n_rows, 1.0);
  std::cout << "GMRES(" << restart << "): " << (result.converged ? "converged" : "FAILED")
            << " in " << result.matvecs << " matvecs, residual "
            << format_sci(result.final_residual, 2) << ", max error vs exact "
            << format_sci(max_abs_diff(x, ones), 2) << "\n";
  std::cout << "[wall time " << format_fixed(wall.seconds(), 2) << "s]\n";
  return result.converged ? 0 : 1;
}
