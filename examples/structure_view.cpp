// Reproduces Figure 3 of the paper as ASCII art: the block structure of
// the L and U factors after the parallel ILUT ordering — per-rank interior
// diagonal blocks followed by the independent-set levels, with off-diagonal
// coupling blocks. Each character cell aggregates a sub-block of the
// factor; density maps to ' . : * #'.
//
//   ./build/examples/structure_view --n=48 --procs=4 --cells=48
#include <iostream>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/support/cli.hpp"
#include "ptilu/workloads/grids.hpp"

namespace {

using namespace ptilu;

void render(const Csr& matrix, idx cells, const PilutSchedule& sched,
            const char* title) {
  const idx n = matrix.n_rows;
  std::vector<std::vector<nnz_t>> density(cells, std::vector<nnz_t>(cells, 0));
  auto cell_of = [&](idx v) {
    return std::min<idx>(cells - 1, static_cast<idx>(static_cast<long long>(v) * cells / n));
  };
  for (idx i = 0; i < n; ++i) {
    for (nnz_t k = matrix.row_ptr[i]; k < matrix.row_ptr[i + 1]; ++k) {
      ++density[cell_of(i)][cell_of(matrix.col_idx[k])];
    }
  }
  nnz_t max_density = 1;
  for (const auto& row : density) {
    for (const nnz_t d : row) max_density = std::max(max_density, d);
  }
  std::cout << "\n" << title << " (each cell ~" << (n / cells) << " rows; '|' marks the"
            << " interior/interface boundary)\n";
  const idx boundary_cell = cell_of(sched.n_interior);
  const char shades[] = {' ', '.', ':', '*', '#'};
  for (idx r = 0; r < cells; ++r) {
    for (idx c = 0; c < cells; ++c) {
      if (c == boundary_cell && density[r][c] == 0) {
        std::cout << '|';
        continue;
      }
      const double level = static_cast<double>(density[r][c]) / static_cast<double>(max_density);
      const int shade = density[r][c] == 0 ? 0
                        : 1 + std::min(3, static_cast<int>(level * 4));
      std::cout << shades[shade];
    }
    std::cout << (r == boundary_cell ? "  <- interface rows start" : "") << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptilu;
  const Cli cli(argc, argv);
  const idx n_side = static_cast<idx>(cli.get_int("n", 48));
  const int nranks = static_cast<int>(cli.get_int("procs", 4));
  const idx cells = static_cast<idx>(cli.get_int("cells", 48));
  const idx m = static_cast<idx>(cli.get_int("m", 10));
  const real tau = cli.get_double("tau", 1e-4);
  cli.check_all_consumed();

  const Csr a = workloads::convection_diffusion_2d(n_side, n_side, 6.0, 3.0);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks);
  const DistCsr dist = DistCsr::create(a, p);
  sim::Machine machine(nranks);
  const PilutResult result =
      pilut_factor(machine, dist, {.m = m, .tau = tau, .pivot_rel = 1e-12});

  std::cout << "parallel ILUT ordering of a " << n_side << "x" << n_side
            << " grid over " << nranks << " processors: " << result.schedule.n_interior
            << " interior rows (" << nranks << " blocks), "
            << (a.n_rows - result.schedule.n_interior) << " interface rows in "
            << result.stats.levels << " independent-set levels\n";
  render(result.factors.l, cells, result.schedule, "L factor");
  render(result.factors.u, cells, result.schedule, "U factor");
  std::cout << "\nCompare with Figure 3 of the paper: per-processor interior\n"
               "triangles on the diagonal, interface coupling confined to the\n"
               "trailing rows/columns, level-structured blocks inside those.\n";
  return 0;
}
