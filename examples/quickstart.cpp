// Quickstart: the five-minute tour of the library.
//
//   1. build a sparse matrix (2-D Poisson problem),
//   2. partition it across 4 simulated processors,
//   3. run the parallel ILUT* factorization,
//   4. solve A x = b with GMRES using the factorization as preconditioner,
//   5. print what happened.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

int main() {
  using namespace ptilu;

  // 1. A 64x64 Poisson problem with a bit of convection (4096 unknowns).
  const Csr a = workloads::convection_diffusion_2d(64, 64, 8.0, 4.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);  // exact solution: all ones
  std::printf("matrix: n=%d, nnz=%lld\n", a.n_rows, static_cast<long long>(a.nnz()));

  // 2. Partition the adjacency graph into 4 domains and distribute rows.
  const Graph graph = graph_from_pattern(a);
  const Partition partition = partition_kway(graph, 4);
  const DistCsr dist = DistCsr::create(a, partition);
  std::printf("partition: edge cut=%lld, interface nodes=%d of %d\n",
              edge_cut(graph, partition), dist.interface_count_total(), dist.n());

  // 3. Parallel ILUT*(m=10, t=1e-4, k=2) on a 4-rank simulated machine.
  sim::Machine machine(4);
  const PilutResult factorization =
      pilut_factor(machine, dist, {.m = 10, .tau = 1e-4, .cap_k = 2});
  std::printf("factorization: %d independent-set levels, modeled time %.4fs, "
              "fill factor %.2f\n",
              factorization.stats.levels, factorization.stats.time_total,
              factorization.factors.fill_factor(a.nnz()));

  // 4. GMRES(20), left-preconditioned with the (permuted) parallel factors.
  RealVec x(a.n_rows, 0.0);
  const IluPreconditioner precond(factorization.factors, factorization.schedule.newnum);
  const GmresResult result = gmres(a, precond, b, x, {.restart = 20});

  // 5. Report.
  RealVec ones(a.n_rows, 1.0);
  std::printf("GMRES: converged=%s after %d matrix-vector products\n",
              result.converged ? "yes" : "NO", result.matvecs);
  std::printf("solution error vs exact: %.2e\n", max_abs_diff(x, ones));
  return result.converged ? 0 : 1;
}
