// Generates a small but complete Chrome trace for the ctest validator
// (scripts/check_trace.py): a 4-rank PILUT factorization, one
// forward+backward substitution, and a short distributed GMRES, all traced
// into a single file across the machine resets. Prints the per-phase table
// so failures are diagnosable from the ctest log.
//
// Usage: ptilu_trace_smoke <output.trace.json>
#include <iostream>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/krylov/gmres_dist.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/sim/trace.hpp"
#include "ptilu/workloads/grids.hpp"

int main(int argc, char** argv) {
  using namespace ptilu;
  if (argc != 2) {
    std::cerr << "usage: ptilu_trace_smoke <output.trace.json>\n";
    return 2;
  }

  const int nranks = 4;
  const Csr a = workloads::convection_diffusion_2d(16, 16, 10.0, 20.0);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks, {.seed = 1});
  const DistCsr dist = DistCsr::create(a, p);
  const Halo halo = Halo::build(dist);

  sim::Machine machine(nranks);
  sim::Trace trace;
  machine.attach_trace(&trace);

  const PilutResult fact =
      pilut_factor(machine, dist, {.m = 5, .tau = 1e-2, .pivot_rel = 1e-12});
  const double factor_time = machine.modeled_time();

  const DistTriangularSolver solver(fact.factors, fact.schedule);
  const RealVec b(dist.n(), 1.0);
  RealVec x(dist.n(), 0.0);
  machine.reset();
  solver.apply(machine, b, x);

  RealVec x2(dist.n(), 0.0);
  const GmresResult gres = gmres_dist(machine, dist, halo, fact, b, x2,
                                      {.restart = 10, .max_matvecs = 100, .rtol = 1e-6});

  machine.attach_trace(nullptr);
  trace.write_chrome_trace_file(argv[1]);

  trace.write_phase_table(std::cout);
  std::cout << "factor " << factor_time << " s, gmres matvecs " << gres.matvecs
            << ", spans " << trace.spans().size() << ", wrote " << argv[1] << "\n";
  if (trace.spans().empty()) {
    std::cerr << "error: no spans recorded\n";
    return 1;
  }
  return 0;
}
