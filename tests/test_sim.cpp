// Tests for the simulated distributed-memory machine (BSP cost model).
#include <gtest/gtest.h>

#include "ptilu/sim/machine.hpp"

namespace ptilu::sim {
namespace {

TEST(Machine, StartsAtZero) {
  Machine m(4);
  EXPECT_EQ(m.nranks(), 4);
  EXPECT_DOUBLE_EQ(m.modeled_time(), 0.0);
  EXPECT_EQ(m.supersteps(), 0u);
}

TEST(Machine, FlopsAdvanceClock) {
  Machine m(2);
  m.step([](RankContext& ctx) {
    if (ctx.rank() == 0) ctx.charge_flops(1000);
  });
  // Barrier raises everyone to rank 0's time plus sync cost.
  const double expected = 1000 * m.params().flop;
  EXPECT_GE(m.modeled_time(), expected);
  EXPECT_DOUBLE_EQ(m.rank_time(0), m.rank_time(1));
}

TEST(Machine, BarrierTakesMaxOverRanks) {
  Machine m(3);
  m.step([](RankContext& ctx) {
    ctx.charge_flops(static_cast<std::uint64_t>(ctx.rank()) * 1000);
  });
  const double expected_work = 2000 * m.params().flop;  // slowest rank
  EXPECT_GE(m.modeled_time(), expected_work);
  EXPECT_LT(m.modeled_time(), expected_work + 1e-4);
}

TEST(Machine, MessagesDeliveredNextStep) {
  Machine m(2);
  m.step([](RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send_indices(1, /*tag=*/7, {10, 20, 30});
  });
  bool received = false;
  m.step([&](RankContext& ctx) {
    const auto msgs = ctx.recv_all();
    if (ctx.rank() == 1) {
      ASSERT_EQ(msgs.size(), 1u);
      EXPECT_EQ(msgs[0].from, 0);
      EXPECT_EQ(msgs[0].tag, 7);
      const IdxVec data = decode_indices(msgs[0]);
      EXPECT_EQ(data, (IdxVec{10, 20, 30}));
      received = true;
    } else {
      EXPECT_TRUE(msgs.empty());
    }
  });
  EXPECT_TRUE(received);
}

TEST(Machine, RealPayloadRoundTrips) {
  Machine m(2);
  m.step([](RankContext& ctx) {
    if (ctx.rank() == 1) ctx.send_reals(0, 1, {1.5, -2.25});
  });
  m.step([](RankContext& ctx) {
    const auto msgs = ctx.recv_all();
    if (ctx.rank() == 0) {
      ASSERT_EQ(msgs.size(), 1u);
      EXPECT_EQ(decode_reals(msgs[0]), (RealVec{1.5, -2.25}));
    }
  });
}

TEST(Machine, CountersAccumulate) {
  Machine m(2);
  m.step([](RankContext& ctx) {
    ctx.charge_flops(10);
    ctx.charge_mem(100);
    if (ctx.rank() == 0) ctx.send_reals(1, 0, {1.0, 2.0, 3.0});
  });
  EXPECT_EQ(m.counters(0).flops, 10u);
  EXPECT_EQ(m.counters(0).mem_bytes, 100u);
  EXPECT_EQ(m.counters(0).messages_sent, 1u);
  EXPECT_EQ(m.counters(0).bytes_sent, 24u);
  EXPECT_EQ(m.counters(1).messages_sent, 0u);
  const auto total = m.total_counters();
  EXPECT_EQ(total.flops, 20u);
  EXPECT_EQ(total.bytes_sent, 24u);
}

TEST(Machine, CommunicationCostsScaleWithBytes) {
  Machine small(2), big(2);
  small.step([](RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send_reals(1, 0, RealVec(10, 1.0));
  });
  big.step([](RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send_reals(1, 0, RealVec(100000, 1.0));
  });
  EXPECT_GT(big.modeled_time(), small.modeled_time());
}

TEST(Machine, MoreRanksCostMorePerBarrier) {
  Machine m2(2), m64(64);
  m2.step([](RankContext&) {});
  m64.step([](RankContext&) {});
  EXPECT_GT(m64.modeled_time(), m2.modeled_time());
}

TEST(Machine, AllreduceHelpers) {
  Machine m(4);
  const double sum = m.allreduce_sum([](int r) { return static_cast<double>(r); });
  EXPECT_DOUBLE_EQ(sum, 6.0);
  const double max = m.allreduce_max([](int r) { return static_cast<double>(r * r); });
  EXPECT_DOUBLE_EQ(max, 9.0);
  const long long count = m.allreduce_sum_ll([](int) { return 2LL; });
  EXPECT_EQ(count, 8);
  EXPECT_EQ(m.supersteps(), 3u);
}

TEST(Machine, ResetClearsState) {
  Machine m(2);
  m.step([](RankContext& ctx) { ctx.charge_flops(5); });
  m.reset();
  EXPECT_DOUBLE_EQ(m.modeled_time(), 0.0);
  EXPECT_EQ(m.counters(0).flops, 0u);
  EXPECT_EQ(m.supersteps(), 0u);
}

TEST(Machine, WorkstationClusterHasSlowerNetwork) {
  const auto t3d = MachineParams::cray_t3d();
  const auto cluster = MachineParams::workstation_cluster();
  EXPECT_GT(cluster.alpha, t3d.alpha);
  EXPECT_GT(cluster.beta, t3d.beta);
}

TEST(Machine, RejectsBadRank) {
  Machine m(2);
  EXPECT_THROW(m.step([](RankContext& ctx) { ctx.send_reals(5, 0, {1.0}); }), Error);
}

TEST(Machine, DeterministicAcrossRuns) {
  auto run = [] {
    Machine m(8);
    for (int s = 0; s < 10; ++s) {
      m.step([s](RankContext& ctx) {
        ctx.charge_flops(static_cast<std::uint64_t>((ctx.rank() * 7 + s) % 5) * 100);
        ctx.send_reals((ctx.rank() + 1) % 8, s, RealVec(static_cast<std::size_t>(ctx.rank() + 1), 1.0));
        (void)ctx.recv_all();
      });
    }
    return m.modeled_time();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace ptilu::sim

namespace ptilu::sim {
namespace {

TEST(Machine, CollectiveAdvancesAllClocks) {
  Machine m(8);
  const double before = m.modeled_time();
  m.collective(1024);
  EXPECT_GT(m.modeled_time(), before);
  EXPECT_EQ(m.supersteps(), 1u);
  // All ranks synchronized.
  for (int r = 1; r < 8; ++r) EXPECT_DOUBLE_EQ(m.rank_time(r), m.rank_time(0));
}

TEST(Machine, CollectiveCostsGrowWithRanksAndBytes) {
  Machine m2(2), m64(64);
  m2.collective(1000);
  m64.collective(1000);
  EXPECT_GT(m64.modeled_time(), m2.modeled_time());
  Machine small(4), big(4);
  small.collective(10);
  big.collective(1000000);
  EXPECT_GT(big.modeled_time(), small.modeled_time());
}

TEST(Machine, CollectiveChargesTreeMessages) {
  // The time model prices a log2(p) combining tree; the counters must
  // charge the same tree: one message per hop per rank, plus the payload.
  Machine m8(8);
  m8.collective(100);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(m8.counters(r).messages_sent, 3u);  // ceil(log2(8)) hops
    EXPECT_EQ(m8.counters(r).bytes_sent, 100u);
  }
  Machine m1(1);
  m1.collective(64);
  EXPECT_EQ(m1.counters(0).messages_sent, 1u);  // degenerate tree: one hop
  Machine m5(5);
  m5.collective(0);
  EXPECT_EQ(m5.counters(3).messages_sent, 3u);  // ceil(log2(5)) == 3
}

TEST(Machine, RecvAllSecondDrainSeesEmptyInbox) {
  // recv_all moves the inbox out; a second drain in the same superstep (or
  // any later one) must see a well-defined empty inbox, not a moved-from
  // vector. Regression test for the std::exchange in recv_all. Checking is
  // explicitly off: this test pins the unchecked fallback behavior, while
  // the conformance checker (test_conformance.cpp) reports the same double
  // drain as a protocol violation.
  Machine m(2, Machine::Options{.check = false});
  m.step([](RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send_indices(1, 7, {1, 2, 3});
  });
  m.step([](RankContext& ctx) {
    if (ctx.rank() != 1) return;
    const auto first = ctx.recv_all();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(decode_indices(first[0]), (IdxVec{1, 2, 3}));
    const auto second = ctx.recv_all();
    EXPECT_TRUE(second.empty());
  });
  m.step([](RankContext& ctx) { EXPECT_TRUE(ctx.recv_all().empty()); });
}

TEST(Machine, ChargeTransferAccountsBothSides) {
  Machine m(3);
  m.charge_transfer(0, 2, 8000);
  EXPECT_EQ(m.counters(0).messages_sent, 1u);
  EXPECT_EQ(m.counters(0).bytes_sent, 8000u);
  EXPECT_GT(m.rank_time(0), 0.0);
  EXPECT_GT(m.rank_time(2), 0.0);
  EXPECT_DOUBLE_EQ(m.rank_time(1), 0.0);
  // Sender pays latency on top of bandwidth; receiver only bandwidth.
  EXPECT_GT(m.rank_time(0), m.rank_time(2));
}

TEST(Machine, ChargeTransferRejectsBadRanks) {
  Machine m(2);
  EXPECT_THROW(m.charge_transfer(0, 5, 10), Error);
  EXPECT_THROW(m.charge_transfer(-1, 1, 10), Error);
}

}  // namespace
}  // namespace ptilu::sim
