// Tests for the parallel ILUT/ILUT* factorization and the parallel
// triangular solves — the paper's core contribution.
#include <gtest/gtest.h>

#include <cmath>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/trisolve.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sparse/dense.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

namespace ptilu {
namespace {

DistCsr make_dist(const Csr& a, int nranks, std::uint64_t seed = 1) {
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks, {.seed = seed});
  return DistCsr::create(a, p);
}

TEST(Pilut, SingleRankMatchesSerialIlutExactly) {
  const Csr a = workloads::convection_diffusion_2d(16, 16, 6.0, 3.0);
  const DistCsr dist = make_dist(a, 1);
  sim::Machine machine(1);
  const PilutResult result = pilut_factor(machine, dist, {.m = 5, .tau = 1e-3});
  IlutStats serial_stats;
  const IluFactors serial = ilut(a, {.m = 5, .tau = 1e-3}, &serial_stats);
  // One rank => no interface nodes, natural ordering, identical arithmetic.
  EXPECT_EQ(result.stats.interface_nodes, 0);
  EXPECT_EQ(result.stats.levels, 0);
  EXPECT_TRUE(equal(result.factors.l, serial.l));
  EXPECT_TRUE(equal(result.factors.u, serial.u));
  // Same arithmetic must also mean the same flop ledger, so the simulated
  // Mflop rates are comparable against the serial baseline.
  EXPECT_EQ(result.stats.flops, serial_stats.flops);
}

TEST(Pilut, MatchesSerialIlutOnPermutedMatrix) {
  // The load-bearing equivalence: parallel ILUT (uncapped) on p ranks must
  // produce exactly the factors serial ILUT produces on P A P^T, where P is
  // the ordering the parallel algorithm chose. Same dropping decisions,
  // same floating-point operation order.
  const Csr a = workloads::convection_diffusion_2d(20, 20, 8.0, 4.0);
  for (const int nranks : {2, 4, 7}) {
    const DistCsr dist = make_dist(a, nranks);
    sim::Machine machine(nranks);
    const PilutOptions opts{.m = 5, .tau = 1e-3};
    const PilutResult par = pilut_factor(machine, dist, opts);
    const Csr pa = permute_symmetric(a, par.schedule.newnum);
    const IluFactors serial = ilut(pa, {.m = opts.m, .tau = opts.tau});
    EXPECT_TRUE(equal(par.factors.l, serial.l)) << "nranks=" << nranks;
    EXPECT_TRUE(equal(par.factors.u, serial.u)) << "nranks=" << nranks;
  }
}

TEST(Pilut, MatchesSerialOnJumpCoefficients) {
  // Strong coefficient jumps exercise both dropping rules heavily.
  const Csr a = workloads::jump_coefficient_2d(18, 18, 5.0, 11);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult par = pilut_factor(machine, dist, {.m = 8, .tau = 1e-2});
  const Csr pa = permute_symmetric(a, par.schedule.newnum);
  const IluFactors serial = ilut(pa, {.m = 8, .tau = 1e-2});
  EXPECT_TRUE(equal(par.factors.l, serial.l));
  EXPECT_TRUE(equal(par.factors.u, serial.u));
}

TEST(Pilut, NoDroppingGivesExactFactorization) {
  const Csr a = workloads::convection_diffusion_2d(8, 8, 3.0, 1.0);
  const idx n = a.n_rows;
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult result = pilut_factor(machine, dist, {.m = n, .tau = 0.0});
  // L*U must equal P A P^T exactly (up to roundoff).
  const Csr pa = permute_symmetric(a, result.schedule.newnum);
  Dense l = Dense::from_csr(result.factors.l);
  Dense u = Dense::from_csr(result.factors.u);
  const Dense target = Dense::from_csr(pa);
  for (idx i = 0; i < n; ++i) l(i, i) = 1.0;
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) {
      real acc = 0.0;
      for (idx k = 0; k < n; ++k) acc += l(i, k) * u(k, j);
      EXPECT_NEAR(acc, target(i, j), 1e-9) << "(" << i << "," << j << ")";
    }
  }
}

TEST(Pilut, ScheduleStructureIsSound) {
  const Csr a = workloads::convection_diffusion_2d(24, 24);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult result = pilut_factor(machine, dist, {.m = 5, .tau = 1e-4});
  const PilutSchedule& sched = result.schedule;
  sched.validate();
  EXPECT_GT(result.stats.levels, 0);
  EXPECT_EQ(sched.levels(), result.stats.levels);
  // Interior rows come first, grouped by rank.
  for (int r = 0; r < 4; ++r) {
    const auto [begin, end] = sched.interior_range[r];
    for (idx i = begin; i < end; ++i) EXPECT_EQ(sched.owner_new[i], r);
  }
  // Interface nodes counted consistently.
  EXPECT_EQ(sched.n_interior + result.stats.interface_nodes, a.n_rows);
}

TEST(Pilut, RowCapsRespected) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 5.0, 5.0);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const idx m = 4;
  const PilutResult result = pilut_factor(machine, dist, {.m = m, .tau = 1e-8});
  for (idx i = 0; i < a.n_rows; ++i) {
    EXPECT_LE(result.factors.l.row_nnz(i), m);
    EXPECT_LE(result.factors.u.row_nnz(i), m + 1);  // + diagonal
  }
}

TEST(Pilut, IlutStarCapsReducedRows) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 6.0, 2.0);
  const DistCsr dist = make_dist(a, 8);
  sim::Machine machine(8);
  const idx m = 5, k = 2;
  const PilutResult star = pilut_factor(machine, dist, {.m = m, .tau = 1e-6, .cap_k = k});
  EXPECT_LE(star.stats.max_reduced_row, static_cast<nnz_t>(k * m + 1));  // + diagonal
  const PilutResult plain = pilut_factor(machine, dist, {.m = m, .tau = 1e-6});
  EXPECT_GE(plain.stats.max_reduced_row, star.stats.max_reduced_row);
}

TEST(Pilut, IlutStarNeedsFewerOrEqualLevels) {
  const Csr a = workloads::convection_diffusion_2d(32, 32, 4.0, 4.0);
  const DistCsr dist = make_dist(a, 8);
  sim::Machine machine(8);
  const PilutResult plain = pilut_factor(machine, dist, {.m = 10, .tau = 1e-6});
  const PilutResult star = pilut_factor(machine, dist, {.m = 10, .tau = 1e-6, .cap_k = 2});
  EXPECT_LE(star.stats.levels, plain.stats.levels);
}

TEST(Pilut, DeterministicForFixedSeed) {
  const Csr a = workloads::convection_diffusion_2d(16, 16);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult r1 = pilut_factor(machine, dist, {.m = 5, .tau = 1e-4, .seed = 7});
  const PilutResult r2 = pilut_factor(machine, dist, {.m = 5, .tau = 1e-4, .seed = 7});
  EXPECT_TRUE(equal(r1.factors.l, r2.factors.l));
  EXPECT_TRUE(equal(r1.factors.u, r2.factors.u));
  EXPECT_EQ(r1.schedule.newnum, r2.schedule.newnum);
  EXPECT_DOUBLE_EQ(r1.stats.time_total, r2.stats.time_total);
}

TEST(Pilut, CommunicationHappensOnlyWithMultipleRanks) {
  const Csr a = workloads::convection_diffusion_2d(16, 16);
  sim::Machine solo(1);
  const PilutResult alone = pilut_factor(solo, make_dist(a, 1), {.m = 5, .tau = 1e-4});
  EXPECT_EQ(alone.stats.messages, 0u);
  sim::Machine quad(4);
  const PilutResult four = pilut_factor(quad, make_dist(a, 4), {.m = 5, .tau = 1e-4});
  EXPECT_GT(four.stats.messages, 0u);
}

TEST(Pilut, ModeledTimeScalesDown) {
  // The headline claim: more processors, less modeled factorization time.
  const Csr a = workloads::convection_diffusion_2d(64, 64, 5.0, 5.0);
  double prev = 1e300;
  for (const int nranks : {1, 4, 16}) {
    const DistCsr dist = make_dist(a, nranks);
    sim::Machine machine(nranks);
    const PilutResult result = pilut_factor(machine, dist, {.m = 10, .tau = 1e-4, .cap_k = 2});
    EXPECT_LT(result.stats.time_total, prev) << "nranks=" << nranks;
    prev = result.stats.time_total;
  }
}

TEST(Pilut, PivotGuardWorksThroughPipeline) {
  // A matrix engineered to produce a zero pivot on an interface row: the
  // guard must recover instead of dividing by zero.
  CooBuilder b(4, 4);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  b.add(1, 1, 2.0);
  b.add(2, 3, 1.0);
  b.add(3, 2, 1.0);
  b.add(2, 2, 2.0);
  b.add(0, 3, 0.5);
  b.add(3, 0, 0.5);
  const Csr a = b.to_csr();
  Partition p;
  p.nparts = 2;
  p.part = {0, 0, 1, 1};
  const DistCsr dist = DistCsr::create(a, p);
  sim::Machine machine(2);
  const PilutResult result =
      pilut_factor(machine, dist, {.m = 4, .tau = 0.0, .pivot_rel = 1e-10});
  result.factors.validate();
  EXPECT_GE(result.stats.pivots_guarded, 1u);
}

// --- Parallel triangular solves ---------------------------------------

TEST(DistTrisolve, MatchesSerialSolves) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 6.0, 3.0);
  for (const int nranks : {1, 2, 4, 8}) {
    const DistCsr dist = make_dist(a, nranks);
    sim::Machine machine(nranks);
    const PilutResult result = pilut_factor(machine, dist, {.m = 8, .tau = 1e-4});
    DistTriangularSolver solver(result.factors, result.schedule);

    const RealVec b = workloads::random_vector(a.n_rows, 5);
    RealVec y_par(a.n_rows), y_ser(a.n_rows), x_par(a.n_rows), x_ser(a.n_rows);
    machine.reset();
    solver.forward(machine, b, y_par);
    forward_solve(result.factors.l, b, y_ser);
    EXPECT_LT(max_abs_diff(y_par, y_ser), 1e-14) << "nranks=" << nranks;

    solver.backward(machine, y_par, x_par);
    backward_solve(result.factors.u, y_ser, x_ser);
    EXPECT_LT(max_abs_diff(x_par, x_ser), 1e-12) << "nranks=" << nranks;
  }
}

TEST(DistTrisolve, ApplyEqualsSerialApply) {
  const Csr a = workloads::jump_coefficient_2d(16, 16, 3.0, 2);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult result = pilut_factor(machine, dist, {.m = 10, .tau = 1e-5});
  DistTriangularSolver solver(result.factors, result.schedule);
  const RealVec b = workloads::random_vector(a.n_rows, 8);
  RealVec x_par(a.n_rows), x_ser(a.n_rows);
  machine.reset();
  solver.apply(machine, b, x_par);
  ilu_apply(result.factors, b, x_ser);
  EXPECT_LT(max_abs_diff(x_par, x_ser), 1e-12);
}

TEST(DistTrisolve, SyncPointsMatchLevelCount) {
  const Csr a = workloads::convection_diffusion_2d(24, 24);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult result = pilut_factor(machine, dist, {.m = 5, .tau = 1e-4});
  DistTriangularSolver solver(result.factors, result.schedule);
  machine.reset();
  RealVec y(a.n_rows);
  solver.forward(machine, RealVec(a.n_rows, 1.0), y);
  // interior step + q level steps + drain step.
  EXPECT_EQ(machine.supersteps(),
            static_cast<std::uint64_t>(result.stats.levels) + 2);
}

TEST(DistTrisolve, ExactFactorsSolveSystemThroughSchedule) {
  const Csr a = workloads::convection_diffusion_2d(10, 10);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult result = pilut_factor(machine, dist, {.m = a.n_rows, .tau = 0.0});
  DistTriangularSolver solver(result.factors, result.schedule);

  // Solve P A P^T x' = P b through the parallel solver; undo the ordering.
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec pb(a.n_rows), px(a.n_rows), x(a.n_rows);
  for (idx i = 0; i < a.n_rows; ++i) pb[result.schedule.newnum[i]] = b[i];
  machine.reset();
  solver.apply(machine, pb, px);
  for (idx i = 0; i < a.n_rows; ++i) x[i] = px[result.schedule.newnum[i]];
  RealVec ones(a.n_rows, 1.0);
  EXPECT_LT(max_abs_diff(x, ones), 1e-8);
}

TEST(DistTrisolve, IlutStarSolvesFasterInModeledTime) {
  // Fewer levels => fewer synchronization points => faster modeled solves.
  const Csr a = workloads::convection_diffusion_2d(48, 48, 4.0, 4.0);
  const DistCsr dist = make_dist(a, 16);
  sim::Machine machine(16);
  const PilutResult plain = pilut_factor(machine, dist, {.m = 10, .tau = 1e-6});
  const PilutResult star = pilut_factor(machine, dist, {.m = 10, .tau = 1e-6, .cap_k = 2});
  if (star.stats.levels < plain.stats.levels) {
    DistTriangularSolver splain(plain.factors, plain.schedule);
    DistTriangularSolver sstar(star.factors, star.schedule);
    const RealVec b(a.n_rows, 1.0);
    RealVec x(a.n_rows);
    machine.reset();
    splain.apply(machine, b, x);
    const double t_plain = machine.modeled_time();
    machine.reset();
    sstar.apply(machine, b, x);
    EXPECT_LT(machine.modeled_time(), t_plain);
  } else {
    GTEST_SKIP() << "level counts equal at this size";
  }
}

// --- End-to-end: PILUT preconditioner inside GMRES ---------------------

TEST(PilutGmres, ConvergesAndMatchesQuality) {
  const Csr a = workloads::convection_diffusion_2d(32, 32, 10.0, 5.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  const DistCsr dist = make_dist(a, 8);
  sim::Machine machine(8);
  const PilutResult result = pilut_factor(machine, dist, {.m = 10, .tau = 1e-4});

  RealVec x(a.n_rows, 0.0);
  const GmresResult par =
      gmres(a, IluPreconditioner(result.factors, result.schedule.newnum), b, x);
  EXPECT_TRUE(par.converged);

  RealVec xs(a.n_rows, 0.0);
  const GmresResult ser = gmres(a, IluPreconditioner(ilut(a, {.m = 10, .tau = 1e-4})), b, xs);
  // Reordered ILUT is a different (but comparable) preconditioner.
  EXPECT_TRUE(ser.converged);
  EXPECT_LT(par.matvecs, ser.matvecs * 3);
}

TEST(PilutGmres, IlutStarComparableQuality) {
  // The paper's claim (§6, Table 3): ILUT*(m, t, 2) preconditions about as
  // well as ILUT(m, t).
  const Csr a = workloads::convection_diffusion_2d(32, 32, 6.0, 3.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  const DistCsr dist = make_dist(a, 8);
  sim::Machine machine(8);
  const PilutResult plain = pilut_factor(machine, dist, {.m = 10, .tau = 1e-4});
  const PilutResult star = pilut_factor(machine, dist, {.m = 10, .tau = 1e-4, .cap_k = 2});

  RealVec x1(a.n_rows, 0.0), x2(a.n_rows, 0.0);
  const GmresResult g1 =
      gmres(a, IluPreconditioner(plain.factors, plain.schedule.newnum), b, x1);
  const GmresResult g2 =
      gmres(a, IluPreconditioner(star.factors, star.schedule.newnum), b, x2);
  EXPECT_TRUE(g1.converged);
  EXPECT_TRUE(g2.converged);
  EXPECT_LT(g2.matvecs, g1.matvecs * 2 + 10);
}

}  // namespace
}  // namespace ptilu
