// Parameterized property suites: invariants checked across sweeps of the
// algorithmic parameter space (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/graph/mis.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/trisolve.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"
#include "ptilu/workloads/torso.hpp"

namespace ptilu {
namespace {

// ---------------------------------------------------------------- ILUT --

class IlutSweep : public ::testing::TestWithParam<std::tuple<idx, real>> {};

TEST_P(IlutSweep, FactorsSatisfyAllInvariants) {
  const auto [m, tau] = GetParam();
  const Csr a = workloads::convection_diffusion_2d(18, 18, 7.0, 3.0);
  IlutStats stats;
  const IluFactors f = ilut(a, {.m = m, .tau = tau}, &stats);
  f.validate();
  const RealVec norms = row_norms(a, 2);
  for (idx i = 0; i < f.n(); ++i) {
    // Row caps.
    ASSERT_LE(f.l.row_nnz(i), m);
    ASSERT_LE(f.u.row_nnz(i), m + 1);
    // Threshold: no stored entry below tau * ||a_i||_2 (diagonal exempt).
    for (nnz_t k = f.l.row_ptr[i]; k < f.l.row_ptr[i + 1]; ++k) {
      ASSERT_GE(std::abs(f.l.values[k]), tau * norms[i]);
    }
    for (nnz_t k = f.u.row_ptr[i] + 1; k < f.u.row_ptr[i + 1]; ++k) {
      ASSERT_GE(std::abs(f.u.values[k]), tau * norms[i]);
    }
  }
}

TEST_P(IlutSweep, ApplyIsLinear) {
  // M^{-1}(alpha x + y) == alpha M^{-1}x + M^{-1}y — triangular solves are
  // linear operators regardless of dropping.
  const auto [m, tau] = GetParam();
  const Csr a = workloads::jump_coefficient_2d(12, 12, 3.0, 4);
  const IluFactors f = ilut(a, {.m = m, .tau = tau});
  const idx n = a.n_rows;
  const RealVec x = workloads::random_vector(n, 1);
  const RealVec y = workloads::random_vector(n, 2);
  const real alpha = 1.75;
  RealVec combined(n), fx(n), fy(n), separate(n);
  for (idx i = 0; i < n; ++i) combined[i] = alpha * x[i] + y[i];
  RealVec out_combined(n);
  ilu_apply(f, combined, out_combined);
  ilu_apply(f, x, fx);
  ilu_apply(f, y, fy);
  for (idx i = 0; i < n; ++i) separate[i] = alpha * fx[i] + fy[i];
  EXPECT_LT(max_abs_diff(out_combined, separate), 1e-8);
}

std::string ilut_sweep_name(const ::testing::TestParamInfo<std::tuple<idx, real>>& info) {
  const idx m = std::get<0>(info.param);
  const real tau = std::get<1>(info.param);
  const int exponent = tau == 0.0 ? 0 : static_cast<int>(-std::log10(tau));
  std::string name = "m";
  name += std::to_string(m);
  name += "_tau1em";
  name += std::to_string(exponent);
  return name;
}

INSTANTIATE_TEST_SUITE_P(MTauGrid, IlutSweep,
                         ::testing::Combine(::testing::Values(1, 3, 5, 10, 20),
                                            ::testing::Values(0.0, 1e-6, 1e-4, 1e-2)),
                         ilut_sweep_name);

// --------------------------------------------------------------- PILUT --

class PilutSweep
    : public ::testing::TestWithParam<std::tuple<int, idx, real, idx>> {};

TEST_P(PilutSweep, SerialEquivalenceAndInvariants) {
  const auto [nranks, m, tau, cap_k] = GetParam();
  const Csr a = workloads::convection_diffusion_2d(16, 16, 5.0, 2.0);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks);
  const DistCsr dist = DistCsr::create(a, p);
  sim::Machine machine(nranks);
  const PilutResult result =
      pilut_factor(machine, dist, {.m = m, .tau = tau, .cap_k = cap_k});
  result.factors.validate();
  result.schedule.validate();

  if (cap_k == 0) {
    // Uncapped parallel ILUT == serial ILUT on the permuted matrix, exactly.
    const Csr pa = permute_symmetric(a, result.schedule.newnum);
    const IluFactors serial = ilut(pa, {.m = m, .tau = tau});
    ASSERT_TRUE(equal(result.factors.l, serial.l));
    ASSERT_TRUE(equal(result.factors.u, serial.u));
  } else {
    ASSERT_LE(result.stats.max_reduced_row, static_cast<nnz_t>(cap_k * m + 1));
  }

  // Parallel triangular solves match serial solves on the same factors.
  DistTriangularSolver solver(result.factors, result.schedule);
  const RealVec b = workloads::random_vector(a.n_rows, 3);
  RealVec x_par(a.n_rows), x_ser(a.n_rows);
  machine.reset();
  solver.apply(machine, b, x_par);
  ilu_apply(result.factors, b, x_ser);
  ASSERT_LT(max_abs_diff(x_par, x_ser), 1e-11);
}

std::string pilut_sweep_name(
    const ::testing::TestParamInfo<std::tuple<int, idx, real, idx>>& info) {
  std::string name = "p";
  name += std::to_string(std::get<0>(info.param));
  name += "_m";
  name += std::to_string(std::get<1>(info.param));
  name += "_tau1em";
  name += std::to_string(static_cast<int>(-std::log10(std::get<2>(info.param))));
  name += "_k";
  name += std::to_string(std::get<3>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    RankConfigGrid, PilutSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 8), ::testing::Values(3, 8),
                       ::testing::Values(1e-2, 1e-5), ::testing::Values(0, 1, 2)),
    pilut_sweep_name);

// ---------------------------------------------------------- partitioner --

class PartitionSweep : public ::testing::TestWithParam<std::tuple<idx, std::uint64_t>> {};

TEST_P(PartitionSweep, InvariantsOnGridAndRandomGraphs) {
  const auto [nparts, seed] = GetParam();
  const Csr a = workloads::convection_diffusion_2d(24, 24);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nparts, {.seed = seed});
  p.validate(g.n);
  EXPECT_LT(imbalance(g, p), 1.15) << "nparts=" << nparts << " seed=" << seed;
  // Multilevel beats random cut at every size.
  EXPECT_LT(edge_cut(g, p), edge_cut(g, partition_random(g, nparts, seed)));
}

std::string partition_sweep_name(
    const ::testing::TestParamInfo<std::tuple<idx, std::uint64_t>>& info) {
  std::string name = "k";
  name += std::to_string(std::get<0>(info.param));
  name += "_seed";
  name += std::to_string(std::get<1>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(KSeedGrid, PartitionSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 16, 32),
                                            ::testing::Values(1u, 2u, 3u)),
                         partition_sweep_name);

// ------------------------------------------------------------------ MIS --

class MisSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MisSweep, LubyIndependentOnRandomGraphs) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  std::vector<std::pair<idx, idx>> edges;
  const idx n = 200;
  for (idx e = 0; e < 600; ++e) {
    edges.emplace_back(rng.next_index(n), rng.next_index(n));
  }
  const Graph g = graph_from_edges(n, edges);
  const IdxVec five = luby_mis(g, {.seed = seed, .rounds = 5});
  EXPECT_TRUE(is_independent(g, five));
  const IdxVec full = luby_mis(g, {.seed = seed, .rounds = 64});
  EXPECT_TRUE(is_maximal_independent(g, full));
  EXPECT_LE(five.size(), full.size() + 5);  // five rounds finds most of it
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisSweep, ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------- ILU(k) --

TEST(IlukQuality, PreconditionedOperatorImprovesWithLevel) {
  // ||x - U^{-1}L^{-1}A x|| / ||x|| decreases (weakly) as the fill level
  // grows — more retained fill means a closer approximation of A.
  const Csr a = workloads::convection_diffusion_2d(16, 16, 3.0, 3.0);
  const RealVec x = workloads::random_vector(a.n_rows, 7);
  RealVec ax(a.n_rows), mx(a.n_rows), err(a.n_rows);
  spmv(a, x, ax);
  real prev_error = 1e9;
  for (const idx level : {0, 1, 2, 3, 4}) {
    const IluFactors f = iluk(a, level);
    f.validate();
    ilu_apply(f, ax, mx);
    for (idx i = 0; i < a.n_rows; ++i) err[i] = mx[i] - x[i];
    const real error = norm2(err) / norm2(x);
    EXPECT_LT(error, prev_error * 1.05) << "level " << level;
    prev_error = error;
  }
}

// --------------------------------------------------- distributed solves --

class DistSpmvSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistSpmvSweep, MatchesSerialOnTorso) {
  const int nranks = GetParam();
  workloads::TorsoOptions opts;
  opts.nx = opts.ny = 10;
  opts.nz = 14;
  const Csr a = workloads::fem_torso_3d(opts).a;
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks);
  const DistCsr dist = DistCsr::create(a, p);
  const Halo halo = Halo::build(dist);
  sim::Machine machine(nranks);
  const RealVec x = workloads::random_vector(a.n_rows, 11);
  RealVec y_par(a.n_rows), y_ser(a.n_rows);
  dist_spmv(machine, dist, halo, x, y_par);
  spmv(a, x, y_ser);
  EXPECT_LT(max_abs_diff(y_par, y_ser), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistSpmvSweep, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace ptilu
