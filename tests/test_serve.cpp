// Differential serving-stack tests: the batched multi-RHS solves against
// their single-RHS references (bit-identical for the scalar CSR and
// distributed paths, tolerance-based for the blocked path), the
// FactorCache (key discrimination, LRU order, metrics reconciliation,
// epoch banking across Machine::reset), the seeded traffic generator, the
// FIFO batching policy, and the shared-factor concurrency contract the
// tsan preset exists to check.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/ilut_blocked.hpp"
#include "ptilu/ilu/rhs_block.hpp"
#include "ptilu/ilu/trisolve.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/krylov/gmres_dist.hpp"
#include "ptilu/krylov/preconditioner.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/serve/factor_cache.hpp"
#include "ptilu/serve/solve_service.hpp"
#include "ptilu/serve/traffic.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/sim/metrics.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

namespace ptilu {
namespace {

constexpr int kBatchWidths[] = {1, 2, 4, 8, 13};

DistCsr make_dist(const Csr& a, int nranks, std::uint64_t seed = 1) {
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks, {.seed = seed});
  return DistCsr::create(a, p);
}

DenseRhsBlock seeded_block(idx n, int k, std::uint64_t seed) {
  DenseRhsBlock block(n, k);
  for (int c = 0; c < k; ++c) {
    block.set_col(c, serve::make_rhs(n, mix64(seed + static_cast<std::uint64_t>(c))));
  }
  return block;
}

// ---- Batched scalar trisolves: bit-identical per column ----------------

TEST(BatchedTrisolve, ScalarForwardBackwardBitIdenticalToSingle) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 8.0, 4.0);
  const idx n = a.n_rows;
  const IluFactors factors = ilut(a, {.m = 7, .tau = 1e-3});
  for (const int k : kBatchWidths) {
    const DenseRhsBlock b = seeded_block(n, k, 17);
    DenseRhsBlock y(n, k), x(n, k);
    forward_solve(factors.l, b, y);
    backward_solve(factors.u, y, x);
    RealVec y1(static_cast<std::size_t>(n)), x1(static_cast<std::size_t>(n));
    for (int c = 0; c < k; ++c) {
      forward_solve(factors.l, b.col(c), y1);
      backward_solve(factors.u, y1, x1);
      for (idx i = 0; i < n; ++i) {
        // EXPECT_EQ, not NEAR: the batched kernels replay the single-RHS
        // accumulation order per column exactly.
        ASSERT_EQ(y.at(i, c), y1[static_cast<std::size_t>(i)]) << "k=" << k << " col=" << c;
        ASSERT_EQ(x.at(i, c), x1[static_cast<std::size_t>(i)]) << "k=" << k << " col=" << c;
      }
    }
  }
}

TEST(BatchedTrisolve, ScalarIluApplyBitIdenticalToSingle) {
  const Csr a = workloads::jump_coefficient_2d(18, 18, 5.0, 11);
  const idx n = a.n_rows;
  const IluFactors factors = ilut(a, {.m = 8, .tau = 1e-2});
  for (const int k : kBatchWidths) {
    const DenseRhsBlock b = seeded_block(n, k, 23);
    DenseRhsBlock x(n, k);
    ilu_apply(factors, b, x);
    RealVec x1(static_cast<std::size_t>(n));
    for (int c = 0; c < k; ++c) {
      ilu_apply(factors, b.col(c), x1);
      for (idx i = 0; i < n; ++i) {
        ASSERT_EQ(x.at(i, c), x1[static_cast<std::size_t>(i)]) << "k=" << k << " col=" << c;
      }
    }
  }
}

// ---- Batched blocked trisolves: match single blocked within tolerance --

TEST(BatchedTrisolve, BlockedMatchesSingleBlocked) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 6.0, 3.0);
  const idx n = a.n_rows;
  const BlockedIlutOptions opts{.base = {.m = 8, .tau = 1e-3},
                                .panels = {.max_panel = 4, .slack = 1.5}};
  const BlockedFactors factors = ilut_blocked(a, opts);
  for (const int k : kBatchWidths) {
    const DenseRhsBlock b = seeded_block(n, k, 31);
    DenseRhsBlock y(n, k), x(n, k), applied(n, k);
    forward_solve(factors, b, y);
    backward_solve(factors, y, x);
    ilu_apply(factors, b, applied);
    RealVec y1(static_cast<std::size_t>(n)), x1(static_cast<std::size_t>(n));
    for (int c = 0; c < k; ++c) {
      forward_solve(factors, b.col(c), y1);
      backward_solve(factors, y1, x1);
      for (idx i = 0; i < n; ++i) {
        const double scale = 1.0 + std::abs(x1[static_cast<std::size_t>(i)]);
        ASSERT_NEAR(y.at(i, c), y1[static_cast<std::size_t>(i)], 1e-12 * scale)
            << "k=" << k << " col=" << c;
        ASSERT_NEAR(x.at(i, c), x1[static_cast<std::size_t>(i)], 1e-12 * scale)
            << "k=" << k << " col=" << c;
        ASSERT_NEAR(applied.at(i, c), x1[static_cast<std::size_t>(i)], 1e-12 * scale)
            << "k=" << k << " col=" << c;
      }
    }
  }
}

// ---- Batched distributed trisolves -------------------------------------

TEST(BatchedTrisolveDist, BitIdenticalPerColumnAcrossBackendsAndChecking) {
  const Csr a = workloads::convection_diffusion_2d(18, 18, 7.0, 2.0);
  const idx n = a.n_rows;
  const DistCsr dist = make_dist(a, 4);
  for (const sim::Backend backend : {sim::Backend::kSequential, sim::Backend::kThreads}) {
    for (const bool check : {false, true}) {
      sim::Machine::Options options;
      options.backend = backend;
      options.check = check;
      sim::Machine machine(4, options);
      const PilutResult fact = pilut_factor(machine, dist, {.m = 6, .tau = 1e-3});
      const DistTriangularSolver solver(fact.factors, fact.schedule);
      for (const int k : kBatchWidths) {
        const DenseRhsBlock b = seeded_block(n, k, 41);
        DenseRhsBlock y(n, k), x(n, k), applied(n, k);
        solver.forward(machine, b, y);
        solver.backward(machine, y, x);
        solver.apply(machine, b, applied);
        RealVec y1(static_cast<std::size_t>(n)), x1(static_cast<std::size_t>(n));
        for (int c = 0; c < k; ++c) {
          const RealVec bc(b.col(c).begin(), b.col(c).end());
          solver.forward(machine, bc, y1);
          solver.backward(machine, y1, x1);
          for (idx i = 0; i < n; ++i) {
            ASSERT_EQ(y.at(i, c), y1[static_cast<std::size_t>(i)])
                << "backend=" << sim::backend_name(backend) << " check=" << check
                << " k=" << k << " col=" << c;
            ASSERT_EQ(x.at(i, c), x1[static_cast<std::size_t>(i)])
                << "backend=" << sim::backend_name(backend) << " check=" << check
                << " k=" << k << " col=" << c;
            ASSERT_EQ(applied.at(i, c), x1[static_cast<std::size_t>(i)])
                << "backend=" << sim::backend_name(backend) << " check=" << check
                << " k=" << k << " col=" << c;
          }
        }
      }
      machine.check_quiescent("test_serve/dist/end");
    }
  }
}

TEST(BatchedTrisolveDist, BatchedSweepAmortizesMessages) {
  const Csr a = workloads::convection_diffusion_2d(18, 18, 7.0, 2.0);
  const idx n = a.n_rows;
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult fact = pilut_factor(machine, dist, {.m = 6, .tau = 1e-3});
  const DistTriangularSolver solver(fact.factors, fact.schedule);
  for (const int k : {2, 4, 8}) {
    const DenseRhsBlock b = seeded_block(n, k, 47);

    machine.reset();
    RealVec x1(static_cast<std::size_t>(n));
    for (int c = 0; c < k; ++c) {
      const RealVec bc(b.col(c).begin(), b.col(c).end());
      solver.apply(machine, bc, x1);
    }
    const std::uint64_t single_messages = machine.total_counters().messages_sent;
    const double single_time = machine.modeled_time();

    machine.reset();
    DenseRhsBlock x(n, k);
    solver.apply(machine, b, x);
    const std::uint64_t batched_messages = machine.total_counters().messages_sent;
    const double batched_time = machine.modeled_time();

    // One message pair per (peer, level) regardless of k: the batched sweep
    // must send exactly a 1/k share of the single-RHS message count, and
    // the amortized alpha must show up in modeled time.
    EXPECT_EQ(batched_messages * static_cast<std::uint64_t>(k), single_messages)
        << "k=" << k;
    EXPECT_LT(batched_time, single_time) << "k=" << k;
  }
}

// ---- Shared-solver GMRES overload --------------------------------------

TEST(GmresDistServe, SharedSolverOverloadMatchesFromFactorization) {
  const Csr a = workloads::convection_diffusion_2d(16, 16, 6.0, 3.0);
  const idx n = a.n_rows;
  const DistCsr dist = make_dist(a, 4);
  const Halo halo = Halo::build(dist);
  sim::Machine machine(4);
  const PilutResult fact = pilut_factor(machine, dist, {.m = 8, .tau = 1e-4});
  const RealVec b = workloads::rhs_all_ones_solution(a);

  RealVec x_old(static_cast<std::size_t>(n), 0.0);
  const GmresResult via_factorization =
      gmres_dist(machine, dist, halo, fact, b, x_old, {.restart = 15});
  const double time_old = machine.modeled_time();

  const DistTriangularSolver solver(fact.factors, fact.schedule);
  RealVec x_new(static_cast<std::size_t>(n), 0.0);
  const GmresResult via_solver =
      gmres_dist(machine, dist, halo, solver, b, x_new, {.restart = 15});
  const double time_new = machine.modeled_time();

  EXPECT_EQ(via_factorization.converged, via_solver.converged);
  EXPECT_EQ(via_factorization.matvecs, via_solver.matvecs);
  EXPECT_EQ(via_factorization.final_residual, via_solver.final_residual);
  EXPECT_EQ(time_old, time_new);  // both reset the machine at entry
  for (idx i = 0; i < n; ++i) {
    ASSERT_EQ(x_old[static_cast<std::size_t>(i)], x_new[static_cast<std::size_t>(i)]);
  }
}

// ---- FactorCache -------------------------------------------------------

Csr small_matrix(double convection = 5.0) {
  return workloads::convection_diffusion_2d(10, 10, convection, 2.0);
}

TEST(FactorCache, KeyDiscriminatesParamsValuesAndVariant) {
  const Csr a = small_matrix();
  Csr perturbed = a;
  perturbed.values[perturbed.values.size() / 2] *= 1.0 + 1e-9;

  serve::FactorCache cache(8);
  const IlutOptions opts{.m = 6, .tau = 1e-3};
  const auto base = cache.get(a, opts);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Same matrix + params: a hit, and the very same factor object.
  EXPECT_EQ(cache.get(a, opts).get(), base.get());
  EXPECT_EQ(cache.stats().hits, 1u);

  // Different ILUT params on the same matrix: distinct entries.
  cache.get(a, {.m = 7, .tau = 1e-3});
  cache.get(a, {.m = 6, .tau = 1e-4});
  cache.get(a, {.m = 6, .tau = 1e-3, .pivot_rel = 1e-12});
  EXPECT_EQ(cache.stats().misses, 4u);

  // Same pattern, one value nudged: a different operator.
  cache.get(perturbed, opts);
  EXPECT_EQ(cache.stats().misses, 5u);

  // Same (matrix, m, tau) under the blocked variant: distinct again.
  cache.get_blocked(a, {.base = opts, .panels = {.max_panel = 4, .slack = 1.5}});
  EXPECT_EQ(cache.stats().misses, 6u);
  // ... and blocked entries key on the panel knobs too.
  cache.get_blocked(a, {.base = opts, .panels = {.max_panel = 8, .slack = 1.5}});
  EXPECT_EQ(cache.stats().misses, 7u);
  EXPECT_EQ(cache.size(), 7u);
}

serve::FactorKey scalar_key(const Csr& a, const IlutOptions& opts) {
  serve::FactorKey key;
  key.matrix = serve::matrix_fingerprint(a);
  key.variant = serve::FactorVariant::kScalar;
  key.m = opts.m;
  key.tau = opts.tau;
  key.pivot_rel = opts.pivot_rel;
  return key;
}

TEST(FactorCache, LruEvictionEvictsLeastRecentlyUsed) {
  const Csr a = small_matrix(3.0);
  const Csr b = small_matrix(4.0);
  const Csr c = small_matrix(5.0);
  const IlutOptions opts{.m = 5, .tau = 1e-3};

  serve::FactorCache cache(2);
  cache.get(a, opts);
  cache.get(b, opts);
  cache.get(a, opts);  // refresh a: b is now the LRU entry
  cache.get(c, opts);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.contains(scalar_key(a, opts)));
  EXPECT_FALSE(cache.contains(scalar_key(b, opts)));
  EXPECT_TRUE(cache.contains(scalar_key(c, opts)));

  // b must now re-factor (a fresh miss), evicting a (LRU after the c miss).
  cache.get(b, opts);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_FALSE(cache.contains(scalar_key(a, opts)));
  // An evicted-then-refetched entry still hands out a usable factor.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(FactorCache, StatsReconcileWithMetricsRegistryAcrossReset) {
  const Csr a = small_matrix();
  const IlutOptions opts{.m = 6, .tau = 1e-3};
  sim::Machine::Options options;
  options.metrics = true;
  sim::Machine machine(2, options);
  sim::Metrics* const metrics = machine.metrics();
  ASSERT_NE(metrics, nullptr);

  serve::FactorCache cache(1);
  cache.get(a, opts);  // pre-attachment miss, replayed on attach
  cache.attach_metrics(metrics);
  EXPECT_EQ(metrics->counter_value("serve/cache/misses", 0), 1u);

  cache.get(a, opts);
  cache.get(a, {.m = 7, .tau = 1e-3});  // miss + eviction (capacity 1)

  // Run a superstep and reset the machine: named counters are NOT banked
  // by reset (only RankCounters are), so the serving tallies keep
  // accumulating across solve epochs.
  machine.step([](sim::RankContext& ctx) { ctx.charge_flops(1); }, "test_serve/epoch");
  machine.reset();
  cache.get(a, opts);  // miss again (was evicted)

  const serve::CacheStats& stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(metrics->counter_value("serve/cache/hits", 0), stats.hits);
  EXPECT_EQ(metrics->counter_value("serve/cache/misses", 0), stats.misses);
  EXPECT_EQ(metrics->counter_value("serve/cache/evictions", 0), stats.evictions);
}

TEST(FactorCache, CachedFactorSurvivesEviction) {
  const Csr a = small_matrix(3.0);
  const Csr b = small_matrix(4.0);
  const IlutOptions opts{.m = 5, .tau = 1e-3};
  serve::FactorCache cache(1);
  const std::shared_ptr<const Preconditioner> held = cache.get(a, opts);
  cache.get(b, opts);  // evicts a's entry while `held` is still out
  EXPECT_EQ(cache.stats().evictions, 1u);
  const RealVec rhs = serve::make_rhs(a.n_rows, 7);
  RealVec x(static_cast<std::size_t>(a.n_rows));
  held->apply(rhs, x);  // must not touch freed memory (asan-checked)
  RealVec reference(static_cast<std::size_t>(a.n_rows));
  ilu_apply(ilut(a, opts), rhs, reference);
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(x[i], reference[i]);
}

// ---- Traffic generator -------------------------------------------------

TEST(Traffic, ScheduleIsDeterministicAndStrictlyIncreasing) {
  const serve::TrafficOptions opts{.requests = 200, .mean_interarrival_s = 1e-3, .seed = 42};
  const std::vector<serve::Request> one = serve::make_schedule(opts);
  const std::vector<serve::Request> two = serve::make_schedule(opts);
  ASSERT_EQ(one.size(), 200u);
  ASSERT_EQ(two.size(), one.size());
  double previous = 0.0;
  for (std::size_t r = 0; r < one.size(); ++r) {
    EXPECT_EQ(one[r].arrival_s, two[r].arrival_s);
    EXPECT_EQ(one[r].rhs_seed, two[r].rhs_seed);
    EXPECT_GT(one[r].arrival_s, previous);
    previous = one[r].arrival_s;
  }
  // A different seed must produce a different process.
  const std::vector<serve::Request> other =
      serve::make_schedule({.requests = 200, .mean_interarrival_s = 1e-3, .seed = 43});
  EXPECT_NE(other.front().arrival_s, one.front().arrival_s);

  const RealVec rhs_a = serve::make_rhs(64, 7);
  const RealVec rhs_b = serve::make_rhs(64, 7);
  ASSERT_EQ(rhs_a.size(), 64u);
  for (std::size_t i = 0; i < rhs_a.size(); ++i) EXPECT_EQ(rhs_a[i], rhs_b[i]);
}

// ---- Queueing policy ---------------------------------------------------

TEST(SolveService, PlanServeFormsFifoBatchesAndReplaysLatencies) {
  // Hand-built schedule: three near-simultaneous arrivals, then a gap.
  std::vector<serve::Request> schedule;
  for (const double t : {1.0, 1.1, 1.2, 5.0}) schedule.push_back({t, 0});
  const auto unit_service = [](int) { return 1.0; };

  const std::vector<serve::Batch> plan = serve::plan_serve(schedule, 2, unit_service);
  // t=1.0: only request 0 has arrived -> batch of 1 (server was idle).
  // t=2.0: requests 1 and 2 are queued -> batch of 2 (capped).
  // t=5.0: request 3 -> batch of 1 after an idle gap.
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].first, 0);
  EXPECT_EQ(plan[0].count, 1);
  EXPECT_EQ(plan[0].start_s, 1.0);
  EXPECT_EQ(plan[1].first, 1);
  EXPECT_EQ(plan[1].count, 2);
  EXPECT_EQ(plan[1].start_s, 2.0);
  EXPECT_EQ(plan[2].first, 3);
  EXPECT_EQ(plan[2].count, 1);
  EXPECT_EQ(plan[2].start_s, 5.0);

  const serve::ServeReport report =
      serve::replay_latencies(plan, schedule, {1.0, 1.0, 1.0});
  ASSERT_EQ(report.latency_s.size(), 4u);
  EXPECT_DOUBLE_EQ(report.latency_s[0], 1.0);  // done at 2.0
  EXPECT_DOUBLE_EQ(report.latency_s[1], 1.9);  // done at 3.0
  EXPECT_DOUBLE_EQ(report.latency_s[2], 1.8);
  EXPECT_DOUBLE_EQ(report.latency_s[3], 1.0);  // done at 6.0
  EXPECT_DOUBLE_EQ(report.total_s, 6.0);

  // An uncapped batch_max merges the burst into one batch.
  const std::vector<serve::Batch> wide = serve::plan_serve(schedule, 8, unit_service);
  ASSERT_EQ(wide.size(), 3u);  // request 1,2 still arrive after batch 0 starts
  EXPECT_EQ(wide[1].count, 2);

  const serve::SortedSample sample({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(sample.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(sample.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(sample.quantile(0.0), 1.0);
}

TEST(SolveService, SortedSampleEdgeCases) {
  // Empty samples have no quantiles: construction throws instead of the
  // old free quantile()'s silent 0.0.
  EXPECT_THROW(serve::SortedSample(std::vector<double>{}), Error);

  // A single sample answers every quantile with itself.
  const serve::SortedSample one({7.5});
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 7.5);

  // The sample is sorted ONCE at construction; values() exposes it.
  const serve::SortedSample sorted({4.0, 2.0, 3.0, 1.0});
  EXPECT_EQ(sorted.size(), 4u);
  EXPECT_DOUBLE_EQ(sorted.values().front(), 1.0);
  EXPECT_DOUBLE_EQ(sorted.values().back(), 4.0);
  EXPECT_DOUBLE_EQ(sorted.quantile(0.0), 1.0);  // q=0 clamps to the minimum
  EXPECT_DOUBLE_EQ(sorted.quantile(1.0), 4.0);  // q=1 is the maximum
  // Nearest-rank: ceil(0.5 * 4) = rank 2 -> second smallest.
  EXPECT_DOUBLE_EQ(sorted.quantile(0.5), 2.0);
  // ceil(0.51 * 4) = rank 3.
  EXPECT_DOUBLE_EQ(sorted.quantile(0.51), 3.0);

  // Ties: the tied value is returned for every rank it occupies.
  const serve::SortedSample ties({5.0, 5.0, 5.0, 9.0});
  EXPECT_DOUBLE_EQ(ties.quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(ties.quantile(0.75), 5.0);
  EXPECT_DOUBLE_EQ(ties.quantile(0.76), 9.0);

  EXPECT_THROW(sorted.quantile(-0.1), Error);
  EXPECT_THROW(sorted.quantile(1.1), Error);
}

TEST(SolveService, ModeledBatchServiceIsSubadditive) {
  const double s1 = serve::modeled_batch_service_s(1, 1000, 5000, 5000, 40e-9, 5e-9);
  const double s8 = serve::modeled_batch_service_s(8, 1000, 5000, 5000, 40e-9, 5e-9);
  EXPECT_GT(s8, s1);        // more work than one solve...
  EXPECT_LT(s8, 8.0 * s1);  // ...but cheaper than eight (factor streamed once)
}

TEST(SolveService, ApplyBatchMatchesSingleApplies) {
  const Csr a = small_matrix();
  const idx n = a.n_rows;
  const IluPreconditioner scalar(ilut(a, {.m = 6, .tau = 1e-3}));
  const JacobiPreconditioner jacobi(a);  // exercises the generic fallback
  for (const Preconditioner* factor :
       {static_cast<const Preconditioner*>(&scalar),
        static_cast<const Preconditioner*>(&jacobi)}) {
    const DenseRhsBlock b = seeded_block(n, 5, 53);
    DenseRhsBlock x(n, 5);
    serve::apply_batch(*factor, b, x);
    RealVec x1(static_cast<std::size_t>(n));
    for (int c = 0; c < 5; ++c) {
      factor->apply(b.col(c), x1);
      for (idx i = 0; i < n; ++i) {
        ASSERT_EQ(x.at(i, c), x1[static_cast<std::size_t>(i)]) << "col=" << c;
      }
    }
  }
}

// ---- Concurrent GMRES streams over one shared cached factor ------------
// The tsan CI preset runs this: c threads apply the same immutable factor
// concurrently, which is safe exactly because apply() is const with
// call-local scratch. Results must equal the serial run bit-for-bit.

TEST(ServeStreams, ConcurrentGmresOnSharedFactorMatchesSerial) {
  const Csr a = workloads::convection_diffusion_2d(14, 14, 6.0, 3.0);
  const idx n = a.n_rows;
  serve::FactorCache cache(4);
  const std::shared_ptr<const Preconditioner> shared =
      cache.get(a, {.m = 8, .tau = 1e-4});

  constexpr int kSolves = 6;
  std::vector<RealVec> rhs;
  rhs.reserve(kSolves);
  for (int q = 0; q < kSolves; ++q) {
    rhs.push_back(serve::make_rhs(n, mix64(900 + static_cast<std::uint64_t>(q))));
  }

  std::vector<GmresResult> serial(kSolves);
  std::vector<RealVec> serial_x(kSolves, RealVec(static_cast<std::size_t>(n), 0.0));
  for (int q = 0; q < kSolves; ++q) {
    serial[q] = gmres(a, *shared, rhs[static_cast<std::size_t>(q)],
                      serial_x[static_cast<std::size_t>(q)], {.restart = 10});
  }

  std::vector<GmresResult> threaded(kSolves);
  std::vector<RealVec> threaded_x(kSolves, RealVec(static_cast<std::size_t>(n), 0.0));
  constexpr int kStreams = 3;
  std::vector<std::thread> pool;
  pool.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    pool.emplace_back([&, s]() {
      for (int q = s; q < kSolves; q += kStreams) {
        threaded[static_cast<std::size_t>(q)] =
            gmres(a, *shared, rhs[static_cast<std::size_t>(q)],
                  threaded_x[static_cast<std::size_t>(q)], {.restart = 10});
      }
    });
  }
  for (std::thread& t : pool) t.join();

  for (int q = 0; q < kSolves; ++q) {
    EXPECT_EQ(serial[q].matvecs, threaded[q].matvecs) << "solve " << q;
    EXPECT_EQ(serial[q].final_residual, threaded[q].final_residual) << "solve " << q;
    for (idx i = 0; i < n; ++i) {
      ASSERT_EQ(serial_x[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)],
                threaded_x[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)])
          << "solve " << q;
    }
  }
  EXPECT_EQ(cache.stats().misses, 1u);  // every stream shared one factor
}

}  // namespace
}  // namespace ptilu
