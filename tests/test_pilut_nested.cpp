// Tests for the nested (partition-based) parallel ILUT variant (§7).
#include <gtest/gtest.h>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/trisolve.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/pilut_nested.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

namespace ptilu {
namespace {

DistCsr make_dist(const Csr& a, int nranks) {
  const Graph g = graph_from_pattern(a);
  return DistCsr::create(a, partition_kway(g, nranks));
}

TEST(PilutNested, SingleRankMatchesSerialIlut) {
  const Csr a = workloads::convection_diffusion_2d(14, 14, 5.0, 2.0);
  const DistCsr dist = make_dist(a, 1);
  sim::Machine machine(1);
  const PilutResult result = pilut_factor_nested(machine, dist, {.m = 6, .tau = 1e-3});
  const IluFactors serial = ilut(a, {.m = 6, .tau = 1e-3});
  EXPECT_TRUE(equal(result.factors.l, serial.l));
  EXPECT_TRUE(equal(result.factors.u, serial.u));
}

TEST(PilutNested, FactorsAndScheduleValid) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 6.0, 3.0);
  for (const int nranks : {2, 4, 8}) {
    const DistCsr dist = make_dist(a, nranks);
    sim::Machine machine(nranks);
    const PilutResult result =
        pilut_factor_nested(machine, dist, {.m = 8, .tau = 1e-4, .pivot_rel = 1e-12});
    result.factors.validate();
    result.schedule.validate();
    EXPECT_GE(result.stats.levels, 1);
    // Far fewer stages than the MIS formulation would use levels.
    EXPECT_LE(result.stats.levels, 12) << "nranks=" << nranks;
  }
}

TEST(PilutNested, RowCapsStillHold) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 4.0, 4.0);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const idx m = 5;
  const PilutResult result =
      pilut_factor_nested(machine, dist, {.m = m, .tau = 1e-6, .pivot_rel = 1e-12});
  for (idx i = 0; i < a.n_rows; ++i) {
    EXPECT_LE(result.factors.l.row_nnz(i), m);
    EXPECT_LE(result.factors.u.row_nnz(i), m + 1);
  }
}

TEST(PilutNested, TrisolveMatchesSerialThroughMigration) {
  // The row migration means interface rows can reference interior columns
  // owned by other ranks — the generalized DistTriangularSolver must still
  // reproduce the serial solves exactly.
  const Csr a = workloads::convection_diffusion_2d(22, 22, 5.0, 2.0);
  for (const int nranks : {2, 4, 8}) {
    const DistCsr dist = make_dist(a, nranks);
    sim::Machine machine(nranks);
    const PilutResult result =
        pilut_factor_nested(machine, dist, {.m = 8, .tau = 1e-4, .pivot_rel = 1e-12});
    const DistTriangularSolver solver(result.factors, result.schedule);
    const RealVec b = workloads::random_vector(a.n_rows, 13);
    RealVec x_par(a.n_rows), x_ser(a.n_rows);
    machine.reset();
    solver.apply(machine, b, x_par);
    ilu_apply(result.factors, b, x_ser);
    EXPECT_LT(max_abs_diff(x_par, x_ser), 1e-11) << "nranks=" << nranks;
  }
}

TEST(PilutNested, PreconditionsGmresComparably) {
  const Csr a = workloads::convection_diffusion_2d(32, 32, 8.0, 4.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  const DistCsr dist = make_dist(a, 8);
  sim::Machine machine(8);
  const PilutResult nested =
      pilut_factor_nested(machine, dist, {.m = 10, .tau = 1e-4, .pivot_rel = 1e-12});
  const PilutResult flat =
      pilut_factor(machine, dist, {.m = 10, .tau = 1e-4, .pivot_rel = 1e-12});

  const auto nmv = [&](const PilutResult& f) {
    RealVec x(a.n_rows, 0.0);
    const GmresResult r = gmres(a, IluPreconditioner(f.factors, f.schedule.newnum), b, x,
                                {.restart = 20, .max_matvecs = 5000});
    EXPECT_TRUE(r.converged);
    return r.matvecs;
  };
  const int nested_nmv = nmv(nested);
  const int flat_nmv = nmv(flat);
  // Different orderings, same dropping parameters: quality is comparable.
  EXPECT_LT(nested_nmv, flat_nmv * 2 + 10);
  EXPECT_LT(flat_nmv, nested_nmv * 2 + 10);
}

TEST(PilutNested, FewerSyncPointsThanMisFormulation) {
  const Csr a = workloads::convection_diffusion_2d(40, 40, 4.0, 4.0);
  const DistCsr dist = make_dist(a, 16);
  sim::Machine machine(16);
  const PilutResult nested = pilut_factor_nested(
      machine, dist, {.m = 10, .tau = 1e-6, .pivot_rel = 1e-12});
  const PilutResult flat =
      pilut_factor(machine, dist, {.m = 10, .tau = 1e-6, .pivot_rel = 1e-12});
  EXPECT_LT(nested.stats.levels, flat.stats.levels);
}

TEST(PilutNested, SequentialCutoffForcesTail) {
  const Csr a = workloads::convection_diffusion_2d(16, 16);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  // Huge cutoff: everything goes through the sequential tail in one stage.
  const PilutResult result = pilut_factor_nested(
      machine, dist, {.m = 8, .tau = 1e-4, .pivot_rel = 1e-12},
      {.max_depth = 8, .sequential_cutoff = 100000});
  EXPECT_EQ(result.stats.levels, 1);
  result.factors.validate();
  // All interface rows were hosted on rank 0 for the tail stage.
  for (idx i = result.schedule.n_interior; i < a.n_rows; ++i) {
    EXPECT_EQ(result.schedule.owner_new[i], 0);
  }
}

TEST(PilutNested, DeterministicForFixedSeed) {
  const Csr a = workloads::convection_diffusion_2d(18, 18);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult r1 =
      pilut_factor_nested(machine, dist, {.m = 6, .tau = 1e-4, .seed = 3, .pivot_rel = 1e-12});
  const PilutResult r2 =
      pilut_factor_nested(machine, dist, {.m = 6, .tau = 1e-4, .seed = 3, .pivot_rel = 1e-12});
  EXPECT_TRUE(equal(r1.factors.l, r2.factors.l));
  EXPECT_TRUE(equal(r1.factors.u, r2.factors.u));
  EXPECT_EQ(r1.schedule.newnum, r2.schedule.newnum);
}

TEST(PilutNested, RejectsBadOptions) {
  const Csr a = workloads::convection_diffusion_2d(6, 6);
  const DistCsr dist = make_dist(a, 2);
  sim::Machine machine(2);
  EXPECT_THROW(
      pilut_factor_nested(machine, dist, {}, {.max_depth = -1}), Error);
  EXPECT_THROW(
      pilut_factor_nested(machine, dist, {}, {.max_depth = 2, .sequential_cutoff = 0}),
      Error);
}

}  // namespace
}  // namespace ptilu
