// Tests for the distributed substrate: DistCsr, halo exchange, parallel
// SpMV, and the distributed Luby MIS.
#include <gtest/gtest.h>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/dist/mis_dist.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/graph/mis.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

namespace ptilu {
namespace {

DistCsr make_dist(const Csr& a, int nranks, std::uint64_t seed = 1) {
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks, {.seed = seed});
  return DistCsr::create(a, p);
}

TEST(DistCsr, OwnershipCoversAllRows) {
  const Csr a = workloads::convection_diffusion_2d(16, 16);
  const DistCsr dist = make_dist(a, 4);
  idx total = 0;
  for (int r = 0; r < 4; ++r) {
    total += static_cast<idx>(dist.owned_rows[r].size());
    for (const idx row : dist.owned_rows[r]) EXPECT_EQ(dist.owner[row], r);
  }
  EXPECT_EQ(total, a.n_rows);
}

TEST(DistCsr, InteriorNodesHaveOnlyLocalNeighbors) {
  const Csr a = workloads::convection_diffusion_2d(20, 20);
  const DistCsr dist = make_dist(a, 4);
  for (idx v = 0; v < dist.n(); ++v) {
    if (dist.interface[v]) continue;
    for (nnz_t k = a.row_ptr[v]; k < a.row_ptr[v + 1]; ++k) {
      EXPECT_EQ(dist.owner[a.col_idx[k]], dist.owner[v])
          << "interior node " << v << " references a remote column";
    }
  }
}

TEST(DistCsr, InterfaceFractionReasonable) {
  const Csr a = workloads::convection_diffusion_2d(48, 48);
  const DistCsr dist = make_dist(a, 8);
  const idx interface_total = dist.interface_count_total();
  EXPECT_GT(interface_total, 0);
  EXPECT_LT(interface_total, dist.n() / 3);
  idx interior_sum = 0;
  for (int r = 0; r < 8; ++r) interior_sum += dist.interior_count(r);
  EXPECT_EQ(interior_sum + interface_total, dist.n());
}

TEST(DistCsr, SingleRankHasNoInterface) {
  const Csr a = workloads::convection_diffusion_2d(10, 10);
  const DistCsr dist = make_dist(a, 1);
  EXPECT_EQ(dist.interface_count_total(), 0);
}

TEST(Halo, ListsAreMirrored) {
  const Csr a = workloads::convection_diffusion_2d(24, 24);
  const DistCsr dist = make_dist(a, 4);
  const Halo halo = Halo::build(dist);
  // Every recv entry (r needs X from peer) must match a send entry on peer.
  for (int r = 0; r < 4; ++r) {
    for (const auto& [peer, indices] : halo.recv_lists[r]) {
      bool found = false;
      for (const auto& [to, sent] : halo.send_lists[peer]) {
        if (to == r) {
          EXPECT_EQ(sent, indices);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "no send list on rank " << peer << " for rank " << r;
    }
  }
}

TEST(Halo, SendsOnlyOwnedIndices) {
  const Csr a = workloads::convection_diffusion_2d(24, 24);
  const DistCsr dist = make_dist(a, 6);
  const Halo halo = Halo::build(dist);
  for (int r = 0; r < 6; ++r) {
    for (const auto& [peer, indices] : halo.send_lists[r]) {
      for (const idx v : indices) EXPECT_EQ(dist.owner[v], r);
    }
  }
}

TEST(Halo, OnlyInterfaceNodesExchanged) {
  const Csr a = workloads::convection_diffusion_2d(24, 24);
  const DistCsr dist = make_dist(a, 4);
  const Halo halo = Halo::build(dist);
  for (int r = 0; r < 4; ++r) {
    for (const auto& [peer, indices] : halo.send_lists[r]) {
      for (const idx v : indices) EXPECT_TRUE(dist.interface[v]);
    }
  }
}

TEST(DistSpmv, MatchesSerial) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 7.0, 3.0);
  for (const int nranks : {1, 2, 4, 8}) {
    const DistCsr dist = make_dist(a, nranks);
    const Halo halo = Halo::build(dist);
    sim::Machine machine(nranks);
    const RealVec x = workloads::random_vector(a.n_rows, 42);
    RealVec y_dist(a.n_rows, 0.0), y_serial(a.n_rows, 0.0);
    dist_spmv(machine, dist, halo, x, y_dist);
    spmv(a, x, y_serial);
    EXPECT_LT(max_abs_diff(y_dist, y_serial), 1e-14) << "nranks=" << nranks;
  }
}

TEST(DistSpmv, CommunicatesOnlyWithMultipleRanks) {
  const Csr a = workloads::convection_diffusion_2d(16, 16);
  const DistCsr solo = make_dist(a, 1);
  sim::Machine machine(1);
  RealVec y(a.n_rows);
  dist_spmv(machine, solo, Halo::build(solo), workloads::random_vector(a.n_rows, 1), y);
  EXPECT_EQ(machine.total_counters().messages_sent, 0u);

  const DistCsr quad = make_dist(a, 4);
  sim::Machine machine4(4);
  dist_spmv(machine4, quad, Halo::build(quad), workloads::random_vector(a.n_rows, 1), y);
  EXPECT_GT(machine4.total_counters().messages_sent, 0u);
}

TEST(DistSpmv, ModeledTimeDropsWithMoreRanks) {
  const Csr a = workloads::convection_diffusion_2d(64, 64);
  RealVec y(a.n_rows);
  const RealVec x = workloads::random_vector(a.n_rows, 3);
  double prev = 1e300;
  for (const int nranks : {1, 4, 16}) {
    const DistCsr dist = make_dist(a, nranks);
    sim::Machine machine(nranks);
    dist_spmv(machine, dist, Halo::build(dist), x, y);
    EXPECT_LT(machine.modeled_time(), prev) << "nranks=" << nranks;
    prev = machine.modeled_time();
  }
}

// --- Distributed MIS ---------------------------------------------------

/// Build a DistGraph over all vertices of g with a given partition.
struct DistGraphFixture {
  IdxVec owner;
  DistGraph dist;
  DistGraphFixture(const Graph& g, const Partition& p) {
    owner = p.part;
    dist.n_global = g.n;
    dist.owner = &owner;
    dist.verts_of.resize(p.nparts);
    dist.adj.resize(p.nparts);
    for (idx v = 0; v < g.n; ++v) dist.verts_of[p.part[v]].push_back(v);
    for (int r = 0; r < p.nparts; ++r) {
      dist.adj[r].resize(dist.verts_of[r].size());
      for (std::size_t i = 0; i < dist.verts_of[r].size(); ++i) {
        const idx v = dist.verts_of[r][i];
        const auto nbrs = g.neighbors(v);
        dist.adj[r][i].assign(nbrs.begin(), nbrs.end());
      }
    }
  }
};

TEST(MisDist, ProducesIndependentSet) {
  const Csr a = workloads::convection_diffusion_2d(20, 20);
  const Graph g = graph_from_pattern(a);
  for (const int nranks : {1, 2, 4, 8}) {
    const Partition p = partition_kway(g, nranks);
    DistGraphFixture fixture(g, p);
    sim::Machine machine(nranks);
    const IdxVec set = mis_dist(machine, fixture.dist, {.seed = 7, .rounds = 5});
    EXPECT_TRUE(is_independent(g, set)) << "nranks=" << nranks;
    EXPECT_GT(set.size(), 0u);
  }
}

TEST(MisDist, ManyRoundsIsMaximal) {
  const Csr a = workloads::convection_diffusion_2d(16, 16);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, 4);
  DistGraphFixture fixture(g, p);
  sim::Machine machine(4);
  const IdxVec set = mis_dist(machine, fixture.dist, {.seed = 3, .rounds = 64});
  EXPECT_TRUE(is_maximal_independent(g, set));
}

TEST(MisDist, IndependentOfRankCount) {
  // Same graph, same seed: the chosen set must not depend on how vertices
  // are distributed — that's the determinism the BSP structure guarantees.
  const Csr a = workloads::convection_diffusion_2d(14, 14);
  const Graph g = graph_from_pattern(a);
  IdxVec reference;
  for (const int nranks : {1, 3, 7}) {
    const Partition p = partition_kway(g, nranks);
    DistGraphFixture fixture(g, p);
    sim::Machine machine(nranks);
    const IdxVec set = mis_dist(machine, fixture.dist, {.seed = 11, .rounds = 6});
    if (reference.empty()) {
      reference = set;
    } else {
      EXPECT_EQ(set, reference) << "nranks=" << nranks;
    }
  }
}

TEST(MisDist, MatchesSerialLubySelectionOnOneRank) {
  // On one rank with the same stateless keys, the distributed algorithm is
  // plain Luby — cross-check against the serial implementation.
  const Csr a = workloads::convection_diffusion_2d(12, 12);
  const Graph g = graph_from_pattern(a);
  Partition p;
  p.nparts = 1;
  p.part.assign(g.n, 0);
  DistGraphFixture fixture(g, p);
  sim::Machine machine(1);
  const IdxVec dist_set = mis_dist(machine, fixture.dist, {.seed = 5, .rounds = 5});
  const IdxVec serial_set = luby_mis(g, {.seed = 5, .rounds = 5});
  EXPECT_EQ(dist_set, serial_set);
}

TEST(MisDist, CommunicationOnlyAcrossBoundaries) {
  const Csr a = workloads::convection_diffusion_2d(20, 20);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, 4);
  DistGraphFixture fixture(g, p);
  sim::Machine machine(4);
  (void)mis_dist(machine, fixture.dist, {.seed = 1, .rounds = 5});
  // Messages exist, but total traffic is far below one word per vertex per
  // round — only boundary status changes travel.
  const auto totals = machine.total_counters();
  EXPECT_GT(totals.messages_sent, 0u);
  EXPECT_LT(totals.bytes_sent, static_cast<std::uint64_t>(g.n) * 5 * sizeof(idx));
}

TEST(MisDist, EmptyGraphGivesEmptySet) {
  IdxVec owner;
  DistGraph dist;
  dist.n_global = 0;
  dist.owner = &owner;
  dist.verts_of.resize(2);
  dist.adj.resize(2);
  sim::Machine machine(2);
  EXPECT_TRUE(mis_dist(machine, dist).empty());
}

}  // namespace
}  // namespace ptilu

namespace ptilu {
namespace {

TEST(Halo, TotalExchangedMatchesCut) {
  const Csr a = workloads::convection_diffusion_2d(24, 24);
  const DistCsr dist = make_dist(a, 4);
  const Halo halo = Halo::build(dist);
  // Every exchanged value is an interface node needed by some peer; total
  // is bounded by (interface nodes) x (ranks - 1) and is at least the
  // number of ranks' worth of boundary values.
  EXPECT_GT(halo.total_exchanged(), 0u);
  EXPECT_LE(halo.total_exchanged(),
            static_cast<std::size_t>(dist.interface_count_total()) * 3);
}

TEST(Halo, SingleRankExchangesNothing) {
  const Csr a = workloads::convection_diffusion_2d(8, 8);
  const DistCsr dist = make_dist(a, 1);
  EXPECT_EQ(Halo::build(dist).total_exchanged(), 0u);
}

TEST(MisDist, ScratchReuseIsClean) {
  // Reusing one scratch across many calls must not leak state between them.
  const Csr a = workloads::convection_diffusion_2d(12, 12);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, 4);
  DistGraphFixture fixture(g, p);
  DistMisScratch scratch;
  sim::Machine machine(4);
  const IdxVec first = mis_dist(machine, fixture.dist, {.seed = 3, .rounds = 5}, &scratch);
  const IdxVec second = mis_dist(machine, fixture.dist, {.seed = 3, .rounds = 5}, &scratch);
  EXPECT_EQ(first, second);
  const IdxVec fresh = mis_dist(machine, fixture.dist, {.seed = 3, .rounds = 5});
  EXPECT_EQ(first, fresh);
}

}  // namespace
}  // namespace ptilu
