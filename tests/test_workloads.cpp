// Tests for the workload generators (G0 and TORSO analogues and friends).
#include <gtest/gtest.h>

#include <cmath>

#include "ptilu/graph/graph.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"
#include "ptilu/workloads/torso.hpp"

namespace ptilu {
namespace {

using namespace workloads;

TEST(ConvDiff2d, LaplacianStructure) {
  const Csr a = convection_diffusion_2d(4, 3);
  a.validate();
  EXPECT_EQ(a.n_rows, 12);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 4), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
  // Interior row has 5 entries.
  EXPECT_EQ(a.row_nnz(5), 5);
}

TEST(ConvDiff2d, PureLaplacianIsSymmetric) {
  const Csr a = convection_diffusion_2d(10, 10);
  EXPECT_DOUBLE_EQ(matrix_stats(a).symmetry_gap, 0.0);
}

TEST(ConvDiff2d, ConvectionBreaksSymmetry) {
  const Csr a = convection_diffusion_2d(10, 10, 20.0, 10.0);
  EXPECT_GT(matrix_stats(a).symmetry_gap, 0.0);
  EXPECT_TRUE(matrix_stats(a).has_full_diagonal);
}

TEST(ConvDiff2d, G0SizeMatchesPaperScale) {
  // The paper's G0 has ~57k equations; 240x240 gives 57,600.
  const Csr a = convection_diffusion_2d(240, 240, 10.0, 10.0);
  EXPECT_EQ(a.n_rows, 57600);
  const auto stats = matrix_stats(a);
  EXPECT_NEAR(stats.avg_row_nnz, 5.0, 0.1);
}

TEST(ConvDiff2d, DiagonallyDominantForModestConvection) {
  const Csr a = convection_diffusion_2d(20, 20, 5.0, 5.0);
  for (idx i = 0; i < a.n_rows; ++i) {
    real off = 0.0;
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] != i) off += std::abs(a.values[k]);
    }
    EXPECT_GE(a.at(i, i) + 1e-12, off) << "row " << i;
  }
}

TEST(Poisson3d, StructureAndSymmetry) {
  const Csr a = poisson_3d(5, 4, 3);
  a.validate();
  EXPECT_EQ(a.n_rows, 60);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(matrix_stats(a).symmetry_gap, 0.0);
  // Connectivity: one component.
  EXPECT_EQ(count_components(graph_from_pattern(a)), 1);
}

TEST(Anisotropic2d, WeakCouplingDirection) {
  const Csr a = anisotropic_2d(6, 6, 1e-3);
  EXPECT_NEAR(a.at(0, 1), -1e-3, 1e-15);  // x-neighbor weak
  EXPECT_DOUBLE_EQ(a.at(0, 6), -1.0);     // y-neighbor strong
}

TEST(JumpCoefficient2d, SpdStructure) {
  const Csr a = jump_coefficient_2d(12, 12, 4.0, 7);
  a.validate();
  EXPECT_DOUBLE_EQ(matrix_stats(a).symmetry_gap, 0.0);
  // Row sums are >= 0 (Dirichlet rows strictly positive).
  for (idx i = 0; i < a.n_rows; ++i) {
    real sum = 0.0;
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) sum += a.values[k];
    EXPECT_GE(sum, -1e-9);
  }
}

TEST(JumpCoefficient2d, ContrastSpansOrders) {
  const Csr a = jump_coefficient_2d(30, 30, 6.0, 9);
  real min_offdiag = 1e300, max_offdiag = 0;
  for (idx i = 0; i < a.n_rows; ++i) {
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == i) continue;
      min_offdiag = std::min(min_offdiag, std::abs(a.values[k]));
      max_offdiag = std::max(max_offdiag, std::abs(a.values[k]));
    }
  }
  EXPECT_GT(max_offdiag / min_offdiag, 1e3);
}

TEST(HexStiffness, RowsSumToZeroAndSymmetric) {
  real k[8][8];
  unit_hex_stiffness(k);
  for (int i = 0; i < 8; ++i) {
    real sum = 0.0;
    for (int j = 0; j < 8; ++j) {
      sum += k[i][j];
      EXPECT_NEAR(k[i][j], k[j][i], 1e-14);
    }
    EXPECT_NEAR(sum, 0.0, 1e-14) << "row " << i;
    EXPECT_GT(k[i][i], 0.0);
  }
  // Known value for the unit-cube trilinear element: K_ii = 1/3.
  EXPECT_NEAR(k[0][0], 1.0 / 3.0, 1e-12);
}

TEST(Torso, AssemblesConnectedSpdLikeMatrix) {
  TorsoOptions opts;
  opts.nx = opts.ny = 16;
  opts.nz = 20;
  const TorsoMatrix torso = fem_torso_3d(opts);
  torso.a.validate();
  EXPECT_GT(torso.n_nodes, 1000);
  const auto stats = matrix_stats(torso.a);
  EXPECT_LT(stats.symmetry_gap, 1e-12);
  EXPECT_TRUE(stats.has_full_diagonal);
  EXPECT_GT(stats.avg_row_nnz, 10.0);  // FEM connectivity, up to 27 per row
  EXPECT_LE(stats.max_row_nnz, 27);
  EXPECT_EQ(count_components(graph_from_pattern(torso.a)), 1);
}

TEST(Torso, QuadraticFormPositive) {
  TorsoOptions opts;
  opts.nx = opts.ny = 10;
  opts.nz = 12;
  const TorsoMatrix torso = fem_torso_3d(opts);
  const idx n = torso.a.n_rows;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RealVec x = random_vector(n, seed);
    RealVec ax(n);
    spmv(torso.a, x, ax);
    EXPECT_GT(dot(x, ax), 0.0) << "seed " << seed;
  }
}

TEST(Torso, TissueContrastVisibleInValues) {
  TorsoOptions opts;
  opts.nx = opts.ny = 16;
  opts.nz = 20;
  const TorsoMatrix torso = fem_torso_3d(opts);
  real min_diag = 1e300, max_diag = 0;
  const RealVec d = diagonal(torso.a);
  for (const real v : d) {
    min_diag = std::min(min_diag, v);
    max_diag = std::max(max_diag, v);
  }
  // Bone (0.006) vs blood (0.6) should give >= ~30x diagonal spread.
  EXPECT_GT(max_diag / min_diag, 30.0);
}

TEST(Torso, ScalesTowardPaperSize) {
  // Paper's TORSO is ~2e5 equations. Check the generator's node count grows
  // with resolution and document the default scale.
  TorsoOptions small;
  small.nx = small.ny = 12;
  small.nz = 16;
  TorsoOptions larger;
  larger.nx = larger.ny = 24;
  larger.nz = 32;
  EXPECT_GT(fem_torso_3d(larger).n_nodes, 5 * fem_torso_3d(small).n_nodes);
}

TEST(Rhs, AllOnesSolutionExact) {
  const Csr a = convection_diffusion_2d(8, 8, 3.0, 0.0);
  const RealVec b = rhs_all_ones_solution(a);
  // residual of x = ones must vanish.
  RealVec ones(a.n_rows, 1.0), r(a.n_rows);
  residual(a, ones, b, r);
  EXPECT_LT(norm_inf(r), 1e-13);
}

TEST(Rhs, RandomVectorDeterministic) {
  EXPECT_EQ(random_vector(32, 5), random_vector(32, 5));
  EXPECT_NE(random_vector(32, 5), random_vector(32, 6));
}

TEST(Stats, DescribeMentionsKeyFields) {
  const auto stats = matrix_stats(convection_diffusion_2d(4, 4));
  const std::string text = describe(stats);
  EXPECT_NE(text.find("n=16"), std::string::npos);
  EXPECT_NE(text.find("full_diag=yes"), std::string::npos);
}

}  // namespace
}  // namespace ptilu
