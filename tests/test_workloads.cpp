// Tests for the workload generators (G0 and TORSO analogues and friends).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ptilu/graph/graph.hpp"
#include "ptilu/support/check.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"
#include "ptilu/workloads/stream.hpp"
#include "ptilu/workloads/torso.hpp"

namespace ptilu {
namespace {

using namespace workloads;

TEST(ConvDiff2d, LaplacianStructure) {
  const Csr a = convection_diffusion_2d(4, 3);
  a.validate();
  EXPECT_EQ(a.n_rows, 12);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 4), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
  // Interior row has 5 entries.
  EXPECT_EQ(a.row_nnz(5), 5);
}

TEST(ConvDiff2d, PureLaplacianIsSymmetric) {
  const Csr a = convection_diffusion_2d(10, 10);
  EXPECT_DOUBLE_EQ(matrix_stats(a).symmetry_gap, 0.0);
}

TEST(ConvDiff2d, ConvectionBreaksSymmetry) {
  const Csr a = convection_diffusion_2d(10, 10, 20.0, 10.0);
  EXPECT_GT(matrix_stats(a).symmetry_gap, 0.0);
  EXPECT_TRUE(matrix_stats(a).has_full_diagonal);
}

TEST(ConvDiff2d, G0SizeMatchesPaperScale) {
  // The paper's G0 has ~57k equations; 240x240 gives 57,600.
  const Csr a = convection_diffusion_2d(240, 240, 10.0, 10.0);
  EXPECT_EQ(a.n_rows, 57600);
  const auto stats = matrix_stats(a);
  EXPECT_NEAR(stats.avg_row_nnz, 5.0, 0.1);
}

TEST(ConvDiff2d, DiagonallyDominantForModestConvection) {
  const Csr a = convection_diffusion_2d(20, 20, 5.0, 5.0);
  for (idx i = 0; i < a.n_rows; ++i) {
    real off = 0.0;
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] != i) off += std::abs(a.values[k]);
    }
    EXPECT_GE(a.at(i, i) + 1e-12, off) << "row " << i;
  }
}

TEST(Poisson3d, StructureAndSymmetry) {
  const Csr a = poisson_3d(5, 4, 3);
  a.validate();
  EXPECT_EQ(a.n_rows, 60);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(matrix_stats(a).symmetry_gap, 0.0);
  // Connectivity: one component.
  EXPECT_EQ(count_components(graph_from_pattern(a)), 1);
}

TEST(Anisotropic2d, WeakCouplingDirection) {
  const Csr a = anisotropic_2d(6, 6, 1e-3);
  EXPECT_NEAR(a.at(0, 1), -1e-3, 1e-15);  // x-neighbor weak
  EXPECT_DOUBLE_EQ(a.at(0, 6), -1.0);     // y-neighbor strong
}

TEST(JumpCoefficient2d, SpdStructure) {
  const Csr a = jump_coefficient_2d(12, 12, 4.0, 7);
  a.validate();
  EXPECT_DOUBLE_EQ(matrix_stats(a).symmetry_gap, 0.0);
  // Row sums are >= 0 (Dirichlet rows strictly positive).
  for (idx i = 0; i < a.n_rows; ++i) {
    real sum = 0.0;
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) sum += a.values[k];
    EXPECT_GE(sum, -1e-9);
  }
}

TEST(JumpCoefficient2d, ContrastSpansOrders) {
  const Csr a = jump_coefficient_2d(30, 30, 6.0, 9);
  real min_offdiag = 1e300, max_offdiag = 0;
  for (idx i = 0; i < a.n_rows; ++i) {
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == i) continue;
      min_offdiag = std::min(min_offdiag, std::abs(a.values[k]));
      max_offdiag = std::max(max_offdiag, std::abs(a.values[k]));
    }
  }
  EXPECT_GT(max_offdiag / min_offdiag, 1e3);
}

TEST(HexStiffness, RowsSumToZeroAndSymmetric) {
  real k[8][8];
  unit_hex_stiffness(k);
  for (int i = 0; i < 8; ++i) {
    real sum = 0.0;
    for (int j = 0; j < 8; ++j) {
      sum += k[i][j];
      EXPECT_NEAR(k[i][j], k[j][i], 1e-14);
    }
    EXPECT_NEAR(sum, 0.0, 1e-14) << "row " << i;
    EXPECT_GT(k[i][i], 0.0);
  }
  // Known value for the unit-cube trilinear element: K_ii = 1/3.
  EXPECT_NEAR(k[0][0], 1.0 / 3.0, 1e-12);
}

TEST(Torso, AssemblesConnectedSpdLikeMatrix) {
  TorsoOptions opts;
  opts.nx = opts.ny = 16;
  opts.nz = 20;
  const TorsoMatrix torso = fem_torso_3d(opts);
  torso.a.validate();
  EXPECT_GT(torso.n_nodes, 1000);
  const auto stats = matrix_stats(torso.a);
  EXPECT_LT(stats.symmetry_gap, 1e-12);
  EXPECT_TRUE(stats.has_full_diagonal);
  EXPECT_GT(stats.avg_row_nnz, 10.0);  // FEM connectivity, up to 27 per row
  EXPECT_LE(stats.max_row_nnz, 27);
  EXPECT_EQ(count_components(graph_from_pattern(torso.a)), 1);
}

TEST(Torso, QuadraticFormPositive) {
  TorsoOptions opts;
  opts.nx = opts.ny = 10;
  opts.nz = 12;
  const TorsoMatrix torso = fem_torso_3d(opts);
  const idx n = torso.a.n_rows;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RealVec x = random_vector(n, seed);
    RealVec ax(n);
    spmv(torso.a, x, ax);
    EXPECT_GT(dot(x, ax), 0.0) << "seed " << seed;
  }
}

TEST(Torso, TissueContrastVisibleInValues) {
  TorsoOptions opts;
  opts.nx = opts.ny = 16;
  opts.nz = 20;
  const TorsoMatrix torso = fem_torso_3d(opts);
  real min_diag = 1e300, max_diag = 0;
  const RealVec d = diagonal(torso.a);
  for (const real v : d) {
    min_diag = std::min(min_diag, v);
    max_diag = std::max(max_diag, v);
  }
  // Bone (0.006) vs blood (0.6) should give >= ~30x diagonal spread.
  EXPECT_GT(max_diag / min_diag, 30.0);
}

TEST(Torso, ScalesTowardPaperSize) {
  // Paper's TORSO is ~2e5 equations. Check the generator's node count grows
  // with resolution and document the default scale.
  TorsoOptions small;
  small.nx = small.ny = 12;
  small.nz = 16;
  TorsoOptions larger;
  larger.nx = larger.ny = 24;
  larger.nz = 32;
  EXPECT_GT(fem_torso_3d(larger).n_nodes, 5 * fem_torso_3d(small).n_nodes);
}

/// Concatenate row slabs (local row_ptr, global columns) back into one
/// global CSR, the way a rank-local streaming build would be stitched
/// together for comparison against a dense generator.
Csr concat_slabs(const std::vector<Csr>& slabs, idx n_cols) {
  idx rows = 0;
  for (const Csr& s : slabs) rows += s.n_rows;
  Csr out(rows, n_cols);
  idx at = 0;
  for (const Csr& s : slabs) {
    out.col_idx.insert(out.col_idx.end(), s.col_idx.begin(), s.col_idx.end());
    out.values.insert(out.values.end(), s.values.begin(), s.values.end());
    for (idx i = 0; i < s.n_rows; ++i) {
      out.row_ptr[at + i + 1] = out.row_ptr[at] + s.row_ptr[i + 1];
    }
    at += s.n_rows;
  }
  return out;
}

/// Split [0, n) into p contiguous ranges (the uneven first-ranks-get-one-
/// extra split the scaling harness uses) and stream each slab.
template <typename SlabFn>
std::vector<Csr> stream_all(idx n, int p, SlabFn&& slab_of) {
  std::vector<Csr> slabs;
  const idx base = n / p;
  const idx extra = n % p;
  idx begin = 0;
  for (int r = 0; r < p; ++r) {
    const idx end = begin + base + (r < extra ? 1 : 0);
    slabs.push_back(slab_of(begin, end));
    begin = end;
  }
  return slabs;
}

TEST(StreamConvDiff, SlabsConcatenateToDenseGeneratorByteIdentical) {
  const idx nx = 17, ny = 13;
  const real cx = 10.0, cy = 20.0;
  const Csr dense = convection_diffusion_2d(nx, ny, cx, cy);
  for (const int p : {1, 3, 7, 16}) {
    const auto slabs = stream_all(nx * ny, p, [&](idx b, idx e) {
      return convection_diffusion_2d_rows(nx, ny, cx, cy, b, e);
    });
    const Csr glued = concat_slabs(slabs, nx * ny);
    // Byte-identical, not just numerically equal: same row_ptr, same
    // column order, bit-equal doubles.
    EXPECT_EQ(glued.row_ptr, dense.row_ptr) << "p=" << p;
    EXPECT_EQ(glued.col_idx, dense.col_idx) << "p=" << p;
    EXPECT_EQ(glued.values, dense.values) << "p=" << p;
  }
}

TEST(StreamConvDiff, EmptySlabAndBoundsChecks) {
  const Csr empty = convection_diffusion_2d_rows(8, 8, 1.0, 2.0, 5, 5);
  EXPECT_EQ(empty.n_rows, 0);
  EXPECT_EQ(empty.nnz(), 0);
  EXPECT_EQ(empty.n_cols, 64);
  EXPECT_THROW(convection_diffusion_2d_rows(8, 8, 0.0, 0.0, 60, 70), Error);
  EXPECT_THROW(convection_diffusion_2d_rows(8, 8, 0.0, 0.0, -1, 4), Error);
}

TEST(StreamTorsoFv, SlabsConcatenateToDenseGeneratorByteIdentical) {
  TorsoOptions opts;
  opts.nx = opts.ny = 12;
  opts.nz = 14;
  const Csr dense = torso_fv_3d(opts);
  dense.validate();
  const idx n = opts.nx * opts.ny * opts.nz;
  for (const int p : {1, 5, 32}) {
    const auto slabs = stream_all(n, p, [&](idx b, idx e) {
      return torso_fv_3d_rows(opts, b, e);
    });
    const Csr glued = concat_slabs(slabs, n);
    EXPECT_EQ(glued.row_ptr, dense.row_ptr) << "p=" << p;
    EXPECT_EQ(glued.col_idx, dense.col_idx) << "p=" << p;
    EXPECT_EQ(glued.values, dense.values) << "p=" << p;
  }
}

TEST(StreamTorsoFv, SymmetricSpdWithTissueContrast) {
  TorsoOptions opts;
  opts.nx = opts.ny = 14;
  opts.nz = 18;
  const Csr a = torso_fv_3d(opts);
  a.validate();
  // Harmonic face weights are evaluated symmetrically, so the operator is
  // exactly symmetric (not merely up to rounding).
  EXPECT_DOUBLE_EQ(matrix_stats(a).symmetry_gap, 0.0);
  EXPECT_TRUE(matrix_stats(a).has_full_diagonal);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const RealVec x = random_vector(a.n_rows, seed);
    RealVec ax(a.n_rows);
    spmv(a, x, ax);
    EXPECT_GT(dot(x, ax), 0.0) << "seed " << seed;
  }
  // Tissue conductivity jumps (bone 0.006 vs blood 0.6) show in the
  // interior diagonals; air rows are exactly 1.
  real min_diag = 1e300, max_diag = 0.0;
  std::size_t air_rows = 0;
  for (idx i = 0; i < a.n_rows; ++i) {
    const real d = a.at(i, i);
    if (d == 1.0 && a.row_nnz(i) == 1) {
      ++air_rows;
      continue;
    }
    min_diag = std::min(min_diag, d);
    max_diag = std::max(max_diag, d);
  }
  EXPECT_GT(air_rows, 0u);
  EXPECT_GT(max_diag / min_diag, 10.0);
}

TEST(StreamSmoke, TenMillionUnknownsAt2048RanksMemoryBounded) {
  // The scaling harness's claim: a 10M-unknown operator streams through
  // 2048 rank-local slabs with peak memory equal to one slab, never the
  // global matrix. Walk every slab, checking per-slab bounds and summing
  // the structural totals against the closed-form stencil counts.
  const idx nx = 3163, ny = 3163;  // 10,004,569 unknowns
  const int p = 2048;
  const idx n = nx * ny;
  const idx max_rows = n / p + 1;
  nnz_t nnz = 0;
  idx rows = 0;
  const auto slabs_nnz = [&](idx b, idx e) {
    const Csr slab = convection_diffusion_2d_rows(nx, ny, 10.0, 20.0, b, e);
    EXPECT_LE(slab.n_rows, max_rows);
    EXPECT_LE(slab.nnz(), static_cast<nnz_t>(max_rows) * 5);
    rows += slab.n_rows;
    return slab.nnz();
  };
  const idx base = n / p, extra = n % p;
  idx begin = 0;
  for (int r = 0; r < p; ++r) {
    const idx end = begin + base + (r < extra ? 1 : 0);
    nnz += slabs_nnz(begin, end);
    begin = end;
  }
  EXPECT_EQ(rows, n);
  // 5-point stencil: n diagonals + 2 directed edges per interior face.
  const nnz_t want = static_cast<nnz_t>(n) + 2LL * ny * (nx - 1) + 2LL * nx * (ny - 1);
  EXPECT_EQ(nnz, want);
}

TEST(Rhs, AllOnesSolutionExact) {
  const Csr a = convection_diffusion_2d(8, 8, 3.0, 0.0);
  const RealVec b = rhs_all_ones_solution(a);
  // residual of x = ones must vanish.
  RealVec ones(a.n_rows, 1.0), r(a.n_rows);
  residual(a, ones, b, r);
  EXPECT_LT(norm_inf(r), 1e-13);
}

TEST(Rhs, RandomVectorDeterministic) {
  EXPECT_EQ(random_vector(32, 5), random_vector(32, 5));
  EXPECT_NE(random_vector(32, 5), random_vector(32, 6));
}

TEST(Stats, DescribeMentionsKeyFields) {
  const auto stats = matrix_stats(convection_diffusion_2d(4, 4));
  const std::string text = describe(stats);
  EXPECT_NE(text.find("n=16"), std::string::npos);
  EXPECT_NE(text.find("full_diag=yes"), std::string::npos);
}

}  // namespace
}  // namespace ptilu
