// Cross-module integration tests: the complete pipeline (generate →
// partition → factor → solve) on realistic scenarios, API failure
// injection, and end-to-end consistency checks that no single-module test
// can see.
#include <gtest/gtest.h>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/dist/mis_dist.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sparse/mm_io.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/check.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"
#include "ptilu/workloads/torso.hpp"

#include <cstdio>
#include <sstream>

namespace ptilu {
namespace {

TEST(Pipeline, TorsoEndToEnd) {
  // The paper's application scenario at test scale: assemble the ECG torso
  // system, partition it, factor in parallel, precondition GMRES, and
  // recover the known solution.
  workloads::TorsoOptions opts;
  opts.nx = opts.ny = 14;
  opts.nz = 18;
  const Csr a = workloads::fem_torso_3d(opts).a;
  const RealVec b = workloads::rhs_all_ones_solution(a);

  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, 8);
  const DistCsr dist = DistCsr::create(a, p);
  sim::Machine machine(8);
  const PilutResult fact =
      pilut_factor(machine, dist, {.m = 10, .tau = 1e-4, .cap_k = 2, .pivot_rel = 1e-12});

  RealVec x(a.n_rows, 0.0);
  const GmresResult result =
      gmres(a, IluPreconditioner(fact.factors, fact.schedule.newnum), b, x,
            {.restart = 50, .max_matvecs = 5000});
  ASSERT_TRUE(result.converged);
  RealVec ones(a.n_rows, 1.0);
  EXPECT_LT(max_abs_diff(x, ones), 5e-3);
}

TEST(Pipeline, MatrixMarketRoundTripPreservesSolution) {
  // Write a generated system to .mtx, read it back, and verify the
  // factorization pipeline produces identical factors.
  const Csr a = workloads::convection_diffusion_2d(12, 12, 5.0, 0.0);
  std::stringstream stream;
  write_matrix_market(stream, a);
  const Csr round_tripped = read_matrix_market(stream);
  const IluFactors f1 = ilut(a, {.m = 8, .tau = 1e-3});
  const IluFactors f2 = ilut(round_tripped, {.m = 8, .tau = 1e-3});
  EXPECT_TRUE(equal(f1.l, f2.l));
  EXPECT_TRUE(equal(f1.u, f2.u));
}

TEST(Pipeline, AllPreconditionersRankAsExpected) {
  // On an ill-conditioned anisotropic problem, GMRES iteration counts must
  // order: ILUT(strong) <= ILUT(weak) <= ILU(0) <= Jacobi.
  const Csr a = workloads::anisotropic_2d(40, 40, 1e-2);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  const GmresOptions opts{.restart = 30, .max_matvecs = 5000};

  const auto count = [&](const Preconditioner& precond) {
    RealVec x(a.n_rows, 0.0);
    const GmresResult result = gmres(a, precond, b, x, opts);
    return result.converged ? result.matvecs : opts.max_matvecs;
  };
  const int strong = count(IluPreconditioner(ilut(a, {.m = 15, .tau = 1e-6})));
  const int weak = count(IluPreconditioner(ilut(a, {.m = 5, .tau = 1e-2})));
  const int zero_fill = count(IluPreconditioner(ilu0(a)));
  const int jacobi = count(JacobiPreconditioner(a));
  EXPECT_LE(strong, weak);
  EXPECT_LE(weak, zero_fill * 3 / 2 + 1);  // weak ILUT roughly matches ILU(0)
  EXPECT_LT(zero_fill, jacobi);
}

TEST(Pipeline, WorkstationClusterProfilePunishesManyLevels) {
  // The paper's conclusion: ILUT* matters even more on slow networks. The
  // modeled gap between ILUT and ILUT* must widen when we swap the T3D
  // parameters for the workstation-cluster profile.
  const Csr a = workloads::convection_diffusion_2d(40, 40, 5.0, 5.0);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, 16);
  const DistCsr dist = DistCsr::create(a, p);

  const auto gap = [&](sim::MachineParams params) {
    sim::Machine machine(16, params);
    const PilutResult plain = pilut_factor(machine, dist, {.m = 10, .tau = 1e-6});
    const PilutResult star =
        pilut_factor(machine, dist, {.m = 10, .tau = 1e-6, .cap_k = 2});
    EXPECT_GT(plain.stats.time_total, star.stats.time_total);
    return plain.stats.time_total - star.stats.time_total;
  };
  // ILUT's extra independent-set levels cost synchronization steps; on the
  // slow network each step is ~250x more expensive, so the absolute penalty
  // for not capping the reduced rows explodes.
  const double t3d_gap = gap(sim::MachineParams::cray_t3d());
  const double cluster_gap = gap(sim::MachineParams::workstation_cluster());
  EXPECT_GT(cluster_gap, 10.0 * t3d_gap);
}

TEST(Pipeline, SpmvTrisolveGmresAgreeOnOperatorAction) {
  // Applying the preconditioned operator two ways must agree: GMRES's
  // internal sequence vs manual spmv + parallel trisolve.
  const Csr a = workloads::convection_diffusion_2d(14, 14, 4.0, 2.0);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, 4);
  const DistCsr dist = DistCsr::create(a, p);
  sim::Machine machine(4);
  const PilutResult fact = pilut_factor(machine, dist, {.m = 8, .tau = 1e-4});
  const IluPreconditioner precond(fact.factors, fact.schedule.newnum);
  const DistTriangularSolver solver(fact.factors, fact.schedule);

  const RealVec v = workloads::random_vector(a.n_rows, 21);
  // Way 1: serial preconditioner interface.
  RealVec av(a.n_rows), way1(a.n_rows);
  spmv(a, v, av);
  precond.apply(av, way1);
  // Way 2: parallel machinery with explicit permutation handling.
  const Halo halo = Halo::build(dist);
  RealVec av2(a.n_rows), pav(a.n_rows), px(a.n_rows), way2(a.n_rows);
  machine.reset();
  dist_spmv(machine, dist, halo, v, av2);
  for (idx i = 0; i < a.n_rows; ++i) pav[fact.schedule.newnum[i]] = av2[i];
  solver.apply(machine, pav, px);
  for (idx i = 0; i < a.n_rows; ++i) way2[i] = px[fact.schedule.newnum[i]];
  EXPECT_LT(max_abs_diff(way1, way2), 1e-11);
}

// ------------------------------------------------------ failure injection

TEST(FailureInjection, MachineRankMismatchThrows) {
  const Csr a = workloads::convection_diffusion_2d(8, 8);
  const Graph g = graph_from_pattern(a);
  const DistCsr dist = DistCsr::create(a, partition_kway(g, 4));
  sim::Machine machine(2);  // wrong rank count
  EXPECT_THROW(pilut_factor(machine, dist, {}), Error);
}

TEST(FailureInjection, NonSquareMatrixRejectedEverywhere) {
  CooBuilder b(3, 4);
  b.add(0, 0, 1.0);
  const Csr a = b.to_csr();
  EXPECT_THROW(ilut(a, {}), Error);
  EXPECT_THROW(iluk(a, 1), Error);
  EXPECT_THROW(graph_from_pattern(a), Error);
  EXPECT_THROW(symmetrize_pattern(a), Error);
}

TEST(FailureInjection, BadPartitionRejected) {
  const Csr a = workloads::convection_diffusion_2d(4, 4);
  Partition p;
  p.nparts = 2;
  p.part.assign(16, 5);  // out-of-range part ids
  EXPECT_THROW(DistCsr::create(a, p), Error);
}

TEST(FailureInjection, GmresSizeMismatchThrows) {
  const Csr a = workloads::convection_diffusion_2d(4, 4);
  RealVec b(10, 1.0), x(16, 0.0);
  EXPECT_THROW(gmres(a, IdentityPreconditioner{}, b, x), Error);
}

TEST(FailureInjection, BadGmresOptionsThrow) {
  const Csr a = workloads::convection_diffusion_2d(4, 4);
  RealVec b(16, 1.0), x(16, 0.0);
  EXPECT_THROW(gmres(a, IdentityPreconditioner{}, b, x, {.restart = 0}), Error);
  EXPECT_THROW(gmres(a, IdentityPreconditioner{}, b, x, {.rtol = 0.0}), Error);
}

TEST(FailureInjection, NegativePilutOptionsThrow) {
  const Csr a = workloads::convection_diffusion_2d(4, 4);
  const Graph g = graph_from_pattern(a);
  const DistCsr dist = DistCsr::create(a, partition_kway(g, 2));
  sim::Machine machine(2);
  EXPECT_THROW(pilut_factor(machine, dist, {.m = -1}), Error);
  EXPECT_THROW(pilut_factor(machine, dist, {.m = 5, .tau = -1.0}), Error);
}

TEST(FailureInjection, SingularSystemWithoutGuardThrows) {
  // A structurally singular arrow with a zero pivot inside the interface
  // region must surface as ptilu::Error, not UB.
  CooBuilder builder(4, 4);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, 1.0);
  builder.add(2, 3, 1.0);  // row 2 has no diagonal
  builder.add(3, 2, 1.0);  // row 3 has no diagonal
  builder.add(0, 2, 0.1);
  builder.add(2, 0, 0.1);
  const Csr a = builder.to_csr();
  Partition p;
  p.nparts = 2;
  p.part = {0, 0, 1, 1};
  const DistCsr dist = DistCsr::create(a, p);
  sim::Machine machine(2);
  EXPECT_THROW(pilut_factor(machine, dist, {.m = 4, .tau = 0.0}), Error);
}

TEST(FailureInjection, TrisolveSizeMismatchThrows) {
  const Csr a = workloads::convection_diffusion_2d(6, 6);
  const IluFactors f = ilut(a, {.m = 5, .tau = 1e-3});
  RealVec small(4), right(a.n_rows);
  EXPECT_THROW(forward_solve(f.l, small, right), Error);
  EXPECT_THROW(backward_solve(f.u, right, small), Error);
}

}  // namespace
}  // namespace ptilu
