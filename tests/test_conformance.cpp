// Tests for the SPMD conformance checker: each seeded protocol violation
// must be caught with a report naming the offending rank and call site, and
// checking must never perturb the modeled output (pure observation).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include "ptilu/sim/conformance.hpp"
#include "ptilu/sim/machine.hpp"

namespace ptilu::sim {
namespace {

Machine checked(int nranks) {
  return Machine(nranks, Machine::Options{.check = true});
}

/// Runs `body`, expecting a conformance Error whose message contains every
/// string in `needles` (rank ids, call-site tags, explanation fragments).
template <typename Body>
void expect_violation(Body&& body, std::initializer_list<const char*> needles) {
  try {
    body();
    FAIL() << "expected an SPMD conformance violation";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SPMD conformance violation"), std::string::npos) << what;
    for (const char* needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "report missing '" << needle << "':\n" << what;
    }
    // Every report carries the per-rank protocol transcript.
    EXPECT_NE(what.find("per-rank protocol transcript"), std::string::npos) << what;
  }
}

TEST(Conformance, OffByDefaultWithoutEnv) {
  if (conformance_enabled_by_env()) GTEST_SKIP() << "PTILU_CHECK set in environment";
  Machine m(2);
  EXPECT_FALSE(m.checking());
  EXPECT_EQ(m.checker(), nullptr);
}

TEST(Conformance, OptionsAttachChecker) {
  Machine m = checked(3);
  EXPECT_TRUE(m.checking());
  ASSERT_NE(m.checker(), nullptr);
  EXPECT_EQ(m.checker()->nranks(), 3);
}

TEST(Conformance, SendToInvalidRankReported) {
  expect_violation(
      [] {
        Machine m = checked(2);
        m.step([](RankContext& ctx) {
          if (ctx.rank() == 1) ctx.send_indices(7, /*tag=*/3, {1, 2});
        }, "test/bad_send");
      },
      {"rank 1", "out-of-range rank 7", "test/bad_send"});
}

TEST(Conformance, SendToNegativeRankReported) {
  expect_violation(
      [] {
        Machine m = checked(2);
        m.step([](RankContext& ctx) {
          if (ctx.rank() == 0) ctx.send_indices(-1, /*tag=*/0, {5});
        }, "test/negative");
      },
      {"rank 0", "out-of-range rank -1", "test/negative"});
}

TEST(Conformance, RecvOnEmptyInboxIsClean) {
  Machine m = checked(2);
  m.step([](RankContext& ctx) { EXPECT_TRUE(ctx.recv_all().empty()); }, "test/empty");
  EXPECT_EQ(m.checker()->violations(), 0u);
}

TEST(Conformance, SecondDrainInSameSuperstepReported) {
  expect_violation(
      [] {
        Machine m = checked(2);
        m.step([](RankContext& ctx) {
          if (ctx.rank() == 0) ctx.send_indices(1, /*tag=*/1, {42});
        }, "test/send");
        m.step([](RankContext& ctx) {
          (void)ctx.recv_all();
          if (ctx.rank() == 1) (void)ctx.recv_all();  // the PR 2 bug class
        }, "test/double_drain");
      },
      {"rank 1", "drained its inbox twice", "test/double_drain"});
}

TEST(Conformance, SecondDrainAllowedWhenCheckingOff) {
  Machine m(2, Machine::Options{.check = false});
  m.step([](RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send_indices(1, /*tag=*/1, {42});
  });
  m.step([](RankContext& ctx) {
    const auto first = ctx.recv_all();
    if (ctx.rank() == 1) {
      EXPECT_EQ(first.size(), 1u);
    }
    EXPECT_TRUE(ctx.recv_all().empty());  // well-defined empty fallback
  });
}

TEST(Conformance, MismatchedCollectiveBytesReported) {
  expect_violation(
      [] {
        Machine m = checked(2);
        m.step([](RankContext& ctx) {
          // Rank-dependent payload: rank 1 claims a different byte count.
          ctx.declare_collective(CollectiveOp::kUser,
                                 ctx.rank() == 0 ? 8u : 16u, "test/reduce");
        }, "test/collective_step");
      },
      {"collective fingerprint divergence", "rank 1", "test/reduce"});
}

TEST(Conformance, SkippedCollectiveReported) {
  expect_violation(
      [] {
        Machine m = checked(2);
        m.step([](RankContext& ctx) {
          // Rank 1's control flow skips the collective entirely.
          if (ctx.rank() == 0) {
            ctx.declare_collective(CollectiveOp::kSum, 8, "test/skipped");
          }
        }, "test/skip_step");
      },
      {"collective count divergence", "rank 1", "declared 0 collective(s)"});
}

TEST(Conformance, MatchingCollectivesAreClean) {
  Machine m = checked(4);
  m.allreduce_sum([](int r) { return static_cast<double>(r); }, "test/sum");
  m.allreduce_max([](int r) { return static_cast<double>(r); }, "test/max");
  m.collective(64, "test/exchange");
  m.step([](RankContext& ctx) {
    ctx.declare_collective(CollectiveOp::kUser, 32, "test/user");
  }, "test/user_step");
  EXPECT_EQ(m.checker()->violations(), 0u);
}

TEST(Conformance, OrphanedMessageAtQuiescenceReported) {
  expect_violation(
      [] {
        Machine m = checked(2);
        m.step([](RankContext& ctx) {
          if (ctx.rank() == 0) ctx.send_indices(1, /*tag=*/9, {1, 2, 3});
        }, "test/orphan_send");
        // The message is now delivered to rank 1's inbox; nobody drains it.
        m.check_quiescent("test/end");
      },
      {"quiescence check at test/end failed", "rank 1",
       "delivered-but-never-received", "tag=9", "test/orphan_send"});
}

TEST(Conformance, OrphanedReplyAtQuiescenceReported) {
  expect_violation(
      [] {
        Machine m = checked(2);
        m.step([](RankContext& ctx) {
          if (ctx.rank() == 0) ctx.send_indices(1, /*tag=*/4, {8});
        }, "test/setup");
        m.step([](RankContext& ctx) {
          (void)ctx.recv_all();
          if (ctx.rank() == 1) ctx.send_indices(0, /*tag=*/5, {6});
        }, "test/reply");
        // rank 1's reply was delivered to rank 0's inbox at the barrier and
        // never drained.
        m.check_quiescent("test/final");
      },
      {"quiescence check at test/final failed", "rank 0", "tag=5", "test/reply"});
}

TEST(Conformance, LostMessageOverwriteReported) {
  expect_violation(
      [] {
        Machine m = checked(2);
        m.step([](RankContext& ctx) {
          if (ctx.rank() == 0) ctx.send_indices(1, /*tag=*/2, {7});
        }, "test/lost_send");
        // Rank 1 forgets to drain; the barrier at the end of this step
        // delivers the next batch over the unread message.
        m.step([](RankContext&) {}, "test/forgot_drain");
      },
      {"rank 1", "never received 1 message(s)", "losing them", "test/lost_send"});
}

TEST(Conformance, TransferToInvalidRankReported) {
  expect_violation(
      [] {
        Machine m = checked(2);
        m.charge_transfer(0, 5, 1024, "test/migrate");
      },
      {"out-of-range ranks 0 -> 5", "test/migrate"});
}

TEST(Conformance, CleanProtocolRoundTripHasNoViolations) {
  Machine m = checked(3);
  m.step([](RankContext& ctx) {
    const int next = (ctx.rank() + 1) % ctx.nranks();
    ctx.send_reals(next, /*tag=*/1, {1.0, 2.0});
  }, "test/ring_send");
  m.step([](RankContext& ctx) {
    const auto msgs = ctx.recv_all();
    ASSERT_EQ(msgs.size(), 1u);
  }, "test/ring_recv");
  m.check_quiescent("test/ring_end");
  EXPECT_EQ(m.checker()->violations(), 0u);
}

TEST(Conformance, ResetClearsInFlightState) {
  Machine m = checked(2);
  m.step([](RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send_indices(1, /*tag=*/1, {3});
  }, "test/pre_reset");
  m.reset();  // drops the orphaned message along with the queues
  m.check_quiescent("test/post_reset");
  EXPECT_EQ(m.checker()->violations(), 0u);
}

TEST(Conformance, CheckerReuseAfterCaughtViolation) {
  Machine m = checked(2);
  try {
    m.step([](RankContext& ctx) {
      if (ctx.rank() == 0) ctx.send_indices(9, /*tag=*/0, {1});
    }, "test/bad");
    FAIL() << "expected a violation";
  } catch (const Error&) {
  }
  EXPECT_EQ(m.checker()->violations(), 1u);
}

// The checker is pure observation: a protocol-clean program must produce
// bit-identical modeled time, counters, and superstep counts with checking
// on and off.
TEST(Conformance, ModeledOutputBitIdenticalCheckedVsUnchecked) {
  const auto run = [](bool check) {
    Machine m(4, Machine::Options{.check = check});
    for (int round = 0; round < 3; ++round) {
      m.step([&](RankContext& ctx) {
        ctx.charge_flops(1000 + 37 * static_cast<std::uint64_t>(ctx.rank()));
        const int next = (ctx.rank() + 1) % ctx.nranks();
        ctx.send_reals(next, /*tag=*/round, {1.5, 2.5, 3.5});
      }, "ident/send");
      m.step([](RankContext& ctx) {
        const auto msgs = ctx.recv_all();
        EXPECT_EQ(msgs.size(), 1u);
        ctx.charge_mem(msgs.empty() ? 0 : msgs[0].payload.size());
      }, "ident/recv");
    }
    const double sum = m.allreduce_sum(
        [](int r) { return 0.25 * r; }, "ident/sum");
    m.collective(256, "ident/exchange");
    m.charge_transfer(0, 3, 4096, "ident/migrate");
    m.check_quiescent("ident/end");
    return std::tuple{m.modeled_time(), m.supersteps(), m.total_counters().flops,
                      m.total_counters().bytes_sent, m.total_counters().messages_sent,
                      m.total_counters().mem_bytes, sum};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Conformance, EnvParsingAcceptsCommonSpellings) {
  // Only exercised indirectly (the env var is process-global); just pin the
  // parse itself through a child-scope setenv round trip.
  const char* old = std::getenv("PTILU_CHECK");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;
  for (const char* yes : {"1", "on", "ON", "true", "Yes"}) {
    ::setenv("PTILU_CHECK", yes, 1);
    EXPECT_TRUE(conformance_enabled_by_env()) << yes;
  }
  for (const char* no : {"0", "off", "false", "", "2"}) {
    ::setenv("PTILU_CHECK", no, 1);
    EXPECT_FALSE(conformance_enabled_by_env()) << no;
  }
  ::unsetenv("PTILU_CHECK");
  EXPECT_FALSE(conformance_enabled_by_env());
  if (had) ::setenv("PTILU_CHECK", saved.c_str(), 1);
}

}  // namespace
}  // namespace ptilu::sim
