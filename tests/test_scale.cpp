// High-rank identity tests for the sparse neighbor-routing substrate.
//
// The seed-scale differential suites (test_backend_identical.cpp) stop at
// 16 ranks; the sparse inbox and slot-indexed MIS batches exist precisely
// so the machine scales to thousands of ranks, and a structure bug that
// only shows at high p (a map rebalance under concurrent drains, a slot
// remap off by one at high fan-in) would sail through the small suites.
// These tests run the same observational-identity checks at p = 1024 and
// p = 4096: modeled time, per-rank clocks, counters, supersteps, and the
// metrics report must be bit-identical across the sequential and threaded
// backends, and total message traffic must stay proportional to the
// neighbor structure (never O(p^2)).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "ptilu/dist/mis_dist.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/sim/metrics.hpp"
#include "ptilu/support/types.hpp"

namespace ptilu {
namespace {

sim::Machine::Options backend_opts(sim::Backend backend, bool metrics = false) {
  sim::Machine::Options opts;
  opts.backend = backend;
  opts.threads = 4;  // force a real worker pool even on 1-core CI hosts
  opts.metrics = metrics;
  return opts;
}

using CounterRow = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>;
struct MachineObservation {
  double modeled_time = 0.0;
  std::vector<double> rank_times;
  std::uint64_t supersteps = 0;
  std::vector<CounterRow> counters;

  bool operator==(const MachineObservation&) const = default;
};

MachineObservation observe(const sim::Machine& m) {
  MachineObservation obs;
  obs.modeled_time = m.modeled_time();
  obs.supersteps = m.supersteps();
  for (int r = 0; r < m.nranks(); ++r) {
    obs.rank_times.push_back(m.rank_time(r));
    const sim::RankCounters& c = m.counters(r);
    obs.counters.emplace_back(c.flops, c.mem_bytes, c.messages_sent, c.bytes_sent);
  }
  return obs;
}

/// Three supersteps of a bidirectional ring exchange plus a tree
/// collective — the halo pattern bench_scale models, at p ranks.
void run_ring_program(sim::Machine& m) {
  const int p = m.nranks();
  for (int step = 0; step < 3; ++step) {
    m.step(
        [&](sim::RankContext& ctx) {
          const int r = ctx.rank();
          for (const sim::Message& msg : ctx.recv_all()) {
            ctx.charge_mem(msg.payload.size());
          }
          const IdxVec halo(8, static_cast<idx>(r));
          ctx.send_indices((r + 1) % p, /*tag=*/1, halo);
          ctx.send_indices((r + p - 1) % p, /*tag=*/2, halo);
          ctx.charge_flops(64 + static_cast<std::uint64_t>(r % 5));
        },
        "scale/ring");
  }
  m.step([&](sim::RankContext& ctx) { ctx.recv_all(); }, "scale/drain");
  m.collective(/*payload_bytes=*/64, "scale/reduce");
}

TEST(ScaleIdentity, RingExchangeAtP1024AcrossBackends) {
  const int p = 1024;
  sim::Machine seq(p, backend_opts(sim::Backend::kSequential));
  sim::Machine thr(p, backend_opts(sim::Backend::kThreads));
  run_ring_program(seq);
  run_ring_program(thr);
  EXPECT_EQ(observe(seq), observe(thr));
  // Ring traffic: exactly 2 point-to-point sends per rank per exchange
  // step plus the log2(p) collective tree hops — nowhere near p^2.
  const sim::RankCounters total = seq.total_counters();
  const std::uint64_t ring_msgs = 3ULL * 2ULL * static_cast<std::uint64_t>(p);
  EXPECT_GE(total.messages_sent, ring_msgs);
  EXPECT_LE(total.messages_sent, ring_msgs + 16ULL * p);
}

TEST(ScaleIdentity, MetricsReportByteIdenticalAtP1024) {
  const int p = 1024;
  std::string reports[2];
  int i = 0;
  for (const sim::Backend backend :
       {sim::Backend::kSequential, sim::Backend::kThreads}) {
    sim::Machine m(p, backend_opts(backend, /*metrics=*/true));
    ASSERT_NE(m.metrics(), nullptr);
    m.metrics()->push_phase("scale/ring");
    run_ring_program(m);
    m.metrics()->pop_phase();
    std::ostringstream os;
    m.metrics()->write_report(os, m);
    reports[i++] = os.str();
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_NE(reports[0].find("\"schema\": \"ptilu-report-v2\""), std::string::npos);
  // The sparse comm summary must reflect the ring: every rank talks to
  // exactly 2 peers, so the phase's pair count is 2p, not p^2.
  std::ostringstream want;
  want << "\"comm_pairs\": " << 2 * p;
  EXPECT_NE(reports[0].find(want.str()), std::string::npos) << reports[0].substr(0, 2000);
}

TEST(ScaleIdentity, SparseInboxSkipsIdleRanksAtP4096) {
  // Only 8 of 4096 ranks ever communicate. With the dense O(p^2) inbox this
  // pattern still walked every (rank, rank) cell; the sparse inbox must
  // deliver it with per-rank counters untouched on the idle 4088 ranks and
  // stay bit-identical across backends.
  const int p = 4096;
  const auto run = [&](sim::Machine& m) {
    for (int step = 0; step < 2; ++step) {
      m.step(
          [&](sim::RankContext& ctx) {
            const int r = ctx.rank();
            for (const sim::Message& msg : ctx.recv_all()) {
              ctx.charge_mem(msg.payload.size());
            }
            if (r % 512 == 0) {
              ctx.send_indices((r + 512) % p, /*tag=*/7, IdxVec(16, r));
            }
          },
          "scale/sparse");
    }
    m.step([&](sim::RankContext& ctx) { ctx.recv_all(); }, "scale/drain");
  };
  sim::Machine seq(p, backend_opts(sim::Backend::kSequential));
  sim::Machine thr(p, backend_opts(sim::Backend::kThreads));
  run(seq);
  run(thr);
  EXPECT_EQ(observe(seq), observe(thr));
  for (int r = 0; r < p; ++r) {
    const sim::RankCounters& c = seq.counters(r);
    if (r % 512 == 0) {
      EXPECT_EQ(c.messages_sent, 2u) << "rank " << r;
    } else {
      EXPECT_EQ(c.messages_sent, 0u) << "rank " << r;
      EXPECT_EQ(c.mem_bytes, 0u) << "rank " << r;
    }
  }
}

TEST(ScaleIdentity, MisDistRingAtP2048AcrossBackends) {
  // A 4096-vertex ring distributed 2 vertices per rank across 2048 ranks:
  // every rank has exactly 2 remote neighbor ranks, so the slot-indexed
  // batches exercise the sparse path at a scale where the old dense
  // per-peer scan would touch 2048^2 batch slots per round.
  const int p = 2048;
  const idx n = 2 * p;
  DistGraph g;
  g.n_global = n;
  IdxVec owner(n);
  for (idx v = 0; v < n; ++v) owner[v] = static_cast<idx>(v / 2);
  g.owner = &owner;
  g.verts_of.resize(p);
  g.adj.resize(p);
  for (int r = 0; r < p; ++r) {
    for (idx k = 0; k < 2; ++k) {
      const idx v = 2 * r + k;
      g.verts_of[r].push_back(v);
      g.adj[r].push_back({(v + n - 1) % n, (v + 1) % n});
    }
  }
  sim::Machine seq(p, backend_opts(sim::Backend::kSequential));
  sim::Machine thr(p, backend_opts(sim::Backend::kThreads));
  const IdxVec picked_seq = mis_dist(seq, g, {.seed = 7, .rounds = 6});
  const IdxVec picked_thr = mis_dist(thr, g, {.seed = 7, .rounds = 6});
  EXPECT_EQ(picked_seq, picked_thr);
  EXPECT_EQ(observe(seq), observe(thr));
  // Independence on the ring: no two chosen ids adjacent (ascending order
  // makes the neighbor check a scan; also guard the wrap-around pair).
  ASSERT_GT(picked_seq.size(), 0u);
  for (std::size_t i = 1; i < picked_seq.size(); ++i) {
    EXPECT_GT(picked_seq[i] - picked_seq[i - 1], 1) << "adjacent pair at " << i;
  }
  EXPECT_FALSE(picked_seq.front() == 0 && picked_seq.back() == n - 1);
}

}  // namespace
}  // namespace ptilu
