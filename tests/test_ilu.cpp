// Tests for the sequential factorizations: ILUT, ILU(0), ILU(k),
// dropping-rule kernels, and triangular solves.
#include <gtest/gtest.h>

#include <cmath>

#include "ptilu/ilu/factors.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/trisolve.hpp"
#include "ptilu/ilu/working_row.hpp"
#include "ptilu/sparse/dense.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

namespace ptilu {
namespace {

Csr random_dd_matrix(idx n, idx per_row, std::uint64_t seed) {
  // Random sparse, strongly diagonally dominant (no pivoting needed).
  Rng rng(seed);
  CooBuilder b(n, n);
  for (idx i = 0; i < n; ++i) {
    b.add(i, i, 20.0 + rng.next_double());
    for (idx k = 0; k < per_row; ++k) {
      const idx j = rng.next_index(n);
      if (j != i) b.add(i, j, rng.uniform(-1.0, 1.0));
    }
  }
  return b.to_csr();
}

/// Multiply the factors back together densely: returns L*U.
Dense multiply_factors(const IluFactors& f) {
  const idx n = f.n();
  Dense lu(n, n);
  Dense l = Dense::from_csr(f.l);
  Dense u = Dense::from_csr(f.u);
  for (idx i = 0; i < n; ++i) l(i, i) = 1.0;
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) {
      real acc = 0.0;
      for (idx k = 0; k < n; ++k) acc += l(i, k) * u(k, j);
      lu(i, j) = acc;
    }
  }
  return lu;
}

TEST(WorkingRow, InsertAccumulateClear) {
  WorkingRow w(8);
  w.insert(3, 1.5);
  w.insert(1, -2.0);
  EXPECT_TRUE(w.present(3));
  EXPECT_FALSE(w.present(0));
  w.accumulate(3, 0.5);
  EXPECT_DOUBLE_EQ(w.value(3), 2.0);
  EXPECT_EQ(w.touched().size(), 2u);
  w.clear();
  // After clear() only presence is specified: value() is meaningful solely
  // for present columns (the epoch stamp goes stale, values are not swept).
  EXPECT_FALSE(w.present(3));
  EXPECT_TRUE(w.touched().empty());
  // Re-inserting a previously-used column starts from the inserted value.
  w.insert(3, 4.0);
  EXPECT_TRUE(w.present(3));
  EXPECT_DOUBLE_EQ(w.value(3), 4.0);
}

TEST(WorkingRow, StaleColumnsDoNotResurrectAcrossEpochWrap) {
  // The presence stamp is a uint8 epoch: after exactly 255 clears the
  // counter returns to its old value, and a column stamped back then would
  // look present again unless the wrap bulk-invalidates stale stamps.
  WorkingRow w(3);
  w.insert(0, 42.0);
  for (int k = 0; k < 255; ++k) w.clear();
  EXPECT_FALSE(w.present(0));
  EXPECT_TRUE(w.touched().empty());
  w.insert(0, 1.0);
  EXPECT_TRUE(w.present(0));
  EXPECT_DOUBLE_EQ(w.value(0), 1.0);
}

TEST(WorkingRow, ManyGenerationsStayIndependent) {
  // Drive the stamp through several full wraps; each generation must see a
  // clean row regardless of what earlier generations touched.
  WorkingRow w(4);
  for (int gen = 0; gen < 3 * 255 + 7; ++gen) {
    const idx c = static_cast<idx>(gen % 4);
    EXPECT_FALSE(w.present(c)) << "generation " << gen;
    w.insert(c, static_cast<real>(gen));
    EXPECT_TRUE(w.present(c));
    EXPECT_DOUBLE_EQ(w.value(c), static_cast<real>(gen));
    EXPECT_EQ(w.touched().size(), 1u);
    w.clear();
  }
}

TEST(SelectLargest, KeepsLargestByMagnitude) {
  SparseRow row;
  row.push(0, 0.1);
  row.push(1, -5.0);
  row.push(2, 3.0);
  row.push(3, -0.01);
  select_largest(row, 2, 0.05);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row.cols[0], 1);
  EXPECT_EQ(row.cols[1], 2);
}

TEST(SelectLargest, ThresholdDropsSmall) {
  SparseRow row;
  row.push(0, 0.1);
  row.push(1, 0.2);
  select_largest(row, 10, 0.15);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row.cols[0], 1);
}

TEST(SelectLargest, AlwaysKeepSurvivesEverything) {
  SparseRow row;
  row.push(0, 1e-30);
  row.push(1, 5.0);
  row.push(2, 4.0);
  select_largest(row, 1, 0.5, /*always_keep=*/0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row.cols[0], 0);  // protected despite tiny magnitude
  EXPECT_EQ(row.cols[1], 1);
}

TEST(SelectLargest, TieBreakByColumnIsDeterministic) {
  SparseRow row;
  row.push(7, 1.0);
  row.push(2, -1.0);
  row.push(5, 1.0);
  select_largest(row, 2, 0.0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row.cols[0], 2);
  EXPECT_EQ(row.cols[1], 5);
}

TEST(SelectLargest, OutputSortedByColumn) {
  SparseRow row;
  row.push(9, 1.0);
  row.push(3, 2.0);
  row.push(6, 3.0);
  select_largest(row, 3, 0.0);
  EXPECT_TRUE(std::is_sorted(row.cols.begin(), row.cols.end()));
}

TEST(Ilut, NoDroppingEqualsExactLu) {
  const idx n = 40;
  const Csr a = random_dd_matrix(n, 4, 77);
  const IluFactors f = ilut(a, {.m = n, .tau = 0.0});
  f.validate();
  Dense exact = Dense::from_csr(a);
  dense_lu_nopivot(exact);
  const Dense approx = multiply_factors(f);
  // With no dropping, L*U reproduces A exactly (up to roundoff).
  const Dense original = Dense::from_csr(a);
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) {
      EXPECT_NEAR(approx(i, j), original(i, j), 1e-10) << "(" << i << "," << j << ")";
    }
  }
}

TEST(Ilut, RespectsRowCaps) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 8.0, 4.0);
  for (const idx m : {1, 3, 5}) {
    const IluFactors f = ilut(a, {.m = m, .tau = 1e-8});
    for (idx i = 0; i < f.n(); ++i) {
      EXPECT_LE(f.l.row_nnz(i), m) << "L row " << i << " m=" << m;
      EXPECT_LE(f.u.row_nnz(i), m + 1) << "U row " << i << " m=" << m;  // + diagonal
    }
  }
}

TEST(Ilut, ThresholdRemovesSmallEntries) {
  const Csr a = workloads::jump_coefficient_2d(16, 16, 4.0, 3);
  const real tau = 1e-2;
  const IluFactors f = ilut(a, {.m = 50, .tau = tau});
  const RealVec norms = row_norms(a, 2);
  for (idx i = 0; i < f.n(); ++i) {
    for (nnz_t k = f.l.row_ptr[i]; k < f.l.row_ptr[i + 1]; ++k) {
      EXPECT_GE(std::abs(f.l.values[k]), tau * norms[i]);
    }
    // Skip the always-kept diagonal (first entry).
    for (nnz_t k = f.u.row_ptr[i] + 1; k < f.u.row_ptr[i + 1]; ++k) {
      EXPECT_GE(std::abs(f.u.values[k]), tau * norms[i]);
    }
  }
}

TEST(Ilut, FillGrowsAsTauShrinks) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 10.0, 5.0);
  const IluFactors coarse = ilut(a, {.m = 20, .tau = 1e-2});
  const IluFactors fine = ilut(a, {.m = 20, .tau = 1e-6});
  EXPECT_GT(fine.l.nnz() + fine.u.nnz(), coarse.l.nnz() + coarse.u.nnz());
  EXPECT_GT(fine.fill_factor(a.nnz()), coarse.fill_factor(a.nnz()));
}

TEST(Ilut, StatsAreReported) {
  const Csr a = workloads::convection_diffusion_2d(16, 16, 5.0, 5.0);
  IlutStats stats;
  (void)ilut(a, {.m = 5, .tau = 1e-3}, &stats);
  EXPECT_GT(stats.flops, 0u);
  EXPECT_GT(stats.dropped_rule1 + stats.dropped_rule2, 0u);
}

TEST(Ilut, ZeroPivotThrowsWithoutGuard) {
  CooBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  const Csr a = b.to_csr();
  EXPECT_THROW(ilut(a, {.m = 2, .tau = 0.0}), Error);
}

TEST(Ilut, PivotGuardRecovers) {
  CooBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  const Csr a = b.to_csr();
  IlutStats stats;
  const IluFactors f = ilut(a, {.m = 2, .tau = 0.0, .pivot_rel = 1e-8}, &stats);
  f.validate();
  // Row 0's zero pivot is floored; row 1's elimination against the floored
  // pivot then produces a huge (but nonzero) diagonal on its own.
  EXPECT_EQ(stats.pivots_guarded, 1u);
}

TEST(Ilut, MZeroGivesDiagonalFactor) {
  const Csr a = workloads::convection_diffusion_2d(8, 8);
  const IluFactors f = ilut(a, {.m = 0, .tau = 0.0});
  EXPECT_EQ(f.l.nnz(), 0);
  EXPECT_EQ(f.u.nnz(), f.n());  // diagonal only
}

TEST(Ilut, RejectsZeroRow) {
  Csr a(2, 2);
  a.row_ptr = {0, 1, 1};
  a.col_idx = {0};
  a.values = {1.0};
  EXPECT_THROW(ilut(a, {.m = 2, .tau = 0.0}), Error);
}

TEST(Ilu0, PatternMatchesOriginal) {
  const Csr a = workloads::convection_diffusion_2d(12, 12, 3.0, 0.0);
  const IluFactors f = ilu0(a);
  f.validate();
  // nnz(L) + nnz(U) == nnz(A) when A has a full diagonal.
  EXPECT_EQ(f.l.nnz() + f.u.nnz(), a.nnz());
}

TEST(Ilu0, ExactOnPattern) {
  // Defining property of ILU(0): (L·U)_ij == a_ij for every stored (i,j).
  const Csr a = workloads::convection_diffusion_2d(10, 10, 5.0, 2.0);
  const IluFactors f = ilu0(a);
  const Dense lu = multiply_factors(f);
  for (idx i = 0; i < a.n_rows; ++i) {
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      EXPECT_NEAR(lu(i, a.col_idx[k]), a.values[k], 1e-10)
          << "(" << i << "," << a.col_idx[k] << ")";
    }
  }
}

TEST(Iluk, LevelZeroEqualsIlu0) {
  const Csr a = workloads::convection_diffusion_2d(10, 10, 4.0, 4.0);
  const IluFactors f0 = ilu0(a);
  const IluFactors fk = iluk(a, 0);
  EXPECT_TRUE(equal(f0.l, fk.l));
  EXPECT_TRUE(equal(f0.u, fk.u));
}

TEST(Iluk, FillGrowsWithLevel) {
  const Csr a = workloads::convection_diffusion_2d(16, 16);
  nnz_t prev = 0;
  for (const idx k : {0, 1, 2, 3}) {
    const IluFactors f = iluk(a, k);
    f.validate();
    const nnz_t total = f.l.nnz() + f.u.nnz();
    EXPECT_GE(total, prev) << "level " << k;
    prev = total;
  }
}

TEST(Iluk, HighLevelOnNarrowBandIsExact) {
  // Tridiagonal matrices fill only one level; ILU(1) is the exact LU.
  const idx n = 30;
  CooBuilder b(n, n);
  for (idx i = 0; i < n; ++i) {
    b.add(i, i, 4.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  const Csr a = b.to_csr();
  const IluFactors f = iluk(a, 1);
  const Dense lu = multiply_factors(f);
  const Dense orig = Dense::from_csr(a);
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) EXPECT_NEAR(lu(i, j), orig(i, j), 1e-12);
  }
}

TEST(Trisolve, ForwardThenProductRecoversRhs) {
  const Csr a = random_dd_matrix(25, 3, 5);
  const IluFactors f = ilut(a, {.m = 25, .tau = 0.0});
  const RealVec b = workloads::random_vector(25, 9);
  RealVec y(25);
  forward_solve(f.l, b, y);
  // Check L y == b with unit diagonal.
  for (idx i = 0; i < 25; ++i) {
    real acc = y[i];
    for (nnz_t k = f.l.row_ptr[i]; k < f.l.row_ptr[i + 1]; ++k) {
      acc += f.l.values[k] * y[f.l.col_idx[k]];
    }
    EXPECT_NEAR(acc, b[i], 1e-11);
  }
}

TEST(Trisolve, BackwardThenProductRecoversRhs) {
  const Csr a = random_dd_matrix(25, 3, 6);
  const IluFactors f = ilut(a, {.m = 25, .tau = 0.0});
  const RealVec y = workloads::random_vector(25, 10);
  RealVec x(25);
  backward_solve(f.u, y, x);
  RealVec ux(25);
  spmv(f.u, x, ux);
  EXPECT_LT(max_abs_diff(ux, y), 1e-10);
}

TEST(Trisolve, ExactFactorsSolveSystem) {
  const Csr a = random_dd_matrix(30, 4, 7);
  const IluFactors f = ilut(a, {.m = 30, .tau = 0.0});
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x(30);
  ilu_apply(f, b, x);
  RealVec ones(30, 1.0);
  EXPECT_LT(max_abs_diff(x, ones), 1e-9);
}

TEST(Trisolve, PermutedApplyMatchesUnpermuted) {
  const idx n = 32;
  const Csr a = random_dd_matrix(n, 4, 8);
  Rng rng(4);
  IdxVec perm(n);
  for (idx i = 0; i < n; ++i) perm[i] = i;
  for (idx i = n - 1; i > 0; --i) std::swap(perm[i], perm[rng.next_index(i + 1)]);

  // Exact factors of the permuted matrix applied through the permutation
  // must solve the original system.
  const Csr pa = permute_symmetric(a, perm);
  const IluFactors f = ilut(pa, {.m = n, .tau = 0.0});
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x(n);
  ilu_apply_permuted(f, perm, b, x);
  RealVec ones(n, 1.0);
  EXPECT_LT(max_abs_diff(x, ones), 1e-8);
}

TEST(Trisolve, IdentityPermutationMatchesPlainApply) {
  const Csr a = random_dd_matrix(20, 3, 11);
  const IluFactors f = ilut(a, {.m = 5, .tau = 1e-3});
  IdxVec id(20);
  for (idx i = 0; i < 20; ++i) id[i] = i;
  const RealVec b = workloads::random_vector(20, 2);
  RealVec x1(20), x2(20);
  ilu_apply(f, b, x1);
  ilu_apply_permuted(f, id, b, x2);
  EXPECT_LT(max_abs_diff(x1, x2), 1e-15);
}

TEST(Factors, ValidateCatchesBadL) {
  IluFactors f;
  f.l = Csr(2, 2);
  f.l.row_ptr = {0, 1, 1};
  f.l.col_idx = {1};  // entry above diagonal in row 0
  f.l.values = {1.0};
  f.u = Csr(2, 2);
  f.u.row_ptr = {0, 1, 2};
  f.u.col_idx = {0, 1};
  f.u.values = {1.0, 1.0};
  EXPECT_THROW(f.validate(), Error);
}

}  // namespace
}  // namespace ptilu
