// Tests for GMRES and the preconditioner stack.
#include <gtest/gtest.h>

#include <cmath>

#include "ptilu/ilu/ilut.hpp"
#include "ptilu/support/check.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/krylov/preconditioner.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"
#include "ptilu/workloads/torso.hpp"

namespace ptilu {
namespace {

/// Relative true-residual check.
real true_relres(const Csr& a, const RealVec& x, const RealVec& b) {
  RealVec r(a.n_rows);
  residual(a, x, b, r);
  return norm2(r) / norm2(b);
}

TEST(Preconditioners, IdentityCopies) {
  IdentityPreconditioner p;
  const RealVec b = {1.0, -2.0, 3.0};
  RealVec x(3);
  p.apply(b, x);
  EXPECT_EQ(x, b);
}

TEST(Preconditioners, JacobiDividesByDiagonal) {
  const Csr a = workloads::convection_diffusion_2d(4, 4);
  JacobiPreconditioner p(a);
  const RealVec b(16, 8.0);
  RealVec x(16);
  p.apply(b, x);
  for (const real v : x) EXPECT_DOUBLE_EQ(v, 2.0);  // diagonal is 4
}

TEST(Preconditioners, JacobiRejectsZeroDiagonal) {
  CooBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  EXPECT_THROW(JacobiPreconditioner p(b.to_csr()), Error);
}

TEST(Gmres, SolvesLaplacianUnpreconditioned) {
  const Csr a = workloads::convection_diffusion_2d(12, 12);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x(a.n_rows, 0.0);
  const GmresResult res = gmres(a, IdentityPreconditioner{}, b, x, {.restart = 30});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(true_relres(a, x, b), 1e-4);
}

TEST(Gmres, ExactIluConvergesInOneIteration) {
  const Csr a = workloads::convection_diffusion_2d(10, 10, 6.0, 3.0);
  const IluFactors f = ilut(a, {.m = a.n_rows, .tau = 0.0});
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x(a.n_rows, 0.0);
  const GmresResult res = gmres(a, IluPreconditioner(f), b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.matvecs, 2);
  EXPECT_LT(true_relres(a, x, b), 1e-6);
}

TEST(Gmres, IlutBeatsJacobiOnIterations) {
  const Csr a = workloads::convection_diffusion_2d(32, 32, 10.0, 5.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);

  RealVec x_jacobi(a.n_rows, 0.0);
  const GmresResult jacobi =
      gmres(a, JacobiPreconditioner(a), b, x_jacobi, {.restart = 20});
  RealVec x_ilut(a.n_rows, 0.0);
  const GmresResult ilut_res =
      gmres(a, IluPreconditioner(ilut(a, {.m = 10, .tau = 1e-4})), b, x_ilut,
            {.restart = 20});

  EXPECT_TRUE(ilut_res.converged);
  EXPECT_LT(ilut_res.matvecs * 2, jacobi.matvecs);
}

TEST(Gmres, TighterDropToleranceFewerIterations) {
  const Csr a = workloads::jump_coefficient_2d(24, 24, 4.0, 3);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  int prev_nmv = 1 << 30;
  for (const real tau : {1e-1, 1e-3, 1e-5}) {
    RealVec x(a.n_rows, 0.0);
    const GmresResult res =
        gmres(a, IluPreconditioner(ilut(a, {.m = 20, .tau = tau})), b, x);
    EXPECT_TRUE(res.converged) << "tau=" << tau;
    EXPECT_LE(res.matvecs, prev_nmv) << "tau=" << tau;
    prev_nmv = res.matvecs;
  }
}

TEST(Gmres, ZeroRhsConvergesImmediately) {
  const Csr a = workloads::convection_diffusion_2d(6, 6);
  const RealVec b(a.n_rows, 0.0);
  RealVec x(a.n_rows, 0.0);
  const GmresResult res = gmres(a, IdentityPreconditioner{}, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.matvecs, 0);
}

TEST(Gmres, StartingAtSolutionConvergesImmediately) {
  const Csr a = workloads::convection_diffusion_2d(6, 6);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x(a.n_rows, 1.0);
  const GmresResult res = gmres(a, IdentityPreconditioner{}, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.matvecs, 0);
}

TEST(Gmres, RespectsMatvecBudget) {
  const Csr a = workloads::anisotropic_2d(40, 40, 1e-4);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x(a.n_rows, 0.0);
  const GmresResult res =
      gmres(a, IdentityPreconditioner{}, b, x, {.restart = 10, .max_matvecs = 25});
  EXPECT_LE(res.matvecs, 25);
}

TEST(Gmres, ResidualHistoryMonotoneWithinCycle) {
  const Csr a = workloads::convection_diffusion_2d(16, 16, 4.0, 0.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x(a.n_rows, 0.0);
  const GmresResult res = gmres(a, JacobiPreconditioner(a), b, x, {.restart = 50});
  // GMRES residuals are non-increasing within a cycle.
  for (std::size_t i = 1; i < std::min<std::size_t>(res.residual_history.size(), 50); ++i) {
    EXPECT_LE(res.residual_history[i], res.residual_history[i - 1] * (1 + 1e-12));
  }
}

TEST(Gmres, LargerRestartNoWorse) {
  const Csr a = workloads::anisotropic_2d(24, 24, 1e-2);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x20(a.n_rows, 0.0), x50(a.n_rows, 0.0);
  const auto r20 = gmres(a, JacobiPreconditioner(a), b, x20,
                         {.restart = 20, .max_matvecs = 5000});
  const auto r50 = gmres(a, JacobiPreconditioner(a), b, x50,
                         {.restart = 50, .max_matvecs = 5000});
  if (r20.converged && r50.converged) {
    EXPECT_LE(r50.matvecs, r20.matvecs * 3 / 2);
  } else {
    EXPECT_TRUE(r50.converged || !r20.converged);
  }
}

TEST(Gmres, SolvesTorsoWithIlut) {
  workloads::TorsoOptions opts;
  opts.nx = opts.ny = 12;
  opts.nz = 16;
  const Csr a = workloads::fem_torso_3d(opts).a;
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x(a.n_rows, 0.0);
  const GmresResult res =
      gmres(a, IluPreconditioner(ilut(a, {.m = 10, .tau = 1e-4})), b, x,
            {.restart = 50, .max_matvecs = 2000});
  EXPECT_TRUE(res.converged);
  RealVec ones(a.n_rows, 1.0);
  EXPECT_LT(max_abs_diff(x, ones), 1e-2);
}

TEST(Gmres, ReportedResidualTracksTrueResidual) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 2.0, 2.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x(a.n_rows, 0.0);
  const GmresResult res = gmres(a, IdentityPreconditioner{}, b, x, {.restart = 30});
  ASSERT_TRUE(res.converged);
  // With identity preconditioning, final_residual is the true residual norm.
  RealVec r(a.n_rows);
  residual(a, x, b, r);
  EXPECT_NEAR(res.final_residual, norm2(r), 1e-8 * norm2(b));
}

}  // namespace
}  // namespace ptilu
