// Tests for the supernodal/blocked ILUT path: panel detection, the
// panelized working row, and the blocked-vs-scalar differential property
// suite (the scalar path is the pinned reference; the blocked path is
// validated by tolerance bounds, not bit-identicality).
#include <gtest/gtest.h>

#include <cmath>

#include "ptilu/ilu/block_kernels.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/ilut_blocked.hpp"
#include "ptilu/ilu/supernodes.hpp"
#include "ptilu/ilu/trisolve.hpp"
#include "ptilu/ilu/working_row.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"
#include "ptilu/workloads/stream.hpp"
#include "ptilu/workloads/torso.hpp"

namespace ptilu {
namespace {

void check_panel_invariants(const Csr& a, const IdxVec& starts, int max_panel) {
  ASSERT_GE(starts.size(), 2u);
  EXPECT_EQ(starts.front(), 0);
  EXPECT_EQ(starts.back(), a.n_rows);
  for (std::size_t p = 0; p + 1 < starts.size(); ++p) {
    const idx w = starts[p + 1] - starts[p];
    EXPECT_GE(w, 1);
    EXPECT_LE(w, max_panel);
    EXPECT_EQ(w & (w - 1), 0) << "panel width " << w << " not a power of two";
  }
}

TEST(Supernodes, CoversMatrixWithPowerOfTwoWidths) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 10.0, 20.0);
  for (const real slack : {0.0, 0.5, 1.5, 4.0}) {
    for (const int max_panel : {1, 2, 4, 8}) {
      const IdxVec starts = detect_panels(a, {.max_panel = max_panel, .slack = slack});
      check_panel_invariants(a, starts, max_panel);
    }
  }
}

TEST(Supernodes, IdenticalPatternsBlockAtMaxWidth) {
  // A block-diagonal matrix of dense 4x4 blocks: rows inside a block have
  // identical patterns, so zero slack already amalgamates them fully.
  CooBuilder b(16, 16);
  for (idx i = 0; i < 16; ++i) {
    for (idx j = (i / 4) * 4; j < (i / 4) * 4 + 4; ++j) {
      b.add(i, j, i == j ? 4.0 : -1.0);
    }
  }
  const Csr a = b.to_csr();
  const IdxVec starts = detect_panels(a, {.max_panel = 4, .slack = 0.0});
  ASSERT_EQ(starts.size(), 5u);
  for (std::size_t p = 0; p + 1 < starts.size(); ++p) {
    EXPECT_EQ(starts[p + 1] - starts[p], 4);
  }
}

TEST(Supernodes, SlackWidensPanels) {
  // The 5-point stencil's consecutive rows have shifted (not identical)
  // patterns: zero slack keeps them apart, a generous budget merges them.
  const Csr a = workloads::convection_diffusion_2d(32, 32, 10.0, 20.0);
  real prev_panels = 0;
  bool first = true;
  for (const real slack : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const IdxVec starts = detect_panels(a, {.max_panel = 4, .slack = slack});
    const real panels = static_cast<real>(starts.size());
    if (!first) EXPECT_LE(panels, prev_panels) << "slack " << slack;
    prev_panels = panels;
    first = false;
  }
  const IdxVec tight = detect_panels(a, {.max_panel = 4, .slack = 0.0});
  const IdxVec loose = detect_panels(a, {.max_panel = 4, .slack = 4.0});
  EXPECT_LT(loose.size(), tight.size());
}

TEST(PanelWorkingRow, InsertZeroesTheTile) {
  PanelWorkingRow w(8, 4);
  real* t = w.insert(3);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(t[j], 0.0);
  t[1] = 2.5;
  EXPECT_TRUE(w.present(3));
  EXPECT_FALSE(w.present(0));
  EXPECT_EQ(w.touched().size(), 1u);
  w.clear();
  EXPECT_FALSE(w.present(3));
  // Reinsertion must re-zero the tile even though clear() never sweeps.
  real* t2 = w.insert(3);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(t2[j], 0.0);
}

TEST(PanelWorkingRow, StaleColumnsDoNotResurrectAcrossEpochWrap) {
  // Same uint8 epoch-stamp scheme as WorkingRow: after exactly 255 clears
  // the counter wraps, and a column stamped back then would look present
  // again unless the wrap bulk-invalidates stale stamps.
  PanelWorkingRow w(3, 2);
  w.insert(0)[0] = 42.0;
  for (int k = 0; k < 255; ++k) w.clear();
  EXPECT_FALSE(w.present(0));
  EXPECT_TRUE(w.touched().empty());
  real* t = w.insert(0);
  EXPECT_TRUE(w.present(0));
  EXPECT_EQ(t[0], 0.0);
  EXPECT_EQ(t[1], 0.0);
}

TEST(PanelWorkingRow, ManyGenerationsStayIndependent) {
  PanelWorkingRow w(4, 2);
  for (int gen = 0; gen < 3 * 255 + 7; ++gen) {
    const idx c = static_cast<idx>(gen % 4);
    EXPECT_FALSE(w.present(c)) << "generation " << gen;
    real* t = w.insert(c);
    EXPECT_EQ(t[0], 0.0) << "generation " << gen;
    t[0] = static_cast<real>(gen);
    EXPECT_EQ(w.touched().size(), 1u);
    w.clear();
  }
}

TEST(BlockKernels, FixedWidthsMatchGenericLoop) {
  Rng rng(7);
  for (const int nb : {1, 2, 4, 8}) {
    real w[8], ref[8], m[8];
    for (int j = 0; j < nb; ++j) {
      w[j] = ref[j] = rng.uniform(-1.0, 1.0);
      m[j] = rng.uniform(-1.0, 1.0);
    }
    const real s = rng.uniform(-2.0, 2.0);
    tile_axpy_any(nb, w, m, s);
    for (int j = 0; j < nb; ++j) ref[j] -= m[j] * s;
    for (int j = 0; j < nb; ++j) EXPECT_DOUBLE_EQ(w[j], ref[j]) << "nb " << nb;
  }
}

// ---------------------------------------------------------------------------
// Differential property suite: blocked vs the pinned scalar reference across
// operators and amalgamation slack settings.

struct BlockedCase {
  const char* name;
  real slack;
  int max_panel;
};

class BlockedVsScalar : public ::testing::TestWithParam<BlockedCase> {};

void run_differential(const Csr& a, const BlockedCase& param) {
  const IlutOptions base{.m = 10, .tau = 1e-4, .pivot_rel = 1e-12};
  IlutStats sstats, bstats;
  const IluFactors scalar = ilut(a, base, &sstats);
  const BlockedIlutOptions bopts{
      .base = base, .panels = {.max_panel = param.max_panel, .slack = param.slack}};
  BlockedFactors blocked = ilut_blocked(a, bopts, &bstats);
  blocked.validate();
  const IluFactors expanded = blocked.to_csr();
  expanded.validate();

  // Fill ceiling: at most m tiles per side per panel plus the dense
  // diagonal block — per row that is m entries per side plus at most
  // max_panel intra-panel ones, the same m-per-side ceiling the scalar
  // rules enforce (which count intra-panel entries toward m).
  for (idx i = 0; i < a.n_rows; ++i) {
    EXPECT_LE(expanded.l.row_nnz(i), base.m + param.max_panel - 1) << "L row " << i;
    EXPECT_LE(expanded.u.row_nnz(i), base.m + param.max_panel) << "U row " << i;
  }
  const double fill_scalar = scalar.fill_factor(a.nnz());
  const double fill_blocked = blocked.fill_factor(a.nnz());
  EXPECT_LE(fill_blocked, 3.0 * fill_scalar + 1.0) << "blocked fill out of bounds";
  EXPECT_GE(fill_blocked, 0.2 * fill_scalar) << "blocked dropped almost everything";

  // Drop tallies stay the same order of magnitude (block-wise dropping
  // counts nonzeros inside dropped tiles, so exact parity is not expected).
  const std::uint64_t sdrops = sstats.dropped_rule1 + sstats.dropped_rule2;
  const std::uint64_t bdrops = bstats.dropped_rule1 + bstats.dropped_rule2;
  if (sdrops > 1000) {
    EXPECT_LE(bdrops, 4 * sdrops);
    EXPECT_GE(4 * bdrops, sdrops);
  }

  // Blocked trisolves agree with the CSR solves on the expanded factors up
  // to reassociation inside a panel.
  const idx n = a.n_rows;
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec x_blocked(n, 0.0), x_csr(n, 0.0);
  ilu_apply(blocked, b, x_blocked);
  ilu_apply(expanded, b, x_csr);
  const real scale = norm2(std::span<const real>(x_csr));
  for (idx i = 0; i < n; ++i) {
    EXPECT_NEAR(x_blocked[i], x_csr[i], 1e-10 * (scale + 1.0)) << "solve row " << i;
  }

  // Preconditioned-GMRES parity: the blocked preconditioner must converge
  // within a modest factor of the scalar iteration count.
  const GmresOptions gopts{.restart = 20, .max_matvecs = 2000, .rtol = 1e-8};
  RealVec xs(n, 0.0), xb(n, 0.0);
  const GmresResult rs = gmres(a, IluPreconditioner(scalar), b, xs, gopts);
  const GmresResult rb = gmres(a, BlockedIluPreconditioner(std::move(blocked)), b, xb, gopts);
  ASSERT_TRUE(rs.converged);
  EXPECT_TRUE(rb.converged) << "blocked-preconditioned GMRES stalled";
  EXPECT_LE(rb.matvecs, 2 * rs.matvecs + 20)
      << "blocked preconditioner lost too much quality (scalar " << rs.matvecs
      << " matvecs, blocked " << rb.matvecs << ")";

  // True-residual check for the blocked solve.
  RealVec r(n);
  spmv(a, xb, r);
  for (idx i = 0; i < n; ++i) r[i] = b[i] - r[i];
  const real rel = norm2(std::span<const real>(r)) / norm2(std::span<const real>(b));
  EXPECT_LE(rel, 1e-6) << "blocked-preconditioned solve residual too large";
}

TEST_P(BlockedVsScalar, G0Grid) {
  run_differential(workloads::convection_diffusion_2d(40, 40, 10.0, 20.0), GetParam());
}

TEST_P(BlockedVsScalar, G0StreamedSlabs) {
  // The streamed generator path: assemble the operator from contiguous row
  // slabs (byte-identical to the dense generator by contract) and factor.
  const idx nx = 32, ny = 32;
  const Csr whole = workloads::convection_diffusion_2d_rows(nx, ny, 10.0, 20.0, 0, nx * ny);
  run_differential(whole, GetParam());
}

TEST_P(BlockedVsScalar, TorsoFv) {
  workloads::TorsoOptions topts;
  topts.nx = 12;
  topts.ny = 12;
  topts.nz = 10;
  run_differential(workloads::torso_fv_3d(topts), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    SlackSweep, BlockedVsScalar,
    ::testing::Values(BlockedCase{"tight", 0.0, 4}, BlockedCase{"mid", 1.5, 4},
                      BlockedCase{"loose", 3.0, 4}, BlockedCase{"wide8", 2.0, 8},
                      BlockedCase{"scalar_width", 0.0, 1}),
    [](const ::testing::TestParamInfo<BlockedCase>& info) { return info.param.name; });

TEST(BlockedIlut, ScalarWidthPanelsMatchScalarStructure) {
  // max_panel = 1 makes every panel a single row: block dropping degenerates
  // to entrywise dropping and the factors must match scalar ILUT exactly.
  const Csr a = workloads::convection_diffusion_2d(20, 20, 10.0, 20.0);
  const IlutOptions base{.m = 8, .tau = 1e-4, .pivot_rel = 1e-12};
  const IluFactors scalar = ilut(a, base);
  const BlockedIlutOptions bopts{.base = base, .panels = {.max_panel = 1, .slack = 0.0}};
  const IluFactors expanded = ilut_blocked(a, bopts).to_csr();
  ASSERT_EQ(expanded.l.nnz(), scalar.l.nnz());
  ASSERT_EQ(expanded.u.nnz(), scalar.u.nnz());
  for (nnz_t k = 0; k < scalar.l.nnz(); ++k) {
    EXPECT_EQ(expanded.l.col_idx[k], scalar.l.col_idx[k]);
    EXPECT_DOUBLE_EQ(expanded.l.values[k], scalar.l.values[k]);
  }
  for (nnz_t k = 0; k < scalar.u.nnz(); ++k) {
    EXPECT_EQ(expanded.u.col_idx[k], scalar.u.col_idx[k]);
    EXPECT_DOUBLE_EQ(expanded.u.values[k], scalar.u.values[k]);
  }
}

// ---------------------------------------------------------------------------
// Pivot-guard regressions (satellite: safeguarded pivot substitution).

/// Leading 2x2 block [[0, 1], [1, 0]] is structurally singular for an
/// unpivoted factorization: eliminating row 1 against row 0 requires
/// dividing by the exactly-zero leading pivot.
Csr singular_leading_block() {
  CooBuilder b(4, 4);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  b.add(0, 0, 0.0);
  b.add(1, 1, 0.0);
  b.add(2, 2, 3.0);
  b.add(2, 0, 1.0);
  b.add(3, 3, 4.0);
  b.add(3, 1, 1.0);
  return b.to_csr();
}

TEST(PivotGuard, SingularLeadingBlockThrowsWithoutGuard) {
  const Csr a = singular_leading_block();
  EXPECT_THROW(ilut(a, {.m = 4, .tau = 0.0, .pivot_rel = 0.0}), Error);
  const BlockedIlutOptions bopts{.base = {.m = 4, .tau = 0.0, .pivot_rel = 0.0},
                                 .panels = {.max_panel = 2, .slack = 4.0}};
  EXPECT_THROW(ilut_blocked(a, bopts), Error);
}

TEST(PivotGuard, SingularLeadingBlockRecoversWithGuardAndIsCounted) {
  const Csr a = singular_leading_block();
  IlutStats stats;
  const IluFactors f = ilut(a, {.m = 4, .tau = 0.0, .pivot_rel = 1e-8}, &stats);
  f.validate();
  EXPECT_GE(stats.pivots_guarded, 1u);

  IlutStats bstats;
  const BlockedIlutOptions bopts{.base = {.m = 4, .tau = 0.0, .pivot_rel = 1e-8},
                                 .panels = {.max_panel = 2, .slack = 4.0}};
  const BlockedFactors bf = ilut_blocked(a, bopts, &bstats);
  bf.validate();
  EXPECT_GE(bstats.pivots_guarded, 1u);
}

TEST(PivotGuard, SubnormalPivotThrowsWithoutGuard) {
  // A pivot that is nonzero but subnormal used to pass the old diag != 0
  // check and then overflow the reciprocal; it must now throw.
  CooBuilder b(2, 2);
  b.add(0, 0, 1e-320);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  b.add(1, 1, 1.0);
  const Csr a = b.to_csr();
  EXPECT_THROW(ilut(a, {.m = 2, .tau = 0.0, .pivot_rel = 0.0}), Error);
  IlutStats stats;
  const IluFactors f = ilut(a, {.m = 2, .tau = 0.0, .pivot_rel = 1e-10}, &stats);
  f.validate();
  EXPECT_EQ(stats.pivots_guarded, 1u);
}

}  // namespace
}  // namespace ptilu
