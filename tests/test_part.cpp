// Tests for the multilevel k-way partitioner and its internal phases.
#include <gtest/gtest.h>

#include <numeric>

#include "ptilu/graph/graph.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/workloads/grids.hpp"

#include "../src/part/internal.hpp"

namespace ptilu {
namespace {

Graph grid_graph(idx nx, idx ny) {
  return graph_from_pattern(workloads::convection_diffusion_2d(nx, ny));
}

TEST(Matching, IsValidMatching) {
  const Graph g = grid_graph(20, 20);
  Rng rng(1);
  const IdxVec match = part_detail::heavy_edge_matching(g, rng);
  for (idx v = 0; v < g.n; ++v) {
    EXPECT_EQ(match[match[v]], v) << "matching not involutive at " << v;
    if (match[v] != v) {
      // Partner must be a neighbor.
      const auto nbrs = g.neighbors(v);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), match[v]), nbrs.end());
    }
  }
}

TEST(Matching, MatchesMostVerticesOnGrid) {
  const Graph g = grid_graph(30, 30);
  Rng rng(7);
  const IdxVec match = part_detail::heavy_edge_matching(g, rng);
  idx matched = 0;
  for (idx v = 0; v < g.n; ++v) matched += (match[v] != v);
  EXPECT_GT(matched, g.n * 7 / 10);  // grids match almost perfectly
}

TEST(Contract, PreservesTotalVertexWeight) {
  const Graph g = grid_graph(25, 25);
  Rng rng(3);
  const IdxVec match = part_detail::heavy_edge_matching(g, rng);
  const auto coarse = part_detail::contract(g, match);
  EXPECT_EQ(coarse.graph.total_vwgt(), g.total_vwgt());
  EXPECT_NO_THROW(coarse.graph.validate());
  EXPECT_LT(coarse.graph.n, g.n);
}

TEST(Contract, EdgeWeightsConserveCut) {
  // Total edge weight (counting multiplicity) is conserved minus collapsed
  // internal edges.
  const Graph g = grid_graph(12, 12);
  Rng rng(5);
  const IdxVec match = part_detail::heavy_edge_matching(g, rng);
  const auto coarse = part_detail::contract(g, match);
  long long fine_total = 0, internal = 0;
  for (idx v = 0; v < g.n; ++v) {
    for (nnz_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
      fine_total += g.ewgt[k];
      if (match[v] == g.adjncy[k]) internal += g.ewgt[k];
    }
  }
  long long coarse_total = 0;
  for (const idx w : coarse.graph.ewgt) coarse_total += w;
  EXPECT_EQ(coarse_total, fine_total - internal);
}

TEST(GrowBisection, HitsTargetRoughly) {
  const Graph g = grid_graph(40, 40);
  Rng rng(11);
  const auto side = part_detail::grow_bisection(g, 0.5, rng);
  long long w0 = 0;
  for (idx v = 0; v < g.n; ++v) w0 += side[v] == 0 ? g.vwgt[v] : 0;
  EXPECT_GT(w0, g.total_vwgt() * 2 / 5);
  EXPECT_LT(w0, g.total_vwgt() * 3 / 5);
}

TEST(FmRefine, NeverWorsensCut) {
  const Graph g = grid_graph(30, 30);
  Rng rng(13);
  auto side = part_detail::grow_bisection(g, 0.5, rng);
  const long long before = part_detail::bisection_cut(g, side);
  part_detail::fm_refine(g, side, g.total_vwgt() / 2, 1.05, 6);
  const long long after = part_detail::bisection_cut(g, side);
  EXPECT_LE(after, before);
}

TEST(MultilevelBisect, GridCutNearOptimal) {
  // A 32x32 grid's optimal bisection cut is 32; multilevel should land well
  // under 2x of that.
  const Graph g = grid_graph(32, 32);
  PartitionOptions opts;
  Rng rng(opts.seed);
  const auto side = part_detail::multilevel_bisect(g, 0.5, opts, rng);
  EXPECT_LE(part_detail::bisection_cut(g, side), 64);
}

TEST(PartitionKway, CoversAllParts) {
  const Graph g = grid_graph(40, 40);
  const Partition p = partition_kway(g, 8);
  p.validate(g.n);
  std::vector<idx> counts(8, 0);
  for (const idx part : p.part) ++counts[part];
  for (idx c = 0; c < 8; ++c) EXPECT_GT(counts[c], 0) << "part " << c << " empty";
}

TEST(PartitionKway, BalanceWithinTolerance) {
  const Graph g = grid_graph(48, 48);
  const Partition p = partition_kway(g, 16);
  EXPECT_LT(imbalance(g, p), 1.10);
}

TEST(PartitionKway, BeatsRandomCutByALot) {
  const Graph g = grid_graph(48, 48);
  const Partition smart = partition_kway(g, 8);
  const Partition random = partition_random(g, 8, 3);
  EXPECT_LT(edge_cut(g, smart) * 5, edge_cut(g, random));
}

TEST(PartitionKway, InterfaceFractionSmallOnGrid) {
  const Graph g = grid_graph(64, 64);
  const Partition p = partition_kway(g, 8);
  // Good geometric partitions of a 64x64 grid keep interface vertices well
  // under 20% of all vertices.
  EXPECT_LT(count_interface(g, p), g.n / 5);
}

TEST(PartitionKway, WorksForNonPowerOfTwoParts) {
  const Graph g = grid_graph(30, 30);
  for (const idx k : {3, 5, 7, 12}) {
    const Partition p = partition_kway(g, k);
    p.validate(g.n);
    std::vector<idx> counts(k, 0);
    for (const idx part : p.part) ++counts[part];
    for (idx c = 0; c < k; ++c) EXPECT_GT(counts[c], 0);
    EXPECT_LT(imbalance(g, p), 1.35) << "k=" << k;
  }
}

TEST(PartitionKway, SinglePartIsTrivial) {
  const Graph g = grid_graph(10, 10);
  const Partition p = partition_kway(g, 1);
  EXPECT_EQ(edge_cut(g, p), 0);
  EXPECT_EQ(count_interface(g, p), 0);
}

TEST(PartitionKway, DeterministicForFixedSeed) {
  const Graph g = grid_graph(20, 20);
  const Partition a = partition_kway(g, 4, {.seed = 9});
  const Partition b = partition_kway(g, 4, {.seed = 9});
  EXPECT_EQ(a.part, b.part);
}

TEST(PartitionKway, HandlesDisconnectedGraph) {
  // Two disjoint 10x10 grids.
  std::vector<std::pair<idx, idx>> edges;
  auto add_grid = [&](idx base) {
    for (idx y = 0; y < 10; ++y) {
      for (idx x = 0; x < 10; ++x) {
        const idx v = base + y * 10 + x;
        if (x + 1 < 10) edges.emplace_back(v, v + 1);
        if (y + 1 < 10) edges.emplace_back(v, v + 10);
      }
    }
  };
  add_grid(0);
  add_grid(100);
  const Graph g = graph_from_edges(200, edges);
  const Partition p = partition_kway(g, 4);
  p.validate(g.n);
  EXPECT_LT(imbalance(g, p), 1.3);
}

TEST(PartitionBaselines, BlockAndRandomAreValid) {
  const Graph g = grid_graph(20, 20);
  const Partition blk = partition_block(g, 7);
  blk.validate(g.n);
  EXPECT_LT(imbalance(g, blk), 1.05);
  const Partition rnd = partition_random(g, 7, 1);
  rnd.validate(g.n);
  EXPECT_LT(imbalance(g, rnd), 1.05);
}

TEST(PartitionQuality, EdgeCutCountsEachEdgeOnce) {
  // Two vertices, one edge, different parts -> cut 1.
  const Graph g = graph_from_edges(2, {{0, 1}});
  Partition p;
  p.nparts = 2;
  p.part = {0, 1};
  EXPECT_EQ(edge_cut(g, p), 1);
  EXPECT_EQ(count_interface(g, p), 2);
}

}  // namespace
}  // namespace ptilu
