// Unit tests for the sparse module: COO→CSR, transpose, permutation,
// symmetrization, SpMV, dense LU reference, Matrix Market I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ptilu/sparse/csr.hpp"
#include "ptilu/sparse/dense.hpp"
#include "ptilu/sparse/mm_io.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu {
namespace {

Csr small_example() {
  // [ 4 -1  0 ]
  // [-1  4 -1 ]
  // [ 0 -2  5 ]
  CooBuilder b(3, 3);
  b.add(0, 0, 4);
  b.add(0, 1, -1);
  b.add(1, 0, -1);
  b.add(1, 1, 4);
  b.add(1, 2, -1);
  b.add(2, 1, -2);
  b.add(2, 2, 5);
  return b.to_csr();
}

Csr random_matrix(idx n, idx per_row, std::uint64_t seed) {
  Rng rng(seed);
  CooBuilder b(n, n);
  for (idx i = 0; i < n; ++i) {
    b.add(i, i, 10.0 + rng.next_double());
    for (idx k = 0; k < per_row; ++k) {
      b.add(i, rng.next_index(n), rng.uniform(-1.0, 1.0));
    }
  }
  return b.to_csr();
}

TEST(Coo, BuildsSortedCsr) {
  const Csr a = small_example();
  a.validate();
  EXPECT_EQ(a.nnz(), 7);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), -2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(Coo, SumsDuplicates) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 1, 1.0);
  const Csr a = b.to_csr();
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
}

TEST(Coo, HandlesEmptyRows) {
  CooBuilder b(4, 4);
  b.add(0, 0, 1.0);
  b.add(3, 3, 2.0);
  const Csr a = b.to_csr();
  a.validate();
  EXPECT_EQ(a.row_nnz(1), 0);
  EXPECT_EQ(a.row_nnz(2), 0);
  EXPECT_DOUBLE_EQ(a.at(3, 3), 2.0);
}

TEST(Coo, UnsortedInputOrder) {
  CooBuilder b(3, 3);
  b.add(2, 2, 9);
  b.add(0, 1, 2);
  b.add(0, 0, 1);
  b.add(1, 1, 5);
  const Csr a = b.to_csr();
  a.validate();
  EXPECT_TRUE(a.has_sorted_rows());
  EXPECT_DOUBLE_EQ(a.at(0, 1), 2.0);
}

TEST(Csr, ValidateCatchesUnsorted) {
  Csr a(2, 2);
  a.row_ptr = {0, 2, 2};
  a.col_idx = {1, 0};
  a.values = {1.0, 2.0};
  EXPECT_THROW(a.validate(), Error);
}

TEST(Csr, ValidateCatchesOutOfRange) {
  Csr a(2, 2);
  a.row_ptr = {0, 1, 1};
  a.col_idx = {5};
  a.values = {1.0};
  EXPECT_THROW(a.validate(), Error);
}

TEST(Transpose, RoundTrips) {
  const Csr a = random_matrix(50, 4, 99);
  const Csr tt = transpose(transpose(a));
  EXPECT_TRUE(equal(a, tt));
}

TEST(Transpose, MovesEntries) {
  const Csr a = small_example();
  const Csr t = transpose(a);
  t.validate();
  EXPECT_DOUBLE_EQ(t.at(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(t.at(2, 1), -1.0);
}

TEST(Transpose, RectangularShape) {
  CooBuilder b(2, 4);
  b.add(0, 3, 7.0);
  b.add(1, 0, -2.0);
  const Csr t = transpose(b.to_csr());
  EXPECT_EQ(t.n_rows, 4);
  EXPECT_EQ(t.n_cols, 2);
  EXPECT_DOUBLE_EQ(t.at(3, 0), 7.0);
}

TEST(Permute, IdentityIsNoop) {
  const Csr a = random_matrix(30, 3, 5);
  IdxVec id(30);
  for (idx i = 0; i < 30; ++i) id[i] = i;
  EXPECT_TRUE(equal(a, permute_symmetric(a, id)));
}

TEST(Permute, ReversalMapsCorners) {
  const Csr a = small_example();
  IdxVec rev = {2, 1, 0};
  const Csr p = permute_symmetric(a, rev);
  p.validate();
  // a(0,1) should appear at (2,1).
  EXPECT_DOUBLE_EQ(p.at(2, 1), a.at(0, 1));
  EXPECT_DOUBLE_EQ(p.at(0, 0), a.at(2, 2));
}

TEST(Permute, PreservesSpmv) {
  const idx n = 64;
  const Csr a = random_matrix(n, 5, 17);
  Rng rng(3);
  IdxVec perm(n);
  for (idx i = 0; i < n; ++i) perm[i] = i;
  for (idx i = n - 1; i > 0; --i) std::swap(perm[i], perm[rng.next_index(i + 1)]);

  const Csr p = permute_symmetric(a, perm);
  RealVec x(n), px(n);
  for (idx i = 0; i < n; ++i) x[i] = rng.uniform(-1, 1);
  for (idx i = 0; i < n; ++i) px[perm[i]] = x[i];

  RealVec y(n), py(n);
  spmv(a, x, y);
  spmv(p, px, py);
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(py[perm[i]], y[i], 1e-13);
}

TEST(Permute, RejectsBadPermutation) {
  const Csr a = small_example();
  EXPECT_THROW(permute_symmetric(a, {0, 0, 1}), Error);
  EXPECT_THROW(permute_symmetric(a, {0, 1}), Error);
}

TEST(PermutationHelpers, InvertRoundTrips) {
  IdxVec p = {3, 1, 0, 2};
  EXPECT_TRUE(is_permutation(p, 4));
  const IdxVec inv = invert_permutation(p);
  for (idx i = 0; i < 4; ++i) EXPECT_EQ(inv[p[i]], i);
}

TEST(Symmetrize, AddsMissingEntries) {
  const Csr a = small_example();
  const Csr s = symmetrize_pattern(a);
  s.validate();
  // a(2,1) exists but a(1,2) also exists; a(0,2)/(2,0) absent in both.
  EXPECT_EQ(s.nnz(), 7);
  // Introduce an asymmetric entry.
  CooBuilder b(3, 3);
  b.add(0, 2, 1.0);
  b.add(1, 1, 2.0);
  const Csr s2 = symmetrize_pattern(b.to_csr());
  EXPECT_EQ(s2.nnz(), 3);
  EXPECT_DOUBLE_EQ(s2.at(2, 0), 0.0);  // structural zero added
  EXPECT_EQ(s2.row_nnz(2), 1);
}

TEST(Diagonal, ExtractsWithZeros) {
  CooBuilder b(3, 3);
  b.add(0, 0, 4.0);
  b.add(1, 2, 1.0);
  const RealVec d = diagonal(b.to_csr());
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(RowNorms, AllThreeNorms) {
  const Csr a = small_example();
  const RealVec n1 = row_norms(a, 1);
  const RealVec n2 = row_norms(a, 2);
  const RealVec ninf = row_norms(a, 0);
  EXPECT_DOUBLE_EQ(n1[1], 6.0);
  EXPECT_DOUBLE_EQ(n2[1], std::sqrt(1.0 + 16.0 + 1.0));
  EXPECT_DOUBLE_EQ(ninf[2], 5.0);
}

TEST(MaxAbsDiff, SeesPatternDifferences) {
  const Csr a = small_example();
  CooBuilder b(3, 3);
  b.add(0, 0, 4.0);
  const Csr c = b.to_csr();
  EXPECT_DOUBLE_EQ(max_abs_diff(a, a), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, c), 5.0);  // the (2,2)=5 entry is missing in c
}

TEST(Spmv, MatchesDense) {
  const Csr a = random_matrix(40, 6, 21);
  const Dense d = Dense::from_csr(a);
  Rng rng(2);
  RealVec x(40);
  for (auto& v : x) v = rng.uniform(-2, 2);
  RealVec y(40);
  spmv(a, x, y);
  const RealVec yd = dense_matvec(d, x);
  for (idx i = 0; i < 40; ++i) EXPECT_NEAR(y[i], yd[i], 1e-12);
}

TEST(Spmv, AlphaBetaForm) {
  const Csr a = small_example();
  RealVec x = {1, 2, 3};
  RealVec y = {10, 20, 30};
  spmv(2.0, a, x, 0.5, y);
  // A x = [2, 4, 11]
  EXPECT_DOUBLE_EQ(y[0], 2 * 2 + 5.0);
  EXPECT_DOUBLE_EQ(y[1], 2 * 4 + 10.0);
  EXPECT_DOUBLE_EQ(y[2], 2 * 11 + 15.0);
}

TEST(Spmv, ResidualIsZeroAtSolution) {
  const Csr a = small_example();
  const Dense d0 = Dense::from_csr(a);
  Dense lu = d0;
  dense_lu_nopivot(lu);
  const RealVec b = {1.0, 2.0, 3.0};
  const RealVec x = dense_lu_solve(lu, b);
  RealVec r(3);
  residual(a, x, b, r);
  EXPECT_LT(norm_inf(r), 1e-12);
}

TEST(DenseLu, ReconstructsMatrix) {
  const Csr a = random_matrix(20, 4, 33);
  Dense lu = Dense::from_csr(a);
  dense_lu_nopivot(lu);
  // Rebuild A = L*U and compare.
  const idx n = 20;
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) {
      real acc = 0.0;
      for (idx k = 0; k <= std::min(i, j); ++k) {
        const real lik = (k == i) ? 1.0 : lu(i, k);
        const real ukj = (k <= j) ? lu(k, j) : 0.0;
        acc += lik * ukj;
      }
      EXPECT_NEAR(acc, Dense::from_csr(a)(i, j), 1e-9) << "(" << i << "," << j << ")";
    }
  }
}

TEST(DenseLu, ThrowsOnZeroPivot) {
  Dense a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  EXPECT_THROW(dense_lu_nopivot(a), Error);
}

TEST(VectorOps, Basics) {
  RealVec x = {1, 2, 3};
  RealVec y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(norm2(RealVec{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(RealVec{-7, 2}), 7.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  scal(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(MatrixMarket, RoundTripsGeneral) {
  const Csr a = random_matrix(25, 4, 55);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const Csr b = read_matrix_market(ss);
  EXPECT_EQ(a.n_rows, b.n_rows);
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_LT(max_abs_diff(a, b), 1e-15);
}

TEST(MatrixMarket, ReadsSymmetric) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% comment line\n"
     << "3 3 3\n"
     << "1 1 2.0\n"
     << "2 1 -1.0\n"
     << "3 3 4.0\n";
  const Csr a = read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 4);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
}

TEST(MatrixMarket, ReadsPattern) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 2\n"
     << "1 2\n"
     << "2 1\n";
  const Csr a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(MatrixMarket, RejectsGarbage) {
  std::stringstream ss;
  ss << "not a matrix market file\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MatrixMarket, RejectsOutOfRangeEntry) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 1\n"
     << "3 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

}  // namespace
}  // namespace ptilu
