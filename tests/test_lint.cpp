// ptilu-lint self-tests: per-rule fixture triples (violating / clean /
// suppressed) under tests/lint_fixtures/, plus unit coverage of the lexer
// (comment/string/raw-string immunity), the suppression syntax, the path
// scoping, and the ptilu-lint-v1 JSON rendering. The fixture directory is
// injected by CMake as PTILU_LINT_FIXTURE_DIR.
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

using ptilu::lint::Finding;
using ptilu::lint::lint_source;

std::string fixture_path(const std::string& rule, const std::string& kind,
                         const std::string& ext) {
  return std::string(PTILU_LINT_FIXTURE_DIR) + "/" + rule + "/" + kind + ext;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Virtual repo-relative path each rule's fixtures are linted under: the
/// rules are path-scoped (see lint.hpp), so the harness places fixtures in
/// a directory where the rule under test applies.
const std::map<std::string, std::pair<std::string, std::string>>& fixture_spec() {
  static const std::map<std::string, std::pair<std::string, std::string>> kSpec = {
      {"determinism-unordered-iter", {"src/pilut/fixture.cpp", ".cpp"}},
      {"determinism-banned-calls", {"src/support/fixture.cpp", ".cpp"}},
      {"spmd-collective-tag", {"src/pilut/fixture.cpp", ".cpp"}},
      {"spmd-phase-coverage", {"src/pilut/fixture.cpp", ".cpp"}},
      {"assert-macro", {"include/ptilu/support/fixture.hpp", ".hpp"}},
      {"float-in-model", {"src/sim/fixture.cpp", ".cpp"}},
  };
  return kSpec;
}

std::vector<Finding> lint_fixture(const std::string& rule, const std::string& kind) {
  const auto& spec = fixture_spec().at(rule);
  return lint_source(spec.first, read_file(fixture_path(rule, kind, spec.second)));
}

class LintRuleFixtures : public ::testing::TestWithParam<std::string> {};

TEST_P(LintRuleFixtures, ViolatingFixtureFires) {
  const std::string rule = GetParam();
  const std::vector<Finding> findings = lint_fixture(rule, "violating");
  ASSERT_FALSE(findings.empty()) << rule << ": violating fixture found nothing";
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, rule) << "cross-rule contamination at line " << f.line;
    EXPECT_FALSE(f.suppressed) << rule << " finding at line " << f.line;
    EXPECT_GT(f.line, 0);
    EXPECT_GT(f.col, 0);
    EXPECT_FALSE(f.message.empty());
  }
}

TEST_P(LintRuleFixtures, CleanFixtureIsSilent) {
  const std::string rule = GetParam();
  const std::vector<Finding> findings = lint_fixture(rule, "clean");
  for (const Finding& f : findings) {
    ADD_FAILURE() << rule << ": clean fixture tripped [" << f.rule << "] at line "
                  << f.line << ": " << f.message;
  }
}

TEST_P(LintRuleFixtures, SuppressedFixtureIsCoveredButCounted) {
  const std::string rule = GetParam();
  const std::vector<Finding> findings = lint_fixture(rule, "suppressed");
  ASSERT_FALSE(findings.empty()) << rule << ": suppressed fixture found nothing";
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, rule);
    EXPECT_TRUE(f.suppressed) << rule << ": unsuppressed finding at line " << f.line;
  }
  EXPECT_EQ(ptilu::lint::unsuppressed_count(findings), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllRules, LintRuleFixtures,
                         ::testing::ValuesIn(ptilu::lint::rule_names()),
                         [](const ::testing::TestParamInfo<std::string>& param) {
                           std::string name = param.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(LintRules, EveryRuleHasFixtureTriple) {
  // The parameterized suite above iterates rule_names(); this pins that the
  // fixture spec covers exactly the registered rules, so adding a rule
  // without fixtures fails loudly.
  ASSERT_EQ(fixture_spec().size(), ptilu::lint::rule_names().size());
  for (const std::string& rule : ptilu::lint::rule_names()) {
    EXPECT_TRUE(fixture_spec().count(rule)) << "no fixture mapping for " << rule;
  }
}

// ---------------------------------------------------------------------------
// Lexer immunity: banned spellings inside comments / strings / raw strings.
// ---------------------------------------------------------------------------

TEST(LintLexer, CommentsAndStringsCannotTrip) {
  const std::string text = R"__(
// rand() time(nullptr) now() assert(x) float
/* std::random_device in a block comment
   for (auto& kv : ghost) */
const char* a = "rand() and assert(yes) and float";
const char* b = R"x(raw: now() random_device assert(1))x";
char c = 'f';
)__";
  EXPECT_TRUE(lint_source("src/sim/fake.cpp", text).empty());
  EXPECT_TRUE(lint_source("include/ptilu/fake.hpp", text).empty());
}

TEST(LintLexer, PreprocessorLinesAreSkipped) {
  const std::string text =
      "#include <ctime>\n"
      "#define BAD time(nullptr)\n"
      "#define WORSE \\\n  rand()\n"
      "int x = 0;\n";
  EXPECT_TRUE(lint_source("src/support/fake.cpp", text).empty());
}

TEST(LintLexer, HexFloatsAndDigitSeparatorsLex) {
  // 0x1.0p-53 and 1'000'000 must not desync the token stream (a desync
  // would e.g. swallow the assert( that follows).
  const std::string text =
      "double d = 0x1.0p-53;\n"
      "int n = 1'000'000;\n"
      "void f() { assert(n > 0); }\n";
  const auto findings = lint_source("src/support/fake.cpp", text);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "assert-macro");
  EXPECT_EQ(findings[0].line, 3);
}

// ---------------------------------------------------------------------------
// Suppression semantics.
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameLineAndLineAbove) {
  const std::string above =
      "// ptilu-lint: allow(assert-macro)\n"
      "void f(int n) { assert(n); }\n";
  const std::string same =
      "void f(int n) { assert(n); }  // ptilu-lint: allow(assert-macro)\n";
  const std::string unrelated =
      "// ptilu-lint: allow(float-in-model)\n"
      "void f(int n) { assert(n); }\n";
  for (const std::string* text : {&above, &same}) {
    const auto findings = lint_source("src/support/fake.cpp", *text);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_TRUE(findings[0].suppressed);
  }
  const auto findings = lint_source("src/support/fake.cpp", unrelated);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].suppressed) << "wrong rule name must not suppress";
}

TEST(LintSuppression, MultiRuleAllowList) {
  const std::string text =
      "// ptilu-lint: allow(assert-macro, determinism-banned-calls)\n"
      "void f(int n) { assert(n); (void)rand(); }\n";
  const auto findings = lint_source("src/support/fake.cpp", text);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_TRUE(findings[1].suppressed);
}

TEST(LintSuppression, DoesNotReachPastNextLine) {
  const std::string text =
      "// ptilu-lint: allow(assert-macro)\n"
      "int unrelated = 0;\n"
      "void f(int n) { assert(n); }\n";
  const auto findings = lint_source("src/support/fake.cpp", text);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].suppressed);
}

// ---------------------------------------------------------------------------
// Path scoping.
// ---------------------------------------------------------------------------

TEST(LintScope, RulesGateOnPath) {
  const std::string asserts = "void f(int n) { assert(n); }\n";
  EXPECT_FALSE(lint_source("src/ilu/fake.cpp", asserts).empty());
  EXPECT_FALSE(lint_source("include/ptilu/ilu/fake.hpp", asserts).empty());
  EXPECT_TRUE(lint_source("tests/fake.cpp", asserts).empty());
  EXPECT_TRUE(lint_source("bench/fake.cpp", asserts).empty());

  const std::string floats = "float f = 0.0F;\n";
  EXPECT_FALSE(lint_source("src/sim/fake.cpp", floats).empty());
  EXPECT_FALSE(lint_source("include/ptilu/sim/fake.hpp", floats).empty());
  EXPECT_TRUE(lint_source("src/ilu/fake.cpp", floats).empty());

  // The machine implementation is exempt from the protocol-user rules.
  const std::string untagged =
      "void f(M& machine) { machine.collective(8); }\n";
  EXPECT_FALSE(lint_source("src/pilut/fake.cpp", untagged).empty());
  EXPECT_TRUE(lint_source("src/sim/machine_impl.cpp", untagged).empty());
}

TEST(LintScope, WallClockAllowedInBench) {
  const std::string text = "double t() { return Clock::now().time_since_epoch().count(); }\n";
  EXPECT_TRUE(lint_source("bench/fake.cpp", text).empty());
  EXPECT_FALSE(lint_source("src/support/fake.cpp", text).empty());
}

// ---------------------------------------------------------------------------
// Wrapped declarations and member-access discrimination.
// ---------------------------------------------------------------------------

TEST(LintUnordered, WrappedContainerDeclarationIsTracked) {
  const std::string text =
      "#include <unordered_map>\n"
      "void f(int p) {\n"
      "  std::vector<std::unordered_map<int, double>> ghost(p);\n"
      "  for (const auto& [k, v] : ghost[0]) { (void)k; (void)v; }\n"
      "}\n";
  const auto findings = lint_source("src/pilut/fake.cpp", text);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism-unordered-iter");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintBannedCalls, MemberNamedTimeIsNotACall) {
  const std::string text =
      "struct S { double time; };\n"
      "double f(S s) { return s.time; }\n"
      "double g(S* s) { return s->time; }\n";
  EXPECT_TRUE(lint_source("src/sim/fake.cpp", text).empty());
}

TEST(LintCollectiveTag, DefinitionIsNotACallSite) {
  const std::string text =
      "double Machine::allreduce_sum(const F& fn, std::string_view site) {\n"
      "  return run(fn, site);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/pilut/fake.cpp", text).empty());
}

// ---------------------------------------------------------------------------
// Report rendering.
// ---------------------------------------------------------------------------

TEST(LintReport, JsonShape) {
  ptilu::lint::Report report;
  report.files = {"src/a.cpp", "src/b.cpp"};
  report.findings.push_back(Finding{"assert-macro", "src/a.cpp", 3, 7,
                                    "message with \"quotes\" and\nnewline", false});
  report.findings.push_back(
      Finding{"float-in-model", "src/b.cpp", 1, 1, "plain", true});
  const std::string json = ptilu::lint::to_json(report);
  EXPECT_NE(json.find("\"schema\": \"ptilu-lint-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos) << "quotes escaped";
  EXPECT_NE(json.find("and\\nnewline"), std::string::npos) << "newline escaped";
  for (const std::string& rule : ptilu::lint::rule_names()) {
    EXPECT_NE(json.find('"' + rule + '"'), std::string::npos);
  }
}

TEST(LintReport, TextShapeAndSuppressedVisibility) {
  ptilu::lint::Report report;
  report.files = {"src/a.cpp"};
  report.findings.push_back(Finding{"assert-macro", "src/a.cpp", 3, 7, "msg", true});
  const std::string hidden = ptilu::lint::to_text(report, /*show_suppressed=*/false);
  EXPECT_EQ(hidden.find("src/a.cpp:3:7"), std::string::npos);
  EXPECT_NE(hidden.find("1 suppressed"), std::string::npos);
  const std::string shown = ptilu::lint::to_text(report, /*show_suppressed=*/true);
  EXPECT_NE(shown.find("src/a.cpp:3:7: [assert-macro] msg"), std::string::npos);
  EXPECT_NE(shown.find("(suppressed)"), std::string::npos);
}

TEST(LintReport, UnsuppressedCount) {
  std::vector<Finding> findings;
  EXPECT_EQ(ptilu::lint::unsuppressed_count(findings), 0u);
  findings.push_back(Finding{"assert-macro", "f", 1, 1, "m", true});
  findings.push_back(Finding{"assert-macro", "f", 2, 1, "m", false});
  EXPECT_EQ(ptilu::lint::unsuppressed_count(findings), 1u);
}

TEST(LintRules, KnownRule) {
  EXPECT_TRUE(ptilu::lint::known_rule("assert-macro"));
  EXPECT_FALSE(ptilu::lint::known_rule("no-such-rule"));
}

// The repository itself must lint clean (the ptilu_lint_repo ctest entry
// runs the CLI; this is the in-process equivalent so a plain gtest run
// catches regressions too). PTILU_LINT_REPO_ROOT is the source root.
TEST(LintRepo, RepositoryIsCleanOfUnsuppressedFindings) {
  const ptilu::lint::Report report = ptilu::lint::lint_tree(PTILU_LINT_REPO_ROOT);
  ASSERT_FALSE(report.files.empty());
  for (const Finding& f : report.findings) {
    EXPECT_TRUE(f.suppressed) << f.file << ":" << f.line << ": [" << f.rule << "] "
                              << f.message;
  }
}

}  // namespace
