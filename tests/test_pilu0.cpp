// Tests for the parallel ILU(0) baseline (coloring-based static-pattern
// factorization, §3/Figure 1a of the paper).
#include <gtest/gtest.h>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/trisolve.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/pilut/pilu0.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

namespace ptilu {
namespace {

DistCsr make_dist(const Csr& a, int nranks) {
  const Graph g = graph_from_pattern(a);
  return DistCsr::create(a, partition_kway(g, nranks));
}

TEST(Pilu0, MatchesSerialIlu0OnPermutedMatrix) {
  const Csr a = workloads::convection_diffusion_2d(18, 18, 6.0, 3.0);
  for (const int nranks : {1, 2, 4, 8}) {
    const DistCsr dist = make_dist(a, nranks);
    sim::Machine machine(nranks);
    const PilutResult par = pilu0_factor(machine, dist);
    const Csr pa = permute_symmetric(a, par.schedule.newnum);
    const IluFactors serial = ilu0(pa);
    EXPECT_TRUE(equal(par.factors.l, serial.l)) << "nranks=" << nranks;
    EXPECT_TRUE(equal(par.factors.u, serial.u)) << "nranks=" << nranks;
  }
}

TEST(Pilu0, PatternMatchesOriginal) {
  const Csr a = workloads::convection_diffusion_2d(16, 16);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult result = pilu0_factor(machine, dist);
  // Zero fill: nnz(L) + nnz(U) == nnz(A) (A has a full diagonal here).
  EXPECT_EQ(result.factors.l.nnz() + result.factors.u.nnz(), a.nnz());
}

TEST(Pilu0, LevelCountIsSmallAndStatic) {
  // A 5-point grid's interface graph colors with a handful of colors —
  // the structural contrast to ILUT's dozens-to-hundreds of dynamic levels.
  const Csr a = workloads::convection_diffusion_2d(32, 32);
  const DistCsr dist = make_dist(a, 8);
  sim::Machine machine(8);
  const PilutResult ilu0_result = pilu0_factor(machine, dist);
  EXPECT_LE(ilu0_result.stats.levels, 8);
  const PilutResult ilut_result = pilut_factor(machine, dist, {.m = 10, .tau = 1e-6});
  EXPECT_GT(ilut_result.stats.levels, ilu0_result.stats.levels);
}

TEST(Pilu0, ParallelTrisolveWorksOnSchedule) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 4.0, 2.0);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult result = pilu0_factor(machine, dist);
  const DistTriangularSolver solver(result.factors, result.schedule);
  const RealVec b = workloads::random_vector(a.n_rows, 9);
  RealVec x_par(a.n_rows), x_ser(a.n_rows);
  machine.reset();
  solver.apply(machine, b, x_par);
  ilu_apply(result.factors, b, x_ser);
  EXPECT_LT(max_abs_diff(x_par, x_ser), 1e-12);
}

TEST(Pilu0, PreconditionsGmres) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 5.0, 5.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);
  const PilutResult result = pilu0_factor(machine, dist);
  RealVec x(a.n_rows, 0.0);
  const GmresResult gmres_result =
      gmres(a, IluPreconditioner(result.factors, result.schedule.newnum), b, x);
  EXPECT_TRUE(gmres_result.converged);
  RealVec ones(a.n_rows, 1.0);
  EXPECT_LT(max_abs_diff(x, ones), 1e-3);
}

TEST(Pilu0, IlutBeatsIlu0OnJumpCoefficients) {
  // The paper's motivation for threshold dropping: on matrices with strong
  // coefficient variation, magnitude-aware ILUT preconditioning needs far
  // fewer iterations than pattern-only ILU(0).
  const Csr a = workloads::jump_coefficient_2d(32, 32, 3.0, 7);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4);

  const PilutResult zero_fill = pilu0_factor(machine, dist);
  const PilutResult threshold =
      pilut_factor(machine, dist, {.m = 15, .tau = 1e-5, .cap_k = 2});

  const auto nmv = [&](const PilutResult& f) {
    RealVec x(a.n_rows, 0.0);
    const GmresResult r = gmres(a, IluPreconditioner(f.factors, f.schedule.newnum), b, x,
                                {.restart = 30, .max_matvecs = 5000});
    return r.converged ? r.matvecs : 5000;
  };
  EXPECT_LT(nmv(threshold), nmv(zero_fill));
}

TEST(Pilu0, DeterministicAndGuarded) {
  const Csr a = workloads::convection_diffusion_2d(12, 12);
  const DistCsr dist = make_dist(a, 3);
  sim::Machine machine(3);
  const PilutResult r1 = pilu0_factor(machine, dist);
  const PilutResult r2 = pilu0_factor(machine, dist);
  EXPECT_TRUE(equal(r1.factors.u, r2.factors.u));
  EXPECT_EQ(r1.schedule.newnum, r2.schedule.newnum);
}

}  // namespace
}  // namespace ptilu
