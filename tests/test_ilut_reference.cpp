// Property test pinning the optimized ILUT hot path to a straightforward
// reference implementation of the same algorithm. The reference below has
// the pre-optimization shape — fresh containers per row, a std::set for the
// elimination frontier, a full sort for the 2nd dropping rule — and the
// production ilut() must agree with it bit-for-bit: identical factor
// structure, identical floating-point values, and an identical IlutStats
// ledger. This is the regression net under the scratch-pooling work: any
// optimization that changes arithmetic order or a dropping decision fails
// here even if the factors are still "close".
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "ptilu/ilu/factors.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/workloads/grids.hpp"

namespace ptilu {
namespace {

using Entry = std::pair<idx, real>;

// 2nd dropping rule, reference shape: threshold filter, full sort by
// magnitude (column ascending on ties), truncate to m, re-sort by column.
// Same strict total order as select_largest, so the kept set is identical.
void reference_select(std::vector<Entry>& entries, idx m, real tau) {
  std::vector<Entry> kept;
  for (const Entry& e : entries) {
    if (std::abs(e.second) >= tau) kept.push_back(e);
  }
  std::sort(kept.begin(), kept.end(), [](const Entry& a, const Entry& b) {
    const real ma = std::abs(a.second), mb = std::abs(b.second);
    if (ma != mb) return ma > mb;
    return a.first < b.first;
  });
  if (static_cast<idx>(kept.size()) > m) kept.resize(static_cast<std::size_t>(m));
  std::sort(kept.begin(), kept.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  entries = std::move(kept);
}

IluFactors reference_ilut(const Csr& a, const IlutOptions& opts, IlutStats& stats) {
  const idx n = a.n_rows;
  const RealVec norms = row_norms(a, 2);
  // U rows store the sorted strictly-upper part; diagonals live in udiag.
  std::vector<std::vector<Entry>> lrows(n), urows(n);
  RealVec udiag(n, 0.0);

  for (idx i = 0; i < n; ++i) {
    const real tau_i = opts.tau * norms[i];
    RealVec work(n, 0.0);
    std::vector<bool> present(n, false);
    IdxVec touched;
    std::set<idx> frontier;  // lower columns still to eliminate, ascending
    for (nnz_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const idx c = a.col_idx[k];
      work[c] = a.values[k];
      present[c] = true;
      touched.push_back(c);
      if (c < i) frontier.insert(c);
    }
    while (!frontier.empty()) {
      const idx k = *frontier.begin();
      frontier.erase(frontier.begin());
      const real multiplier = work[k] / udiag[k];
      ++stats.flops;
      if (std::abs(multiplier) < tau_i) {  // 1st dropping rule
        work[k] = 0.0;
        ++stats.dropped_rule1;
        continue;
      }
      work[k] = multiplier;
      stats.flops += 2 * static_cast<std::uint64_t>(urows[k].size());
      for (const Entry& e : urows[k]) {
        const idx c = e.first;
        const real update = -multiplier * e.second;
        if (present[c]) {
          work[c] += update;
        } else {
          work[c] = update;
          present[c] = true;
          touched.push_back(c);
          if (c < i) frontier.insert(c);
        }
      }
    }

    std::vector<Entry> lpart, upart;
    real diag = 0.0;
    for (const idx c : touched) {
      const real v = work[c];
      if (c < i) {
        if (v != 0.0) lpart.emplace_back(c, v);
      } else if (c == i) {
        diag = v;
      } else {
        upart.emplace_back(c, v);
      }
    }
    const std::size_t before = lpart.size() + upart.size();
    reference_select(lpart, opts.m, tau_i);
    reference_select(upart, opts.m, tau_i);
    stats.dropped_rule2 += before - (lpart.size() + upart.size());

    const real floor_abs = opts.pivot_rel > 0.0 ? opts.pivot_rel * norms[i] : 0.0;
    if (std::abs(diag) < floor_abs) {
      ++stats.pivots_guarded;
      diag = diag == 0.0 ? floor_abs : std::copysign(floor_abs, diag);
    }
    udiag[i] = diag;
    lrows[i] = std::move(lpart);
    urows[i] = std::move(upart);
  }

  std::vector<SparseRow> ls(static_cast<std::size_t>(n)), us(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    for (const Entry& e : lrows[i]) ls[i].push(e.first, e.second);
    us[i].push(i, udiag[i]);  // diagonal first, then the sorted upper part
    for (const Entry& e : urows[i]) us[i].push(e.first, e.second);
  }
  IluFactors f;
  f.l = rows_to_csr(n, ls);
  f.u = rows_to_csr(n, us);
  return f;
}

void expect_bit_identical(const Csr& got, const Csr& want, const char* which) {
  ASSERT_EQ(got.row_ptr, want.row_ptr) << which;
  ASSERT_EQ(got.col_idx, want.col_idx) << which;
  ASSERT_EQ(got.values.size(), want.values.size()) << which;
  for (std::size_t k = 0; k < got.values.size(); ++k) {
    // Exact equality, not a tolerance: the two paths must perform the same
    // floating-point operations in the same order.
    ASSERT_EQ(got.values[k], want.values[k]) << which << " value " << k;
  }
}

void run_case(const Csr& a, const IlutOptions& opts) {
  IlutStats ref_stats, opt_stats;
  const IluFactors want = reference_ilut(a, opts, ref_stats);
  const IluFactors got = ilut(a, opts, &opt_stats);
  got.validate();
  expect_bit_identical(got.l, want.l, "L");
  expect_bit_identical(got.u, want.u, "U");
  EXPECT_EQ(opt_stats.flops, ref_stats.flops);
  EXPECT_EQ(opt_stats.dropped_rule1, ref_stats.dropped_rule1);
  EXPECT_EQ(opt_stats.dropped_rule2, ref_stats.dropped_rule2);
  EXPECT_EQ(opt_stats.pivots_guarded, ref_stats.pivots_guarded);
}

TEST(IlutReference, ConvectionDiffusionBitIdentical) {
  run_case(workloads::convection_diffusion_2d(24, 24, 8.0, 4.0), {.m = 5, .tau = 1e-3});
}

TEST(IlutReference, JumpCoefficientsWithPivotGuard) {
  run_case(workloads::jump_coefficient_2d(20, 20, 5.0, 4),
           {.m = 8, .tau = 1e-2, .pivot_rel = 1e-12});
}

TEST(IlutReference, NoDroppingStressesFill) {
  // tau = 0 with a generous cap keeps every fill entry: the heaviest
  // exercise of the working row and the elimination frontier.
  run_case(workloads::convection_diffusion_2d(16, 16, 2.0, 1.0), {.m = 64, .tau = 0.0});
}

TEST(IlutReference, RandomSparseMatrices) {
  Rng rng(123);
  for (int trial = 0; trial < 4; ++trial) {
    const idx n = 60;
    CooBuilder b(n, n);
    for (idx i = 0; i < n; ++i) {
      b.add(i, i, 15.0 + rng.next_double());
      for (idx k = 0; k < 5; ++k) {
        const idx j = rng.next_index(n);
        if (j != i) b.add(i, j, rng.uniform(-1.0, 1.0));
      }
    }
    run_case(b.to_csr(), {.m = 4 + trial, .tau = trial % 2 == 0 ? 1e-3 : 1e-1});
  }
}

}  // namespace
}  // namespace ptilu
