// Fixture: tagged collectives, plus declarations that must not count as
// call sites (Machine::allreduce_sum's own definition has no tag literal).
#include "ptilu/sim/machine.hpp"

namespace fake {
// A *definition* whose parameter list has no string literal: not a call.
double allreduce_sum(const int& value_of_rank, const char* site);
double allreduce_sum(const int& value_of_rank, const char* site) {
  return static_cast<double>(value_of_rank) + (site != nullptr ? 1.0 : 0.0);
}
}  // namespace fake

void clean(ptilu::sim::Machine& machine, int nranks) {
  machine.collective(static_cast<std::uint64_t>(nranks) * sizeof(int),
                     "fixture/number");
  const double total =
      machine.allreduce_sum([](int rank) { return 1.0 * rank; }, "fixture/total");
  machine.step([&](ptilu::sim::RankContext& ctx) {
    ctx.declare_collective(ptilu::sim::CollectiveOp::kUser, 8, "fixture/user");
  });
  (void)total;
}
