// Fixture: collectives without call-site tags. Conformance reports can
// only name both halves of a divergent collective when every call site
// carries a tag literal.
#include "ptilu/sim/machine.hpp"

void violating(ptilu::sim::Machine& machine, int nranks) {
  machine.collective(static_cast<std::uint64_t>(nranks) * sizeof(int));
  const double total = machine.allreduce_sum([](int rank) { return 1.0 * rank; });
  machine.step([&](ptilu::sim::RankContext& ctx) {
    ctx.declare_collective(ptilu::sim::CollectiveOp::kUser, 8);
  });
  (void)total;
}
