// Fixture: an untagged collective behind an explicit justification.
#include "ptilu/sim/machine.hpp"

void suppressed(ptilu::sim::Machine& machine, int nranks) {
  // Tag deliberately omitted: this fixture exercises the suppression path.
  // ptilu-lint: allow(spmd-collective-tag)
  machine.collective(static_cast<std::uint64_t>(nranks) * sizeof(int));
  machine.collective(8);  // ptilu-lint: allow(spmd-collective-tag)
}
