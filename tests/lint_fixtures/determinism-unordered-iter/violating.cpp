// Fixture: traversing unordered containers in a modeled path.
#include <unordered_map>
#include <unordered_set>
#include <vector>

void violating() {
  std::unordered_map<int, double> ghost;
  ghost[3] = 1.0;
  double sum = 0.0;
  for (const auto& [key, value] : ghost) {  // hash-order traversal
    sum += value;
  }

  std::vector<std::unordered_set<int>> seen(4);
  for (auto it = seen[0].begin(); it != seen[0].end(); ++it) {
    sum += static_cast<double>(*it);
  }
  (void)sum;
}
