// Fixture: justified traversal carries a suppression.
#include <unordered_map>

double suppressed() {
  std::unordered_map<int, double> ghost;
  ghost[1] = 2.0;
  double sum = 0.0;
  // Order cannot escape: plus-reduction is commutative over exact doubles
  // with one element per key.
  // ptilu-lint: allow(determinism-unordered-iter)
  for (const auto& [key, value] : ghost) {
    sum += value;
  }
  for (const auto& [key, value] : ghost) {  // ptilu-lint: allow(determinism-unordered-iter)
    sum -= value;
  }
  return sum;
}
