// Fixture: keyed lookup into unordered containers is fine; only traversal
// leaks hash order. Range-for over ordered containers is also fine.
#include <map>
#include <unordered_map>
#include <vector>

double clean(const std::vector<int>& keys) {
  std::unordered_map<int, double> ghost;
  for (const int key : keys) {  // vector traversal: deterministic
    ghost.emplace(key, 1.0);
  }
  double sum = 0.0;
  for (const int key : keys) {
    const auto it = ghost.find(key);
    if (it != ghost.end()) sum += it->second;
    sum += ghost.at(key);
    sum += ghost[key];
  }
  std::map<int, double> sorted;
  for (const int key : keys) sorted.emplace(key, ghost.at(key));
  // A comment mentioning "for (x : ghost)" must not trip the rule.
  for (const auto& [key, value] : sorted) sum += value;  // ordered: fine
  return sum;
}
