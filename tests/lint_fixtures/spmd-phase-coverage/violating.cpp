// Fixture: message traffic outside any lexical ScopedPhase scope — traces
// and metrics would attribute it to the empty phase.
#include "ptilu/sim/machine.hpp"

void violating(ptilu::sim::Machine& machine, const ptilu::IdxVec& data) {
  machine.step([&](ptilu::sim::RankContext& ctx) {
    ctx.send_indices((ctx.rank() + 1) % ctx.nranks(), /*tag=*/0, data);
  }, "fixture/send");
  machine.step([&](ptilu::sim::RankContext& ctx) {
    for (const ptilu::sim::Message& msg : ctx.recv_all()) {
      (void)msg;
    }
  }, "fixture/drain");
}
