// Fixture: a helper whose callers are always phased — the idiom
// src/pilut/trisolve_dist.cpp's ship_values/drain_ghosts use.
#include "ptilu/sim/machine.hpp"

// Callers invoke this inside their own ScopedPhase scopes.
void ship(ptilu::sim::RankContext& ctx, int peer, const ptilu::IdxVec& data) {
  // ptilu-lint: allow(spmd-phase-coverage)
  ctx.send_indices(peer, /*tag=*/0, data);
  ctx.send_reals(peer, /*tag=*/1, {});  // ptilu-lint: allow(spmd-phase-coverage)
}

void drain(ptilu::sim::RankContext& ctx) {
  for (const ptilu::sim::Message& msg :
       ctx.recv_all()) {  // ptilu-lint: allow(spmd-phase-coverage)
    (void)msg;
  }
}
