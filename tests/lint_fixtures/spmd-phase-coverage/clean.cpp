// Fixture: all traffic lexically inside live ScopedPhase scopes, including
// a nested block whose phase outlives the inner lambda, and a phase that
// *closes* before unrelated (non-comm) code runs.
#include "ptilu/sim/machine.hpp"
#include "ptilu/sim/trace.hpp"

void clean(ptilu::sim::Machine& machine, const ptilu::IdxVec& data) {
  ptilu::sim::ScopedPhase solve_phase(machine, "fixture/solve");
  {
    ptilu::sim::ScopedPhase span(machine, "exchange");
    machine.step([&](ptilu::sim::RankContext& ctx) {
      ctx.send_indices((ctx.rank() + 1) % ctx.nranks(), /*tag=*/0, data);
      ctx.send_reals((ctx.rank() + 1) % ctx.nranks(), /*tag=*/1, {});
    }, "fixture/send");
  }
  machine.step([&](ptilu::sim::RankContext& ctx) {
    for (const ptilu::sim::Message& msg : ctx.recv_all()) {
      (void)msg;
    }
  }, "fixture/drain");
  machine.check_quiescent("fixture/end");
}
