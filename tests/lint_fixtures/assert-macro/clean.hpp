// Fixture: the project macros, static_assert, and mentions of assert that
// are not invocations.
#pragma once

#include "ptilu/support/check.hpp"

inline int clean(int n) {
  static_assert(sizeof(int) >= 2, "static_assert is a different token");
  PTILU_CHECK(n > 0, "n must be positive, got " << n);
  PTILU_ASSERT(n < 1000, "internal invariant");
  // A comment saying assert(x) is fine, as is the string below.
  const char* doc = "never write assert(x) in library code";
  (void)doc;
  return n - 1;
}
