// Fixture: raw assert() in a public header.
#pragma once

#include <cassert>

inline int violating(int n) {
  assert(n > 0);
  return n - 1;
}
