// Fixture: a justified raw assert (e.g. third-party macro compatibility).
#pragma once

#include <cassert>

inline int suppressed(int n) {
  // ptilu-lint: allow(assert-macro)
  assert(n > 0);
  assert(n < 1000);  // ptilu-lint: allow(assert-macro)
  return n - 1;
}
