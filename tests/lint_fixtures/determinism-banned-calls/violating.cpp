// Fixture: nondeterministic sources and wall-clock reads in library code.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double violating() {
  std::random_device entropy;
  std::srand(entropy());
  double sum = static_cast<double>(std::rand());
  sum += static_cast<double>(std::time(nullptr));
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return sum;
}
