// Fixture: deterministic randomness and *mentions* of banned names that a
// comment/string-aware lexer must not confuse with calls.
#include <cstdint>
#include <string>

std::uint64_t mix64_like(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 31);
}

std::string clean(std::uint64_t seed) {
  // rand() and now() in a comment are not calls; neither is "time(" below.
  const std::string doc = "never call rand(), time(nullptr), or now() here";
  const std::string raw = R"(raw strings hide std::random_device and clock())";
  std::uint64_t key = mix64_like(seed);
  // Member fields/calls named like banned functions are fine: obj.time is
  // a member access, and elapsed_time( / now_superstep( are other tokens.
  struct Span {
    double time = 0.0;
  };
  Span span;
  span.time = static_cast<double>(key % 7);
  return doc + raw + std::to_string(span.time);
}
