// Fixture: the timing-utility exemption, spelled as a suppression.
#include <chrono>

double suppressed() {
  using Clock = std::chrono::steady_clock;
  // Wall timing is this helper's entire purpose (cf. support/timer.hpp).
  // ptilu-lint: allow(determinism-banned-calls)
  const auto t0 = Clock::now();
  const auto t1 = Clock::now();  // ptilu-lint: allow(determinism-banned-calls)
  return std::chrono::duration<double>(t1 - t0).count();
}
