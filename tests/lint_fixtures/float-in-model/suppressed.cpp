// Fixture: a justified float (e.g. a compact export format that never
// feeds back into modeled state).
namespace fixture {

struct CompactSample {
  // Export-only field; truncation cannot re-enter the modeled clocks.
  // ptilu-lint: allow(float-in-model)
  float exported = 0.0F;
};

inline void store(CompactSample& sample, double value) {
  sample.exported = static_cast<float>(value);  // ptilu-lint: allow(float-in-model)
}

}  // namespace fixture
