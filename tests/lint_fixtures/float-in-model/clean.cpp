// Fixture: double/integer modeled state; the word float appears only in
// comments and strings ("no float drift"), which must not trip the rule.
#include <cstdint>

namespace fixture {

struct Clocks {
  double elapsed = 0.0;         // modeled seconds, bit-exact identities
  std::uint64_t supersteps = 0;
};

inline double advance(Clocks& clocks, double dt) {
  // The busy <= elapsed identity holds with no float drift.
  clocks.elapsed += dt;
  clocks.supersteps += 1;
  const char* doc = "float is banned here";
  (void)doc;
  return clocks.elapsed;
}

}  // namespace fixture
