// Fixture: float arithmetic in a simulator modeled path.
namespace fixture {

struct Clocks {
  float elapsed = 0.0F;  // modeled time must be double
};

inline double advance(Clocks& clocks, double dt) {
  clocks.elapsed += static_cast<float>(dt);
  return static_cast<double>(clocks.elapsed);
}

}  // namespace fixture
