// Unit tests for the graph module: construction, coloring, serial MIS.
#include <gtest/gtest.h>

#include "ptilu/graph/coloring.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/graph/mis.hpp"
#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu {
namespace {

Graph path_graph(idx n) {
  std::vector<std::pair<idx, idx>> edges;
  for (idx i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return graph_from_edges(n, edges);
}

Graph grid_graph(idx nx, idx ny) {
  std::vector<std::pair<idx, idx>> edges;
  auto id = [nx](idx x, idx y) { return y * nx + x; };
  for (idx y = 0; y < ny; ++y) {
    for (idx x = 0; x < nx; ++x) {
      if (x + 1 < nx) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < ny) edges.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  return graph_from_edges(nx * ny, edges);
}

Graph random_graph(idx n, idx edges_per_vertex, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<idx, idx>> edges;
  for (idx v = 0; v < n; ++v) {
    for (idx e = 0; e < edges_per_vertex; ++e) {
      const idx u = rng.next_index(n);
      if (u != v) edges.emplace_back(v, u);
    }
  }
  return graph_from_edges(n, edges);
}

TEST(Graph, FromEdgesIsSymmetric) {
  const Graph g = random_graph(100, 4, 7);
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, PathDegrees) {
  const Graph g = path_graph(5);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_EQ(g.num_edges_directed(), 8);
}

TEST(Graph, SelfLoopsDropped) {
  const Graph g = graph_from_edges(3, {{0, 0}, {0, 1}});
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.num_edges_directed(), 2);
}

TEST(Graph, DuplicateEdgesMergeWithWeight) {
  const Graph g = graph_from_edges(2, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.degree(0), 1);
  // 3 input directed pairs → each direction seen 3 times → weight 3.
  EXPECT_EQ(g.ewgt[g.xadj[0]], 3);
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, FromPatternDropsDiagonalAndSymmetrizes) {
  CooBuilder b(3, 3);
  b.add(0, 0, 5.0);
  b.add(0, 2, 1.0);  // only one direction present
  b.add(1, 1, 5.0);
  const Graph g = graph_from_pattern(b.to_csr());
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 0);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, ComponentCount) {
  const Graph g = graph_from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(count_components(g), 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(count_components(grid_graph(8, 8)), 1);
}

TEST(Coloring, PathUsesTwoColors) {
  const Coloring c = greedy_coloring(path_graph(10));
  EXPECT_EQ(c.num_colors, 2);
  EXPECT_TRUE(is_valid_coloring(path_graph(10), c));
}

TEST(Coloring, GridIsBipartite) {
  const Graph g = grid_graph(7, 9);
  const Coloring c = greedy_coloring(g);
  EXPECT_EQ(c.num_colors, 2);
  EXPECT_TRUE(is_valid_coloring(g, c));
}

TEST(Coloring, RandomGraphValid) {
  const Graph g = random_graph(200, 5, 13);
  const Coloring c = greedy_coloring(g);
  EXPECT_TRUE(is_valid_coloring(g, c));
  idx max_degree = 0;
  for (idx v = 0; v < g.n; ++v) max_degree = std::max(max_degree, g.degree(v));
  EXPECT_LE(c.num_colors, max_degree + 1);
}

TEST(Coloring, ColorClassesAreIndependent) {
  const Graph g = random_graph(150, 4, 99);
  const Coloring c = greedy_coloring(g);
  for (idx color = 0; color < c.num_colors; ++color) {
    EXPECT_TRUE(is_independent(g, c.color_class(color)));
  }
}

TEST(Mis, GreedyIsMaximal) {
  const Graph g = random_graph(300, 4, 4);
  const IdxVec set = greedy_mis(g);
  EXPECT_TRUE(is_maximal_independent(g, set));
}

TEST(Mis, LubyIsIndependent) {
  const Graph g = random_graph(300, 4, 4);
  const IdxVec set = luby_mis(g, {.seed = 9, .rounds = 5});
  EXPECT_TRUE(is_independent(g, set));
  EXPECT_GT(set.size(), 0u);
}

TEST(Mis, LubyManyRoundsIsMaximal) {
  const Graph g = random_graph(300, 4, 4);
  const IdxVec set = luby_mis(g, {.seed = 9, .rounds = 64});
  EXPECT_TRUE(is_maximal_independent(g, set));
}

TEST(Mis, FiveRoundsNearlyMaximal) {
  // The paper's observation: 5 rounds finds the large majority of a MIS.
  const Graph g = random_graph(2000, 4, 11);
  const auto five = luby_mis(g, {.seed = 1, .rounds = 5});
  const auto full = luby_mis(g, {.seed = 1, .rounds = 64});
  EXPECT_GE(five.size() * 10, full.size() * 9);  // >= 90% of maximal size
}

TEST(Mis, RespectsActiveMask) {
  const Graph g = path_graph(10);
  std::vector<bool> active(10, false);
  for (idx v = 0; v < 5; ++v) active[v] = true;
  const IdxVec set = luby_mis(g, {.seed = 3, .rounds = 64}, &active);
  for (const idx v : set) EXPECT_LT(v, 5);
  EXPECT_TRUE(is_maximal_independent(g, set, &active));
}

TEST(Mis, EmptyGraph) {
  Graph g;
  g.n = 0;
  g.xadj = {0};
  const IdxVec set = luby_mis(g);
  EXPECT_TRUE(set.empty());
}

TEST(Mis, SingletonAndIsolatedVertices) {
  const Graph g = graph_from_edges(4, {{1, 2}});
  const IdxVec set = luby_mis(g, {.seed = 5, .rounds = 64});
  EXPECT_TRUE(is_maximal_independent(g, set));
  // Isolated vertices 0 and 3 must always be chosen.
  EXPECT_TRUE(std::find(set.begin(), set.end(), 0) != set.end());
  EXPECT_TRUE(std::find(set.begin(), set.end(), 3) != set.end());
}

TEST(Mis, CompleteGraphPicksExactlyOne) {
  std::vector<std::pair<idx, idx>> edges;
  for (idx u = 0; u < 8; ++u) {
    for (idx v = u + 1; v < 8; ++v) edges.emplace_back(u, v);
  }
  const Graph g = graph_from_edges(8, edges);
  const IdxVec set = luby_mis(g, {.seed = 2, .rounds = 64});
  EXPECT_EQ(set.size(), 1u);
}

TEST(Mis, DeterministicForFixedSeed) {
  const Graph g = random_graph(500, 5, 8);
  const auto a = luby_mis(g, {.seed = 77, .rounds = 5});
  const auto b = luby_mis(g, {.seed = 77, .rounds = 5});
  EXPECT_EQ(a, b);
}

TEST(Mis, IsIndependentDetectsViolation) {
  const Graph g = path_graph(3);
  EXPECT_FALSE(is_independent(g, {0, 1}));
  EXPECT_TRUE(is_independent(g, {0, 2}));
  EXPECT_TRUE(is_maximal_independent(g, {0, 2}));
  EXPECT_TRUE(is_maximal_independent(g, {1}));   // 1 dominates both endpoints
  EXPECT_FALSE(is_maximal_independent(g, {0}));  // 2 could still be added
}

}  // namespace
}  // namespace ptilu
