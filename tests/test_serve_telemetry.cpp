// Serving-telemetry tests (serve/telemetry.hpp): the mergeable latency
// histogram's bit-exact bucketing and merge/quantile contracts, the
// request-lifecycle event log and its Chrome trace export, the batch and
// stream attribution identities (decomposition re-sums, first-argmax
// straggler elections, exact busy/idle rollups), and the telemetry
// counter mirroring into sim::Metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "ptilu/serve/serve_report.hpp"
#include "ptilu/serve/solve_service.hpp"
#include "ptilu/serve/telemetry.hpp"
#include "ptilu/serve/traffic.hpp"
#include "ptilu/sim/metrics.hpp"
#include "ptilu/support/check.hpp"
#include "ptilu/support/rng.hpp"

namespace ptilu {
namespace {

using Hist = serve::LatencyHistogram;

TEST(LatencyHistogram, BucketEdgesAreExactDyadics) {
  // The first edge is 2^kMinExp exactly; every edge is ldexp(1 + i/32, e).
  EXPECT_EQ(Hist::bucket_lower(0), std::ldexp(1.0, Hist::kMinExp));
  EXPECT_EQ(Hist::bucket_lower(Hist::kBucketCount), std::ldexp(1.0, Hist::kMaxExp));
  for (const int index : {0, 1, 31, 32, 33, 960, Hist::kBucketCount - 1}) {
    const double lower = Hist::bucket_lower(index);
    const double upper = Hist::bucket_upper(index);
    EXPECT_LT(lower, upper);
    // Edges are exactly representable: the dyadic reconstruction round-trips.
    const int octave = Hist::kMinExp + index / Hist::kSubBuckets;
    const double sub = static_cast<double>(index % Hist::kSubBuckets) /
                       static_cast<double>(Hist::kSubBuckets);
    EXPECT_EQ(lower, std::ldexp(1.0 + sub, octave));
  }
}

TEST(LatencyHistogram, BucketIndexIsConsistentWithEdges) {
  // A boundary value belongs to the bucket it opens, values just below it
  // to the previous bucket — and every value lies inside its bucket.
  for (const int index : {0, 5, 31, 32, 100, Hist::kBucketCount - 1}) {
    const double lower = Hist::bucket_lower(index);
    EXPECT_EQ(Hist::bucket_index(lower), index);
    const double inside = lower * (1.0 + 1.0 / 128.0);  // < next edge (1/32 apart)
    EXPECT_EQ(Hist::bucket_index(inside), index);
  }
  EXPECT_EQ(Hist::bucket_index(std::nextafter(Hist::bucket_lower(10), 0.0)), 9);
  EXPECT_EQ(Hist::bucket_index(0.0), -1);
  EXPECT_EQ(Hist::bucket_index(-1.0), -1);
  EXPECT_EQ(Hist::bucket_index(std::ldexp(1.0, Hist::kMaxExp)), Hist::kBucketCount);
  EXPECT_EQ(Hist::bucket_index(1e30), Hist::kBucketCount);
}

TEST(LatencyHistogram, CountIdentityAndOverUnderflow) {
  Hist hist;
  hist.record(1.5);                             // regular bucket
  hist.record(0.0);                             // underflow
  hist.record(-2.0);                            // underflow
  hist.record(std::ldexp(1.0, Hist::kMaxExp));  // overflow
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.underflow(), 2u);
  EXPECT_EQ(hist.overflow(), 1u);
  std::uint64_t in_buckets = 0;
  for (const std::uint64_t count : hist.counts()) in_buckets += count;
  // Σ bucket counts + underflow + overflow == values recorded, always.
  EXPECT_EQ(in_buckets + hist.underflow() + hist.overflow(), hist.total());
  EXPECT_THROW(hist.record(std::nan("")), Error);
}

TEST(LatencyHistogram, MergedHistogramIsBitIdenticalToDirectRecording) {
  Rng rng(42);
  std::vector<double> values(1000);
  for (double& v : values) v = rng.uniform(1e-6, 10.0);

  Hist direct;
  for (const double v : values) direct.record(v);

  serve::ServeTelemetry telemetry;
  std::vector<Hist> shards(4);
  for (std::size_t i = 0; i < values.size(); ++i) shards[i % 4].record(values[i]);
  for (int s = 1; s < 4; ++s) shards[0].merge(shards[static_cast<std::size_t>(s)], &telemetry);

  EXPECT_EQ(shards[0].total(), direct.total());
  EXPECT_EQ(shards[0].underflow(), direct.underflow());
  EXPECT_EQ(shards[0].overflow(), direct.overflow());
  EXPECT_EQ(shards[0].counts(), direct.counts());  // element-wise bit identity
  EXPECT_EQ(telemetry.stats().histogram_merges, 3u);
  // Same sample, same buckets -> identical quantile reads.
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(shards[0].quantile(q), direct.quantile(q));
  }
}

TEST(LatencyHistogram, QuantileWithinResolutionBoundOfExactSample) {
  Rng rng(7);
  std::vector<double> values(500);
  for (double& v : values) v = rng.uniform(1e-4, 5.0);
  Hist hist;
  for (const double v : values) hist.record(v);
  const serve::SortedSample exact(values);
  const double bound = 1.0 + Hist::relative_error_bound();
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double approx = hist.quantile(q);
    const double truth = exact.quantile(q);
    // Upper bucket edge: strictly above the truth, within one bucket width.
    EXPECT_GT(approx, truth) << "q=" << q;
    EXPECT_LE(approx, truth * bound) << "q=" << q;
  }
}

TEST(LatencyHistogram, QuantileEdgeRules) {
  Hist empty;
  EXPECT_THROW(empty.quantile(0.5), Error);

  Hist hist;
  hist.record(1.0);
  EXPECT_THROW(hist.quantile(-0.1), Error);
  EXPECT_THROW(hist.quantile(1.5), Error);
  // Single sample: every quantile reads its bucket's upper edge.
  const int bucket = Hist::bucket_index(1.0);
  EXPECT_EQ(hist.quantile(0.0), Hist::bucket_upper(bucket));
  EXPECT_EQ(hist.quantile(1.0), Hist::bucket_upper(bucket));

  Hist under;
  under.record(0.0);
  EXPECT_EQ(under.quantile(0.5), std::ldexp(1.0, Hist::kMinExp));
  Hist over;
  over.record(1e30);
  EXPECT_EQ(over.quantile(0.5), std::ldexp(1.0, Hist::kMaxExp));
}

// A small deterministic serving scenario shared by the attribution tests:
// four requests, a cap-2 plan formed from explicit unit costs.
struct Scenario {
  std::vector<serve::Request> schedule;
  serve::BatchCostModel costs;
  std::vector<serve::Batch> plan;

  Scenario() {
    costs.cache_resolve_s = 0.25;
    costs.stream_shared_s = 1.0;
    costs.column_solve_s = 0.5;
    for (const double arrival : {0.5, 0.6, 0.7, 5.0}) {
      serve::Request request;
      request.arrival_s = arrival;
      request.rhs_seed = static_cast<std::uint64_t>(schedule.size());
      schedule.push_back(request);
    }
    plan = serve::plan_serve(schedule, 2,
                             [this](int k) { return costs.total_s(k); });
  }
};

TEST(AttributeBatches, DecompositionResumsAndQueueRecursionMatches) {
  Scenario sc;
  serve::ServeTelemetry telemetry;
  const serve::ApplyAttribution attr =
      serve::attribute_batches(sc.schedule, sc.plan, sc.costs, 2, &telemetry);
  ASSERT_EQ(attr.batches.size(), sc.plan.size());
  int covered = 0;
  for (std::size_t b = 0; b < attr.batches.size(); ++b) {
    const serve::BatchAttribution& batch = attr.batches[b];
    EXPECT_EQ(batch.first, covered);
    covered += batch.count;
    // The decomposition re-sums to the planned service time BIT-EXACTLY
    // in the documented fold order.
    double acc = sc.costs.stream_shared_s;
    for (int c = 0; c < batch.count; ++c) acc += batch.column_solve_s[static_cast<std::size_t>(c)];
    EXPECT_EQ(sc.costs.cache_resolve_s + acc, batch.service_s);
    EXPECT_EQ(batch.service_s, sc.plan[b].service_s);
    EXPECT_EQ(batch.start_s, sc.plan[b].start_s);
    for (int c = 0; c < batch.count; ++c) {
      EXPECT_EQ(batch.queue_wait_s[static_cast<std::size_t>(c)],
                batch.start_s - batch.arrival_s[static_cast<std::size_t>(c)]);
      EXPECT_GE(batch.queue_wait_s[static_cast<std::size_t>(c)], 0.0);
    }
    // Uniform per-column costs: the first-argmax election is column 0.
    EXPECT_EQ(batch.straggler_column, 0);
  }
  EXPECT_EQ(covered, static_cast<int>(sc.schedule.size()));
  // Batch 0 starts at request 0's arrival (server idle), so it is
  // arrival-gated; the burst at 0.6/0.7 queues behind it.
  EXPECT_TRUE(attr.batches.front().arrival_gated);

  EXPECT_EQ(telemetry.stats().requests, sc.schedule.size());
  EXPECT_EQ(telemetry.stats().batches, sc.plan.size());
  EXPECT_EQ(telemetry.stats().straggler_elections, sc.plan.size());
}

TEST(AttributeBatches, LaneRollupIdentities) {
  Scenario sc;
  const serve::ApplyAttribution attr =
      serve::attribute_batches(sc.schedule, sc.plan, sc.costs, 2);
  const serve::LaneRollup& lanes = attr.lanes;
  ASSERT_EQ(lanes.busy_s.size(), 2u);
  // elapsed folds each batch's widest column; busy folds each lane's own
  // contributions (0 when the batch was narrower) -> busy <= elapsed and
  // idle derives exactly.
  std::uint64_t elections = 0;
  for (std::size_t lane = 0; lane < lanes.busy_s.size(); ++lane) {
    EXPECT_LE(lanes.busy_s[lane], lanes.elapsed_s);
    EXPECT_EQ(lanes.idle_s[lane], lanes.elapsed_s - lanes.busy_s[lane]);
    elections += lanes.elections[lane];
  }
  EXPECT_EQ(elections, sc.plan.size());  // exactly one election per batch
  // Lane 1 only works in batches of width 2, so it is strictly idler.
  EXPECT_GT(lanes.busy_s[0], lanes.busy_s[1]);
  EXPECT_GE(lanes.imbalance, 1.0);
}

TEST(AttributeBatches, RejectsForeignPlansAndCosts) {
  Scenario sc;
  // A cost model the plan was NOT formed from: decomposition would not
  // re-sum, so attribution must refuse.
  serve::BatchCostModel other = sc.costs;
  other.column_solve_s *= 2.0;
  EXPECT_THROW(serve::attribute_batches(sc.schedule, sc.plan, other, 2), Error);
  // A lane count narrower than the widest batch cannot hold the rollup.
  EXPECT_THROW(serve::attribute_batches(sc.schedule, sc.plan, sc.costs, 1), Error);
  // A plan that does not cover the schedule is rejected.
  std::vector<serve::Batch> truncated(sc.plan.begin(), sc.plan.end() - 1);
  EXPECT_THROW(serve::attribute_batches(sc.schedule, truncated, sc.costs, 2), Error);
}

TEST(AttributeStreams, RoundsElectionsAndRollups) {
  const std::vector<long long> matvecs = {3, 5, 7, 2, 6};
  const double step = 0.125;  // dyadic, so every cost is exact
  serve::ServeTelemetry telemetry;
  const serve::StreamAttribution attr =
      serve::attribute_streams(2, matvecs, step, &telemetry);
  ASSERT_EQ(attr.rounds.size(), 3u);  // ceil(5 / 2)
  // Round 0: {3,5} -> straggler 1; round 1: {7,2} -> 0; round 2: {6,-} -> 0.
  EXPECT_EQ(attr.rounds[0].straggler, 1);
  EXPECT_EQ(attr.rounds[1].straggler, 0);
  EXPECT_EQ(attr.rounds[2].straggler, 0);
  EXPECT_EQ(attr.rounds[0].elapsed_s, 5.0 * step);
  EXPECT_EQ(attr.rounds[2].cost_s[1], 0.0);  // tail round: stream 1 idles
  EXPECT_EQ(attr.elapsed_s, (5.0 + 7.0 + 6.0) * step);
  EXPECT_EQ(attr.busy_s[0], (3.0 + 7.0 + 6.0) * step);
  EXPECT_EQ(attr.busy_s[1], (5.0 + 2.0) * step);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(attr.idle_s[static_cast<std::size_t>(s)],
              attr.elapsed_s - attr.busy_s[static_cast<std::size_t>(s)]);
  }
  EXPECT_EQ(attr.elections[0], 2u);
  EXPECT_EQ(attr.elections[1], 1u);
  const double mean = (attr.busy_s[0] + attr.busy_s[1]) / 2.0;
  EXPECT_EQ(attr.imbalance, attr.busy_s[0] / mean);
  EXPECT_EQ(telemetry.stats().straggler_elections, 3u);

  EXPECT_THROW(serve::attribute_streams(0, matvecs, step), Error);
  EXPECT_THROW(serve::attribute_streams(2, {}, step), Error);
  EXPECT_THROW(serve::attribute_streams(2, matvecs, 0.0), Error);
}

TEST(ServeTelemetry, MirrorsIntoMetricsRegistryWithTopUp) {
  serve::ServeTelemetry telemetry;
  telemetry.count_requests(10);
  telemetry.count_batches(3);

  // Attaching AFTER activity replays history: registry == stats() from
  // the first read (the FactorCache serve/cache/* idiom).
  sim::Metrics registry(1);
  telemetry.attach_metrics(&registry);
  EXPECT_EQ(registry.counter_value("serve/telemetry/requests", 0), 10u);
  EXPECT_EQ(registry.counter_value("serve/telemetry/batches", 0), 3u);
  EXPECT_EQ(registry.counter_value("serve/telemetry/straggler_elections", 0), 0u);

  telemetry.count_elections(4);
  telemetry.count_histogram_merge();
  EXPECT_EQ(registry.counter_value("serve/telemetry/straggler_elections", 0), 4u);
  EXPECT_EQ(registry.counter_value("serve/telemetry/histogram_merges", 0), 1u);
  EXPECT_EQ(telemetry.stats().requests, 10u);
  EXPECT_EQ(telemetry.stats().straggler_elections, 4u);
}

TEST(EventLog, LifecycleJournalAndChromeExport) {
  Scenario sc;
  const serve::ApplyAttribution attr =
      serve::attribute_batches(sc.schedule, sc.plan, sc.costs, 2);
  serve::EventLog log;
  // Recording without a group is a contract violation.
  EXPECT_THROW(log.record(serve::ServeEvent{}), Error);
  log.begin_group("apply b<=2");
  const std::vector<bool> hits(sc.plan.size(), true);
  serve::append_lifecycle_events(log, sc.schedule, attr, sc.costs,
                                 0xDEADBEEFCAFEF00DULL, hits);
  // One enqueue + admit + complete per request, one resolve + solve-start
  // per batch.
  EXPECT_EQ(log.size(), 3 * sc.schedule.size() + 2 * sc.plan.size());

  // Every request's events are causally ordered on the modeled clock.
  std::vector<double> enqueue(sc.schedule.size(), -1.0), admit(sc.schedule.size(), -1.0),
      complete(sc.schedule.size(), -1.0);
  for (const serve::ServeEvent& event : log.events()) {
    if (event.request < 0) continue;
    const auto r = static_cast<std::size_t>(event.request);
    if (event.stage == serve::ServeStage::kEnqueue) enqueue[r] = event.t_model_s;
    if (event.stage == serve::ServeStage::kAdmit) admit[r] = event.t_model_s;
    if (event.stage == serve::ServeStage::kComplete) complete[r] = event.t_model_s;
  }
  for (std::size_t r = 0; r < sc.schedule.size(); ++r) {
    EXPECT_LE(enqueue[r], admit[r]);
    EXPECT_LT(admit[r], complete[r]);
  }

  std::ostringstream os;
  log.write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("apply b<=2 requests"), std::string::npos);
  EXPECT_NE(trace.find("apply b<=2 batches"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"wait\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"solve batch\""), std::string::npos);
  EXPECT_NE(trace.find("deadbeefcafef00d"), std::string::npos);
  EXPECT_NE(trace.find("\"cache_hit\":true"), std::string::npos);
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '{'),
            std::count(trace.begin(), trace.end(), '}'));
}

TEST(ServeReport, SerializesDeterministically) {
  Scenario sc;
  serve::ServeTelemetry telemetry;
  serve::ServeReportV1 report;
  report.run = {{"workload", "\"unit\""}, {"requests", "4"}};
  report.histogram_shards = 2;
  serve::ApplySection section;
  section.cap = 2;
  section.n = 16;
  section.nnz = 64;
  section.nnz_l = 40;
  section.nnz_u = 40;
  section.fingerprint = 0x0123456789ABCDEFULL;
  section.costs = sc.costs;
  section.attribution = serve::attribute_batches(sc.schedule, sc.plan, sc.costs, 2, &telemetry);
  section.cache_hit.assign(sc.plan.size(), true);
  std::vector<double> latencies;
  for (const serve::Request& request : sc.schedule) latencies.push_back(request.arrival_s + 1.0);
  for (const double v : latencies) section.hist.record(v);
  const serve::SortedSample exact(latencies);
  section.exact_p50 = exact.quantile(0.5);
  section.exact_p99 = exact.quantile(0.99);
  section.hist_p50 = section.hist.quantile(0.5);
  section.hist_p99 = section.hist.quantile(0.99);
  report.apply.push_back(section);
  report.has_stream = true;
  report.stream = serve::attribute_streams(2, {3, 5, 4}, 0.25, &telemetry);
  report.telemetry = telemetry.stats();

  const std::string a = serve::write_serve_report_json(report);
  const std::string b = serve::write_serve_report_json(report);
  EXPECT_EQ(a, b);  // bit-stable serialization
  EXPECT_NE(a.find("\"schema\":\"ptilu-serve-report-v1\""), std::string::npos);
  EXPECT_NE(a.find("\"fingerprint\":\"0123456789abcdef\""), std::string::npos);
  EXPECT_NE(a.find("\"sub_buckets\":32"), std::string::npos);
  EXPECT_NE(a.find("\"straggler_elections\":"), std::string::npos);
  // No backend/thread identity: the report must byte-diff across backends.
  EXPECT_EQ(a.find("backend"), std::string::npos);
  EXPECT_EQ(a.find("threads"), std::string::npos);
}

TEST(BatchCostModel, FoldOrderAndLegacyWrapper) {
  const serve::BatchCostModel costs =
      serve::modeled_batch_costs(1000, 4000, 5000, 5000, 40e-9, 5e-9);
  EXPECT_GT(costs.cache_resolve_s, 0.0);
  EXPECT_GT(costs.stream_shared_s, 0.0);
  EXPECT_GT(costs.column_solve_s, 0.0);
  for (const int k : {1, 2, 7}) {
    double acc = costs.stream_shared_s;
    for (int c = 0; c < k; ++c) acc += costs.column_solve_s;
    EXPECT_EQ(costs.total_s(k), costs.cache_resolve_s + acc);
  }
  EXPECT_THROW(costs.total_s(0), Error);
  // The legacy wrapper is the same fold without the cache-resolve term.
  serve::BatchCostModel no_cache = serve::modeled_batch_costs(1000, 0, 5000, 5000, 40e-9, 5e-9);
  no_cache.cache_resolve_s = 0.0;
  EXPECT_EQ(serve::modeled_batch_service_s(3, 1000, 5000, 5000, 40e-9, 5e-9),
            no_cache.total_s(3));
}

TEST(ModeledStreamStep, PositiveAndMonotoneInWork) {
  const double base = serve::modeled_stream_step_s(1000, 4000, 5000, 5000, 40e-9, 5e-9);
  EXPECT_GT(base, 0.0);
  EXPECT_GT(serve::modeled_stream_step_s(1000, 8000, 5000, 5000, 40e-9, 5e-9), base);
  EXPECT_GT(serve::modeled_stream_step_s(1000, 4000, 9000, 5000, 40e-9, 5e-9), base);
}

}  // namespace
}  // namespace ptilu
