// Generates a small but complete metrics run report for the ctest validator
// (scripts/check_report.py): a 4-rank PILUT factorization, a machine reset
// (so the report spans two counter epochs), one forward+backward
// substitution, and a short distributed GMRES. Prints the straggler table so
// failures are diagnosable from the ctest log.
//
// Usage: ptilu_report_smoke <output.report.json>
#include <iostream>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/krylov/gmres_dist.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/sim/metrics.hpp"
#include "ptilu/workloads/grids.hpp"

int main(int argc, char** argv) {
  using namespace ptilu;
  if (argc != 2) {
    std::cerr << "usage: ptilu_report_smoke <output.report.json>\n";
    return 2;
  }

  const int nranks = 4;
  const Csr a = workloads::convection_diffusion_2d(16, 16, 10.0, 20.0);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks, {.seed = 1});
  const DistCsr dist = DistCsr::create(a, p);
  const Halo halo = Halo::build(dist);

  sim::Machine::Options opts;
  opts.metrics = true;
  sim::Machine machine(nranks, opts);

  const PilutResult fact =
      pilut_factor(machine, dist, {.m = 5, .tau = 1e-2, .pivot_rel = 1e-12});

  const DistTriangularSolver solver(fact.factors, fact.schedule);
  const RealVec b(dist.n(), 1.0);
  RealVec x(dist.n(), 0.0);
  machine.reset();
  solver.apply(machine, b, x);

  RealVec x2(dist.n(), 0.0);
  const GmresResult gres = gmres_dist(machine, dist, halo, fact, b, x2,
                                      {.restart = 10, .max_matvecs = 100, .rtol = 1e-6});

  sim::Metrics* const metrics = machine.metrics();
  metrics->write_report_file(argv[1], machine,
                             {{"harness", "\"report_smoke\""},
                              {"procs", std::to_string(nranks)}});
  metrics->write_straggler_table(std::cout, machine);
  std::cout << "gmres matvecs " << gres.matvecs << ", wrote " << argv[1] << "\n";
  return 0;
}
