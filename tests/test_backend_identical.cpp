// Differential tests for the execution backends: the threaded backend must
// be observationally identical to the sequential one — bit-identical
// factors, solutions, modeled times, per-rank counters, superstep counts,
// traces, and conformance violation reports. Every driver in the library is
// run under both backends across rank counts and compared exactly.
//
// Host note: these tests force a worker pool (Options::threads = 4) so the
// threaded code paths run with real concurrency even on a single-core CI
// machine; correctness never depends on the pool size.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/dist/mis_dist.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/krylov/gmres_dist.hpp"
#include "ptilu/pilut/pilu0.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/pilut_nested.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sim/conformance.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/sim/trace.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

namespace ptilu {
namespace {

constexpr int kRankCounts[] = {1, 2, 4, 8, 16};

sim::Machine::Options sequential_opts() {
  // Explicit backend: the suite itself may run under PTILU_BACKEND=threads,
  // and the differential tests need a true sequential baseline regardless.
  sim::Machine::Options opts;
  opts.backend = sim::Backend::kSequential;
  return opts;
}

sim::Machine::Options threaded_opts(int threads = 4) {
  sim::Machine::Options opts;
  opts.backend = sim::Backend::kThreads;
  opts.threads = threads;
  return opts;
}

DistCsr make_dist(const Csr& a, int nranks, std::uint64_t seed = 1) {
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks, {.seed = seed});
  return DistCsr::create(a, p);
}

/// Everything observable about a machine after a run, as an exactly
/// comparable value (doubles compared bitwise via ==; that is the point).
using CounterRow = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>;
struct MachineObservation {
  double modeled_time = 0.0;
  std::vector<double> rank_times;
  std::uint64_t supersteps = 0;
  std::vector<CounterRow> counters;

  bool operator==(const MachineObservation&) const = default;
};

/// A CSR matrix as an exactly comparable value (no operator== on Csr).
std::tuple<std::vector<nnz_t>, IdxVec, RealVec> csr_key(const Csr& m) {
  return {m.row_ptr, m.col_idx, m.values};
}

MachineObservation observe(const sim::Machine& m) {
  MachineObservation obs;
  obs.modeled_time = m.modeled_time();
  obs.supersteps = m.supersteps();
  for (int r = 0; r < m.nranks(); ++r) {
    obs.rank_times.push_back(m.rank_time(r));
    const sim::RankCounters& c = m.counters(r);
    obs.counters.emplace_back(c.flops, c.mem_bytes, c.messages_sent, c.bytes_sent);
  }
  return obs;
}

// --- Factorization drivers --------------------------------------------

TEST(BackendIdentical, PilutFactorsAndCountersMatch) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 6.0, 3.0);
  for (const int nranks : kRankCounts) {
    const DistCsr dist = make_dist(a, nranks);
    const PilutOptions opts{.m = 6, .tau = 1e-4, .cap_k = 2};
    sim::Machine seq(nranks, sequential_opts());
    sim::Machine thr(nranks, threaded_opts());
    EXPECT_EQ(seq.scratch_lanes(), 1);
    EXPECT_EQ(thr.scratch_lanes(), nranks);
    const PilutResult rs = pilut_factor(seq, dist, opts);
    const PilutResult rt = pilut_factor(thr, dist, opts);
    EXPECT_TRUE(equal(rs.factors.l, rt.factors.l)) << "nranks=" << nranks;
    EXPECT_TRUE(equal(rs.factors.u, rt.factors.u)) << "nranks=" << nranks;
    EXPECT_EQ(rs.schedule.newnum, rt.schedule.newnum) << "nranks=" << nranks;
    EXPECT_EQ(rs.schedule.level_start, rt.schedule.level_start);
    EXPECT_EQ(rs.stats.levels, rt.stats.levels);
    EXPECT_EQ(rs.stats.pivots_guarded, rt.stats.pivots_guarded);
    EXPECT_EQ(rs.stats.max_reduced_row, rt.stats.max_reduced_row);
    EXPECT_EQ(rs.stats.time_total, rt.stats.time_total);
    EXPECT_EQ(observe(seq), observe(thr)) << "nranks=" << nranks;
  }
}

TEST(BackendIdentical, Pilu0FactorsAndCountersMatch) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 4.0, 2.0);
  for (const int nranks : kRankCounts) {
    const DistCsr dist = make_dist(a, nranks);
    sim::Machine seq(nranks, sequential_opts());
    sim::Machine thr(nranks, threaded_opts());
    const PilutResult rs = pilu0_factor(seq, dist, {.pivot_rel = 1e-12});
    const PilutResult rt = pilu0_factor(thr, dist, {.pivot_rel = 1e-12});
    EXPECT_TRUE(equal(rs.factors.l, rt.factors.l)) << "nranks=" << nranks;
    EXPECT_TRUE(equal(rs.factors.u, rt.factors.u)) << "nranks=" << nranks;
    EXPECT_EQ(rs.schedule.newnum, rt.schedule.newnum);
    EXPECT_EQ(rs.stats.levels, rt.stats.levels);
    EXPECT_EQ(observe(seq), observe(thr)) << "nranks=" << nranks;
  }
}

TEST(BackendIdentical, PilutNestedFactorsAndCountersMatch) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 5.0, 5.0);
  for (const int nranks : kRankCounts) {
    const DistCsr dist = make_dist(a, nranks);
    const PilutOptions opts{.m = 8, .tau = 1e-4};
    sim::Machine seq(nranks, sequential_opts());
    sim::Machine thr(nranks, threaded_opts());
    const PilutResult rs = pilut_factor_nested(seq, dist, opts, {});
    const PilutResult rt = pilut_factor_nested(thr, dist, opts, {});
    EXPECT_TRUE(equal(rs.factors.l, rt.factors.l)) << "nranks=" << nranks;
    EXPECT_TRUE(equal(rs.factors.u, rt.factors.u)) << "nranks=" << nranks;
    EXPECT_EQ(rs.schedule.newnum, rt.schedule.newnum);
    EXPECT_EQ(observe(seq), observe(thr)) << "nranks=" << nranks;
  }
}

// --- Solvers ----------------------------------------------------------

TEST(BackendIdentical, TrisolveDistSolutionsMatch) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 6.0, 3.0);
  const RealVec b = workloads::random_vector(a.n_rows, 5);
  for (const int nranks : kRankCounts) {
    const DistCsr dist = make_dist(a, nranks);
    const auto run = [&](const sim::Machine::Options& opts) {
      sim::Machine machine(nranks, opts);
      const PilutResult fact = pilut_factor(machine, dist, {.m = 8, .tau = 1e-4});
      DistTriangularSolver solver(fact.factors, fact.schedule);
      machine.reset();
      RealVec y(a.n_rows), x(a.n_rows);
      solver.forward(machine, b, y);
      solver.backward(machine, y, x);
      return std::tuple{y, x, observe(machine)};
    };
    EXPECT_EQ(run(sequential_opts()), run(threaded_opts())) << "nranks=" << nranks;
  }
}

TEST(BackendIdentical, GmresDistSolutionsMatch) {
  const Csr a = workloads::convection_diffusion_2d(16, 16, 5.0, 2.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  for (const int nranks : kRankCounts) {
    const DistCsr dist = make_dist(a, nranks);
    const Halo halo = Halo::build(dist);
    const auto run = [&](const sim::Machine::Options& opts) {
      sim::Machine machine(nranks, opts);
      const PilutResult fact = pilut_factor(machine, dist, {.m = 8, .tau = 1e-4});
      RealVec x(a.n_rows, 0.0);
      const GmresResult g = gmres_dist(machine, dist, halo, fact, b, x,
                                       {.restart = 15, .max_matvecs = 200, .rtol = 1e-8});
      return std::tuple{x, g.final_residual, g.residual_history, g.matvecs,
                        g.converged, observe(machine)};
    };
    EXPECT_EQ(run(sequential_opts()), run(threaded_opts())) << "nranks=" << nranks;
  }
}

TEST(BackendIdentical, DistSpmvMatches) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 7.0, 3.0);
  const RealVec x = workloads::random_vector(a.n_rows, 42);
  for (const int nranks : kRankCounts) {
    const DistCsr dist = make_dist(a, nranks);
    const Halo halo = Halo::build(dist);
    const auto run = [&](const sim::Machine::Options& opts) {
      sim::Machine machine(nranks, opts);
      RealVec y(a.n_rows, 0.0);
      dist_spmv(machine, dist, halo, x, y);
      return std::tuple{y, observe(machine)};
    };
    EXPECT_EQ(run(sequential_opts()), run(threaded_opts())) << "nranks=" << nranks;
  }
}

TEST(BackendIdentical, MisDistSetsMatch) {
  const Csr a = workloads::convection_diffusion_2d(20, 20);
  const Graph g = graph_from_pattern(a);
  for (const int nranks : kRankCounts) {
    const Partition p = partition_kway(g, nranks);
    IdxVec owner = p.part;
    DistGraph graph;
    graph.n_global = g.n;
    graph.owner = &owner;
    graph.verts_of.resize(nranks);
    graph.adj.resize(nranks);
    for (idx v = 0; v < g.n; ++v) graph.verts_of[owner[v]].push_back(v);
    for (int r = 0; r < nranks; ++r) {
      graph.adj[r].resize(graph.verts_of[r].size());
      for (std::size_t i = 0; i < graph.verts_of[r].size(); ++i) {
        const auto nbrs = g.neighbors(graph.verts_of[r][i]);
        graph.adj[r][i].assign(nbrs.begin(), nbrs.end());
      }
    }
    const auto run = [&](const sim::Machine::Options& opts) {
      sim::Machine machine(nranks, opts);
      const IdxVec set = mis_dist(machine, graph, {.seed = 7, .rounds = 8});
      return std::tuple{set, observe(machine)};
    };
    EXPECT_EQ(run(sequential_opts()), run(threaded_opts())) << "nranks=" << nranks;
  }
}

// --- Traces -----------------------------------------------------------

TEST(BackendIdentical, TracesAndPhaseRollupsMatch) {
  // The deferred per-rank trace buffering must replay into exactly the
  // spans the sequential backend records live: the Chrome export is
  // compared byte-for-byte, the rollup row-by-row.
  const Csr a = workloads::convection_diffusion_2d(16, 16, 4.0, 2.0);
  const DistCsr dist = make_dist(a, 8);
  const auto run = [&](const sim::Machine::Options& opts) {
    sim::Machine machine(8, opts);
    sim::Trace trace;
    machine.attach_trace(&trace);
    const PilutResult fact = pilut_factor(machine, dist, {.m = 6, .tau = 1e-3});
    DistTriangularSolver solver(fact.factors, fact.schedule);
    machine.reset();
    RealVec x(a.n_rows, 0.0);
    solver.apply(machine, RealVec(a.n_rows, 1.0), x);
    machine.attach_trace(nullptr);
    std::ostringstream chrome;
    trace.write_chrome_trace(chrome);
    std::vector<std::tuple<std::string, double, double, std::uint64_t, std::uint64_t,
                           std::uint64_t, std::uint64_t, std::uint64_t>> rollup;
    for (const auto& row : trace.phase_rollup()) {
      rollup.emplace_back(row.name, row.stats.elapsed, row.stats.busy_total(),
                          row.stats.flops, row.stats.mem_bytes, row.stats.bytes_sent,
                          row.stats.bytes_recv, row.stats.messages);
    }
    return std::tuple{chrome.str(), rollup, trace.spans().size()};
  };
  EXPECT_EQ(run(sequential_opts()), run(threaded_opts()));
}

// --- Determinism of the threaded backend itself ------------------------

TEST(BackendIdentical, RepeatedThreadedRunsAreBitIdentical) {
  // Regression guard for the shared-scratch races the lane model fixes:
  // repeated threaded runs (different interleavings) must agree exactly
  // with each other and with the sequential baseline.
  const Csr a = workloads::jump_coefficient_2d(18, 18, 5.0, 11);
  const DistCsr dist = make_dist(a, 16);
  const auto run = [&](const sim::Machine::Options& opts) {
    sim::Machine machine(16, opts);
    const PilutResult fact = pilut_factor(machine, dist, {.m = 8, .tau = 1e-3});
    return std::tuple{csr_key(fact.factors.l), csr_key(fact.factors.u),
                      fact.schedule.newnum, observe(machine)};
  };
  const auto baseline = run(sequential_opts());
  for (int trial = 0; trial < 3; ++trial) {
    EXPECT_EQ(run(threaded_opts()), baseline) << "trial " << trial;
  }
}

TEST(BackendIdentical, PoolSizeDoesNotAffectResults) {
  const Csr a = workloads::convection_diffusion_2d(16, 16);
  const DistCsr dist = make_dist(a, 8);
  const auto run = [&](const sim::Machine::Options& opts) {
    sim::Machine machine(8, opts);
    const PilutResult fact = pilut_factor(machine, dist, {.m = 5, .tau = 1e-4});
    return std::tuple{csr_key(fact.factors.l), observe(machine)};
  };
  const auto baseline = run(sequential_opts());
  for (const int threads : {1, 2, 8, 64}) {
    EXPECT_EQ(run(threaded_opts(threads)), baseline) << "threads=" << threads;
  }
}

// --- Backend selection plumbing ----------------------------------------

TEST(BackendIdentical, ParseBackendAcceptsSpellingsAndRejectsTypos) {
  for (const char* name : {"seq", "sequential", "serial", "SEQUENTIAL"}) {
    EXPECT_EQ(sim::parse_backend(name), sim::Backend::kSequential) << name;
  }
  for (const char* name : {"threads", "thread", "threaded", "Threads"}) {
    EXPECT_EQ(sim::parse_backend(name), sim::Backend::kThreads) << name;
  }
  // A typo must throw, not silently fall back (a tsan CI job exporting a
  // misspelled PTILU_BACKEND would otherwise test nothing).
  EXPECT_THROW((void)sim::parse_backend("treads"), Error);
  EXPECT_THROW((void)sim::parse_backend("pthread"), Error);
  EXPECT_STREQ(sim::backend_name(sim::Backend::kSequential), "sequential");
  EXPECT_STREQ(sim::backend_name(sim::Backend::kThreads), "threads");
}

// --- Conformance under threads -----------------------------------------
//
// Every seeded protocol violation must throw the same report — same rank,
// same call site, same transcript — no matter which backend ran the step.
// The threaded backend defers per-rank conformance events and commits them
// in rank order at the barrier, electing the lowest violating rank, so the
// report text is reproduced verbatim.

sim::Machine::Options checked_opts(sim::Backend backend) {
  sim::Machine::Options opts;
  opts.check = true;
  opts.backend = backend;
  opts.threads = 4;
  return opts;
}

/// Run `scenario` on a fresh checked machine of each backend; return the
/// violation messages plus the post-throw machine observations (the
/// threaded barrier must also roll clocks/counters back to exactly the
/// state the sequential interpreter leaves behind).
template <typename Scenario>
void expect_same_violation(int nranks, Scenario&& scenario) {
  const auto run = [&](sim::Backend backend) {
    sim::Machine machine(nranks, checked_opts(backend));
    std::string what;
    try {
      scenario(machine);
      ADD_FAILURE() << "expected an SPMD conformance violation ("
                    << sim::backend_name(backend) << ")";
    } catch (const Error& e) {
      what = e.what();
    }
    return std::tuple{what, observe(machine)};
  };
  const auto seq = run(sim::Backend::kSequential);
  const auto thr = run(sim::Backend::kThreads);
  EXPECT_EQ(std::get<0>(seq), std::get<0>(thr));
  EXPECT_EQ(std::get<1>(seq), std::get<1>(thr));
  EXPECT_NE(std::get<0>(seq).find("SPMD conformance violation"), std::string::npos)
      << std::get<0>(seq);
}

TEST(BackendConformance, BadSendReportsMatch) {
  expect_same_violation(4, [](sim::Machine& m) {
    m.step([](sim::RankContext& ctx) {
      if (ctx.rank() == 2) ctx.send_indices(9, /*tag=*/3, {1, 2});
    }, "test/bad_send");
  });
}

TEST(BackendConformance, LowestViolatingRankElected) {
  // Several ranks violate in the same superstep; the sequential interpreter
  // reports the first one it reaches (the lowest rank), so the threaded
  // backend must elect the lowest violating rank too — regardless of which
  // worker thread finished first.
  expect_same_violation(8, [](sim::Machine& m) {
    m.step([](sim::RankContext& ctx) {
      if (ctx.rank() >= 3) ctx.send_indices(-1, /*tag=*/0, {7});
    }, "test/multi_bad");
  });
}

TEST(BackendConformance, DoubleDrainReportsMatch) {
  expect_same_violation(4, [](sim::Machine& m) {
    m.step([](sim::RankContext& ctx) {
      if (ctx.rank() == 0) ctx.send_indices(1, /*tag=*/1, {42});
    }, "test/send");
    m.step([](sim::RankContext& ctx) {
      (void)ctx.recv_all();
      if (ctx.rank() == 1) (void)ctx.recv_all();
    }, "test/double_drain");
  });
}

TEST(BackendConformance, CollectiveFingerprintReportsMatch) {
  expect_same_violation(4, [](sim::Machine& m) {
    m.step([](sim::RankContext& ctx) {
      ctx.declare_collective(sim::CollectiveOp::kUser,
                             ctx.rank() == 3 ? 16u : 8u, "test/reduce");
    }, "test/collective_step");
  });
}

TEST(BackendConformance, SkippedCollectiveReportsMatch) {
  expect_same_violation(4, [](sim::Machine& m) {
    m.step([](sim::RankContext& ctx) {
      if (ctx.rank() != 2) {
        ctx.declare_collective(sim::CollectiveOp::kSum, 8, "test/skipped");
      }
    }, "test/skip_step");
  });
}

TEST(BackendConformance, LostMessageReportsMatch) {
  expect_same_violation(4, [](sim::Machine& m) {
    m.step([](sim::RankContext& ctx) {
      if (ctx.rank() == 0) ctx.send_indices(1, /*tag=*/2, {7});
    }, "test/lost_send");
    m.step([](sim::RankContext&) {}, "test/forgot_drain");
  });
}

TEST(BackendConformance, QuiescenceReportsMatch) {
  expect_same_violation(4, [](sim::Machine& m) {
    m.step([](sim::RankContext& ctx) {
      if (ctx.rank() == 0) ctx.send_indices(3, /*tag=*/9, {1, 2, 3});
    }, "test/orphan_send");
    m.check_quiescent("test/end");
  });
}

TEST(BackendConformance, CleanRunsStayCleanAndReusable) {
  // After a caught violation the machine must keep working on both
  // backends, and a clean protocol must record zero violations threaded.
  sim::Machine m(4, checked_opts(sim::Backend::kThreads));
  try {
    m.step([](sim::RankContext& ctx) {
      if (ctx.rank() == 1) ctx.send_indices(7, /*tag=*/0, {1});
    }, "test/bad");
    FAIL() << "expected a violation";
  } catch (const Error&) {
  }
  EXPECT_EQ(m.checker()->violations(), 1u);
  m.reset();
  m.step([](sim::RankContext& ctx) {
    const int next = (ctx.rank() + 1) % ctx.nranks();
    ctx.send_reals(next, /*tag=*/1, {1.0, 2.0});
  }, "test/ring_send");
  m.step([](sim::RankContext& ctx) {
    EXPECT_EQ(ctx.recv_all().size(), 1u);
  }, "test/ring_recv");
  m.check_quiescent("test/ring_end");
  EXPECT_EQ(m.checker()->violations(), 1u);  // no new ones
}

// --- Stress & property tests -------------------------------------------

TEST(BackendStress, ManySendsPerRankUnderChecking) {
  // Hammer the staged-delivery and deferred-conformance paths with many
  // concurrent per-rank sends per superstep (run under tsan in CI). The
  // observable outcome must equal the sequential baseline exactly.
  constexpr int kRanks = 16;
  constexpr int kSteps = 40;
  const auto run = [&](sim::Backend backend) {
    sim::Machine machine(kRanks, checked_opts(backend));
    std::uint64_t received_words = 0;  // folded from per-rank slots below
    std::vector<std::uint64_t> rank_words(kRanks, 0);
    for (int s = 0; s < kSteps; ++s) {
      machine.step([&](sim::RankContext& ctx) {
        const int r = ctx.rank();
        for (const sim::Message& msg : ctx.recv_all()) {
          rank_words[r] += sim::decode_indices(msg).size();
        }
        ctx.charge_flops(100 + static_cast<std::uint64_t>(r));
        // Deterministic all-to-some pattern: each rank posts several
        // messages, some ranks post to the same destination.
        for (int k = 1; k <= 4; ++k) {
          const int to = (r * 3 + k * 5 + s) % kRanks;
          ctx.send_indices(to, /*tag=*/k, {static_cast<idx>(r), static_cast<idx>(s)});
        }
      }, "stress/step");
    }
    machine.step([&](sim::RankContext& ctx) {
      for (const sim::Message& msg : ctx.recv_all()) {
        rank_words[ctx.rank()] += sim::decode_indices(msg).size();
      }
    }, "stress/drain");
    machine.check_quiescent("stress/end");
    EXPECT_EQ(machine.checker()->violations(), 0u);
    for (const std::uint64_t w : rank_words) received_words += w;
    return std::tuple{received_words, observe(machine)};
  };
  EXPECT_EQ(run(sim::Backend::kSequential), run(sim::Backend::kThreads));
}

TEST(BackendProperty, RandomizedSendPatternsDeliverIdentically) {
  // Property: for arbitrary (seeded) send patterns, every rank's inbox
  // sequence — (sender, tag, payload) in order — is identical across
  // backends and across repeated threaded runs. This pins the delivery
  // order contract: (sender rank, program order) within each superstep.
  constexpr int kRanks = 8;
  constexpr int kSteps = 12;
  using Received = std::tuple<int, int, IdxVec>;
  for (const std::uint64_t seed : {11ull, 23ull, 57ull}) {
    // Precompute the pattern so every run replays the same program.
    Rng rng(seed);
    // [step][rank] -> list of (to, tag, payload)
    std::vector<std::vector<std::vector<std::tuple<int, int, IdxVec>>>> plan(kSteps);
    for (int s = 0; s < kSteps; ++s) {
      plan[s].resize(kRanks);
      for (int r = 0; r < kRanks; ++r) {
        const int nmsg = static_cast<int>(rng.next_below(5));
        for (int k = 0; k < nmsg; ++k) {
          const int to = static_cast<int>(rng.next_below(kRanks));
          const int tag = static_cast<int>(rng.next_below(8));
          IdxVec payload(1 + rng.next_below(6));
          for (idx& v : payload) v = static_cast<idx>(rng.next_below(1000));
          plan[s][r].emplace_back(to, tag, std::move(payload));
        }
      }
    }
    const auto run = [&](const sim::Machine::Options& opts) {
      sim::Machine machine(kRanks, opts);
      std::vector<std::vector<Received>> log(kRanks);  // rank-owned slots
      for (int s = 0; s < kSteps; ++s) {
        machine.step([&](sim::RankContext& ctx) {
          const int r = ctx.rank();
          for (const sim::Message& msg : ctx.recv_all()) {
            log[r].emplace_back(msg.from, msg.tag, sim::decode_indices(msg));
          }
          for (const auto& [to, tag, payload] : plan[s][r]) {
            ctx.send_indices(to, tag, payload);
          }
        }, "property/step");
      }
      machine.step([&](sim::RankContext& ctx) {
        for (const sim::Message& msg : ctx.recv_all()) {
          log[ctx.rank()].emplace_back(msg.from, msg.tag, sim::decode_indices(msg));
        }
      }, "property/drain");
      return std::tuple{log, observe(machine)};
    };
    const auto baseline = run(sequential_opts());
    const auto threaded_a = run(threaded_opts());
    const auto threaded_b = run(threaded_opts(2));
    EXPECT_EQ(baseline, threaded_a) << "seed=" << seed;
    EXPECT_EQ(threaded_a, threaded_b) << "seed=" << seed;
  }
}

TEST(BackendIdentical, AllreducesCombineInRankOrder) {
  // The per-rank allreduce slots must be combined 0..p-1 so floating-point
  // sums are bit-identical; exercised with values whose sum is
  // order-sensitive in floating point.
  const auto run = [&](const sim::Machine::Options& opts) {
    sim::Machine machine(8, opts);
    const double sum = machine.allreduce_sum(
        [](int r) { return r % 2 == 0 ? 1e16 : 1.0 + 1e-8 * r; }, "test/sum");
    const double mx = machine.allreduce_max(
        [](int r) { return std::sin(static_cast<double>(r)); }, "test/max");
    const long long ll = machine.allreduce_sum_ll(
        [](int r) { return (1ll << 40) + r; }, "test/sum_ll");
    return std::tuple{sum, mx, ll, observe(machine)};
  };
  EXPECT_EQ(run(sequential_opts()), run(threaded_opts()));
}

}  // namespace
}  // namespace ptilu
