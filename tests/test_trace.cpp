// Tests for the per-rank phase tracing subsystem (sim::Trace): span
// recording and coalescing, phase-path nesting, rollup arithmetic, the
// elapsed-sums-to-modeled-time invariant on a real factorization, epoch
// handling across Machine::reset, deterministic Chrome JSON export, and
// the no-op guarantees of the disabled path.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/krylov/gmres_dist.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/sim/trace.hpp"
#include "ptilu/workloads/grids.hpp"

namespace ptilu::sim {
namespace {

DistCsr tiny_problem(int nranks) {
  const Csr a = workloads::convection_diffusion_2d(16, 16, 10.0, 20.0);
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks, {.seed = 1});
  return DistCsr::create(a, p);
}

const PhaseStats* find_phase(const std::vector<Trace::PhaseRow>& rows,
                             const std::string& name) {
  for (const auto& row : rows) {
    if (row.name == name) return &row.stats;
  }
  return nullptr;
}

TEST(Trace, PhasePathsNest) {
  Trace trace;
  EXPECT_EQ(trace.current_phase(), "");
  {
    ScopedPhase outer(&trace, "factor");
    EXPECT_EQ(trace.current_phase(), "factor");
    {
      ScopedPhase inner(&trace, "interface");
      EXPECT_EQ(trace.current_phase(), "factor/interface");
      ScopedPhase deeper(&trace, "mis");
      EXPECT_EQ(trace.current_phase(), "factor/interface/mis");
    }
    EXPECT_EQ(trace.current_phase(), "factor");
  }
  EXPECT_EQ(trace.current_phase(), "");
}

TEST(Trace, NullScopedPhaseIsSafe) {
  ScopedPhase phase(nullptr, "anything");  // must not crash
  ScopedPhase nested(nullptr, "more");
}

TEST(Trace, RollupArithmetic) {
  Trace trace;
  Machine machine(2);
  machine.attach_trace(&trace);
  {
    ScopedPhase phase(&trace, "work");
    machine.step([](RankContext& ctx) { ctx.charge_flops(1000); });
  }
  machine.attach_trace(nullptr);

  const auto rows = trace.phase_rollup();
  const PhaseStats* work = find_phase(rows, "work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->flops, 2000u);  // both ranks charged 1000
  // Busy compute seconds = flops x per-flop cost, summed over ranks.
  EXPECT_NEAR(work->busy[static_cast<int>(SpanKind::kCompute)],
              2000 * machine.params().flop, 1e-15);
  // The whole run happened inside "work": its elapsed is the modeled time.
  EXPECT_NEAR(work->elapsed, machine.modeled_time(), 1e-15);
  EXPECT_NEAR(trace.attributed_time(), machine.modeled_time(), 1e-15);
}

TEST(Trace, SendRecvCountersMatchMachine) {
  Trace trace;
  Machine machine(2);
  machine.attach_trace(&trace);
  machine.step([](RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send_indices(1, 0, {1, 2, 3, 4});
  });
  machine.step([](RankContext& ctx) { (void)ctx.recv_all(); });
  machine.attach_trace(nullptr);

  const auto rows = trace.phase_rollup();
  const PhaseStats* root = find_phase(rows, "(untagged)");
  ASSERT_NE(root, nullptr);
  const auto totals = machine.total_counters();
  EXPECT_EQ(root->bytes_sent, totals.bytes_sent);
  EXPECT_EQ(root->messages, totals.messages_sent);
  EXPECT_EQ(root->bytes_recv, totals.bytes_sent);  // everything sent is drained
}

TEST(Trace, CollectiveCountersMatchMachine) {
  // collective() must keep the counter/trace ledgers reconciled just like
  // point-to-point traffic: the kAllreduce spans carry the same per-hop
  // message count and payload bytes the rank counters charge.
  Trace trace;
  Machine machine(4);
  machine.attach_trace(&trace);
  machine.step([](RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send_indices(2, 0, {5, 6});
  });
  machine.step([](RankContext& ctx) { (void)ctx.recv_all(); });
  machine.collective(256);
  machine.collective(0);
  machine.attach_trace(nullptr);

  const auto rows = trace.phase_rollup();
  const PhaseStats* root = find_phase(rows, "(untagged)");
  ASSERT_NE(root, nullptr);
  const auto totals = machine.total_counters();
  // 1 point-to-point send + 2 hops/rank/collective on 4 ranks x 2 collectives.
  EXPECT_EQ(totals.messages_sent, 1u + 4u * 2u * 2u);
  EXPECT_EQ(root->messages, totals.messages_sent);
  EXPECT_EQ(root->bytes_sent, totals.bytes_sent);
}

TEST(Trace, CoalescesAdjacentComputeSpans) {
  Trace trace;
  Machine machine(1);
  machine.attach_trace(&trace);
  machine.step([](RankContext& ctx) {
    ctx.charge_flops(10);
    ctx.charge_flops(20);  // contiguous, same phase/kind -> one span
  });
  machine.attach_trace(nullptr);
  int compute_spans = 0;
  for (const Span& span : trace.spans()) {
    compute_spans += span.kind == SpanKind::kCompute ? 1 : 0;
  }
  EXPECT_EQ(compute_spans, 1);
  EXPECT_EQ(trace.spans().front().flops, 30u);
}

TEST(Trace, AttributedTimeMatchesFactorization) {
  const int nranks = 4;
  const DistCsr dist = tiny_problem(nranks);
  Machine machine(nranks);
  Trace trace;
  machine.attach_trace(&trace);
  const PilutResult result =
      pilut_factor(machine, dist, {.m = 5, .tau = 1e-2, .pivot_rel = 1e-12});
  machine.attach_trace(nullptr);

  EXPECT_GT(result.stats.levels, 0);
  // The per-phase elapsed decomposition reproduces the aggregate modeled
  // time (near-exactly; the 1e-9 slack covers double-rounding only).
  EXPECT_NEAR(trace.attributed_time(), machine.modeled_time(),
              1e-9 * machine.modeled_time());
  // The rollup's counters agree with the machine's own ledger.
  std::uint64_t flops = 0, bytes_sent = 0, messages = 0, mem_bytes = 0;
  for (const auto& row : trace.phase_rollup()) {
    flops += row.stats.flops;
    bytes_sent += row.stats.bytes_sent;
    messages += row.stats.messages;
    mem_bytes += row.stats.mem_bytes;
  }
  const auto totals = machine.total_counters();
  EXPECT_EQ(flops, totals.flops);
  EXPECT_EQ(bytes_sent, totals.bytes_sent);
  EXPECT_EQ(messages, totals.messages_sent);
  EXPECT_EQ(mem_bytes, totals.mem_bytes);
  // The paper's phases all show up.
  const auto rows = trace.phase_rollup();
  EXPECT_NE(find_phase(rows, "factor/interior"), nullptr);
  EXPECT_NE(find_phase(rows, "factor/interface/form_reduced"), nullptr);
  EXPECT_NE(find_phase(rows, "factor/interface/mis/rounds"), nullptr);
  EXPECT_NE(find_phase(rows, "factor/interface/reduce"), nullptr);
}

TEST(Trace, DisabledModeIsBitIdentical) {
  const int nranks = 4;
  const DistCsr dist = tiny_problem(nranks);

  Machine plain(nranks);
  const PilutResult expected =
      pilut_factor(plain, dist, {.m = 5, .tau = 1e-2, .pivot_rel = 1e-12});

  Machine traced(nranks);
  Trace trace;
  traced.attach_trace(&trace);
  const PilutResult actual =
      pilut_factor(traced, dist, {.m = 5, .tau = 1e-2, .pivot_rel = 1e-12});
  traced.attach_trace(nullptr);

  // Tracing must not perturb the modeled clocks at all — bit-identical.
  EXPECT_EQ(plain.modeled_time(), traced.modeled_time());
  EXPECT_EQ(expected.stats.time_interior, actual.stats.time_interior);
  EXPECT_EQ(expected.stats.time_total, actual.stats.time_total);
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(plain.rank_time(r), traced.rank_time(r));
  }
}

TEST(Trace, RollupOnlyModeStoresNoSpans) {
  Trace trace(TraceOptions{.record_spans = false});
  Machine machine(2);
  machine.attach_trace(&trace);
  machine.step([](RankContext& ctx) { ctx.charge_flops(100); });
  machine.attach_trace(nullptr);
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_NEAR(trace.attributed_time(), machine.modeled_time(), 1e-15);
}

TEST(Trace, EpochsAppendAcrossMachineReset) {
  Trace trace;
  Machine machine(2);
  machine.attach_trace(&trace);
  machine.step([](RankContext& ctx) { ctx.charge_flops(100); });
  const double first_epoch = machine.modeled_time();
  machine.reset();
  machine.step([](RankContext& ctx) { ctx.charge_flops(100); });
  machine.attach_trace(nullptr);

  // Attributed time accumulates over both epochs.
  EXPECT_NEAR(trace.attributed_time(), first_epoch + machine.modeled_time(), 1e-15);
  // Second-epoch spans start at or after the first epoch's end.
  double max_first = 0.0;
  for (const Span& span : trace.spans()) {
    if (span.start < first_epoch) max_first = std::max(max_first, span.end);
  }
  EXPECT_LE(max_first, first_epoch + 1e-15);
}

TEST(Trace, ChromeExportIsDeterministic) {
  const auto run = [] {
    const DistCsr dist = tiny_problem(4);
    Machine machine(4);
    Trace trace;
    machine.attach_trace(&trace);
    pilut_factor(machine, dist, {.m = 5, .tau = 1e-2, .pivot_rel = 1e-12});
    machine.attach_trace(nullptr);
    std::ostringstream out;
    trace.write_chrome_trace(out);
    return out.str();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Trace, ChromeExportShape) {
  const DistCsr dist = tiny_problem(4);
  Machine machine(4);
  Trace trace;
  machine.attach_trace(&trace);
  pilut_factor(machine, dist, {.m = 5, .tau = 1e-2, .pivot_rel = 1e-12});
  machine.attach_trace(nullptr);
  std::ostringstream out;
  trace.write_chrome_trace(out);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One process_name metadata record per rank.
  for (int r = 0; r < 4; ++r) {
    const std::string name = "\"name\":\"rank " + std::to_string(r) + "\"";
    EXPECT_NE(json.find(name), std::string::npos) << "missing rank " << r;
  }
  EXPECT_NE(json.find("\"factor/interior\""), std::string::npos);
  // Balanced braces/brackets is a cheap structural sanity check; the ctest
  // validator (scripts/check_trace.py) does a full JSON parse.
  long depth = 0;
  for (const char c : json) {
    depth += (c == '{' || c == '[') ? 1 : 0;
    depth -= (c == '}' || c == ']') ? 1 : 0;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, PhaseTablePrints) {
  const DistCsr dist = tiny_problem(4);
  Machine machine(4);
  Trace trace;
  machine.attach_trace(&trace);
  pilut_factor(machine, dist, {.m = 5, .tau = 1e-2, .pivot_rel = 1e-12});
  machine.attach_trace(nullptr);
  std::ostringstream out;
  trace.write_phase_table(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("factor/interior"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

TEST(Trace, SolveAndGmresPhasesAppear) {
  const int nranks = 4;
  const DistCsr dist = tiny_problem(nranks);
  const Halo halo = Halo::build(dist);
  Machine machine(nranks);
  const PilutResult fact =
      pilut_factor(machine, dist, {.m = 5, .tau = 1e-2, .pivot_rel = 1e-12});
  const RealVec b(dist.n(), 1.0);
  RealVec x(dist.n(), 0.0);
  Trace trace;
  machine.attach_trace(&trace);  // gmres_dist resets the machine at entry
  gmres_dist(machine, dist, halo, fact, b, x,
             {.restart = 10, .max_matvecs = 50, .rtol = 1e-6});
  machine.attach_trace(nullptr);

  const auto rows = trace.phase_rollup();
  EXPECT_NE(find_phase(rows, "gmres/residual/spmv"), nullptr);
  EXPECT_NE(find_phase(rows, "gmres/precond/trisolve/forward/interior"), nullptr);
  EXPECT_NE(find_phase(rows, "gmres/precond/trisolve/backward/levels"), nullptr);
  EXPECT_NE(find_phase(rows, "gmres/orthog"), nullptr);
  EXPECT_NEAR(trace.attributed_time(), machine.modeled_time(),
              1e-9 * std::max(machine.modeled_time(), 1e-30));
}

TEST(Trace, ClearResetsEverything) {
  Trace trace;
  Machine machine(2);
  machine.attach_trace(&trace);
  {
    ScopedPhase phase(&trace, "work");
    machine.step([](RankContext& ctx) { ctx.charge_flops(10); });
  }
  machine.attach_trace(nullptr);
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_TRUE(trace.phase_rollup().empty());
  EXPECT_EQ(trace.attributed_time(), 0.0);
  EXPECT_EQ(trace.current_phase(), "");
}

}  // namespace
}  // namespace ptilu::sim
