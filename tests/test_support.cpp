// Unit tests for the support module: checks, RNG, CLI, tables.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "ptilu/support/check.hpp"
#include "ptilu/support/cli.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/support/table.hpp"

namespace ptilu {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    PTILU_CHECK(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(PTILU_CHECK(2 + 2 == 4, "should not fire"));
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, VertexKeyIsStateless) {
  EXPECT_EQ(vertex_key(5, 10, 3), vertex_key(5, 10, 3));
  EXPECT_NE(vertex_key(5, 10, 3), vertex_key(5, 10, 4));
  EXPECT_NE(vertex_key(5, 10, 3), vertex_key(5, 11, 3));
  EXPECT_NE(vertex_key(6, 10, 3), vertex_key(5, 10, 3));
}

TEST(Rng, VertexKeysLookUniform) {
  // No collisions over a realistic vertex range.
  std::set<std::uint64_t> seen;
  for (idx v = 0; v < 10000; ++v) seen.insert(vertex_key(42, v, 0));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--n=240", "--tau=1e-4", "--verbose"};
  Cli cli(4, argv);
  EXPECT_EQ(cli.get_int("n", 0), 240);
  EXPECT_DOUBLE_EQ(cli.get_double("tau", 0.0), 1e-4);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_NO_THROW(cli.check_all_consumed());
}

TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--n", "64"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get_int("n", 0), 64);
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 99), 99);
  EXPECT_EQ(cli.get_string("name", "x"), "x");
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, ParsesIntList) {
  const char* argv[] = {"prog", "--procs=16,32,64,128"};
  Cli cli(2, argv);
  const auto procs = cli.get_int_list("procs", {});
  ASSERT_EQ(procs.size(), 4u);
  EXPECT_EQ(procs[0], 16);
  EXPECT_EQ(procs[3], 128);
}

TEST(Cli, ParsesDoubleList) {
  const char* argv[] = {"prog", "--tau=1e-2,1e-4,1e-6"};
  Cli cli(2, argv);
  const auto taus = cli.get_double_list("tau", {});
  ASSERT_EQ(taus.size(), 3u);
  EXPECT_DOUBLE_EQ(taus[1], 1e-4);
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--oops=1"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.check_all_consumed(), Error);
}

TEST(Cli, RejectsMalformedInt) {
  const char* argv[] = {"prog", "--n=12x"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("n", 0), Error);
}

// Every accessor must accept both --flag=value and --flag value and
// produce the identical parse; a regression in either spelling breaks
// scripted harness invocations.
TEST(Cli, EveryAccessorParsesBothForms) {
  const char* eq_argv[] = {"prog",         "--name=abc",  "--n=42",
                           "--tau=1e-3",   "--flag=true", "--procs=4,8",
                           "--taus=1,0.5", "--backend=threads"};
  const char* sp_argv[] = {"prog",    "--name", "abc",     "--n",     "42",
                           "--tau",   "1e-3",   "--flag",  "true",    "--procs",
                           "4,8",     "--taus", "1,0.5",   "--backend", "threads"};
  const Cli eq(8, eq_argv);
  const Cli sp(15, sp_argv);
  for (const Cli* cli : {&eq, &sp}) {
    EXPECT_EQ(cli->get_string("name", ""), "abc");
    EXPECT_EQ(cli->get_int("n", 0), 42);
    EXPECT_DOUBLE_EQ(cli->get_double("tau", 0.0), 1e-3);
    EXPECT_TRUE(cli->get_bool("flag", false));
    const auto procs = cli->get_int_list("procs", {});
    ASSERT_EQ(procs.size(), 2u);
    EXPECT_EQ(procs[1], 8);
    const auto taus = cli->get_double_list("taus", {});
    ASSERT_EQ(taus.size(), 2u);
    EXPECT_DOUBLE_EQ(taus[1], 0.5);
    EXPECT_EQ(cli->get_choice("backend", "sequential", {"sequential", "threads"}),
              "threads");
    EXPECT_NO_THROW(cli->check_all_consumed());
  }
}

TEST(Cli, GetChoiceRejectsUnknownSpelling) {
  const char* argv[] = {"prog", "--backend=gpu"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_choice("backend", "sequential", {"sequential", "threads"}),
               Error);
}

TEST(Cli, HelpPrintsConsultedFlagsAndExitsZero) {
  // Both spellings: a bare --help and an explicit --help=true.
  for (const char* spelling : {"--help", "--help=true"}) {
    const char* argv[] = {"prog", spelling};
    Cli cli(2, argv);
    cli.get_int("reps", 1);
    cli.get_string("json", "");
    // Death tests match stderr; help goes to stdout, so only the exit
    // status is asserted here. help_text() content is covered below.
    EXPECT_EXIT(cli.check_all_consumed(), testing::ExitedWithCode(0), "");
  }
}

TEST(Cli, HelpTextListsOnlyQueriedFlags) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  cli.get_int("n", 0);
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_EQ(help.find("--tau"), std::string::npos);
}

TEST(Cli, UnknownBareFlagErrorOmitsImpliedTrue) {
  const char* argv[] = {"prog", "--oops"};
  Cli cli(2, argv);
  try {
    cli.check_all_consumed();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--oops"), std::string::npos);
    // The user never typed "=true"; the error must not invent it.
    EXPECT_EQ(what.find("=true"), std::string::npos);
  }
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 2);
  t.row().cell("b").cell(10.25, 2);
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("10.25"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_sci(0.000123, 2), "1.23e-04");
}

}  // namespace
}  // namespace ptilu
