// Tests for the critical-path analyzer / per-rank metrics registry
// (sim::Metrics). The collector promises exact accounting identities —
// busy bounded by elapsed, straggler attribution partitioning both the
// barriers and (up to summation order) the modeled time, and integer
// communication totals that reconcile with the machine's RankCounters —
// and byte-identical reports across execution backends. Every driver in
// the library is run under collection and checked against those promises.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/dist/mis_dist.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/krylov/gmres_dist.hpp"
#include "ptilu/pilut/pilu0.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/pilut/pilut_nested.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/sim/metrics.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

namespace ptilu {
namespace {

constexpr int kRankCounts[] = {1, 4, 16};

sim::Machine::Options metrics_opts(sim::Backend backend = sim::Backend::kSequential,
                                   int threads = 4) {
  sim::Machine::Options opts;
  opts.metrics = true;
  opts.backend = backend;
  opts.threads = threads;
  return opts;
}

sim::Machine::Options plain_opts() {
  // Explicit: the suite itself may run under PTILU_METRICS=1 (the sanitizer
  // CI jobs do), and the off-path tests need the collector truly absent.
  sim::Machine::Options opts;
  opts.metrics = false;
  opts.backend = sim::Backend::kSequential;
  return opts;
}

DistCsr make_dist(const Csr& a, int nranks) {
  const Graph g = graph_from_pattern(a);
  return DistCsr::create(a, partition_kway(g, nranks, {.seed = 1}));
}

/// Check every accounting identity the collector guarantees for a machine
/// that has run without an intervening reset. Mirrors scripts/check_report.py
/// but against the in-memory structures rather than the serialized report.
void expect_identities(sim::Machine& machine) {
  sim::Metrics* const metrics = machine.metrics();
  ASSERT_NE(metrics, nullptr);
  metrics->flush(machine);
  const int p = machine.nranks();
  const std::size_t ranks = static_cast<std::size_t>(p);

  double fold = 0.0;
  std::uint64_t steps = 0;
  std::vector<std::uint64_t> messages(ranks, 0), bytes(ranks, 0);
  for (const sim::Metrics::PhaseRow& row : metrics->phase_rows()) {
    const sim::Metrics::PhaseMetrics& pm = *row.stats;
    ASSERT_EQ(pm.busy.size(), ranks) << row.name;
    ASSERT_EQ(pm.critical_s.size(), ranks) << row.name;
    ASSERT_EQ(pm.critical_steps.size(), ranks) << row.name;
    ASSERT_EQ(pm.comm.size(), ranks) << row.name;
    fold += pm.elapsed;
    steps += pm.supersteps;

    // busy is accumulated from the same clock deltas whose max defines
    // elapsed, so the bound is exact — no tolerance.
    for (int r = 0; r < p; ++r) {
      EXPECT_GE(pm.busy[static_cast<std::size_t>(r)], 0.0) << row.name << " rank " << r;
      EXPECT_LE(pm.busy[static_cast<std::size_t>(r)], pm.elapsed)
          << row.name << " rank " << r;
    }

    // The straggler attribution partitions the phase's barriers exactly and
    // its elapsed time up to summation order.
    EXPECT_EQ(std::accumulate(pm.critical_steps.begin(), pm.critical_steps.end(),
                              std::uint64_t{0}),
              pm.supersteps)
        << row.name;
    const double critical_sum =
        std::accumulate(pm.critical_s.begin(), pm.critical_s.end(), 0.0);
    EXPECT_NEAR(critical_sum, pm.elapsed, 1e-12 + 1e-9 * pm.elapsed) << row.name;

    // critical_rank: first argmax, -1 when the phase never won a barrier.
    const int cr = pm.critical_rank();
    double peak = 0.0;
    int want = -1;
    for (int r = 0; r < p; ++r) {
      if (pm.critical_s[static_cast<std::size_t>(r)] > peak) {
        peak = pm.critical_s[static_cast<std::size_t>(r)];
        want = r;
      }
    }
    EXPECT_EQ(cr, want) << row.name;

    for (int r = 0; r < p; ++r) {
      for (const auto& [to, cell] : pm.comm[static_cast<std::size_t>(r)]) {
        EXPECT_GE(to, 0) << row.name;
        EXPECT_LT(to, p) << row.name;
        EXPECT_TRUE(cell.messages > 0 || cell.bytes > 0) << row.name;
        messages[static_cast<std::size_t>(r)] += cell.messages;
        bytes[static_cast<std::size_t>(r)] += cell.bytes;
      }
      // Scalars since report v2: collectives charge every rank identically.
      messages[static_cast<std::size_t>(r)] += pm.collective_messages;
      bytes[static_cast<std::size_t>(r)] += pm.collective_bytes;
    }
  }

  // The phase attribution spans the whole run: the in-order fold is the
  // report's modeled_s (exact), which tracks the machine's modeled time.
  EXPECT_EQ(fold, metrics->total_elapsed());
  EXPECT_NEAR(fold, machine.modeled_time(), 1e-12 + 1e-9 * machine.modeled_time());
  EXPECT_EQ(steps, machine.supersteps());

  // Integer-exact reconciliation: every counted message/byte lands in
  // exactly one phase's comm matrix or collective tally.
  for (int r = 0; r < p; ++r) {
    const sim::RankCounters& c = machine.counters(r);
    EXPECT_EQ(messages[static_cast<std::size_t>(r)], c.messages_sent) << "rank " << r;
    EXPECT_EQ(bytes[static_cast<std::size_t>(r)], c.bytes_sent) << "rank " << r;
  }
}

// --- Identities on every driver ----------------------------------------

TEST(MetricsIdentities, PilutFactor) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 6.0, 3.0);
  for (const int nranks : kRankCounts) {
    sim::Machine machine(nranks, metrics_opts());
    pilut_factor(machine, make_dist(a, nranks), {.m = 6, .tau = 1e-4, .cap_k = 2});
    expect_identities(machine);
    // The factorization drivers thread their fill/drop tallies through the
    // registry; a real ILUT run both fills and drops.
    std::uint64_t fill = 0, dropped = 0;
    for (int r = 0; r < nranks; ++r) {
      fill += machine.metrics()->counter_value("factor/fill", r);
      dropped += machine.metrics()->counter_value("factor/dropped", r);
    }
    EXPECT_GT(fill, 0u) << "nranks=" << nranks;
    EXPECT_GT(dropped, 0u) << "nranks=" << nranks;
  }
}

TEST(MetricsIdentities, PilutFactorNested) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 5.0, 5.0);
  for (const int nranks : kRankCounts) {
    sim::Machine machine(nranks, metrics_opts());
    pilut_factor_nested(machine, make_dist(a, nranks), {.m = 8, .tau = 1e-4}, {});
    expect_identities(machine);
  }
}

TEST(MetricsIdentities, Pilu0Factor) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 4.0, 2.0);
  for (const int nranks : kRankCounts) {
    sim::Machine machine(nranks, metrics_opts());
    pilu0_factor(machine, make_dist(a, nranks), {.pivot_rel = 1e-12});
    expect_identities(machine);
    // ILU(0) keeps the sparsity pattern: fill is structurally zero; the
    // discarded out-of-pattern updates are its analogue of dropping.
    for (int r = 0; r < nranks; ++r) {
      EXPECT_EQ(machine.metrics()->counter_value("factor/fill", r), 0u);
    }
  }
}

TEST(MetricsIdentities, TrisolveDist) {
  const Csr a = workloads::convection_diffusion_2d(20, 20, 6.0, 3.0);
  const RealVec b = workloads::random_vector(a.n_rows, 5);
  for (const int nranks : kRankCounts) {
    const DistCsr dist = make_dist(a, nranks);
    // Factor on a scratch machine; instrument only the solve so the
    // phase attribution spans a single epoch (no reset involved).
    sim::Machine scratch(nranks, plain_opts());
    const PilutResult fact = pilut_factor(scratch, dist, {.m = 8, .tau = 1e-4});
    const DistTriangularSolver solver(fact.factors, fact.schedule);
    sim::Machine machine(nranks, metrics_opts());
    RealVec x(a.n_rows, 0.0);
    solver.apply(machine, b, x);
    expect_identities(machine);
  }
}

TEST(MetricsIdentities, GmresDist) {
  const Csr a = workloads::convection_diffusion_2d(16, 16, 5.0, 2.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  for (const int nranks : kRankCounts) {
    const DistCsr dist = make_dist(a, nranks);
    const Halo halo = Halo::build(dist);
    sim::Machine scratch(nranks, plain_opts());
    const PilutResult fact = pilut_factor(scratch, dist, {.m = 8, .tau = 1e-4});
    sim::Machine machine(nranks, metrics_opts());
    RealVec x(a.n_rows, 0.0);
    gmres_dist(machine, dist, halo, fact, b, x,
               {.restart = 15, .max_matvecs = 200, .rtol = 1e-8});
    expect_identities(machine);
  }
}

TEST(MetricsIdentities, DistSpmv) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 7.0, 3.0);
  const RealVec x = workloads::random_vector(a.n_rows, 42);
  for (const int nranks : kRankCounts) {
    const DistCsr dist = make_dist(a, nranks);
    const Halo halo = Halo::build(dist);
    sim::Machine machine(nranks, metrics_opts());
    RealVec y(a.n_rows, 0.0);
    dist_spmv(machine, dist, halo, x, y);
    expect_identities(machine);
  }
}

TEST(MetricsIdentities, MisDist) {
  const Csr a = workloads::convection_diffusion_2d(20, 20);
  const Graph g = graph_from_pattern(a);
  for (const int nranks : kRankCounts) {
    const Partition p = partition_kway(g, nranks);
    IdxVec owner = p.part;
    DistGraph graph;
    graph.n_global = g.n;
    graph.owner = &owner;
    graph.verts_of.resize(nranks);
    graph.adj.resize(nranks);
    for (idx v = 0; v < g.n; ++v) graph.verts_of[owner[v]].push_back(v);
    for (int r = 0; r < nranks; ++r) {
      graph.adj[r].resize(graph.verts_of[r].size());
      for (std::size_t i = 0; i < graph.verts_of[r].size(); ++i) {
        const auto nbrs = g.neighbors(graph.verts_of[r][i]);
        graph.adj[r][i].assign(nbrs.begin(), nbrs.end());
      }
    }
    sim::Machine machine(nranks, metrics_opts());
    mis_dist(machine, graph, {.seed = 7, .rounds = 8});
    expect_identities(machine);
  }
}

// --- Collection must not perturb the model ------------------------------

TEST(MetricsOverhead, DisabledMeansNoCollector) {
  sim::Machine machine(4, plain_opts());
  EXPECT_EQ(machine.metrics(), nullptr);
  sim::Machine on(4, metrics_opts());
  EXPECT_NE(on.metrics(), nullptr);
}

TEST(MetricsOverhead, ModeledOutputBitIdenticalOnOrOff) {
  // The collector observes the cost model; it must never feed back into it.
  const Csr a = workloads::jump_coefficient_2d(18, 18, 5.0, 11);
  const DistCsr dist = make_dist(a, 8);
  const auto run = [&](const sim::Machine::Options& opts) {
    sim::Machine machine(8, opts);
    const PilutResult fact = pilut_factor(machine, dist, {.m = 8, .tau = 1e-3});
    std::vector<double> rank_times;
    std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>>
        counters;
    for (int r = 0; r < 8; ++r) {
      rank_times.push_back(machine.rank_time(r));
      const sim::RankCounters& c = machine.counters(r);
      counters.emplace_back(c.flops, c.mem_bytes, c.messages_sent, c.bytes_sent);
    }
    return std::tuple{fact.factors.l.values, fact.factors.u.values,
                      fact.schedule.newnum, machine.modeled_time(),
                      machine.supersteps(), rank_times, counters};
  };
  EXPECT_EQ(run(plain_opts()), run(metrics_opts()));
}

// --- Reports -------------------------------------------------------------

std::string full_run_report(const sim::Machine::Options& opts) {
  // Factor + reset + triangular solve + GMRES on one machine: the report
  // must stay internally consistent across the reset (counter epochs are
  // banked, the residual clock advance flushed into the last phase).
  const int nranks = 8;
  const Csr a = workloads::convection_diffusion_2d(16, 16, 10.0, 20.0);
  const DistCsr dist = make_dist(a, nranks);
  const Halo halo = Halo::build(dist);
  sim::Machine machine(nranks, opts);
  const PilutResult fact = pilut_factor(machine, dist, {.m = 5, .tau = 1e-2});
  const DistTriangularSolver solver(fact.factors, fact.schedule);
  machine.reset();
  const RealVec b(dist.n(), 1.0);
  RealVec x(dist.n(), 0.0);
  solver.apply(machine, b, x);
  RealVec x2(dist.n(), 0.0);
  gmres_dist(machine, dist, halo, fact, b, x2,
             {.restart = 10, .max_matvecs = 100, .rtol = 1e-6});
  std::ostringstream report;
  machine.metrics()->write_report(report, machine,
                                  {{"harness", "\"test_metrics\""}});
  std::ostringstream table;
  machine.metrics()->write_straggler_table(table, machine);
  EXPECT_FALSE(table.str().empty());
  return report.str();
}

TEST(MetricsReport, ByteIdenticalAcrossBackends) {
  // The collector only mutates state rank-locally during a step or on the
  // main thread at a barrier, so the serialized report — not just the
  // modeled numbers — is byte-identical between backends and across
  // repeated threaded runs.
  const std::string sequential = full_run_report(metrics_opts());
  const std::string threaded =
      full_run_report(metrics_opts(sim::Backend::kThreads, 4));
  EXPECT_EQ(sequential, threaded);
  EXPECT_EQ(threaded, full_run_report(metrics_opts(sim::Backend::kThreads, 2)));
  EXPECT_NE(sequential.find("\"schema\": \"ptilu-report-v2\""), std::string::npos);
  EXPECT_NE(sequential.find("\"harness\": \"test_metrics\""), std::string::npos);
}

TEST(MetricsReport, PayloadChecksumStableAndRunInfoInvariant) {
  const Csr a = workloads::convection_diffusion_2d(16, 16);
  const DistCsr dist = make_dist(a, 4);
  const auto checksum = [&](const sim::Machine::Options& opts) {
    sim::Machine machine(4, opts);
    pilut_factor(machine, dist, {.m = 5, .tau = 1e-3});
    return machine.metrics()->payload_checksum(machine);
  };
  const std::uint64_t seq = checksum(metrics_opts());
  EXPECT_EQ(seq, checksum(metrics_opts(sim::Backend::kThreads, 4)));
  EXPECT_NE(seq, 0u);
}

TEST(MetricsReport, ClearDropsEverything) {
  const Csr a = workloads::convection_diffusion_2d(12, 12);
  const DistCsr dist = make_dist(a, 4);
  sim::Machine machine(4, metrics_opts());
  pilut_factor(machine, dist, {.m = 4, .tau = 1e-3});
  machine.metrics()->flush(machine);
  EXPECT_FALSE(machine.metrics()->phase_rows().empty());
  machine.reset();
  machine.metrics()->clear();
  EXPECT_TRUE(machine.metrics()->phase_rows().empty());
  EXPECT_EQ(machine.metrics()->total_elapsed(), 0.0);
  // The collector keeps working after a clear.
  RealVec y(a.n_rows, 0.0);
  dist_spmv(machine, dist, Halo::build(dist), workloads::random_vector(a.n_rows, 3), y);
  expect_identities(machine);
}

}  // namespace
}  // namespace ptilu
