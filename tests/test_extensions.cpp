// Tests for the library extensions: distributed GMRES, equilibration
// scaling, and RCM reordering.
#include <gtest/gtest.h>

#include <cmath>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/graph/rcm.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/krylov/gmres_dist.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/sparse/scaling.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/sparse/vector_ops.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

namespace ptilu {
namespace {

// ------------------------------------------------------ distributed GMRES

struct DistSolveFixture {
  Csr a;
  DistCsr dist;
  Halo halo;
  PilutResult factorization;
  sim::Machine machine;

  DistSolveFixture(const Csr& matrix, int nranks, const PilutOptions& opts)
      : a(matrix),
        dist(DistCsr::create(a, partition_kway(graph_from_pattern(a), nranks))),
        halo(Halo::build(dist)),
        factorization(),
        machine(nranks) {
    factorization = pilut_factor(machine, dist, opts);
  }
};

TEST(GmresDist, MatchesSerialIterationCounts) {
  const Csr a = workloads::convection_diffusion_2d(24, 24, 8.0, 4.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  for (const int nranks : {1, 4, 8}) {
    DistSolveFixture fx(a, nranks, {.m = 8, .tau = 1e-4});
    RealVec x_dist(a.n_rows, 0.0), x_serial(a.n_rows, 0.0);
    const GmresResult par =
        gmres_dist(fx.machine, fx.dist, fx.halo, fx.factorization, b, x_dist,
                   {.restart = 20});
    const GmresResult ser =
        gmres(a, IluPreconditioner(fx.factorization.factors,
                                   fx.factorization.schedule.newnum),
              b, x_serial, {.restart = 20});
    ASSERT_TRUE(par.converged) << "nranks=" << nranks;
    ASSERT_TRUE(ser.converged);
    // Identical arithmetic up to reduction order: counts match (allow one
    // iteration of roundoff slack).
    EXPECT_NEAR(par.matvecs, ser.matvecs, 1) << "nranks=" << nranks;
    EXPECT_LT(max_abs_diff(x_dist, x_serial), 1e-6) << "nranks=" << nranks;
  }
}

TEST(GmresDist, SolvesToTrueResidual) {
  const Csr a = workloads::jump_coefficient_2d(16, 16, 3.0, 5);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  DistSolveFixture fx(a, 4, {.m = 10, .tau = 1e-5});
  RealVec x(a.n_rows, 0.0);
  const GmresResult result =
      gmres_dist(fx.machine, fx.dist, fx.halo, fx.factorization, b, x,
                 {.restart = 30, .rtol = 1e-8});
  ASSERT_TRUE(result.converged);
  RealVec r(a.n_rows);
  residual(a, x, b, r);
  EXPECT_LT(norm2(r) / norm2(b), 1e-6);
}

TEST(GmresDist, ModeledTimeIsPositiveAndScalesDown) {
  const Csr a = workloads::convection_diffusion_2d(48, 48, 6.0, 3.0);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  double prev = 1e300;
  for (const int nranks : {2, 8}) {
    DistSolveFixture fx(a, nranks, {.m = 10, .tau = 1e-4, .cap_k = 2});
    RealVec x(a.n_rows, 0.0);
    const GmresResult result =
        gmres_dist(fx.machine, fx.dist, fx.halo, fx.factorization, b, x, {.restart = 20});
    ASSERT_TRUE(result.converged);
    EXPECT_GT(fx.machine.modeled_time(), 0.0);
    EXPECT_LT(fx.machine.modeled_time(), prev) << "nranks=" << nranks;
    prev = fx.machine.modeled_time();
  }
}

TEST(GmresDist, EveryDotIsASynchronization) {
  const Csr a = workloads::convection_diffusion_2d(12, 12);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  DistSolveFixture fx(a, 2, {.m = 5, .tau = 1e-3});
  RealVec x(a.n_rows, 0.0);
  (void)gmres_dist(fx.machine, fx.dist, fx.halo, fx.factorization, b, x, {.restart = 20});
  // MGS inside GMRES costs at least one superstep per projection.
  EXPECT_GT(fx.machine.supersteps(), 50u);
}

// ------------------------------------------------------------- scaling --

TEST(Scaling, RowEquilibrationUnitInfNorms) {
  const Csr a = workloads::jump_coefficient_2d(12, 12, 5.0, 3);
  const Equilibration eq = equilibrate_rows(a);
  const RealVec norms = row_norms(eq.scaled, 0);
  for (const real norm : norms) EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(Scaling, RuizSweepsBalanceRowsAndColumns) {
  const Csr a = workloads::jump_coefficient_2d(16, 16, 6.0, 9);
  const Equilibration eq = equilibrate(a, 4);
  const RealVec rn = row_norms(eq.scaled, 0);
  const RealVec cn = row_norms(transpose(eq.scaled), 0);
  for (idx i = 0; i < a.n_rows; ++i) {
    EXPECT_NEAR(rn[i], 1.0, 0.1) << "row " << i;
    EXPECT_NEAR(cn[i], 1.0, 0.1) << "col " << i;
  }
}

TEST(Scaling, SolutionMapsBack) {
  // Solve D_r A D_c y = D_r b exactly, map back, check A x = b.
  const Csr a = workloads::jump_coefficient_2d(10, 10, 4.0, 2);
  const Equilibration eq = equilibrate(a);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  const RealVec b_scaled = eq.scale_rhs(b);
  const IluFactors f = ilut(eq.scaled, {.m = a.n_rows, .tau = 0.0});
  RealVec y(a.n_rows);
  ilu_apply(f, b_scaled, y);
  const RealVec x = eq.unscale_solution(y);
  RealVec r(a.n_rows);
  residual(a, x, b, r);
  EXPECT_LT(norm_inf(r) / norm_inf(b), 1e-9);
}

TEST(Scaling, HelpsIlutOnExtremeJumps) {
  // The workload where plain ILUT's relative threshold misfires (strong
  // coefficient contrast): equilibration restores its advantage.
  const Csr a = workloads::jump_coefficient_2d(24, 24, 6.0, 7);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  const auto nmv = [&](const Csr& matrix, const RealVec& rhs) {
    RealVec x(matrix.n_rows, 0.0);
    const GmresResult r =
        gmres(matrix, IluPreconditioner(ilut(matrix, {.m = 10, .tau = 1e-3})), rhs, x,
              {.restart = 30, .max_matvecs = 10000});
    return r.converged ? r.matvecs : 10000;
  };
  const Equilibration eq = equilibrate(a);
  EXPECT_LT(nmv(eq.scaled, eq.scale_rhs(b)), nmv(a, b));
}

TEST(Scaling, RejectsZeroRow) {
  Csr a(2, 2);
  a.row_ptr = {0, 1, 1};
  a.col_idx = {0};
  a.values = {1.0};
  EXPECT_THROW(equilibrate_rows(a), Error);
  EXPECT_THROW(equilibrate(a), Error);
}

// ----------------------------------------------------------------- RCM --

TEST(Rcm, IsAPermutation) {
  const Csr a = workloads::convection_diffusion_2d(15, 17);
  const IdxVec order = rcm_ordering(graph_from_pattern(a));
  EXPECT_TRUE(is_permutation(order, a.n_rows));
}

TEST(Rcm, ReducesBandwidthOfShuffledMatrix) {
  // Shuffle a banded matrix, then RCM must reduce the bandwidth back down.
  const Csr banded = workloads::convection_diffusion_2d(20, 20);
  Rng rng(5);
  IdxVec shuffle(banded.n_rows);
  for (idx i = 0; i < banded.n_rows; ++i) shuffle[i] = i;
  for (idx i = banded.n_rows - 1; i > 0; --i) {
    std::swap(shuffle[i], shuffle[rng.next_index(i + 1)]);
  }
  const Csr shuffled = permute_symmetric(banded, shuffle);
  const idx before = bandwidth(shuffled);
  const Csr reordered = permute_symmetric(shuffled, rcm_ordering(graph_from_pattern(shuffled)));
  const idx after = bandwidth(reordered);
  EXPECT_LT(after * 4, before);
  EXPECT_LE(after, 40);  // grid bandwidth is ~n_side
}

TEST(Rcm, HandlesDisconnectedGraphs) {
  const Graph g = graph_from_edges(7, {{0, 1}, {1, 2}, {4, 5}});
  const IdxVec order = rcm_ordering(g);
  EXPECT_TRUE(is_permutation(order, 7));
}

TEST(Rcm, PreservesSolvability) {
  const Csr a = workloads::convection_diffusion_2d(12, 12, 4.0, 2.0);
  const IdxVec order = rcm_ordering(graph_from_pattern(a));
  const Csr pa = permute_symmetric(a, order);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  RealVec pb(a.n_rows), px(a.n_rows, 0.0), x(a.n_rows);
  for (idx i = 0; i < a.n_rows; ++i) pb[order[i]] = b[i];
  const GmresResult result =
      gmres(pa, IluPreconditioner(ilut(pa, {.m = 8, .tau = 1e-4})), pb, px);
  ASSERT_TRUE(result.converged);
  for (idx i = 0; i < a.n_rows; ++i) x[i] = px[order[i]];
  RealVec ones(a.n_rows, 1.0);
  EXPECT_LT(max_abs_diff(x, ones), 1e-3);
}

TEST(Rcm, BandwidthHelper) {
  CooBuilder b(4, 4);
  b.add(0, 0, 1.0);
  b.add(0, 3, 1.0);
  b.add(2, 1, 1.0);
  EXPECT_EQ(bandwidth(b.to_csr()), 3);
}

}  // namespace
}  // namespace ptilu
