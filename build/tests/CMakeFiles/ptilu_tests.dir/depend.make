# Empty dependencies file for ptilu_tests.
# This may be replaced when dependencies are built.
