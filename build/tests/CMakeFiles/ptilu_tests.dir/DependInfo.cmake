
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dist.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_dist.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_dist.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_ilu.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_ilu.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_ilu.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_krylov.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_krylov.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_krylov.cpp.o.d"
  "/root/repo/tests/test_part.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_part.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_part.cpp.o.d"
  "/root/repo/tests/test_pilu0.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_pilu0.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_pilu0.cpp.o.d"
  "/root/repo/tests/test_pilut.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_pilut.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_pilut.cpp.o.d"
  "/root/repo/tests/test_pilut_nested.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_pilut_nested.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_pilut_nested.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_sparse.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/ptilu_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/ptilu_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptilu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
