file(REMOVE_RECURSE
  "CMakeFiles/ablation_partition.dir/ablation_partition.cpp.o"
  "CMakeFiles/ablation_partition.dir/ablation_partition.cpp.o.d"
  "ablation_partition"
  "ablation_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
