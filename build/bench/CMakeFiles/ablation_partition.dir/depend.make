# Empty dependencies file for ablation_partition.
# This may be replaced when dependencies are built.
