file(REMOVE_RECURSE
  "CMakeFiles/ablation_kcap.dir/ablation_kcap.cpp.o"
  "CMakeFiles/ablation_kcap.dir/ablation_kcap.cpp.o.d"
  "ablation_kcap"
  "ablation_kcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
