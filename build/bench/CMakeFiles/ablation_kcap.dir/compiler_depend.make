# Empty compiler generated dependencies file for ablation_kcap.
# This may be replaced when dependencies are built.
