# Empty dependencies file for table1_factorization.
# This may be replaced when dependencies are built.
