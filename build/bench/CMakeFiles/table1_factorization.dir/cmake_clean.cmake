file(REMOVE_RECURSE
  "CMakeFiles/table1_factorization.dir/table1_factorization.cpp.o"
  "CMakeFiles/table1_factorization.dir/table1_factorization.cpp.o.d"
  "table1_factorization"
  "table1_factorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_factorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
