# Empty compiler generated dependencies file for ablation_ordering.
# This may be replaced when dependencies are built.
