# Empty compiler generated dependencies file for ablation_strategy.
# This may be replaced when dependencies are built.
