file(REMOVE_RECURSE
  "CMakeFiles/ablation_strategy.dir/ablation_strategy.cpp.o"
  "CMakeFiles/ablation_strategy.dir/ablation_strategy.cpp.o.d"
  "ablation_strategy"
  "ablation_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
