file(REMOVE_RECURSE
  "CMakeFiles/table2_trisolve.dir/table2_trisolve.cpp.o"
  "CMakeFiles/table2_trisolve.dir/table2_trisolve.cpp.o.d"
  "table2_trisolve"
  "table2_trisolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_trisolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
