# Empty dependencies file for table2_trisolve.
# This may be replaced when dependencies are built.
