file(REMOVE_RECURSE
  "CMakeFiles/ablation_mis.dir/ablation_mis.cpp.o"
  "CMakeFiles/ablation_mis.dir/ablation_mis.cpp.o.d"
  "ablation_mis"
  "ablation_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
