# Empty compiler generated dependencies file for ablation_mis.
# This may be replaced when dependencies are built.
