# Empty dependencies file for table3_gmres.
# This may be replaced when dependencies are built.
