file(REMOVE_RECURSE
  "CMakeFiles/table3_gmres.dir/table3_gmres.cpp.o"
  "CMakeFiles/table3_gmres.dir/table3_gmres.cpp.o.d"
  "table3_gmres"
  "table3_gmres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_gmres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
