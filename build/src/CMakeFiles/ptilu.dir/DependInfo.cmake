
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/distcsr.cpp" "src/CMakeFiles/ptilu.dir/dist/distcsr.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/dist/distcsr.cpp.o.d"
  "/root/repo/src/dist/mis_dist.cpp" "src/CMakeFiles/ptilu.dir/dist/mis_dist.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/dist/mis_dist.cpp.o.d"
  "/root/repo/src/graph/coloring.cpp" "src/CMakeFiles/ptilu.dir/graph/coloring.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/graph/coloring.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/ptilu.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/mis.cpp" "src/CMakeFiles/ptilu.dir/graph/mis.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/graph/mis.cpp.o.d"
  "/root/repo/src/graph/rcm.cpp" "src/CMakeFiles/ptilu.dir/graph/rcm.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/graph/rcm.cpp.o.d"
  "/root/repo/src/ilu/factors.cpp" "src/CMakeFiles/ptilu.dir/ilu/factors.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/ilu/factors.cpp.o.d"
  "/root/repo/src/ilu/ilut.cpp" "src/CMakeFiles/ptilu.dir/ilu/ilut.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/ilu/ilut.cpp.o.d"
  "/root/repo/src/ilu/trisolve.cpp" "src/CMakeFiles/ptilu.dir/ilu/trisolve.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/ilu/trisolve.cpp.o.d"
  "/root/repo/src/krylov/gmres.cpp" "src/CMakeFiles/ptilu.dir/krylov/gmres.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/krylov/gmres.cpp.o.d"
  "/root/repo/src/krylov/gmres_dist.cpp" "src/CMakeFiles/ptilu.dir/krylov/gmres_dist.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/krylov/gmres_dist.cpp.o.d"
  "/root/repo/src/krylov/preconditioner.cpp" "src/CMakeFiles/ptilu.dir/krylov/preconditioner.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/krylov/preconditioner.cpp.o.d"
  "/root/repo/src/part/bisect.cpp" "src/CMakeFiles/ptilu.dir/part/bisect.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/part/bisect.cpp.o.d"
  "/root/repo/src/part/coarsen.cpp" "src/CMakeFiles/ptilu.dir/part/coarsen.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/part/coarsen.cpp.o.d"
  "/root/repo/src/part/multilevel.cpp" "src/CMakeFiles/ptilu.dir/part/multilevel.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/part/multilevel.cpp.o.d"
  "/root/repo/src/pilut/detail.cpp" "src/CMakeFiles/ptilu.dir/pilut/detail.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/pilut/detail.cpp.o.d"
  "/root/repo/src/pilut/pilu0.cpp" "src/CMakeFiles/ptilu.dir/pilut/pilu0.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/pilut/pilu0.cpp.o.d"
  "/root/repo/src/pilut/pilut.cpp" "src/CMakeFiles/ptilu.dir/pilut/pilut.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/pilut/pilut.cpp.o.d"
  "/root/repo/src/pilut/pilut_nested.cpp" "src/CMakeFiles/ptilu.dir/pilut/pilut_nested.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/pilut/pilut_nested.cpp.o.d"
  "/root/repo/src/pilut/trisolve_dist.cpp" "src/CMakeFiles/ptilu.dir/pilut/trisolve_dist.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/pilut/trisolve_dist.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/ptilu.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/ptilu.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/CMakeFiles/ptilu.dir/sparse/dense.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/sparse/dense.cpp.o.d"
  "/root/repo/src/sparse/mm_io.cpp" "src/CMakeFiles/ptilu.dir/sparse/mm_io.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/sparse/mm_io.cpp.o.d"
  "/root/repo/src/sparse/scaling.cpp" "src/CMakeFiles/ptilu.dir/sparse/scaling.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/sparse/scaling.cpp.o.d"
  "/root/repo/src/sparse/spmv.cpp" "src/CMakeFiles/ptilu.dir/sparse/spmv.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/sparse/spmv.cpp.o.d"
  "/root/repo/src/sparse/vector_ops.cpp" "src/CMakeFiles/ptilu.dir/sparse/vector_ops.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/sparse/vector_ops.cpp.o.d"
  "/root/repo/src/support/check.cpp" "src/CMakeFiles/ptilu.dir/support/check.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/support/check.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/ptilu.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/ptilu.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/support/table.cpp.o.d"
  "/root/repo/src/workloads/grids.cpp" "src/CMakeFiles/ptilu.dir/workloads/grids.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/workloads/grids.cpp.o.d"
  "/root/repo/src/workloads/rhs.cpp" "src/CMakeFiles/ptilu.dir/workloads/rhs.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/workloads/rhs.cpp.o.d"
  "/root/repo/src/workloads/torso.cpp" "src/CMakeFiles/ptilu.dir/workloads/torso.cpp.o" "gcc" "src/CMakeFiles/ptilu.dir/workloads/torso.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
