# Empty dependencies file for ptilu.
# This may be replaced when dependencies are built.
