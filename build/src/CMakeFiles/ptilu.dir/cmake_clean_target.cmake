file(REMOVE_RECURSE
  "libptilu.a"
)
