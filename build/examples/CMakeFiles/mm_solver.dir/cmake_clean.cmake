file(REMOVE_RECURSE
  "CMakeFiles/mm_solver.dir/mm_solver.cpp.o"
  "CMakeFiles/mm_solver.dir/mm_solver.cpp.o.d"
  "mm_solver"
  "mm_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
