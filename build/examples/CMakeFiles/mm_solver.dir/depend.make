# Empty dependencies file for mm_solver.
# This may be replaced when dependencies are built.
