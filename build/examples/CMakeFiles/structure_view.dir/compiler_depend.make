# Empty compiler generated dependencies file for structure_view.
# This may be replaced when dependencies are built.
