file(REMOVE_RECURSE
  "CMakeFiles/structure_view.dir/structure_view.cpp.o"
  "CMakeFiles/structure_view.dir/structure_view.cpp.o.d"
  "structure_view"
  "structure_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structure_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
