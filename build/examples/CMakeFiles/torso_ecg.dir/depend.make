# Empty dependencies file for torso_ecg.
# This may be replaced when dependencies are built.
