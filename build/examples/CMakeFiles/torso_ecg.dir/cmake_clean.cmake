file(REMOVE_RECURSE
  "CMakeFiles/torso_ecg.dir/torso_ecg.cpp.o"
  "CMakeFiles/torso_ecg.dir/torso_ecg.cpp.o.d"
  "torso_ecg"
  "torso_ecg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torso_ecg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
