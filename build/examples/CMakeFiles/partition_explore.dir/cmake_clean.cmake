file(REMOVE_RECURSE
  "CMakeFiles/partition_explore.dir/partition_explore.cpp.o"
  "CMakeFiles/partition_explore.dir/partition_explore.cpp.o.d"
  "partition_explore"
  "partition_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
