# Empty compiler generated dependencies file for partition_explore.
# This may be replaced when dependencies are built.
