# Empty dependencies file for poisson2d_solve.
# This may be replaced when dependencies are built.
