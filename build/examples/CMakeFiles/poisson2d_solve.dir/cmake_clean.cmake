file(REMOVE_RECURSE
  "CMakeFiles/poisson2d_solve.dir/poisson2d_solve.cpp.o"
  "CMakeFiles/poisson2d_solve.dir/poisson2d_solve.cpp.o.d"
  "poisson2d_solve"
  "poisson2d_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson2d_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
