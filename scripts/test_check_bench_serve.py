#!/usr/bin/env python3
"""Fixture-driven tests for check_bench_json.py's serve-schema support.

Runs the validator over every fixture under tests/serve_fixtures/: files
named ok_*.json must validate cleanly, files named bad_*.json must be
rejected (each one violates exactly one documented identity, so a pass
here means the corresponding check actually fires). Fixtures under the
report/ subdirectory are ptilu-serve-report-v1 documents and are routed
through check_serve_report.py instead (same ok_/bad_ convention). On top
of the per-file sweep it exercises the --compare dispatch: serve-vs-serve
with wall data succeeds, --exact files are refused (no wall data), a
payload-checksum mismatch is refused (different batch plans), and a
serve file compared against a wallclock file is refused as cross-family.

Invoked as `test_check_bench_serve.py --cross-backend A.json B.json` it
instead checks backend-identical execution: two --exact serve files must
agree on every field except "backend" and "threads" (which record which
interpreter ran). JSON floats round-trip %.17g exactly, so dict equality
is a bit-exactness test on the modeled results and checksums.

Stdlib only, exit 0 on success, 1 with a FAIL line per broken case.
"""
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO, "scripts", "check_bench_json.py")
REPORT_CHECKER = os.path.join(REPO, "scripts", "check_serve_report.py")
FIXTURES = os.path.join(REPO, "tests", "serve_fixtures")
REPORT_FIXTURES = os.path.join(FIXTURES, "report")


def run_checker(*argv):
    return subprocess.run([sys.executable, CHECKER, *argv],
                          capture_output=True, text=True)


def run_report_checker(*argv):
    return subprocess.run([sys.executable, REPORT_CHECKER, *argv],
                          capture_output=True, text=True)


def cross_backend(path_a, path_b) -> int:
    docs = []
    for path in (path_a, path_b):
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        if doc.get("exact") is not True:
            print(f"FAIL: {path}: cross-backend check needs --exact files "
                  f"(wall timings legitimately differ)")
            return 1
        doc.pop("backend", None)
        doc.pop("threads", None)
        docs.append(doc)
    if docs[0] != docs[1]:
        diffs = [key for key in docs[0] if docs[0][key] != docs[1].get(key)]
        print(f"FAIL: {path_a} and {path_b} disagree outside backend/threads "
              f"(differing keys: {diffs}) — the backends are not bit-identical")
        return 1
    print(f"OK: {path_a} and {path_b} agree on every field except backend/threads")
    return 0


def main() -> int:
    if len(sys.argv) == 4 and sys.argv[1] == "--cross-backend":
        return cross_backend(sys.argv[2], sys.argv[3])
    if len(sys.argv) != 1:
        print(f"usage: {sys.argv[0]} [--cross-backend A.json B.json]")
        return 2

    failures = []

    fixtures = sorted(f for f in os.listdir(FIXTURES) if f.endswith(".json"))
    if not any(f.startswith("ok_") for f in fixtures):
        failures.append(f"no ok_*.json fixtures found in {FIXTURES}")
    if not any(f.startswith("bad_") for f in fixtures):
        failures.append(f"no bad_*.json fixtures found in {FIXTURES}")

    for name in fixtures:
        path = os.path.join(FIXTURES, name)
        proc = run_checker(path)
        if name.startswith("ok_") and proc.returncode != 0:
            failures.append(f"{name}: expected to validate, got:\n{proc.stdout}")
        elif name.startswith("bad_") and proc.returncode == 0:
            failures.append(f"{name}: expected rejection, but it validated")

    # Serve-report fixtures: same ok_/bad_ convention, different checker.
    report_fixtures = sorted(f for f in os.listdir(REPORT_FIXTURES)
                             if f.endswith(".json"))
    if not any(f.startswith("ok_") for f in report_fixtures):
        failures.append(f"no ok_*.json fixtures found in {REPORT_FIXTURES}")
    if not any(f.startswith("bad_") for f in report_fixtures):
        failures.append(f"no bad_*.json fixtures found in {REPORT_FIXTURES}")
    for name in report_fixtures:
        path = os.path.join(REPORT_FIXTURES, name)
        proc = run_report_checker(path)
        if name.startswith("ok_") and proc.returncode != 0:
            failures.append(f"report/{name}: expected to validate, got:\n{proc.stdout}")
        elif name.startswith("bad_") and proc.returncode == 0:
            failures.append(f"report/{name}: expected rejection, but it validated")

    ok_wall = os.path.join(FIXTURES, "ok_wall.json")
    ok_exact = os.path.join(FIXTURES, "ok_exact.json")

    proc = run_checker("--compare", ok_wall, ok_wall)
    if proc.returncode != 0:
        failures.append(f"serve-vs-serve self-compare should succeed:\n{proc.stdout}")
    elif "1.00x" not in proc.stdout:
        failures.append(f"self-compare should report 1.00x ratios:\n{proc.stdout}")

    proc = run_checker("--compare", ok_exact, ok_exact)
    if proc.returncode == 0 or "no wall data" not in proc.stdout:
        failures.append(f"--exact compare should be refused:\n{proc.stdout}")

    with tempfile.TemporaryDirectory() as tmp:
        # A payload_checksum mismatch means the two runs planned different
        # batches, so their throughput is not comparable.
        with open(ok_wall, encoding="utf-8") as handle:
            doc = json.load(handle)
        doc["payload_checksum"] = "feedfacefeedface"
        mutated = os.path.join(tmp, "mutated_checksum.json")
        with open(mutated, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        proc = run_checker("--compare", ok_wall, mutated)
        if proc.returncode == 0 or "payload_checksum mismatch" not in proc.stdout:
            failures.append(
                f"checksum-mismatch compare should be refused:\n{proc.stdout}")

        # Cross-family refusal: a minimal valid wallclock-v1 doc against a
        # serve doc must be rejected regardless of argument order.
        wallclock = os.path.join(tmp, "wallclock.json")
        with open(wallclock, "w", encoding="utf-8") as handle:
            json.dump({
                "schema": "ptilu-bench-wallclock-v1",
                "quick": False, "repetitions": 1,
                "benches": [{"name": "factor", "workload": "G0",
                             "kind": "factorization", "n": 16, "nnz": 64,
                             "checksum": 1.0, "reps_s": [0.5],
                             "median_s": 0.5, "min_s": 0.5, "max_s": 0.5}],
            }, handle)
        for pair in ((wallclock, ok_wall), (ok_wall, wallclock)):
            proc = run_checker("--compare", *pair)
            if proc.returncode == 0 or "cross-family" not in proc.stdout:
                failures.append(
                    f"cross-family compare {pair} should be refused:\n{proc.stdout}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        print(f"{len(failures)} failure(s)")
        return 1
    print(f"OK: {len(fixtures)} bench fixtures, {len(report_fixtures)} report "
          f"fixtures, compare dispatch verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
