#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by ptilu::sim::Trace.

Checks (stdlib only, no third-party dependencies):
  * the file is valid JSON: an object with a "traceEvents" list;
  * every event has the required keys (name, ph, pid, tid);
  * complete events ("ph": "X") carry numeric ts >= 0 and dur >= 0;
  * every pid that owns events has a process_name metadata record;
  * with --ranks N: the set of pids is exactly {0, ..., N-1};
  * per (pid, tid) track, the X events are sorted by ts and do not
    overlap (the simulator's per-rank timelines are sequential), up to a
    sub-nanosecond epsilon for decimal round-tripping.

Exit status 0 on success, 1 on any violation (all violations are listed).

Usage: check_trace.py [--ranks N] trace.json
"""

import argparse
import json
import sys

EPSILON_US = 1e-3  # trace_event timestamps are microseconds; ~1 ns slack


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace_event JSON file to validate")
    parser.add_argument("--ranks", type=int, default=None,
                        help="require exactly this many rank tracks (pids 0..N-1)")
    args = parser.parse_args()

    errors = []

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot parse {args.trace}: {exc}")
        return 1

    if not isinstance(doc, dict):
        print(f"FAIL: top level of {args.trace} is not a JSON object")
        return 1
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"FAIL: {args.trace} has no traceEvents list")
        return 1

    named_pids = set()   # pids with a process_name metadata record
    event_pids = set()   # pids owning any event
    tracks = {}          # (pid, tid) -> list of (ts, dur, name)

    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing required key '{key}'")
        ph = event.get("ph")
        pid = event.get("pid")
        if isinstance(pid, int):
            event_pids.add(pid)
        if ph == "M":
            if event.get("name") == "process_name" and isinstance(pid, int):
                named_pids.add(pid)
        elif ph == "X":
            ts = event.get("ts")
            dur = event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: bad ts {ts!r}")
                continue
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: bad dur {dur!r}")
                continue
            tracks.setdefault((pid, event.get("tid")), []).append(
                (ts, dur, event.get("name")))
        else:
            errors.append(f"{where}: unexpected phase {ph!r}")

    for pid in sorted(event_pids - named_pids):
        errors.append(f"pid {pid} has events but no process_name metadata")

    if args.ranks is not None:
        expected = set(range(args.ranks))
        if named_pids != expected:
            errors.append(
                f"expected rank pids {sorted(expected)}, got {sorted(named_pids)}")

    for (pid, tid), spans in sorted(tracks.items()):
        prev_end = 0.0
        prev_name = None
        for ts, dur, name in spans:
            if ts < prev_end - EPSILON_US:
                errors.append(
                    f"pid {pid} tid {tid}: span '{name}' at ts={ts} overlaps "
                    f"previous span '{prev_name}' ending at {prev_end}")
            prev_end = max(prev_end, ts + dur)
            prev_name = name

    if errors:
        for error in errors:
            print(f"FAIL: {error}")
        print(f"{len(errors)} violation(s) in {args.trace}")
        return 1

    n_x = sum(len(spans) for spans in tracks.values())
    print(f"OK: {args.trace}: {n_x} spans on {len(tracks)} tracks, "
          f"{len(named_pids)} named ranks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
