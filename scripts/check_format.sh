#!/usr/bin/env bash
# Diff-only format check: verifies that *changed* lines satisfy .clang-format
# without ever touching (or judging) untouched code, so the repo never needs
# a bulk reformat. Skips gracefully (exit 0) when the tooling is missing.
#
# Usage: scripts/check_format.sh [--all] [BASE_REF]
#        default: diff-only vs origin/main (falling back to HEAD~1);
#        --all dry-runs clang-format over every tracked C++ file instead.
set -euo pipefail

cd "$(dirname "$0")/.."

FORMAT_BIN="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FORMAT_BIN" >/dev/null 2>&1; then
  echo "check_format.sh: $FORMAT_BIN not found; skipping format check." >&2
  exit 0
fi

if [[ "${1:-}" == "--all" ]]; then
  mapfile -t FILES < <(git ls-files '*.cpp' '*.hpp')
  STATUS=0
  for f in "${FILES[@]}"; do
    if ! "$FORMAT_BIN" --dry-run --Werror "$f" >/dev/null 2>&1; then
      echo "check_format.sh: $f deviates from .clang-format" >&2
      STATUS=1
    fi
  done
  if [[ $STATUS -eq 0 ]]; then
    echo "check_format.sh: all ${#FILES[@]} tracked C++ files are clean."
  fi
  exit $STATUS
fi

# clang-format-diff.py ships with LLVM under various names; find one.
DIFF_TOOL=""
for candidate in clang-format-diff clang-format-diff.py clang-format-diff-15 \
                 clang-format-diff-16 clang-format-diff-17 clang-format-diff-18; do
  if command -v "$candidate" >/dev/null 2>&1; then
    DIFF_TOOL="$candidate"
    break
  fi
done

BASE_REF="${1:-}"
if [[ -z "$BASE_REF" ]]; then
  if git rev-parse --verify -q origin/main >/dev/null; then
    BASE_REF="origin/main"
  else
    BASE_REF="HEAD~1"
  fi
fi

if [[ -n "$DIFF_TOOL" ]]; then
  OUT=$(git diff -U0 --no-color "$BASE_REF" -- '*.cpp' '*.hpp' \
        | "$DIFF_TOOL" -p1 -binary "$FORMAT_BIN") || true
  if [[ -n "$OUT" ]]; then
    echo "check_format.sh: changed lines deviate from .clang-format:" >&2
    echo "$OUT"
    exit 1
  fi
  echo "check_format.sh: changed lines are clean."
  exit 0
fi

# Fallback without clang-format-diff: full-file dry run restricted to files
# the diff touches. Noisier than line-level checking but still diff-scoped.
mapfile -t FILES < <(git diff --name-only --diff-filter=d "$BASE_REF" -- \
  '*.cpp' '*.hpp')
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "check_format.sh: no C++ changes to check."
  exit 0
fi
STATUS=0
for f in "${FILES[@]}"; do
  [[ -f "$f" ]] || continue
  if ! "$FORMAT_BIN" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "check_format.sh: $f deviates from .clang-format (file-level check)" >&2
    STATUS=1
  fi
done
exit $STATUS
