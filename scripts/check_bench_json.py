#!/usr/bin/env python3
"""Validate — and optionally compare — bench JSON files.

Three schema families are understood, dispatched on the file's "schema":

  * ptilu-bench-wallclock-v1/v2/v3/v4 — bench_wallclock output (host seconds);
  * ptilu-bench-scale-v1 — bench_scale output (modeled strong/weak scaling
    sweeps; see docs/SCALING.md);
  * ptilu-bench-serve-v1 — bench_serve output (the preconditioner-serving
    harness: batched-apply queueing benches, concurrent GMRES streams, and
    batched distributed trisolves; see docs/SERVING.md).

bench_scale validation: top level carries "workload", the execution
backend, and a "sweeps" list; every sweep has a mode in {strong, weak} and
a non-empty "points" list with strictly ascending positive rank counts;
every point's modeled phase seconds are positive and sum to
"modeled_total_s" exactly (the harness reads phase boundaries off one
modeled clock); "speedup" (strong) and "efficiency" (both modes) are
recomputed from the sweep's first point and must match. Comparison mode is
wallclock-only — modeled scale numbers are deterministic, so two runs of
the same binary are byte-identical and a speedup ratio is meaningless.

bench_serve validation: top level carries the execution backend, boolean
"smoke"/"quick"/"exact", the workload with positive n/nnz, positive
"requests", the traffic "seed" and "mean_interarrival_s", a "cache"
object whose hit/miss/eviction counters are non-negative, and a 16-hex
"payload_checksum" over the deterministic fields (identical across
backends by contract). Every apply bench must satisfy the queueing
identities: ceil(requests / batch_max) <= batches <= requests, p50 <= p99
(modeled always, wall when present), and solves-per-second must equal
requests / total seconds as recorded. Files written with --exact omit
every wall_* field, so two such files are byte-comparable across runs and
backends. serve-vs-serve comparison pairs apply benches by name, requires
matching payload checksums (same deterministic plan, or the wall ratio is
meaningless), and reports the wall-throughput ratio; --exact files have no
wall data and are refused.

Cross-family --compare (wallclock vs scale vs serve, in any order) is
always refused: the numbers live on different axes.

bench_wallclock validation checks (stdlib only, no third-party dependencies):
  * the file is valid JSON with "schema": "ptilu-bench-wallclock-v2",
    -v3, or -v4 (v1 files, which predate the execution-backend field,
    still validate);
  * top level carries a boolean "quick" and a positive int "repetitions";
    v2+ additionally records the execution backend ("sequential" or
    "threads") and the worker-pool size ("threads", 0 = auto); v4
    additionally records the kernel "variant" ("scalar" or "blocked" —
    the supernodal/register-blocked ILUT path);
  * "benches" is a non-empty list; every entry has a unique name, a
    workload, a kind in {factorization, solve}, positive n/nnz, a
    "reps_s" list of `repetitions` positive floats, and median/min/max
    consistent with the samples (median recomputed, min <= median <= max);
  * a numeric "checksum" (guards against dead-code-eliminated benches);
  * v3+ benches may carry "report_checksum", the 16-hex-digit FNV-1a hash
    of the metrics report payload of an untimed observed rerun (written
    when bench_wallclock runs with --report/--report-dir).

Comparison mode (--compare BASELINE CURRENT) validates both files, pairs
benches by name, requires matching checksums (the two builds must compute
identical results for a wall-clock comparison to be meaningful), and
prints the per-bench speedup baseline_median / current_median. When both
sides carry "report_checksum" and the values differ while the numeric
checksums match, a note flags the phase-distribution shift: the builds
computed the same factors, but distributed modeled time or traffic across
phases differently (a critical-path change worth reading the reports
for). With
--require-speedup X it fails unless every *factorization* bench reaches
that speedup; with --out PATH it writes CURRENT augmented with
"baseline_median_s" and "speedup" per bench (the merged file still
validates under the same schema).

Comparing runs from *different execution backends* is refused by default:
a sequential-vs-threads wall-clock delta measures the backend, not the
code change under test. Pass --allow-backend-mismatch when that backend
speedup is exactly what you mean to measure (checksums still must match —
the backends are bit-identical by contract).

Comparing runs from *different kernel variants* (scalar vs blocked, files
before v4 default to "scalar") is likewise refused by default; pass
--allow-variant-mismatch when the blocked path's speedup over scalar is
the measurement you want. Unlike a backend mismatch, the blocked variant
drops block-wise (Frobenius norm over register tiles), so its factors —
and hence its checksums — legitimately differ from scalar: with
--allow-variant-mismatch a checksum mismatch is reported as a note, not a
failure.

Exit status 0 on success, 1 on any violation.

Usage:
  check_bench_json.py BENCH.json
  check_bench_json.py --compare OLD.json NEW.json [--require-speedup 1.3]
                      [--out MERGED.json] [--allow-backend-mismatch]
                      [--allow-variant-mismatch]
"""

import argparse
import json
import sys

SCHEMAS = {"ptilu-bench-wallclock-v1", "ptilu-bench-wallclock-v2",
           "ptilu-bench-wallclock-v3", "ptilu-bench-wallclock-v4"}
SCALE_SCHEMA = "ptilu-bench-scale-v1"
SERVE_SCHEMA = "ptilu-bench-serve-v1"
# v2 added the execution backend; v3 added optional per-bench
# report_checksum; v4 added the top-level kernel variant.
SCHEMAS_WITH_BACKEND = {"ptilu-bench-wallclock-v2", "ptilu-bench-wallclock-v3",
                        "ptilu-bench-wallclock-v4"}
SCHEMAS_WITH_REPORT = {"ptilu-bench-wallclock-v3", "ptilu-bench-wallclock-v4"}
SCHEMA_V4 = "ptilu-bench-wallclock-v4"
BACKENDS = {"sequential", "threads"}
VARIANTS = {"scalar", "blocked"}
KINDS = {"factorization", "solve"}
REL_EPS = 1e-9


def load(path, errors):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"{path}: cannot parse: {exc}")
        return None


def validate_scale(doc, path, errors):
    """Append ptilu-bench-scale-v1 violations for doc to errors."""
    if not isinstance(doc.get("workload"), str) or not doc.get("workload"):
        errors.append(f"{path}: missing 'workload'")
    if doc.get("backend") not in BACKENDS:
        errors.append(
            f"{path}: 'backend' is {doc.get('backend')!r}, want one of {sorted(BACKENDS)}")
    if not isinstance(doc.get("smoke"), bool):
        errors.append(f"{path}: missing boolean 'smoke'")
    sweeps = doc.get("sweeps")
    if not isinstance(sweeps, list) or not sweeps:
        errors.append(f"{path}: 'sweeps' must be a non-empty list")
        return
    for i, sweep in enumerate(sweeps):
        where = f"{path}: sweeps[{i}]"
        if not isinstance(sweep, dict):
            errors.append(f"{where}: not an object")
            continue
        mode = sweep.get("mode")
        if mode not in ("strong", "weak"):
            errors.append(f"{where}: mode {mode!r} not in ['strong', 'weak']")
            continue
        points = sweep.get("points")
        if not isinstance(points, list) or not points:
            errors.append(f"{where}: 'points' must be a non-empty list")
            continue
        last_p = 0
        for j, pt in enumerate(points):
            pwhere = f"{where}: points[{j}]"
            if not isinstance(pt, dict):
                errors.append(f"{pwhere}: not an object")
                continue
            for key in ("p", "n", "nnz", "rows_max", "supersteps"):
                if not isinstance(pt.get(key), int) or pt.get(key) <= 0:
                    errors.append(f"{pwhere}: '{key}' must be a positive int")
            for key in ("messages", "bytes", "max_fanout"):
                if not isinstance(pt.get(key), int) or pt.get(key) < 0:
                    errors.append(f"{pwhere}: '{key}' must be a non-negative int")
            phase_keys = ("modeled_factor_s", "modeled_trisolve_s", "modeled_gmres_s")
            for key in phase_keys + ("modeled_total_s",):
                if not isinstance(pt.get(key), (int, float)) or pt.get(key) <= 0:
                    errors.append(f"{pwhere}: '{key}' must be a positive number")
                    break
            else:
                total = pt["modeled_total_s"]
                phase_sum = sum(pt[key] for key in phase_keys)
                if abs(phase_sum - total) > 1e-12 * max(1.0, abs(total)):
                    errors.append(
                        f"{pwhere}: phase seconds sum to {phase_sum!r}, "
                        f"'modeled_total_s' is {total!r}")
            if isinstance(pt.get("p"), int):
                if pt["p"] <= last_p:
                    errors.append(f"{pwhere}: 'p' must be strictly ascending per sweep")
                last_p = pt["p"]
        # Speedup/efficiency are relative to the sweep's first point and
        # must be reproducible from the recorded totals.
        first = points[0] if isinstance(points[0], dict) else {}
        t0, p0 = first.get("modeled_total_s"), first.get("p")
        if not isinstance(t0, (int, float)) or not isinstance(p0, int) or t0 <= 0:
            continue
        for j, pt in enumerate(points):
            pwhere = f"{where}: points[{j}]"
            if not isinstance(pt, dict) or not isinstance(pt.get("modeled_total_s"),
                                                          (int, float)):
                continue
            ratio = t0 / pt["modeled_total_s"]
            if mode == "strong":
                for key, want in (("speedup", ratio), ("efficiency", ratio * p0 / pt["p"])):
                    got = pt.get(key)
                    if not isinstance(got, (int, float)):
                        errors.append(f"{pwhere}: missing numeric '{key}'")
                    elif abs(got - want) > 1e-9 * max(1.0, abs(want)):
                        errors.append(f"{pwhere}: '{key}' is {got!r}, recomputed {want!r}")
            else:
                got = pt.get("efficiency")
                if not isinstance(got, (int, float)):
                    errors.append(f"{pwhere}: missing numeric 'efficiency'")
                elif abs(got - ratio) > 1e-9 * max(1.0, abs(ratio)):
                    errors.append(f"{pwhere}: 'efficiency' is {got!r}, recomputed {ratio!r}")


def _schema_family(doc):
    schema = doc.get("schema")
    if schema == SCALE_SCHEMA:
        return "scale"
    if schema == SERVE_SCHEMA:
        return "serve"
    return "wallclock"


def _is_hex16(value):
    return (isinstance(value, str) and len(value) == 16
            and all(c in "0123456789abcdef" for c in value))


def _check_rate(where, doc_part, count, total_key, rate_key, errors):
    """solves-per-second fields must be recomputable from count / total."""
    total = doc_part.get(total_key)
    rate = doc_part.get(rate_key)
    if not isinstance(total, (int, float)) or total <= 0:
        errors.append(f"{where}: '{total_key}' must be a positive number")
        return
    if not isinstance(rate, (int, float)):
        errors.append(f"{where}: missing numeric '{rate_key}'")
        return
    # Wall fields are printed with %.6f, so both the total and the rate carry
    # up to 5e-7 of absolute rounding; bound the recomputed rate accordingly.
    half_ulp = 5e-7
    lo = count / (total + half_ulp) - half_ulp
    hi = count / max(total - half_ulp, 1e-12) + half_ulp
    if not lo <= rate <= hi:
        errors.append(
            f"{where}: '{rate_key}' is {rate!r}, but {count} / {total!r} "
            f"seconds allows only [{lo:.6g}, {hi:.6g}]")


def _check_quantiles(where, doc_part, p50_key, p99_key, errors):
    p50, p99 = doc_part.get(p50_key), doc_part.get(p99_key)
    for key, value in ((p50_key, p50), (p99_key, p99)):
        if not isinstance(value, (int, float)) or value < 0:
            errors.append(f"{where}: '{key}' must be a non-negative number")
            return
    if p50 > p99:
        errors.append(f"{where}: '{p50_key}' ({p50!r}) exceeds '{p99_key}' ({p99!r})")


def validate_serve(doc, path, errors):
    """Append ptilu-bench-serve-v1 violations for doc to errors."""
    if doc.get("backend") not in BACKENDS:
        errors.append(
            f"{path}: 'backend' is {doc.get('backend')!r}, want one of {sorted(BACKENDS)}")
    if not isinstance(doc.get("threads"), int) or doc.get("threads") < 0:
        errors.append(f"{path}: 'threads' must be a non-negative int")
    for key in ("smoke", "quick", "exact"):
        if not isinstance(doc.get(key), bool):
            errors.append(f"{path}: missing boolean '{key}'")
    if not isinstance(doc.get("workload"), str) or not doc.get("workload"):
        errors.append(f"{path}: missing 'workload'")
    for key in ("n", "nnz", "requests"):
        if not isinstance(doc.get(key), int) or doc.get(key) <= 0:
            errors.append(f"{path}: '{key}' must be a positive int")
    if not isinstance(doc.get("seed"), int) or doc.get("seed") < 0:
        errors.append(f"{path}: 'seed' must be a non-negative int")
    mean = doc.get("mean_interarrival_s")
    if not isinstance(mean, (int, float)) or mean <= 0:
        errors.append(f"{path}: 'mean_interarrival_s' must be a positive number")
    cache = doc.get("cache")
    if not isinstance(cache, dict):
        errors.append(f"{path}: missing 'cache' object")
    else:
        if not isinstance(cache.get("capacity"), int) or cache.get("capacity") < 1:
            errors.append(f"{path}: cache 'capacity' must be a positive int")
        for key in ("hits", "misses", "evictions"):
            if not isinstance(cache.get(key), int) or cache.get(key) < 0:
                errors.append(f"{path}: cache '{key}' must be a non-negative int")
    if not _is_hex16(doc.get("payload_checksum")):
        errors.append(
            f"{path}: 'payload_checksum' must be 16 lowercase hex digits, "
            f"got {doc.get('payload_checksum')!r}")
    exact = doc.get("exact") is True
    requests = doc.get("requests") if isinstance(doc.get("requests"), int) else None

    benches = doc.get("apply_benches")
    if not isinstance(benches, list) or not benches:
        errors.append(f"{path}: 'apply_benches' must be a non-empty list")
        benches = []
    seen = set()
    for i, bench in enumerate(benches):
        where = f"{path}: apply_benches[{i}]"
        if not isinstance(bench, dict):
            errors.append(f"{where}: not an object")
            continue
        name = bench.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing name")
        elif name in seen:
            errors.append(f"{where}: duplicate name {name!r}")
        else:
            seen.add(name)
        batch_max = bench.get("batch_max")
        if not isinstance(batch_max, int) or batch_max < 1:
            errors.append(f"{where}: 'batch_max' must be a positive int")
            batch_max = None
        batches = bench.get("batches")
        if not isinstance(batches, int) or batches < 1:
            errors.append(f"{where}: 'batches' must be a positive int")
        elif requests is not None and batch_max is not None:
            # A FIFO server at cap k needs at least ceil(requests/k) batches
            # and never more than one batch per request.
            least = -(-requests // batch_max)
            if not least <= batches <= requests:
                errors.append(
                    f"{where}: 'batches' is {batches}, queueing bounds say "
                    f"[{least}, {requests}]")
        if not isinstance(bench.get("checksum"), (int, float)):
            errors.append(f"{where}: missing numeric checksum")
        if requests is not None:
            _check_rate(where, bench, requests, "modeled_total_s",
                        "modeled_solves_per_s", errors)
        _check_quantiles(where, bench, "modeled_p50_s", "modeled_p99_s", errors)
        wall_keys = [k for k in bench if k.startswith("wall_")]
        if exact and wall_keys:
            errors.append(
                f"{where}: --exact files must omit wall fields, found {sorted(wall_keys)}")
        elif not exact and wall_keys:
            if requests is not None:
                _check_rate(where, bench, requests, "wall_total_s",
                            "wall_solves_per_s", errors)
            _check_quantiles(where, bench, "wall_p50_s", "wall_p99_s", errors)

    streams = doc.get("stream_benches")
    if not isinstance(streams, list) or not streams:
        errors.append(f"{path}: 'stream_benches' must be a non-empty list")
        streams = []
    for i, bench in enumerate(streams):
        where = f"{path}: stream_benches[{i}]"
        if not isinstance(bench, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("streams", "solves"):
            if not isinstance(bench.get(key), int) or bench.get(key) < 1:
                errors.append(f"{where}: '{key}' must be a positive int")
        matvecs = bench.get("matvecs")
        if not isinstance(matvecs, int) or matvecs < 0:
            errors.append(f"{where}: 'matvecs' must be a non-negative int")
        elif isinstance(bench.get("solves"), int) and matvecs < bench["solves"]:
            errors.append(
                f"{where}: {matvecs} matvecs for {bench['solves']} solves — "
                f"every GMRES solve costs at least one matvec")
        if not isinstance(bench.get("checksum"), (int, float)):
            errors.append(f"{where}: missing numeric checksum")
        wall_keys = [k for k in bench if k.startswith("wall_")]
        if exact and wall_keys:
            errors.append(
                f"{where}: --exact files must omit wall fields, found {sorted(wall_keys)}")
        elif not exact and wall_keys and isinstance(bench.get("solves"), int):
            _check_rate(where, bench, bench["solves"], "wall_total_s",
                        "wall_solves_per_s", errors)

    dists = doc.get("dist_benches")
    if not isinstance(dists, list) or not dists:
        errors.append(f"{path}: 'dist_benches' must be a non-empty list")
        dists = []
    for i, bench in enumerate(dists):
        where = f"{path}: dist_benches[{i}]"
        if not isinstance(bench, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("procs", "k"):
            if not isinstance(bench.get(key), int) or bench.get(key) < 1:
                errors.append(f"{where}: '{key}' must be a positive int")
        batched = bench.get("modeled_batched_s")
        single = bench.get("modeled_single_s")
        speedup = bench.get("modeled_speedup")
        ok = True
        for key, value in (("modeled_batched_s", batched), ("modeled_single_s", single)):
            if not isinstance(value, (int, float)) or value <= 0:
                errors.append(f"{where}: '{key}' must be a positive number")
                ok = False
        if ok:
            if not isinstance(speedup, (int, float)):
                errors.append(f"{where}: missing numeric 'modeled_speedup'")
            else:
                want = single / batched
                if abs(speedup - want) > 1e-9 * max(1.0, abs(want)):
                    errors.append(
                        f"{where}: 'modeled_speedup' is {speedup!r}, recomputed {want!r}")
        for key in ("batched_messages", "single_messages"):
            if not isinstance(bench.get(key), int) or bench.get(key) < 0:
                errors.append(f"{where}: '{key}' must be a non-negative int")
        if (isinstance(bench.get("batched_messages"), int)
                and isinstance(bench.get("single_messages"), int)
                and bench["batched_messages"] > bench["single_messages"]):
            errors.append(
                f"{where}: batched sweep sent more messages "
                f"({bench['batched_messages']}) than the single-RHS solves "
                f"({bench['single_messages']}) — batching must amortize, not add")
        if not isinstance(bench.get("checksum"), (int, float)):
            errors.append(f"{where}: missing numeric checksum")


def compare_serve(baseline, current, args, errors):
    """serve-vs-serve: wall throughput ratio over matching deterministic plans."""
    base_backend = baseline.get("backend", "sequential")
    cur_backend = current.get("backend", "sequential")
    if base_backend != cur_backend and not args.allow_backend_mismatch:
        errors.append(
            f"execution backend mismatch (baseline {base_backend!r}, current "
            f"{cur_backend!r}): the throughput ratio would measure the backend, "
            f"not the change under test — pass --allow-backend-mismatch if that "
            f"is intended")
        return
    if baseline.get("payload_checksum") != current.get("payload_checksum"):
        errors.append(
            f"payload_checksum mismatch (baseline "
            f"{baseline.get('payload_checksum')!r}, current "
            f"{current.get('payload_checksum')!r}): the runs planned different "
            f"batches, so their wall throughput is not comparable")
        return
    if baseline.get("exact") or current.get("exact"):
        errors.append("--exact serve files carry no wall data to compare")
        return
    base_by_name = {b["name"]: b for b in baseline["apply_benches"]}
    rows = []
    for bench in current["apply_benches"]:
        base = base_by_name.get(bench["name"])
        if base is None:
            print(f"note: bench {bench['name']!r} has no baseline entry, skipped")
            continue
        ratio = bench["wall_solves_per_s"] / base["wall_solves_per_s"]
        rows.append((bench["name"], base["wall_solves_per_s"],
                     bench["wall_solves_per_s"], ratio))
    if not rows:
        errors.append("no comparable apply benches between the two files")
        return
    print(f"{'bench':<20} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for name, base_rate, cur_rate, ratio in rows:
        print(f"{name:<20} {base_rate:>10.1f}/s {cur_rate:>10.1f}/s {ratio:>7.2f}x")


def validate(doc, path, errors):
    """Append schema violations for doc to errors."""
    if not isinstance(doc, dict):
        errors.append(f"{path}: top level is not a JSON object")
        return
    if doc.get("schema") == SCALE_SCHEMA:
        validate_scale(doc, path, errors)
        return
    if doc.get("schema") == SERVE_SCHEMA:
        validate_serve(doc, path, errors)
        return
    if doc.get("schema") not in SCHEMAS:
        errors.append(
            f"{path}: schema is {doc.get('schema')!r}, want one of "
            f"{sorted(SCHEMAS | {SCALE_SCHEMA, SERVE_SCHEMA})}")
    if doc.get("schema") in SCHEMAS_WITH_BACKEND:
        if doc.get("backend") not in BACKENDS:
            errors.append(
                f"{path}: 'backend' is {doc.get('backend')!r}, want one of {sorted(BACKENDS)}")
        threads = doc.get("threads")
        if not isinstance(threads, int) or threads < 0:
            errors.append(f"{path}: 'threads' must be a non-negative int")
    if doc.get("schema") == SCHEMA_V4:
        if doc.get("variant") not in VARIANTS:
            errors.append(
                f"{path}: 'variant' is {doc.get('variant')!r}, want one of "
                f"{sorted(VARIANTS)}")
        # Blocked runs record their amalgamation knobs for reproducibility.
        if doc.get("variant") == "blocked":
            if not isinstance(doc.get("panel"), int) or doc.get("panel") < 1:
                errors.append(f"{path}: blocked runs need a positive int 'panel'")
            slack = doc.get("slack")
            if not isinstance(slack, (int, float)) or slack < 0:
                errors.append(f"{path}: blocked runs need a non-negative 'slack'")
        else:
            for key in ("panel", "slack"):
                if key in doc:
                    errors.append(f"{path}: '{key}' only applies to blocked runs")
    elif "variant" in doc:
        errors.append(f"{path}: 'variant' requires schema v4")
    if not isinstance(doc.get("quick"), bool):
        errors.append(f"{path}: missing boolean 'quick'")
    reps = doc.get("repetitions")
    if not isinstance(reps, int) or reps < 1:
        errors.append(f"{path}: 'repetitions' must be a positive int")
        reps = None
    benches = doc.get("benches")
    if not isinstance(benches, list) or not benches:
        errors.append(f"{path}: 'benches' must be a non-empty list")
        return
    seen = set()
    for i, bench in enumerate(benches):
        where = f"{path}: benches[{i}]"
        if not isinstance(bench, dict):
            errors.append(f"{where}: not an object")
            continue
        name = bench.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing name")
        elif name in seen:
            errors.append(f"{where}: duplicate name {name!r}")
        else:
            seen.add(name)
        if not isinstance(bench.get("workload"), str):
            errors.append(f"{where}: missing workload")
        if bench.get("kind") not in KINDS:
            errors.append(f"{where}: kind {bench.get('kind')!r} not in {sorted(KINDS)}")
        for key in ("n", "nnz"):
            if not isinstance(bench.get(key), int) or bench.get(key) <= 0:
                errors.append(f"{where}: '{key}' must be a positive int")
        if not isinstance(bench.get("checksum"), (int, float)):
            errors.append(f"{where}: missing numeric checksum")
        report_checksum = bench.get("report_checksum")
        if report_checksum is not None:
            if doc.get("schema") not in SCHEMAS_WITH_REPORT:
                errors.append(f"{where}: report_checksum requires schema v3+")
            elif (not isinstance(report_checksum, str) or len(report_checksum) != 16
                  or any(c not in "0123456789abcdef" for c in report_checksum)):
                errors.append(
                    f"{where}: report_checksum must be 16 lowercase hex digits, "
                    f"got {report_checksum!r}")
        samples = bench.get("reps_s")
        if (not isinstance(samples, list) or not samples
                or not all(isinstance(s, (int, float)) and s > 0 for s in samples)):
            errors.append(f"{where}: 'reps_s' must be a list of positive numbers")
            continue
        if reps is not None and len(samples) != reps:
            errors.append(f"{where}: {len(samples)} samples, expected {reps}")
        ordered = sorted(samples)
        mid = len(ordered) // 2
        median = ordered[mid] if len(ordered) % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
        for key, want in (("median_s", median), ("min_s", ordered[0]), ("max_s", ordered[-1])):
            got = bench.get(key)
            if not isinstance(got, (int, float)):
                errors.append(f"{where}: missing numeric '{key}'")
            elif abs(got - want) > REL_EPS + 1e-6 * abs(want):
                errors.append(f"{where}: '{key}' is {got}, samples say {want}")


def compare(baseline, current, args, errors):
    # v1 files predate Options::backend, when only the sequential
    # interpreter existed.
    base_backend = baseline.get("backend", "sequential")
    cur_backend = current.get("backend", "sequential")
    if base_backend != cur_backend and not args.allow_backend_mismatch:
        errors.append(
            f"execution backend mismatch (baseline {base_backend!r}, current "
            f"{cur_backend!r}): the speedup would measure the backend, not the "
            f"change under test — pass --allow-backend-mismatch if that is intended")
        return
    # Pre-v4 files predate the blocked kernels, when only scalar existed.
    base_variant = baseline.get("variant", "scalar")
    cur_variant = current.get("variant", "scalar")
    variant_mismatch = base_variant != cur_variant
    if variant_mismatch and not args.allow_variant_mismatch:
        errors.append(
            f"kernel variant mismatch (baseline {base_variant!r}, current "
            f"{cur_variant!r}): the speedup would mix scalar and blocked kernels "
            f"— pass --allow-variant-mismatch if measuring the blocked path's "
            f"speedup is intended")
        return
    base_by_name = {b["name"]: b for b in baseline["benches"]}
    rows = []
    for bench in current["benches"]:
        name = bench["name"]
        base = base_by_name.get(name)
        if base is None:
            print(f"note: bench {name!r} has no baseline entry, skipped")
            continue
        if abs(base["checksum"] - bench["checksum"]) > 1e-9 * max(
                1.0, abs(base["checksum"])):
            if variant_mismatch:
                # Blocked dropping is block-wise, so its factors (and hence
                # checksums) legitimately differ from scalar's.
                print(f"note: {name}: checksum differs (baseline "
                      f"{base['checksum']!r}, current {bench['checksum']!r}) — "
                      f"expected across kernel variants")
            else:
                errors.append(
                    f"{name}: checksum mismatch (baseline {base['checksum']!r}, "
                    f"current {bench['checksum']!r}) — builds disagree numerically")
                continue
        base_report = base.get("report_checksum")
        cur_report = bench.get("report_checksum")
        if (base_report is not None and cur_report is not None
                and base_report != cur_report):
            print(f"note: {name}: report_checksum differs (baseline {base_report}, "
                  f"current {cur_report}) — same numerical result, but the builds "
                  f"distribute modeled time/traffic across phases differently; "
                  f"compare the run reports for the critical-path shift")
        speedup = base["median_s"] / bench["median_s"]
        rows.append((name, bench["kind"], base["median_s"], bench["median_s"], speedup))
        bench["baseline_median_s"] = base["median_s"]
        bench["speedup"] = round(speedup, 4)
    if not rows:
        errors.append("no comparable benches between the two files")
        return
    print(f"{'bench':<20} {'kind':<14} {'baseline':>10} {'current':>10} {'speedup':>8}")
    for name, kind, base_s, cur_s, speedup in rows:
        print(f"{name:<20} {kind:<14} {base_s:>9.4f}s {cur_s:>9.4f}s {speedup:>7.2f}x")
    if args.require_speedup is not None:
        for name, kind, _, _, speedup in rows:
            if kind == "factorization" and speedup < args.require_speedup:
                errors.append(
                    f"{name}: speedup {speedup:.2f}x below required "
                    f"{args.require_speedup:.2f}x")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(current, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+",
                        help="one file to validate, or two with --compare")
    parser.add_argument("--compare", action="store_true",
                        help="treat files as BASELINE CURRENT and report speedups")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless every factorization bench reaches this speedup")
    parser.add_argument("--out", default=None,
                        help="with --compare: write CURRENT merged with baseline medians")
    parser.add_argument("--allow-backend-mismatch", action="store_true",
                        help="permit --compare across different execution backends "
                             "(e.g. to measure the threaded backend's speedup)")
    parser.add_argument("--allow-variant-mismatch", action="store_true",
                        help="permit --compare across different kernel variants "
                             "(e.g. to measure the blocked path's speedup over "
                             "scalar); checksum mismatches become notes")
    args = parser.parse_args()

    if args.compare and len(args.files) != 2:
        parser.error("--compare needs exactly two files: BASELINE CURRENT")
    if not args.compare and len(args.files) != 1:
        parser.error("validation mode takes exactly one file")

    errors = []
    docs = [load(path, errors) for path in args.files]
    for doc, path in zip(docs, args.files):
        if doc is not None:
            validate(doc, path, errors)
    if not errors and args.compare:
        families = [_schema_family(doc) for doc in docs]
        if families[0] != families[1]:
            errors.append(
                f"--compare refuses cross-family files ({families[0]} vs "
                f"{families[1]}): their metrics measure different things")
        elif families[0] == "scale":
            errors.append(
                "--compare supports wallclock and serve files only: bench_scale "
                "output is deterministic modeled time, so a run-over-run ratio "
                "is meaningless")
        elif families[0] == "serve":
            compare_serve(docs[0], docs[1], args, errors)
        else:
            compare(docs[0], docs[1], args, errors)

    if errors:
        for error in errors:
            print(f"FAIL: {error}")
        print(f"{len(errors)} violation(s)")
        return 1
    if not args.compare:
        doc = docs[0]
        if doc.get("schema") == SCALE_SCHEMA:
            npoints = sum(len(s["points"]) for s in doc["sweeps"])
            print(f"OK: {args.files[0]}: {len(doc['sweeps'])} sweeps, "
                  f"{npoints} points, workload {doc['workload']}, "
                  f"backend {doc['backend']}")
        elif doc.get("schema") == SERVE_SCHEMA:
            print(f"OK: {args.files[0]}: {len(doc['apply_benches'])} apply benches, "
                  f"{len(doc['stream_benches'])} stream benches, "
                  f"{len(doc['dist_benches'])} dist benches, "
                  f"{doc['requests']} requests, backend {doc['backend']}, "
                  f"exact={str(doc['exact']).lower()}")
        else:
            print(f"OK: {args.files[0]}: {len(doc['benches'])} benches, "
                  f"{doc['repetitions']} repetitions, "
                  f"backend {doc.get('backend', 'sequential')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
