#!/usr/bin/env python3
"""Validate ptilu-report-v2 run reports (sim::Metrics::write_report output).

v1 compatibility: reports with "schema": "ptilu-report-v1" (written before
the sparse-routing change) are still accepted and validated under the v1
rules. The v1 -> v2 delta is:
  * "collective_messages"/"collective_bytes" were nranks-long per-rank
    arrays in v1; Machine::collective charges every rank identically, so
    the arrays were rank-uniform by construction and v2 stores the single
    per-rank value as a scalar;
  * v2 phases additionally carry a sparse-comm summary ("comm_pairs",
    "comm_messages", "comm_bytes", "comm_max_fanout") recomputable from
    the "comm" cell list — validated exactly below.
Everything else (identities, reconciliation, counters) is unchanged.

Checks (stdlib only, no third-party dependencies):

Structural:
  * "schema" is "ptilu-report-v2" (or legacy v1), "ranks" a positive int,
    "run" an object;
  * every phase has a unique name and per-rank arrays of exactly `ranks`
    entries (busy_s, idle_s, critical_s, critical_steps); scalar
    collective_messages/collective_bytes (v2) or per-rank arrays (v1);
    comm cells carry in-range from/to ranks and non-negative integer
    messages/bytes; the v2 comm summary matches the cell list exactly;
  * every counter's "total" equals the exact sum of its "per_rank" slots.

Bit-exact identities (no tolerance — the collector guarantees them, see
include/ptilu/sim/metrics.hpp):
  * idle_s[r] == elapsed_s - busy_s[r] for every phase and rank, and
    0 <= busy_s[r] <= elapsed_s: per rank, busy + idle == elapsed with no
    float drift, so per phase the busy/idle split sums to ranks * elapsed;
  * "modeled_s" equals the in-order fold of the phases' elapsed_s (the
    serialized order is the attribution order, so the fold reproduces the
    machine's modeled time bit-for-bit);
  * critical_rank is the first rank attaining max(critical_s), -1 when the
    phase never won a barrier;
  * sum over phases of comm-matrix messages (plus collective_messages)
    from rank r equals rank_counters.messages_sent[r], and likewise for
    bytes — every counted message is attributed to exactly one phase;
  * sum of critical_steps over ranks equals the phase's supersteps, and
    the phases' supersteps sum to the top-level "supersteps".

Tolerant cross-checks (1e-9 relative — different summation orders):
  * per phase, sum over ranks of critical_s matches elapsed_s;
  * "imbalance" matches max(busy)/mean(busy) recomputed from busy_s.

Exit status 0 when every file passes, 1 otherwise.

Usage:
  check_report.py REPORT.json [MORE.json ...]
"""

import json
import math
import sys

SCHEMA = "ptilu-report-v2"
LEGACY_SCHEMAS = ("ptilu-report-v1",)
PER_RANK_REAL = ("busy_s", "idle_s", "critical_s")
PER_RANK_INT = ("critical_steps",)
REL_EPS = 1e-9


def close(a, b):
    return abs(a - b) <= REL_EPS * max(1.0, abs(a), abs(b))


def validate(doc, path, errors):
    if not isinstance(doc, dict):
        errors.append(f"{path}: top level is not a JSON object")
        return
    schema = doc.get("schema")
    if schema != SCHEMA and schema not in LEGACY_SCHEMAS:
        errors.append(f"{path}: schema is {schema!r}, want {SCHEMA!r} "
                      f"(or legacy {', '.join(LEGACY_SCHEMAS)})")
        return
    legacy_v1 = schema == "ptilu-report-v1"
    ranks = doc.get("ranks")
    if not isinstance(ranks, int) or ranks < 1:
        errors.append(f"{path}: 'ranks' must be a positive int")
        return
    if not isinstance(doc.get("run"), dict):
        errors.append(f"{path}: 'run' must be an object")
    if not isinstance(doc.get("supersteps"), int) or doc["supersteps"] < 0:
        errors.append(f"{path}: 'supersteps' must be a non-negative int")

    phases = doc.get("phases")
    if not isinstance(phases, list):
        errors.append(f"{path}: 'phases' must be a list")
        return

    seen_names = set()
    fold = 0.0  # in-order fold reproducing modeled_s bit-for-bit
    total_supersteps = 0
    sent_messages = [0] * ranks
    sent_bytes = [0] * ranks
    for i, phase in enumerate(phases):
        where = f"{path}: phases[{i}]"
        if not isinstance(phase, dict):
            errors.append(f"{where}: not an object")
            continue
        name = phase.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing name")
        elif name in seen_names:
            errors.append(f"{where}: duplicate phase {name!r}")
        else:
            seen_names.add(name)
            where = f"{path}: phase {name!r}"

        elapsed = phase.get("elapsed_s")
        if not isinstance(elapsed, (int, float)) or elapsed < 0:
            errors.append(f"{where}: 'elapsed_s' must be a non-negative number")
            continue
        fold += elapsed
        if not isinstance(phase.get("supersteps"), int) or phase["supersteps"] < 0:
            errors.append(f"{where}: 'supersteps' must be a non-negative int")
            continue
        total_supersteps += phase["supersteps"]

        shaped = True
        for key in PER_RANK_REAL + PER_RANK_INT:
            values = phase.get(key)
            if not isinstance(values, list) or len(values) != ranks:
                errors.append(f"{where}: '{key}' must have {ranks} entries")
                shaped = False
            elif key in PER_RANK_INT and not all(
                    isinstance(v, int) and v >= 0 for v in values):
                errors.append(f"{where}: '{key}' entries must be non-negative ints")
                shaped = False
        # Collective-tree accounting: per-rank arrays in legacy v1, scalars
        # (the rank-uniform per-rank value) in v2.
        for key in ("collective_messages", "collective_bytes"):
            value = phase.get(key)
            if legacy_v1:
                if (not isinstance(value, list) or len(value) != ranks
                        or not all(isinstance(v, int) and v >= 0 for v in value)):
                    errors.append(f"{where}: '{key}' must be {ranks} "
                                  f"non-negative ints (v1)")
                    shaped = False
            elif not isinstance(value, int) or value < 0:
                errors.append(f"{where}: '{key}' must be a non-negative int (v2)")
                shaped = False
        if not shaped:
            continue

        # busy + idle == elapsed, exactly, per rank.
        for r in range(ranks):
            busy = phase["busy_s"][r]
            idle = phase["idle_s"][r]
            if not 0.0 <= busy <= elapsed:
                errors.append(
                    f"{where}: busy_s[{r}] = {busy!r} outside [0, {elapsed!r}]")
            if idle != elapsed - busy:
                errors.append(
                    f"{where}: idle_s[{r}] = {idle!r} != elapsed - busy = "
                    f"{elapsed - busy!r} (identity must be bit-exact)")

        # The straggler attribution partitions the phase's barriers/time.
        if sum(phase["critical_steps"]) != phase["supersteps"]:
            errors.append(
                f"{where}: critical_steps sum to {sum(phase['critical_steps'])}, "
                f"want supersteps = {phase['supersteps']}")
        critical_sum = sum(phase["critical_s"])
        if not close(critical_sum, elapsed):
            errors.append(
                f"{where}: critical_s sums to {critical_sum!r}, want elapsed_s "
                f"= {elapsed!r}")
        peak = max(phase["critical_s"])
        want_rank = phase["critical_s"].index(peak) if peak > 0.0 else -1
        if phase.get("critical_rank") != want_rank:
            errors.append(
                f"{where}: critical_rank is {phase.get('critical_rank')!r}, "
                f"want first argmax {want_rank}")

        # Load imbalance: max busy over mean busy.
        mean_busy = sum(phase["busy_s"]) / ranks
        want_imbalance = max(phase["busy_s"]) / mean_busy if mean_busy > 0 else 0.0
        if not close(phase.get("imbalance", math.nan), want_imbalance):
            errors.append(
                f"{where}: imbalance is {phase.get('imbalance')!r}, recomputed "
                f"{want_imbalance!r}")

        comm = phase.get("comm")
        if not isinstance(comm, list):
            errors.append(f"{where}: 'comm' must be a list")
            continue
        fanout = [0] * ranks
        cell_messages = 0
        cell_bytes = 0
        for j, cell in enumerate(comm):
            cw = f"{where}: comm[{j}]"
            if not isinstance(cell, dict):
                errors.append(f"{cw}: not an object")
                continue
            src, dst = cell.get("from"), cell.get("to")
            if not all(isinstance(v, int) and 0 <= v < ranks for v in (src, dst)):
                errors.append(f"{cw}: from/to must be ranks in [0, {ranks})")
                continue
            msgs, nbytes = cell.get("messages"), cell.get("bytes")
            if not all(isinstance(v, int) and v >= 0 for v in (msgs, nbytes)):
                errors.append(f"{cw}: messages/bytes must be non-negative ints")
                continue
            if msgs == 0 and nbytes == 0:
                errors.append(f"{cw}: empty cell should not be serialized")
            fanout[src] += 1
            cell_messages += msgs
            cell_bytes += nbytes
            sent_messages[src] += msgs
            sent_bytes[src] += nbytes
        if legacy_v1:
            for r in range(ranks):
                sent_messages[r] += phase["collective_messages"][r]
                sent_bytes[r] += phase["collective_bytes"][r]
        else:
            for r in range(ranks):
                sent_messages[r] += phase["collective_messages"]
                sent_bytes[r] += phase["collective_bytes"]
            # v2 sparse-comm summary: recomputable exactly from the cells.
            want_summary = {
                "comm_pairs": len(comm),
                "comm_messages": cell_messages,
                "comm_bytes": cell_bytes,
                "comm_max_fanout": max(fanout) if fanout else 0,
            }
            for key, want in want_summary.items():
                if phase.get(key) != want:
                    errors.append(f"{where}: '{key}' is {phase.get(key)!r}, "
                                  f"recomputed {want} from the comm cells")

    if total_supersteps != doc.get("supersteps"):
        errors.append(
            f"{path}: top-level supersteps is {doc.get('supersteps')!r}, but the "
            f"phases account for {total_supersteps}")
    if fold != doc.get("modeled_s"):
        errors.append(
            f"{path}: modeled_s is {doc.get('modeled_s')!r}, but the in-order "
            f"fold of phase elapsed_s gives {fold!r} (must be bit-exact)")

    counters = doc.get("counters")
    if not isinstance(counters, list):
        errors.append(f"{path}: 'counters' must be a list")
    else:
        seen_counters = set()
        for i, counter in enumerate(counters):
            where = f"{path}: counters[{i}]"
            if not isinstance(counter, dict) or not isinstance(counter.get("name"), str):
                errors.append(f"{where}: not an object with a name")
                continue
            name = counter["name"]
            if name in seen_counters:
                errors.append(f"{where}: duplicate counter {name!r}")
            seen_counters.add(name)
            per_rank = counter.get("per_rank")
            if (not isinstance(per_rank, list) or len(per_rank) != ranks
                    or not all(isinstance(v, int) and v >= 0 for v in per_rank)):
                errors.append(f"{where}: 'per_rank' must be {ranks} non-negative ints")
                continue
            if counter.get("total") != sum(per_rank):
                errors.append(
                    f"{where}: total {counter.get('total')!r} != sum(per_rank) "
                    f"= {sum(per_rank)}")

    rank_counters = doc.get("rank_counters")
    if not isinstance(rank_counters, dict):
        errors.append(f"{path}: 'rank_counters' must be an object")
        return
    for key in ("flops", "mem_bytes", "messages_sent", "bytes_sent"):
        values = rank_counters.get(key)
        if (not isinstance(values, list) or len(values) != ranks
                or not all(isinstance(v, int) and v >= 0 for v in values)):
            errors.append(f"{path}: rank_counters.{key} must be {ranks} "
                          f"non-negative ints")
            return
    # Every counted message/byte is attributed to exactly one phase's comm
    # matrix or collective tally — integer-exact reconciliation.
    if sent_messages != rank_counters["messages_sent"]:
        errors.append(
            f"{path}: comm-matrix message totals {sent_messages} do not "
            f"reconcile with rank_counters.messages_sent "
            f"{rank_counters['messages_sent']}")
    if sent_bytes != rank_counters["bytes_sent"]:
        errors.append(
            f"{path}: comm-matrix byte totals {sent_bytes} do not reconcile "
            f"with rank_counters.bytes_sent {rank_counters['bytes_sent']}")


def main() -> int:
    paths = sys.argv[1:]
    if not paths:
        print(__doc__)
        return 1
    errors = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{path}: cannot parse: {exc}")
            continue
        before = len(errors)
        validate(doc, path, errors)
        if len(errors) == before:
            print(f"OK: {path}: {doc['ranks']} ranks, {doc['supersteps']} "
                  f"supersteps, {len(doc['phases'])} phases, modeled "
                  f"{doc['modeled_s']:.6g} s")
    if errors:
        for error in errors:
            print(f"FAIL: {error}")
        print(f"{len(errors)} violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
