#!/usr/bin/env python3
"""Validate ptilu-serve-report-v1 files (bench_serve --serve-report output).

The serve report is a self-checking artifact: it carries the inputs of
every number it states, so this checker re-derives the whole document
from first principles and demands bit-for-bit agreement (doubles travel
as %.17g, which round-trips IEEE-754 binary64; Python floats are the
same doubles, and max/+/* on them reproduce the C++ folds exactly).

Identities enforced, per apply section:
  * the batch plan is a FIFO partition of the arrival schedule, and every
    batch's start_s reproduces the queueing recursion
    start = max(server_free, last member arrival) bit-exactly, with
    arrival_gated recording whether the server sat idle;
  * queue_wait_s[c] == start_s - arrival_s[c] exactly;
  * the decomposition re-sums: service_s == cache_resolve_s +
    (stream_shared_s + sum of column_solve_s folded in column order);
  * straggler_column is the FIRST argmax of column_solve_s;
  * the lane rollup reproduces exactly: busy from per-lane folds, elapsed
    from per-batch maxima, idle = elapsed - busy, elections tallied from
    the per-batch winners, imbalance = max busy / mean busy;
  * the histogram is rebuilt latency-by-latency from the batch details
    (latency = start + service - arrival, bucketed via math.frexp with
    the spec's dyadic edges) and must match the serialized buckets,
    underflow, overflow, and total (which equals the requests served);
  * hist_p50/p99 reproduce the nearest-rank bucket walk, exact_p50/p99
    reproduce the nearest-rank sorted-sample read, and the histogram
    quantiles bound the exact ones within the documented resolution
    (exact < hist <= exact * (1 + 1/sub_buckets) for regular buckets).

Per stream section: every round's cost_s[s] == matvecs[s] * step_s, the
round barriers at its first-argmax straggler, and the per-stream rollup
identities mirror the lane ones.

Telemetry counters are re-tallied: requests and batches from the apply
sections, straggler elections = batches + stream rounds, histogram
merges = sections * (shards - 1).

The report must carry no backend/threads identity (it is byte-comparable
across backends by contract) and no wall_* fields.

With --trace TRACE.json the serve lifecycle Chrome trace is additionally
validated: trace_event structure, non-negative spans, and the
requests/batches process metadata.

Exit status 0 on success, 1 on any violation.

Usage:
  check_serve_report.py REPORT.json [--trace TRACE.json]
"""

import argparse
import json
import math
import sys

SCHEMA = "ptilu-serve-report-v1"


def is_hex16(value):
    return (isinstance(value, str) and len(value) == 16
            and all(c in "0123456789abcdef" for c in value))


def is_num(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class HistSpec:
    """Bucket geometry mirror of serve::LatencyHistogram (bit-exact)."""

    def __init__(self, sub, min_exp, max_exp):
        self.sub = sub
        self.min_exp = min_exp
        self.max_exp = max_exp
        self.count = (max_exp - min_exp) * sub

    def lower(self, index):
        octave = self.min_exp + index // self.sub
        return math.ldexp(1.0 + (index % self.sub) / self.sub, octave)

    def upper(self, index):
        return self.lower(index + 1)

    def bucket_index(self, v):
        if v < self.lower(0):
            return -1
        if v >= math.ldexp(1.0, self.max_exp):
            return self.count
        frac, exp2 = math.frexp(v)  # v = frac * 2**exp2, frac in [0.5, 1)
        octave = exp2 - 1
        # (frac*2 - 1) * sub is exact for power-of-two sub (Sterbenz).
        return (octave - self.min_exp) * self.sub + int((frac * 2.0 - 1.0) * self.sub)

    def quantile(self, q, total, underflow, buckets):
        """Nearest-rank walk over sparse [index, count] pairs."""
        rank = max(1, min(math.ceil(q * float(total)), total))
        cum = underflow
        if rank <= cum:
            return self.lower(0)
        for index, count in buckets:
            cum += count
            if rank <= cum:
                return self.upper(index)
        return math.ldexp(1.0, self.max_exp)


def exact_quantile(ordered, q):
    """serve::SortedSample::quantile: nearest-rank ceil(q*N), clamped."""
    rank = math.ceil(q * float(len(ordered)))
    index = 0 if rank == 0 else rank - 1
    return ordered[min(index, len(ordered) - 1)]


def first_argmax(values):
    winner = 0
    for i in range(1, len(values)):
        if values[i] > values[winner]:
            winner = i
    return winner


def check_rollup(where, rollup, expect_elapsed, expect_busy, expect_elections,
                 errors):
    """busy/idle/elections/imbalance identities shared by lanes and streams."""
    lanes = len(expect_busy)
    for key, want in (("elapsed_s", expect_elapsed), ("busy_s", expect_busy),
                      ("idle_s", [expect_elapsed - b for b in expect_busy]),
                      ("elections", expect_elections)):
        got = rollup.get(key)
        if got != want:
            errors.append(f"{where}: '{key}' is {got!r}, recomputed {want!r}")
    busy_sum = 0.0
    busy_max = 0.0
    for busy in expect_busy:
        busy_sum += busy
        busy_max = max(busy_max, busy)
    mean = busy_sum / float(lanes)
    want = busy_max / mean if mean > 0.0 else 1.0
    if rollup.get("imbalance") != want:
        errors.append(
            f"{where}: 'imbalance' is {rollup.get('imbalance')!r}, recomputed {want!r}")


def check_apply_section(section, spec, shards, path, i, errors):
    """Returns (requests_covered, batches) for the telemetry re-tally."""
    where = f"{path}: apply[{i}]"
    for key in ("cap", "n"):
        if not isinstance(section.get(key), int) or section.get(key) < 1:
            errors.append(f"{where}: '{key}' must be a positive int")
    if not is_hex16(section.get("fingerprint")):
        errors.append(f"{where}: 'fingerprint' must be 16 lowercase hex digits")
    costs = section.get("costs")
    if not isinstance(costs, dict):
        errors.append(f"{where}: missing 'costs' object")
        return 0, 0
    for key in ("cache_resolve_s", "stream_shared_s", "column_solve_s"):
        if not is_num(costs.get(key)) or costs.get(key) < 0:
            errors.append(f"{where}: costs '{key}' must be a non-negative number")
            return 0, 0
    batches = section.get("batches")
    if not isinstance(batches, list) or not batches:
        errors.append(f"{where}: 'batches' must be a non-empty list")
        return 0, 0
    cap = section.get("cap") if isinstance(section.get("cap"), int) else 10**9

    server_free = 0.0
    covered = 0
    latencies = []
    lane_busy = [0.0] * cap
    lane_elapsed = 0.0
    lane_elections = [0] * cap
    for b, batch in enumerate(batches):
        bwhere = f"{where}: batches[{b}]"
        if not isinstance(batch, dict):
            errors.append(f"{bwhere}: not an object")
            return 0, 0
        count = batch.get("count")
        if not isinstance(count, int) or count < 1 or count > cap:
            errors.append(f"{bwhere}: 'count' must be an int in [1, cap]")
            return 0, 0
        if batch.get("first") != covered:
            errors.append(
                f"{bwhere}: 'first' is {batch.get('first')!r} — the plan must be "
                f"a FIFO partition (expected {covered})")
            return 0, 0
        arrivals = batch.get("arrival_s")
        waits = batch.get("queue_wait_s")
        cols = batch.get("column_solve_s")
        for key, vec in (("arrival_s", arrivals), ("queue_wait_s", waits),
                         ("column_solve_s", cols)):
            if (not isinstance(vec, list) or len(vec) != count
                    or not all(is_num(v) for v in vec)):
                errors.append(f"{bwhere}: '{key}' must list {count} numbers")
                return 0, 0
        if any(a2 <= a1 for a1, a2 in zip(arrivals, arrivals[1:])):
            errors.append(f"{bwhere}: member arrivals must be strictly increasing")
        # The queueing recursion, re-run bit-exactly.
        start = max(server_free, arrivals[-1])
        if batch.get("start_s") != start:
            errors.append(
                f"{bwhere}: 'start_s' is {batch.get('start_s')!r}, the queue "
                f"recursion says {start!r}")
        gated = arrivals[-1] > server_free
        if batch.get("arrival_gated") is not gated:
            errors.append(
                f"{bwhere}: 'arrival_gated' is {batch.get('arrival_gated')!r}, "
                f"recursion says {gated!r}")
        if not isinstance(batch.get("cache_hit"), bool):
            errors.append(f"{bwhere}: missing boolean 'cache_hit'")
        for c in range(count):
            want = start - arrivals[c]
            if waits[c] != want:
                errors.append(
                    f"{bwhere}: queue_wait_s[{c}] is {waits[c]!r}, "
                    f"start - arrival is {want!r}")
        # The decomposition re-sums in the documented fold order.
        acc = costs["stream_shared_s"]
        for c in range(count):
            acc += cols[c]
        service = batch.get("service_s")
        if service != costs["cache_resolve_s"] + acc:
            errors.append(
                f"{bwhere}: 'service_s' is {service!r}, decomposition re-sums to "
                f"{costs['cache_resolve_s'] + acc!r}")
            return 0, 0
        winner = first_argmax(cols)
        if batch.get("straggler_column") != winner:
            errors.append(
                f"{bwhere}: 'straggler_column' is {batch.get('straggler_column')!r}, "
                f"first-argmax of column_solve_s is {winner}")
        # Lane rollup folds, in the exact C++ order.
        lane_elapsed += cols[winner] if cols else 0.0
        for c in range(count):
            lane_busy[c] += cols[c]
        lane_elections[winner] += 1
        done = start + service
        for c in range(count):
            latencies.append(done - arrivals[c])
        server_free = done
        covered += count

    lanes = section.get("lanes")
    if not isinstance(lanes, dict):
        errors.append(f"{where}: missing 'lanes' rollup")
    else:
        check_rollup(f"{where}: lanes", lanes, lane_elapsed, lane_busy,
                     lane_elections, errors)

    # Rebuild the histogram from the latencies the batch details imply.
    latency = section.get("latency")
    if not isinstance(latency, dict) or not isinstance(latency.get("hist"), dict):
        errors.append(f"{where}: missing 'latency.hist'")
        return covered, len(batches)
    hist = latency["hist"]
    rebuilt = {}
    underflow = overflow = 0
    for value in latencies:
        index = spec.bucket_index(value)
        if index < 0:
            underflow += 1
        elif index >= spec.count:
            overflow += 1
        else:
            rebuilt[index] = rebuilt.get(index, 0) + 1
    want_buckets = [[k, rebuilt[k]] for k in sorted(rebuilt)]
    hwhere = f"{where}: latency.hist"
    if hist.get("total") != covered:
        errors.append(
            f"{hwhere}: 'total' is {hist.get('total')!r}, the section served "
            f"{covered} requests — bucket counts must sum to requests")
    if hist.get("underflow") != underflow or hist.get("overflow") != overflow:
        errors.append(
            f"{hwhere}: under/overflow is ({hist.get('underflow')!r}, "
            f"{hist.get('overflow')!r}), rebuilt ({underflow}, {overflow})")
    if hist.get("buckets") != want_buckets:
        errors.append(
            f"{hwhere}: serialized buckets differ from the histogram rebuilt "
            f"from the batch details")
        return covered, len(batches)

    buckets = hist["buckets"]
    ordered = sorted(latencies)
    bound = 1.0 + 1.0 / spec.sub
    for q, hist_key, exact_key in ((0.50, "hist_p50", "exact_p50"),
                                   (0.99, "hist_p99", "exact_p99")):
        hist_q = spec.quantile(q, covered, underflow, buckets)
        exact_q = exact_quantile(ordered, q)
        if latency.get(hist_key) != hist_q:
            errors.append(
                f"{where}: '{hist_key}' is {latency.get(hist_key)!r}, the bucket "
                f"walk says {hist_q!r}")
        if latency.get(exact_key) != exact_q:
            errors.append(
                f"{where}: '{exact_key}' is {latency.get(exact_key)!r}, the "
                f"sorted sample says {exact_q!r}")
        # Resolution bound, for quantiles landing in regular buckets.
        if hist_q not in (spec.lower(0), math.ldexp(1.0, spec.max_exp)):
            if not exact_q < hist_q <= exact_q * bound:
                errors.append(
                    f"{where}: '{hist_key}' {hist_q!r} violates the resolution "
                    f"bound around exact {exact_q!r} (factor {bound!r})")
    return covered, len(batches)


def check_stream_section(stream, path, errors):
    """Returns the round count for the telemetry re-tally."""
    where = f"{path}: stream"
    streams = stream.get("streams")
    solves = stream.get("solves")
    step = stream.get("step_s")
    if not isinstance(streams, int) or streams < 1:
        errors.append(f"{where}: 'streams' must be a positive int")
        return 0
    if not isinstance(solves, int) or solves < 1:
        errors.append(f"{where}: 'solves' must be a positive int")
        return 0
    if not is_num(step) or step <= 0:
        errors.append(f"{where}: 'step_s' must be a positive number")
        return 0
    rounds = stream.get("rounds")
    want_rounds = -(-solves // streams)
    if not isinstance(rounds, list) or len(rounds) != want_rounds:
        errors.append(
            f"{where}: expected {want_rounds} rounds (ceil(solves / streams)), "
            f"got {len(rounds) if isinstance(rounds, list) else rounds!r}")
        return 0
    elapsed = 0.0
    busy = [0.0] * streams
    elections = [0] * streams
    for r, rnd in enumerate(rounds):
        rwhere = f"{where}: rounds[{r}]"
        matvecs = rnd.get("matvecs")
        cost = rnd.get("cost_s")
        for key, vec in (("matvecs", matvecs), ("cost_s", cost)):
            if not isinstance(vec, list) or len(vec) != streams:
                errors.append(f"{rwhere}: '{key}' must list {streams} entries")
                return 0
        for s in range(streams):
            q = r * streams + s
            if q >= solves:
                if matvecs[s] != 0 or cost[s] != 0.0:
                    errors.append(
                        f"{rwhere}: stream {s} has no solve in the tail round "
                        f"but carries work")
                continue
            if not isinstance(matvecs[s], int) or matvecs[s] < 0:
                errors.append(f"{rwhere}: matvecs[{s}] must be a non-negative int")
                return 0
            want = float(matvecs[s]) * step
            if cost[s] != want:
                errors.append(
                    f"{rwhere}: cost_s[{s}] is {cost[s]!r}, "
                    f"matvecs * step_s is {want!r}")
        winner = first_argmax(cost)
        if rnd.get("straggler") != winner:
            errors.append(
                f"{rwhere}: 'straggler' is {rnd.get('straggler')!r}, first-argmax "
                f"of cost_s is {winner}")
        if rnd.get("elapsed_s") != cost[winner]:
            errors.append(
                f"{rwhere}: 'elapsed_s' is {rnd.get('elapsed_s')!r}, the "
                f"straggler's cost is {cost[winner]!r}")
        elapsed += cost[winner]
        for s in range(streams):
            busy[s] += cost[s]
        elections[winner] += 1
    rollup = stream.get("rollup")
    if not isinstance(rollup, dict):
        errors.append(f"{where}: missing 'rollup'")
    else:
        check_rollup(f"{where}: rollup", rollup, elapsed, busy, elections, errors)
    return len(rounds)


def validate_report(doc, path, errors):
    if not isinstance(doc, dict):
        errors.append(f"{path}: top level is not a JSON object")
        return
    if doc.get("schema") != SCHEMA:
        errors.append(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
        return
    # Backend/thread identity and wall fields are banned: the report must
    # be byte-identical across backends.
    def scan_banned(node, where):
        if isinstance(node, dict):
            for key, value in node.items():
                if key in ("backend", "threads") or key.startswith("wall_"):
                    errors.append(
                        f"{where}: field {key!r} is banned — the serve report "
                        f"must be backend- and wall-clock-free")
                scan_banned(value, f"{where}.{key}")
        elif isinstance(node, list):
            for i, value in enumerate(node):
                scan_banned(value, f"{where}[{i}]")
    scan_banned(doc, path)

    if not isinstance(doc.get("run"), dict):
        errors.append(f"{path}: missing 'run' object")
    spec_obj = doc.get("histogram_spec")
    if not isinstance(spec_obj, dict):
        errors.append(f"{path}: missing 'histogram_spec'")
        return
    sub = spec_obj.get("sub_buckets")
    min_exp = spec_obj.get("min_exp")
    max_exp = spec_obj.get("max_exp")
    shards = spec_obj.get("shards")
    if (not isinstance(sub, int) or sub < 1 or (sub & (sub - 1)) != 0
            or not isinstance(min_exp, int) or not isinstance(max_exp, int)
            or min_exp >= max_exp):
        errors.append(
            f"{path}: histogram_spec needs power-of-two 'sub_buckets' and "
            f"int octaves min_exp < max_exp")
        return
    spec = HistSpec(sub, min_exp, max_exp)
    if spec_obj.get("bucket_count") != spec.count:
        errors.append(
            f"{path}: 'bucket_count' is {spec_obj.get('bucket_count')!r}, the "
            f"octave range implies {spec.count}")
    if spec_obj.get("relative_error_bound") != 1.0 / sub:
        errors.append(
            f"{path}: 'relative_error_bound' is "
            f"{spec_obj.get('relative_error_bound')!r}, want {1.0 / sub!r}")
    if not isinstance(shards, int) or shards < 1:
        errors.append(f"{path}: histogram_spec 'shards' must be a positive int")
        shards = 1

    sections = doc.get("apply")
    if not isinstance(sections, list) or not sections:
        errors.append(f"{path}: 'apply' must be a non-empty list")
        return
    total_requests = 0
    total_batches = 0
    for i, section in enumerate(sections):
        if not isinstance(section, dict):
            errors.append(f"{path}: apply[{i}]: not an object")
            continue
        covered, nbatches = check_apply_section(section, spec, shards, path, i, errors)
        total_requests += covered
        total_batches += nbatches

    rounds = 0
    if "stream" in doc:
        if not isinstance(doc["stream"], dict):
            errors.append(f"{path}: 'stream' must be an object")
        else:
            rounds = check_stream_section(doc["stream"], path, errors)

    telemetry = doc.get("telemetry")
    if not isinstance(telemetry, dict):
        errors.append(f"{path}: missing 'telemetry' counters")
        return
    for key, want in (("requests", total_requests), ("batches", total_batches),
                      ("straggler_elections", total_batches + rounds),
                      ("histogram_merges", len(sections) * (shards - 1))):
        if telemetry.get(key) != want:
            errors.append(
                f"{path}: telemetry '{key}' is {telemetry.get(key)!r}, "
                f"re-tally says {want}")


def validate_trace(doc, path, errors):
    """Light structural validation of the serve lifecycle Chrome trace."""
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        errors.append(f"{path}: not a trace_event JSON object")
        return
    events = doc["traceEvents"]
    named_pids = set()
    span_names = set()
    for i, event in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("M", "X"):
            errors.append(f"{where}: unexpected phase {phase!r}")
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(event.get("tid"), int):
            errors.append(f"{where}: pid/tid must be ints")
        if phase == "M":
            if event.get("name") == "process_name":
                named_pids.add(event.get("pid"))
        else:
            for key in ("ts", "dur"):
                if not is_num(event.get(key)) or event.get(key) < 0:
                    errors.append(f"{where}: '{key}' must be a non-negative number")
            if event.get("cat") != "serve":
                errors.append(f"{where}: span category must be 'serve'")
            span_names.add(event.get("name"))
            if event.get("pid") not in named_pids:
                errors.append(f"{where}: span pid {event.get('pid')!r} has no "
                              f"process_name metadata")
    for name in ("wait", "solve", "resolve", "solve batch"):
        if events and name not in span_names:
            errors.append(f"{path}: no {name!r} spans — lifecycle export incomplete")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report", help="ptilu-serve-report-v1 JSON file")
    parser.add_argument("--trace", default=None,
                        help="also validate a bench_serve --serve-trace file")
    args = parser.parse_args()

    errors = []
    try:
        with open(args.report, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"{args.report}: cannot parse: {exc}")
        doc = None
    if doc is not None:
        validate_report(doc, args.report, errors)
    if args.trace is not None:
        try:
            with open(args.trace, "r", encoding="utf-8") as handle:
                trace = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{args.trace}: cannot parse: {exc}")
            trace = None
        if trace is not None:
            validate_trace(trace, args.trace, errors)

    if errors:
        for error in errors:
            print(f"FAIL: {error}")
        print(f"{len(errors)} violation(s)")
        return 1
    napply = len(doc["apply"])
    nrounds = len(doc.get("stream", {}).get("rounds", []))
    print(f"OK: {args.report}: {napply} apply sections, "
          f"{doc['telemetry']['batches']} batches, "
          f"{doc['telemetry']['requests']} requests, {nrounds} stream rounds"
          + (f"; trace {args.trace} OK" if args.trace else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
