#!/usr/bin/env python3
"""Documentation consistency checker (stdlib only).

Two classes of doc rot that have actually bitten this repo:

  * dead relative links — a file gets renamed (TRACING.md moving into
    docs/, a script growing a new name) and a `[text](path)` reference in
    another document keeps pointing at the old location;
  * stale test-count claims — prose like "the suite's 363 tests" written
    when the suite had 363 tests and never touched again.

Link check: every markdown link whose target is not an absolute URL
(http/https/mailto) or a pure in-page anchor must resolve, relative to the
document's own directory, to an existing file or directory (an #anchor
suffix is stripped first; anchors themselves are not verified).

Test-count check: matches "N tests" / "N unit tests" claims. With
--expect-tests N every claim must equal N (CI passes the live number from
`ctest -N`); without it, all claims must at least agree with each other.
Historical logs are exempt from both checks — CHANGES.md and ROADMAP.md
record what *was* true, and ISSUE.md/PAPER.md/PAPERS.md/SNIPPETS.md are
task/reference imports, not maintained documentation.

Env-var check: the "## Environment variables" table in docs/REFERENCE.md
must list exactly the PTILU_* variables the code actually reads — every
`getenv("PTILU_...")` occurrence under src/, include/, bench/, examples/
and tools/ needs a table row, and every table row needs a live getenv
(tests/ is exempt: tests save/restore variables rather than consume them).

Usage:
  check_docs.py [--repo DIR] [--expect-tests N]

Exit status 0 when clean, 1 on any violation.
"""

import argparse
import pathlib
import re
import sys

# Maintained documentation: subject to both checks. Everything else under
# the repo (historical logs, imported references) is exempt.
DOC_GLOBS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "CONTRIBUTING.md",
             "docs/*.md")

# [text](target) — target group stops at the first ')' so nested parens in
# link text don't confuse it; images (![alt](...)) match the same way.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
TEST_COUNT_RE = re.compile(r"\b(\d{2,})\s+(?:unit\s+|tier-1\s+)?tests\b")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_files(repo):
    files = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(repo.glob(pattern)))
    return files


def check_links(path, repo, errors):
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            bare = target.split("#", 1)[0]
            if not bare:
                continue
            resolved = (path.parent / bare).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(repo)}:{lineno}: dead link "
                    f"'{target}' (no such file {bare!r} relative to "
                    f"{path.parent.relative_to(repo) or '.'})")


GETENV_RE = re.compile(r'getenv\(\s*"(PTILU_[A-Z0-9_]+)"')
ENV_ROW_RE = re.compile(r"^\|\s*`(PTILU_[A-Z0-9_]+)`")
ENV_SOURCE_DIRS = ("src", "include", "bench", "examples", "tools")


def documented_env_vars(reference, errors):
    """PTILU_* rows of REFERENCE.md's '## Environment variables' table."""
    documented = {}  # name -> lineno
    in_section = False
    for lineno, line in enumerate(
            reference.read_text(encoding="utf-8").splitlines(), start=1):
        if line.startswith("## "):
            in_section = line.strip() == "## Environment variables"
            continue
        if in_section:
            match = ENV_ROW_RE.match(line)
            if match:
                documented.setdefault(match.group(1), lineno)
    if not documented:
        errors.append(f"{reference.name}: no '## Environment variables' table rows found")
    return documented


def check_env_vars(repo, errors):
    reference = repo / "docs" / "REFERENCE.md"
    if not reference.exists():
        errors.append("docs/REFERENCE.md missing: env-var table cannot be checked")
        return
    documented = documented_env_vars(reference, errors)

    used = {}  # name -> first "file:line"
    for dirname in ENV_SOURCE_DIRS:
        for path in sorted((repo / dirname).rglob("*")):
            if path.suffix not in (".cpp", ".hpp", ".h"):
                continue
            for lineno, line in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), start=1):
                for match in GETENV_RE.finditer(line):
                    used.setdefault(match.group(1),
                                    f"{path.relative_to(repo)}:{lineno}")

    for name in sorted(set(used) - set(documented)):
        errors.append(
            f"{used[name]}: getenv(\"{name}\") has no row in docs/REFERENCE.md's "
            f"'## Environment variables' table")
    for name in sorted(set(documented) - set(used)):
        errors.append(
            f"docs/REFERENCE.md:{documented[name]}: documents `{name}` but no "
            f"source under {'/'.join(ENV_SOURCE_DIRS)} reads it (stale row?)")


def check_test_counts(files, repo, expect, errors):
    claims = []  # (path, lineno, count)
    for path in files:
        for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                      start=1):
            for match in TEST_COUNT_RE.finditer(line):
                claims.append((path, lineno, int(match.group(1))))
    if expect is not None:
        for path, lineno, count in claims:
            if count != expect:
                errors.append(
                    f"{path.relative_to(repo)}:{lineno}: claims {count} tests, "
                    f"the suite has {expect} (update the prose or drop the number)")
    elif claims:
        counts = {count for _, _, count in claims}
        if len(counts) > 1:
            spots = ", ".join(f"{p.relative_to(repo)}:{ln}={c}" for p, ln, c in claims)
            errors.append(
                f"test-count claims disagree ({spots}): at least one is stale")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo", default=None,
                        help="repository root (default: this script's parent's parent)")
    parser.add_argument("--expect-tests", type=int, default=None,
                        help="require every 'N tests' claim to equal this number")
    args = parser.parse_args()

    repo = pathlib.Path(args.repo).resolve() if args.repo else \
        pathlib.Path(__file__).resolve().parent.parent
    files = doc_files(repo)
    if not files:
        print(f"FAIL: no documentation files found under {repo}")
        return 1

    errors = []
    for path in files:
        check_links(path, repo, errors)
    check_test_counts(files, repo, args.expect_tests, errors)
    check_env_vars(repo, errors)

    if errors:
        for error in errors:
            print(f"FAIL: {error}")
        print(f"{len(errors)} violation(s)")
        return 1
    print(f"OK: {len(files)} documents, links resolve, env-var table is live, "
          f"test-count claims "
          f"{'match ' + str(args.expect_tests) if args.expect_tests is not None else 'agree'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
