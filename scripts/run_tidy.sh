#!/usr/bin/env bash
# Run clang-tidy over the project sources using the exported compilation
# database. Skips gracefully (exit 0) when clang-tidy is not installed so
# the script is safe to wire into environments without LLVM tooling.
#
# Usage:
#   scripts/run_tidy.sh [--build-dir DIR] [--all | --changed [BASE_REF]] [files...]
#
#   --build-dir DIR   build tree holding compile_commands.json (default:
#                     first of build, build/release, build/asan-ubsan that
#                     has one)
#   --all             lint every tracked .cpp (whole-repo mode, used by the
#                     tidy-all CI job)
#   --changed [REF]   only lint .cpp files changed vs REF (default: origin/main,
#                     falling back to HEAD~1). This is the default mode.
#   files...          explicit files to lint (overrides --all/--changed)
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  echo "run_tidy.sh: $TIDY_BIN not found; skipping lint (install clang-tidy to enable)." >&2
  exit 0
fi

BUILD_DIR=""
MODE="changed"
BASE_REF=""
FILES=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)
      BUILD_DIR="$2"
      shift 2
      ;;
    --all)
      MODE="all"
      shift
      ;;
    --changed)
      MODE="changed"
      shift
      if [[ $# -gt 0 && "$1" != --* ]]; then
        BASE_REF="$1"
        shift
      fi
      ;;
    *)
      FILES+=("$1")
      shift
      ;;
  esac
done

if [[ -z "$BUILD_DIR" ]]; then
  for candidate in build build/release build/asan-ubsan; do
    if [[ -f "$candidate/compile_commands.json" ]]; then
      BUILD_DIR="$candidate"
      break
    fi
  done
fi
if [[ -z "$BUILD_DIR" || ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_tidy.sh: no compile_commands.json found; configure with cmake first" >&2
  echo "(CMAKE_EXPORT_COMPILE_COMMANDS defaults to ON, e.g.: cmake --preset release)" >&2
  exit 1
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  if [[ "$MODE" == "changed" ]]; then
    if [[ -z "$BASE_REF" ]]; then
      if git rev-parse --verify -q origin/main >/dev/null; then
        BASE_REF="origin/main"
      else
        BASE_REF="HEAD~1"
      fi
    fi
    mapfile -t FILES < <(git diff --name-only --diff-filter=d "$BASE_REF" -- \
      'src/**/*.cpp' 'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp' \
      'tools/**/*.cpp')
  else
    mapfile -t FILES < <(git ls-files 'src/**/*.cpp' 'tests/*.cpp' 'bench/*.cpp' \
      'examples/*.cpp' 'tools/**/*.cpp')
  fi
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_tidy.sh: nothing to lint."
  exit 0
fi

echo "run_tidy.sh: linting ${#FILES[@]} file(s) against $BUILD_DIR/compile_commands.json"
STATUS=0
for f in "${FILES[@]}"; do
  [[ -f "$f" ]] || continue
  "$TIDY_BIN" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
