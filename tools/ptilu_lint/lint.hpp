// ptilu-lint: project-invariant static analysis for the ptilu repository.
//
// The repository's headline guarantees are *bit-compatibility* guarantees:
// the threaded backend is bit-identical to the sequential one, checked and
// metrics builds are bit-identical to plain ones, and the bench checksums
// are pinned across PRs. Those guarantees are enforced at runtime by
// differential tests and the SPMD conformance checker — but nothing stopped
// a contributor from *writing* the code patterns that break them. This tool
// closes that gap at lint time: it lexes the sources (comment/string/raw-
// string aware, see lexer.hpp) and enforces the textual conventions
// docs/STATIC_ANALYSIS.md documents in prose, as named rules.
//
// Rules (scope in brackets; see docs/STATIC_ANALYSIS.md §4 for the full
// rationale of each):
//
//   determinism-unordered-iter  [src/]  Range-for or .begin() traversal of
//       a std::unordered_{map,set} local. Hash-map iteration order is
//       implementation-defined; feeding it into modeled time, counters, or
//       message contents silently breaks bit-compatibility. Keyed lookup
//       (find/at/operator[]/emplace) is fine and unflagged.
//   determinism-banned-calls    [src/, include/]  rand/srand/random_device
//       (nondeterministic seeds), time/clock/gettimeofday/now (wall clock
//       observable by modeled paths). Timing belongs in bench/ harness code
//       or behind an annotated suppression (support/timer.hpp).
//   spmd-collective-tag         [src/ minus src/sim/]  Every allreduce_*,
//       Machine::collective, or RankContext::declare_collective call must
//       carry a call-site tag string literal, so conformance-violation
//       reports can name both sides of a divergent collective.
//   spmd-phase-coverage         [src/ minus src/sim/]  send_* / recv_all
//       call sites must be lexically inside a live sim::ScopedPhase scope,
//       so traces and metrics attribute every message to an algorithm
//       phase. Helpers invoked from phased scopes carry a suppression
//       explaining the indirection.
//   assert-macro                [src/, include/]  Raw assert() is banned:
//       PTILU_ASSERT (debug invariants) / PTILU_CHECK (always-on argument
//       validation) throw ptilu::Error with location info and are
//       registered as assert macros with clang-tidy.
//   float-in-model              [src/sim/, include/ptilu/sim/]  The `float`
//       type is banned in the simulator: modeled time and derived metrics
//       are double-precision identities (busy ≤ elapsed bit-exactly);
//       a single float round-trip breaks them.
//
// Suppressions: `// ptilu-lint: allow(<rule>[, <rule>...])` on the
// offending line or the line above (block comments work too). Suppressed
// findings are still reported (and counted) but do not fail the run.
//
// The tool is self-contained: no LLVM, no dependency on the ptilu library.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace ptilu::lint {

struct Finding {
  std::string rule;     ///< rule name (see kRuleNames)
  std::string file;     ///< repo-relative path with forward slashes
  int line = 0;         ///< 1-based
  int col = 0;          ///< 1-based
  std::string message;  ///< one-line diagnosis
  bool suppressed = false;  ///< true when a ptilu-lint: allow(...) covers it
};

/// All rule names, in report order.
const std::vector<std::string>& rule_names();

/// True if `rule` is a known rule name.
bool known_rule(const std::string& rule);

/// Lint one source text. `path` is the repo-relative path (forward
/// slashes); it selects which rules apply (see the scope table above) —
/// the file does not need to exist on disk.
std::vector<Finding> lint_source(const std::string& path, const std::string& text);

/// Result of linting a tree or an explicit file list.
struct Report {
  std::vector<Finding> findings;         ///< sorted by (file, line, col, rule)
  std::vector<std::string> files;        ///< repo-relative paths scanned
};

/// Lint every .cpp/.hpp under `root`'s src/ and include/ trees (the union
/// of all rule scopes).
Report lint_tree(const std::filesystem::path& root);

/// Lint an explicit list of files; paths are interpreted relative to
/// `root` for rule scoping. Throws std::runtime_error on unreadable files.
Report lint_files(const std::filesystem::path& root,
                  const std::vector<std::string>& files);

/// Number of findings not covered by a suppression.
std::size_t unsuppressed_count(const std::vector<Finding>& findings);

/// Render as human-readable lines ("file:line:col: [rule] message").
std::string to_text(const Report& report, bool show_suppressed);

/// Render as versioned JSON (schema "ptilu-lint-v1").
std::string to_json(const Report& report);

}  // namespace ptilu::lint
