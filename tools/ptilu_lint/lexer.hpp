// Comment/string/raw-string aware C++ tokenizer for ptilu-lint.
//
// This is deliberately *not* a C++ parser: the lint rules (lint.hpp) are
// lexical project invariants, so all they need is a faithful token stream
// in which comments, string literals, char literals, raw strings, and
// preprocessor directives can never masquerade as code. The lexer also
// extracts `// ptilu-lint: allow(<rule>[, <rule>...])` suppression
// annotations from comments, keyed by source line, so rules can honor
// same-line and line-above suppressions without re-scanning text.
//
// Token granularity: identifiers (keywords are not distinguished — rules
// match on spelling), numeric literals (including hex floats and digit
// separators), string/char literals, and punctuation. Punctuation is
// emitted one character at a time except `::` and `->`, which are fused so
// rules can tell qualified names (`std::time`) and member accesses
// (`ctx->recv_all`) from unrelated single-char operators without peeking
// at neighbor pairs.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ptilu::lint {

enum class TokKind : std::uint8_t {
  kIdent = 0,   ///< identifier or keyword
  kNumber = 1,  ///< numeric literal (ints, floats, hex floats, separators)
  kString = 2,  ///< string literal, including raw strings (text = full lexeme)
  kChar = 3,    ///< character literal
  kPunct = 4,   ///< punctuation; one char, or the fused "::" / "->"
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;  ///< exact source spelling (strings keep their quotes)
  int line = 0;      ///< 1-based source line of the first character
  int col = 0;       ///< 1-based source column of the first character
};

/// A lexed translation unit: the token stream plus the suppression map.
struct LexedSource {
  std::vector<Token> tokens;
  /// line -> rule names allowed on that line. A comment's suppressions are
  /// recorded on every line the comment spans *and* the following line, so
  /// both trailing (`code;  // ptilu-lint: allow(r)`) and preceding-line
  /// annotations work.
  std::map<int, std::set<std::string>> allowed;
};

/// Tokenize C++ source text. Never fails: malformed trailing constructs
/// (an unterminated string or comment) simply end the stream.
LexedSource lex(const std::string& text);

/// True when `allowed` (from LexedSource) suppresses `rule` at `line`.
bool is_allowed(const std::map<int, std::set<std::string>>& allowed,
                const std::string& rule, int line);

}  // namespace ptilu::lint
