// ptilu-lint CLI. Self-contained (no ptilu library dependency): flags are
// parsed by hand so the tool can lint a checkout without building anything
// else first.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(std::ostream& out, int status) {
  out << "usage: ptilu_lint [--root=DIR] [--json[=PATH]] [--show-suppressed]\n"
         "                  [--list-rules] [files...]\n"
         "\n"
         "Lints the ptilu sources for project invariants (determinism, SPMD\n"
         "protocol hygiene, assertion style). With no files, scans every\n"
         ".cpp/.hpp under DIR/src and DIR/include (DIR defaults to the\n"
         "current directory). Explicit files are interpreted relative to\n"
         "DIR for rule scoping.\n"
         "\n"
         "  --root=DIR         repository root to scan / resolve against\n"
         "  --json             write the ptilu-lint-v1 JSON report to stdout\n"
         "  --json=PATH        write the JSON report to PATH (human text still\n"
         "                     goes to stdout)\n"
         "  --show-suppressed  include suppressed findings in the human output\n"
         "  --list-rules       print the rule names and exit\n"
         "\n"
         "Suppressions: // ptilu-lint: allow(<rule>[, <rule>...]) on the\n"
         "offending line or the line above.\n"
         "\n"
         "Exit status: 0 = no unsuppressed findings, 1 = findings, 2 = usage\n"
         "or I/O error.\n";
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json_stdout = false;
  bool show_suppressed = false;
  std::string json_path;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const std::string& name : ptilu::lint::rule_names()) {
        std::cout << name << '\n';
      }
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json_stdout = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "ptilu_lint: unknown flag '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      files.push_back(arg);
    }
  }

  try {
    const ptilu::lint::Report report =
        files.empty() ? ptilu::lint::lint_tree(root)
                      : ptilu::lint::lint_files(root, files);
    if (report.files.empty()) {
      std::cerr << "ptilu_lint: nothing to scan under '" << root
                << "' (expected src/ and include/ trees)\n";
      return 2;
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "ptilu_lint: cannot write " << json_path << '\n';
        return 2;
      }
      out << ptilu::lint::to_json(report);
    }
    if (json_stdout) {
      std::cout << ptilu::lint::to_json(report);
    } else {
      std::cout << ptilu::lint::to_text(report, show_suppressed);
    }
    return ptilu::lint::unsuppressed_count(report.findings) == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
}
